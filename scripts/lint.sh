#!/usr/bin/env bash
# Static-analysis entry point: tg_lint (always — including the atomic-order
# and guarded-member concurrency rules; see --list-rules), then clang-tidy
# and cppcheck when installed. The fourth layer, Clang Thread Safety
# Analysis, runs at compile time instead: configure with
# -DTG_THREAD_SAFETY=ON under Clang (auto-detected) and the build itself
# enforces the locking protocol. Run from the repo root, directly or via the
# cmake target:
#
#   cmake --build build --target lint
#   scripts/lint.sh                      # autodiscovers build/ and the binary
#
# Environment:
#   TG_LINT_BIN   path to the tg_lint binary   (default: <build>/tools/tg_lint)
#   TG_BUILD_DIR  build tree with compile_commands.json   (default: build)
#
# Exit status is non-zero if any enabled analyzer reports a finding; absent
# optional analyzers are skipped with a note, never an error, so the script
# degrades gracefully on machines without clang-tidy/cppcheck.
set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${TG_BUILD_DIR:-build}"
LINT_BIN="${TG_LINT_BIN:-$BUILD_DIR/tools/tg_lint}"
LINT_PATHS=(src tests bench tools)
status=0

echo "== tg_lint (TailGuard invariant checker) =="
if [[ ! -x "$LINT_BIN" ]]; then
    echo "error: tg_lint not built at $LINT_BIN" >&2
    echo "hint: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR --target tg_lint" >&2
    exit 2
fi
"$LINT_BIN" --check "${LINT_PATHS[@]}" || status=1

echo
echo "== clang-tidy =="
if command -v clang-tidy > /dev/null 2>&1; then
    if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
        echo "error: $BUILD_DIR/compile_commands.json missing (configure with cmake first)" >&2
        status=1
    else
        # run-clang-tidy parallelizes across the database when available.
        if command -v run-clang-tidy > /dev/null 2>&1; then
            run-clang-tidy -quiet -p "$BUILD_DIR" "src/.*\.cc$" || status=1
        else
            find src -name '*.cc' -print0 \
                | xargs -0 -n 4 -P "$(nproc)" clang-tidy -quiet -p "$BUILD_DIR" \
                || status=1
        fi
    fi
else
    echo "clang-tidy not installed; skipping (apt-get install clang-tidy)"
fi

echo
echo "== cppcheck =="
if command -v cppcheck > /dev/null 2>&1; then
    # Self-contained check set; suppressions mirror .clang-tidy's philosophy
    # (style churn off, real bug classes on).
    cppcheck --quiet --error-exitcode=1 \
        --enable=warning,performance,portability \
        --std=c++20 --inline-suppr \
        --suppress=missingIncludeSystem \
        -I src src || status=1
else
    echo "cppcheck not installed; skipping (apt-get install cppcheck)"
fi

echo
if [[ "$status" -eq 0 ]]; then
    echo "lint: clean"
else
    echo "lint: FINDINGS (see above)"
fi
exit "$status"
