// Unit tests for src/common: RNG, statistics, empirical CDF, streaming
// histogram, moving window.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/empirical_cdf.h"
#include "common/moving_window.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/streaming_histogram.h"

namespace tailguard {
namespace {

// ----------------------------------------------------------------- checks

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(TG_CHECK(false), CheckFailure);
  try {
    TG_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { EXPECT_NO_THROW(TG_CHECK(1 + 1 == 2)); }

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformPosNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) ASSERT_GT(rng.uniform_pos(), 0.0);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng child = parent.split();
  // The child stream should not replicate the parent stream.
  Rng parent2(99);
  (void)parent2();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child() == parent2());
  EXPECT_LT(same, 3);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// ------------------------------------------------------------------ stats

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Summary, MergeMatchesSequential) {
  Rng rng(3);
  Summary all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(Summary, MergeIntoEmpty) {
  Summary a, b;
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(Percentile, NearestRank) {
  std::vector<double> v{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 90.0), 90.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10.1), 20.0);
}

TEST(Percentile, UnsortedInput) {
  std::vector<double> v{3, 1, 2};
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 34.0), 2.0);
}

TEST(Percentile, EmptyGivesNaN) {
  EXPECT_TRUE(std::isnan(percentile(std::vector<double>{}, 99.0)));
}

TEST(Percentile, SingleElement) {
  std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99.0), 42.0);
}

// --------------------------------------------------------- empirical CDF

TEST(EmpiricalCdf, QuantileInterpolates) {
  std::vector<double> sample{0.0, 1.0, 2.0, 3.0, 4.0};
  EmpiricalCdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.625), 2.5);
}

TEST(EmpiricalCdf, CdfMonotone) {
  Rng rng(17);
  std::vector<double> sample(1000);
  for (auto& x : sample) x = rng.uniform();
  EmpiricalCdf cdf(sample);
  double prev = -1.0;
  for (double x = -0.1; x <= 1.1; x += 0.01) {
    const double f = cdf.cdf(x);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST(EmpiricalCdf, CdfQuantileRoundTrip) {
  Rng rng(23);
  std::vector<double> sample(5000);
  for (auto& x : sample) x = rng.uniform() * 10.0;
  EmpiricalCdf cdf(sample);
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = cdf.quantile(p);
    EXPECT_NEAR(cdf.cdf(x), p, 0.01) << "p=" << p;
  }
}

TEST(EmpiricalCdf, MatchesUniformDistribution) {
  Rng rng(31);
  std::vector<double> sample(200000);
  for (auto& x : sample) x = rng.uniform();
  EmpiricalCdf cdf(sample);
  EXPECT_NEAR(cdf.mean(), 0.5, 0.005);
  EXPECT_NEAR(cdf.quantile(0.99), 0.99, 0.005);
  EXPECT_NEAR(cdf.cdf(0.35), 0.35, 0.005);
}

TEST(EmpiricalCdf, RejectsEmptySample) {
  EXPECT_THROW(EmpiricalCdf(std::vector<double>{}), CheckFailure);
}

// ---------------------------------------------------- streaming histogram

TEST(StreamingHistogram, QuantilesOfKnownSample) {
  StreamingHistogramOptions opt;
  opt.min_value = 1e-3;
  opt.max_value = 1e3;
  opt.buckets_per_decade = 300;
  StreamingHistogram h(opt);
  Rng rng(41);
  for (int i = 0; i < 200000; ++i) h.add(1.0 + 9.0 * rng.uniform());
  // Uniform(1, 10): q(p) = 1 + 9p.
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(h.quantile(p), 1.0 + 9.0 * p, 0.15) << "p=" << p;
  }
  EXPECT_NEAR(h.mean(), 5.5, 0.05);
}

TEST(StreamingHistogram, CdfQuantileConsistent) {
  StreamingHistogram h;
  Rng rng(43);
  for (int i = 0; i < 50000; ++i) h.add(std::exp(rng.uniform() * 3.0));
  for (double p : {0.2, 0.5, 0.8, 0.95}) {
    const double x = h.quantile(p);
    EXPECT_NEAR(h.cdf(x), p, 0.02) << "p=" << p;
  }
}

TEST(StreamingHistogram, EmptyReturnsZero) {
  StreamingHistogram h;
  EXPECT_DOUBLE_EQ(h.cdf(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(StreamingHistogram, DecayTracksDrift) {
  StreamingHistogramOptions opt;
  opt.decay_every = 1000;
  opt.decay_factor = 0.3;
  StreamingHistogram h(opt);
  Rng rng(47);
  // Phase 1: values around 1. Phase 2: values around 100.
  for (int i = 0; i < 20000; ++i) h.add(0.5 + rng.uniform());
  for (int i = 0; i < 20000; ++i) h.add(50.0 + 100.0 * rng.uniform());
  // After decay, the median should reflect the new regime.
  EXPECT_GT(h.quantile(0.5), 30.0);
}

TEST(StreamingHistogram, NoDecayRemembersEverything) {
  StreamingHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(1.0);
  EXPECT_EQ(h.observations(), 1000u);
  EXPECT_NEAR(h.total_weight(), 1000.0, 1e-9);
}

TEST(StreamingHistogram, ClearResets) {
  StreamingHistogram h;
  h.add(5.0);
  h.clear();
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(StreamingHistogram, OverflowBucketClamps) {
  StreamingHistogramOptions opt;
  opt.min_value = 0.1;
  opt.max_value = 10.0;
  StreamingHistogram h(opt);
  h.add(1e9);
  EXPECT_DOUBLE_EQ(h.cdf(10.0), 1.0);
  EXPECT_LE(h.quantile(0.99), 10.0);
}

// ----------------------------------------------------------- moving window

TEST(MovingWindowRatio, RatioOverPartialWindow) {
  MovingWindowRatio w(10);
  w.record(true);
  w.record(false);
  EXPECT_DOUBLE_EQ(w.ratio(), 0.5);
  EXPECT_EQ(w.size(), 2u);
}

TEST(MovingWindowRatio, OldEventsExpire) {
  MovingWindowRatio w(4);
  for (int i = 0; i < 4; ++i) w.record(true);
  EXPECT_DOUBLE_EQ(w.ratio(), 1.0);
  for (int i = 0; i < 4; ++i) w.record(false);
  EXPECT_DOUBLE_EQ(w.ratio(), 0.0);
}

TEST(MovingWindowRatio, SlidesOneAtATime) {
  MovingWindowRatio w(4);
  w.record(true);
  w.record(true);
  w.record(false);
  w.record(false);
  EXPECT_DOUBLE_EQ(w.ratio(), 0.5);
  w.record(false);  // evicts a true
  EXPECT_DOUBLE_EQ(w.ratio(), 0.25);
  w.record(false);  // evicts the other true
  EXPECT_DOUBLE_EQ(w.ratio(), 0.0);
}

TEST(MovingWindowRatio, EmptyRatioIsZero) {
  MovingWindowRatio w(5);
  EXPECT_DOUBLE_EQ(w.ratio(), 0.0);
}

TEST(MovingWindowRatio, RejectsZeroCapacity) {
  EXPECT_THROW(MovingWindowRatio(0), CheckFailure);
}

}  // namespace
}  // namespace tailguard
