// Tests for the four task-queue disciplines, including the degeneracy
// properties the paper states in §III.A (PRIQ and T-EDFQ collapse to FIFO
// with a single class; TF-EDFQ collapses to T-EDFQ at fixed fanout).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/policy.h"

namespace tailguard {
namespace {

QueuedTask make_task(TaskId id, ClassId cls, TimeMs enqueue, TimeMs deadline) {
  QueuedTask t;
  t.task = id;
  t.cls = cls;
  t.enqueue_time = enqueue;
  t.deadline = deadline;
  return t;
}

// ------------------------------------------------------------------- FIFO

TEST(FifoTaskQueue, FifoOrder) {
  FifoTaskQueue q;
  for (TaskId i = 0; i < 5; ++i) q.push(make_task(i, 0, i * 1.0, 100.0 - i));
  for (TaskId i = 0; i < 5; ++i) {
    EXPECT_EQ(q.peek().task, i);
    EXPECT_EQ(q.pop().task, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(FifoTaskQueue, PopEmptyThrows) {
  FifoTaskQueue q;
  EXPECT_THROW(q.pop(), CheckFailure);
  EXPECT_THROW(q.peek(), CheckFailure);
}

// ------------------------------------------------------------------- PRIQ

TEST(ClassPriorityTaskQueue, StrictPriority) {
  ClassPriorityTaskQueue q(3);
  q.push(make_task(1, 2, 0.0, 0.0));
  q.push(make_task(2, 0, 1.0, 0.0));
  q.push(make_task(3, 1, 2.0, 0.0));
  q.push(make_task(4, 0, 3.0, 0.0));
  EXPECT_EQ(q.pop().task, 2u);  // class 0 first, FIFO within class
  EXPECT_EQ(q.pop().task, 4u);
  EXPECT_EQ(q.pop().task, 3u);
  EXPECT_EQ(q.pop().task, 1u);
}

TEST(ClassPriorityTaskQueue, SingleClassDegeneratesToFifo) {
  ClassPriorityTaskQueue priq(1);
  FifoTaskQueue fifo;
  Rng rng(3);
  for (TaskId i = 0; i < 100; ++i) {
    const auto t = make_task(i, 0, rng.uniform(), rng.uniform());
    priq.push(t);
    fifo.push(t);
  }
  while (!fifo.empty()) EXPECT_EQ(priq.pop().task, fifo.pop().task);
  EXPECT_TRUE(priq.empty());
}

TEST(ClassPriorityTaskQueue, RejectsOutOfRangeClass) {
  ClassPriorityTaskQueue q(2);
  EXPECT_THROW(q.push(make_task(0, 2, 0.0, 0.0)), CheckFailure);
}

// -------------------------------------------------------------------- EDF

TEST(EdfTaskQueue, PopsEarliestDeadline) {
  EdfTaskQueue q(Policy::kTfEdf);
  q.push(make_task(1, 0, 0.0, 30.0));
  q.push(make_task(2, 0, 1.0, 10.0));
  q.push(make_task(3, 0, 2.0, 20.0));
  EXPECT_EQ(q.pop().task, 2u);
  EXPECT_EQ(q.pop().task, 3u);
  EXPECT_EQ(q.pop().task, 1u);
}

TEST(EdfTaskQueue, TiesBreakFifo) {
  EdfTaskQueue q(Policy::kTfEdf);
  for (TaskId i = 0; i < 10; ++i) q.push(make_task(i, 0, i * 1.0, 5.0));
  for (TaskId i = 0; i < 10; ++i) EXPECT_EQ(q.pop().task, i);
}

TEST(EdfTaskQueue, PopOrderSurvivesInterleavedPushPop) {
  // Guards the vector + pop_heap restructure (move-out pop): drain order
  // must stay exactly (deadline asc, seq asc) even when pushes interleave
  // with pops, and peek() must always agree with the next pop().
  EdfTaskQueue q(Policy::kTfEdf);
  Rng rng(41);
  std::vector<QueuedTask> expected;
  TaskId next = 0;
  for (int round = 0; round < 50; ++round) {
    const int pushes = 1 + static_cast<int>(rng.uniform_index(6));
    for (int i = 0; i < pushes; ++i) {
      // Coarse deadlines force frequent ties, exercising the seq tiebreak.
      const auto t = make_task(next++, 0, 0.0,
                               static_cast<double>(rng.uniform_index(8)));
      q.push(t);
      expected.push_back(t);
    }
    const int pops = static_cast<int>(rng.uniform_index(
        static_cast<std::uint64_t>(expected.size() + 1)));
    for (int i = 0; i < pops; ++i) {
      std::stable_sort(expected.begin(), expected.end(),
                       [](const QueuedTask& a, const QueuedTask& b) {
                         return a.deadline < b.deadline;
                       });
      EXPECT_EQ(q.peek().task, expected.front().task);
      EXPECT_EQ(q.pop().task, expected.front().task);
      expected.erase(expected.begin());
    }
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const QueuedTask& a, const QueuedTask& b) {
                     return a.deadline < b.deadline;
                   });
  for (const QueuedTask& t : expected) EXPECT_EQ(q.pop().task, t.task);
  EXPECT_TRUE(q.empty());
}

TEST(EdfTaskQueue, EqualDeadlinesDegenerateToFifo) {
  // T-EDFQ with one class: deadline = t0 + const, arrival order == deadline
  // order, so the schedule equals FIFO (paper §III.A).
  EdfTaskQueue edf(Policy::kTEdf);
  FifoTaskQueue fifo;
  Rng rng(17);
  TimeMs t = 0.0;
  for (TaskId i = 0; i < 200; ++i) {
    t += rng.uniform();
    const auto task = make_task(i, 0, t, t + 42.0);
    edf.push(task);
    fifo.push(task);
  }
  while (!fifo.empty()) EXPECT_EQ(edf.pop().task, fifo.pop().task);
}

TEST(EdfTaskQueue, PropertyAlwaysPopsMinDeadline) {
  // Randomised property check with interleaved push/pop.
  EdfTaskQueue q(Policy::kTfEdf);
  std::vector<QueuedTask> mirror;
  Rng rng(23);
  TaskId next = 0;
  for (int step = 0; step < 2000; ++step) {
    if (mirror.empty() || rng.bernoulli(0.6)) {
      const auto t = make_task(next++, 0, 0.0, rng.uniform(0.0, 100.0));
      q.push(t);
      mirror.push_back(t);
    } else {
      const auto popped = q.pop();
      const auto it = std::min_element(
          mirror.begin(), mirror.end(),
          [](const QueuedTask& a, const QueuedTask& b) {
            return a.deadline < b.deadline;
          });
      EXPECT_DOUBLE_EQ(popped.deadline, it->deadline);
      mirror.erase(std::find_if(mirror.begin(), mirror.end(),
                                [&](const QueuedTask& t) {
                                  return t.task == popped.task;
                                }));
    }
  }
}

TEST(EdfTaskQueue, ReportsConfiguredPolicy) {
  EXPECT_EQ(EdfTaskQueue(Policy::kTEdf).policy(), Policy::kTEdf);
  EXPECT_EQ(EdfTaskQueue(Policy::kTfEdf).policy(), Policy::kTfEdf);
  EXPECT_THROW(EdfTaskQueue(Policy::kFifo), CheckFailure);
}

// -------------------------------------------------------------- EDF wheel

// The timer-wheel EDF queue must be indistinguishable from the binary-heap
// one: identical (task, deadline, seq) pop sequences, bit for bit. This is
// what lets make_task_queue switch the default implementation without
// perturbing a single BENCH row.
TEST(TimerWheelEdfQueue, PopSequenceBitIdenticalToBinaryHeap) {
  // Deliberately coarse tick so many distinct deadlines share one slot, and
  // deadline ranges that span level 0 through the overflow heap.
  for (const double tick_ms : {0.25, 16.0}) {
    EdfTaskQueue heap(Policy::kTfEdf);
    TimerWheelEdfQueue wheel(Policy::kTfEdf, tick_ms);
    Rng rng(97);
    TaskId next = 0;
    std::size_t depth = 0;
    for (int round = 0; round < 400; ++round) {
      const int pushes = static_cast<int>(rng.uniform_index(8));
      for (int i = 0; i < pushes; ++i) {
        double deadline = 0.0;
        switch (rng.uniform_index(4)) {
          case 0:  // clustered ties: exercises the per-slot heaps
            deadline = static_cast<double>(rng.uniform_index(4));
            break;
          case 1:  // uniform near-term: level 0/1 fast path
            deadline = rng.uniform(0.0, 500.0);
            break;
          case 2:  // far future: cascades and the overflow heap
            deadline = rng.uniform(0.0, 1e9);
            break;
          default:  // monotonicity violation: earlier than popped work
            deadline = rng.uniform(-100.0, 10.0);
            break;
        }
        const auto t = make_task(next++, 0, 0.0, deadline);
        heap.push(t);
        wheel.push(t);
        ++depth;
      }
      const auto pops = rng.uniform_index(depth + 1);
      for (std::uint64_t i = 0; i < pops; ++i) {
        ASSERT_EQ(heap.peek().task, wheel.peek().task);
        const QueuedTask a = heap.pop();
        const QueuedTask b = wheel.pop();
        ASSERT_EQ(a.task, b.task);
        ASSERT_EQ(a.seq, b.seq);
        ASSERT_EQ(a.deadline, b.deadline);
        --depth;
      }
      ASSERT_EQ(heap.size(), wheel.size());
    }
    while (!heap.empty()) {
      const QueuedTask a = heap.pop();
      const QueuedTask b = wheel.pop();
      ASSERT_EQ(a.task, b.task);
      ASSERT_EQ(a.seq, b.seq);
    }
    EXPECT_TRUE(wheel.empty());
  }
}

TEST(TimerWheelEdfQueue, DrainsSparseDeadlinesInSortedOrder) {
  // Deadlines spread over nine decades touch every wheel level plus the
  // overflow heap; a full drain must still be globally sorted.
  TimerWheelEdfQueue q(Policy::kTEdf);
  Rng rng(7);
  for (TaskId i = 0; i < 300; ++i) {
    const double scale = std::pow(10.0, static_cast<double>(
                                            rng.uniform_index(9)));
    q.push(make_task(i, 0, 0.0, rng.uniform(0.0, scale)));
  }
  double prev = -1.0;
  while (!q.empty()) {
    const QueuedTask t = q.pop();
    EXPECT_GE(t.deadline, prev);
    prev = t.deadline;
  }
}

TEST(TimerWheelEdfQueue, PopEmptyThrowsAndPolicyChecked) {
  TimerWheelEdfQueue q(Policy::kTfEdf);
  EXPECT_THROW(q.pop(), CheckFailure);
  EXPECT_THROW(q.peek(), CheckFailure);
  EXPECT_EQ(q.policy(), Policy::kTfEdf);
  EXPECT_THROW(TimerWheelEdfQueue(Policy::kFifo), CheckFailure);
}

// ---------------------------------------------------------------- factory

TEST(MakeTaskQueue, EdfImplSelectsBackingStructure) {
  const auto heap =
      make_task_queue(Policy::kTfEdf, 1, EdfQueueImpl::kBinaryHeap);
  const auto wheel =
      make_task_queue(Policy::kTfEdf, 1, EdfQueueImpl::kTimerWheel);
  EXPECT_NE(dynamic_cast<EdfTaskQueue*>(heap.get()), nullptr);
  EXPECT_NE(dynamic_cast<TimerWheelEdfQueue*>(wheel.get()), nullptr);
  // kDefault resolves to the wheel unless TAILGUARD_EDF_IMPL overrides it.
  if (std::getenv("TAILGUARD_EDF_IMPL") == nullptr) {
    EXPECT_EQ(resolve_edf_queue_impl(EdfQueueImpl::kDefault),
              EdfQueueImpl::kTimerWheel);
  }
}

TEST(MakeTaskQueue, BuildsEveryPolicy) {
  for (Policy p : {Policy::kFifo, Policy::kPriq, Policy::kTEdf,
                   Policy::kTfEdf}) {
    const auto q = make_task_queue(p, 2);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->policy(), p);
    EXPECT_TRUE(q->empty());
  }
}

TEST(PolicyNames, Stable) {
  EXPECT_STREQ(to_string(Policy::kFifo), "FIFO");
  EXPECT_STREQ(to_string(Policy::kPriq), "PRIQ");
  EXPECT_STREQ(to_string(Policy::kTEdf), "T-EDFQ");
  EXPECT_STREQ(to_string(Policy::kTfEdf), "TailGuard");
}

// A cross-policy property: every discipline returns exactly the pushed set.
class QueueConservation : public ::testing::TestWithParam<Policy> {};

TEST_P(QueueConservation, PopReturnsExactlyPushedTasks) {
  const auto q = make_task_queue(GetParam(), 4);
  Rng rng(31);
  std::vector<TaskId> pushed;
  for (TaskId i = 0; i < 500; ++i) {
    auto t = make_task(i, static_cast<ClassId>(rng.uniform_index(4)),
                       rng.uniform(), rng.uniform(0.0, 50.0));
    q->push(t);
    pushed.push_back(i);
  }
  EXPECT_EQ(q->size(), 500u);
  std::vector<TaskId> popped;
  while (!q->empty()) popped.push_back(q->pop().task);
  std::sort(popped.begin(), popped.end());
  EXPECT_EQ(popped, pushed);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, QueueConservation,
                         ::testing::Values(Policy::kFifo, Policy::kPriq,
                                           Policy::kTEdf, Policy::kTfEdf),
                         [](const auto& info) {
                           return std::string(to_string(info.param) ==
                                                      std::string("T-EDFQ")
                                                  ? "TEdf"
                                                  : to_string(info.param));
                         });

}  // namespace
}  // namespace tailguard
