// Tests for src/workloads: the calibrated Tailbench models must reproduce
// the paper's published statistics (Table II, Fig. 3), and the fanout/trace
// machinery must behave.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/stats.h"
#include "core/order_stats.h"
#include "workloads/fanout.h"
#include "workloads/tailbench.h"
#include "workloads/trace.h"

namespace tailguard {
namespace {

// ------------------------------------------------- Tailbench calibration

class TailbenchCalibration : public ::testing::TestWithParam<TailbenchApp> {};

TEST_P(TailbenchCalibration, TailQuantilesMatchTableII) {
  const auto app = GetParam();
  const auto stats = paper_stats(app);
  const auto model = make_service_time_model(app);
  // Eq. 2: x99u(kf) = F^{-1}(0.99^{1/kf}). The anchors are placed exactly at
  // the probabilities Table II pins.
  EXPECT_NEAR(model->quantile(0.99), stats.x99u_1, 1e-9) << to_string(app);
  EXPECT_NEAR(model->quantile(0.999), stats.x99u_10, 0.02 * stats.x99u_10)
      << to_string(app);
  EXPECT_NEAR(model->quantile(0.9999), stats.x99u_100, 0.02 * stats.x99u_100)
      << to_string(app);
}

TEST_P(TailbenchCalibration, MeanMatchesTableII) {
  const auto app = GetParam();
  const auto stats = paper_stats(app);
  const auto model = make_service_time_model(app);
  EXPECT_NEAR(model->mean(), stats.mean_service_ms,
              0.02 * stats.mean_service_ms)
      << to_string(app);
}

TEST_P(TailbenchCalibration, P95MatchesFig3) {
  const auto app = GetParam();
  const auto stats = paper_stats(app);
  const auto model = make_service_time_model(app);
  EXPECT_NEAR(model->quantile(0.95), stats.x95u_1, 1e-9) << to_string(app);
}

TEST_P(TailbenchCalibration, OrderStatisticsReproduceTableII) {
  // The same numbers through the production code path (order-statistics
  // engine on a CdfModel) instead of raw quantile calls.
  const auto app = GetParam();
  const auto stats = paper_stats(app);
  DistributionCdfModel model(make_service_time_model(app));
  const double tol = 0.025;
  EXPECT_NEAR(homogeneous_unloaded_quantile(model, 1, 0.99), stats.x99u_1,
              tol * stats.x99u_1);
  EXPECT_NEAR(homogeneous_unloaded_quantile(model, 10, 0.99), stats.x99u_10,
              tol * stats.x99u_10);
  EXPECT_NEAR(homogeneous_unloaded_quantile(model, 100, 0.99), stats.x99u_100,
              tol * stats.x99u_100);
}

TEST_P(TailbenchCalibration, SampledTailMatchesAnalytic) {
  const auto app = GetParam();
  const auto model = make_service_time_model(app);
  Rng rng(777);
  std::vector<double> sample(500000);
  for (auto& x : sample) x = model->sample(rng);
  EXPECT_NEAR(mean_of(sample), model->mean(), 0.01 * model->mean());
  EXPECT_NEAR(percentile(sample, 99.0), model->quantile(0.99),
              0.02 * model->quantile(0.99));
}

INSTANTIATE_TEST_SUITE_P(AllApps, TailbenchCalibration,
                         ::testing::ValuesIn(kAllTailbenchApps),
                         [](const auto& info) { return to_string(info.param); });

TEST(Tailbench, NamesAreStable) {
  EXPECT_EQ(to_string(TailbenchApp::kMasstree), "Masstree");
  EXPECT_EQ(to_string(TailbenchApp::kShore), "Shore");
  EXPECT_EQ(to_string(TailbenchApp::kXapian), "Xapian");
}

// ------------------------------------------------------------- fanout

TEST(FixedFanout, AlwaysSame) {
  FixedFanout f(7);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f.sample(rng), 7u);
  EXPECT_DOUBLE_EQ(f.mean(), 7.0);
  EXPECT_EQ(f.support(), std::vector<std::uint32_t>{7});
}

TEST(CategoricalFanout, PaperMixProportions) {
  const auto mix = CategoricalFanout::paper_mix();
  // P(kf) ∝ 1/kf over {1,10,100}: every type contributes the same expected
  // task volume (100*1 == 10*10 == 1*100).
  EXPECT_NEAR(mix.mean(), 300.0 / 111.0, 1e-12);
  Rng rng(3);
  std::size_t counts[3] = {0, 0, 0};
  const int n = 111000;
  for (int i = 0; i < n; ++i) {
    switch (mix.sample(rng)) {
      case 1: ++counts[0]; break;
      case 10: ++counts[1]; break;
      case 100: ++counts[2]; break;
      default: FAIL() << "unexpected fanout";
    }
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 100.0 / 111.0, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 10.0 / 111.0, 0.005);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 1.0 / 111.0, 0.002);
}

TEST(CategoricalFanout, Validation) {
  EXPECT_THROW(CategoricalFanout({}, {}), CheckFailure);
  EXPECT_THROW(CategoricalFanout({1, 2}, {0.5}), CheckFailure);
  EXPECT_THROW(CategoricalFanout({2, 1}, {0.5, 0.5}), CheckFailure);
  EXPECT_THROW(CategoricalFanout({0}, {1.0}), CheckFailure);
  EXPECT_THROW(CategoricalFanout({1}, {0.0}), CheckFailure);
}

TEST(ZipfFanout, MassDecreasesWithK) {
  ZipfFanout z(100, 1.0);
  Rng rng(9);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 200000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
  // Facebook-like: most queries have small fanout.
  int under20 = 0;
  for (int k = 1; k < 20; ++k) under20 += counts[k];
  EXPECT_GT(under20, 100000);  // > 50%
}

TEST(ZipfFanout, SupportAndMean) {
  ZipfFanout z(4, 1.0);
  EXPECT_EQ(z.support(), (std::vector<std::uint32_t>{1, 2, 3, 4}));
  // mean = sum k * (1/k) / H_4 = 4 / (1 + 1/2 + 1/3 + 1/4)
  EXPECT_NEAR(z.mean(), 4.0 / (25.0 / 12.0), 1e-12);
}

// ---------------------------------------------------------------- trace

TEST(Trace, GenerateRespectsSpec) {
  TraceSpec spec;
  spec.num_queries = 10000;
  spec.class_probabilities = {0.5, 0.5};
  PoissonProcess arrivals(0.1);
  FixedFanout fanout(4);
  Rng rng(21);
  const auto trace = generate_trace(spec, arrivals, fanout, rng);
  ASSERT_EQ(trace.size(), 10000u);
  double prev = 0.0;
  std::size_t class1 = 0;
  for (const auto& rec : trace) {
    EXPECT_GE(rec.arrival_ms, prev);
    prev = rec.arrival_ms;
    EXPECT_EQ(rec.fanout, 4u);
    EXPECT_LE(rec.class_id, 1u);
    class1 += rec.class_id;
  }
  EXPECT_NEAR(class1 / 10000.0, 0.5, 0.02);
  // Mean arrival gap = 10 ms.
  EXPECT_NEAR(trace.back().arrival_ms / 10000.0, 10.0, 0.5);
}

TEST(Trace, CsvRoundTrip) {
  TraceSpec spec;
  spec.num_queries = 500;
  spec.class_probabilities = {0.3, 0.7};
  PoissonProcess arrivals(1.0);
  auto mix = CategoricalFanout::paper_mix();
  Rng rng(22);
  const auto trace = generate_trace(spec, arrivals, mix, rng);

  std::stringstream ss;
  write_trace_csv(trace, ss);
  const auto loaded = read_trace_csv(ss);
  EXPECT_EQ(trace, loaded);
}

TEST(Trace, RejectsMalformedCsv) {
  {
    std::stringstream ss("wrong header\n1,0,1\n");
    EXPECT_THROW(read_trace_csv(ss), CheckFailure);
  }
  {
    std::stringstream ss("arrival_ms,class_id,fanout\nnot-a-number,0,1\n");
    EXPECT_THROW(read_trace_csv(ss), CheckFailure);
  }
  {
    // Non-monotone arrivals.
    std::stringstream ss("arrival_ms,class_id,fanout\n5,0,1\n1,0,1\n");
    EXPECT_THROW(read_trace_csv(ss), CheckFailure);
  }
  {
    // Zero fanout.
    std::stringstream ss("arrival_ms,class_id,fanout\n1,0,0\n");
    EXPECT_THROW(read_trace_csv(ss), CheckFailure);
  }
}

TEST(Trace, EmptyClassProbabilitiesMeansSingleClass) {
  TraceSpec spec;
  spec.num_queries = 100;
  PoissonProcess arrivals(1.0);
  FixedFanout fanout(1);
  Rng rng(23);
  const auto trace = generate_trace(spec, arrivals, fanout, rng);
  for (const auto& rec : trace) EXPECT_EQ(rec.class_id, 0u);
}

}  // namespace
}  // namespace tailguard
