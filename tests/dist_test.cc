// Unit + property tests for src/dist: parametric distributions, the
// piecewise-linear-quantile distribution and arrival processes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "dist/arrival.h"
#include "dist/piecewise_linear_quantile.h"
#include "dist/standard.h"

namespace tailguard {
namespace {

// Property suite shared by every distribution: cdf/quantile consistency,
// monotonicity, and sample-vs-analytic agreement.
struct DistCase {
  std::string label;
  DistributionPtr dist;
  double mean_tol;  // relative tolerance on the sampled mean
};

class DistributionProperties : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionProperties, QuantileCdfRoundTrip) {
  const auto& d = *GetParam().dist;
  for (double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    const double x = d.quantile(p);
    EXPECT_NEAR(d.cdf(x), p, 1e-6) << GetParam().label << " p=" << p;
  }
}

TEST_P(DistributionProperties, CdfMonotone) {
  const auto& d = *GetParam().dist;
  const double lo = d.quantile(0.001);
  const double hi = d.quantile(0.999);
  double prev = -1.0;
  for (int i = 0; i <= 200; ++i) {
    const double x = lo + (hi - lo) * i / 200.0;
    const double f = d.cdf(x);
    EXPECT_GE(f, prev - 1e-12) << GetParam().label << " x=" << x;
    prev = f;
  }
}

TEST_P(DistributionProperties, QuantileMonotone) {
  const auto& d = *GetParam().dist;
  double prev = -std::numeric_limits<double>::infinity();
  for (int i = 1; i < 100; ++i) {
    const double q = d.quantile(i / 100.0);
    EXPECT_GE(q, prev) << GetParam().label;
    prev = q;
  }
}

TEST_P(DistributionProperties, SampleMeanMatchesAnalytic) {
  const auto& d = *GetParam().dist;
  Rng rng(2024);
  Summary s;
  for (int i = 0; i < 200000; ++i) s.add(d.sample(rng));
  EXPECT_NEAR(s.mean(), d.mean(), GetParam().mean_tol * d.mean())
      << GetParam().label;
}

TEST_P(DistributionProperties, SampleQuantilesMatchAnalytic) {
  const auto& d = *GetParam().dist;
  Rng rng(99);
  std::vector<double> sample(200000);
  for (auto& x : sample) x = d.sample(rng);
  for (double p : {0.5, 0.9, 0.99}) {
    const double expected = d.quantile(p);
    const double got = percentile(sample, p * 100.0);
    EXPECT_NEAR(got, expected, 0.05 * std::max(1.0, std::abs(expected)))
        << GetParam().label << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionProperties,
    ::testing::Values(
        DistCase{"uniform", std::make_shared<Uniform>(2.0, 8.0), 0.01},
        DistCase{"exponential", std::make_shared<Exponential>(3.0), 0.02},
        DistCase{"pareto", std::make_shared<Pareto>(1.0, 2.5), 0.05},
        DistCase{"lognormal", std::make_shared<Lognormal>(0.0, 0.5), 0.02},
        DistCase{"plq",
                 std::make_shared<PiecewiseLinearQuantile>(
                     std::vector<QuantileAnchor>{
                         {0.0, 1.0}, {0.5, 2.0}, {0.9, 5.0}, {1.0, 10.0}}),
                 0.02},
        DistCase{"mixture",
                 std::make_shared<Mixture>(
                     std::vector<DistributionPtr>{
                         std::make_shared<Exponential>(1.0),
                         std::make_shared<Uniform>(5.0, 6.0)},
                     std::vector<double>{0.7, 0.3}),
                 0.02},
        DistCase{"weibull_heavy", std::make_shared<Weibull>(0.7, 1.0), 0.03},
        DistCase{"weibull_light", std::make_shared<Weibull>(2.0, 3.0), 0.02},
        DistCase{"gamma_small_shape", std::make_shared<Gamma>(0.5, 2.0),
                 0.03},
        DistCase{"gamma_large_shape", std::make_shared<Gamma>(4.0, 0.5),
                 0.02},
        DistCase{"scaled_exponential",
                 std::make_shared<Scaled>(std::make_shared<Exponential>(1.0),
                                          2.5, 0.4),
                 0.02}),
    [](const auto& info) { return info.param.label; });

// --------------------------------------------------------- deterministic

TEST(Deterministic, PointMass) {
  Deterministic d(3.5);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(d.sample(rng), 3.5);
  EXPECT_DOUBLE_EQ(d.mean(), 3.5);
  EXPECT_DOUBLE_EQ(d.cdf(3.4), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(3.5), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.7), 3.5);
}

// ------------------------------------------------------------ exponential

TEST(Exponential, AnalyticForms) {
  Exponential d(2.0);
  EXPECT_NEAR(d.cdf(2.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(d.quantile(0.5), 2.0 * std::log(2.0), 1e-12);
  EXPECT_THROW(Exponential(-1.0), CheckFailure);
}

// ----------------------------------------------------------------- pareto

TEST(Pareto, WithMeanProducesRequestedMean) {
  const Pareto p = Pareto::with_mean(4.0, 1.5);
  EXPECT_NEAR(p.mean(), 4.0, 1e-12);
}

TEST(Pareto, InfiniteMeanBelowShapeOne) {
  Pareto p(1.0, 0.9);
  EXPECT_TRUE(std::isinf(p.mean()));
  EXPECT_THROW(Pareto::with_mean(1.0, 0.9), CheckFailure);
}

TEST(Pareto, TailIsHeavy) {
  Pareto p(1.0, 1.5);
  // P[X > x] = x^-1.5
  EXPECT_NEAR(1.0 - p.cdf(4.0), std::pow(4.0, -1.5), 1e-12);
}

// -------------------------------------------------------------- lognormal

TEST(Lognormal, MedianAndMean) {
  Lognormal d(1.0, 0.5);
  EXPECT_NEAR(d.quantile(0.5), std::exp(1.0), 1e-6);
  EXPECT_NEAR(d.mean(), std::exp(1.0 + 0.125), 1e-9);
}

// ---------------------------------------------------------------- mixture

TEST(Mixture, CdfIsWeightedSum) {
  auto a = std::make_shared<Uniform>(0.0, 1.0);
  auto b = std::make_shared<Uniform>(10.0, 11.0);
  Mixture m({a, b}, {0.25, 0.75});
  EXPECT_NEAR(m.cdf(1.0), 0.25, 1e-12);
  EXPECT_NEAR(m.cdf(10.5), 0.25 + 0.75 * 0.5, 1e-12);
  EXPECT_NEAR(m.mean(), 0.25 * 0.5 + 0.75 * 10.5, 1e-12);
}

TEST(Mixture, RejectsBadWeights) {
  auto a = std::make_shared<Uniform>(0.0, 1.0);
  EXPECT_THROW(Mixture({a}, {0.0}), CheckFailure);
  EXPECT_THROW(Mixture({a}, {1.0, 1.0}), CheckFailure);
  EXPECT_THROW(Mixture({}, {}), CheckFailure);
}

// --------------------------------------------- piecewise linear quantile

TEST(PiecewiseLinearQuantile, AnchorsAreExact) {
  PiecewiseLinearQuantile d({{0.0, 1.0}, {0.5, 2.0}, {0.99, 4.0}, {1.0, 8.0}});
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 4.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 8.0);
}

TEST(PiecewiseLinearQuantile, ClosedFormMean) {
  PiecewiseLinearQuantile d({{0.0, 0.0}, {1.0, 2.0}});  // uniform(0,2)
  EXPECT_DOUBLE_EQ(d.mean(), 1.0);
}

TEST(PiecewiseLinearQuantile, CdfInvertsQuantile) {
  PiecewiseLinearQuantile d(
      {{0.0, 1.0}, {0.25, 1.5}, {0.5, 2.0}, {0.9, 5.0}, {1.0, 10.0}});
  for (double p : {0.1, 0.25, 0.4, 0.66, 0.95}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12) << p;
  }
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(11.0), 1.0);
}

TEST(PiecewiseLinearQuantile, ValidatesAnchors) {
  using V = std::vector<QuantileAnchor>;
  EXPECT_THROW(PiecewiseLinearQuantile(V{{0.0, 1.0}}), CheckFailure);
  EXPECT_THROW(PiecewiseLinearQuantile(V{{0.1, 1.0}, {1.0, 2.0}}),
               CheckFailure);
  EXPECT_THROW(PiecewiseLinearQuantile(V{{0.0, 1.0}, {0.9, 2.0}}),
               CheckFailure);
  EXPECT_THROW(PiecewiseLinearQuantile(V{{0.0, 2.0}, {1.0, 1.0}}),
               CheckFailure);  // decreasing q
  EXPECT_THROW(PiecewiseLinearQuantile(V{{0.0, 1.0}, {0.5, 2.0}, {0.5, 3.0},
                                         {1.0, 4.0}}),
               CheckFailure);  // duplicate p
}

TEST(PiecewiseLinearQuantile, FlatSegmentAllowed) {
  PiecewiseLinearQuantile d({{0.0, 1.0}, {0.5, 2.0}, {0.8, 2.0}, {1.0, 3.0}});
  EXPECT_DOUBLE_EQ(d.quantile(0.6), 2.0);
  // CDF jumps across the flat segment.
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.8);
}

// ---------------------------------------------------------------- weibull

TEST(Weibull, ShapeOneIsExponential) {
  Weibull w(1.0, 2.0);
  Exponential e(2.0);
  for (double x : {0.5, 1.0, 3.0, 10.0}) EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
}

TEST(Weibull, WithMeanHitsTarget) {
  const auto w = Weibull::with_mean(5.0, 0.8);
  EXPECT_NEAR(w.mean(), 5.0, 1e-9);
}

TEST(Weibull, SmallShapeHasHeavierTail) {
  const auto heavy = Weibull::with_mean(1.0, 0.6);
  const auto light = Weibull::with_mean(1.0, 2.0);
  EXPECT_GT(heavy.quantile(0.999), light.quantile(0.999));
}

TEST(Weibull, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 1.0), CheckFailure);
  EXPECT_THROW(Weibull(1.0, -1.0), CheckFailure);
}

// ------------------------------------------------------------------ gamma

TEST(Gamma, ShapeOneIsExponential) {
  Gamma g(1.0, 3.0);
  Exponential e(3.0);
  for (double x : {0.5, 2.0, 9.0}) EXPECT_NEAR(g.cdf(x), e.cdf(x), 1e-10);
}

TEST(Gamma, RegularizedGammaKnownValues) {
  // P(1, x) = 1 - e^-x; P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(regularized_gamma_p(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  EXPECT_NEAR(regularized_gamma_p(0.5, 1.0), std::erf(1.0), 1e-10);
  // Large-x continued-fraction branch.
  EXPECT_NEAR(regularized_gamma_p(2.0, 20.0),
              1.0 - std::exp(-20.0) * (1.0 + 20.0), 1e-12);
}

TEST(Gamma, MeanAndSamplingAgree) {
  Gamma g(3.0, 2.0);
  EXPECT_DOUBLE_EQ(g.mean(), 6.0);
  Rng rng(55);
  Summary s;
  for (int i = 0; i < 200000; ++i) s.add(g.sample(rng));
  EXPECT_NEAR(s.mean(), 6.0, 0.1);
  // Var = shape * scale^2 = 12.
  EXPECT_NEAR(s.variance(), 12.0, 0.4);
}

TEST(Gamma, SamplingSmallShape) {
  Gamma g(0.3, 1.0);
  Rng rng(56);
  Summary s;
  for (int i = 0; i < 200000; ++i) {
    const double x = g.sample(rng);
    ASSERT_GE(x, 0.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 0.3, 0.01);
}

// ----------------------------------------------------------------- scaled

TEST(Scaled, AffineTransformIsExact) {
  auto base = std::make_shared<Uniform>(0.0, 1.0);
  Scaled s(base, 4.0, 1.0);  // uniform(1, 5)
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.cdf(2.0), 0.25);
}

TEST(Scaled, RejectsBadFactor) {
  auto base = std::make_shared<Exponential>(1.0);
  EXPECT_THROW(Scaled(base, 0.0), CheckFailure);
  EXPECT_THROW(Scaled(nullptr, 1.0), CheckFailure);
}

// --------------------------------------------------------------- arrivals

TEST(PoissonProcess, MeanInterarrivalMatchesRate) {
  PoissonProcess p(0.5);  // 0.5 arrivals/ms -> mean gap 2 ms
  Rng rng(7);
  Summary s;
  for (int i = 0; i < 100000; ++i) s.add(p.next_interarrival(rng));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(PoissonProcess, InterarrivalsAreExponential) {
  PoissonProcess p(1.0);
  Rng rng(7);
  std::vector<double> gaps(100000);
  for (auto& g : gaps) g = p.next_interarrival(rng);
  // Memoryless check: P[X > 1] ~ e^-1.
  const double frac =
      static_cast<double>(std::count_if(gaps.begin(), gaps.end(),
                                        [](double g) { return g > 1.0; })) /
      gaps.size();
  EXPECT_NEAR(frac, std::exp(-1.0), 0.01);
}

TEST(ParetoProcess, MeanInterarrivalMatchesRate) {
  ParetoProcess p(0.25, 1.8);
  Rng rng(13);
  Summary s;
  for (int i = 0; i < 400000; ++i) s.add(p.next_interarrival(rng));
  EXPECT_NEAR(s.mean(), 4.0, 0.25);
}

TEST(ParetoProcess, BurstierThanPoisson) {
  // Squared coefficient of variation: exponential has 1; Pareto(1.8) much
  // more. Compare dispersion of counts in fixed intervals instead of raw
  // variance (which converges slowly): the Pareto process should produce a
  // clearly heavier maximum gap.
  PoissonProcess poisson(1.0);
  ParetoProcess pareto(1.0, 1.5);
  Rng r1(5), r2(5);
  double max_poisson = 0.0, max_pareto = 0.0;
  for (int i = 0; i < 100000; ++i) {
    max_poisson = std::max(max_poisson, poisson.next_interarrival(r1));
    max_pareto = std::max(max_pareto, pareto.next_interarrival(r2));
  }
  EXPECT_GT(max_pareto, max_poisson);
}

TEST(ArrivalProcess, WithRateRescales) {
  PoissonProcess p(1.0);
  const auto p2 = p.with_rate(4.0);
  EXPECT_DOUBLE_EQ(p2->rate(), 4.0);
  ParetoProcess q(1.0, 1.6);
  const auto q2 = q.with_rate(2.0);
  EXPECT_DOUBLE_EQ(q2->rate(), 2.0);
  EXPECT_EQ(q2->name(), "Pareto");
}

TEST(ArrivalProcess, RejectsBadParameters) {
  EXPECT_THROW(PoissonProcess(0.0), CheckFailure);
  EXPECT_THROW(ParetoProcess(1.0, 1.0), CheckFailure);
}

// ------------------------------------------------------------- inversion

TEST(InvertCdfBisect, RecoverKnownQuantile) {
  Exponential d(1.0);
  const double x = invert_cdf_bisect(d, 0.9, 0.0, 100.0);
  EXPECT_NEAR(x, d.quantile(0.9), 1e-9);
}

}  // namespace
}  // namespace tailguard
