// Tests for the wire-level gossip extension (net/): GossipHello/GossipDelta
// serde round-trips and truncation rejection, the daemon's periodic delta
// stream over a raw socket, the dispatcher-level end-to-end path (dispatcher
// B's CDF model learns from dispatcher A's completions, exactly once), and
// the mixed-version story — a gossip-off daemon behaves exactly like a
// pre-gossip build and dispatchers fall back to the ModelSync backfill.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "core/cdf_model.h"
#include "net/dispatcher.h"
#include "net/socket.h"
#include "net/task_server.h"
#include "net/wire.h"

namespace tailguard {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------------- wire

TEST(GossipWire, HelloRoundTrip) {
  net::GossipHelloMsg msg;
  msg.gossip_version = 1;
  msg.origin = 3;
  const auto bytes = net::encode(msg);
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  const auto frame = buf.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, net::MsgType::kGossipHello);
  net::GossipHelloMsg decoded;
  ASSERT_TRUE(net::decode(*frame, &decoded));
  EXPECT_EQ(decoded, msg);
}

net::GossipDeltaMsg sample_delta() {
  net::GossipDeltaMsg msg;
  msg.delta.origin = 0;
  msg.delta.seq = 17;
  msg.delta.dequeues_recorded = 40;
  msg.delta.dequeues_missed = 3;
  ShardDelta::ServerEntry a;
  a.server = 0;
  a.samples_ms = {0.5, 1.25, 30.0};
  a.samples_dropped = 2;
  a.load_estimate = 7;
  a.has_load = true;
  ShardDelta::ServerEntry b;
  b.server = 4;
  b.has_load = false;
  msg.delta.servers = {a, b};
  return msg;
}

TEST(GossipWire, DeltaRoundTrip) {
  const net::GossipDeltaMsg msg = sample_delta();
  const auto bytes = net::encode(msg);
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  const auto frame = buf.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, net::MsgType::kGossipDelta);
  net::GossipDeltaMsg decoded;
  ASSERT_TRUE(net::decode(*frame, &decoded));
  EXPECT_EQ(decoded, msg);
}

TEST(GossipWire, EmptyDeltaRoundTrip) {
  net::GossipDeltaMsg msg;
  msg.delta.seq = 1;
  const auto bytes = net::encode(msg);
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  net::GossipDeltaMsg decoded;
  ASSERT_TRUE(net::decode(*buf.next(), &decoded));
  EXPECT_EQ(decoded, msg);
  EXPECT_TRUE(decoded.delta.empty());
}

TEST(GossipWire, DecodeRejectsTruncatedDelta) {
  const auto bytes = net::encode(sample_delta());
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  auto frame = buf.next();
  ASSERT_TRUE(frame.has_value());
  // Every truncation point must be rejected, never mis-parsed.
  net::Frame cut = *frame;
  while (!cut.payload.empty()) {
    cut.payload.pop_back();
    net::GossipDeltaMsg decoded;
    EXPECT_FALSE(net::decode(cut, &decoded)) << cut.payload.size();
  }
}

TEST(GossipWire, DecodeRejectsImpossibleCounts) {
  // A tiny payload claiming 2^31 server entries must fail the
  // payload-impossible guard before any allocation happens.
  net::Frame frame;
  frame.type = net::MsgType::kGossipDelta;
  frame.payload = {0, 0, 0, 0,              // origin
                   1, 0, 0, 0, 0, 0, 0, 0,  // seq
                   0, 0, 0, 0, 0, 0, 0, 0,  // dequeues_recorded
                   0, 0, 0, 0, 0, 0, 0, 0,  // dequeues_missed
                   0xff, 0xff, 0xff, 0x7f}; // num_servers = 2^31 - 1
  net::GossipDeltaMsg decoded;
  EXPECT_FALSE(net::decode(frame, &decoded));
}

// ------------------------------------------------------- raw-socket client

/// Minimal blocking-ish wire client standing in for an *old* dispatcher: it
/// understands the v1 framing but none of the gossip message types.
class TestClient {
 public:
  bool connect_to(std::uint16_t port) {
    std::string error;
    fd_ = net::connect_tcp("127.0.0.1", port, &error);
    if (!fd_.valid()) return false;
    pollfd p{fd_.get(), POLLOUT, 0};
    ::poll(&p, 1, 2000);
    return net::connect_finished(fd_.get());
  }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_.get(), bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd p{fd_.get(), POLLOUT, 0};
        ::poll(&p, 1, 1000);
      } else {
        return;
      }
    }
  }

  std::optional<net::Frame> read_frame(int timeout_ms = 3000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      if (auto frame = in_.next()) return frame;
      if (std::chrono::steady_clock::now() > deadline) return std::nullopt;
      pollfd p{fd_.get(), POLLIN, 0};
      ::poll(&p, 1, 50);
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
      if (n > 0) in_.append(buf, static_cast<std::size_t>(n));
    }
  }

  /// Reads frames until one of `type` arrives (skipping everything else,
  /// exactly as an old dispatcher would skip unknown message types).
  std::optional<net::Frame> read_frame_of(net::MsgType type,
                                          int timeout_ms = 5000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() <= deadline) {
      auto frame = read_frame(200);
      if (frame.has_value() && frame->type == type) return frame;
    }
    return std::nullopt;
  }

  void close() { fd_.reset(); }

 private:
  net::ScopedFd fd_;
  net::FrameBuffer in_;
};

TEST(GossipDaemon, AnnouncesAndStreamsDeltasOverRawSocket) {
  net::TaskServerOptions options;
  options.gossip_interval_ms = 20.0;
  net::TaskServer server(options);

  TestClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  client.send_bytes(net::encode(net::HelloMsg{.peer_name = "raw"}));
  const auto ack = client.read_frame();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->type, net::MsgType::kHelloAck);

  // Gossip-capable daemons announce right after the handshake.
  const auto hello = client.read_frame_of(net::MsgType::kGossipHello);
  ASSERT_TRUE(hello.has_value());
  net::GossipHelloMsg gossip;
  ASSERT_TRUE(net::decode(*hello, &gossip));
  EXPECT_EQ(gossip.gossip_version, 1u);

  // Periodic deltas flow even with nothing to report; the sole client's own
  // completions are excluded from its stream, so samples stay empty.
  const auto delta_frame = client.read_frame_of(net::MsgType::kGossipDelta);
  ASSERT_TRUE(delta_frame.has_value());
  net::GossipDeltaMsg delta;
  ASSERT_TRUE(net::decode(*delta_frame, &delta));
  EXPECT_GE(delta.delta.seq, 1u);
  for (const auto& entry : delta.delta.servers)
    EXPECT_TRUE(entry.samples_ms.empty());
  EXPECT_EQ(delta.delta.dequeues_recorded, 0u);
  EXPECT_GE(server.gossip_deltas_sent(), delta.delta.seq);
}

TEST(GossipDaemon, ShipsOtherConnectionsCompletionsNotOwn) {
  net::TaskServerOptions options;
  options.gossip_interval_ms = 20.0;
  net::TaskServer server(options);

  TestClient submitter, observer;
  ASSERT_TRUE(submitter.connect_to(server.port()));
  ASSERT_TRUE(observer.connect_to(server.port()));
  submitter.send_bytes(net::encode(net::HelloMsg{.peer_name = "submitter"}));
  observer.send_bytes(net::encode(net::HelloMsg{.peer_name = "observer"}));
  ASSERT_TRUE(submitter.read_frame().has_value());  // HelloAck
  ASSERT_TRUE(observer.read_frame().has_value());   // HelloAck

  net::SubmitTaskMsg submit;
  submit.task = 1;
  submit.query = 1;
  submit.cls = 0;
  submit.relative_deadline_ms = 100.0;
  submit.simulated_service_ms = 0.5;
  submitter.send_bytes(net::encode(submit));
  const auto done = submitter.read_frame_of(net::MsgType::kTaskDone);
  ASSERT_TRUE(done.has_value());

  // The observer's stream eventually carries the submitter's sample...
  bool saw_sample = false;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!saw_sample && std::chrono::steady_clock::now() < deadline) {
    const auto frame = observer.read_frame_of(net::MsgType::kGossipDelta);
    ASSERT_TRUE(frame.has_value());
    net::GossipDeltaMsg msg;
    ASSERT_TRUE(net::decode(*frame, &msg));
    for (const auto& entry : msg.delta.servers)
      if (!entry.samples_ms.empty()) {
        EXPECT_GE(entry.samples_ms[0], 0.4);
        saw_sample = true;
      }
    if (saw_sample) {
      EXPECT_EQ(msg.delta.dequeues_recorded, 1u);
    }
  }
  EXPECT_TRUE(saw_sample);

  // ...while the submitter's own stream never echoes it back (TaskDone is
  // its copy; duplicating it through gossip would double-count).
  const auto own = submitter.read_frame_of(net::MsgType::kGossipDelta);
  ASSERT_TRUE(own.has_value());
  net::GossipDeltaMsg own_msg;
  ASSERT_TRUE(net::decode(*own, &own_msg));
  for (const auto& entry : own_msg.delta.servers)
    EXPECT_TRUE(entry.samples_ms.empty());
}

// -------------------------------------------------------- dispatcher e2e

net::DispatcherOptions one_server_options(std::uint16_t port) {
  net::DispatcherOptions options;
  options.servers.push_back({"127.0.0.1", port});
  options.policy = Policy::kTfEdf;
  options.classes = {{.slo_ms = 100.0, .percentile = 99.0}};
  return options;
}

TEST(GossipE2E, SecondDispatcherLearnsFromFirstExactlyOnce) {
  net::TaskServerOptions server_options;
  server_options.gossip_interval_ms = 20.0;
  server_options.num_classes = 1;
  net::TaskServer server(server_options);

  net::RemoteDispatcher a(one_server_options(server.port()));
  net::RemoteDispatcher b(one_server_options(server.port()));
  ASSERT_TRUE(a.wait_for_servers(1, 5000.0));
  ASSERT_TRUE(b.wait_for_servers(1, 5000.0));

  constexpr int kQueries = 20;
  std::vector<std::future<QueryResult>> futures;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<net::RemoteTaskSpec> tasks(1);
    tasks[0].simulated_service_ms = 0.2;
    futures.push_back(a.submit(0, std::move(tasks)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().tasks_failed, 0u);

  // B ran nothing, yet its model must converge on A's observations via the
  // daemon's gossip stream.
  const auto observations = [&] {
    return static_cast<const StreamingCdfModel&>(*b.server_model(0))
        .observations();
  };
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (observations() < kQueries &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(5ms);
  EXPECT_EQ(observations(), static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(b.gossip_capable_servers(), 1u);
  EXPECT_GT(b.gossip_deltas_absorbed(), 0u);
  EXPECT_EQ(b.gossip_duplicates_dropped(), 0u);

  // Exactly once: further empty rounds must not inflate the count, and A's
  // model holds its own TaskDone-fed samples without gossip echoes.
  std::this_thread::sleep_for(60ms);
  EXPECT_EQ(observations(), static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(static_cast<const StreamingCdfModel&>(*a.server_model(0))
                .observations(),
            static_cast<std::uint64_t>(kQueries));
}

TEST(GossipE2E, GossipOffDaemonBehavesLikePreGossipBuild) {
  // Mixed-version fleet, old daemon side: gossip_interval_ms = 0 means no
  // GossipHello, no deltas — peers only ever learn through ModelSync.
  net::TaskServer server(net::TaskServerOptions{});

  net::RemoteDispatcher a(one_server_options(server.port()));
  net::RemoteDispatcher b(one_server_options(server.port()));
  ASSERT_TRUE(a.wait_for_servers(1, 5000.0));
  ASSERT_TRUE(b.wait_for_servers(1, 5000.0));

  std::vector<net::RemoteTaskSpec> tasks(1);
  tasks[0].simulated_service_ms = 0.2;
  EXPECT_EQ(a.submit(0, std::move(tasks)).get().tasks_failed, 0u);
  std::this_thread::sleep_for(50ms);

  EXPECT_EQ(a.gossip_capable_servers(), 0u);
  EXPECT_EQ(b.gossip_capable_servers(), 0u);
  EXPECT_EQ(b.gossip_deltas_absorbed(), 0u);
  EXPECT_EQ(static_cast<const StreamingCdfModel&>(*b.server_model(0))
                .observations(),
            0u);
}

TEST(GossipE2E, ModelSyncBackfillStillCoversDisconnectedEras) {
  // The fallback path of the mixed-version story: samples completed with no
  // owner connected reach the next dispatcher through ModelSync backfill,
  // gossip or not.
  net::TaskServer server(net::TaskServerOptions{});
  {
    TestClient first;
    ASSERT_TRUE(first.connect_to(server.port()));
    first.send_bytes(net::encode(net::HelloMsg{.peer_name = "first"}));
    ASSERT_TRUE(first.read_frame().has_value());  // HelloAck
    net::SubmitTaskMsg submit;
    submit.task = 1;
    submit.query = 1;
    submit.relative_deadline_ms = 1000.0;
    submit.simulated_service_ms = 30.0;
    first.send_bytes(net::encode(submit));
    std::this_thread::sleep_for(5ms);  // let the submit land, not finish
    first.close();
  }

  // ModelSync is sent at Hello time, so the orphaned completion must land in
  // the buffer before the late dispatcher's handshake.
  const auto executed_deadline = std::chrono::steady_clock::now() + 5s;
  while (server.tasks_executed() == 0 &&
         std::chrono::steady_clock::now() < executed_deadline)
    std::this_thread::sleep_for(5ms);
  ASSERT_EQ(server.tasks_executed(), 1u);

  net::RemoteDispatcher late(one_server_options(server.port()));
  ASSERT_TRUE(late.wait_for_servers(1, 5000.0));
  const auto observations = [&] {
    return static_cast<const StreamingCdfModel&>(*late.server_model(0))
        .observations();
  };
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (observations() == 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(5ms);
  EXPECT_GE(observations(), 1u);
}

}  // namespace
}  // namespace tailguard
