// Tests for the admission controller and the query tracker.
#include <gtest/gtest.h>

#include "common/check.h"
#include "core/admission.h"
#include "core/query_tracker.h"

namespace tailguard {
namespace {

// ------------------------------------------------------------- admission

constexpr TimeMs kNoAge = 0.0;  // disable the age bound in count-only tests

AdmissionOptions count_window(std::size_t tasks, double threshold) {
  return {.window_tasks = tasks,
          .window_ms = kNoAge,
          .miss_ratio_threshold = threshold};
}

TEST(AdmissionController, AdmitsWhileBelowThreshold) {
  AdmissionController ctl(count_window(100, 0.05));
  for (int i = 0; i < 100; ++i) ctl.record_task_dequeue(i, false);
  EXPECT_TRUE(ctl.should_admit(100.0));
  EXPECT_DOUBLE_EQ(ctl.miss_ratio(100.0), 0.0);
}

TEST(AdmissionController, RejectsAboveThreshold) {
  AdmissionController ctl(count_window(100, 0.05));
  for (int i = 0; i < 94; ++i) ctl.record_task_dequeue(i, false);
  for (int i = 0; i < 6; ++i) ctl.record_task_dequeue(94 + i, true);  // 6%
  EXPECT_FALSE(ctl.should_admit(100.0));
}

TEST(AdmissionController, RecoversWhenWindowSlides) {
  AdmissionController ctl(count_window(50, 0.1));
  for (int i = 0; i < 50; ++i) ctl.record_task_dequeue(i, true);
  EXPECT_FALSE(ctl.should_admit(50.0));
  // Window refills with non-misses; the stale misses slide out.
  for (int i = 0; i < 50; ++i) ctl.record_task_dequeue(50 + i, false);
  EXPECT_TRUE(ctl.should_admit(100.0));
}

TEST(AdmissionController, ThresholdBoundaryIsInclusive) {
  AdmissionController ctl(count_window(100, 0.05));
  for (int i = 0; i < 95; ++i) ctl.record_task_dequeue(i, false);
  for (int i = 0; i < 5; ++i) ctl.record_task_dequeue(95 + i, true);  // 5%
  EXPECT_TRUE(ctl.should_admit(100.0));
}

TEST(AdmissionController, AgeBoundPreventsRejectionDeathSpiral) {
  // With a pure count window, a controller that has rejected everything
  // stops seeing dequeues and its miss ratio freezes above the threshold
  // forever. The age bound evicts the stale misses so admission resumes.
  AdmissionController ctl({.window_tasks = 100,
                           .window_ms = 10.0,
                           .miss_ratio_threshold = 0.05});
  for (int i = 0; i < 100; ++i) ctl.record_task_dequeue(1.0, true);
  EXPECT_FALSE(ctl.should_admit(2.0));
  // No further dequeues happen; time passes beyond the window age.
  EXPECT_TRUE(ctl.should_admit(12.0));
  EXPECT_DOUBLE_EQ(ctl.miss_ratio(12.0), 0.0);
}

TEST(AdmissionController, AgeEvictionIsPartial) {
  AdmissionController ctl({.window_tasks = 100,
                           .window_ms = 10.0,
                           .miss_ratio_threshold = 0.5});
  ctl.record_task_dequeue(0.0, true);
  ctl.record_task_dequeue(8.0, false);
  // At t=11 the first entry (age 11) is stale, the second (age 3) is not.
  EXPECT_DOUBLE_EQ(ctl.miss_ratio(11.0), 0.0);
}

TEST(AdmissionController, CountsOutcomes) {
  AdmissionController ctl(count_window(10, 0.5));
  ctl.count_admitted();
  ctl.count_admitted();
  ctl.count_rejected();
  EXPECT_EQ(ctl.admitted(), 2u);
  EXPECT_EQ(ctl.rejected(), 1u);
}

TEST(AdmissionController, RejectsBadOptions) {
  EXPECT_THROW(AdmissionController(count_window(10, 1.5)), CheckFailure);
  EXPECT_THROW(AdmissionController(count_window(0, 0.1)), CheckFailure);
}

TEST(AdmissionController, ProportionalModeRampsRejection) {
  AdmissionController ctl({.window_tasks = 100,
                           .window_ms = kNoAge,
                           .miss_ratio_threshold = 0.10,
                           .mode = AdmissionMode::kProportional,
                           .proportional_gain = 1.0});
  // 20% misses: ratio twice the threshold => reject probability 1.
  for (int i = 0; i < 80; ++i) ctl.record_task_dequeue(i, false);
  for (int i = 0; i < 20; ++i) ctl.record_task_dequeue(80 + i, true);
  EXPECT_FALSE(ctl.should_admit(100.0, 0.0));
  EXPECT_FALSE(ctl.should_admit(100.0, 0.999));
}

TEST(AdmissionController, ProportionalModePartialRejection) {
  AdmissionController ctl({.window_tasks = 100,
                           .window_ms = kNoAge,
                           .miss_ratio_threshold = 0.10,
                           .mode = AdmissionMode::kProportional,
                           .proportional_gain = 1.0});
  // 15% misses: reject probability = (0.15 - 0.10) / 0.10 = 0.5.
  for (int i = 0; i < 85; ++i) ctl.record_task_dequeue(i, false);
  for (int i = 0; i < 15; ++i) ctl.record_task_dequeue(85 + i, true);
  EXPECT_FALSE(ctl.should_admit(100.0, 0.49));  // coin below reject prob
  EXPECT_TRUE(ctl.should_admit(100.0, 0.51));   // coin above reject prob
}

TEST(AdmissionController, ProportionalModeAdmitsBelowThreshold) {
  AdmissionController ctl({.window_tasks = 100,
                           .window_ms = kNoAge,
                           .miss_ratio_threshold = 0.10,
                           .mode = AdmissionMode::kProportional});
  for (int i = 0; i < 100; ++i) ctl.record_task_dequeue(i, i % 20 == 0);
  EXPECT_TRUE(ctl.should_admit(100.0, 0.0));  // 5% < 10%
}

TEST(AdmissionController, PaperDefaults) {
  AdmissionOptions opt;
  EXPECT_EQ(opt.window_tasks, 100000u);   // 1000 queries x 100 tasks (§IV.D)
  EXPECT_DOUBLE_EQ(opt.miss_ratio_threshold, 0.017);  // R_th = 1.7%
}

// ---------------------------------------------------------- query tracker

TEST(QueryTracker, CompletesAfterAllTasks) {
  QueryTracker tracker;
  const QueryId id = tracker.begin_query(10.0, 1, 3, 25.0);
  EXPECT_EQ(tracker.in_flight(), 1u);
  EXPECT_FALSE(tracker.complete_task(id));
  EXPECT_FALSE(tracker.complete_task(id));
  QueryState final_state;
  EXPECT_TRUE(tracker.complete_task(id, &final_state));
  EXPECT_EQ(tracker.in_flight(), 0u);
  EXPECT_DOUBLE_EQ(final_state.t0, 10.0);
  EXPECT_EQ(final_state.cls, 1u);
  EXPECT_EQ(final_state.fanout, 3u);
  EXPECT_DOUBLE_EQ(final_state.deadline, 25.0);
}

TEST(QueryTracker, SequentialIds) {
  QueryTracker tracker;
  EXPECT_EQ(tracker.begin_query(0.0, 0, 1, 1.0), 0u);
  EXPECT_EQ(tracker.begin_query(0.0, 0, 1, 1.0), 1u);
  EXPECT_EQ(tracker.started(), 2u);
}

TEST(QueryTracker, StateLookup) {
  QueryTracker tracker;
  const QueryId id = tracker.begin_query(5.0, 2, 4, 9.0);
  EXPECT_EQ(tracker.state(id).remaining, 4u);
  tracker.complete_task(id);
  EXPECT_EQ(tracker.state(id).remaining, 3u);
}

TEST(QueryTracker, ErrorsOnUnknownOrOverCompleted) {
  QueryTracker tracker;
  EXPECT_THROW(tracker.state(99), CheckFailure);
  EXPECT_THROW(tracker.complete_task(99), CheckFailure);
  const QueryId id = tracker.begin_query(0.0, 0, 1, 1.0);
  EXPECT_TRUE(tracker.complete_task(id));
  // Query erased after completion: further completions are errors.
  EXPECT_THROW(tracker.complete_task(id), CheckFailure);
  EXPECT_THROW(tracker.begin_query(0.0, 0, 0, 1.0), CheckFailure);
}

TEST(QueryTracker, ManyInterleavedQueries) {
  QueryTracker tracker;
  std::vector<QueryId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(tracker.begin_query(i, 0, 2, i + 10.0));
  EXPECT_EQ(tracker.in_flight(), 100u);
  for (QueryId id : ids) EXPECT_FALSE(tracker.complete_task(id));
  for (QueryId id : ids) EXPECT_TRUE(tracker.complete_task(id));
  EXPECT_EQ(tracker.in_flight(), 0u);
}

}  // namespace
}  // namespace tailguard
