// Tests for request-level decomposition (Eq. 7 and the budget-split
// strategies).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "common/check.h"
#include "core/order_stats.h"
#include "core/request.h"
#include "dist/standard.h"

namespace tailguard {
namespace {

TEST(RequestQuantile, SingleQueryMatchesOrderStatistics) {
  DistributionCdfModel model(std::make_shared<Exponential>(1.0));
  RequestQuerySpec q{.fanout = 10, .model = &model};
  Rng rng(7);
  const TimeMs mc =
      estimate_request_unloaded_quantile({&q, 1}, 0.99, rng, 400000);
  const TimeMs exact = homogeneous_unloaded_quantile(model, 10, 0.99);
  EXPECT_NEAR(mc, exact, 0.03 * exact);
}

TEST(RequestQuantile, SubadditiveAcrossQueries) {
  // The paper's motivation for Eq. 7: x_p^{Ru} <= sum of the per-query
  // x_p^u (strictly less for independent queries), which is why the naive
  // per-query decomposition over-provisions.
  DistributionCdfModel model(std::make_shared<Exponential>(1.0));
  std::vector<RequestQuerySpec> queries(4,
                                        {.fanout = 20, .model = &model});
  Rng rng(11);
  const TimeMs request_q =
      estimate_request_unloaded_quantile(queries, 0.99, rng, 200000);
  const TimeMs per_query = homogeneous_unloaded_quantile(model, 20, 0.99);
  EXPECT_LT(request_q, 4.0 * per_query);
  // ...but more than a single query's quantile.
  EXPECT_GT(request_q, per_query);
}

TEST(RequestQuantile, GrowsWithQueryCount) {
  DistributionCdfModel model(std::make_shared<Exponential>(2.0));
  Rng rng(13);
  double prev = 0.0;
  for (std::size_t m : {1u, 2u, 4u, 8u}) {
    std::vector<RequestQuerySpec> queries(m, {.fanout = 5, .model = &model});
    const TimeMs x =
        estimate_request_unloaded_quantile(queries, 0.95, rng, 100000);
    EXPECT_GT(x, prev) << "M=" << m;
    prev = x;
  }
}

TEST(RequestQuantile, Validation) {
  DistributionCdfModel model(std::make_shared<Exponential>(1.0));
  RequestQuerySpec q{.fanout = 1, .model = &model};
  Rng rng(1);
  EXPECT_THROW(estimate_request_unloaded_quantile({}, 0.99, rng),
               CheckFailure);
  EXPECT_THROW(estimate_request_unloaded_quantile({&q, 1}, 0.0, rng),
               CheckFailure);
  EXPECT_THROW(estimate_request_unloaded_quantile({&q, 1}, 0.99, rng, 10),
               CheckFailure);
  RequestQuerySpec bad{.fanout = 0, .model = &model};
  EXPECT_THROW(estimate_request_unloaded_quantile({&bad, 1}, 0.99, rng),
               CheckFailure);
}

TEST(BudgetSplit, EqualSumsToTotal) {
  DistributionCdfModel model(std::make_shared<Exponential>(1.0));
  std::vector<RequestQuerySpec> queries(3, {.fanout = 4, .model = &model});
  const auto budgets =
      split_request_budget(9.0, queries, 0.99, BudgetSplit::kEqual);
  ASSERT_EQ(budgets.size(), 3u);
  for (TimeMs b : budgets) EXPECT_DOUBLE_EQ(b, 3.0);
}

TEST(BudgetSplit, ProportionalFavoursHighFanout) {
  DistributionCdfModel model(std::make_shared<Exponential>(1.0));
  std::vector<RequestQuerySpec> queries = {
      {.fanout = 1, .model = &model},
      {.fanout = 100, .model = &model},
  };
  const auto budgets = split_request_budget(
      10.0, queries, 0.99, BudgetSplit::kProportionalToUnloaded);
  ASSERT_EQ(budgets.size(), 2u);
  EXPECT_NEAR(std::accumulate(budgets.begin(), budgets.end(), 0.0), 10.0,
              1e-9);
  // The fanout-100 query has roughly twice the unloaded quantile of the
  // fanout-1 query for an exponential, so it should get the larger share.
  EXPECT_GT(budgets[1], budgets[0]);
}

TEST(BudgetSplit, AdditivityPreserved) {
  // Eq. 7: any split whose budgets sum to T_b^R preserves the request
  // guarantee; both strategies must satisfy the invariant.
  DistributionCdfModel a(std::make_shared<Exponential>(0.5));
  DistributionCdfModel b(std::make_shared<Exponential>(3.0));
  std::vector<RequestQuerySpec> queries = {
      {.fanout = 7, .model = &a},
      {.fanout = 3, .model = &b},
      {.fanout = 50, .model = &a},
  };
  for (auto split :
       {BudgetSplit::kEqual, BudgetSplit::kProportionalToUnloaded}) {
    const auto budgets = split_request_budget(42.0, queries, 0.99, split);
    EXPECT_NEAR(std::accumulate(budgets.begin(), budgets.end(), 0.0), 42.0,
                1e-9);
  }
}

}  // namespace
}  // namespace tailguard
