// Tests for the order-statistics engine (Eqs. 1-2) and the quantile cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>
#include <memory>

#include "common/check.h"
#include "core/order_stats.h"
#include "dist/standard.h"

namespace tailguard {
namespace {

DistributionCdfModel exp_model(double mean) {
  return DistributionCdfModel(std::make_shared<Exponential>(mean));
}

TEST(HomogeneousQuantile, FanoutOneIsPlainQuantile) {
  auto model = exp_model(1.0);
  EXPECT_NEAR(homogeneous_unloaded_quantile(model, 1, 0.99),
              model.quantile(0.99), 1e-12);
}

TEST(HomogeneousQuantile, MatchesClosedFormForExponential) {
  // max of k exponentials: F(t)^k = p  =>  t = -ln(1 - p^{1/k}).
  auto model = exp_model(1.0);
  for (std::uint32_t k : {2u, 10u, 100u, 1000u}) {
    const double expected =
        -std::log(1.0 - std::pow(0.99, 1.0 / static_cast<double>(k)));
    EXPECT_NEAR(homogeneous_unloaded_quantile(model, k, 0.99), expected, 1e-9)
        << "k=" << k;
  }
}

TEST(HomogeneousQuantile, IncreasesWithFanout) {
  // Larger fanout => the max is stochastically larger => larger x_p^u.
  // This is the monotonicity that makes fanout-aware budgets tighter.
  auto model = exp_model(2.0);
  double prev = 0.0;
  for (std::uint32_t k : {1u, 2u, 5u, 10u, 50u, 100u, 500u}) {
    const double x = homogeneous_unloaded_quantile(model, k, 0.99);
    EXPECT_GT(x, prev) << "k=" << k;
    prev = x;
  }
}

TEST(HomogeneousQuantile, IncreasesWithPercentile) {
  auto model = exp_model(1.0);
  EXPECT_LT(homogeneous_unloaded_quantile(model, 10, 0.95),
            homogeneous_unloaded_quantile(model, 10, 0.99));
}

TEST(HomogeneousQuantile, PaperIntroExample) {
  // Paper §I: if each task has 1% chance of exceeding 100 ms, a query with
  // kf=100 has 1 - 0.99^100 ≈ 63.4% chance. Conversely, meeting p99 at
  // kf=100 requires the per-task quantile at 0.99^{1/100} ≈ 0.9999.
  auto model = exp_model(10.0);
  const double x1 = homogeneous_unloaded_quantile(model, 1, 0.99);
  const double x100 = homogeneous_unloaded_quantile(model, 100, 0.99);
  // For exponential, q(0.9999)/q(0.99) = ln(1e4)/ln(1e2) = 2.
  EXPECT_NEAR(x100 / x1, 2.0, 0.01);
}

TEST(HomogeneousQuantile, RejectsBadArguments) {
  auto model = exp_model(1.0);
  EXPECT_THROW(homogeneous_unloaded_quantile(model, 0, 0.99), CheckFailure);
  EXPECT_THROW(homogeneous_unloaded_quantile(model, 1, 0.0), CheckFailure);
  EXPECT_THROW(homogeneous_unloaded_quantile(model, 1, 1.0), CheckFailure);
}

TEST(HeterogeneousQuantile, DegeneratesToHomogeneous) {
  auto model = exp_model(1.0);
  const CdfModel* models[] = {&model, &model, &model, &model};
  const double hetero = heterogeneous_unloaded_quantile(models, 0.99);
  const double homo = homogeneous_unloaded_quantile(model, 4, 0.99);
  EXPECT_NEAR(hetero, homo, 1e-6);
}

TEST(HeterogeneousQuantile, WithCountsMatchesRepeatedModels) {
  auto fast = exp_model(1.0);
  auto slow = exp_model(5.0);
  const CdfModel* repeated[] = {&fast, &fast, &fast, &slow, &slow};
  const CdfModel* grouped[] = {&fast, &slow};
  const std::uint32_t counts[] = {3, 2};
  EXPECT_NEAR(heterogeneous_unloaded_quantile(repeated, 0.99),
              heterogeneous_unloaded_quantile(grouped, counts, 0.99), 1e-6);
}

TEST(HeterogeneousQuantile, DominatedBySlowServer) {
  auto fast = exp_model(0.01);
  auto slow = exp_model(10.0);
  const CdfModel* models[] = {&fast, &slow};
  const double x = heterogeneous_unloaded_quantile(models, 0.99);
  // The slow server dominates: x must be close to (just above) the slow
  // server's own p99 and far above the fast one's.
  EXPECT_GT(x, slow.quantile(0.99));
  EXPECT_LT(x, slow.quantile(0.999));
}

TEST(HeterogeneousQuantile, ProductPropertyHolds) {
  // Verify F_Q(x_p) == p by evaluating the product CDF at the returned
  // point (the defining property of Eq. 2).
  auto a = exp_model(1.0);
  auto b = exp_model(2.0);
  auto c = exp_model(0.5);
  const CdfModel* models[] = {&a, &b, &c};
  for (double p : {0.9, 0.95, 0.99}) {
    const double x = heterogeneous_unloaded_quantile(models, p);
    EXPECT_NEAR(a.cdf(x) * b.cdf(x) * c.cdf(x), p, 1e-6) << "p=" << p;
  }
}

TEST(HeterogeneousQuantile, SingleModel) {
  auto model = exp_model(3.0);
  const CdfModel* models[] = {&model};
  EXPECT_NEAR(heterogeneous_unloaded_quantile(models, 0.99),
              model.quantile(0.99), 1e-6);
}

TEST(HeterogeneousQuantile, Validation) {
  auto model = exp_model(1.0);
  const CdfModel* models[] = {&model};
  const std::uint32_t counts[] = {1, 2};
  EXPECT_THROW(heterogeneous_unloaded_quantile({}, 0.99), CheckFailure);
  EXPECT_THROW(
      heterogeneous_unloaded_quantile(models, std::span(counts), 0.99),
      CheckFailure);
}

// Property sweep: for randomly generated heterogeneous model sets, the
// inversion must agree with brute-force Monte Carlo of max-of-set samples.
class HeterogeneousMonteCarlo : public ::testing::TestWithParam<int> {};

TEST_P(HeterogeneousMonteCarlo, InversionMatchesSampledMaximum) {
  Rng rng(1000 + GetParam());
  // 2-4 groups with random exponential means and multiplicities.
  const int groups = 2 + static_cast<int>(rng.uniform_index(3));
  std::vector<std::shared_ptr<Exponential>> dists;
  std::vector<DistributionCdfModel> model_store;
  std::vector<std::uint32_t> counts;
  model_store.reserve(groups);
  for (int g = 0; g < groups; ++g) {
    dists.push_back(std::make_shared<Exponential>(rng.uniform(0.2, 5.0)));
    model_store.emplace_back(dists.back());
    counts.push_back(1 + static_cast<std::uint32_t>(rng.uniform_index(6)));
  }
  std::vector<const CdfModel*> models;
  for (const auto& m : model_store) models.push_back(&m);

  const double p = 0.95;  // p95: estimable from 40k samples with ~2% noise
  const double predicted =
      heterogeneous_unloaded_quantile(models, counts, p);

  const int samples = 40000;
  std::vector<double> maxima(samples);
  for (auto& m : maxima) {
    double worst = 0.0;
    for (int g = 0; g < groups; ++g)
      for (std::uint32_t k = 0; k < counts[static_cast<std::size_t>(g)]; ++k)
        worst = std::max(worst, dists[static_cast<std::size_t>(g)]->sample(rng));
    m = worst;
  }
  std::sort(maxima.begin(), maxima.end());
  const double sampled = maxima[static_cast<std::size_t>(p * samples)];
  EXPECT_NEAR(predicted, sampled, 0.06 * sampled)
      << "groups=" << groups << " seed-offset=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomModelSets, HeterogeneousMonteCarlo,
                         ::testing::Range(0, 12));

// ------------------------------------------------------------------ cache

TEST(UnloadedQuantileCache, HitsSkipRecomputation) {
  UnloadedQuantileCache cache;
  int computed = 0;
  const auto compute = [&] {
    ++computed;
    return 1.5;
  };
  EXPECT_DOUBLE_EQ(cache.get_or_compute(7, 0, compute), 1.5);
  EXPECT_DOUBLE_EQ(cache.get_or_compute(7, 0, compute), 1.5);
  EXPECT_EQ(computed, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(UnloadedQuantileCache, VersionChangeInvalidates) {
  UnloadedQuantileCache cache;
  int computed = 0;
  const auto compute = [&] {
    ++computed;
    return static_cast<double>(computed);
  };
  EXPECT_DOUBLE_EQ(cache.get_or_compute(7, 0, compute), 1.0);
  EXPECT_DOUBLE_EQ(cache.get_or_compute(7, 1, compute), 2.0);  // invalidated
  EXPECT_DOUBLE_EQ(cache.get_or_compute(7, 1, compute), 2.0);  // cached again
  EXPECT_EQ(computed, 2);
}

TEST(UnloadedQuantileCache, DistinctKeysCoexist) {
  UnloadedQuantileCache cache;
  cache.get_or_compute(1, 0, [] { return 1.0; });
  cache.get_or_compute(2, 0, [] { return 2.0; });
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_DOUBLE_EQ(cache.get_or_compute(2, 0, [] { return 99.0; }), 2.0);
}

}  // namespace
}  // namespace tailguard
