// Tests for the cluster layout builders.
#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/cluster.h"

namespace tailguard {
namespace {

TEST(HomogeneousCluster, AllServersShareTheModel) {
  auto base = std::make_shared<Exponential>(1.0);
  const auto servers = homogeneous_cluster(base, 10);
  ASSERT_EQ(servers.size(), 10u);
  for (const auto& s : servers) EXPECT_EQ(s.get(), base.get());
}

TEST(GroupedCluster, ConcatenatesInOrder) {
  auto a = std::make_shared<Exponential>(1.0);
  auto b = std::make_shared<Exponential>(2.0);
  const auto servers = grouped_cluster({{a, 3}, {b, 2}});
  ASSERT_EQ(servers.size(), 5u);
  EXPECT_EQ(servers[0].get(), a.get());
  EXPECT_EQ(servers[2].get(), a.get());
  EXPECT_EQ(servers[3].get(), b.get());
  EXPECT_EQ(servers[4].get(), b.get());
}

TEST(StragglerCluster, PlacesStragglersAtTheEnd) {
  auto base = std::make_shared<Exponential>(1.0);
  const auto servers = cluster_with_stragglers(base, 10, 0.25, 4.0);
  ASSERT_EQ(servers.size(), 10u);
  // ceil(0.25 * 10) = 3 stragglers at ids 7..9.
  for (int s = 0; s < 7; ++s) EXPECT_EQ(servers[s].get(), base.get());
  for (int s = 7; s < 10; ++s) {
    EXPECT_NE(servers[s].get(), base.get());
    EXPECT_NEAR(servers[s]->mean(), 4.0, 1e-12);
  }
  // Stragglers share one model object (one estimator group).
  EXPECT_EQ(servers[7].get(), servers[9].get());
}

TEST(StragglerCluster, ZeroFractionIsHomogeneous) {
  auto base = std::make_shared<Exponential>(1.0);
  const auto servers = cluster_with_stragglers(base, 5, 0.0, 3.0);
  for (const auto& s : servers) EXPECT_EQ(s.get(), base.get());
}

TEST(StragglerCluster, UnitSlowdownIsHomogeneous) {
  auto base = std::make_shared<Exponential>(1.0);
  const auto servers = cluster_with_stragglers(base, 5, 0.5, 1.0);
  for (const auto& s : servers) EXPECT_EQ(s.get(), base.get());
}

TEST(ClusterBuilders, Validation) {
  auto base = std::make_shared<Exponential>(1.0);
  EXPECT_THROW(homogeneous_cluster(nullptr, 3), CheckFailure);
  EXPECT_THROW(homogeneous_cluster(base, 0), CheckFailure);
  EXPECT_THROW(grouped_cluster({}), CheckFailure);
  EXPECT_THROW(grouped_cluster({{base, 0}}), CheckFailure);
  EXPECT_THROW(cluster_with_stragglers(base, 10, 1.5, 2.0), CheckFailure);
  EXPECT_THROW(cluster_with_stragglers(base, 10, 0.5, 0.5), CheckFailure);
}

}  // namespace
}  // namespace tailguard
