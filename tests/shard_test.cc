// Tests for the sharded control plane (shard/): router purity and coverage,
// per-shard seed substreams, strided query-id allocation, delta-sync
// exactly-once semantics (collect/absorb/dedup, no echo amplification),
// weighted admission merging, load-gauge gossip, and the two determinism
// contracts — shard=1 bit-parity with the unsharded simulator and
// reproducibility at any shard count.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/admission.h"
#include "core/cdf_model.h"
#include "dist/standard.h"
#include "shard/router.h"
#include "shard/sharded_control_plane.h"
#include "shard/state_sync.h"
#include "sim/experiment.h"
#include "sim/simulator.h"

namespace tailguard {
namespace {

// ------------------------------------------------------------------ router

TEST(ShardRouter, PureInRangeAndStable) {
  for (const RouterKind kind :
       {RouterKind::kHash, RouterKind::kRoundRobin, RouterKind::kClassAffinity}) {
    const auto router = make_router(kind);
    EXPECT_EQ(router->kind(), kind);
    for (std::uint64_t key = 0; key < 200; ++key) {
      const std::uint32_t first = router->route(key, key % 3, 4);
      EXPECT_LT(first, 4u);
      // Pure function of (key, cls, num_shards): no internal state drift.
      EXPECT_EQ(router->route(key, key % 3, 4), first);
    }
  }
}

TEST(ShardRouter, RoundRobinAndClassAffinityAreModular) {
  const auto rr = make_router(RouterKind::kRoundRobin);
  const auto ca = make_router(RouterKind::kClassAffinity);
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(rr->route(key, 2, 5), key % 5);
    EXPECT_EQ(ca->route(key, 2, 5), 2u % 5);
    EXPECT_EQ(ca->route(key, 7, 5), 7u % 5);
  }
}

TEST(ShardRouter, HashCoversEveryShard) {
  const auto router = make_router(RouterKind::kHash);
  std::set<std::uint32_t> seen;
  for (std::uint64_t key = 0; key < 1000; ++key)
    seen.insert(router->route(key, 0, 8));
  EXPECT_EQ(seen.size(), 8u);
}

// ------------------------------------------------------------------- seeds

TEST(ShardSeeds, ShardZeroKeepsBaseSeed) {
  // The shard=1 parity invariant hinges on this: shard 0 must draw from the
  // exact stream an unsharded control plane would.
  EXPECT_EQ(shard_substream_seed(42, 0), 42u);
  EXPECT_EQ(shard_substream_seed(0xdeadbeef, 0), 0xdeadbeefULL);
}

TEST(ShardSeeds, SubstreamsAreDistinctAndDeterministic) {
  std::set<std::uint64_t> seeds;
  for (std::uint32_t shard = 0; shard < 16; ++shard) {
    const std::uint64_t s = shard_substream_seed(42, shard);
    EXPECT_EQ(s, shard_substream_seed(42, shard));
    seeds.insert(s);
  }
  EXPECT_EQ(seeds.size(), 16u);
}

// ------------------------------------------------------------- facade unit

std::vector<std::shared_ptr<CdfModel>> fixed_models(std::size_t n,
                                                    double value_ms) {
  std::vector<std::shared_ptr<CdfModel>> models;
  models.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    models.push_back(std::make_shared<DistributionCdfModel>(
        std::make_shared<Deterministic>(value_ms)));
  return models;
}

std::vector<std::shared_ptr<CdfModel>> streaming_models(std::size_t n) {
  std::vector<std::shared_ptr<CdfModel>> models;
  for (std::size_t i = 0; i < n; ++i)
    models.push_back(std::make_shared<StreamingCdfModel>());
  return models;
}

ControlPlaneOptions one_class_options() {
  ControlPlaneOptions options;
  options.classes = {{.slo_ms = 20.0, .percentile = 99.0}};
  return options;
}

TEST(ShardedControlPlane, StridedQueryIdsRecoverOwningShard) {
  ShardedControlPlane cp(ShardingOptions{.num_shards = 2},
                         one_class_options(), fixed_models(4, 5.0));
  const std::vector<ServerId> servers = {0, 1};
  // Shard i of N hands out ids i, i + N, i + 2N, ...
  EXPECT_EQ(cp.begin_query(0, 0.0, 0, servers).id, 0u);
  EXPECT_EQ(cp.begin_query(1, 0.0, 0, servers).id, 1u);
  EXPECT_EQ(cp.begin_query(0, 1.0, 0, servers).id, 2u);
  EXPECT_EQ(cp.begin_query(1, 1.0, 0, servers).id, 3u);
  EXPECT_EQ(cp.shard_of(2), 0u);
  EXPECT_EQ(cp.shard_of(3), 1u);
  EXPECT_EQ(cp.in_flight(), 4u);
  EXPECT_EQ(cp.queries_started(), 4u);
}

TEST(ShardedControlPlane, SingleShardRoutesEverythingToZero) {
  ShardedControlPlane cp(ShardingOptions{}, one_class_options(),
                         fixed_models(2, 5.0));
  EXPECT_EQ(cp.num_shards(), 1u);
  EXPECT_FALSE(cp.sync_enabled());
  for (std::uint64_t key = 0; key < 32; ++key)
    EXPECT_EQ(cp.route(key, 0), 0u);
  EXPECT_EQ(cp.shard_of(12345), 0u);
}

TEST(ShardedControlPlane, ShardsBudgetIndependentlyFromClonedModels) {
  // Both shards start from clones of the same 5 ms deterministic profile, so
  // Eq. 6 gives the same budget on each before any drift.
  ShardedControlPlane cp(
      ShardingOptions{.num_shards = 2, .sync_interval_ms = 10.0},
      one_class_options(), fixed_models(3, 5.0));
  const std::vector<ServerId> servers = {0, 2};
  EXPECT_DOUBLE_EQ(cp.budget(0, 0, servers), 15.0);
  EXPECT_DOUBLE_EQ(cp.budget(1, 0, servers), 15.0);
}

// -------------------------------------------------------------- delta sync

ShardedControlPlane two_shard_plane(double sync_ms = 10.0,
                                    std::size_t sample_cap = 256) {
  return ShardedControlPlane(
      ShardingOptions{.num_shards = 2,
                      .sync_interval_ms = sync_ms,
                      .max_sync_samples_per_server = sample_cap},
      one_class_options(), streaming_models(3));
}

std::uint64_t observations_of(const ShardedControlPlane& cp,
                              std::uint32_t shard, ServerId server) {
  return static_cast<const StreamingCdfModel&>(cp.model_of(shard, server))
      .observations();
}

TEST(ShardedControlPlane, CollectDeltaConsumesPendingState) {
  auto cp = two_shard_plane();
  cp.observe_post_queuing_on(0, /*server=*/1, 4.0);
  cp.observe_post_queuing_on(0, /*server=*/1, 6.0);

  ShardDelta delta = cp.collect_delta(0);
  EXPECT_EQ(delta.origin, 0u);
  EXPECT_EQ(delta.seq, 1u);
  ASSERT_EQ(delta.servers.size(), 1u);
  EXPECT_EQ(delta.servers[0].server, 1u);
  EXPECT_EQ(delta.servers[0].samples_ms, (std::vector<double>{4.0, 6.0}));

  // Pending state is consumed: the next delta is empty, with seq advanced.
  const ShardDelta again = cp.collect_delta(0);
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(again.seq, 2u);
}

TEST(ShardedControlPlane, AbsorbAppliesOnceAndDedupsRedelivery) {
  auto cp = two_shard_plane();
  for (int i = 0; i < 10; ++i) cp.observe_post_queuing_on(0, 0, 1.0 + i);
  const ShardDelta delta = cp.collect_delta(0);

  ASSERT_TRUE(cp.absorb_remote_delta(1, delta, /*now=*/5.0));
  EXPECT_EQ(observations_of(cp, 1, 0), 10u);

  // Redelivery of the same (origin, seq) must be dropped, not re-applied.
  EXPECT_FALSE(cp.absorb_remote_delta(1, delta, 6.0));
  EXPECT_EQ(observations_of(cp, 1, 0), 10u);
  EXPECT_EQ(cp.sync_stats().duplicates_dropped, 1u);
}

TEST(ShardedControlPlane, AbsorbedSamplesAreNeverRebroadcast) {
  // Echo amplification guard: what shard 1 absorbed from shard 0 must not
  // appear in shard 1's own next outbound delta.
  auto cp = two_shard_plane();
  cp.observe_post_queuing_on(0, 0, 3.0);
  ASSERT_TRUE(cp.absorb_remote_delta(1, cp.collect_delta(0), 1.0));
  const ShardDelta out = cp.collect_delta(1);
  EXPECT_TRUE(out.empty());
}

TEST(ShardedControlPlane, SyncRoundSpreadsSamplesToAllShards) {
  auto cp = two_shard_plane();
  for (int i = 0; i < 8; ++i) cp.observe_post_queuing_on(0, 2, 2.0);
  EXPECT_EQ(observations_of(cp, 1, 2), 0u);
  cp.sync_now(10.0);
  EXPECT_EQ(observations_of(cp, 1, 2), 8u);
  // Each shard keeps counting its own observations exactly once.
  EXPECT_EQ(observations_of(cp, 0, 2), 8u);
  EXPECT_EQ(cp.sync_stats().rounds, 1u);
  EXPECT_EQ(cp.sync_stats().samples_shipped, 8u);

  // A second round with nothing new ships nothing.
  cp.sync_now(20.0);
  EXPECT_EQ(observations_of(cp, 1, 2), 8u);
  EXPECT_EQ(cp.sync_stats().samples_shipped, 8u);
}

TEST(ShardedControlPlane, SampleCapThinsDeterministically) {
  auto cp = two_shard_plane(/*sync_ms=*/10.0, /*sample_cap=*/4);
  for (int i = 0; i < 10; ++i) cp.observe_post_queuing_on(0, 0, 1.0 * i);
  const ShardDelta delta = cp.collect_delta(0);
  ASSERT_EQ(delta.servers.size(), 1u);
  EXPECT_EQ(delta.servers[0].samples_ms.size(), 4u);
  EXPECT_EQ(delta.servers[0].samples_dropped, 6u);
}

TEST(ShardedControlPlane, MaybeSyncHonoursIntervalBoundaries) {
  auto cp = two_shard_plane(/*sync_ms=*/10.0);
  EXPECT_DOUBLE_EQ(cp.next_sync_at(), 10.0);
  EXPECT_FALSE(cp.maybe_sync(9.99));
  cp.observe_post_queuing_on(0, 0, 1.0);
  EXPECT_TRUE(cp.maybe_sync(10.0));
  EXPECT_DOUBLE_EQ(cp.next_sync_at(), 20.0);
  // Skipping several intervals re-arms past `now`, not one-per-interval.
  cp.observe_post_queuing_on(0, 0, 1.0);
  EXPECT_TRUE(cp.maybe_sync(57.0));
  EXPECT_DOUBLE_EQ(cp.next_sync_at(), 60.0);
}

TEST(ShardedControlPlane, LoadGaugesMergeAsLastWriterWins) {
  auto cp = two_shard_plane();
  cp.update_local_load(0, /*server=*/1, 7);
  cp.sync_now(10.0);
  EXPECT_EQ(cp.remote_load_sum(1, 1), 7u);
  // Gauges overwrite: a fresher value replaces, never accumulates.
  cp.update_local_load(0, 1, 3);
  cp.sync_now(20.0);
  EXPECT_EQ(cp.remote_load_sum(1, 1), 3u);
  // Shard 1 published nothing, so shard 0 sees no remote load.
  EXPECT_EQ(cp.remote_load_sum(0, 1), 0u);
}

TEST(ShardedControlPlane, RemoteDequeuesFeedAdmissionWindowOnly) {
  ControlPlaneOptions options = one_class_options();
  options.admission = AdmissionOptions{};
  ShardedControlPlane cp(
      ShardingOptions{.num_shards = 2, .sync_interval_ms = 10.0}, options,
      streaming_models(2));
  // Shard 0 records local misses; a sync round must move the admission
  // signal to shard 1 without touching shard 1's per-class task tallies.
  const std::vector<ServerId> servers = {0};
  for (int i = 0; i < 40; ++i) {
    const QueryPlan plan = cp.begin_query(0, 0.0, 0, servers);
    cp.record_task_dequeue(plan.id, 1.0, 0, /*missed=*/true);
    cp.complete_task(plan.id);
  }
  cp.sync_now(5.0);
  EXPECT_GT(cp.admission_miss_ratio(1, 5.0), 0.0);
  // Global per-class accounting still counts each task exactly once.
  EXPECT_EQ(cp.tasks_recorded(), 40u);
  EXPECT_EQ(cp.tasks_missed(), 40u);
}

// ---------------------------------------------------------- dedup and bus

TEST(DeltaDedup, AcceptsStrictlyNewerSeqPerOrigin) {
  DeltaDedup dedup;
  EXPECT_TRUE(dedup.accept(0, 1));
  EXPECT_FALSE(dedup.accept(0, 1));
  EXPECT_TRUE(dedup.accept(0, 3));
  EXPECT_FALSE(dedup.accept(0, 2));  // late arrival below the high-water mark
  EXPECT_TRUE(dedup.accept(1, 1));   // origins are independent
  EXPECT_EQ(dedup.duplicates_dropped(), 2u);
}

TEST(StateSyncBus, BroadcastsToEveryShardExceptOrigin) {
  StateSyncBus bus(3);
  ShardDelta delta;
  delta.origin = 1;
  delta.seq = 1;
  delta.dequeues_recorded = 5;
  bus.publish(delta);
  EXPECT_TRUE(bus.drain(1).empty());
  const auto for_0 = bus.drain(0);
  const auto for_2 = bus.drain(2);
  ASSERT_EQ(for_0.size(), 1u);
  ASSERT_EQ(for_2.size(), 1u);
  EXPECT_EQ(for_0[0], delta);
  // Drain empties the inbox.
  EXPECT_TRUE(bus.drain(0).empty());
  EXPECT_EQ(bus.deltas_published(), 1u);
  EXPECT_EQ(bus.deltas_delivered(), 2u);
}

TEST(StateSyncBus, InboxesAreFifo) {
  StateSyncBus bus(2);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    ShardDelta delta;
    delta.origin = 0;
    delta.seq = seq;
    delta.dequeues_recorded = seq;
    bus.publish(delta);
  }
  const auto inbox = bus.drain(1);
  ASSERT_EQ(inbox.size(), 3u);
  EXPECT_EQ(inbox[0].seq, 1u);
  EXPECT_EQ(inbox[2].seq, 3u);
}

// ------------------------------------------------- weighted admission merge

TEST(Admission, RemoteDeltaMatchesLocalDequeueStream) {
  // absorb_remote_dequeues(now, k, m) must move the miss ratio exactly as k
  // individual record_task_dequeue calls at the same timestamp would.
  AdmissionController local{AdmissionOptions{}};
  AdmissionController merged{AdmissionOptions{}};
  for (int i = 0; i < 30; ++i) local.record_task_dequeue(1.0, i % 3 == 0);
  merged.record_remote_dequeues(1.0, 30, 10);
  EXPECT_DOUBLE_EQ(local.miss_ratio(2.0), merged.miss_ratio(2.0));
  EXPECT_EQ(local.should_admit(2.0, 0.5), merged.should_admit(2.0, 0.5));
}

// ----------------------------------------------------- sim-level contracts

SimConfig sharded_sim_config() {
  SimConfig cfg;
  cfg.num_servers = 12;
  cfg.policy = Policy::kTfEdf;
  cfg.classes = {{.slo_ms = 10.0, .percentile = 99.0}};
  cfg.fanout = std::make_shared<CategoricalFanout>(
      std::vector<std::uint32_t>{1, 4}, std::vector<double>{0.7, 0.3});
  cfg.service_time = std::make_shared<Exponential>(1.0);
  cfg.num_queries = 8000;
  cfg.seed = 42;
  // Online updating: post-queuing observations flow, so sync rounds actually
  // ship samples between shards.
  cfg.estimation = EstimationMode::kOnlineStreaming;
  set_load(cfg, 0.6);
  return cfg;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.queries_offered, b.queries_offered);
  EXPECT_EQ(a.queries_admitted, b.queries_admitted);
  EXPECT_EQ(a.queries_rejected, b.queries_rejected);
  EXPECT_EQ(a.task_deadline_miss_ratio, b.task_deadline_miss_ratio);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  EXPECT_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].queries, b.groups[i].queries);
    EXPECT_EQ(a.groups[i].tail_latency_ms, b.groups[i].tail_latency_ms);
    EXPECT_EQ(a.groups[i].mean_latency_ms, b.groups[i].mean_latency_ms);
  }
}

TEST(ShardedSim, OneShardNoSyncIsBitIdenticalToUnsharded) {
  // The parity invariant behind the fig4/fig5 md5 check: shard=1 with sync
  // disabled must not perturb a single double anywhere in the result.
  SimConfig plain = sharded_sim_config();
  SimConfig sharded = sharded_sim_config();
  sharded.sharding = ShardingOptions{.num_shards = 1, .sync_interval_ms = 0.0};
  const SimResult a = run_simulation(plain);
  const SimResult b = run_simulation(sharded);
  EXPECT_EQ(b.shards, 1u);
  EXPECT_EQ(b.shard_sync_rounds, 0u);
  expect_identical(a, b);
}

TEST(ShardedSim, FourShardsAreReproducible) {
  SimConfig cfg = sharded_sim_config();
  cfg.sharding = ShardingOptions{.num_shards = 4, .sync_interval_ms = 5.0};
  const SimResult a = run_simulation(cfg);
  const SimResult b = run_simulation(cfg);
  EXPECT_EQ(a.shards, 4u);
  EXPECT_GT(a.shard_sync_rounds, 0u);
  EXPECT_GT(a.shard_samples_shipped, 0u);
  expect_identical(a, b);
  EXPECT_EQ(a.shard_sync_rounds, b.shard_sync_rounds);
  EXPECT_EQ(a.shard_samples_shipped, b.shard_samples_shipped);
}

TEST(ShardedSim, AllWorkIsCountedExactlyOnceAcrossShards) {
  SimConfig cfg = sharded_sim_config();
  cfg.sharding = ShardingOptions{.num_shards = 4, .sync_interval_ms = 5.0};
  const SimResult r = run_simulation(cfg);
  EXPECT_EQ(r.queries_offered, cfg.num_queries);
  EXPECT_EQ(r.queries_admitted, cfg.num_queries);
  std::uint64_t recorded = 0;
  for (const auto& g : r.groups) recorded += g.queries;
  // Post-warmup queries are recorded once, never per-shard.
  EXPECT_NEAR(static_cast<double>(recorded),
              0.9 * static_cast<double>(cfg.num_queries),
              0.03 * static_cast<double>(cfg.num_queries));
}

}  // namespace
}  // namespace tailguard
