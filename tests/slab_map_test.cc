// Tests for the slab-backed hot-path maps (common/slab_map.h): dense and
// strided id progressions, freelist recycling, growth behaviour, id-order
// iteration determinism, and the insert-only hash cache's clear()-keeps-
// capacity contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/slab_map.h"

namespace tailguard {
namespace {

TEST(SlabMap, InsertFindErase) {
  SlabMap<int> m;
  EXPECT_TRUE(m.empty());
  m.emplace(0) = 10;
  m.emplace(1) = 11;
  m.emplace(2) = 12;
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 11);
  EXPECT_EQ(m.find(7), nullptr);  // beyond the slot table
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));  // already dead
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.size(), 2u);
}

TEST(SlabMap, ErasedSlotsAreRecycled) {
  SlabMap<std::uint64_t> m;
  // Fill, erase everything, refill with fresh ids: the slab must reuse the
  // freed slots rather than grow, which shows up as stable entry addresses.
  for (std::uint64_t id = 0; id < 8; ++id) m.emplace(id) = id;
  std::set<const std::uint64_t*> first_wave;
  for (std::uint64_t id = 0; id < 8; ++id) first_wave.insert(m.find(id));
  for (std::uint64_t id = 0; id < 8; ++id) EXPECT_TRUE(m.erase(id));
  EXPECT_TRUE(m.empty());
  for (std::uint64_t id = 8; id < 16; ++id) m.emplace(id) = id;
  for (std::uint64_t id = 8; id < 16; ++id) {
    ASSERT_NE(m.find(id), nullptr);
    EXPECT_EQ(*m.find(id), id);
    EXPECT_TRUE(first_wave.count(m.find(id))) << "slot not recycled";
  }
}

TEST(SlabMap, GrowthBackfillsGaps) {
  SlabMap<int> m;
  // Out-of-order arrival within the progression: the slot table backfills
  // skipped ids as absent.
  m.emplace(6) = 6;
  m.emplace(2) = 2;
  EXPECT_EQ(m.size(), 2u);
  for (std::uint64_t id = 0; id < 8; ++id)
    EXPECT_EQ(m.contains(id), id == 2 || id == 6) << id;
  m.emplace(4) = 4;
  EXPECT_EQ(*m.find(4), 4);
}

TEST(SlabMap, StridedIdsMapDensely) {
  // Shard 2 of 5 in the QueryTracker id scheme: ids 2, 7, 12, ...
  SlabMap<std::uint64_t> m(2, 5);
  for (std::uint64_t i = 0; i < 100; ++i) m.emplace(2 + 5 * i) = i;
  EXPECT_EQ(m.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_NE(m.find(2 + 5 * i), nullptr);
    EXPECT_EQ(*m.find(2 + 5 * i), i);
  }
  EXPECT_TRUE(m.erase(2 + 5 * 50));
  EXPECT_FALSE(m.contains(2 + 5 * 50));
  EXPECT_EQ(m.size(), 99u);
}

TEST(SlabMap, IterationIsIdOrderedRegardlessOfHistory) {
  // Two maps reach the same live set by different insert/erase histories;
  // for_each must visit identical (id, value) sequences, ascending by id.
  SlabMap<int> a;
  for (std::uint64_t id = 0; id < 50; ++id) a.emplace(id) = static_cast<int>(id);
  for (std::uint64_t id = 0; id < 50; id += 2) a.erase(id);

  SlabMap<int> b;
  for (std::uint64_t id = 49; id < 50; id -= 2)  // 49, 47, ..., 1
    b.emplace(id) = static_cast<int>(id);
  b.emplace(0) = 0;
  b.erase(0);

  const auto collect = [](SlabMap<int>& m) {
    std::vector<std::pair<std::uint64_t, int>> out;
    m.for_each([&](std::uint64_t id, int& v) { out.emplace_back(id, v); });
    return out;
  };
  const auto va = collect(a);
  const auto vb = collect(b);
  EXPECT_EQ(va, vb);
  EXPECT_TRUE(std::is_sorted(va.begin(), va.end()));
  ASSERT_EQ(va.size(), 25u);
  EXPECT_EQ(va.front().first, 1u);
  EXPECT_EQ(va.back().first, 49u);
}

TEST(SlabMap, ClearRestartsProgressionKeepingCapacity) {
  SlabMap<int> m;
  m.reserve(64, 64);
  for (std::uint64_t id = 0; id < 64; ++id) m.emplace(id) = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(0), nullptr);
  // Ids restart from the beginning of the progression after clear().
  m.emplace(0) = 2;
  EXPECT_EQ(*m.find(0), 2);
}

TEST(SlabMap, RandomizedAgainstReferenceModel) {
  Rng rng(1234);
  SlabMap<std::uint64_t> m(1, 3);  // ids 1, 4, 7, ...
  std::set<std::uint64_t> live;
  std::uint64_t next = 0;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.bernoulli(0.5)) {
      const std::uint64_t id = 1 + 3 * next++;
      m.emplace(id) = id * 10;
      live.insert(id);
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.uniform_index(live.size())));
      EXPECT_TRUE(m.erase(*it));
      live.erase(it);
    }
    EXPECT_EQ(m.size(), live.size());
  }
  std::vector<std::uint64_t> seen;
  m.for_each([&](std::uint64_t id, std::uint64_t& v) {
    EXPECT_EQ(v, id * 10);
    seen.push_back(id);
  });
  EXPECT_EQ(seen, std::vector<std::uint64_t>(live.begin(), live.end()));
}

TEST(SlabHashCache, InsertFindAndCollisions) {
  SlabHashCache<int> c;
  EXPECT_EQ(c.find(0), nullptr);  // empty cache, no buckets yet
  // Structured keys of the (cls << 32) | fanout kind; enough of them to
  // force growth and open-addressed collisions.
  for (std::uint64_t cls = 0; cls < 8; ++cls)
    for (std::uint64_t fanout = 1; fanout <= 64; ++fanout)
      c.insert((cls << 32) | fanout, static_cast<int>(cls * 1000 + fanout));
  EXPECT_EQ(c.size(), 8u * 64u);
  for (std::uint64_t cls = 0; cls < 8; ++cls)
    for (std::uint64_t fanout = 1; fanout <= 64; ++fanout) {
      int* hit = c.find((cls << 32) | fanout);
      ASSERT_NE(hit, nullptr);
      EXPECT_EQ(*hit, static_cast<int>(cls * 1000 + fanout));
    }
  EXPECT_EQ(c.find(~0ULL), nullptr);
}

TEST(SlabHashCache, ClearKeepsCapacityAndRefills) {
  SlabHashCache<double> c;
  for (std::uint64_t k = 0; k < 100; ++k) c.insert(k, static_cast<double>(k));
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.find(5), nullptr);
  // The version-bump refill pattern: same keys, new values.
  for (std::uint64_t k = 0; k < 100; ++k)
    c.insert(k, static_cast<double>(k) * 2);
  ASSERT_NE(c.find(99), nullptr);
  EXPECT_EQ(*c.find(99), 198.0);
}

}  // namespace
}  // namespace tailguard
