// Tests for the CdfModel implementations (core/cdf_model.h): the analytic
// wrapper, the frozen empirical profile and the online streaming model with
// its version counter (which drives quantile-cache invalidation).
#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "core/cdf_model.h"
#include "dist/standard.h"

namespace tailguard {
namespace {

TEST(DistributionCdfModel, DelegatesToDistribution) {
  auto exp = std::make_shared<Exponential>(2.0);
  DistributionCdfModel model(exp);
  EXPECT_DOUBLE_EQ(model.cdf(1.0), exp->cdf(1.0));
  EXPECT_DOUBLE_EQ(model.quantile(0.9), exp->quantile(0.9));
  EXPECT_EQ(&model.distribution(), exp.get());
}

TEST(DistributionCdfModel, ObserveIsNoOpAndVersionStable) {
  DistributionCdfModel model(std::make_shared<Exponential>(1.0));
  const double before = model.quantile(0.99);
  model.observe(1e9);
  EXPECT_DOUBLE_EQ(model.quantile(0.99), before);
  EXPECT_EQ(model.version(), 0u);
}

TEST(DistributionCdfModel, RejectsNull) {
  EXPECT_THROW(DistributionCdfModel(nullptr), CheckFailure);
}

TEST(EmpiricalCdfModel, MatchesSampleQuantiles) {
  std::vector<double> sample{1.0, 2.0, 3.0, 4.0, 5.0};
  EmpiricalCdfModel model(sample);
  EXPECT_DOUBLE_EQ(model.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(model.quantile(1.0), 5.0);
  EXPECT_GT(model.cdf(4.5), model.cdf(1.5));
}

TEST(EmpiricalCdfModel, FrozenUnderObserve) {
  std::vector<double> sample{1.0, 2.0, 3.0};
  EmpiricalCdfModel model(sample);
  const double before = model.quantile(0.9);
  model.observe(100.0);
  EXPECT_DOUBLE_EQ(model.quantile(0.9), before);
  EXPECT_EQ(model.version(), 0u);
}

TEST(StreamingCdfModel, EmptyModelReportsZero) {
  StreamingCdfModel model;
  EXPECT_DOUBLE_EQ(model.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(model.cdf(1.0), 0.0);
  EXPECT_EQ(model.observations(), 0u);
}

TEST(StreamingCdfModel, SeedBumpsVersionOnce) {
  StreamingCdfModel model;
  const auto v0 = model.version();
  std::vector<double> sample(100, 2.0);
  model.seed(sample);
  EXPECT_EQ(model.version(), v0 + 1);
  EXPECT_NEAR(model.quantile(0.5), 2.0, 0.1);
}

TEST(StreamingCdfModel, VersionAdvancesEveryRefreshInterval) {
  StreamingCdfModel::Options opt;
  opt.refresh_every = 10;
  StreamingCdfModel model(opt);
  const auto v0 = model.version();
  for (int i = 0; i < 9; ++i) model.observe(1.0);
  EXPECT_EQ(model.version(), v0);  // not yet
  model.observe(1.0);              // 10th observation
  EXPECT_EQ(model.version(), v0 + 1);
  for (int i = 0; i < 10; ++i) model.observe(1.0);
  EXPECT_EQ(model.version(), v0 + 2);
}

TEST(StreamingCdfModel, LearnsShiftedDistribution) {
  Rng rng(3);
  StreamingCdfModel::Options opt;
  opt.histogram.decay_every = 2000;
  opt.histogram.decay_factor = 0.3;
  StreamingCdfModel model(opt);
  Exponential a(1.0), b(10.0);
  for (int i = 0; i < 10000; ++i) model.observe(a.sample(rng));
  const double before = model.quantile(0.9);
  for (int i = 0; i < 30000; ++i) model.observe(b.sample(rng));
  const double after = model.quantile(0.9);
  EXPECT_GT(after, 4.0 * before);
}

TEST(StreamingCdfModel, RejectsZeroRefreshInterval) {
  StreamingCdfModel::Options opt;
  opt.refresh_every = 0;
  EXPECT_THROW(StreamingCdfModel{opt}, CheckFailure);
}

TEST(StreamingCdfModel, ObservationCountTracksAdds) {
  StreamingCdfModel model;
  for (int i = 0; i < 42; ++i) model.observe(1.0);
  EXPECT_EQ(model.observations(), 42u);
}

}  // namespace
}  // namespace tailguard
