// Tests for the multi-threaded runtime: worker semantics, service lifecycle,
// deadline bookkeeping, online CDF learning and admission under overload.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/check.h"
#include "runtime/request_runner.h"
#include "runtime/service.h"

namespace tailguard {
namespace {

ServiceOptions basic_options(Policy policy = Policy::kTfEdf,
                             std::size_t workers = 4) {
  ServiceOptions opt;
  opt.num_workers = workers;
  opt.policy = policy;
  opt.classes = {{.slo_ms = 50.0, .percentile = 99.0},
                 {.slo_ms = 100.0, .percentile = 99.0}};
  return opt;
}

// -------------------------------------------------------------- worker

TEST(Worker, ExecutesSubmittedWork) {
  std::atomic<int> done{0};
  std::atomic<int> completions{0};
  {
    Worker w(
        0, Policy::kFifo, 1, [] { return 0.0; },
        [&](ServerId, const RuntimeTask&, TimeMs, TimeMs) { ++completions; });
    for (int i = 0; i < 10; ++i) {
      RuntimeTask t;
      t.id = static_cast<TaskId>(i);
      t.work = [&done] { ++done; };
      w.submit(std::move(t), 0.0, 0.0);
    }
  }  // destructor drains
  EXPECT_EQ(done.load(), 10);
  EXPECT_EQ(completions.load(), 10);
}

TEST(Worker, DrainsQueueOnShutdown) {
  std::atomic<int> done{0};
  Worker w(
      0, Policy::kTfEdf, 1, [] { return 0.0; },
      [&](ServerId, const RuntimeTask&, TimeMs, TimeMs) { ++done; });
  for (int i = 0; i < 50; ++i) {
    RuntimeTask t;
    t.id = static_cast<TaskId>(i);
    t.simulated_service_ms = 0.01;
    w.submit(std::move(t), 0.0, static_cast<TimeMs>(i));
  }
  w.shutdown();
  // Wait for the drain via destruction.
  while (done.load() < 50) std::this_thread::yield();
  EXPECT_EQ(done.load(), 50);
}

TEST(Worker, RejectsSubmitAfterShutdown) {
  Worker w(
      0, Policy::kFifo, 1, [] { return 0.0; },
      [](ServerId, const RuntimeTask&, TimeMs, TimeMs) {});
  w.shutdown();
  RuntimeTask t;
  EXPECT_THROW(w.submit(std::move(t), 0.0, 0.0), CheckFailure);
}

TEST(Worker, ConcurrentSubmitRacingShutdownDrainsExactlyOnce) {
  // Hammer submit from several threads while shutdown lands mid-stream:
  // every task submit() accepted must complete exactly once, every rejected
  // submit must throw, and nothing may be dropped or double-run. Run under
  // -DTG_SANITIZE=thread to have TSan check the locking discipline.
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> completions{0};
    std::atomic<int> accepted{0};
    {
      Worker w(
          0, Policy::kTfEdf, 1, [] { return 0.0; },
          [&](ServerId, const RuntimeTask&, TimeMs, TimeMs) { ++completions; });
      std::atomic<bool> go{false};
      std::vector<std::thread> submitters;
      for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&, t] {
          while (!go.load()) std::this_thread::yield();
          for (int i = 0; i < 100; ++i) {
            RuntimeTask task;
            task.id = static_cast<TaskId>(t * 1000 + i);
            try {
              w.submit(std::move(task), 0.0, static_cast<TimeMs>(i));
              ++accepted;
            } catch (const CheckFailure&) {
              break;  // shutdown won the race; all later submits would throw
            }
          }
        });
      }
      go.store(true);
      std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
      w.shutdown();
      for (auto& th : submitters) th.join();
    }  // destructor joins the worker thread after draining the queue
    EXPECT_EQ(completions.load(), accepted.load()) << "round " << round;
  }
}

TEST(Worker, QueueDepthCountsRingAndQueueAndDrainsToZero) {
  // queue_depth() spans both stages of the lock-free submit path (the MPSC
  // ring and the policy queue); after a blocked backlog is released and
  // drained it must return to exactly zero.
  std::atomic<bool> gate{false};
  std::atomic<int> done{0};
  Worker w(
      0, Policy::kTfEdf, 1, [] { return 0.0; },
      [&](ServerId, const RuntimeTask&, TimeMs, TimeMs) { ++done; });
  RuntimeTask blocker;
  blocker.id = 0;
  blocker.work = [&gate] {
    while (!gate.load()) std::this_thread::yield();
  };
  w.submit(std::move(blocker), 0.0, 0.0);
  while (w.queue_depth() != 0) std::this_thread::yield();  // blocker started
  for (int i = 1; i <= 20; ++i) {
    RuntimeTask t;
    t.id = static_cast<TaskId>(i);
    w.submit(std::move(t), 0.0, static_cast<TimeMs>(i));
  }
  EXPECT_EQ(w.queue_depth(), 20u);  // all parked behind the blocker
  gate.store(true);
  while (done.load() < 21) std::this_thread::yield();
  EXPECT_EQ(w.queue_depth(), 0u);
}

// -------------------------------------------------------------- service

TEST(Service, SingleQueryCompletes) {
  TailGuardService svc(basic_options());
  std::atomic<int> executed{0};
  std::vector<ServiceTaskSpec> tasks(3);
  for (auto& t : tasks) t.work = [&executed] { ++executed; };
  const QueryResult r = svc.submit(0, std::move(tasks)).get();
  EXPECT_TRUE(r.admitted);
  EXPECT_EQ(r.fanout, 3u);
  EXPECT_EQ(executed.load(), 3);
  EXPECT_GE(r.latency_ms, 0.0);
  EXPECT_EQ(svc.completed_queries(), 1u);
}

TEST(Service, ManyConcurrentQueriesAllComplete) {
  TailGuardService svc(basic_options(Policy::kTfEdf, 8));
  std::vector<std::future<QueryResult>> futures;
  for (int q = 0; q < 200; ++q) {
    std::vector<ServiceTaskSpec> tasks(1 + q % 8);
    for (auto& t : tasks) t.simulated_service_ms = 0.05;
    futures.push_back(svc.submit(q % 2, std::move(tasks)));
  }
  for (auto& f : futures) {
    const QueryResult r = f.get();
    EXPECT_TRUE(r.admitted);
  }
  EXPECT_EQ(svc.completed_queries(), 200u);
  EXPECT_EQ(svc.rejected_queries(), 0u);
}

TEST(Service, ExplicitWorkerPlacementHonoured) {
  ServiceOptions opt = basic_options();
  TailGuardService svc(opt);
  std::atomic<std::thread::id> seen{};
  std::vector<ServiceTaskSpec> tasks(2);
  tasks[0].worker = 1;
  tasks[0].work = [] {};
  tasks[1].worker = 1;
  tasks[1].work = [] {};
  const QueryResult r = svc.submit(0, std::move(tasks)).get();
  EXPECT_TRUE(r.admitted);
  // Both tasks target worker 1: its model must have absorbed 2 observations.
  EXPECT_GE(
      static_cast<const StreamingCdfModel&>(*svc.worker_model(1)).observations(),
      2u);
}

TEST(Service, RejectsUnknownWorkerOrClass) {
  TailGuardService svc(basic_options());
  std::vector<ServiceTaskSpec> tasks(1);
  tasks[0].worker = 99;
  EXPECT_THROW(svc.submit(0, std::move(tasks)), CheckFailure);
  std::vector<ServiceTaskSpec> tasks2(1);
  EXPECT_THROW(svc.submit(7, std::move(tasks2)), CheckFailure);
  EXPECT_THROW(svc.submit(0, {}), CheckFailure);
}

TEST(Service, FanoutBeyondWorkersThrows) {
  TailGuardService svc(basic_options(Policy::kTfEdf, 2));
  std::vector<ServiceTaskSpec> tasks(3);  // > 2 workers, no explicit target
  EXPECT_THROW(svc.submit(0, std::move(tasks)), CheckFailure);
}

TEST(Service, SeedProfileSetsBudgets) {
  ServiceOptions opt = basic_options();
  TailGuardService svc(opt);
  // Seed with ~constant 5 ms post-queuing times.
  std::vector<double> profile(2000, 5.0);
  svc.seed_profile(profile);
  std::vector<ServiceTaskSpec> tasks(2);
  for (auto& t : tasks) t.simulated_service_ms = 0.01;
  const QueryResult r = svc.submit(0, std::move(tasks)).get();
  // Budget = 50 - x99u(2 workers at ~5 ms) ~ 45 ms.
  EXPECT_NEAR(r.deadline_budget_ms, 45.0, 2.0);
}

TEST(Service, OnlineModelLearnsServiceTimes) {
  ServiceOptions opt = basic_options(Policy::kTfEdf, 2);
  TailGuardService svc(opt);
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 100; ++i) {
    std::vector<ServiceTaskSpec> tasks(2);
    for (auto& t : tasks) t.simulated_service_ms = 2.0;
    futures.push_back(svc.submit(0, std::move(tasks)));
  }
  for (auto& f : futures) f.get();
  // Each worker observed ~100 sleeps of ~2 ms; the learned median must be
  // in that vicinity (sleep overshoot makes it >= 2 ms).
  const auto model = svc.worker_model(0);
  EXPECT_GE(model->quantile(0.5), 1.5);
  EXPECT_LE(model->quantile(0.5), 20.0);
}

TEST(Service, WorkerModelSnapshotSafeDuringTraffic) {
  // Regression: worker_model() used to return a reference into the live
  // model, which completion callbacks keep mutating — a reader quantile()
  // racing a StreamingCdfModel refresh (caught by the thread-safety
  // annotation pass). It now deep-copies under the shard locks; the
  // snapshot must stay coherent while traffic pounds the live model.
  ServiceOptions opt = basic_options(Policy::kTfEdf, 2);
  TailGuardService svc(opt);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const auto snapshot = svc.worker_model(0);
      const double q50 = snapshot->quantile(0.5);
      const double q99 = snapshot->quantile(0.99);
      // A coherent CDF is monotone; a torn read would not be.
      EXPECT_LE(q50, q99);
    }
  });
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 200; ++i) {
    std::vector<ServiceTaskSpec> tasks(2);
    for (auto& t : tasks) t.simulated_service_ms = 0.05;
    futures.push_back(svc.submit(0, std::move(tasks)));
  }
  for (auto& f : futures) f.get();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(svc.completed_queries(), 200u);
}

TEST(Service, DeadlineMissesTrackedUnderBacklog) {
  // One worker, tight SLO, long queue: later tasks must miss deadlines.
  ServiceOptions opt = basic_options(Policy::kTfEdf, 1);
  opt.classes = {{.slo_ms = 1.0, .percentile = 99.0}};
  TailGuardService svc(opt);
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 40; ++i) {
    std::vector<ServiceTaskSpec> tasks(1);
    tasks[0].simulated_service_ms = 1.0;
    futures.push_back(svc.submit(0, std::move(tasks)));
  }
  std::uint32_t missed = 0;
  for (auto& f : futures) missed += f.get().tasks_missed_deadline;
  EXPECT_GT(missed, 10u);
  EXPECT_GT(svc.deadline_miss_ratio(), 0.25);
}

TEST(Service, AdmissionRejectsUnderOverload) {
  ServiceOptions opt = basic_options(Policy::kTfEdf, 1);
  opt.classes = {{.slo_ms = 2.0, .percentile = 99.0}};
  opt.admission = AdmissionOptions{.window_tasks = 50,
                                   .window_ms = 200.0,
                                   .miss_ratio_threshold = 0.05};
  TailGuardService svc(opt);
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 300; ++i) {
    std::vector<ServiceTaskSpec> tasks(1);
    tasks[0].simulated_service_ms = 1.0;
    futures.push_back(svc.submit(0, std::move(tasks)));
    // Pace submissions at ~2x the worker's capacity so the controller gets
    // to observe dequeues (and their deadline misses) while the overload is
    // still arriving.
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  std::size_t rejected = 0;
  for (auto& f : futures) rejected += !f.get().admitted;
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(svc.rejected_queries(), rejected);
  EXPECT_EQ(svc.completed_queries(), 300u - rejected);
}

TEST(Service, EdfOrderObservedUnderContention) {
  // Stall the single worker, enqueue a late-deadline query then an
  // early-deadline one; TF-EDFQ must run the earlier-deadline query first.
  ServiceOptions opt = basic_options(Policy::kTfEdf, 1);
  // Two classes with very different SLOs -> very different deadlines.
  opt.classes = {{.slo_ms = 1.0, .percentile = 99.0},
                 {.slo_ms = 10000.0, .percentile = 99.0}};
  TailGuardService svc(opt);

  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::vector<ServiceTaskSpec> blocker(1);
  blocker[0].work = [gate] { gate.wait(); };
  auto f0 = svc.submit(1, std::move(blocker));

  // Give the worker a moment to start the blocker so the next two queue up.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::vector<int> order;
  std::mutex order_mu;
  std::vector<ServiceTaskSpec> late(1), early(1);
  late[0].work = [&] {
    std::lock_guard l(order_mu);
    order.push_back(2);
  };
  early[0].work = [&] {
    std::lock_guard l(order_mu);
    order.push_back(1);
  };
  auto f_late = svc.submit(1, std::move(late));    // loose SLO
  auto f_early = svc.submit(0, std::move(early));  // tight SLO, queued later
  release.set_value();
  f_late.get();
  f_early.get();
  f0.get();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // tight-SLO query ran first despite arriving later
  EXPECT_EQ(order[1], 2);
}

TEST(Service, BudgetOverrideSetsDeadline) {
  TailGuardService svc(basic_options());
  std::vector<double> profile(1000, 5.0);
  svc.seed_profile(profile);
  std::vector<ServiceTaskSpec> tasks(2);
  for (auto& t : tasks) t.simulated_service_ms = 0.01;
  const QueryResult r = svc.submit(0, std::move(tasks), 12.5).get();
  EXPECT_NEAR(r.deadline_budget_ms, 12.5, 1e-9);
}

TEST(RequestRunner, SequentialExecutionAndLatency) {
  TailGuardService svc(basic_options());
  std::vector<RequestQueryPlan> plans(3);
  std::atomic<int> order_check{0};
  std::vector<int> seen;
  std::mutex seen_mu;
  for (int i = 0; i < 3; ++i) {
    plans[i].cls = 0;
    plans[i].tasks.resize(2);
    for (auto& t : plans[i].tasks) {
      t.work = [i, &seen, &seen_mu] {
        std::lock_guard l(seen_mu);
        seen.push_back(i);
      };
    }
  }
  const auto budgets = std::vector<TimeMs>{10.0, 10.0, 10.0};
  const RequestResult r = submit_request(svc, std::move(plans), budgets).get();
  EXPECT_TRUE(r.admitted);
  ASSERT_EQ(r.queries.size(), 3u);
  // Strict sequencing: all tasks of query i ran before any task of i+1.
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen, (std::vector<int>{0, 0, 1, 1, 2, 2}));
  EXPECT_GE(r.latency_ms, r.queries[0].latency_ms);
  (void)order_check;
}

TEST(RequestRunner, StopsAtFirstRejectedQuery) {
  ServiceOptions opt = basic_options(Policy::kTfEdf, 1);
  opt.classes = {{.slo_ms = 1.0, .percentile = 99.0}};
  opt.admission = AdmissionOptions{.window_tasks = 10,
                                   .window_ms = 10000.0,
                                   .miss_ratio_threshold = 0.0};
  TailGuardService svc(opt);
  // Poison the window: tasks that always miss (zero budget, 1 ms service).
  std::vector<std::future<QueryResult>> poison;
  for (int i = 0; i < 20; ++i) {
    std::vector<ServiceTaskSpec> tasks(1);
    tasks[0].simulated_service_ms = 1.0;
    poison.push_back(svc.submit(0, std::move(tasks), 0.0));
  }
  for (auto& f : poison) f.get();
  ASSERT_GT(svc.deadline_miss_ratio(), 0.0);

  std::vector<RequestQueryPlan> plans(3);
  for (auto& p : plans) {
    p.tasks.resize(1);
    p.tasks[0].simulated_service_ms = 0.01;
  }
  const RequestResult r =
      submit_request(svc, std::move(plans), {1.0, 1.0, 1.0}).get();
  EXPECT_FALSE(r.admitted);
  EXPECT_LT(r.queries.size(), 3u);
}

TEST(RequestRunner, Validation) {
  TailGuardService svc(basic_options());
  EXPECT_THROW(submit_request(svc, {}, {}), CheckFailure);
  std::vector<RequestQueryPlan> plans(2);
  for (auto& p : plans) p.tasks.resize(1);
  EXPECT_THROW(submit_request(svc, std::move(plans), {1.0}), CheckFailure);
}

TEST(Service, DestructorDrainsInFlightQueries) {
  std::future<QueryResult> f;
  {
    TailGuardService svc(basic_options(Policy::kTfEdf, 2));
    std::vector<ServiceTaskSpec> tasks(2);
    for (auto& t : tasks) t.simulated_service_ms = 5.0;
    f = svc.submit(0, std::move(tasks));
  }  // service destroyed while query in flight
  const QueryResult r = f.get();  // must not hang or break the promise
  EXPECT_TRUE(r.admitted);
}

}  // namespace
}  // namespace tailguard
