// Failure-injection and degradation tests: brownouts, stragglers and load
// spikes through the service_scale hook, plus the extrapolated Tailbench
// models' sanity. Invariants must hold under every injected fault.
#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/cluster.h"
#include "sim/experiment.h"
#include "workloads/tailbench.h"
#include "workloads/tailbench_extra.h"

namespace tailguard {
namespace {

SimConfig faulty_base() {
  SimConfig cfg;
  cfg.num_servers = 20;
  cfg.policy = Policy::kTfEdf;
  cfg.classes = {{.slo_ms = 10.0, .percentile = 99.0}};
  cfg.fanout = std::make_shared<CategoricalFanout>(
      std::vector<std::uint32_t>{1, 4, 16},
      std::vector<double>{0.6, 0.3, 0.1});
  cfg.service_time = std::make_shared<Exponential>(1.0);
  cfg.num_queries = 20000;
  cfg.seed = 42;
  return cfg;
}

// A mid-run brownout (every server 3x slower for a window) must not break
// conservation: all offered queries still complete.
TEST(FailureInjection, BrownoutConservesQueries) {
  SimConfig cfg = faulty_base();
  set_load(cfg, 0.4);
  const double horizon = cfg.num_queries / cfg.arrival_rate;
  cfg.service_scale = [horizon](TimeMs t, ServerId) {
    return (t > 0.4 * horizon && t < 0.6 * horizon) ? 3.0 : 1.0;
  };
  const SimResult r = run_simulation(cfg);
  EXPECT_EQ(r.queries_admitted, cfg.num_queries);
  std::uint64_t recorded = 0;
  for (const auto& g : r.groups) recorded += g.queries;
  EXPECT_GT(recorded, 0u);
}

// The brownout must strictly degrade the tail versus the healthy run.
TEST(FailureInjection, BrownoutDegradesTail) {
  SimConfig cfg = faulty_base();
  set_load(cfg, 0.4);
  const SimResult healthy = run_simulation(cfg);
  const double horizon = cfg.num_queries / cfg.arrival_rate;
  cfg.service_scale = [horizon](TimeMs t, ServerId) {
    return (t > 0.4 * horizon && t < 0.6 * horizon) ? 3.0 : 1.0;
  };
  const SimResult browned = run_simulation(cfg);
  EXPECT_GT(browned.groups[0].tail_latency_ms, healthy.groups[0].tail_latency_ms);
}

// A single frozen-slow server (simulating a failing node) must hurt the
// high-fanout group far more than the fanout-1 group — the paper's §I
// outlier argument.
TEST(FailureInjection, SingleStragglerHitsHighFanoutHardest) {
  SimConfig cfg = faulty_base();
  // Load and slowdown chosen so the bad server stays stable (local
  // utilization 0.75): otherwise its queue diverges and every group's tail
  // is dominated by it.
  set_load(cfg, 0.25);
  const SimResult healthy = run_simulation(cfg);
  cfg.service_scale = [](TimeMs, ServerId sid) {
    return sid == 0 ? 3.0 : 1.0;
  };
  const SimResult degraded = run_simulation(cfg);
  const auto ratio = [](const SimResult& r, std::uint32_t kf,
                        const SimResult& base) {
    return r.find_group(0, kf)->tail_latency_ms /
           base.find_group(0, kf)->tail_latency_ms;
  };
  // kf=16 touches the bad server with prob ~16/20; kf=1 with ~1/20.
  EXPECT_GT(ratio(degraded, 16, healthy), ratio(degraded, 1, healthy));
}

// Admission control + brownout: with the controller on, the deadline-miss
// ratio during/after the brownout stays bounded and some queries are shed.
TEST(FailureInjection, AdmissionShedsLoadDuringBrownout) {
  SimConfig cfg = faulty_base();
  set_load(cfg, 0.5);
  const double horizon = cfg.num_queries / cfg.arrival_rate;
  cfg.service_scale = [horizon](TimeMs t, ServerId) {
    return (t > 0.3 * horizon && t < 0.7 * horizon) ? 4.0 : 1.0;
  };
  const SimResult open = run_simulation(cfg);
  cfg.admission = AdmissionOptions{.window_tasks = 5000,
                                   .window_ms = 100.0,
                                   .miss_ratio_threshold = 0.02};
  const SimResult guarded = run_simulation(cfg);
  EXPECT_GT(guarded.queries_rejected, 0u);
  EXPECT_LT(guarded.task_deadline_miss_ratio,
            open.task_deadline_miss_ratio);
}

// Online estimation under permanent degradation: after the model adapts,
// the system keeps running and deadline misses stay finite (liveness).
TEST(FailureInjection, OnlineEstimatorSurvivesPermanentSlowdown) {
  SimConfig cfg = faulty_base();
  // SLO loose enough to stay feasible after the 2x slowdown (post-drift
  // x99u(16) ~ 14.8 ms for exp(1) service); misses then reflect queueing,
  // not a structurally impossible budget.
  cfg.classes = {{.slo_ms = 30.0, .percentile = 99.0}};
  cfg.estimation = EstimationMode::kOnlineStreaming;
  set_load(cfg, 0.2);
  const double horizon = cfg.num_queries / cfg.arrival_rate;
  cfg.service_scale = [horizon](TimeMs t, ServerId) {
    return t > 0.5 * horizon ? 2.0 : 1.0;
  };
  const SimResult r = run_simulation(cfg);
  EXPECT_EQ(r.queries_admitted, cfg.num_queries);
  EXPECT_LT(r.task_deadline_miss_ratio, 0.25);
}

// ------------------------------------------------ extrapolated workloads

class ExtraWorkloads : public ::testing::TestWithParam<TailbenchExtraApp> {};

TEST_P(ExtraWorkloads, ModelIsWellFormed) {
  const auto model = make_extra_service_time_model(GetParam());
  ASSERT_NE(model, nullptr);
  EXPECT_GT(model->mean(), 0.0);
  EXPECT_LT(model->quantile(0.5), model->quantile(0.99));
  EXPECT_LT(model->quantile(0.99), model->quantile(0.999));
  // Quantile/CDF round trip.
  for (double p : {0.3, 0.9, 0.99}) {
    EXPECT_NEAR(model->cdf(model->quantile(p)), p, 1e-9);
  }
}

TEST_P(ExtraWorkloads, RunsThroughTheSimulator) {
  SimConfig cfg;
  cfg.num_servers = 10;
  cfg.policy = Policy::kTfEdf;
  cfg.fanout = std::make_shared<FixedFanout>(4);
  cfg.service_time = make_extra_service_time_model(GetParam());
  // SLO scaled to the model: x99u(4) plus headroom.
  DistributionCdfModel model(cfg.service_time);
  cfg.classes = {{.slo_ms = 3.0 * model.quantile(0.999), .percentile = 99.0}};
  cfg.num_queries = 5000;
  cfg.seed = 9;
  set_load(cfg, 0.3);
  const SimResult r = run_simulation(cfg);
  EXPECT_EQ(r.queries_admitted, 5000u);
  EXPECT_TRUE(r.all_slos_met(0.25));
}

INSTANTIATE_TEST_SUITE_P(AllExtraApps, ExtraWorkloads,
                         ::testing::ValuesIn(kAllTailbenchExtraApps),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(ExtraWorkloads, SuiteSpansFourOrdersOfMagnitude) {
  const double silo =
      make_extra_service_time_model(TailbenchExtraApp::kSilo)->mean();
  const double sphinx =
      make_extra_service_time_model(TailbenchExtraApp::kSphinx)->mean();
  EXPECT_GT(sphinx / silo, 1e4);
}

}  // namespace
}  // namespace tailguard
