// Tests for the shared query control plane (core/control_plane.h): unit
// coverage of the admission -> budget -> placement -> t_D -> tracking
// pipeline, plus the cross-backend parity contract — the simulator, the
// in-process runtime and the loopback remote dispatcher must produce
// identical per-task budgets (hence identical t_D offsets) and identical
// admission decisions when driven with the same profile and query stream.
#include <gtest/gtest.h>

#include <future>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/cdf_model.h"
#include "core/control_plane.h"
#include "dist/standard.h"
#include "net/dispatcher.h"
#include "net/task_server.h"
#include "runtime/service.h"
#include "sim/simulator.h"
#include "workloads/trace.h"

namespace tailguard {
namespace {

// ------------------------------------------------------------------- unit

std::vector<std::shared_ptr<CdfModel>> fixed_models(std::size_t n,
                                                    double value_ms) {
  std::vector<std::shared_ptr<CdfModel>> models;
  models.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    models.push_back(std::make_shared<DistributionCdfModel>(
        std::make_shared<Deterministic>(value_ms)));
  return models;
}

ControlPlaneOptions basic_options(Policy policy) {
  ControlPlaneOptions options;
  options.policy = policy;
  options.classes = {{.slo_ms = 20.0, .percentile = 99.0},
                     {.slo_ms = 50.0, .percentile = 99.0}};
  return options;
}

TEST(ControlPlane, Eq6BudgetAndDeadline) {
  // Deterministic 5 ms unloaded tasks: x_p^u(kf) = 5 for every fanout, so
  // T_b = SLO - 5 regardless of the server subset.
  QueryControlPlane cp(basic_options(Policy::kTfEdf), fixed_models(4, 5.0));
  const std::vector<ServerId> two = {0, 1};
  EXPECT_DOUBLE_EQ(cp.budget(0, two), 15.0);
  EXPECT_DOUBLE_EQ(cp.budget(1, two), 45.0);

  const QueryPlan plan = cp.begin_query(100.0, 0, two);
  EXPECT_EQ(plan.cls, 0u);
  EXPECT_EQ(plan.fanout, 2u);
  EXPECT_DOUBLE_EQ(plan.t0, 100.0);
  EXPECT_DOUBLE_EQ(plan.budget_ms, 15.0);
  EXPECT_DOUBLE_EQ(plan.tail_deadline, 115.0);
  EXPECT_DOUBLE_EQ(plan.order_deadline, 115.0);  // TF-EDFQ orders by t_D
  EXPECT_DOUBLE_EQ(cp.query_state(plan.id).deadline, 115.0);
}

TEST(ControlPlane, OrderingKeyFollowsPolicy) {
  const std::vector<ServerId> two = {0, 1};
  {
    QueryControlPlane cp(basic_options(Policy::kTEdf), fixed_models(4, 5.0));
    // T-EDFQ orders by t0 + SLO, fanout-unaware.
    EXPECT_DOUBLE_EQ(cp.begin_query(100.0, 0, two).order_deadline, 120.0);
    // Request mode supplies the request-level SLO for the ordering key.
    EXPECT_DOUBLE_EQ(
        cp.begin_query(100.0, 0, two, std::nullopt, 70.0).order_deadline,
        170.0);
  }
  for (const Policy policy : {Policy::kFifo, Policy::kPriq}) {
    QueryControlPlane cp(basic_options(policy), fixed_models(4, 5.0));
    const QueryPlan plan = cp.begin_query(100.0, 0, two);
    EXPECT_DOUBLE_EQ(plan.order_deadline, 100.0);  // arrival order
    EXPECT_DOUBLE_EQ(plan.tail_deadline, 115.0);   // t_D still Eq. 6
  }
}

TEST(ControlPlane, BudgetOverrideReplacesEq6) {
  QueryControlPlane cp(basic_options(Policy::kTfEdf), fixed_models(4, 5.0));
  const std::vector<ServerId> two = {0, 1};
  const QueryPlan plan = cp.begin_query(10.0, 0, two, 3.5);
  EXPECT_DOUBLE_EQ(plan.budget_ms, 3.5);
  EXPECT_DOUBLE_EQ(plan.tail_deadline, 13.5);
}

TEST(ControlPlane, TracksQueriesAndPerClassAccounting) {
  QueryControlPlane cp(basic_options(Policy::kTfEdf), fixed_models(4, 5.0));
  const std::vector<ServerId> two = {0, 1};
  const QueryPlan plan = cp.begin_query(0.0, 1, two);
  EXPECT_EQ(cp.in_flight(), 1u);
  EXPECT_EQ(cp.queries_started(), 1u);

  cp.record_task_dequeue(1.0, 1, false);
  cp.record_task_dequeue(2.0, 1, true);
  EXPECT_EQ(cp.tasks_recorded(), 2u);
  EXPECT_EQ(cp.tasks_missed(), 1u);
  EXPECT_DOUBLE_EQ(cp.task_miss_ratio(), 0.5);

  EXPECT_FALSE(cp.complete_task(plan.id));
  QueryState finished;
  EXPECT_TRUE(cp.complete_task(plan.id, &finished));
  EXPECT_EQ(finished.fanout, 2u);
  EXPECT_EQ(cp.in_flight(), 0u);
  EXPECT_EQ(cp.queries_completed(), 1u);
  EXPECT_EQ(cp.class_accounting(1).queries_completed, 1u);
  EXPECT_EQ(cp.class_accounting(1).tasks_recorded, 2u);
  EXPECT_EQ(cp.class_accounting(1).tasks_missed, 1u);
  EXPECT_EQ(cp.class_accounting(0).tasks_recorded, 0u);
}

TEST(ControlPlane, AdmissionDisabledAlwaysAdmits) {
  QueryControlPlane cp(basic_options(Policy::kTfEdf), fixed_models(4, 5.0));
  EXPECT_FALSE(cp.admission_enabled());
  EXPECT_TRUE(cp.should_admit(0.0));
  EXPECT_TRUE(cp.should_admit(0.0, 0.99));
  EXPECT_DOUBLE_EQ(cp.admission_miss_ratio(0.0), 0.0);
}

TEST(ControlPlane, OnOffAdmissionFollowsMissWindow) {
  ControlPlaneOptions options = basic_options(Policy::kTfEdf);
  options.admission = AdmissionOptions{.window_tasks = 1000,
                                       .window_ms = 1e9,
                                       .miss_ratio_threshold = 0.1,
                                       .mode = AdmissionMode::kOnOff};
  QueryControlPlane cp(std::move(options), fixed_models(4, 5.0));
  EXPECT_TRUE(cp.admission_enabled());
  EXPECT_TRUE(cp.should_admit(0.0));  // empty window admits
  cp.count_admitted();

  cp.record_task_dequeue(1.0, 0, true);
  EXPECT_DOUBLE_EQ(cp.admission_miss_ratio(2.0), 1.0);
  EXPECT_FALSE(cp.should_admit(2.0));
  cp.count_rejected();

  EXPECT_EQ(cp.queries_admitted(), 1u);
  EXPECT_EQ(cp.queries_rejected(), 1u);

  // Enough hits dilute the window below R_th and admission resumes.
  for (int i = 0; i < 20; ++i) cp.record_task_dequeue(3.0, 0, false);
  EXPECT_TRUE(cp.should_admit(4.0));
}

TEST(ControlPlane, ProportionalAdmissionConsumesTheCoin) {
  ControlPlaneOptions options = basic_options(Policy::kTfEdf);
  options.admission = AdmissionOptions{.window_tasks = 1000,
                                       .window_ms = 1e9,
                                       .miss_ratio_threshold = 0.1,
                                       .mode = AdmissionMode::kProportional,
                                       .proportional_gain = 1.0};
  QueryControlPlane cp(std::move(options), fixed_models(4, 5.0));
  cp.record_task_dequeue(0.0, 0, true);  // ratio 1.0 >= 2 * R_th
  // Rejection probability is 1: every coin — internal or supplied — rejects.
  EXPECT_FALSE(cp.should_admit(1.0));
  EXPECT_FALSE(cp.should_admit(1.0, 0.0));
  EXPECT_FALSE(cp.should_admit(1.0, 0.999999));
}

TEST(ControlPlane, PlacementPicksLeastLoaded) {
  QueryControlPlane cp(basic_options(Policy::kTfEdf), fixed_models(4, 5.0));
  const auto picked = cp.place({{3, 0}, {0, 1}, {1, 2}}, 2);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0], 1u);
  EXPECT_EQ(picked[1], 2u);
}

// ----------------------------------------------------- cross-backend parity
//
// The three execution backends share one QueryControlPlane implementation;
// these tests pin the contract that makes that sharing observable: identical
// inputs produce identical scheduling decisions everywhere.
//
// Exactness hinges on freezing the streaming models' refresh cadence
// (refresh_every larger than any observation count in the test): quantile
// caches then never invalidate, so the budget each backend memoises from the
// shared offline profile — before any online observation lands — is the one
// it keeps for the whole run.

constexpr std::uint64_t kNoRefresh = 1ull << 30;

StreamingCdfModel::Options frozen_model_options() {
  StreamingCdfModel::Options options;
  options.histogram = {.min_value = 1e-3,
                       .max_value = 1e6,
                       .buckets_per_decade = 100,
                       .decay_every = 0,
                       .decay_factor = 0.5};
  options.refresh_every = kNoRefresh;
  return options;
}

std::vector<double> shared_profile() {
  Rng rng(42);
  std::vector<double> profile(3000);
  for (auto& x : profile) x = 0.5 + rng.uniform();
  return profile;
}

constexpr std::size_t kParityServers = 4;

const std::vector<ClassSpec>& parity_classes() {
  static const std::vector<ClassSpec> classes = {
      {.slo_ms = 80.0, .percentile = 99.0},
      {.slo_ms = 160.0, .percentile = 99.0}};
  return classes;
}

std::uint32_t parity_fanout(ClassId cls) { return cls == 0 ? 2 : 4; }

TEST(ControlPlaneParity, IdenticalBudgetsAcrossSimRuntimeAndNet) {
  const std::vector<double> profile = shared_profile();

  // --- simulator: injected models seeded through the same observe() path
  // the runtime and dispatcher use, pinned first-k placement, budgets
  // captured via the on_query_planned hook.
  std::map<std::pair<ClassId, std::uint32_t>, double> sim_budget_ms;
  {
    std::vector<std::shared_ptr<CdfModel>> models;
    for (std::size_t i = 0; i < kParityServers; ++i) {
      auto model = std::make_shared<StreamingCdfModel>(frozen_model_options());
      for (double s : profile) model->observe(s);
      models.push_back(std::move(model));
    }
    SimConfig config;
    config.num_servers = kParityServers;
    config.policy = Policy::kTfEdf;
    config.classes = parity_classes();
    config.service_time = std::make_shared<Exponential>(1.0);
    config.server_models = models;
    config.placement = [](Rng&, ClassId, std::uint32_t kf,
                          std::vector<ServerId>& out) {
      out.resize(kf);
      for (std::uint32_t i = 0; i < kf; ++i) out[i] = i;
    };
    for (std::size_t q = 0; q < 40; ++q) {
      const auto cls = static_cast<ClassId>(q % 2);
      config.trace.push_back({.arrival_ms = 5.0 * static_cast<double>(q),
                              .class_id = cls,
                              .fanout = parity_fanout(cls)});
    }
    config.seed = 9;
    config.on_query_planned = [&](const QueryPlan& plan) {
      const auto key = std::make_pair(plan.cls, plan.fanout);
      const auto [it, inserted] = sim_budget_ms.emplace(key, plan.budget_ms);
      if (!inserted) {
        // Frozen models: every query of a combo gets the same budget.
        EXPECT_EQ(it->second, plan.budget_ms);
      }
      EXPECT_NEAR(plan.tail_deadline - plan.t0, plan.budget_ms, 1e-9);
    };
    run_simulation(config);
  }
  ASSERT_EQ(sim_budget_ms.size(), 2u);

  // Warm + measure one backend: two pinned-placement queries submitted
  // back-to-back (their 5 ms tasks cannot complete before both budgets are
  // memoised from the pristine profile), then a closed loop that checks the
  // budgets survive online observations unchanged.
  const auto drive_backend = [&](auto&& submit_pinned) {
    std::map<std::pair<ClassId, std::uint32_t>, double> budget_ms;
    auto warm0 = submit_pinned(ClassId{0}, 5.0);
    auto warm1 = submit_pinned(ClassId{1}, 5.0);
    budget_ms[{0, parity_fanout(0)}] = warm0.get().deadline_budget_ms;
    budget_ms[{1, parity_fanout(1)}] = warm1.get().deadline_budget_ms;
    for (int q = 0; q < 6; ++q) {
      const auto cls = static_cast<ClassId>(q % 2);
      const QueryResult r = submit_pinned(cls, 0.5).get();
      EXPECT_EQ(r.deadline_budget_ms, budget_ms.at({cls, parity_fanout(cls)}))
          << "online observations must not perturb the frozen budget";
    }
    return budget_ms;
  };

  // --- in-process runtime.
  ServiceOptions svc_options;
  svc_options.num_workers = kParityServers;
  svc_options.policy = Policy::kTfEdf;
  svc_options.classes = parity_classes();
  svc_options.model_options = frozen_model_options();
  TailGuardService service(svc_options);
  service.seed_profile(profile);
  const auto runtime_budget_ms =
      drive_backend([&](ClassId cls, TimeMs service_ms) {
        std::vector<ServiceTaskSpec> tasks(parity_fanout(cls));
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          tasks[i].worker = static_cast<ServerId>(i);
          tasks[i].simulated_service_ms = service_ms;
        }
        return service.submit(cls, std::move(tasks));
      });

  // --- remote dispatcher over loopback TCP.
  std::vector<std::unique_ptr<net::TaskServer>> fleet;
  for (std::size_t i = 0; i < kParityServers; ++i) {
    net::TaskServerOptions server_options;
    server_options.policy = Policy::kTfEdf;
    server_options.num_classes = parity_classes().size();
    fleet.push_back(std::make_unique<net::TaskServer>(server_options));
  }
  net::DispatcherOptions dispatcher_options;
  for (const auto& server : fleet)
    dispatcher_options.servers.push_back({"127.0.0.1", server->port()});
  dispatcher_options.policy = Policy::kTfEdf;
  dispatcher_options.classes = parity_classes();
  dispatcher_options.model_options = frozen_model_options();
  net::RemoteDispatcher dispatcher(dispatcher_options);
  ASSERT_TRUE(dispatcher.wait_for_servers(kParityServers, 5000.0));
  dispatcher.seed_profile(profile);
  const auto net_budget_ms =
      drive_backend([&](ClassId cls, TimeMs service_ms) {
        std::vector<net::RemoteTaskSpec> tasks(parity_fanout(cls));
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          tasks[i].server = static_cast<ServerId>(i);
          tasks[i].simulated_service_ms = service_ms;
        }
        return dispatcher.submit(cls, std::move(tasks));
      });

  // --- parity: bit-identical Eq. 6 budgets (hence t_D - t0) everywhere.
  for (ClassId cls = 0; cls < 2; ++cls) {
    const auto key = std::make_pair(cls, parity_fanout(cls));
    SCOPED_TRACE(::testing::Message() << "class " << static_cast<int>(cls));
    EXPECT_GT(sim_budget_ms.at(key), 0.0);
    EXPECT_EQ(sim_budget_ms.at(key), runtime_budget_ms.at(key));
    EXPECT_EQ(sim_budget_ms.at(key), net_budget_ms.at(key));
  }
}

TEST(ControlPlaneParity, IdenticalAdmissionDecisionsAcrossBackends) {
  // One always-late query poisons the miss window, then every later query
  // is rejected: the decision sequence [admit, reject x 9] must come out of
  // all three backends.
  constexpr int kQueries = 10;
  AdmissionOptions admission;
  admission.window_tasks = 100000;
  admission.window_ms = 1e9;
  admission.miss_ratio_threshold = 0.0005;
  admission.mode = AdmissionMode::kOnOff;

  // --- simulator: a 1 ms-spaced deterministic trace with an SLO far below
  // the unloaded tail, so Eq. 6 yields a negative budget and every dequeue
  // misses t_D.
  std::uint64_t sim_admitted = 0, sim_rejected = 0;
  {
    SimConfig config;
    config.num_servers = 2;
    config.policy = Policy::kTfEdf;
    config.classes = {{.slo_ms = 1e-4, .percentile = 99.0}};
    config.service_time = std::make_shared<Exponential>(1.0);
    for (int q = 0; q < kQueries; ++q)
      config.trace.push_back({.arrival_ms = 1000.0 * q,
                              .class_id = 0,
                              .fanout = 1});
    config.admission = admission;
    config.seed = 3;
    const SimResult result = run_simulation(config);
    sim_admitted = result.queries_admitted;
    sim_rejected = result.queries_rejected;
    EXPECT_EQ(result.queries_offered, static_cast<std::uint64_t>(kQueries));
  }

  // --- runtime and dispatcher: closed loop with a negative budget override
  // (the explicit Eq. 7 path) making every admitted task late on arrival.
  std::vector<bool> runtime_decisions;
  {
    ServiceOptions options;
    options.num_workers = 2;
    options.policy = Policy::kTfEdf;
    options.classes = {{.slo_ms = 50.0, .percentile = 99.0}};
    options.admission = admission;
    TailGuardService service(options);
    for (int q = 0; q < kQueries; ++q) {
      std::vector<ServiceTaskSpec> tasks(1);
      tasks[0].simulated_service_ms = 0.2;
      runtime_decisions.push_back(
          service.submit(0, std::move(tasks), -1.0).get().admitted);
    }
    EXPECT_EQ(service.rejected_queries(), sim_rejected);
  }

  std::vector<bool> net_decisions;
  {
    net::TaskServerOptions server_options;
    server_options.num_classes = 1;
    net::TaskServer server(server_options);
    net::DispatcherOptions options;
    options.servers = {{"127.0.0.1", server.port()}};
    options.classes = {{.slo_ms = 50.0, .percentile = 99.0}};
    options.admission = admission;
    net::RemoteDispatcher dispatcher(options);
    ASSERT_TRUE(dispatcher.wait_for_servers(1, 5000.0));
    for (int q = 0; q < kQueries; ++q) {
      std::vector<net::RemoteTaskSpec> tasks(1);
      tasks[0].simulated_service_ms = 0.2;
      net_decisions.push_back(
          dispatcher.submit(0, std::move(tasks), -1.0).get().admitted);
    }
    EXPECT_EQ(dispatcher.rejected_queries(), sim_rejected);
  }

  // --- parity: [admit, reject, reject, ...] everywhere.
  EXPECT_EQ(sim_admitted, 1u);
  EXPECT_EQ(sim_rejected, static_cast<std::uint64_t>(kQueries - 1));
  std::vector<bool> expected(kQueries, false);
  expected[0] = true;
  EXPECT_EQ(runtime_decisions, expected);
  EXPECT_EQ(net_decisions, expected);
}

}  // namespace
}  // namespace tailguard
