// Tests for the networked runtime: wire serde round-trips, frame
// reassembly, the task-server daemon, and the remote dispatcher — including
// the loopback end-to-end comparison against the in-process runtime and the
// kill-a-daemon graceful-degradation path.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "net/dispatcher.h"
#include "net/poller.h"
#include "net/send_queue.h"
#include "net/socket.h"
#include "net/task_server.h"
#include "net/wire.h"
#include "runtime/service.h"

namespace tailguard {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------------- wire

TEST(Wire, HelloRoundTrip) {
  net::HelloMsg msg;
  msg.peer_name = "dispatcher-7";
  const auto bytes = net::encode(msg);
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  const auto frame = buf.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, net::MsgType::kHello);
  net::HelloMsg decoded;
  ASSERT_TRUE(net::decode(*frame, &decoded));
  EXPECT_EQ(decoded, msg);
}

TEST(Wire, HelloAckRoundTrip) {
  net::HelloAckMsg msg;
  msg.policy = static_cast<std::uint8_t>(Policy::kTfEdf);
  msg.num_executors = 3;
  const auto bytes = net::encode(msg);
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  net::HelloAckMsg decoded;
  ASSERT_TRUE(net::decode(*buf.next(), &decoded));
  EXPECT_EQ(decoded, msg);
}

TEST(Wire, SubmitTaskRoundTrip) {
  net::SubmitTaskMsg msg;
  msg.task = 0x1234567890abcdefULL;
  msg.query = 42;
  msg.cls = 1;
  msg.relative_deadline_ms = -3.75;  // already-late tasks have negative budget
  msg.simulated_service_ms = 2.5;
  const auto bytes = net::encode(msg);
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  net::SubmitTaskMsg decoded;
  ASSERT_TRUE(net::decode(*buf.next(), &decoded));
  EXPECT_EQ(decoded, msg);
}

TEST(Wire, TaskDoneRoundTrip) {
  net::TaskDoneMsg msg;
  msg.task = 7;
  msg.query = 9;
  msg.queue_ms = 1.25;
  msg.service_ms = 4.5;
  msg.missed_deadline = true;
  const auto bytes = net::encode(msg);
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  net::TaskDoneMsg decoded;
  ASSERT_TRUE(net::decode(*buf.next(), &decoded));
  EXPECT_EQ(decoded, msg);
}

TEST(Wire, ModelSyncRoundTrip) {
  net::ModelSyncMsg msg;
  msg.samples_ms = {0.5, 1.0, 2.75, 100.0};
  const auto bytes = net::encode(msg);
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  net::ModelSyncMsg decoded;
  ASSERT_TRUE(net::decode(*buf.next(), &decoded));
  EXPECT_EQ(decoded, msg);
}

TEST(Wire, StatsRoundTrip) {
  net::StatsResponseMsg msg;
  msg.queue_depth = 12;
  msg.tasks_executed = 3400;
  msg.tasks_missed_deadline = 17;
  const auto bytes = net::encode(msg);
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  net::StatsResponseMsg decoded;
  ASSERT_TRUE(net::decode(*buf.next(), &decoded));
  EXPECT_EQ(decoded, msg);

  const auto req = net::encode(net::StatsRequestMsg{});
  net::FrameBuffer buf2;
  buf2.append(req.data(), req.size());
  net::StatsRequestMsg request;
  ASSERT_TRUE(net::decode(*buf2.next(), &request));
}

TEST(Wire, FrameBufferReassemblesByteByByte) {
  net::SubmitTaskMsg msg;
  msg.task = 99;
  msg.simulated_service_ms = 1.5;
  const auto bytes = net::encode(msg);
  net::FrameBuffer buf;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i + 1 < bytes.size()) {
      EXPECT_FALSE(buf.next().has_value());
    }
    buf.append(&bytes[i], 1);
  }
  net::SubmitTaskMsg decoded;
  ASSERT_TRUE(net::decode(*buf.next(), &decoded));
  EXPECT_EQ(decoded, msg);
  EXPECT_FALSE(buf.next().has_value());
  EXPECT_TRUE(buf.error().empty());
}

TEST(Wire, FrameBufferHandlesBackToBackFrames) {
  const auto a = net::encode(net::TaskDoneMsg{.task = 1});
  const auto b = net::encode(net::TaskDoneMsg{.task = 2});
  std::vector<std::uint8_t> stream(a);
  stream.insert(stream.end(), b.begin(), b.end());
  net::FrameBuffer buf;
  buf.append(stream.data(), stream.size());
  net::TaskDoneMsg first, second;
  ASSERT_TRUE(net::decode(*buf.next(), &first));
  ASSERT_TRUE(net::decode(*buf.next(), &second));
  EXPECT_EQ(first.task, 1u);
  EXPECT_EQ(second.task, 2u);
}

TEST(Wire, FrameBufferRejectsBadMagic) {
  std::vector<std::uint8_t> junk = {0xde, 0xad, 0xbe, 0xef,
                                    0x00, 0x00, 0x00, 0x00};
  net::FrameBuffer buf;
  buf.append(junk.data(), junk.size());
  EXPECT_FALSE(buf.next().has_value());
  EXPECT_FALSE(buf.error().empty());
}

TEST(Wire, FrameBufferRejectsVersionMismatch) {
  auto bytes = net::encode(net::HelloMsg{});
  bytes[2] = net::kWireVersion + 1;
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  EXPECT_FALSE(buf.next().has_value());
  EXPECT_NE(buf.error().find("version"), std::string::npos);
}

TEST(Wire, FrameBufferRejectsOversizedPayload) {
  auto bytes = net::encode(net::HelloMsg{});
  // Rewrite the length field to something absurd.
  const std::uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; ++i)
    bytes[4 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  EXPECT_FALSE(buf.next().has_value());
  EXPECT_FALSE(buf.error().empty());
}

TEST(Wire, DecodeRejectsTruncatedPayload) {
  const auto bytes = net::encode(net::SubmitTaskMsg{});
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  auto frame = *buf.next();
  frame.payload.pop_back();
  net::SubmitTaskMsg decoded;
  EXPECT_FALSE(net::decode(frame, &decoded));
}

TEST(Wire, DecodeRejectsTrailingGarbage) {
  const auto bytes = net::encode(net::TaskDoneMsg{});
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  auto frame = *buf.next();
  frame.payload.push_back(0x00);
  net::TaskDoneMsg decoded;
  EXPECT_FALSE(net::decode(frame, &decoded));
}

TEST(Wire, UnknownMessageTypeIsSkippable) {
  auto bytes = net::encode(net::HelloMsg{});
  bytes[3] = 0x7f;  // a type this version has never heard of
  const auto follow = net::encode(net::TaskDoneMsg{.task = 5});
  bytes.insert(bytes.end(), follow.begin(), follow.end());
  net::FrameBuffer buf;
  buf.append(bytes.data(), bytes.size());
  const auto unknown = buf.next();
  ASSERT_TRUE(unknown.has_value());  // delivered, caller decides to ignore
  net::TaskDoneMsg decoded;
  ASSERT_TRUE(net::decode(*buf.next(), &decoded));
  EXPECT_EQ(decoded.task, 5u);
}

TEST(Wire, EncodeIntoCoalescesFramesIntoOneBuffer) {
  // The batching primitive: many frames appended to the same buffer must
  // byte-match the concatenation of their individual encode() results and
  // parse back in order — this is exactly what a SendQueue chunk holds.
  std::vector<std::uint8_t> batch;
  net::SubmitTaskMsg submit{.task = 7, .query = 3, .cls = 1,
                            .relative_deadline_ms = 12.5,
                            .simulated_service_ms = 0.25};
  net::TaskDoneMsg done{.task = 7, .query = 3, .queue_ms = 1.5,
                        .service_ms = 0.5, .missed_deadline = true};
  net::HelloMsg hello{.peer_name = "batcher"};
  net::encode_into(hello, batch);
  net::encode_into(submit, batch);
  net::encode_into(done, batch);

  std::vector<std::uint8_t> concat = net::encode(hello);
  const auto submit_bytes = net::encode(submit);
  const auto done_bytes = net::encode(done);
  concat.insert(concat.end(), submit_bytes.begin(), submit_bytes.end());
  concat.insert(concat.end(), done_bytes.begin(), done_bytes.end());
  EXPECT_EQ(batch, concat);

  net::FrameBuffer buf;
  buf.append(batch.data(), batch.size());
  net::HelloMsg hello_rt;
  net::SubmitTaskMsg submit_rt;
  net::TaskDoneMsg done_rt;
  ASSERT_TRUE(net::decode(*buf.next(), &hello_rt));
  ASSERT_TRUE(net::decode(*buf.next(), &submit_rt));
  ASSERT_TRUE(net::decode(*buf.next(), &done_rt));
  EXPECT_EQ(hello_rt, hello);
  EXPECT_EQ(submit_rt, submit);
  EXPECT_EQ(done_rt, done);
  EXPECT_FALSE(buf.next().has_value());
}

TEST(Wire, EncodeIntoEmptyPayloadFrame) {
  std::vector<std::uint8_t> out;
  net::encode_into(net::StatsRequestMsg{}, out);
  EXPECT_EQ(out.size(), net::kFrameHeaderBytes);
  net::FrameBuffer buf;
  buf.append(out.data(), out.size());
  net::StatsRequestMsg req;
  ASSERT_TRUE(net::decode(*buf.next(), &req));
}

// ----------------------------------------------------- poller & send queue

class PollerBackends : public ::testing::TestWithParam<net::Poller::Backend> {};

TEST_P(PollerBackends, ReportsReadWriteAndHangup) {
  auto poller = net::Poller::create(GetParam());
  ASSERT_EQ(poller->backend(), GetParam());

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::ScopedFd a(sv[0]), b(sv[1]);
  net::set_nonblocking(a.get());

  // Read interest, nothing to read: timeout.
  poller->watch(a.get(), /*want_read=*/true, /*want_write=*/false);
  std::vector<net::Poller::Event> events;
  EXPECT_EQ(poller->wait(events, 0), 0);
  EXPECT_TRUE(events.empty());

  // Peer writes: readable, and not writable (no write interest).
  const std::uint8_t byte = 0x42;
  ASSERT_EQ(::send(b.get(), &byte, 1, MSG_NOSIGNAL), 1);
  events.clear();
  ASSERT_GE(poller->wait(events, 1000), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, a.get());
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);

  // Adding write interest on an idle socket: writable immediately.
  poller->watch(a.get(), /*want_read=*/true, /*want_write=*/true);
  events.clear();
  ASSERT_GE(poller->wait(events, 1000), 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].writable);

  // Peer closes: hangup-class condition reported.
  b.reset();
  events.clear();
  ASSERT_GE(poller->wait(events, 1000), 1);
  EXPECT_TRUE(events[0].closed || events[0].readable);  // EOF shows as either

  // After forget(), the fd produces no more events.
  poller->forget(a.get());
  events.clear();
  EXPECT_EQ(poller->wait(events, 0), 0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PollerBackends,
                         ::testing::Values(net::Poller::Backend::kEpoll,
                                           net::Poller::Backend::kPoll));

TEST(Poller, EnvSelectsPollBackend) {
  ::setenv("TAILGUARD_NET_BACKEND", "poll", 1);
  EXPECT_EQ(net::Poller::create()->backend(), net::Poller::Backend::kPoll);
  ::unsetenv("TAILGUARD_NET_BACKEND");
  EXPECT_EQ(net::Poller::create()->backend(), net::Poller::Backend::kEpoll);
}

TEST(SendQueue, CoalescesFramesAndFlushesInOneBatch) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::ScopedFd tx(sv[0]), rx(sv[1]);
  net::set_nonblocking(tx.get());

  net::SendQueue q;
  EXPECT_TRUE(q.empty());
  constexpr int kFrames = 500;
  for (int i = 0; i < kFrames; ++i) {
    net::TaskDoneMsg msg;
    msg.task = static_cast<TaskId>(i);
    msg.queue_ms = 0.5 * i;
    net::encode_into(msg, q.chunk());
  }
  EXPECT_FALSE(q.empty());
  const std::size_t pending = q.bytes_pending();
  EXPECT_GT(pending, 0u);

  // Flush everything while a reader drains the other end: every frame must
  // arrive intact and in order, regardless of how sends were batched.
  net::FrameBuffer in;
  int seen = 0;
  for (int spin = 0; spin < 100000 && seen < kFrames; ++spin) {
    const auto result = q.flush(tx.get());
    ASSERT_NE(result, net::SendQueue::FlushResult::kError);
    std::uint8_t buf[16 * 1024];
    const ssize_t n = ::recv(rx.get(), buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) in.append(buf, static_cast<std::size_t>(n));
    while (auto frame = in.next()) {
      net::TaskDoneMsg msg;
      ASSERT_TRUE(net::decode(*frame, &msg));
      ASSERT_EQ(msg.task, static_cast<TaskId>(seen));
      ++seen;
    }
  }
  EXPECT_EQ(seen, kFrames);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes_pending(), 0u);
}

TEST(SendQueue, BlockedFlushResumesWhereItStopped) {
  // A tiny send buffer forces the partial-write path: flush() must report
  // kBlocked, keep its position, and deliver a byte-perfect stream once the
  // reader catches up.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::ScopedFd tx(sv[0]), rx(sv[1]);
  net::set_nonblocking(tx.get());
  const int tiny = 4096;
  ::setsockopt(tx.get(), SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));

  net::SendQueue q;
  net::ModelSyncMsg big;
  big.samples_ms.resize(20000, 1.25);  // ~160 KB frame, far beyond SO_SNDBUF
  net::encode_into(big, q.chunk());
  const std::size_t total = q.bytes_pending();

  bool saw_blocked = false;
  net::FrameBuffer in;
  std::optional<net::Frame> frame;
  for (int spin = 0; spin < 100000 && !frame; ++spin) {
    const auto result = q.flush(tx.get());
    ASSERT_NE(result, net::SendQueue::FlushResult::kError);
    saw_blocked |= result == net::SendQueue::FlushResult::kBlocked;
    std::uint8_t buf[8 * 1024];
    const ssize_t n = ::recv(rx.get(), buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) in.append(buf, static_cast<std::size_t>(n));
    frame = in.next();
  }
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(saw_blocked) << "SO_SNDBUF=" << tiny << " never backpressured a "
                           << total << "-byte frame";
  net::ModelSyncMsg rt;
  ASSERT_TRUE(net::decode(*frame, &rt));
  EXPECT_EQ(rt, big);
  EXPECT_TRUE(q.empty());
}

TEST(SendQueue, ClearDropsPendingData) {
  net::SendQueue q;
  net::encode_into(net::HelloMsg{.peer_name = "x"}, q.chunk());
  EXPECT_FALSE(q.empty());
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes_pending(), 0u);
}

// ------------------------------------------------------- raw-socket client

/// Minimal blocking-ish wire client for poking a TaskServer directly.
class TestClient {
 public:
  bool connect_to(std::uint16_t port) {
    std::string error;
    fd_ = net::connect_tcp("127.0.0.1", port, &error);
    if (!fd_.valid()) return false;
    pollfd p{fd_.get(), POLLOUT, 0};
    ::poll(&p, 1, 2000);
    return net::connect_finished(fd_.get());
  }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_.get(), bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd p{fd_.get(), POLLOUT, 0};
        ::poll(&p, 1, 1000);
      } else {
        return;
      }
    }
  }

  std::optional<net::Frame> read_frame(int timeout_ms = 3000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      if (auto frame = in_.next()) return frame;
      if (std::chrono::steady_clock::now() > deadline) return std::nullopt;
      pollfd p{fd_.get(), POLLIN, 0};
      ::poll(&p, 1, 50);
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(fd_.get(), buf, sizeof(buf), 0);
      if (n > 0) in_.append(buf, static_cast<std::size_t>(n));
    }
  }

  void close() { fd_.reset(); }

 private:
  net::ScopedFd fd_;
  net::FrameBuffer in_;
};

// ------------------------------------------------------------ task server

TEST(TaskServer, HandshakeAndSubmitOverRawSocket) {
  net::TaskServerOptions options;
  options.policy = Policy::kTfEdf;
  options.num_classes = 2;
  net::TaskServer server(options);
  ASSERT_GT(server.port(), 0);

  TestClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  client.send_bytes(net::encode(net::HelloMsg{.peer_name = "test"}));
  const auto ack_frame = client.read_frame();
  ASSERT_TRUE(ack_frame.has_value());
  net::HelloAckMsg ack;
  ASSERT_TRUE(net::decode(*ack_frame, &ack));
  EXPECT_EQ(ack.protocol_version, net::kWireVersion);
  EXPECT_EQ(ack.num_executors, 1u);
  EXPECT_EQ(static_cast<Policy>(ack.policy), Policy::kTfEdf);

  net::SubmitTaskMsg submit;
  submit.task = 1;
  submit.query = 1;
  submit.cls = 0;
  submit.relative_deadline_ms = 100.0;
  submit.simulated_service_ms = 0.5;
  client.send_bytes(net::encode(submit));
  const auto done_frame = client.read_frame();
  ASSERT_TRUE(done_frame.has_value());
  net::TaskDoneMsg done;
  ASSERT_TRUE(net::decode(*done_frame, &done));
  EXPECT_EQ(done.task, 1u);
  EXPECT_EQ(done.query, 1u);
  EXPECT_GE(done.service_ms, 0.4);
  EXPECT_FALSE(done.missed_deadline);
  EXPECT_EQ(server.tasks_executed(), 1u);
}

TEST(TaskServer, AnswersStatsRequest) {
  net::TaskServer server(net::TaskServerOptions{});
  TestClient client;
  ASSERT_TRUE(client.connect_to(server.port()));
  client.send_bytes(net::encode(net::HelloMsg{}));
  ASSERT_TRUE(client.read_frame().has_value());  // ack
  client.send_bytes(net::encode(net::StatsRequestMsg{}));
  const auto frame = client.read_frame();
  ASSERT_TRUE(frame.has_value());
  net::StatsResponseMsg stats;
  ASSERT_TRUE(net::decode(*frame, &stats));
  EXPECT_EQ(stats.tasks_executed, 0u);
}

TEST(TaskServer, BuffersSamplesForModelSyncAcrossReconnect) {
  net::TaskServer server(net::TaskServerOptions{});
  {
    TestClient first;
    ASSERT_TRUE(first.connect_to(server.port()));
    first.send_bytes(net::encode(net::HelloMsg{}));
    ASSERT_TRUE(first.read_frame().has_value());  // ack
    net::SubmitTaskMsg submit;
    submit.task = 1;
    submit.relative_deadline_ms = 1000.0;
    submit.simulated_service_ms = 30.0;
    first.send_bytes(net::encode(submit));
    std::this_thread::sleep_for(5ms);  // let the submit land, not finish
    first.close();
  }
  // The task completes with nobody connected; its sample must be buffered.
  const auto deadline = std::chrono::steady_clock::now() + 3s;
  while (server.tasks_executed() < 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(5ms);
  ASSERT_EQ(server.tasks_executed(), 1u);

  TestClient second;
  ASSERT_TRUE(second.connect_to(server.port()));
  second.send_bytes(net::encode(net::HelloMsg{}));
  ASSERT_TRUE(second.read_frame().has_value());  // ack
  const auto sync_frame = second.read_frame();
  ASSERT_TRUE(sync_frame.has_value());
  net::ModelSyncMsg sync;
  ASSERT_TRUE(net::decode(*sync_frame, &sync));
  ASSERT_EQ(sync.samples_ms.size(), 1u);
  EXPECT_GE(sync.samples_ms[0], 25.0);
}

// ------------------------------------------------------- dispatcher + e2e

std::vector<std::unique_ptr<net::TaskServer>> start_fleet(
    std::size_t n, Policy policy, std::size_t num_classes) {
  std::vector<std::unique_ptr<net::TaskServer>> fleet;
  for (std::size_t i = 0; i < n; ++i) {
    net::TaskServerOptions options;
    options.policy = policy;
    options.num_classes = num_classes;
    fleet.push_back(std::make_unique<net::TaskServer>(options));
  }
  return fleet;
}

net::DispatcherOptions dispatcher_options(
    const std::vector<std::unique_ptr<net::TaskServer>>& fleet, Policy policy,
    std::vector<ClassSpec> classes) {
  net::DispatcherOptions options;
  for (const auto& server : fleet)
    options.servers.push_back({"127.0.0.1", server->port()});
  options.policy = policy;
  options.classes = std::move(classes);
  return options;
}

TEST(RemoteDispatcher, PollBackendEndToEnd) {
  // The full dispatcher <-> task-server loop on the poll(2) fallback: both
  // net loops pick their backend at construction, so the env var must be in
  // place before either starts. Differential coverage for the epoll default
  // every other test exercises.
  ::setenv("TAILGUARD_NET_BACKEND", "poll", 1);
  {
    auto fleet = start_fleet(2, Policy::kTfEdf, 1);
    net::RemoteDispatcher dispatcher(dispatcher_options(
        fleet, Policy::kTfEdf, {{.slo_ms = 100.0, .percentile = 99.0}}));
    ASSERT_TRUE(dispatcher.wait_for_servers(2, 5000.0));
    std::vector<std::future<QueryResult>> futures;
    for (int q = 0; q < 10; ++q) {
      std::vector<net::RemoteTaskSpec> tasks(2);
      for (auto& t : tasks) t.simulated_service_ms = 0.2;
      futures.push_back(dispatcher.submit(0, std::move(tasks)));
    }
    for (auto& f : futures) {
      const QueryResult r = f.get();
      EXPECT_TRUE(r.admitted);
      EXPECT_EQ(r.tasks_failed, 0u);
    }
    EXPECT_EQ(dispatcher.completed_queries(), 10u);
  }
  ::unsetenv("TAILGUARD_NET_BACKEND");
}

TEST(RemoteDispatcher, SubmitsAndCompletesQueries) {
  auto fleet = start_fleet(2, Policy::kTfEdf, 2);
  net::RemoteDispatcher dispatcher(dispatcher_options(
      fleet, Policy::kTfEdf,
      {{.slo_ms = 100.0, .percentile = 99.0},
       {.slo_ms = 200.0, .percentile = 99.0}}));
  ASSERT_TRUE(dispatcher.wait_for_servers(2, 5000.0));

  std::vector<std::future<QueryResult>> futures;
  for (int q = 0; q < 30; ++q) {
    std::vector<net::RemoteTaskSpec> tasks(1 + q % 2);
    for (auto& t : tasks) t.simulated_service_ms = 0.2;
    futures.push_back(dispatcher.submit(q % 2, std::move(tasks)));
  }
  for (auto& f : futures) {
    const QueryResult r = f.get();
    EXPECT_TRUE(r.admitted);
    EXPECT_EQ(r.tasks_failed, 0u);
    EXPECT_GT(r.latency_ms, 0.0);
  }
  EXPECT_EQ(dispatcher.completed_queries(), 30u);
  EXPECT_EQ(dispatcher.failed_tasks(), 0u);
  // Online updating: completions fed the per-server models.
  const auto& model =
      static_cast<const StreamingCdfModel&>(*dispatcher.server_model(0));
  EXPECT_GT(model.observations(), 0u);
}

TEST(RemoteDispatcher, ExplicitPlacementAndStats) {
  auto fleet = start_fleet(2, Policy::kTfEdf, 1);
  net::RemoteDispatcher dispatcher(dispatcher_options(
      fleet, Policy::kTfEdf, {{.slo_ms = 100.0, .percentile = 99.0}}));
  ASSERT_TRUE(dispatcher.wait_for_servers(2, 5000.0));

  std::vector<net::RemoteTaskSpec> tasks(2);
  tasks[0].server = 1;
  tasks[1].server = 1;
  tasks[0].simulated_service_ms = tasks[1].simulated_service_ms = 0.2;
  const QueryResult r = dispatcher.submit(0, std::move(tasks)).get();
  EXPECT_EQ(r.tasks_failed, 0u);
  EXPECT_EQ(fleet[1]->tasks_executed(), 2u);
  EXPECT_EQ(fleet[0]->tasks_executed(), 0u);

  dispatcher.request_stats(1);
  const auto deadline = std::chrono::steady_clock::now() + 3s;
  std::optional<net::StatsResponseMsg> stats;
  while (!(stats = dispatcher.last_stats(1)) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(5ms);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->tasks_executed, 2u);
}

TEST(RemoteDispatcher, NoServerReachableFailsFast) {
  net::DispatcherOptions options;
  options.servers = {{"127.0.0.1", 1}};  // nothing listens on port 1
  options.classes = {{.slo_ms = 50.0, .percentile = 99.0}};
  net::RemoteDispatcher dispatcher(options);
  EXPECT_FALSE(dispatcher.wait_for_servers(1, 200.0));
  std::vector<net::RemoteTaskSpec> tasks(3);
  const QueryResult r = dispatcher.submit(0, std::move(tasks)).get();
  EXPECT_EQ(r.tasks_failed, 3u);
  EXPECT_EQ(dispatcher.failed_tasks(), 3u);
}

TEST(RemoteDispatcher, TaskTimeoutFailsQueryNotHang) {
  auto fleet = start_fleet(1, Policy::kTfEdf, 1);
  auto options = dispatcher_options(fleet, Policy::kTfEdf,
                                    {{.slo_ms = 50.0, .percentile = 99.0}});
  options.task_timeout_ms = 100.0;
  net::RemoteDispatcher dispatcher(options);
  ASSERT_TRUE(dispatcher.wait_for_servers(1, 5000.0));

  std::vector<net::RemoteTaskSpec> slow(1);
  slow[0].simulated_service_ms = 700.0;
  const auto t0 = std::chrono::steady_clock::now();
  const QueryResult r = dispatcher.submit(0, std::move(slow)).get();
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r.tasks_failed, 1u);
  EXPECT_LT(waited, 600ms);  // resolved by the timeout, not the task

  // The late TaskDone must be absorbed without corrupting state, and the
  // dispatcher keeps working.
  std::this_thread::sleep_for(800ms);
  std::vector<net::RemoteTaskSpec> ok(1);
  ok[0].simulated_service_ms = 0.2;
  EXPECT_EQ(dispatcher.submit(0, std::move(ok)).get().tasks_failed, 0u);
}

TEST(RemoteDispatcher, AdmissionControlShedsLoadBeforeTheWire) {
  auto fleet = start_fleet(1, Policy::kTfEdf, 1);
  auto options = dispatcher_options(fleet, Policy::kTfEdf,
                                    {{.slo_ms = 50.0, .percentile = 99.0}});
  AdmissionOptions admission;
  admission.window_tasks = 100000;
  admission.window_ms = 1e9;  // effectively unbounded for this test
  admission.miss_ratio_threshold = 0.0005;
  admission.mode = AdmissionMode::kOnOff;
  options.admission = admission;
  net::RemoteDispatcher dispatcher(options);
  ASSERT_TRUE(dispatcher.wait_for_servers(1, 5000.0));

  // Poison the miss window: a negative budget override makes the task late
  // by construction, so its TaskDone carries missed_deadline=true and the
  // dispatcher's admission window sees a 100% miss ratio.
  std::vector<net::RemoteTaskSpec> late(1);
  late[0].simulated_service_ms = 0.2;
  const QueryResult poison =
      dispatcher.submit(0, std::move(late), /*budget_override=*/-1.0).get();
  EXPECT_TRUE(poison.admitted);
  EXPECT_EQ(poison.tasks_missed_deadline, 1u);
  EXPECT_EQ(fleet[0]->tasks_executed(), 1u);

  // Every new query is now rejected at the dispatcher: resolved immediately
  // with admitted=false, never serialized onto a connection.
  for (int q = 0; q < 10; ++q) {
    std::vector<net::RemoteTaskSpec> tasks(2);
    for (auto& t : tasks) t.simulated_service_ms = 0.2;
    const QueryResult r = dispatcher.submit(0, std::move(tasks)).get();
    EXPECT_FALSE(r.admitted);
    EXPECT_EQ(r.tasks_failed, 0u);
  }
  EXPECT_EQ(dispatcher.rejected_queries(), 10u);
  EXPECT_EQ(dispatcher.completed_queries(), 1u);
  EXPECT_EQ(dispatcher.failed_tasks(), 0u);
  // Rejected queries never hit the wire: the daemon still saw only the
  // poison task.
  EXPECT_EQ(fleet[0]->tasks_executed(), 1u);
}

// The acceptance scenario: a 4-daemon fleet under TF-EDFQ on the quickstart
// workload meets per-(class,fanout) SLOs, matching the in-process runtime on
// the same workload; killing a daemon mid-run degrades gracefully and the
// dispatcher reconnects when it returns.
struct GroupStats {
  std::vector<double> latencies;
  double budget_ms = 0.0;
};

double p99(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  if (v.empty()) return 0.0;
  return v[static_cast<std::size_t>(0.99 * static_cast<double>(v.size() - 1))];
}

TEST(RemoteDispatcher, LoopbackEndToEndMatchesInProcessRuntime) {
  constexpr std::size_t kServers = 4;
  const std::vector<ClassSpec> classes = {{.slo_ms = 80.0, .percentile = 99.0},
                                          {.slo_ms = 160.0, .percentile = 99.0}};
  // Offline profile: tasks take ~0.5-1.5 ms post-queuing.
  Rng profile_rng(42);
  std::vector<double> profile(3000);
  for (auto& x : profile) x = 0.5 + profile_rng.uniform();

  const auto run_workload = [&](auto&& submit_query) {
    std::map<std::pair<ClassId, std::uint32_t>, GroupStats> groups;
    std::vector<std::pair<std::pair<ClassId, std::uint32_t>,
                          std::future<QueryResult>>>
        futures;
    Rng rng(7);
    for (int q = 0; q < 240; ++q) {
      const ClassId cls = q % 3 == 0 ? 1 : 0;
      const std::uint32_t fanout = cls == 0 ? 2 : 4;
      std::vector<double> service(fanout);
      for (auto& s : service) s = 0.5 + rng.uniform();
      futures.emplace_back(std::make_pair(cls, fanout),
                           submit_query(cls, service));
      std::this_thread::sleep_for(1500us);
    }
    for (auto& [key, fut] : futures) {
      const QueryResult r = fut.get();
      EXPECT_EQ(r.tasks_failed, 0u);
      auto& g = groups[key];
      g.latencies.push_back(r.latency_ms);
      if (g.budget_ms == 0.0) g.budget_ms = r.deadline_budget_ms;
    }
    return groups;
  };

  // Remote: 4 daemons + dispatcher over loopback TCP.
  auto fleet = start_fleet(kServers, Policy::kTfEdf, classes.size());
  auto remote_groups = [&] {
    net::RemoteDispatcher dispatcher(
        dispatcher_options(fleet, Policy::kTfEdf, classes));
    EXPECT_TRUE(dispatcher.wait_for_servers(kServers, 5000.0));
    dispatcher.seed_profile(profile);
    return run_workload([&](ClassId cls, const std::vector<double>& service) {
      std::vector<net::RemoteTaskSpec> tasks(service.size());
      for (std::size_t i = 0; i < service.size(); ++i)
        tasks[i].simulated_service_ms = service[i];
      return dispatcher.submit(cls, std::move(tasks));
    });
  }();

  // In-process: the same workload through TailGuardService.
  ServiceOptions svc_options;
  svc_options.num_workers = kServers;
  svc_options.policy = Policy::kTfEdf;
  svc_options.classes = classes;
  TailGuardService service(svc_options);
  service.seed_profile(profile);
  auto local_groups =
      run_workload([&](ClassId cls, const std::vector<double>& service_ms) {
        std::vector<ServiceTaskSpec> tasks(service_ms.size());
        for (std::size_t i = 0; i < service_ms.size(); ++i)
          tasks[i].simulated_service_ms = service_ms[i];
        return service.submit(cls, std::move(tasks));
      });

  ASSERT_EQ(remote_groups.size(), 2u);
  ASSERT_EQ(local_groups.size(), 2u);
  for (const auto& [key, remote] : remote_groups) {
    const auto& local = local_groups.at(key);
    const double slo = classes[key.first].slo_ms;
    // Both runtimes meet the per-(class,fanout) SLO...
    EXPECT_LE(p99(remote.latencies), slo)
        << "remote class " << key.first << " fanout " << key.second;
    EXPECT_LE(p99(local.latencies), slo)
        << "local class " << key.first << " fanout " << key.second;
    // ...and assign near-identical Eq. 6 budgets from the shared profile.
    EXPECT_NEAR(remote.budget_ms, local.budget_ms, 0.3 * local.budget_ms + 5.0)
        << "class " << key.first << " fanout " << key.second;
  }
  // Deadline ordering: the fanout-4 loose class still gets a larger budget
  // than the fanout-2 tight class here (SLO gap dominates), and within the
  // remote run budgets are finite and positive after seeding.
  const double b_tight = remote_groups.at({0, 2}).budget_ms;
  const double b_loose = remote_groups.at({1, 4}).budget_ms;
  EXPECT_GT(b_tight, 0.0);
  EXPECT_GT(b_loose, b_tight);
}

TEST(RemoteDispatcher, KilledServerDegradesGracefullyAndRejoins) {
  constexpr std::size_t kServers = 4;
  const std::vector<ClassSpec> classes = {{.slo_ms = 100.0, .percentile = 99.0}};
  auto fleet = start_fleet(kServers, Policy::kTfEdf, 1);
  auto options = dispatcher_options(fleet, Policy::kTfEdf, classes);
  options.task_timeout_ms = 2000.0;
  net::RemoteDispatcher dispatcher(options);
  ASSERT_TRUE(dispatcher.wait_for_servers(kServers, 5000.0));

  const std::uint16_t victim_port = fleet[1]->port();

  // Pin a long task on the victim so the kill strikes a query in flight.
  std::vector<net::RemoteTaskSpec> doomed(1);
  doomed[0].server = 1;
  doomed[0].simulated_service_ms = 30000.0;  // would block for 30 s
  auto doomed_future = dispatcher.submit(0, std::move(doomed));

  std::vector<std::future<QueryResult>> before;
  for (int q = 0; q < 20; ++q) {
    std::vector<net::RemoteTaskSpec> tasks(2);
    for (auto& t : tasks) t.simulated_service_ms = 0.2;
    before.push_back(dispatcher.submit(0, std::move(tasks)));
  }

  // Kill daemon 1 mid-run. Note: TaskServer::stop drains queued work, so
  // stop the in-flight 30 s task by replacing the object entirely is not an
  // option — instead the dispatcher must fail it on disconnect, which is
  // exactly what this asserts (the future resolves in ms, not in 30 s).
  std::thread killer([&fleet] { fleet[1]->stop(); });
  const auto t0 = std::chrono::steady_clock::now();
  const QueryResult doomed_result = doomed_future.get();
  EXPECT_EQ(doomed_result.tasks_failed, 1u);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 10s);

  // Remaining servers absorb placement: new queries succeed with no hang.
  std::vector<std::future<QueryResult>> after;
  for (int q = 0; q < 20; ++q) {
    std::vector<net::RemoteTaskSpec> tasks(3);
    for (auto& t : tasks) t.simulated_service_ms = 0.2;
    after.push_back(dispatcher.submit(0, std::move(tasks)));
  }
  for (auto& f : before) f.get();
  for (auto& f : after) EXPECT_EQ(f.get().tasks_failed, 0u);
  EXPECT_EQ(dispatcher.alive_servers(), kServers - 1);

  killer.join();

  // The daemon returns on the same port; the dispatcher reconnects and
  // resumes placing work on it.
  net::TaskServerOptions revive;
  revive.port = victim_port;
  revive.num_classes = 1;
  fleet[1] = std::make_unique<net::TaskServer>(revive);
  ASSERT_TRUE(dispatcher.wait_for_servers(kServers, 10000.0));
  std::vector<net::RemoteTaskSpec> pinned(1);
  pinned[0].server = 1;
  pinned[0].simulated_service_ms = 0.2;
  EXPECT_EQ(dispatcher.submit(0, std::move(pinned)).get().tasks_failed, 0u);
  EXPECT_GE(fleet[1]->tasks_executed(), 1u);
}

}  // namespace
}  // namespace tailguard
