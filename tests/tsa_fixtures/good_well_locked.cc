// Control fixture: fully annotated locking in the repo's house style. Must
// compile WARNING-FREE under -Werror=thread-safety — if this breaks, the
// harness is rejecting correct code, not catching bugs.
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void bump() TG_EXCLUDES(mu_) {
    tailguard::MutexLock lock(mu_);
    bump_locked();
    cv_.notify_one();
  }

  void wait_for_nonzero() TG_EXCLUDES(mu_) {
    tailguard::MutexLock lock(mu_);
    while (value_ == 0) cv_.wait(mu_);
  }

  int read() const TG_EXCLUDES(mu_) {
    tailguard::MutexLock lock(mu_);
    return value_;
  }

 private:
  void bump_locked() TG_REQUIRES(mu_) { ++value_; }

  mutable tailguard::Mutex mu_;
  tailguard::CondVar cv_;
  int value_ TG_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
