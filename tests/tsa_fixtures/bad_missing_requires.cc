// Must NOT compile under -Werror=thread-safety: a TG_REQUIRES(mu_) helper
// called without the lock held.
// tsa-expect: requires holding mutex
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void bump() { bump_locked(); }  // caller never takes mu_

 private:
  void bump_locked() TG_REQUIRES(mu_) { ++value_; }

  mutable tailguard::Mutex mu_;
  int value_ TG_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
