# Negative-compile harness for the thread-safety annotations
# (src/common/thread_annotations.h): proves the annotations actually bite.
#
# Every bad_*.cc here is a locking bug Clang TSA must REJECT — the fixture
# fails the test if it compiles, or if the diagnostic does not contain the
# fixture's `// tsa-expect: <substring>` line(s). good_*.cc must compile
# warning-free, guarding against over-eager annotations that reject correct
# code. Run via ctest (tsa_negative_compile); under a compiler without
# -Wthread-safety (GCC) it prints [SKIPPED], which ctest maps to a skip.
#
# Inputs: -DCOMPILER=<c++ compiler> -DINCLUDE_DIR=<repo src/>
#         -DFIXTURE_DIR=<this dir> -DTSA_SUPPORTED=<ON/OFF>
cmake_minimum_required(VERSION 3.16)

if(NOT TSA_SUPPORTED)
  message(STATUS "[SKIPPED] ${COMPILER} has no -Wthread-safety; "
                 "negative-compile fixtures need Clang")
  return()
endif()

set(flags -std=c++20 -fsyntax-only -I${INCLUDE_DIR}
          -Wthread-safety -Werror=thread-safety)
set(failures 0)

file(GLOB bad_fixtures "${FIXTURE_DIR}/bad_*.cc")
file(GLOB good_fixtures "${FIXTURE_DIR}/good_*.cc")
list(SORT bad_fixtures)
list(SORT good_fixtures)
if(NOT bad_fixtures OR NOT good_fixtures)
  message(FATAL_ERROR "no fixtures found in ${FIXTURE_DIR}")
endif()

foreach(fixture IN LISTS bad_fixtures)
  get_filename_component(name "${fixture}" NAME)
  file(STRINGS "${fixture}" expect_lines REGEX "tsa-expect:")
  if(NOT expect_lines)
    message(SEND_ERROR "FAIL ${name}: no // tsa-expect: line")
    math(EXPR failures "${failures} + 1")
    continue()
  endif()
  execute_process(
    COMMAND ${COMPILER} ${flags} "${fixture}"
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rv EQUAL 0)
    message(SEND_ERROR "FAIL ${name}: compiled clean — the locking bug it "
                       "encodes was not diagnosed")
    math(EXPR failures "${failures} + 1")
    continue()
  endif()
  set(ok TRUE)
  foreach(line IN LISTS expect_lines)
    string(REGEX REPLACE ".*tsa-expect:[ ]*" "" pattern "${line}")
    string(FIND "${err}" "${pattern}" at)
    if(at EQUAL -1)
      message(SEND_ERROR "FAIL ${name}: rejected, but the diagnostic lacks "
                         "\"${pattern}\":\n${err}")
      math(EXPR failures "${failures} + 1")
      set(ok FALSE)
    endif()
  endforeach()
  if(ok)
    message(STATUS "PASS ${name} (rejected as expected)")
  endif()
endforeach()

foreach(fixture IN LISTS good_fixtures)
  get_filename_component(name "${fixture}" NAME)
  execute_process(
    COMMAND ${COMPILER} ${flags} "${fixture}"
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(SEND_ERROR "FAIL ${name}: correct locking rejected:\n${err}")
    math(EXPR failures "${failures} + 1")
  else()
    message(STATUS "PASS ${name} (accepted as expected)")
  endif()
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} fixture(s) failed")
endif()
