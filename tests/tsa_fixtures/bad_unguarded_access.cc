// Must NOT compile under -Werror=thread-safety: both accesses touch a
// TG_GUARDED_BY member with no lock held.
// tsa-expect: requires holding mutex
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void bump() { ++value_; }          // write without mu_
  int read() const { return value_; }  // read without mu_

 private:
  mutable tailguard::Mutex mu_;
  int value_ TG_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
