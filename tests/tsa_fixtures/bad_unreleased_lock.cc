// Must NOT compile under -Werror=thread-safety: the naked lock() is never
// released, so the mutex leaks out of the function still held.
// tsa-expect: still held
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void bump() {
    mu_.lock();
    ++value_;
    // missing mu_.unlock()
  }

 private:
  mutable tailguard::Mutex mu_;
  int value_ TG_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
