// Must NOT compile under -Werror=thread-safety: the second MutexLock
// acquires a mutex this thread already holds (self-deadlock on std::mutex).
// tsa-expect: already held
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  void bump() {
    tailguard::MutexLock outer(mu_);
    tailguard::MutexLock inner(mu_);  // deadlock
    ++value_;
  }

 private:
  mutable tailguard::Mutex mu_;
  int value_ TG_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
