// Hot-path contracts of the simulator event loop:
//
//  * No steady-state mallocs: this binary overrides global operator new with
//    a counting wrapper and installs it as the common/alloc_probe.h hook, so
//    SimResult::event_loop_allocs reports real allocation counts. The loop's
//    structures are slab-pooled and pre-reserved, so the count must not
//    scale with the query count (amortized vector doublings only).
//  * Batched same-timestamp completion draining is pure restructuring: for
//    randomized seeds and loads the results are bit-identical across the
//    three event-queue backings (dense / heap / wheel), which pop the same
//    event sequence one way or another, and across repeated runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/alloc_probe.h"
#include "dist/standard.h"
#include "sim/experiment.h"
#include "sim/simulator.h"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0)
    throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace tailguard {
namespace {

std::uint64_t news_count() {
  return g_news.load(std::memory_order_relaxed);
}

struct ProbeInstaller {
  ProbeInstaller() { set_alloc_count_fn(&news_count); }
} g_installer;

SimConfig hot_config(std::size_t num_queries, std::uint64_t seed) {
  SimConfig cfg;
  cfg.num_servers = 20;
  cfg.policy = Policy::kTfEdf;
  cfg.classes = {{.slo_ms = 10.0, .percentile = 99.0}};
  cfg.fanout = std::make_shared<CategoricalFanout>(
      std::vector<std::uint32_t>{1, 4, 16},
      std::vector<double>{0.6, 0.3, 0.1});
  cfg.service_time = std::make_shared<Exponential>(1.0);
  cfg.num_queries = num_queries;
  cfg.seed = seed;
  return cfg;
}

/// Bit-exact fingerprint of everything a result reports; any scheduling
/// difference between two runs lands in at least the latency fields.
std::uint64_t fingerprint(const SimResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  const auto mix_d = [&](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix(r.queries_offered);
  mix(r.queries_admitted);
  mix(r.tasks_admitted);
  mix_d(r.task_deadline_miss_ratio);
  mix_d(r.measured_utilization);
  mix_d(r.end_time);
  for (const auto& g : r.groups) {
    mix(g.cls);
    mix(g.fanout);
    mix(g.queries);
    mix_d(g.tail_latency_ms);
    mix_d(g.mean_latency_ms);
  }
  for (double u : r.server_utilization) mix_d(u);
  return h;
}

TEST(HotPathAlloc, ProbeCountsThisBinarysAllocations) {
  const std::uint64_t before = alloc_count();
  auto* sink = new std::vector<int>(16);
  delete sink;
  EXPECT_GT(alloc_count(), before);
}

TEST(HotPathAlloc, EventLoopAllocsDoNotScaleWithQueries) {
  SimConfig small = hot_config(10000, 3);
  set_load(small, 0.7);
  SimConfig big = hot_config(40000, 3);
  set_load(big, 0.7);
  const SimResult rs = run_simulation(small);
  const SimResult rb = run_simulation(big);
  // The loop processes ~3 events per query; per-event allocation would put
  // these counts in the tens of thousands and make the big run ~4x the
  // small one. Pre-reserved slabs leave only warmup-sized noise: amortized
  // doublings of under-estimated vectors, O(log n) of them.
  EXPECT_LT(rb.event_loop_allocs, 256u) << "event loop allocates per event";
  EXPECT_LT(rb.event_loop_allocs, rs.event_loop_allocs + 128u)
      << "event-loop allocations scale with the query count";
}

TEST(HotPathAlloc, NoHookMeansZeroReported) {
  set_alloc_count_fn(nullptr);
  SimConfig cfg = hot_config(2000, 5);
  set_load(cfg, 0.5);
  const SimResult r = run_simulation(cfg);
  EXPECT_EQ(r.event_loop_allocs, 0u);
  set_alloc_count_fn(&news_count);
}

TEST(BatchedCompletionParity, BitIdenticalAcrossBackendsSeedsAndLoads) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 13ULL}) {
    for (const double load : {0.3, 0.7, 0.95}) {
      SimConfig cfg = hot_config(8000, seed);
      set_load(cfg, load);
      std::vector<std::uint64_t> prints;
      for (const char* backend : {"dense", "heap", "wheel"}) {
        ::setenv("TAILGUARD_EVENT_QUEUE", backend, 1);
        prints.push_back(fingerprint(run_simulation(cfg)));
      }
      ::unsetenv("TAILGUARD_EVENT_QUEUE");
      // Re-run with the default backing: repeatability of the batch drain.
      prints.push_back(fingerprint(run_simulation(cfg)));
      for (std::size_t i = 1; i < prints.size(); ++i)
        EXPECT_EQ(prints[i], prints[0])
            << "seed " << seed << " load " << load << " variant " << i;
    }
  }
}

TEST(BatchedCompletionParity, NetworkModelRunsAgreeAcrossTreeBackends) {
  // With dispatch/result delays every timestamp carries kTaskEnqueue /
  // kResultArrival payload events too — the batch drain must group those
  // identically under both tree backings (dense is ineligible here).
  for (const std::uint64_t seed : {2ULL, 11ULL}) {
    SimConfig cfg = hot_config(4000, seed);
    cfg.dispatch_delay_ms = std::make_shared<Deterministic>(0.05);
    cfg.result_delay_ms = std::make_shared<Deterministic>(0.05);
    set_load(cfg, 0.6);
    std::vector<std::uint64_t> prints;
    for (const char* backend : {"heap", "wheel"}) {
      ::setenv("TAILGUARD_EVENT_QUEUE", backend, 1);
      prints.push_back(fingerprint(run_simulation(cfg)));
    }
    ::unsetenv("TAILGUARD_EVENT_QUEUE");
    EXPECT_EQ(prints[1], prints[0]) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tailguard
