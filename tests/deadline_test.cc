// Tests for the deadline estimator: Eq. 6, class handling, heterogeneous
// grouping, caching and online updating.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.h"
#include "core/deadline.h"
#include "dist/standard.h"
#include "workloads/tailbench.h"

namespace tailguard {
namespace {

std::shared_ptr<CdfModel> exp_model(double mean) {
  return std::make_shared<DistributionCdfModel>(
      std::make_shared<Exponential>(mean));
}

TEST(DeadlineEstimator, Eq6DeadlineIsArrivalPlusBudget) {
  auto est = DeadlineEstimator::homogeneous(exp_model(1.0), 10);
  const ClassId cls = est.add_class({.slo_ms = 50.0, .percentile = 99.0});
  const std::vector<ServerId> servers = {0, 3, 7};
  const TimeMs xu = est.unloaded_query_quantile(cls, servers);
  EXPECT_NEAR(est.budget(cls, servers), 50.0 - xu, 1e-12);
  EXPECT_NEAR(est.deadline(123.0, cls, servers), 123.0 + 50.0 - xu, 1e-12);
}

TEST(DeadlineEstimator, PaperMasstreeBudgets) {
  // §IV.C: for Masstree with SLOs 1.0/1.5 ms and x99u(100)=0.473 ms, the
  // class budgets are 0.527 and 1.027 ms.
  auto model = std::make_shared<DistributionCdfModel>(
      make_service_time_model(TailbenchApp::kMasstree));
  auto est = DeadlineEstimator::homogeneous(model, 100);
  const ClassId hi = est.add_class({.slo_ms = 1.0, .percentile = 99.0});
  const ClassId lo = est.add_class({.slo_ms = 1.5, .percentile = 99.0});
  std::vector<ServerId> all(100);
  for (ServerId s = 0; s < 100; ++s) all[s] = s;
  EXPECT_NEAR(est.budget(hi, all), 0.527, 0.02);
  EXPECT_NEAR(est.budget(lo, all), 1.027, 0.02);
}

TEST(DeadlineEstimator, LargerFanoutTighterDeadline) {
  auto est = DeadlineEstimator::homogeneous(exp_model(1.0), 100);
  const ClassId cls = est.add_class({.slo_ms = 20.0, .percentile = 99.0});
  std::vector<ServerId> one = {0};
  std::vector<ServerId> many(50);
  for (ServerId s = 0; s < 50; ++s) many[s] = s;
  EXPECT_GT(est.deadline(0.0, cls, one), est.deadline(0.0, cls, many));
}

TEST(DeadlineEstimator, TighterSloTighterDeadline) {
  auto est = DeadlineEstimator::homogeneous(exp_model(1.0), 10);
  const ClassId tight = est.add_class({.slo_ms = 10.0, .percentile = 99.0});
  const ClassId loose = est.add_class({.slo_ms = 30.0, .percentile = 99.0});
  std::vector<ServerId> servers = {1, 2};
  EXPECT_LT(est.deadline(0.0, tight, servers),
            est.deadline(0.0, loose, servers));
}

TEST(DeadlineEstimator, CrossClassFanoutInversion) {
  // The paper's key observation (§I): a *lower* class query with a large
  // fanout can demand more resources — i.e. get an earlier deadline — than
  // a higher class query with fanout 1. PRIQ cannot express this ordering;
  // TF-EDFQ does.
  auto est = DeadlineEstimator::homogeneous(exp_model(1.0), 100);
  const ClassId high = est.add_class({.slo_ms = 8.0, .percentile = 99.0});
  const ClassId low = est.add_class({.slo_ms = 9.0, .percentile = 99.0});
  std::vector<ServerId> one = {0};
  std::vector<ServerId> hundred(100);
  for (ServerId s = 0; s < 100; ++s) hundred[s] = s;
  // Same arrival time: the low-class high-fanout query must be served first.
  EXPECT_LT(est.deadline(0.0, low, hundred), est.deadline(0.0, high, one));
}

TEST(DeadlineEstimator, SloDeadlineIgnoresFanout) {
  auto est = DeadlineEstimator::homogeneous(exp_model(1.0), 10);
  const ClassId cls = est.add_class({.slo_ms = 5.0, .percentile = 99.0});
  EXPECT_DOUBLE_EQ(est.slo_deadline(2.0, cls), 7.0);
}

TEST(DeadlineEstimator, NegativeBudgetAllowed) {
  // SLO tighter than the unloaded tail: the budget goes negative and the
  // deadline falls before the arrival — the task is effectively "already
  // late" and sorts to the front.
  auto est = DeadlineEstimator::homogeneous(exp_model(10.0), 100);
  const ClassId cls = est.add_class({.slo_ms = 1.0, .percentile = 99.0});
  std::vector<ServerId> many(100);
  for (ServerId s = 0; s < 100; ++s) many[s] = s;
  EXPECT_LT(est.deadline(0.0, cls, many), 0.0);
}

TEST(DeadlineEstimator, HomogeneousFanoutPathMatchesServerPath) {
  auto est = DeadlineEstimator::homogeneous(exp_model(1.5), 50);
  const ClassId cls = est.add_class({.slo_ms = 40.0, .percentile = 99.0});
  std::vector<ServerId> servers = {4, 9, 14, 19, 24};
  EXPECT_NEAR(est.unloaded_query_quantile(cls, servers),
              est.unloaded_query_quantile(cls, 5), 1e-9);
}

TEST(DeadlineEstimator, HeterogeneousGroupsByModelIdentity) {
  auto fast = exp_model(0.1);
  auto slow = exp_model(10.0);
  // 4 servers: two fast, two slow.
  DeadlineEstimator est({fast, fast, slow, slow});
  EXPECT_EQ(est.num_groups(), 2u);
  EXPECT_EQ(est.num_servers(), 4u);
  const ClassId cls = est.add_class({.slo_ms = 100.0, .percentile = 99.0});
  // A query on the two fast servers has a much smaller x_p^u than one on
  // the two slow servers.
  std::vector<ServerId> fast_set = {0, 1};
  std::vector<ServerId> slow_set = {2, 3};
  EXPECT_LT(est.unloaded_query_quantile(cls, fast_set),
            0.1 * est.unloaded_query_quantile(cls, slow_set));
  // Mixed set sits in between but is dominated by the slow servers.
  std::vector<ServerId> mixed = {0, 2};
  EXPECT_GT(est.unloaded_query_quantile(cls, mixed),
            est.unloaded_query_quantile(cls, fast_set));
}

TEST(DeadlineEstimator, GroupCompositionNotOrderMatters) {
  auto fast = exp_model(0.5);
  auto slow = exp_model(5.0);
  DeadlineEstimator est({fast, slow, fast, slow});
  const ClassId cls = est.add_class({.slo_ms = 100.0, .percentile = 99.0});
  std::vector<ServerId> a = {0, 1};  // fast, slow
  std::vector<ServerId> b = {3, 2};  // slow, fast
  EXPECT_NEAR(est.unloaded_query_quantile(cls, a),
              est.unloaded_query_quantile(cls, b), 1e-12);
}

TEST(DeadlineEstimator, FanoutOnlyLookupRequiresHomogeneous) {
  DeadlineEstimator est({exp_model(1.0), exp_model(2.0)});
  est.add_class({.slo_ms = 10.0, .percentile = 99.0});
  EXPECT_THROW(est.unloaded_query_quantile(0, 2u), CheckFailure);
}

TEST(DeadlineEstimator, OnlineUpdateShiftsDeadlines) {
  // Streaming models: seed with a fast profile, then observe much slower
  // post-queuing times; x_p^u must grow, i.e. budgets must shrink.
  auto streaming = std::make_shared<StreamingCdfModel>();
  std::vector<double> fast_profile(5000);
  Rng rng(5);
  Exponential fast(1.0);
  for (auto& x : fast_profile) x = fast.sample(rng);
  streaming->seed(fast_profile);

  auto est = DeadlineEstimator::homogeneous(streaming, 4);
  const ClassId cls = est.add_class({.slo_ms = 100.0, .percentile = 99.0});
  std::vector<ServerId> servers = {0, 1, 2, 3};
  const TimeMs before = est.unloaded_query_quantile(cls, servers);

  Exponential slow(20.0);
  for (int i = 0; i < 20000; ++i)
    est.observe_post_queuing(i % 4, slow.sample(rng));

  const TimeMs after = est.unloaded_query_quantile(cls, servers);
  EXPECT_GT(after, 2.0 * before);
}

TEST(DeadlineEstimator, Validation) {
  EXPECT_THROW(DeadlineEstimator({}), CheckFailure);
  EXPECT_THROW(DeadlineEstimator({nullptr}), CheckFailure);
  auto est = DeadlineEstimator::homogeneous(exp_model(1.0), 2);
  EXPECT_THROW(est.add_class({.slo_ms = -1.0, .percentile = 99.0}),
               CheckFailure);
  EXPECT_THROW(est.add_class({.slo_ms = 1.0, .percentile = 100.0}),
               CheckFailure);
  EXPECT_THROW(est.class_spec(0), CheckFailure);  // no classes yet
  const ClassId cls = est.add_class({.slo_ms = 1.0, .percentile = 99.0});
  std::vector<ServerId> bad = {5};  // out of range
  EXPECT_THROW(est.unloaded_query_quantile(cls, bad), CheckFailure);
  std::vector<ServerId> none;
  EXPECT_THROW(est.unloaded_query_quantile(cls, none), CheckFailure);
  EXPECT_THROW(est.observe_post_queuing(9, 1.0), CheckFailure);
}

}  // namespace
}  // namespace tailguard
