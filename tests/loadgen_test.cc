// Tests for the open-loop runtime load generator.
#include <gtest/gtest.h>

#include "common/check.h"
#include "runtime/loadgen.h"

namespace tailguard {
namespace {

// TSan's instrumentation slows the submit path 5-15x, which is enough to
// push an open-loop run on a loaded runner under the plain-build throughput
// floor without any bug. Relax (don't drop) the assertion there, so the
// whole binary stays in the TSan CI job.
#if defined(__SANITIZE_THREAD__)
constexpr double kMinAchievedQps = 20.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr double kMinAchievedQps = 20.0;
#else
constexpr double kMinAchievedQps = 300.0;
#endif
#else
constexpr double kMinAchievedQps = 300.0;
#endif

ServiceOptions tiny_service() {
  ServiceOptions opt;
  opt.num_workers = 4;
  opt.policy = Policy::kTfEdf;
  opt.classes = {{.slo_ms = 50.0, .percentile = 99.0},
                 {.slo_ms = 100.0, .percentile = 99.0}};
  return opt;
}

QueryFactory simple_factory(double service_ms) {
  return [service_ms](Rng& rng) {
    LoadGenQuery q;
    q.cls = rng.bernoulli(0.5) ? 0 : 1;
    q.tasks.resize(2);
    for (auto& t : q.tasks) t.simulated_service_ms = service_ms;
    return q;
  };
}

TEST(LoadGen, AllQueriesAccountedFor) {
  TailGuardService svc(tiny_service());
  LoadGenOptions opt;
  opt.rate_qps = 2000.0;
  opt.num_queries = 200;
  opt.seed = 3;
  const auto report = run_load(svc, opt, simple_factory(0.05));
  EXPECT_EQ(report.submitted, 200u);
  EXPECT_EQ(report.rejected, 0u);
  std::size_t measured = 0;
  for (const auto& c : report.per_class) measured += c.queries;
  // 10% warmup excluded.
  EXPECT_EQ(measured, 180u);
  EXPECT_GT(report.elapsed_s, 0.0);
  EXPECT_GT(report.achieved_qps, 0.0);
}

TEST(LoadGen, RateIsApproximatelyHonoured) {
  TailGuardService svc(tiny_service());
  LoadGenOptions opt;
  opt.rate_qps = 1000.0;
  opt.num_queries = 400;
  opt.seed = 5;
  const auto report = run_load(svc, opt, simple_factory(0.01));
  // Open loop at 1000 q/s for 400 queries ~ 0.4 s; sleep overshoot makes
  // the achieved rate a bit lower, never higher.
  EXPECT_LT(report.achieved_qps, 1100.0);
  EXPECT_GT(report.achieved_qps, kMinAchievedQps);
}

TEST(LoadGen, PerClassStatsAreOrdered) {
  TailGuardService svc(tiny_service());
  LoadGenOptions opt;
  opt.rate_qps = 2000.0;
  opt.num_queries = 300;
  opt.seed = 7;
  const auto report = run_load(svc, opt, simple_factory(0.1));
  for (const auto& c : report.per_class) {
    EXPECT_LE(c.p50_ms, c.p95_ms);
    EXPECT_LE(c.p95_ms, c.p99_ms);
    EXPECT_GT(c.mean_ms, 0.0);
  }
  EXPECT_NE(report.find_class(0), nullptr);
  EXPECT_NE(report.find_class(1), nullptr);
  EXPECT_EQ(report.find_class(9), nullptr);
}

TEST(LoadGen, ParetoArrivalsWork) {
  TailGuardService svc(tiny_service());
  LoadGenOptions opt;
  opt.rate_qps = 2000.0;
  opt.num_queries = 150;
  opt.pareto_arrivals = true;
  opt.seed = 9;
  const auto report = run_load(svc, opt, simple_factory(0.05));
  EXPECT_EQ(report.submitted, 150u);
}

TEST(LoadGen, AdmissionRejectionsCounted) {
  ServiceOptions sopt = tiny_service();
  sopt.num_workers = 1;
  sopt.classes = {{.slo_ms = 1.0, .percentile = 99.0}};
  sopt.admission = AdmissionOptions{.window_tasks = 30,
                                    .window_ms = 100.0,
                                    .miss_ratio_threshold = 0.05};
  TailGuardService svc(sopt);
  LoadGenOptions opt;
  opt.rate_qps = 2000.0;  // one worker with 1 ms tasks saturates at 1000/s
  opt.num_queries = 600;
  opt.seed = 11;
  const auto report = run_load(svc, opt, [](Rng&) {
    LoadGenQuery q;
    q.cls = 0;
    q.tasks.resize(1);
    q.tasks[0].simulated_service_ms = 1.0;
    return q;
  });
  EXPECT_GT(report.rejected, 0u);
  EXPECT_LT(report.rejected, report.submitted);
}

TEST(LoadGen, Validation) {
  TailGuardService svc(tiny_service());
  LoadGenOptions opt;
  opt.rate_qps = 0.0;
  EXPECT_THROW(run_load(svc, opt, simple_factory(0.1)), CheckFailure);
  opt.rate_qps = 100.0;
  opt.num_queries = 0;
  EXPECT_THROW(run_load(svc, opt, simple_factory(0.1)), CheckFailure);
  opt.num_queries = 1;
  EXPECT_THROW(run_load(svc, opt, nullptr), CheckFailure);
}

}  // namespace
}  // namespace tailguard
