// atomic-order bad fixture: atomic accesses leaning on the implicit seq_cst
// default. Linted under a virtual src/ path; every access must fire.
#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<std::uint64_t> counter{0};
std::atomic<bool> flag{false};

std::uint64_t tick() {
  counter.fetch_add(1);           // must fire: no memory_order argument
  flag.store(true);               // must fire
  if (flag.load()) {              // must fire
    return counter.exchange(0);   // must fire
  }
  return counter.load();          // must fire
}

std::uint64_t tick_via_pointer(std::atomic<std::uint64_t>* c) {
  return c->fetch_sub(1);         // must fire: arrow calls count too
}

}  // namespace fixture
