// guarded-member bad fixture: a class in a concurrent directory owning a
// Mutex with bare mutable members — no TG_GUARDED_BY, no allow, no
// why-comment. Each of samples_, count_ and mean_ must fire.
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"

namespace fixture {

class LatencyLedger {
 public:
  void record(double sample_ms);

 private:
  mutable tailguard::Mutex mu_;
  std::vector<double> samples_;  // must fire: which lock protects this?
  std::uint64_t count_ = 0;      // must fire
  double mean_ = 0.0;            // must fire
};

}  // namespace fixture
