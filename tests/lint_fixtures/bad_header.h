// Fixture: include-guard header (no #pragma once first) that also leaks a
// namespace into every includer.
#ifndef TESTS_LINT_FIXTURES_BAD_HEADER_H_
#define TESTS_LINT_FIXTURES_BAD_HEADER_H_

#include <string>

using namespace std;  // header-hygiene

inline string shout(const string& s) { return s + "!"; }

#endif  // TESTS_LINT_FIXTURES_BAD_HEADER_H_
