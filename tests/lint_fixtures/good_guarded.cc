// guarded-member good fixture: the shapes the rule must accept — annotated
// members, synchronization primitives, an explicit allow with its why, and a
// mutex-free class whose members need no annotation at all.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace fixture {

class LatencyLedger {
 public:
  void record(double sample_ms);

 private:
  mutable tailguard::Mutex mu_;
  tailguard::CondVar cv_;
  std::vector<double> samples_ TG_GUARDED_BY(mu_);
  std::uint64_t count_ TG_GUARDED_BY(mu_) = 0;
  std::atomic<std::uint64_t> dropped_{0};
  // Immutable after construction. tg-lint: allow(guarded-member)
  std::uint64_t capacity_ = 0;
  std::thread flusher_;
};

// No mutex owned: nothing here needs annotating (single-threaded type).
struct Snapshot {
  std::vector<double> samples;
  std::uint64_t count = 0;
};

}  // namespace fixture
