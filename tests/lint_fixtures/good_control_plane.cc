// The same backend built the sanctioned way: it drives a QueryControlPlane
// and never names the underlying components, so it lints clean even under
// the backend directories the boundary rule watches.
#include "core/control_plane.h"

namespace tailguard {

struct ThinBackend {
  QueryControlPlane control;
};

double plan_next(ThinBackend& b, TimeMs now_ms) {
  if (b.control.admission_enabled() && !b.control.should_admit(now_ms)) {
    b.control.count_rejected();
    return -1.0;
  }
  b.control.count_admitted();
  return b.control.budget(0, {});
}

}  // namespace tailguard
