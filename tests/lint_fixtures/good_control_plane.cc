// The same backend built the sanctioned way: it drives the sharding facade
// (ShardedControlPlane, a single shard here) and never names the underlying
// components or a shard's private replica, so it lints clean even under the
// backend directories the boundary rule watches.
#include "shard/sharded_control_plane.h"

namespace tailguard {

struct ThinBackend {
  ShardedControlPlane control{ShardingOptions{}, ControlPlaneOptions{}, {}};
};

double plan_next(ThinBackend& b, TimeMs now_ms) {
  if (b.control.admission_enabled() && !b.control.should_admit(0, now_ms)) {
    b.control.count_rejected(0);
    return -1.0;
  }
  b.control.count_admitted(0);
  return b.control.budget(0, 0, {});
}

}  // namespace tailguard
