// atomic-order good fixture: every atomic access states its order, including
// one whose argument rides on a continuation line; non-atomic lookalikes
// (std::exchange, a method named unload) must stay silent.
#include <atomic>
#include <cstdint>
#include <utility>

namespace fixture {

std::atomic<std::uint64_t> counter{0};
std::atomic<bool> flag{false};

struct Cache {
  std::uint64_t cargo = 0;
  // A member named like an atomic op is not an atomic access.
  std::uint64_t unload() { return std::exchange(cargo, 0); }
};

std::uint64_t tick(Cache& cache) {
  // Counter is a pure tally: no data is published through it.
  counter.fetch_add(1, std::memory_order_relaxed);
  // Release pairs with the acquire load below.
  flag.store(true, std::memory_order_release);
  if (flag.load(std::memory_order_acquire)) {
    // Order argument on the continuation line: the scan spans lines.
    return counter.exchange(0,
                            std::memory_order_acq_rel);
  }
  return cache.unload();
}

}  // namespace fixture
