// Bad fixture for hot-path-map: node-based std maps in what lints as a
// sim/core hot-path file. Four findings: the two includes and the two
// member declarations.
#include <map>
#include <unordered_map>

struct BadMaps {
  std::unordered_map<int, double> per_query;
  std::map<int, double> ordered_index;
};
