// Fixture: naked mutex manipulation an early return could leak.
#include <mutex>

std::mutex mu;

int manual(bool fail) {
  mu.lock();  // lock-discipline
  if (fail) {
    mu.unlock();  // lock-discipline
    return -1;
  }
  if (mu.try_lock()) {  // lock-discipline
    mu.unlock();        // lock-discipline
  }
  mu.unlock();  // lock-discipline
  return 0;
}
