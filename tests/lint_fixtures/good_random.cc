// Fixture: seeded tailguard::Rng use and benign identifiers that merely
// resemble banned tokens (operand(), brand_ms) must pass.
#include "common/rng.h"

double operand() { return 1.0; }

double draw(tailguard::Rng& rng) {
  double brand_ms = operand();  // "rand" substring, but not the rand() call
  return rng.uniform() + brand_ms;
}
