// Fixture: wall/monotonic clock reads in a deterministic layer (the virtual
// path this fixture is linted under is src/sim/, not an allowlisted one).
#include <chrono>
#include <ctime>

double now() {
  auto a = std::chrono::steady_clock::now();         // determinism-clock
  auto b = std::chrono::system_clock::now();         // determinism-clock
  auto c = std::chrono::high_resolution_clock::now();  // determinism-clock
  std::time_t seed = time(nullptr);                  // determinism-clock
  (void)a;
  (void)b;
  (void)c;
  return static_cast<double>(seed);
}
