// Fixture: pragma-once header; `using` declarations and aliases are fine,
// only `using namespace` is banned.
#pragma once

#include <string>

namespace fixture {

using std::string;
using Name = std::string;

inline string shout(const string& s) { return s + "!"; }

}  // namespace fixture
