// A backend hard-wiring a placement strategy. Linted under src/sim/,
// src/runtime/, src/net/, src/sas/ or src/shard/ — the sharding facade
// included — every placement token below must fire control-plane-boundary:
// placement is pluggable behind QueryControlPlane::place(), selected via
// PlacementPolicyOptions / TAILGUARD_PLACEMENT, and naming the raw picker
// or a concrete policy class pins one strategy into this backend. The same
// bytes are legal in core (which owns the policies), tests and tools.
#include "core/placement.h"
#include "core/placement/policy.h"

namespace tailguard {

struct HardwiredBackend {
  LeastLoadedPolicy fallback;
  PowerOfDPolicy sampler{2};
  SlackTailRiskPolicy ranker;
};

std::vector<ServerId> place_direct(std::vector<PlacementCandidate> cand,
                                   Rng& rng) {
  return pick_least_loaded(std::move(cand), 2, rng);
}

}  // namespace tailguard
