// Good fixture for hot-path-map: slab-backed containers are the sanctioned
// hot-path storage, identifiers merely containing "map" never match, and a
// genuinely cold std::map survives behind an explicit suppression.
#include "common/slab_map.h"

struct GoodMaps {
  tailguard::SlabMap<double> per_query;
  tailguard::SlabHashCache<double> quantile_memo;
  int heatmap = 0;  // "map" inside an identifier is not a std map
};

#include <map>  // tg-lint: allow(hot-path-map)

// tg-lint: allow(hot-path-map)
std::map<int, int> cold_bisection_memo;
