// Fixture: RAII guards, and lock-named things that are not member calls.
#include <mutex>

std::mutex mu;

void lock();  // free function named lock is fine

int guarded(bool fail) {
  std::lock_guard guard(mu);
  lock();
  if (fail) return -1;
  return 0;
}

int scoped(std::mutex& a, std::mutex& b) {
  std::scoped_lock both(a, b);
  std::unique_lock movable(mu, std::defer_lock);
  return movable.owns_lock() ? 1 : 0;
}
