// A backend owning the scheduling components directly. Linted under
// src/sim/, src/runtime/, src/net/ or src/sas/ every component mention
// below must fire control-plane-boundary; anywhere else the same bytes
// are legal (core owns the parts, tests may poke them).
#include "core/admission.h"
#include "core/deadline.h"
#include "core/query_tracker.h"

namespace tailguard {

struct HomegrownBackend {
  DeadlineEstimator estimator;
  QueryTracker tracker;
  AdmissionController admission{AdmissionOptions{}};
};

double plan_next(HomegrownBackend& b) {
  if (!b.admission.should_admit(0.0, 0.5)) return -1.0;
  return b.estimator.budget(0, {});
}

}  // namespace tailguard
