// A backend owning the scheduling components directly. Linted under
// src/sim/, src/runtime/, src/net/, src/sas/ or src/shard/ every component
// mention below must fire control-plane-boundary — including the naked
// QueryControlPlane replica, which only the sharding facade may own.
// Anywhere else the same bytes are legal (core owns the parts, tests may
// poke them).
#include "core/admission.h"
#include "core/control_plane.h"
#include "core/deadline.h"
#include "core/query_tracker.h"

namespace tailguard {

struct HomegrownBackend {
  DeadlineEstimator estimator;
  QueryTracker tracker;
  AdmissionController admission{AdmissionOptions{}};
  QueryControlPlane replica;
};

double plan_next(HomegrownBackend& b) {
  if (!b.admission.should_admit(0.0, 0.5)) return -1.0;
  return b.estimator.budget(0, {});
}

}  // namespace tailguard
