// Fixture: suffixed identifiers, std::chrono types, and lookalikes
// (plural containers, function names, qualified chrono names) must pass.
#include <chrono>
#include <vector>

using TimeMs = double;

struct Config {
  TimeMs timeout_ms = 5000.0;
  double budget_s = 0.0;
  std::chrono::milliseconds poll_period{200};
  std::vector<TimeMs> timeouts;  // container of timeouts, not one duration
};

// A function *named* budget computes one; the unit lives on its results.
TimeMs budget(const Config& cfg) {
  const auto as_chrono =
      std::chrono::duration<double, std::milli>(cfg.timeout_ms);
  return as_chrono.count() + cfg.budget_s * 1000.0;
}

struct Estimator {
  TimeMs budget_ms_ = 0.0;  // member convention: unit before trailing _
};
