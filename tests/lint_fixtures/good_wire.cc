// Fixture: the POSIX sockaddr cast is the socket API's own calling
// convention and stays legal in src/net/.
#include <netinet/in.h>
#include <sys/socket.h>

int bind_any(int fd) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  return ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
}
