// The same backend done right: placement goes through the facade's
// place() and the strategy arrives as data (PlacementPolicyOptions /
// TAILGUARD_PLACEMENT), so no concrete policy name appears and the file
// lints clean even under the backend directories the boundary rule watches.
#include "shard/sharded_control_plane.h"

namespace tailguard {

struct PolicyAgnosticBackend {
  ShardedControlPlane control{ShardingOptions{}, ControlPlaneOptions{}, {}};
};

std::vector<ServerId> place_via_facade(PolicyAgnosticBackend& b,
                                       std::vector<PlacementCandidate> cand,
                                       TimeMs now_ms) {
  return b.control.place(0, std::move(cand), 2, 0, now_ms);
}

}  // namespace tailguard
