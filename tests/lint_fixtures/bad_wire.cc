// Fixture: struct punning and raw integer copies; linted under a virtual
// src/net/ path, where only wire.cc's endian helpers may touch wire bytes.
#include <cstdint>
#include <cstring>

struct Header {
  std::uint16_t magic;
  std::uint32_t len;
};

void encode(char* out, const Header& h, std::uint32_t value) {
  *reinterpret_cast<Header*>(out) = h;            // wire-safety
  std::memcpy(out + sizeof(Header), &value, 4);   // wire-safety
}
