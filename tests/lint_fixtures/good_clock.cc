// Fixture: simulated-time code observes TimeMs values it is handed, never a
// clock; `time` as a plain identifier or member is fine.
using TimeMs = double;

struct Event {
  TimeMs time = 0.0;
};

TimeMs advance(Event e, TimeMs dt_ms) { return e.time + dt_ms; }
