// Fixture: every violation here is deliberately annotated, so the file must
// lint clean; the same-line form, the line-above form, multi-rule allows and
// allow(all) are all exercised.
#include <chrono>
#include <mutex>

std::mutex mu;

double wall_now() {
  // tg-lint: allow(determinism-clock)
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

void manual() {
  mu.lock();    // tg-lint: allow(lock-discipline)
  mu.unlock();  // tg-lint: allow(lock-discipline, time-units)
}

// tg-lint: allow(all)
double timeout = 5.0;
