// Fixture: every std:: randomness source tg_lint must reject.
#include <cstdlib>
#include <random>

int draw() {
  std::random_device rd;                 // determinism-random
  std::mt19937 gen(rd());                // determinism-random
  std::default_random_engine engine;     // determinism-random
  srand(42);                             // determinism-random
  return rand() + static_cast<int>(gen());  // determinism-random
}
