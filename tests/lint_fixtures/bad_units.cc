// Fixture: duration-valued identifiers with no unit suffix.
using TimeMs = double;

struct Config {
  TimeMs timeout = 5000.0;        // time-units
  double budget = 0.0;            // time-units
  double retry_backoff = 1.0;     // time-units
};

double measure(double elapsed, TimeMs queue_delay) {  // time-units (x2)
  Config cfg;
  double total_latency = elapsed + queue_delay;  // time-units (x3: reuses)
  return total_latency + cfg.timeout;            // time-units (x2: reuses)
}
