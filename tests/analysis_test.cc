// Tests for the analytical queueing module, including cross-validation
// against the discrete-event simulator.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/queueing.h"
#include "common/check.h"
#include "dist/standard.h"
#include "sim/experiment.h"
#include "workloads/tailbench.h"

namespace tailguard {
namespace {

TEST(SecondMoment, KnownValues) {
  // Uniform(0,1): E[X^2] = 1/3. Exponential(mean m): E[X^2] = 2m^2.
  EXPECT_NEAR(second_moment(Uniform(0.0, 1.0)), 1.0 / 3.0, 1e-4);
  EXPECT_NEAR(second_moment(Exponential(2.0)), 8.0, 0.05);
  EXPECT_NEAR(second_moment(Deterministic(3.0)), 9.0, 1e-9);
}

TEST(MM1, ExactForms) {
  EXPECT_DOUBLE_EQ(mm1_mean_sojourn(1.0, 0.5), 2.0);
  EXPECT_NEAR(mm1_sojourn_quantile(1.0, 0.5, 0.99), -std::log(0.01) * 2.0,
              1e-12);
  EXPECT_THROW(mm1_mean_sojourn(1.0, 1.0), CheckFailure);
}

TEST(MG1, PollaczekKhinchineExponentialReducesToMM1) {
  // For exponential service, P-K gives E[W] = rho * s / (1 - rho).
  Exponential service(1.0);
  for (double rho : {0.3, 0.6, 0.9}) {
    EXPECT_NEAR(mg1_mean_wait(service, rho), rho / (1.0 - rho),
                0.02 * rho / (1.0 - rho))
        << rho;
  }
}

TEST(MG1, DeterministicServiceHalvesTheWait) {
  // M/D/1 waits are half the M/M/1 waits at equal utilisation.
  Deterministic det(1.0);
  Exponential exp_s(1.0);
  const double rho = 0.7;
  EXPECT_NEAR(mg1_mean_wait(det, rho), 0.5 * mg1_mean_wait(exp_s, rho), 0.05);
}

TEST(MG1, WaitComplementaryBasics) {
  Exponential service(1.0);
  // At t=0 the complementary is P[W>0] = rho.
  EXPECT_NEAR(mg1_wait_complementary(service, 0.4, 0.0), 0.4, 1e-12);
  // Decreasing in t.
  EXPECT_GT(mg1_wait_complementary(service, 0.4, 1.0),
            mg1_wait_complementary(service, 0.4, 5.0));
  EXPECT_DOUBLE_EQ(mg1_wait_complementary(service, 0.0, 1.0), 0.0);
}

TEST(MG1, SojournCdfMonotoneAndNormalised) {
  Exponential service(1.0);
  double prev = -1.0;
  for (double t = 0.0; t <= 30.0; t += 0.5) {
    const double f = mg1_sojourn_cdf(service, 0.6, t);
    EXPECT_GE(f, prev - 1e-12);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_GT(mg1_sojourn_cdf(service, 0.6, 30.0), 0.99);
}

TEST(MG1, SojournMatchesMM1Exactly) {
  // For exponential service the exponential-wait "approximation" is exact,
  // so the sojourn quantile must match the M/M/1 closed form.
  Exponential service(1.0);
  const double rho = 0.5;
  const double q99_expected = mm1_sojourn_quantile(1.0, rho, 0.99);
  const double q99 = approximate_query_tail(service, 1, rho, 0.99);
  EXPECT_NEAR(q99, q99_expected, 0.03 * q99_expected);
}

TEST(QueryTail, ZeroLoadIsUnloadedQuantile) {
  const auto service = make_service_time_model(TailbenchApp::kMasstree);
  const double x = approximate_query_tail(*service, 100, 0.0, 0.99);
  EXPECT_NEAR(x, 0.473, 0.01);
}

TEST(QueryTail, IncreasesWithLoadAndFanout) {
  Exponential service(1.0);
  EXPECT_LT(approximate_query_tail(service, 10, 0.2, 0.99),
            approximate_query_tail(service, 10, 0.6, 0.99));
  EXPECT_LT(approximate_query_tail(service, 1, 0.4, 0.99),
            approximate_query_tail(service, 100, 0.4, 0.99));
}

TEST(QueryTail, CrossValidatesAgainstSimulator) {
  // FIFO, single class, fixed fanout: the approximation should land within
  // ~30% of the simulated p99 at moderate load (it is conservative: the
  // exponential conditional-wait overweights the tail at low loads).
  const auto service = make_service_time_model(TailbenchApp::kMasstree);
  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.policy = Policy::kFifo;
  cfg.classes = {{.slo_ms = 1000.0, .percentile = 99.0}};
  cfg.fanout = std::make_shared<FixedFanout>(10);
  cfg.service_time = service;
  cfg.num_queries = 60000;
  cfg.seed = 19;
  for (double rho : {0.3, 0.5}) {
    set_load(cfg, rho);
    const SimResult r = run_simulation(cfg);
    const double simulated = r.groups[0].tail_latency_ms;
    const double analytic = approximate_query_tail(*service, 10, rho, 0.99);
    EXPECT_NEAR(analytic, simulated, 0.30 * simulated) << "rho=" << rho;
    EXPECT_GT(analytic, 0.9 * simulated);  // never wildly optimistic
  }
}

TEST(AnalyticMaxLoad, BracketsAndMonotonicity) {
  const auto service = make_service_time_model(TailbenchApp::kMasstree);
  // SLO below the unloaded quantile: infeasible even idle.
  EXPECT_DOUBLE_EQ(analytic_max_load(*service, 100, 0.4, 0.99), 0.0);
  // Looser SLOs admit more load.
  const double tight = analytic_max_load(*service, 100, 0.8, 0.99);
  const double loose = analytic_max_load(*service, 100, 1.4, 0.99);
  EXPECT_GT(tight, 0.0);
  EXPECT_GT(loose, tight);
  EXPECT_LT(loose, 1.0);
}

TEST(AnalyticMaxLoad, TracksSimulatedFifoMaxLoad) {
  const auto service = make_service_time_model(TailbenchApp::kMasstree);
  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.policy = Policy::kFifo;
  cfg.classes = {{.slo_ms = 1.2, .percentile = 99.0}};
  cfg.fanout = std::make_shared<FixedFanout>(10);
  cfg.service_time = service;
  cfg.num_queries = 40000;
  cfg.seed = 23;
  MaxLoadOptions opt;
  opt.tolerance = 0.02;
  const double simulated = find_max_load(cfg, opt);
  const double analytic = analytic_max_load(*service, 10, 1.2, 0.99);
  EXPECT_NEAR(analytic, simulated, 0.20 * simulated);
}

}  // namespace
}  // namespace tailguard
