// Determinism guard for the parallel experiment engine: the contract is
// that the same seeds produce bit-identical metrics and max loads at any
// thread count, and that the speculative max-load search returns exactly
// what the serial bisection returns.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "dist/standard.h"
#include "sim/parallel.h"
#include "workloads/fanout.h"

namespace tailguard {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.num_servers = 20;
  cfg.policy = Policy::kTfEdf;
  cfg.classes = {{.slo_ms = 2.0, .percentile = 99.0}};
  cfg.fanout = std::make_shared<CategoricalFanout>(
      std::vector<std::uint32_t>{1, 4, 16}, std::vector<double>{16, 4, 1});
  cfg.service_time = std::make_shared<Exponential>(0.2);
  cfg.num_queries = 4000;
  cfg.seed = 11;
  return cfg;
}

// Bit-exact comparison: identical seeds must give identical metrics.
void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].cls, b.groups[i].cls);
    EXPECT_EQ(a.groups[i].fanout, b.groups[i].fanout);
    EXPECT_EQ(a.groups[i].queries, b.groups[i].queries);
    EXPECT_EQ(a.groups[i].tail_latency_ms, b.groups[i].tail_latency_ms);
    EXPECT_EQ(a.groups[i].mean_latency_ms, b.groups[i].mean_latency_ms);
  }
  EXPECT_EQ(a.queries_admitted, b.queries_admitted);
  EXPECT_EQ(a.queries_rejected, b.queries_rejected);
  EXPECT_EQ(a.task_deadline_miss_ratio, b.task_deadline_miss_ratio);
  EXPECT_EQ(a.measured_utilization, b.measured_utilization);
  EXPECT_EQ(a.end_time, b.end_time);
}

// The serial bisection exactly as experiment.cc implemented it before the
// engine became speculative; the speculative search must reproduce it.
double serial_find_max_load(SimConfig config, const MaxLoadOptions& opt) {
  const auto feasible = [&](double load) {
    set_load(config, load, opt);
    return run_simulation(config).all_slos_met(opt.slo_epsilon);
  };
  if (!feasible(opt.lo)) return opt.lo;
  if (feasible(opt.hi)) return opt.hi;
  double lo = opt.lo, hi = opt.hi;
  while (hi - lo > opt.tolerance) {
    const double mid = 0.5 * (lo + hi);
    (feasible(mid) ? lo : hi) = mid;
  }
  return lo;
}

TEST(ThreadPool, ParseThreadCount) {
  EXPECT_EQ(ThreadPool::parse_thread_count(nullptr), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count(""), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("junk"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("-3"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("0"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("8"), 8u);
  EXPECT_EQ(ThreadPool::parse_thread_count(" 4 "), 4u);
  EXPECT_EQ(ThreadPool::parse_thread_count("99999999"), 1024u);  // clamped
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, NestedSubmitAndWaitDoesNotDeadlock) {
  // More outer tasks than workers, each fanning out inner tasks onto the
  // same pool: only the help-while-waiting design completes this.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    std::vector<std::future<int>> inner;
    for (int i = 0; i < 4; ++i)
      inner.push_back(pool.submit([] { return 1; }));
    for (auto& f : inner) total.fetch_add(pool.wait(f));
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ParallelEngine, RunSimulationsMatchesSerialAtAnyThreadCount) {
  std::vector<SimConfig> configs;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    configs.push_back(small_config());
    configs.back().seed = seed;
    set_load(configs.back(), 0.4);
  }

  std::vector<SimResult> serial;
  for (const auto& cfg : configs) serial.push_back(run_simulation(cfg));

  ThreadPool one(1), four(4);
  const auto r1 = run_simulations(configs, &one);
  const auto r4 = run_simulations(configs, &four);
  ASSERT_EQ(r1.size(), configs.size());
  ASSERT_EQ(r4.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_identical(serial[i], r1[i]);
    expect_identical(serial[i], r4[i]);
  }
}

TEST(ParallelEngine, SweepLoadsIdenticalAcrossThreadCounts) {
  const SimConfig cfg = small_config();
  const std::vector<double> loads = {0.2, 0.35, 0.5, 0.65};
  ThreadPool one(1), four(4);
  const auto s1 = sweep_loads_parallel(cfg, loads, {}, &one);
  const auto s4 = sweep_loads_parallel(cfg, loads, {}, &four);
  ASSERT_EQ(s1.size(), loads.size());
  ASSERT_EQ(s4.size(), loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    EXPECT_EQ(s1[i].load, loads[i]);
    EXPECT_EQ(s4[i].load, loads[i]);
    expect_identical(s1[i].result, s4[i].result);
  }
}

TEST(ParallelEngine, SpeculativeSearchMatchesSerialBisection) {
  const SimConfig cfg = small_config();
  MaxLoadOptions opt;
  opt.tolerance = 0.02;

  const double serial = serial_find_max_load(cfg, opt);
  ThreadPool one(1), four(4);
  // levels=1 *is* the serial bisection; deeper speculation must replay to
  // the same bracket.
  EXPECT_EQ(find_max_load_speculative(cfg, opt, 1, &one), serial);
  EXPECT_EQ(find_max_load_speculative(cfg, opt, 2, &four), serial);
  EXPECT_EQ(find_max_load_speculative(cfg, opt, 3, &four), serial);
}

TEST(ParallelEngine, FindMaxLoadsBatchMatchesIndividualSearches) {
  std::vector<MaxLoadJob> jobs;
  for (Policy policy : {Policy::kFifo, Policy::kTfEdf}) {
    MaxLoadJob job;
    job.config = small_config();
    job.config.policy = policy;
    job.opt.tolerance = 0.02;
    jobs.push_back(std::move(job));
  }
  ThreadPool four(4);
  const auto batch = find_max_loads(jobs, &four);
  ASSERT_EQ(batch.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    EXPECT_EQ(batch[i], serial_find_max_load(jobs[i].config, jobs[i].opt));
}

TEST(ParallelEngine, CustomFeasibilityPredicate) {
  // A predicate that judges utilization instead of SLOs still bisects
  // deterministically.
  const SimConfig cfg = small_config();
  MaxLoadOptions opt;
  opt.tolerance = 0.05;
  const FeasiblePredicate under_half = [](const SimResult& r) {
    return r.measured_utilization < 0.5;
  };
  ThreadPool one(1), four(4);
  const double a = find_max_load_speculative(cfg, opt, 1, &one, under_half);
  const double b = find_max_load_speculative(cfg, opt, 0, &four, under_half);
  EXPECT_EQ(a, b);
  EXPECT_GT(a, opt.lo);
  EXPECT_LT(a, opt.hi);
}

}  // namespace
}  // namespace tailguard
