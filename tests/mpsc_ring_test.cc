// Stress tests for the lock-free MPSC submission ring and its integration
// into Worker. These are the tests the TSan CI job exists for: N producers
// racing a single consumer across ring wraparound, and submit() racing
// shutdown(). They must NOT be added to scripts/tsan-skip.txt — there are no
// wall-clock assertions here, only counting invariants, so they are valid
// under arbitrary sanitizer slowdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/check.h"
#include "runtime/mpsc_ring.h"
#include "runtime/worker.h"

namespace tailguard {
namespace {

TEST(MpscRing, SingleThreadFifoAcrossWraparound) {
  MpscRing<int> ring(4);  // 1000 items through 4 slots = 250 laps
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int base = 0; base < 1000; base += 4) {
    for (int i = 0; i < 4; ++i) ring.push(base + i);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, base + i);
    }
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(MpscRing, ManyProducersPreserveProducerOrder) {
  // Tiny capacity forces producers through the ring-full spin path and the
  // ticket counter through many wraparounds. Items encode (producer, seq);
  // the consumer checks each producer's stream arrives strictly in order
  // and that nothing is lost or duplicated.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 5000;
  MpscRing<std::uint64_t> ring(16);

  std::vector<std::thread> producers;
  std::atomic<bool> go{false};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, &go, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i)
        ring.push((static_cast<std::uint64_t>(p) << 32) |
                  static_cast<std::uint32_t>(i));
    });
  }
  go.store(true, std::memory_order_release);

  std::vector<std::uint32_t> next_expected(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t item = 0;
    if (!ring.try_pop(item)) {
      std::this_thread::yield();
      continue;
    }
    const auto p = static_cast<int>(item >> 32);
    const auto seq = static_cast<std::uint32_t>(item);
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next_expected[p]) << "producer " << p << " reordered";
    ++next_expected[p];
    ++received;
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_expected[p], kPerProducer);
  std::uint64_t leftover = 0;
  EXPECT_FALSE(ring.try_pop(leftover));
}

TEST(MpscRing, PopReleasesPayload) {
  // Popped slots must not keep closures (and their captures) alive until the
  // slot is overwritten a lap later.
  auto held = std::make_shared<int>(7);
  std::weak_ptr<int> observer = held;
  MpscRing<std::shared_ptr<int>> ring(8);
  ring.push(std::move(held));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  out.reset();
  EXPECT_TRUE(observer.expired()) << "ring slot still owns the payload";
}

TEST(MpscRingWorker, ProducersRacingShutdownNeverLoseAcceptedWork) {
  // The Worker-level contract under the lock-free path: every submit() that
  // returns (did not throw) executes exactly once, even when shutdown()
  // lands in the middle of a multi-producer burst; every submit() after
  // shutdown is observed throws. Varying the shutdown delay sweeps the race
  // window across the accept-check/publish/doorbell sequence.
  constexpr int kProducers = 6;
  for (int round = 0; round < 8; ++round) {
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> completions{0};
    std::atomic<std::uint64_t> accepted{0};
    {
      Worker w(
          0, Policy::kTfEdf, 1, [] { return 0.0; },
          [&](ServerId, const RuntimeTask&, TimeMs, TimeMs) { ++completions; });
      std::atomic<bool> go{false};
      std::vector<std::thread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
          while (!go.load(std::memory_order_acquire))
            std::this_thread::yield();
          for (int i = 0; i < 2000; ++i) {
            RuntimeTask task;
            task.id = static_cast<TaskId>(p * 1'000'000 + i);
            task.work = [&executed] {
              executed.fetch_add(1, std::memory_order_relaxed);
            };
            try {
              w.submit(std::move(task), 0.0, static_cast<TimeMs>(i % 7));
            } catch (const CheckFailure&) {
              return;  // shutdown won; every later submit would throw too
            }
            accepted.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      go.store(true, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      w.shutdown();
      for (auto& t : producers) t.join();
      EXPECT_THROW(
          {
            RuntimeTask late;
            w.submit(std::move(late), 0.0, 0.0);
          },
          CheckFailure);
    }  // ~Worker drains everything accepted, then joins
    EXPECT_EQ(executed.load(), accepted.load()) << "round " << round;
    EXPECT_EQ(completions.load(), accepted.load()) << "round " << round;
  }
}

TEST(MpscRingWorker, BurstBeyondRingCapacityAllExecuted) {
  // More in-flight submissions than kRingCapacity (1024): producers must
  // ride the ring-full spin path while the consumer is also busy executing,
  // and still nothing is lost. The first task blocks the worker so the
  // backlog genuinely exceeds the ring before draining resumes.
  std::atomic<std::uint64_t> executed{0};
  std::atomic<bool> release_gate{false};
  {
    Worker w(
        0, Policy::kFifo, 1, [] { return 0.0; },
        [](ServerId, const RuntimeTask&, TimeMs, TimeMs) {});
    RuntimeTask gate;
    gate.id = 0;
    gate.work = [&release_gate] {
      while (!release_gate.load(std::memory_order_acquire))
        std::this_thread::yield();
    };
    w.submit(std::move(gate), 0.0, 0.0);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 800;  // 3200 > kRingCapacity
    std::vector<std::thread> producers;
    for (int p = 0; p < kThreads; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerThread; ++i) {
          RuntimeTask task;
          task.id = static_cast<TaskId>(1 + p * kPerThread + i);
          task.work = [&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
          };
          w.submit(std::move(task), 0.0, 0.0);
        }
      });
    }
    release_gate.store(true, std::memory_order_release);
    for (auto& t : producers) t.join();
  }  // ~Worker drains
  EXPECT_EQ(executed.load(), 4 * 800);
}

}  // namespace
}  // namespace tailguard
