// Tests for the discrete-event simulator: conservation, work-conservation
// consequences, policy degeneracies, determinism, admission behaviour and
// load accounting.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.h"
#include "dist/standard.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "workloads/tailbench.h"

namespace tailguard {
namespace {

SimConfig base_config() {
  SimConfig cfg;
  cfg.num_servers = 20;
  cfg.policy = Policy::kTfEdf;
  cfg.classes = {{.slo_ms = 10.0, .percentile = 99.0}};
  cfg.fanout = std::make_shared<CategoricalFanout>(
      std::vector<std::uint32_t>{1, 4, 16},
      std::vector<double>{0.6, 0.3, 0.1});
  cfg.service_time = std::make_shared<Exponential>(1.0);
  cfg.num_queries = 20000;
  cfg.seed = 42;
  return cfg;
}

TEST(Simulator, AllQueriesComplete) {
  SimConfig cfg = base_config();
  set_load(cfg, 0.5);
  const SimResult r = run_simulation(cfg);
  EXPECT_EQ(r.queries_offered, cfg.num_queries);
  EXPECT_EQ(r.queries_admitted, cfg.num_queries);
  EXPECT_EQ(r.queries_rejected, 0u);
  std::uint64_t recorded = 0;
  for (const auto& g : r.groups) recorded += g.queries;
  // Post-warmup queries are recorded; warmup is 10%.
  EXPECT_NEAR(static_cast<double>(recorded),
              0.9 * static_cast<double>(cfg.num_queries),
              0.02 * static_cast<double>(cfg.num_queries));
}

TEST(Simulator, GroupsMatchFanoutSupport) {
  SimConfig cfg = base_config();
  set_load(cfg, 0.4);
  const SimResult r = run_simulation(cfg);
  ASSERT_EQ(r.groups.size(), 3u);
  EXPECT_EQ(r.groups[0].fanout, 1u);
  EXPECT_EQ(r.groups[1].fanout, 4u);
  EXPECT_EQ(r.groups[2].fanout, 16u);
  // 0.6 / 0.3 / 0.1 mix.
  const double total = static_cast<double>(r.groups[0].queries +
                                           r.groups[1].queries +
                                           r.groups[2].queries);
  EXPECT_NEAR(r.groups[0].queries / total, 0.6, 0.02);
  EXPECT_NEAR(r.groups[1].queries / total, 0.3, 0.02);
}

TEST(Simulator, LatencyAtLeastMaxUnloadedTask) {
  // Query latency >= its slowest task's service time; in aggregate the mean
  // query latency for fanout k must exceed the mean of the max of k service
  // draws. Sanity-check against the fanout-1 group: mean latency >= mean
  // service time.
  SimConfig cfg = base_config();
  set_load(cfg, 0.3);
  const SimResult r = run_simulation(cfg);
  const auto* g1 = r.find_group(0, 1);
  ASSERT_NE(g1, nullptr);
  EXPECT_GE(g1->mean_latency_ms, 0.95 * cfg.service_time->mean());
}

TEST(Simulator, HigherLoadHigherTail) {
  SimConfig cfg = base_config();
  set_load(cfg, 0.2);
  const SimResult light = run_simulation(cfg);
  set_load(cfg, 0.85);
  const SimResult heavy = run_simulation(cfg);
  EXPECT_GT(heavy.groups[0].tail_latency_ms, light.groups[0].tail_latency_ms);
  EXPECT_GT(heavy.measured_utilization, light.measured_utilization);
}

TEST(Simulator, MeasuredUtilizationTracksOfferedLoad) {
  SimConfig cfg = base_config();
  for (double load : {0.3, 0.6}) {
    set_load(cfg, load);
    const SimResult r = run_simulation(cfg);
    EXPECT_NEAR(r.measured_utilization, load, 0.06) << "load=" << load;
  }
}

TEST(Simulator, DeterministicForSameSeed) {
  SimConfig cfg = base_config();
  set_load(cfg, 0.5);
  const SimResult a = run_simulation(cfg);
  const SimResult b = run_simulation(cfg);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.groups[i].tail_latency_ms, b.groups[i].tail_latency_ms);
    EXPECT_EQ(a.groups[i].queries, b.groups[i].queries);
  }
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
}

TEST(Simulator, SeedChangesResults) {
  SimConfig cfg = base_config();
  set_load(cfg, 0.5);
  const SimResult a = run_simulation(cfg);
  cfg.seed = 43;
  const SimResult b = run_simulation(cfg);
  EXPECT_NE(a.end_time, b.end_time);
}

TEST(Simulator, SingleClassPolicyDegeneracy) {
  // §III.A: with one class, PRIQ and T-EDFQ behave exactly like FIFO. With
  // common random numbers (pre-sampled service times) the simulated
  // schedules are identical, so results match bit-for-bit.
  SimConfig cfg = base_config();
  set_load(cfg, 0.7);
  cfg.policy = Policy::kFifo;
  const SimResult fifo = run_simulation(cfg);
  cfg.policy = Policy::kPriq;
  const SimResult priq = run_simulation(cfg);
  cfg.policy = Policy::kTEdf;
  const SimResult tedf = run_simulation(cfg);
  ASSERT_EQ(fifo.groups.size(), priq.groups.size());
  for (std::size_t i = 0; i < fifo.groups.size(); ++i) {
    EXPECT_DOUBLE_EQ(fifo.groups[i].tail_latency_ms, priq.groups[i].tail_latency_ms);
    EXPECT_DOUBLE_EQ(fifo.groups[i].tail_latency_ms, tedf.groups[i].tail_latency_ms);
  }
}

TEST(Simulator, FixedFanoutTfEdfEqualsTEdf) {
  // §IV.C: when every query has the same fanout, TF-EDFQ's deadline differs
  // from T-EDFQ's by a per-class constant... with a single percentile the
  // constant is the same for both classes, so the ordering — and hence the
  // whole schedule — is identical.
  SimConfig cfg = base_config();
  cfg.classes = {{.slo_ms = 10.0, .percentile = 99.0},
                 {.slo_ms = 15.0, .percentile = 99.0}};
  cfg.class_probabilities = {0.5, 0.5};
  cfg.fanout = std::make_shared<FixedFanout>(16);
  set_load(cfg, 0.7);
  cfg.policy = Policy::kTEdf;
  const SimResult tedf = run_simulation(cfg);
  cfg.policy = Policy::kTfEdf;
  const SimResult tfedf = run_simulation(cfg);
  ASSERT_EQ(tedf.groups.size(), tfedf.groups.size());
  for (std::size_t i = 0; i < tedf.groups.size(); ++i)
    EXPECT_DOUBLE_EQ(tedf.groups[i].tail_latency_ms,
                     tfedf.groups[i].tail_latency_ms);
}

TEST(Simulator, AdmissionControlCapsMissRatio) {
  SimConfig cfg = base_config();
  set_load(cfg, 0.9);  // heavy overload
  const SimResult uncontrolled = run_simulation(cfg);

  cfg.admission = AdmissionOptions{.window_tasks = 2000,
                                   .window_ms = 50.0,
                                   .miss_ratio_threshold = 0.02};
  const SimResult r = run_simulation(cfg);
  EXPECT_GT(r.queries_rejected, 0u);
  EXPECT_EQ(r.queries_offered, cfg.num_queries);
  EXPECT_LT(r.task_admit_fraction(), 1.0);
  // The accepted workload should be roughly sustainable: far fewer misses
  // than the uncontrolled run at the same offered load.
  EXPECT_LT(r.task_deadline_miss_ratio,
            0.5 * uncontrolled.task_deadline_miss_ratio);
}

TEST(Simulator, NoAdmissionMeansNoRejections) {
  SimConfig cfg = base_config();
  set_load(cfg, 0.9);
  const SimResult r = run_simulation(cfg);
  EXPECT_EQ(r.queries_rejected, 0u);
  EXPECT_DOUBLE_EQ(r.task_admit_fraction(), 1.0);
}

TEST(Simulator, ParetoArrivalsDegradeTail) {
  SimConfig cfg = base_config();
  set_load(cfg, 0.6);
  const SimResult poisson = run_simulation(cfg);
  cfg.arrival_kind = ArrivalKind::kPareto;
  const SimResult pareto = run_simulation(cfg);
  // Burstier arrivals at equal mean load push the p99 up (Fig. 5b shows
  // max loads dropping by a few percent).
  EXPECT_GT(pareto.groups[0].tail_latency_ms,
            0.9 * poisson.groups[0].tail_latency_ms);
}

TEST(Simulator, ClassFanoutCoupling) {
  SimConfig cfg = base_config();
  cfg.classes = {{.slo_ms = 10.0, .percentile = 99.0},
                 {.slo_ms = 20.0, .percentile = 99.0}};
  cfg.class_probabilities = {0.5, 0.5};
  cfg.fanout = nullptr;
  cfg.class_fanout = [](Rng&, ClassId cls) -> std::uint32_t {
    return cls == 0 ? 2 : 8;
  };
  cfg.arrival_rate = 1.0;
  const SimResult r = run_simulation(cfg);
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(r.groups[0].cls, 0u);
  EXPECT_EQ(r.groups[0].fanout, 2u);
  EXPECT_EQ(r.groups[1].cls, 1u);
  EXPECT_EQ(r.groups[1].fanout, 8u);
}

TEST(Simulator, CustomPlacementIsHonoured) {
  SimConfig cfg = base_config();
  cfg.fanout = std::make_shared<FixedFanout>(1);
  // Everything lands on server 0: it should saturate while others idle.
  cfg.placement = [](Rng&, ClassId, std::uint32_t kf,
                     std::vector<ServerId>& out) {
    out.assign(kf, 0);
  };
  cfg.arrival_rate = 0.9;  // per ms; server 0 alone has capacity 1.0/ms
  const SimResult r = run_simulation(cfg);
  // Mean utilization across 20 servers ≈ 0.9 / 20.
  EXPECT_NEAR(r.measured_utilization, 0.045, 0.01);
  EXPECT_GT(r.groups[0].tail_latency_ms, 1.0);  // queuing on the hot server
}

TEST(Simulator, EstimatedCdfsTrackExactEstimation) {
  // §III.B.2: deadline estimation from profiled/streamed CDFs should behave
  // like estimation from the true CDFs. Same seed => same arrivals, so the
  // per-group tails must agree closely across estimation modes.
  SimConfig cfg = base_config();
  set_load(cfg, 0.4);
  cfg.estimation = EstimationMode::kExact;
  const SimResult exact = run_simulation(cfg);
  for (auto mode :
       {EstimationMode::kOfflineEmpirical, EstimationMode::kOnlineStreaming}) {
    cfg.estimation = mode;
    const SimResult est = run_simulation(cfg);
    ASSERT_EQ(est.groups.size(), exact.groups.size());
    for (std::size_t i = 0; i < est.groups.size(); ++i) {
      EXPECT_NEAR(est.groups[i].tail_latency_ms, exact.groups[i].tail_latency_ms,
                  0.05 * exact.groups[i].tail_latency_ms)
          << "mode=" << static_cast<int>(mode) << " group " << i;
    }
  }
}

TEST(Simulator, OnlineStreamingEstimationMeetsSloAtModerateLoad) {
  SimConfig cfg = base_config();
  cfg.estimation = EstimationMode::kOnlineStreaming;
  set_load(cfg, 0.2);
  const SimResult r = run_simulation(cfg);
  EXPECT_EQ(r.queries_admitted, cfg.num_queries);
  EXPECT_TRUE(r.all_slos_met(0.05));
}

TEST(Simulator, TraceReplayMatchesGenerativeStatistics) {
  // A replayed trace produced by the same models at the same rate should
  // give statistically similar results to generative mode.
  SimConfig cfg = base_config();
  set_load(cfg, 0.5);
  const SimResult generative = run_simulation(cfg);

  TraceSpec spec;
  spec.num_queries = cfg.num_queries;
  Rng trace_rng(99);
  PoissonProcess arrivals(cfg.arrival_rate);
  cfg.trace = generate_trace(spec, arrivals, *cfg.fanout, trace_rng);
  const SimResult replayed = run_simulation(cfg);

  EXPECT_EQ(replayed.queries_offered, cfg.num_queries);
  ASSERT_EQ(replayed.groups.size(), generative.groups.size());
  for (std::size_t i = 0; i < replayed.groups.size(); ++i) {
    EXPECT_NEAR(replayed.groups[i].tail_latency_ms,
                generative.groups[i].tail_latency_ms,
                0.25 * generative.groups[i].tail_latency_ms)
        << "group " << i;
  }
}

TEST(Simulator, TraceReplayIsExactlyReproducible) {
  SimConfig cfg = base_config();
  TraceSpec spec;
  spec.num_queries = 5000;
  Rng trace_rng(7);
  PoissonProcess arrivals(2.0);
  cfg.trace = generate_trace(spec, arrivals, *cfg.fanout, trace_rng);
  const SimResult a = run_simulation(cfg);
  const SimResult b = run_simulation(cfg);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.groups[0].queries, b.groups[0].queries);
}

TEST(Simulator, RequestModeRunsSequentialQueries) {
  SimConfig cfg = base_config();
  cfg.fanout = std::make_shared<FixedFanout>(4);
  cfg.request = SimConfig::RequestSpec{
      .queries_per_request = 3,
      .query_budgets = {3.0, 3.0, 3.0},
      .query_fanouts = {},
      .request_slo = {.slo_ms = 30.0, .percentile = 99.0}};
  cfg.arrival_rate = 0.5;
  cfg.num_queries = 5000;  // 5000 requests -> 15000 queries
  const SimResult r = run_simulation(cfg);
  EXPECT_GT(r.requests_recorded, 4000u);
  // A request of 3 sequential queries is at least as slow as one query.
  const auto* g = r.find_group(0, 4);
  ASSERT_NE(g, nullptr);
  EXPECT_GT(r.request_mean_latency_ms, 2.5 * g->mean_latency_ms);
  EXPECT_GT(r.request_tail_latency_ms, g->tail_latency_ms);
}

TEST(Simulator, RequestModeBudgetsActAsDeadlines) {
  // With generous budgets the request SLO is met at light load.
  SimConfig cfg = base_config();
  cfg.fanout = std::make_shared<FixedFanout>(2);
  cfg.request = SimConfig::RequestSpec{
      .queries_per_request = 2,
      .query_budgets = {10.0, 10.0},
      .query_fanouts = {},
      .request_slo = {.slo_ms = 40.0, .percentile = 99.0}};
  cfg.arrival_rate = 0.2;
  cfg.num_queries = 5000;
  const SimResult r = run_simulation(cfg);
  EXPECT_TRUE(r.request_slo_met);
  EXPECT_LT(r.task_deadline_miss_ratio, 0.05);
}

TEST(Simulator, RequestModeValidation) {
  SimConfig cfg = base_config();
  cfg.request = SimConfig::RequestSpec{.queries_per_request = 2,
                                       .query_budgets = {1.0},  // wrong size
                                       .query_fanouts = {},
                                       .request_slo = {.slo_ms = 10.0}};
  cfg.arrival_rate = 1.0;
  EXPECT_THROW(run_simulation(cfg), CheckFailure);
}

TEST(Simulator, TaskBudgetJitterChangesScheduleButConservesWork) {
  SimConfig cfg = base_config();
  set_load(cfg, 0.6);
  const SimResult equal = run_simulation(cfg);
  cfg.task_budget_jitter = 0.5;
  const SimResult jittered = run_simulation(cfg);
  // Same offered queries, different schedule.
  EXPECT_EQ(jittered.queries_offered, equal.queries_offered);
  EXPECT_NE(jittered.groups[0].tail_latency_ms, equal.groups[0].tail_latency_ms);
  EXPECT_NEAR(jittered.measured_utilization, equal.measured_utilization,
              0.05);
}

TEST(Simulator, TaskBudgetJitterDoesNotRaiseMaxLoad) {
  // Footnote 4: assigning every task of a query the same budget minimises
  // resource demand; skewed per-task budgets must not *increase* the max
  // load at which the SLO is met (coarse search; the precise comparison is
  // bench/ablation_budget_split).
  SimConfig cfg = base_config();
  cfg.num_queries = 8000;
  MaxLoadOptions opt;
  opt.tolerance = 0.04;
  const double equal_load = find_max_load(cfg, opt);
  cfg.task_budget_jitter = 1.0;
  const double jitter_load = find_max_load(cfg, opt);
  EXPECT_LE(jitter_load, equal_load + 2.0 * opt.tolerance);
}

TEST(Simulator, WorkConservationSingleServer) {
  // One server, saturating arrivals: the end time must equal (first
  // arrival) + (total service demand) — the server never idles while work
  // is queued, for every policy.
  for (Policy policy : {Policy::kFifo, Policy::kPriq, Policy::kTEdf,
                        Policy::kTfEdf}) {
    SimConfig cfg;
    cfg.num_servers = 1;
    cfg.policy = policy;
    cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0},
                   {.slo_ms = 2.0, .percentile = 99.0}};
    cfg.class_probabilities = {0.5, 0.5};
    cfg.fanout = std::make_shared<FixedFanout>(1);
    cfg.service_time = std::make_shared<Uniform>(0.5, 1.5);  // mean 1
    cfg.num_queries = 2000;
    cfg.seed = 77;
    cfg.arrival_rate = 5.0;  // 5x overload: the queue never drains
    const SimResult r = run_simulation(cfg);
    // All arrivals land within ~2000/5 = 400 ms; total work ~ 2000 ms.
    // Busy fraction from the first arrival on must be ~1.
    EXPECT_GT(r.measured_utilization, 0.98) << to_string(policy);
    EXPECT_NEAR(r.end_time, 2000.0, 60.0) << to_string(policy);
  }
}

TEST(Simulator, NetworkDelaysAddToLatency) {
  SimConfig cfg = base_config();
  cfg.fanout = std::make_shared<FixedFanout>(1);
  set_load(cfg, 0.05);
  const SimResult base = run_simulation(cfg);
  cfg.dispatch_delay_ms = std::make_shared<Deterministic>(3.0);
  cfg.result_delay_ms = std::make_shared<Deterministic>(2.0);
  const SimResult delayed = run_simulation(cfg);
  // Every query gains exactly dispatch + result = 5 ms at light load.
  EXPECT_NEAR(delayed.groups[0].mean_latency_ms,
              base.groups[0].mean_latency_ms + 5.0, 0.15);
  EXPECT_EQ(delayed.queries_admitted, cfg.num_queries);
}

TEST(Simulator, DispatchDelayConsumesBudget) {
  // With dispatch delay larger than the pre-dequeuing budget, every task is
  // dequeued past its deadline even on an idle cluster.
  SimConfig cfg = base_config();
  cfg.fanout = std::make_shared<FixedFanout>(2);
  cfg.classes = {{.slo_ms = 10.0, .percentile = 99.0}};
  set_load(cfg, 0.05);
  const SimResult no_delay_ms = run_simulation(cfg);
  EXPECT_LT(no_delay_ms.task_deadline_miss_ratio, 0.05);
  cfg.dispatch_delay_ms = std::make_shared<Deterministic>(20.0);  // > SLO
  const SimResult delayed = run_simulation(cfg);
  EXPECT_GT(delayed.task_deadline_miss_ratio, 0.95);
}

TEST(Simulator, ResultDelayDefersAdmissionSignal) {
  // Admission control still functions when misses are piggybacked on
  // delayed results (§III.C).
  SimConfig cfg = base_config();
  cfg.result_delay_ms = std::make_shared<Uniform>(0.5, 1.5);
  cfg.admission = AdmissionOptions{.window_tasks = 2000,
                                   .window_ms = 50.0,
                                   .miss_ratio_threshold = 0.02};
  set_load(cfg, 0.9);
  const SimResult r = run_simulation(cfg);
  EXPECT_GT(r.queries_rejected, 0u);
  EXPECT_EQ(r.queries_offered, cfg.num_queries);
}

TEST(Simulator, NetworkDelaysConserveQueries) {
  SimConfig cfg = base_config();
  cfg.dispatch_delay_ms = std::make_shared<Exponential>(1.0);
  cfg.result_delay_ms = std::make_shared<Exponential>(2.0);
  set_load(cfg, 0.5);
  const SimResult r = run_simulation(cfg);
  EXPECT_EQ(r.queries_admitted, cfg.num_queries);
  std::uint64_t recorded = 0;
  for (const auto& g : r.groups) recorded += g.queries;
  EXPECT_GT(recorded, 0.85 * cfg.num_queries);
}

TEST(Simulator, OnlineEstimatorSeesResultDelay) {
  // The post-queuing time observed by the handler includes the result
  // network delay (paper §III.B.2: current time minus dequeue time), so the
  // online model's quantiles exceed the bare service quantiles.
  SimConfig cfg = base_config();
  cfg.fanout = std::make_shared<FixedFanout>(1);
  cfg.classes = {{.slo_ms = 60.0, .percentile = 99.0}};
  cfg.estimation = EstimationMode::kOnlineStreaming;
  cfg.offline_seed_samples = 100;  // let online observations dominate
  cfg.result_delay_ms = std::make_shared<Deterministic>(7.0);
  set_load(cfg, 0.3);
  const SimResult r = run_simulation(cfg);
  // Latency now ~ service + wait + 7; at this load the p99 must clearly
  // exceed service-only p99 (~4.6 for exp(1)) plus the delay.
  EXPECT_GT(r.groups[0].tail_latency_ms, 7.0 + 4.0);
}

TEST(Simulator, TraceWithUnknownClassThrows) {
  SimConfig cfg = base_config();  // one class
  cfg.trace = {QueryRecord{.arrival_ms = 1.0, .class_id = 3, .fanout = 1}};
  EXPECT_THROW(run_simulation(cfg), CheckFailure);
}

TEST(Simulator, ValidatesConfig) {
  SimConfig cfg = base_config();
  cfg.arrival_rate = 0.0;
  EXPECT_THROW(run_simulation(cfg), CheckFailure);
  cfg = base_config();
  cfg.classes.clear();
  cfg.arrival_rate = 1.0;
  EXPECT_THROW(run_simulation(cfg), CheckFailure);
  cfg = base_config();
  cfg.fanout = nullptr;
  cfg.arrival_rate = 1.0;
  EXPECT_THROW(run_simulation(cfg), CheckFailure);
  cfg = base_config();
  cfg.class_probabilities = {0.5};  // size mismatch with 1 class? matches...
  cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0},
                 {.slo_ms = 2.0, .percentile = 99.0}};
  cfg.arrival_rate = 1.0;
  EXPECT_THROW(run_simulation(cfg), CheckFailure);
}

// ------------------------------------------------------------ experiment

TEST(Experiment, RateForLoadInvertsWork) {
  SimConfig cfg = base_config();
  // E[k] = 0.6*1 + 0.3*4 + 0.1*16 = 3.4; mean service 1 ms; 20 servers.
  EXPECT_NEAR(expected_work_per_query(cfg), 3.4, 1e-12);
  EXPECT_NEAR(rate_for_load(cfg, 0.5), 0.5 * 20 / 3.4, 1e-12);
}

TEST(Experiment, SetLoadHonoursOverrides) {
  SimConfig cfg = base_config();
  MaxLoadOptions opt;
  opt.work_per_query = 2.0;
  opt.capacity_servers = 10.0;
  set_load(cfg, 0.5, opt);
  EXPECT_NEAR(cfg.arrival_rate, 0.5 * 10.0 / 2.0, 1e-12);
}

TEST(Experiment, FindMaxLoadBrackets) {
  SimConfig cfg = base_config();
  cfg.num_queries = 8000;
  cfg.classes = {{.slo_ms = 8.0, .percentile = 99.0}};
  MaxLoadOptions opt;
  opt.lo = 0.05;
  opt.hi = 0.95;
  opt.tolerance = 0.05;
  const double max_load = find_max_load(cfg, opt);
  EXPECT_GT(max_load, 0.05);
  EXPECT_LT(max_load, 0.95);
  // Feasible at the returned load...
  set_load(cfg, max_load, opt);
  EXPECT_TRUE(run_simulation(cfg).all_slos_met(0.02));
}

TEST(Experiment, SweepLoadsReturnsOnePointPerLoad) {
  SimConfig cfg = base_config();
  cfg.num_queries = 4000;
  const auto points = sweep_loads(cfg, {0.2, 0.4, 0.6});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].load, 0.2);
  EXPECT_LT(points[0].result.groups[0].tail_latency_ms,
            points[2].result.groups[0].tail_latency_ms);
}

TEST(Experiment, ScaledQueriesEnvelope) {
  // No env var set in tests: identity (subject to the 1000 floor).
  EXPECT_EQ(scaled_queries(50000), 50000u);
  EXPECT_EQ(scaled_queries(10), 1000u);
}

}  // namespace
}  // namespace tailguard
