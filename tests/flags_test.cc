// Tests for the command-line flag parser used by tools/.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "common/flags.h"

namespace tailguard {
namespace {

struct ParseResult {
  bool ok = false;
  std::string out;
  std::string err;
};

ParseResult parse(FlagParser& parser, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  std::ostringstream out, err;
  ParseResult r;
  r.ok = parser.parse(static_cast<int>(args.size()), args.data(), out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(FlagParser, ParsesEveryType) {
  std::string s = "default";
  double d = 1.5;
  std::int64_t i = -3;
  std::size_t z = 7;
  bool b = false;
  std::vector<double> list = {1.0};
  FlagParser p("test");
  p.add_string("str", &s, "");
  p.add_double("dbl", &d, "");
  p.add_int("int", &i, "");
  p.add_size("size", &z, "");
  p.add_bool("flag", &b, "");
  p.add_double_list("list", &list, "");
  const auto r = parse(p, {"--str", "hello", "--dbl=2.25", "--int", "-9",
                           "--size=42", "--flag", "--list", "0.1,0.2,0.3"});
  ASSERT_TRUE(r.ok) << r.err;
  EXPECT_EQ(s, "hello");
  EXPECT_DOUBLE_EQ(d, 2.25);
  EXPECT_EQ(i, -9);
  EXPECT_EQ(z, 42u);
  EXPECT_TRUE(b);
  EXPECT_EQ(list, (std::vector<double>{0.1, 0.2, 0.3}));
}

TEST(FlagParser, DefaultsSurviveWhenUnset) {
  double d = 3.5;
  FlagParser p("test");
  p.add_double("dbl", &d, "");
  ASSERT_TRUE(parse(p, {}).ok);
  EXPECT_DOUBLE_EQ(d, 3.5);
}

TEST(FlagParser, BoolExplicitValues) {
  bool b = true;
  FlagParser p("test");
  p.add_bool("flag", &b, "");
  ASSERT_TRUE(parse(p, {"--flag=false"}).ok);
  EXPECT_FALSE(b);
  ASSERT_TRUE(parse(p, {"--flag=true"}).ok);
  EXPECT_TRUE(b);
}

TEST(FlagParser, UnknownFlagFails) {
  FlagParser p("test");
  const auto r = parse(p, {"--nope", "1"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.err.find("unknown flag"), std::string::npos);
}

TEST(FlagParser, MissingValueFails) {
  double d = 0.0;
  FlagParser p("test");
  p.add_double("dbl", &d, "");
  const auto r = parse(p, {"--dbl"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.err.find("needs a value"), std::string::npos);
}

TEST(FlagParser, MalformedValueFails) {
  double d = 0.0;
  FlagParser p("test");
  p.add_double("dbl", &d, "");
  EXPECT_FALSE(parse(p, {"--dbl", "abc"}).ok);
  std::vector<double> list;
  p.add_double_list("list", &list, "");
  EXPECT_FALSE(parse(p, {"--list", "1,x"}).ok);
}

TEST(FlagParser, PositionalArgumentFails) {
  FlagParser p("test");
  EXPECT_FALSE(parse(p, {"positional"}).ok);
}

TEST(FlagParser, HelpPrintsAndReturnsFalse) {
  double d = 1.0;
  FlagParser p("my tool description");
  p.add_double("dbl", &d, "the knob");
  const auto r = parse(p, {"--help"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.out.find("my tool description"), std::string::npos);
  EXPECT_NE(r.out.find("--dbl"), std::string::npos);
  EXPECT_NE(r.out.find("the knob"), std::string::npos);
}

TEST(FlagParser, DuplicateFlagRegistrationThrows) {
  double d = 0.0;
  FlagParser p("test");
  p.add_double("dbl", &d, "");
  EXPECT_THROW(p.add_double("dbl", &d, ""), CheckFailure);
}

TEST(SplitCsv, Basics) {
  EXPECT_EQ(split_csv(""), std::vector<std::string>{});
  EXPECT_EQ(split_csv("a"), std::vector<std::string>{"a"});
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("a,,c"), (std::vector<std::string>{"a", "", "c"}));
}

}  // namespace
}  // namespace tailguard
