// Tests for the pluggable placement subsystem (core/placement/):
//
//   * least_loaded through the policy layer is bit-identical to the raw
//     pick_least_loaded it replaced (same picks, same Rng stream);
//   * pow_d is deterministic for a fixed seed, distinct while possible, and
//     degenerates to a global least-loaded scan at d >= n;
//   * tail_risk's risk bands rank servers the way the scoring model says
//     (full-data misses in [0,1), partial data in [1,2), budget-exceeded
//     backlog in [2,inf)), driven by hand-built slack histograms;
//   * the control plane feeds slack on enqueue, accounts staleness per
//     decision, and exposes the per-policy counters;
//   * in-place percentile selection never perturbs the means computed
//     before it (floating-point sums are order-sensitive) and matches the
//     copying percentile exactly;
//   * the three execution backends produce the identical placement sequence
//     under pow_d with a shared seed — the cross-backend parity contract
//     extended to placement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/control_plane.h"
#include "core/placement.h"
#include "core/placement/policy.h"
#include "core/placement/slack_tracker.h"
#include "dist/standard.h"
#include "net/dispatcher.h"
#include "net/task_server.h"
#include "runtime/service.h"
#include "sim/experiment.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "workloads/trace.h"

namespace tailguard {
namespace {

std::vector<std::shared_ptr<CdfModel>> fixed_models(std::size_t n,
                                                    double value_ms) {
  std::vector<std::shared_ptr<CdfModel>> models;
  models.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    models.push_back(std::make_shared<DistributionCdfModel>(
        std::make_shared<Deterministic>(value_ms)));
  return models;
}

ControlPlaneOptions plane_options(PlacementPolicyKind kind,
                                  std::uint64_t seed = 42) {
  ControlPlaneOptions options;
  options.policy = Policy::kTfEdf;
  options.classes = {{.slo_ms = 20.0, .percentile = 99.0}};
  options.placement.kind = kind;
  options.seed = seed;
  return options;
}

std::vector<PlacementCandidate> random_candidates(std::size_t n, Rng& rng) {
  std::vector<PlacementCandidate> candidates;
  candidates.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    candidates.emplace_back(rng.uniform_index(5), static_cast<ServerId>(i));
  return candidates;
}

// ------------------------------------------------------------ least_loaded

TEST(PlacementPolicy, LeastLoadedBitIdenticalToRawPicker) {
  // Same candidates, same seed: the policy must produce the same picks AND
  // leave the Rng in the same state (the sim's bit-parity contract hinges on
  // identical draw counts).
  Rng fill(7);
  for (std::size_t count : {0u, 1u, 3u, 5u, 9u}) {
    const auto candidates = random_candidates(6, fill);
    Rng raw_rng(123), policy_rng(123);
    const auto raw = pick_least_loaded(candidates, count, raw_rng);

    LeastLoadedPolicy policy;
    auto scratch = candidates;
    std::vector<ServerId> out;
    const std::size_t examined =
        policy.place(scratch, count, PlacementContext{}, policy_rng, out);

    EXPECT_EQ(out, raw) << "count=" << count;
    EXPECT_EQ(examined, count == 0 ? 0u : candidates.size());
    EXPECT_EQ(raw_rng.uniform_index(1u << 20), policy_rng.uniform_index(1u << 20))
        << "Rng streams diverged at count=" << count;
  }
}

TEST(PlacementPolicy, ControlPlaneDefaultPlaceMatchesRawPicker) {
  // The facade's place() under the default policy is the pre-refactor
  // place_least_loaded, draw for draw.
  const std::uint64_t seed = 99;
  QueryControlPlane cp(plane_options(PlacementPolicyKind::kLeastLoaded, seed),
                       fixed_models(4, 5.0));
  EXPECT_EQ(cp.placement_kind(), PlacementPolicyKind::kLeastLoaded);
  EXPECT_FALSE(cp.slack_tracking_enabled());

  Rng reference(seed);
  Rng fill(11);
  for (int round = 0; round < 5; ++round) {
    const auto candidates = random_candidates(4, fill);
    EXPECT_EQ(cp.place(candidates, 2),
              pick_least_loaded(candidates, 2, reference))
        << "round " << round;
  }
  EXPECT_EQ(cp.placement_stats().decisions, 5u);
  EXPECT_EQ(cp.placement_stats().candidates_considered, 20u);
  EXPECT_EQ(cp.placement_stats().decisions_with_slack, 0u);
}

// ------------------------------------------------------------------ pow_d

TEST(PlacementPolicy, PowerOfDDeterministicForFixedSeed) {
  const auto run = [](std::uint64_t seed) {
    PowerOfDPolicy policy(2);
    Rng rng(seed);
    Rng fill(3);
    std::vector<std::vector<ServerId>> sequence;
    for (int q = 0; q < 50; ++q) {
      auto candidates = random_candidates(8, fill);
      std::vector<ServerId> out;
      policy.place(candidates, 3, PlacementContext{}, rng, out);
      sequence.push_back(out);
    }
    return sequence;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6)) << "different seeds should explore differently";
}

TEST(PlacementPolicy, PowerOfDPicksAreDistinctWhilePossible) {
  PowerOfDPolicy policy(2);
  Rng rng(17);
  for (int round = 0; round < 20; ++round) {
    std::vector<PlacementCandidate> candidates;
    for (std::size_t i = 0; i < 5; ++i)
      candidates.emplace_back(1, static_cast<ServerId>(i));
    std::vector<ServerId> out;
    // count == n: every server exactly once (a permutation).
    policy.place(candidates, 5, PlacementContext{}, rng, out);
    EXPECT_EQ(std::set<ServerId>(out.begin(), out.end()).size(), 5u);
    // count > n: round-robin reuse — each server appears exactly twice.
    policy.place(candidates, 10, PlacementContext{}, rng, out);
    for (ServerId s = 0; s < 5; ++s)
      EXPECT_EQ(std::count(out.begin(), out.end(), s), 2) << "server " << s;
  }
}

TEST(PlacementPolicy, PowerOfDDegeneratesToGlobalScanAtLargeD) {
  // d >= n examines every remaining candidate per pick, so with distinct
  // loads the result is the globally least-loaded set in ascending order —
  // no randomness left in the outcome.
  PowerOfDPolicy policy(64);
  Rng rng(29);
  std::vector<PlacementCandidate> candidates = {
      {7, 0}, {2, 1}, {9, 2}, {1, 3}, {4, 4}, {6, 5}};
  std::vector<ServerId> out;
  const std::size_t examined =
      policy.place(candidates, 3, PlacementContext{}, rng, out);
  EXPECT_EQ(out, (std::vector<ServerId>{3, 1, 4}));
  EXPECT_EQ(examined, 6u + 5u + 4u);
}

// -------------------------------------------------------------- tail_risk

TEST(PlacementPolicy, TailRiskBandsOrderColdFeasibleAndOverloaded) {
  const StreamingHistogramOptions histo =
      PlacementPolicyOptions{}.slack_histogram;
  SlackTracker tracker(3, histo);
  PlacementContext ctx;
  ctx.slack = &tracker;
  ctx.budget_hint_ms = 10.0;
  ctx.now_ms = 100.0;

  // Cold servers (no slack data): partial band [1,2), ranked by load.
  EXPECT_DOUBLE_EQ(SlackTailRiskPolicy::risk_of(0, 0, ctx), 1.0);
  EXPECT_GT(SlackTailRiskPolicy::risk_of(3, 0, ctx),
            SlackTailRiskPolicy::risk_of(1, 0, ctx));
  EXPECT_LT(SlackTailRiskPolicy::risk_of(1000, 0, ctx), 2.0);

  // Server 1: relaxed queue (all slack far above the budget) and fast
  // observed service — the full-data band, risk < 1.
  for (int i = 0; i < 200; ++i) {
    tracker.record_enqueue(1, 500.0, 50.0);
    tracker.record_service(1, 1.0);
  }
  const double relaxed = SlackTailRiskPolicy::risk_of(4, 1, ctx);
  EXPECT_GE(relaxed, 0.0);
  EXPECT_LT(relaxed, 1.0);

  // Server 2: urgent queue (slack below the budget) and slow service — the
  // expected urgent backlog alone exceeds the budget, risk >= 2.
  for (int i = 0; i < 200; ++i) {
    tracker.record_enqueue(2, 2.0, 50.0);
    tracker.record_service(2, 8.0);
  }
  const double urgent = SlackTailRiskPolicy::risk_of(4, 2, ctx);
  EXPECT_GE(urgent, 2.0);

  // Equal load, worlds apart in risk: relaxed < cold < urgent.
  EXPECT_LT(relaxed, SlackTailRiskPolicy::risk_of(4, 0, ctx));
  EXPECT_LT(SlackTailRiskPolicy::risk_of(4, 0, ctx), urgent);
}

TEST(PlacementPolicy, TailRiskPrefersRelaxedServerOverUrgentAtEqualLoad) {
  const StreamingHistogramOptions histo =
      PlacementPolicyOptions{}.slack_histogram;
  SlackTracker tracker(2, histo);
  for (int i = 0; i < 200; ++i) {
    tracker.record_enqueue(0, 1.0, 10.0);    // urgent backlog on server 0
    tracker.record_service(0, 5.0);
    tracker.record_enqueue(1, 200.0, 10.0);  // relaxed backlog on server 1
    tracker.record_service(1, 5.0);
  }
  PlacementContext ctx;
  ctx.slack = &tracker;
  ctx.budget_hint_ms = 8.0;
  SlackTailRiskPolicy policy;
  Rng rng(31);
  for (int round = 0; round < 10; ++round) {
    std::vector<PlacementCandidate> candidates = {{3, 0}, {3, 1}};
    std::vector<ServerId> out;
    const std::size_t examined = policy.place(candidates, 1, ctx, rng, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 1u) << "equal load must not mask the slack signal";
    EXPECT_EQ(examined, 2u);
  }
}

TEST(PlacementPolicy, TailRiskWithoutAnyDataRanksByLoad) {
  const StreamingHistogramOptions histo =
      PlacementPolicyOptions{}.slack_histogram;
  SlackTracker tracker(3, histo);
  PlacementContext ctx;
  ctx.slack = &tracker;
  SlackTailRiskPolicy policy;
  Rng rng(37);
  std::vector<PlacementCandidate> candidates = {{9, 0}, {1, 1}, {4, 2}};
  std::vector<ServerId> out;
  policy.place(candidates, 2, ctx, rng, out);
  EXPECT_EQ(out, (std::vector<ServerId>{1, 2}));
}

TEST(PlacementPolicy, ControlPlaneFeedsSlackAndAccountsStaleness) {
  QueryControlPlane cp(plane_options(PlacementPolicyKind::kTailRisk),
                       fixed_models(4, 5.0));
  EXPECT_EQ(cp.placement_kind(), PlacementPolicyKind::kTailRisk);
  ASSERT_TRUE(cp.slack_tracking_enabled());

  // No slack data yet: the decision is counted, but not as slack-informed.
  cp.place({{0, 0}, {0, 1}, {0, 2}, {0, 3}}, 2, 0, 50.0);
  EXPECT_EQ(cp.placement_stats().decisions, 1u);
  EXPECT_EQ(cp.placement_stats().candidates_considered, 4u);
  EXPECT_EQ(cp.placement_stats().decisions_with_slack, 0u);

  // begin_query records each placed task's budget as a slack observation on
  // its server, timestamped t0.
  const QueryPlan plan = cp.begin_query(100.0, 0, {{0, 1}});
  EXPECT_GT(plan.budget_ms, 0.0);
  ASSERT_NE(cp.slack_tracker(), nullptr);
  EXPECT_EQ(cp.slack_tracker()->slack_observations(0), 1u);
  EXPECT_EQ(cp.slack_tracker()->slack_observations(1), 1u);
  EXPECT_EQ(cp.slack_tracker()->slack_observations(2), 0u);

  // A decision 30 ms later: two of four candidates carry slack data aged
  // exactly 30 ms, so the decision's mean staleness is 30.
  cp.place({{0, 0}, {0, 1}, {0, 2}, {0, 3}}, 2, 0, 130.0);
  const PlacementStats stats = cp.placement_stats();
  EXPECT_EQ(stats.decisions, 2u);
  EXPECT_EQ(stats.decisions_with_slack, 1u);
  EXPECT_DOUBLE_EQ(stats.slack_staleness_ms_sum, 30.0);

  // Completions feed the service-time histograms.
  cp.observe_post_queuing(0, 4.0);
  EXPECT_GT(cp.slack_tracker()->mean_service_ms(0), 0.0);
}

// ------------------------------------------------- in-place percentile math

TEST(PlacementStatsMath, PercentileInplaceMatchesCopyingPercentile) {
  Rng rng(41);
  std::vector<double> values(997);
  for (auto& v : values) v = rng.uniform() * 100.0;
  const std::vector<double> pristine = values;

  // Stacked in-place calls: selection permutes but never changes the
  // multiset, so later percentiles still see the same sample.
  for (double p : {50.0, 95.0, 99.0, 0.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile_inplace(values, p), percentile(pristine, p))
        << "p=" << p;
  }
  auto sorted_now = values;
  auto sorted_orig = pristine;
  std::sort(sorted_now.begin(), sorted_now.end());
  std::sort(sorted_orig.begin(), sorted_orig.end());
  EXPECT_EQ(sorted_now, sorted_orig) << "selection must preserve the multiset";
}

TEST(PlacementStatsMath, MeansAreComputedBeforeInPlaceSelection) {
  // Floating-point sums are order-sensitive: 1e17's ulp is 16, so summing
  // this sample in insertion order fully absorbs the 3
  // (1e17 + 3 - 1e17 + 4 = 4, mean 1.0), while any order nth_element would
  // leave behind — -1e17 partitioned to the front, 1e17 to the back —
  // absorbs both small values (mean 0.0). tail_and_mean must report the
  // insertion-order mean, i.e. take the mean BEFORE selecting.
  LatencySample sample;
  sample.add(1e17);
  sample.add(3.0);
  sample.add(-1e17);
  sample.add(4.0);
  const auto tm = sample.tail_and_mean(50.0);
  EXPECT_DOUBLE_EQ(tm.mean_ms, 1.0);
  const std::vector<double> pristine = {1e17, 3.0, -1e17, 4.0};
  EXPECT_DOUBLE_EQ(tm.tail_ms, percentile(pristine, 50.0));
}

// ----------------------------------------------------------- env selection

TEST(PlacementConfig, EnvKnobsSelectPolicyAndSampleWidth) {
  ASSERT_EQ(setenv("TAILGUARD_PLACEMENT", "pow_d", 1), 0);
  ASSERT_EQ(setenv("TAILGUARD_PLACEMENT_D", "5", 1), 0);
  PlacementPolicyOptions opts = placement_from_env();
  EXPECT_EQ(opts.kind, PlacementPolicyKind::kPowerOfD);
  EXPECT_EQ(opts.power_d, 5u);

  ASSERT_EQ(setenv("TAILGUARD_PLACEMENT", "tail_risk", 1), 0);
  EXPECT_EQ(placement_from_env().kind, PlacementPolicyKind::kTailRisk);

  unsetenv("TAILGUARD_PLACEMENT");
  unsetenv("TAILGUARD_PLACEMENT_D");
  EXPECT_EQ(placement_from_env().kind, PlacementPolicyKind::kLeastLoaded);
}

TEST(PlacementConfig, SimulatorHonoursEnvSelection) {
  SimConfig config;
  config.num_servers = 8;
  config.policy = Policy::kTfEdf;
  config.classes = {{.slo_ms = 50.0, .percentile = 99.0}};
  config.service_time = std::make_shared<Exponential>(1.0);
  config.fanout = std::make_shared<FixedFanout>(2);
  config.arrival_rate = 0.5;
  config.num_queries = 500;
  config.seed = 4;

  ASSERT_EQ(setenv("TAILGUARD_PLACEMENT", "pow_d", 1), 0);
  const SimResult informed = run_simulation(config);
  unsetenv("TAILGUARD_PLACEMENT");
  EXPECT_EQ(informed.placement_kind, PlacementPolicyKind::kPowerOfD);
  EXPECT_GT(informed.placement_decisions, 0u);
  EXPECT_GT(informed.placement_candidates_considered,
            informed.placement_decisions);

  const SimResult legacy = run_simulation(config);
  EXPECT_EQ(legacy.placement_kind, PlacementPolicyKind::kLeastLoaded);
  EXPECT_EQ(legacy.placement_decisions, 0u)
      << "default placement keeps the legacy sampling path";
}

TEST(PlacementConfig, ExplicitLeastLoadedIsBitIdenticalToDefault) {
  SimConfig config;
  config.num_servers = 10;
  config.policy = Policy::kTfEdf;
  config.classes = {{.slo_ms = 50.0, .percentile = 99.0}};
  config.service_time = std::make_shared<Exponential>(1.0);
  config.fanout = std::make_shared<FixedFanout>(3);
  config.arrival_rate = 1.0;
  config.num_queries = 2000;
  config.seed = 13;

  const SimResult implicit_default = run_simulation(config);
  config.placement_policy =
      PlacementPolicyOptions{.kind = PlacementPolicyKind::kLeastLoaded};
  const SimResult explicit_ll = run_simulation(config);

  ASSERT_EQ(implicit_default.class_results.size(),
            explicit_ll.class_results.size());
  EXPECT_EQ(implicit_default.class_results[0].tail_latency_ms,
            explicit_ll.class_results[0].tail_latency_ms);
  EXPECT_EQ(implicit_default.class_results[0].mean_latency_ms,
            explicit_ll.class_results[0].mean_latency_ms);
  EXPECT_EQ(implicit_default.task_deadline_miss_ratio,
            explicit_ll.task_deadline_miss_ratio);
  EXPECT_EQ(implicit_default.end_time, explicit_ll.end_time);
}

TEST(PlacementConfig, PowDSweepIsIdenticalToSerialRuns) {
  // sweep_loads fans points over the thread pool; a pow_d run must come out
  // bit-identical to the serial single-point runs at any thread count (the
  // policy draws only from the control plane's own Rng).
  SimConfig config;
  config.num_servers = 12;
  config.policy = Policy::kTfEdf;
  config.classes = {{.slo_ms = 20.0, .percentile = 99.0}};
  config.service_time = std::make_shared<Exponential>(0.8);
  config.fanout = std::make_shared<FixedFanout>(3);
  config.num_queries = 3000;
  config.seed = 21;
  config.placement_policy = PlacementPolicyOptions{
      .kind = PlacementPolicyKind::kPowerOfD, .power_d = 3};

  const std::vector<double> loads = {0.3, 0.6};
  const auto points = sweep_loads(config, loads);
  ASSERT_EQ(points.size(), loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    SimConfig serial = config;
    set_load(serial, loads[i]);
    const SimResult reference = run_simulation(serial);
    EXPECT_EQ(points[i].result.class_results[0].tail_latency_ms,
              reference.class_results[0].tail_latency_ms);
    EXPECT_EQ(points[i].result.placement_decisions,
              reference.placement_decisions);
    EXPECT_EQ(points[i].result.placement_candidates_considered,
              reference.placement_candidates_considered);
  }
}

// -------------------------------------------------- cross-backend parity

constexpr std::uint64_t kNoRefresh = 1ull << 30;
constexpr std::size_t kParityServers = 4;
constexpr std::uint64_t kParitySeed = 42;

StreamingCdfModel::Options frozen_model_options() {
  StreamingCdfModel::Options options;
  options.histogram = {.min_value = 1e-3,
                       .max_value = 1e6,
                       .buckets_per_decade = 100,
                       .decay_every = 0,
                       .decay_factor = 0.5};
  options.refresh_every = kNoRefresh;
  return options;
}

std::uint32_t parity_fanout(std::size_t q) {
  return static_cast<std::uint32_t>(1 + q % 3);
}

TEST(PlacementParity, IdenticalPowDSequencesAcrossSimRuntimeAndNet) {
  // Queries are submitted strictly one at a time and drained before the
  // next, so every backend sees the same candidate view (all servers at
  // load 0) — the placement sequence is then a pure function of the shared
  // control-plane seed, and must be identical across the simulator, the
  // in-process runtime and the loopback remote dispatcher.
  constexpr std::size_t kQueries = 24;
  PlacementPolicyOptions pow_d;
  pow_d.kind = PlacementPolicyKind::kPowerOfD;
  pow_d.power_d = 2;

  using Sequence = std::vector<std::vector<ServerId>>;

  // --- simulator: a well-spaced trace of tiny deterministic tasks.
  Sequence sim_seq;
  {
    SimConfig config;
    config.num_servers = kParityServers;
    config.policy = Policy::kTfEdf;
    config.classes = {{.slo_ms = 80.0, .percentile = 99.0}};
    config.service_time = std::make_shared<Deterministic>(0.5);
    for (std::size_t q = 0; q < kQueries; ++q)
      config.trace.push_back({.arrival_ms = 50.0 * static_cast<double>(q),
                              .class_id = 0,
                              .fanout = parity_fanout(q)});
    config.seed = kParitySeed;
    config.placement_policy = pow_d;
    config.on_query_placed = [&](ClassId, std::span<const ServerId> servers) {
      sim_seq.emplace_back(servers.begin(), servers.end());
    };
    const SimResult result = run_simulation(config);
    EXPECT_EQ(result.placement_kind, PlacementPolicyKind::kPowerOfD);
    EXPECT_EQ(result.placement_decisions, kQueries);
  }
  ASSERT_EQ(sim_seq.size(), kQueries);

  // --- in-process runtime.
  Sequence runtime_seq;
  {
    ServiceOptions options;
    options.num_workers = kParityServers;
    options.policy = Policy::kTfEdf;
    options.classes = {{.slo_ms = 80.0, .percentile = 99.0}};
    options.model_options = frozen_model_options();
    options.seed = kParitySeed;
    options.placement = pow_d;
    options.placement_observer = [&](std::span<const ServerId> servers) {
      runtime_seq.emplace_back(servers.begin(), servers.end());
    };
    TailGuardService service(options);
    EXPECT_EQ(service.placement_kind(), PlacementPolicyKind::kPowerOfD);
    for (std::size_t q = 0; q < kQueries; ++q) {
      std::vector<ServiceTaskSpec> tasks(parity_fanout(q));
      for (auto& t : tasks) t.simulated_service_ms = 0.5;
      service.submit(0, std::move(tasks)).get();
    }
    EXPECT_EQ(service.placement_stats().decisions, kQueries);
  }
  ASSERT_EQ(runtime_seq.size(), kQueries);

  // --- remote dispatcher over loopback TCP.
  Sequence net_seq;
  {
    std::vector<std::unique_ptr<net::TaskServer>> fleet;
    for (std::size_t i = 0; i < kParityServers; ++i) {
      net::TaskServerOptions server_options;
      server_options.policy = Policy::kTfEdf;
      server_options.num_classes = 1;
      fleet.push_back(std::make_unique<net::TaskServer>(server_options));
    }
    net::DispatcherOptions options;
    for (const auto& server : fleet)
      options.servers.push_back({"127.0.0.1", server->port()});
    options.policy = Policy::kTfEdf;
    options.classes = {{.slo_ms = 80.0, .percentile = 99.0}};
    options.model_options = frozen_model_options();
    options.seed = kParitySeed;
    options.placement = pow_d;
    options.placement_observer = [&](std::span<const ServerId> servers) {
      net_seq.emplace_back(servers.begin(), servers.end());
    };
    net::RemoteDispatcher dispatcher(options);
    ASSERT_TRUE(dispatcher.wait_for_servers(kParityServers, 5000.0));
    EXPECT_EQ(dispatcher.placement_kind(), PlacementPolicyKind::kPowerOfD);
    for (std::size_t q = 0; q < kQueries; ++q) {
      std::vector<net::RemoteTaskSpec> tasks(parity_fanout(q));
      for (auto& t : tasks) t.simulated_service_ms = 0.5;
      const QueryResult r = dispatcher.submit(0, std::move(tasks)).get();
      EXPECT_EQ(r.tasks_failed, 0u);
    }
    EXPECT_EQ(dispatcher.placement_stats().decisions, kQueries);
  }
  ASSERT_EQ(net_seq.size(), kQueries);

  EXPECT_EQ(sim_seq, runtime_seq);
  EXPECT_EQ(sim_seq, net_seq);
}

}  // namespace
}  // namespace tailguard
