// Fixture-driven self-test for tg_lint (tools/lint/). Each rule has a bad
// fixture that must fire and a good fixture (or allowlisted virtual path)
// that must stay silent; suppression comments are exercised separately.
//
// Fixtures are linted under *virtual* repo paths: several rules key off the
// path (wire-safety only applies under src/net/, clock reads are legal in
// src/runtime/), so the same bytes can be asserted both ways.
#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/tg_lint.h"

namespace tailguard::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(TG_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lints fixture `name` as if it lived at `virtual_path`.
std::vector<Diagnostic> lint_fixture(const std::string& name,
                                     const std::string& virtual_path) {
  return lint_source(virtual_path, read_fixture(name));
}

std::set<std::string> rules_of(const std::vector<Diagnostic>& diags) {
  std::set<std::string> rules;
  for (const auto& d : diags) rules.insert(d.rule);
  return rules;
}

int count_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return static_cast<int>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

TEST(LintTest, BadRandomFiresOnEverySource) {
  const auto diags = lint_fixture("bad_random.cc", "src/sim/bad_random.cc");
  EXPECT_EQ(rules_of(diags), std::set<std::string>{"determinism-random"});
  // random_device, mt19937, default_random_engine, srand, rand.
  EXPECT_GE(count_rule(diags, "determinism-random"), 5);
}

TEST(LintTest, RandomBansApplyEvenInRealTimeLayers) {
  // The clock allowlist (src/net/ etc.) must NOT extend to randomness:
  // every stochastic draw comes from tailguard::Rng, everywhere.
  const auto diags = lint_fixture("bad_random.cc", "src/net/bad_random.cc");
  EXPECT_GE(count_rule(diags, "determinism-random"), 5);
}

TEST(LintTest, GoodRandomIsClean) {
  EXPECT_TRUE(lint_fixture("good_random.cc", "src/sim/good_random.cc").empty());
}

TEST(LintTest, RngHeaderItselfIsExempt) {
  // src/common/rng.h is the one place allowed to talk about engines.
  const auto diags = lint_fixture("bad_random.cc", "src/common/rng.h");
  EXPECT_EQ(count_rule(diags, "determinism-random"), 0);
}

TEST(LintTest, BadClockFiresInDeterministicLayers) {
  const auto diags = lint_fixture("bad_clock.cc", "src/sim/bad_clock.cc");
  EXPECT_EQ(rules_of(diags), std::set<std::string>{"determinism-clock"});
  // steady, system, high_resolution, time(nullptr).
  EXPECT_EQ(count_rule(diags, "determinism-clock"), 4);
}

TEST(LintTest, ClockAllowedInRealTimeLayers) {
  for (const std::string path :
       {"src/net/poller.cc", "src/runtime/service.cc", "bench/timing.cc",
        "tests/net_test.cc"}) {
    EXPECT_EQ(count_rule(lint_fixture("bad_clock.cc", path),
                         "determinism-clock"),
              0)
        << path;
  }
}

TEST(LintTest, GoodClockIsClean) {
  EXPECT_TRUE(lint_fixture("good_clock.cc", "src/sim/good_clock.cc").empty());
}

TEST(LintTest, BadUnitsFiresPerUnsuffixedIdentifierUse) {
  const auto diags = lint_fixture("bad_units.cc", "src/core/bad_units.cc");
  EXPECT_EQ(rules_of(diags), std::set<std::string>{"time-units"});
  // timeout, budget, retry_backoff, elapsed + queue_delay params,
  // total_latency decl line (3 ids), return line (2 ids).
  EXPECT_EQ(count_rule(diags, "time-units"), 10);
}

TEST(LintTest, GoodUnitsIsClean) {
  EXPECT_TRUE(lint_fixture("good_units.cc", "src/core/good_units.cc").empty());
}

TEST(LintTest, BadLockFiresOnEveryNakedCall) {
  const auto diags = lint_fixture("bad_lock.cc", "src/runtime/bad_lock.cc");
  EXPECT_EQ(rules_of(diags), std::set<std::string>{"lock-discipline"});
  EXPECT_EQ(count_rule(diags, "lock-discipline"), 5);
}

TEST(LintTest, GoodLockIsClean) {
  EXPECT_TRUE(lint_fixture("good_lock.cc", "src/runtime/good_lock.cc").empty());
}

TEST(LintTest, BadHeaderFiresPragmaAndUsingNamespace) {
  const auto diags = lint_fixture("bad_header.h", "src/core/bad_header.h");
  EXPECT_EQ(count_rule(diags, "header-hygiene"), 2);
}

TEST(LintTest, HeaderRulesOnlyApplyToHeaders) {
  // The same bytes as a .cc file: include guards and using namespace are
  // (stylistically questionable but) legal in a translation unit.
  const auto diags = lint_fixture("bad_header.h", "src/core/bad_header.cc");
  EXPECT_EQ(count_rule(diags, "header-hygiene"), 0);
}

TEST(LintTest, GoodHeaderIsClean) {
  EXPECT_TRUE(lint_fixture("good_header.h", "src/core/good_header.h").empty());
}

TEST(LintTest, BadWireFiresUnderSrcNet) {
  const auto diags = lint_fixture("bad_wire.cc", "src/net/bad_wire.cc");
  EXPECT_EQ(rules_of(diags), std::set<std::string>{"wire-safety"});
  EXPECT_EQ(count_rule(diags, "wire-safety"), 2);
}

TEST(LintTest, WireRuleScopedToSrcNetAndExemptsWireCc) {
  EXPECT_EQ(count_rule(lint_fixture("bad_wire.cc", "src/sim/bad_wire.cc"),
                       "wire-safety"),
            0)
      << "wire-safety must only apply under src/net/";
  EXPECT_EQ(count_rule(lint_fixture("bad_wire.cc", "src/net/wire.cc"),
                       "wire-safety"),
            0)
      << "wire.cc hosts the endian helpers and is exempt";
}

TEST(LintTest, SockaddrCastStaysLegal) {
  EXPECT_TRUE(lint_fixture("good_wire.cc", "src/net/good_wire.cc").empty());
}

TEST(LintTest, BadControlPlaneFiresInEveryBackend) {
  for (const std::string path :
       {"src/sim/bad_control_plane.cc", "src/runtime/bad_control_plane.cc",
        "src/net/bad_control_plane.cc", "src/sas/bad_control_plane.cc"}) {
    const auto diags = lint_fixture("bad_control_plane.cc", path);
    EXPECT_EQ(rules_of(diags), std::set<std::string>{"control-plane-boundary"})
        << path;
    // One finding per component member — DeadlineEstimator, QueryTracker,
    // AdmissionController — plus the naked QueryControlPlane replica.
    EXPECT_EQ(count_rule(diags, "control-plane-boundary"), 4) << path;
  }
}

TEST(LintTest, ShardPlumbingMayNotTouchReplicas) {
  // src/shard/ is held to the same standard as the backends: router /
  // state-sync plumbing must not own the components or reach into a shard's
  // QueryControlPlane replica...
  const auto diags =
      lint_fixture("bad_control_plane.cc", "src/shard/bad_control_plane.cc");
  EXPECT_EQ(count_rule(diags, "control-plane-boundary"), 4);
}

TEST(LintTest, ShardingFacadeMayOwnReplicas) {
  // ...while the facade itself is the one sanctioned QueryControlPlane
  // owner — only the component mentions fire there.
  for (const std::string path : {"src/shard/sharded_control_plane.cc",
                                 "src/shard/sharded_control_plane.h"}) {
    const auto diags = lint_fixture("bad_control_plane.cc", path);
    EXPECT_EQ(count_rule(diags, "control-plane-boundary"), 3) << path;
  }
}

TEST(LintTest, ControlPlaneComponentsLegalOutsideBackends) {
  // core owns the components, and tests/tools may exercise them directly.
  for (const std::string path :
       {"src/core/bad_control_plane.cc", "tests/bad_control_plane.cc",
        "tools/bad_control_plane.cc"}) {
    EXPECT_EQ(count_rule(lint_fixture("bad_control_plane.cc", path),
                         "control-plane-boundary"),
              0)
        << path;
  }
}

TEST(LintTest, BadPlacementFiresInEveryBackend) {
  for (const std::string path :
       {"src/sim/bad_placement.cc", "src/runtime/bad_placement.cc",
        "src/net/bad_placement.cc", "src/sas/bad_placement.cc",
        "src/shard/bad_placement.cc"}) {
    const auto diags = lint_fixture("bad_placement.cc", path);
    EXPECT_EQ(rules_of(diags), std::set<std::string>{"control-plane-boundary"})
        << path;
    // One finding per token: the three concrete policy classes plus the raw
    // pick_least_loaded call.
    EXPECT_EQ(count_rule(diags, "control-plane-boundary"), 4) << path;
  }
}

TEST(LintTest, PlacementTokensBannedEvenInTheFacade) {
  // Unlike QueryControlPlane ownership, placement names have no sanctioned
  // home in src/shard: the facade forwards place() and ships slack deltas,
  // but policy construction belongs to core/placement/policy.cc alone.
  for (const std::string path : {"src/shard/sharded_control_plane.cc",
                                 "src/shard/sharded_control_plane.h"}) {
    const auto diags = lint_fixture("bad_placement.cc", path);
    EXPECT_EQ(count_rule(diags, "control-plane-boundary"), 4) << path;
  }
}

TEST(LintTest, PlacementTokensLegalOutsideBackends) {
  // core owns the policies; tests and tools may name them directly.
  for (const std::string path :
       {"src/core/placement/policy.cc", "tests/bad_placement.cc",
        "tools/bad_placement.cc"}) {
    EXPECT_EQ(count_rule(lint_fixture("bad_placement.cc", path),
                         "control-plane-boundary"),
              0)
        << path;
  }
}

TEST(LintTest, GoodPlacementIsClean) {
  EXPECT_TRUE(
      lint_fixture("good_placement.cc", "src/net/good_placement.cc").empty());
}

TEST(LintTest, GoodControlPlaneIsClean) {
  EXPECT_TRUE(
      lint_fixture("good_control_plane.cc", "src/net/good_control_plane.cc")
          .empty());
}

TEST(LintTest, SuppressionsSilenceEveryForm) {
  // Same-line allow, line-above allow, multi-rule allow, allow(all).
  EXPECT_TRUE(lint_fixture("suppressed.cc", "src/sim/suppressed.cc").empty());
}

TEST(LintTest, SuppressionIsRuleSpecific) {
  // An allow() for the wrong rule must not silence a finding.
  const auto diags = lint_source(
      "src/sim/x.cc",
      "double timeout = 1.0;  // tg-lint: allow(lock-discipline)\n");
  EXPECT_EQ(count_rule(diags, "time-units"), 1);
}

TEST(LintTest, CommentsAndStringsNeverMatch) {
  const auto diags = lint_source("src/sim/x.cc",
                                 "// rand() and steady_clock in a comment\n"
                                 "/* mu.lock() in a block comment */\n"
                                 "const char* s = \"rand() timeout\";\n"
                                 "const char* r = R\"(mu.unlock())\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintTest, DiagnosticsCarryPathLineAndRule) {
  const auto diags =
      lint_source("src/sim/x.cc", "int a;\ndouble timeout = 1.0;\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].path, "src/sim/x.cc");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[0].rule, "time-units");
  EXPECT_NE(diags[0].message.find("timeout"), std::string::npos);
}

TEST(LintTest, BadMapFiresInSimAndCore) {
  for (const std::string path :
       {"src/sim/bad_map.cc", "src/core/bad_map.cc"}) {
    const auto diags = lint_fixture("bad_map.cc", path);
    EXPECT_EQ(rules_of(diags), std::set<std::string>{"hot-path-map"}) << path;
    // Two includes (<map>, <unordered_map>) plus the two members.
    EXPECT_EQ(count_rule(diags, "hot-path-map"), 4) << path;
  }
}

TEST(LintTest, MapsLegalOutsideHotPathDirs) {
  // The runtime / net layers keep their node-based maps: connection tables
  // and in-flight registries are not the 10M tasks/s loop.
  for (const std::string path :
       {"src/net/bad_map.cc", "src/runtime/bad_map.cc", "src/shard/bad_map.cc",
        "tests/bad_map.cc", "tools/bad_map.cc"}) {
    EXPECT_EQ(count_rule(lint_fixture("bad_map.cc", path), "hot-path-map"), 0)
        << path;
  }
}

TEST(LintTest, GoodMapIsClean) {
  // Slab containers, map-containing identifiers, and suppressed cold uses.
  EXPECT_TRUE(lint_fixture("good_map.cc", "src/sim/good_map.cc").empty());
}

TEST(LintTest, BadAtomicFiresOnEveryImplicitOrderAccess) {
  const auto diags = lint_fixture("bad_atomic.cc", "src/core/bad_atomic.cc");
  EXPECT_EQ(rules_of(diags), std::set<std::string>{"atomic-order"});
  // fetch_add, store, load, exchange, load, and the -> fetch_sub.
  EXPECT_EQ(count_rule(diags, "atomic-order"), 6);
}

TEST(LintTest, AtomicOrderAppliesToToolsButNotTests) {
  // Tooling shares the discipline; tests and benches may lean on the
  // seq_cst default for clarity.
  EXPECT_EQ(count_rule(lint_fixture("bad_atomic.cc", "tools/bad_atomic.cc"),
                       "atomic-order"),
            6);
  EXPECT_EQ(count_rule(lint_fixture("bad_atomic.cc", "tests/bad_atomic.cc"),
                       "atomic-order"),
            0);
  EXPECT_EQ(count_rule(lint_fixture("bad_atomic.cc", "bench/bad_atomic.cc"),
                       "atomic-order"),
            0);
}

TEST(LintTest, GoodAtomicIsCleanIncludingMultiLineCallsAndLookalikes) {
  // Explicit orders pass (even split across lines); std::exchange and a
  // method named unload() are not atomic accesses.
  const auto diags = lint_fixture("good_atomic.cc", "src/core/good_atomic.cc");
  EXPECT_EQ(count_rule(diags, "atomic-order"), 0);
}

TEST(LintTest, BadGuardedFiresOncePerBareMember) {
  const auto diags =
      lint_fixture("bad_guarded.cc", "src/runtime/bad_guarded.cc");
  EXPECT_EQ(rules_of(diags), std::set<std::string>{"guarded-member"});
  // samples_, count_, mean_ — but never the Mutex itself.
  EXPECT_EQ(count_rule(diags, "guarded-member"), 3);
}

TEST(LintTest, GuardedMemberScopesToConcurrentDirectories) {
  for (const std::string dir : {"src/net/", "src/common/", "src/shard/"}) {
    EXPECT_EQ(count_rule(lint_fixture("bad_guarded.cc", dir + "bad_guarded.cc"),
                         "guarded-member"),
              3)
        << dir;
  }
  // The deterministic core and sim are single-threaded by design; a mutex
  // there is its own smell but not this rule's business.
  for (const std::string dir : {"src/core/", "src/sim/", "tests/"}) {
    EXPECT_EQ(count_rule(lint_fixture("bad_guarded.cc", dir + "bad_guarded.cc"),
                         "guarded-member"),
              0)
        << dir;
  }
}

TEST(LintTest, GuardedMemberAcceptsAnnotationsPrimitivesAndAllows) {
  const auto diags =
      lint_fixture("good_guarded.cc", "src/runtime/good_guarded.cc");
  EXPECT_EQ(count_rule(diags, "guarded-member"), 0);
}

TEST(LintTest, GuardedMemberExemptsTheAnnotationHeaderItself) {
  // Mutex's own std::mutex member is the one legitimately bare mutex member.
  const auto diags = lint_source("src/common/thread_annotations.h",
                                 "class Mutex {\n"
                                 " private:\n"
                                 "  std::mutex mu_;\n"
                                 "  int bare_;\n"
                                 "};\n");
  EXPECT_EQ(count_rule(diags, "guarded-member"), 0);
}

TEST(LintTest, RuleSummaryMentionsEveryRule) {
  const std::string summary = rule_summary();
  for (const std::string rule :
       {"determinism-random", "determinism-clock", "time-units",
        "lock-discipline", "header-hygiene", "wire-safety",
        "control-plane-boundary", "hot-path-map", "atomic-order",
        "guarded-member"}) {
    EXPECT_NE(summary.find(rule), std::string::npos) << rule;
  }
}

}  // namespace
}  // namespace tailguard::lint
