// Configuration-matrix smoke tests: every combination of (policy x
// estimation mode x arrival kind) must run cleanly and satisfy the basic
// invariants (conservation, utilization ~ offered load, sane tails). These
// catch wiring regressions that feature-focused tests can miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "sim/experiment.h"
#include "workloads/tailbench.h"

namespace tailguard {
namespace {

using MatrixParam = std::tuple<Policy, EstimationMode, ArrivalKind>;

class ConfigMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ConfigMatrix, RunsAndSatisfiesInvariants) {
  const auto [policy, estimation, arrivals] = GetParam();
  SimConfig cfg;
  cfg.num_servers = 40;
  cfg.policy = policy;
  cfg.estimation = estimation;
  cfg.arrival_kind = arrivals;
  cfg.classes = {{.slo_ms = 2.0, .percentile = 99.0},
                 {.slo_ms = 3.0, .percentile = 95.0}};
  cfg.class_probabilities = {0.6, 0.4};
  cfg.fanout = std::make_shared<CategoricalFanout>(
      std::vector<std::uint32_t>{1, 8, 40},
      std::vector<double>{0.7, 0.2, 0.1});
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.num_queries = 8000;
  cfg.seed = 101;
  set_load(cfg, 0.45);

  const SimResult r = run_simulation(cfg);

  // Conservation.
  EXPECT_EQ(r.queries_offered, cfg.num_queries);
  EXPECT_EQ(r.queries_admitted, cfg.num_queries);
  std::uint64_t recorded = 0;
  for (const auto& g : r.groups) recorded += g.queries;
  EXPECT_NEAR(static_cast<double>(recorded), 0.9 * cfg.num_queries,
              0.03 * cfg.num_queries);

  // Load accounting (Pareto arrivals have slower-converging means).
  const double tol = arrivals == ArrivalKind::kPareto ? 0.15 : 0.06;
  EXPECT_NEAR(r.measured_utilization, 0.45, tol);
  ASSERT_EQ(r.server_utilization.size(), cfg.num_servers);
  double sum_util = 0.0;
  for (double u : r.server_utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
    sum_util += u;
  }
  EXPECT_NEAR(sum_util / cfg.num_servers, r.measured_utilization, 1e-9);

  // Sane tails: every group's tail at least the unloaded per-task scale and
  // finite.
  for (const auto& g : r.groups) {
    EXPECT_GT(g.tail_latency_ms, 0.1);
    EXPECT_LT(g.tail_latency_ms, 1000.0);
    EXPECT_GE(g.tail_latency_ms, g.mean_latency_ms);
  }

  // Per-class aggregation is present for both classes.
  EXPECT_EQ(r.class_results.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ConfigMatrix,
    ::testing::Combine(
        ::testing::Values(Policy::kFifo, Policy::kPriq, Policy::kTEdf,
                          Policy::kTfEdf),
        ::testing::Values(EstimationMode::kExact,
                          EstimationMode::kOfflineEmpirical,
                          EstimationMode::kOfflineSingleProfile,
                          EstimationMode::kOnlineStreaming,
                          EstimationMode::kOnlineFromSingleProfile),
        ::testing::Values(ArrivalKind::kPoisson, ArrivalKind::kPareto)),
    [](const auto& info) {
      // std::get instead of structured bindings: the binding's commas do
      // not survive macro expansion.
      const Policy policy = std::get<0>(info.param);
      const EstimationMode estimation = std::get<1>(info.param);
      const ArrivalKind arrivals = std::get<2>(info.param);
      std::string name = to_string(policy);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      switch (estimation) {
        case EstimationMode::kExact: name += "Exact"; break;
        case EstimationMode::kOfflineEmpirical: name += "Offline"; break;
        case EstimationMode::kOfflineSingleProfile: name += "Single"; break;
        case EstimationMode::kOnlineStreaming: name += "Online"; break;
        case EstimationMode::kOnlineFromSingleProfile:
          name += "OnlineSingle";
          break;
      }
      name += arrivals == ArrivalKind::kPoisson ? "Poisson" : "Pareto";
      return name;
    });

}  // namespace
}  // namespace tailguard
