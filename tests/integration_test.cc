// Cross-module integration tests: the simulator, the order-statistics
// engine and the workload models must agree with each other and with
// closed-form queueing facts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"
#include "core/order_stats.h"
#include "sim/experiment.h"
#include "workloads/tailbench.h"

namespace tailguard {
namespace {

// Eqs. 1-2 against direct Monte Carlo: the p99 of the max of kf service
// draws must match the order-statistics inversion, for every workload model
// and fanout — the full sampling -> quantile pipeline without queueing.
class UnloadedAgreement : public ::testing::TestWithParam<TailbenchApp> {};

TEST_P(UnloadedAgreement, MonteCarloMaxMatchesOrderStatistics) {
  const auto app = GetParam();
  const auto service = make_service_time_model(app);
  DistributionCdfModel model(service);
  Rng rng(11);
  for (std::uint32_t kf : {1u, 10u, 100u}) {
    const std::size_t n = 60000;
    std::vector<double> maxima(n);
    for (auto& m : maxima) {
      double worst = 0.0;
      for (std::uint32_t k = 0; k < kf; ++k)
        worst = std::max(worst, service->sample(rng));
      m = worst;
    }
    const double predicted = homogeneous_unloaded_quantile(model, kf, 0.99);
    EXPECT_NEAR(percentile(maxima, 99.0), predicted, 0.04 * predicted)
        << to_string(app) << " kf=" << kf;
  }
}

// At (almost) zero load, the simulated p99 per fanout group approaches the
// unloaded prediction from above: queueing can only add latency, and at
// rho = 0.2% it adds little even for the wait-sensitive groups.
TEST_P(UnloadedAgreement, SimApproachesUnloadedPredictionAtLightLoad) {
  const auto app = GetParam();
  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.policy = Policy::kTfEdf;
  cfg.classes = {{.slo_ms = 1000.0, .percentile = 99.0}};
  cfg.fanout = std::make_shared<CategoricalFanout>(
      std::vector<std::uint32_t>{1, 100}, std::vector<double>{0.5, 0.5});
  cfg.service_time = make_service_time_model(app);
  cfg.num_queries = 100000;
  cfg.seed = 11;
  set_load(cfg, 0.002);
  const SimResult r = run_simulation(cfg);

  DistributionCdfModel model(cfg.service_time);
  for (std::uint32_t kf : {1u, 100u}) {
    const auto* g = r.find_group(0, kf);
    ASSERT_NE(g, nullptr) << to_string(app) << " kf=" << kf;
    const double predicted = homogeneous_unloaded_quantile(model, kf, 0.99);
    EXPECT_GT(g->tail_latency_ms, 0.93 * predicted)
        << to_string(app) << " kf=" << kf;
    EXPECT_LT(g->tail_latency_ms, 1.15 * predicted)
        << to_string(app) << " kf=" << kf;
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, UnloadedAgreement,
                         ::testing::ValuesIn(kAllTailbenchApps),
                         [](const auto& info) { return to_string(info.param); });

// M/M/1 sanity: one server, fanout 1, exponential service. The mean
// response time must match 1/(mu - lambda) and the p99 must match the
// exponential sojourn-time quantile.
TEST(Integration, MM1ClosedForm) {
  SimConfig cfg;
  cfg.num_servers = 1;
  cfg.policy = Policy::kFifo;
  cfg.classes = {{.slo_ms = 1000.0, .percentile = 99.0}};
  cfg.fanout = std::make_shared<FixedFanout>(1);
  cfg.service_time = std::make_shared<Exponential>(1.0);  // mu = 1/ms
  cfg.num_queries = 400000;
  cfg.seed = 5;
  for (double rho : {0.3, 0.6, 0.8}) {
    cfg.arrival_rate = rho;  // lambda = rho * mu
    const SimResult r = run_simulation(cfg);
    const auto* g = r.find_group(0, 1);
    ASSERT_NE(g, nullptr);
    const double mean_expected = 1.0 / (1.0 - rho);
    // Sojourn time in M/M/1-FCFS is Exponential(mu - lambda).
    const double p99_expected = -std::log(0.01) / (1.0 - rho);
    EXPECT_NEAR(g->mean_latency_ms, mean_expected, 0.05 * mean_expected)
        << "rho=" << rho;
    EXPECT_NEAR(g->tail_latency_ms, p99_expected, 0.07 * p99_expected)
        << "rho=" << rho;
    EXPECT_NEAR(r.measured_utilization, rho, 0.02) << "rho=" << rho;
  }
}

// TailGuard must dominate FIFO in max load on the paper's main workload
// setup — the core claim, verified through the public experiment API.
TEST(Integration, TailGuardBeatsFifoOnPaperWorkload) {
  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.classes = {{.slo_ms = 0.9, .percentile = 99.0}};
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.num_queries = 60000;
  cfg.seed = 7;
  MaxLoadOptions opt;
  opt.tolerance = 0.02;
  cfg.policy = Policy::kFifo;
  const double fifo = find_max_load(cfg, opt);
  cfg.policy = Policy::kTfEdf;
  const double tailguard = find_max_load(cfg, opt);
  EXPECT_GT(tailguard, fifo + 0.02)
      << "TailGuard " << tailguard << " vs FIFO " << fifo;
}

// Two classes: TailGuard must dominate every baseline (ranking property of
// Fig. 5) at matched tolerance.
TEST(Integration, PolicyRankingTwoClasses) {
  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0},
                 {.slo_ms = 1.5, .percentile = 99.0}};
  cfg.class_probabilities = {0.5, 0.5};
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.num_queries = 60000;
  cfg.seed = 7;
  MaxLoadOptions opt;
  opt.tolerance = 0.02;
  const auto max_load = [&](Policy p) {
    cfg.policy = p;
    return find_max_load(cfg, opt);
  };
  const double fifo = max_load(Policy::kFifo);
  const double priq = max_load(Policy::kPriq);
  const double tedf = max_load(Policy::kTEdf);
  const double tfedf = max_load(Policy::kTfEdf);
  EXPECT_GE(tfedf + 1e-9, tedf);
  EXPECT_GT(tfedf, fifo);
  EXPECT_GT(tfedf, priq);
  EXPECT_GE(tedf, std::min(fifo, priq));
}

// The deadline-miss ratio at the max acceptable load is small (the paper
// observes < 2%) — the premise of the admission-control design (§III.C).
TEST(Integration, MissRatioSmallAtMaxLoad) {
  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0},
                 {.slo_ms = 1.5, .percentile = 99.0}};
  cfg.class_probabilities = {0.5, 0.5};
  cfg.fanout = std::make_shared<FixedFanout>(100);
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.policy = Policy::kTfEdf;
  cfg.num_queries = 20000;
  cfg.seed = 3;
  MaxLoadOptions opt;
  opt.tolerance = 0.02;
  const double max_load = find_max_load(cfg, opt);
  set_load(cfg, max_load, opt);
  const SimResult r = run_simulation(cfg);
  EXPECT_GT(r.task_deadline_miss_ratio, 0.0);
  EXPECT_LT(r.task_deadline_miss_ratio, 0.02);
}

// Estimation-mode matrix: every mode must produce a working simulation and
// (for this homogeneous setup) nearly identical tails.
class EstimationModes : public ::testing::TestWithParam<EstimationMode> {};

TEST_P(EstimationModes, HomogeneousModesAgree) {
  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.classes = {{.slo_ms = 2.0, .percentile = 99.0}};
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.policy = Policy::kTfEdf;
  cfg.num_queries = 30000;
  cfg.seed = 13;
  set_load(cfg, 0.35);

  cfg.estimation = EstimationMode::kExact;
  const SimResult exact = run_simulation(cfg);
  cfg.estimation = GetParam();
  const SimResult r = run_simulation(cfg);
  ASSERT_EQ(r.groups.size(), exact.groups.size());
  for (std::size_t i = 0; i < r.groups.size(); ++i) {
    EXPECT_NEAR(r.groups[i].tail_latency_ms, exact.groups[i].tail_latency_ms,
                0.08 * exact.groups[i].tail_latency_ms)
        << "group " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, EstimationModes,
    ::testing::Values(EstimationMode::kOfflineEmpirical,
                      EstimationMode::kOfflineSingleProfile,
                      EstimationMode::kOnlineStreaming,
                      EstimationMode::kOnlineFromSingleProfile),
    [](const auto& info) {
      switch (info.param) {
        case EstimationMode::kOfflineEmpirical: return "OfflineEmpirical";
        case EstimationMode::kOfflineSingleProfile:
          return "OfflineSingleProfile";
        case EstimationMode::kOnlineStreaming: return "OnlineStreaming";
        case EstimationMode::kOnlineFromSingleProfile:
          return "OnlineFromSingleProfile";
        default: return "Exact";
      }
    });

// Mixed percentiles: a p95 class and a p99 class coexist; each group is
// judged at its own percentile.
TEST(Integration, MixedPercentileClasses) {
  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.classes = {{.slo_ms = 1.2, .percentile = 99.0},
                 {.slo_ms = 0.9, .percentile = 95.0}};
  cfg.class_probabilities = {0.5, 0.5};
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.policy = Policy::kTfEdf;
  cfg.num_queries = 40000;
  cfg.seed = 21;
  set_load(cfg, 0.2);
  const SimResult r = run_simulation(cfg);
  EXPECT_TRUE(r.all_slos_met(0.05));
  // The p95 class's reported tail is its p95, which at light load must be
  // below its own p99 (sanity of per-class percentile plumbing).
  const auto* g95 = r.find_group(1, 100);
  const auto* g99 = r.find_group(0, 100);
  ASSERT_NE(g95, nullptr);
  ASSERT_NE(g99, nullptr);
  EXPECT_LT(g95->tail_latency_ms, g99->tail_latency_ms);
}

}  // namespace
}  // namespace tailguard
