// Tests for the SaS testbed model (§IV.E): cluster CDF calibration against
// Fig. 9a, use-case definitions, placement rules and end-to-end behaviour.
#include <gtest/gtest.h>

#include <set>

#include "common/stats.h"
#include "sas/testbed.h"

namespace tailguard {
namespace {

class SasClusterCalibration : public ::testing::TestWithParam<SasCluster> {};

TEST_P(SasClusterCalibration, QuantilesMatchFig9a) {
  const auto cluster = GetParam();
  const auto stats = sas_paper_stats(cluster);
  const auto model = make_sas_cluster_model(cluster);
  EXPECT_NEAR(model->quantile(0.95), stats.p95_ms, 1e-9) << to_string(cluster);
  EXPECT_NEAR(model->quantile(0.99), stats.p99_ms, 1e-9) << to_string(cluster);
}

TEST_P(SasClusterCalibration, MeanMatchesFig9a) {
  const auto cluster = GetParam();
  const auto stats = sas_paper_stats(cluster);
  const auto model = make_sas_cluster_model(cluster);
  EXPECT_NEAR(model->mean(), stats.mean_ms, 0.03 * stats.mean_ms)
      << to_string(cluster);
}

INSTANTIATE_TEST_SUITE_P(AllClusters, SasClusterCalibration,
                         ::testing::ValuesIn(kAllSasClusters),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           n.erase(std::remove(n.begin(), n.end(), '-'),
                                   n.end());
                           return n;
                         });

TEST(SasTestbed, WetLabIsFastest) {
  // The paper equips the Wet-lab cluster with the highest-performing Pis
  // and co-locates the query handler: it must dominate every other cluster.
  const auto wet = make_sas_cluster_model(SasCluster::kWetLab);
  for (SasCluster other : {SasCluster::kServerRoom, SasCluster::kFaculty,
                           SasCluster::kGta}) {
    const auto m = make_sas_cluster_model(other);
    EXPECT_LT(wet->mean(), 0.5 * m->mean()) << to_string(other);
    EXPECT_LT(wet->quantile(0.99), 0.5 * m->quantile(0.99))
        << to_string(other);
  }
}

TEST(SasTestbed, UseCasesMatchPaper) {
  const auto cases = sas_use_cases();
  EXPECT_DOUBLE_EQ(cases[0].spec.slo_ms, 800.0);
  EXPECT_DOUBLE_EQ(cases[1].spec.slo_ms, 1300.0);
  EXPECT_DOUBLE_EQ(cases[2].spec.slo_ms, 1800.0);
  EXPECT_EQ(cases[0].fanout, 1u);
  EXPECT_EQ(cases[1].fanout, 4u);
  EXPECT_EQ(cases[2].fanout, 32u);
  EXPECT_DOUBLE_EQ(cases[0].probability + cases[1].probability +
                       cases[2].probability,
                   1.0);
}

TEST(SasTestbed, NodeNumbering) {
  EXPECT_EQ(sas_first_node(SasCluster::kServerRoom), 0u);
  EXPECT_EQ(sas_first_node(SasCluster::kWetLab), 8u);
  EXPECT_EQ(sas_first_node(SasCluster::kFaculty), 16u);
  EXPECT_EQ(sas_first_node(SasCluster::kGta), 24u);
  EXPECT_EQ(kSasNumNodes, 32u);
}

TEST(SasTestbed, PlacementRules) {
  SimConfig cfg = make_sas_config(Policy::kTfEdf, 1, 100);
  Rng rng(9);
  std::vector<ServerId> out;

  // Class A: single task; ~80% on the Server-room cluster.
  int server_room = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    cfg.placement(rng, 0, 1, out);
    ASSERT_EQ(out.size(), 1u);
    ASSERT_LT(out[0], kSasNumNodes);
    if (out[0] < 8) ++server_room;
  }
  EXPECT_NEAR(server_room / static_cast<double>(n), 0.8, 0.02);

  // Class B: one node per cluster.
  cfg.placement(rng, 1, 4, out);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_GE(out[c], c * 8);
    EXPECT_LT(out[c], (c + 1) * 8);
  }

  // Class C: all 32 nodes, distinct.
  cfg.placement(rng, 2, 32, out);
  ASSERT_EQ(out.size(), 32u);
  EXPECT_EQ(std::set<ServerId>(out.begin(), out.end()).size(), 32u);
}

TEST(SasTestbed, ClassFanoutCoupling) {
  SimConfig cfg = make_sas_config(Policy::kTfEdf, 1, 100);
  Rng rng(1);
  EXPECT_EQ(cfg.class_fanout(rng, 0), 1u);
  EXPECT_EQ(cfg.class_fanout(rng, 1), 4u);
  EXPECT_EQ(cfg.class_fanout(rng, 2), 32u);
}

TEST(SasTestbed, LoadOptionsReferenceServerRoom) {
  const auto opt = sas_load_options();
  EXPECT_DOUBLE_EQ(opt.capacity_servers, 8.0);
  // E[SR tasks/query] = 1.6; mean SR service ~82 ms.
  EXPECT_NEAR(opt.work_per_query, 1.6 * 82.0, 0.05 * 1.6 * 82.0);
}

TEST(SasTestbed, EndToEndMeetsSlosAtModerateLoad) {
  SimConfig cfg = make_sas_config(Policy::kTfEdf, 5, 20000);
  set_load(cfg, 0.40, sas_load_options());
  const SimResult r = run_simulation(cfg);
  ASSERT_EQ(r.class_results.size(), 3u);
  EXPECT_TRUE(r.all_slos_met(0.02));
  // Class mix ~ 50/40/10.
  const double total = static_cast<double>(
      r.class_results[0].queries + r.class_results[1].queries +
      r.class_results[2].queries);
  EXPECT_NEAR(r.class_results[0].queries / total, 0.5, 0.02);
  EXPECT_NEAR(r.class_results[2].queries / total, 0.1, 0.01);
}

TEST(SasTestbed, ServerRoomLoadConversionIsAccurate) {
  // At configured Server-room load L, the Server-room nodes (0..7) should
  // measure ~L busy fraction. Use per-server accounting via a probe: the
  // overall measured utilization mixes clusters, so verify indirectly —
  // Wet-lab is under-utilised relative to Server-room (the paper's skew).
  SimConfig cfg = make_sas_config(Policy::kTfEdf, 5, 30000);
  set_load(cfg, 0.5, sas_load_options());
  const SimResult r = run_simulation(cfg);
  // Mean utilization across all 32 nodes must be well below the SR load
  // because Wet-lab/faculty/GTA carry less work per ms of service... and
  // Wet-lab is fast.
  EXPECT_LT(r.measured_utilization, 0.5);
  EXPECT_GT(r.measured_utilization, 0.15);
}

TEST(SasTestbed, ServerRoomHotWetLabIdle) {
  // §IV.E: "the Server-room cluster is the most heavily loaded, whereas the
  // Wet-lab cluster is highly under utilized".
  SimConfig cfg = make_sas_config(Policy::kTfEdf, 5, 30000);
  set_load(cfg, 0.5, sas_load_options());
  const SimResult r = run_simulation(cfg);
  ASSERT_EQ(r.server_utilization.size(), kSasNumNodes);
  const auto cluster_util = [&](SasCluster c) {
    double util = 0.0;
    for (std::size_t n = 0; n < kSasNodesPerCluster; ++n)
      util += r.server_utilization[sas_first_node(c) + n];
    return util / kSasNodesPerCluster;
  };
  const double server_room = cluster_util(SasCluster::kServerRoom);
  const double wet_lab = cluster_util(SasCluster::kWetLab);
  // The configured load targets the Server-room cluster.
  EXPECT_NEAR(server_room, 0.5, 0.05);
  EXPECT_LT(wet_lab, 0.5 * server_room);
  EXPECT_GT(server_room, cluster_util(SasCluster::kFaculty));
  EXPECT_GT(server_room, cluster_util(SasCluster::kGta));
}

TEST(SasTestbed, PolicyRankingMatchesPaper) {
  // Fig. 9: TailGuard achieves the highest max Server-room load, PRIQ the
  // lowest; the full ordering is TailGuard > T-EDFQ > FIFO > PRIQ.
  const auto opt = [] {
    auto o = sas_load_options();
    o.tolerance = 0.02;
    return o;
  }();
  const auto max_load = [&](Policy p) {
    return find_max_load(make_sas_config(p, 11, 30000), opt);
  };
  const double fifo = max_load(Policy::kFifo);
  const double priq = max_load(Policy::kPriq);
  const double tedf = max_load(Policy::kTEdf);
  const double tfedf = max_load(Policy::kTfEdf);
  EXPECT_GE(tfedf, tedf - 0.02);
  EXPECT_GT(tedf, fifo);
  EXPECT_GT(fifo, priq - 0.01);
  EXPECT_GT(tfedf, fifo + 0.02);
}

}  // namespace
}  // namespace tailguard
