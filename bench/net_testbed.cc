// Networked testbed: dispatch overhead of the TCP runtime (src/net/) vs the
// in-process runtime on the same machine.
//
// Two measurements:
//   1. Round-trip overhead — serial fanout-1 queries with near-zero service
//      time; the measured query latency is almost entirely dispatch cost
//      (deadline computation + wire serde + loopback TCP + poll loops) for
//      the remote path, and deadline computation + queue handoff for the
//      in-process path. The difference is what going distributed costs.
//   2. Loaded tails — a paced open-loop run with fanouts 2 and 4 across 4
//      task servers, checking the remote path still lands per-class p99
//      under the same SLOs the in-process runtime meets.
#include <algorithm>
#include <array>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/dispatcher.h"
#include "net/task_server.h"
#include "runtime/service.h"

using namespace tailguard;

namespace {

struct LatencyStats {
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

LatencyStats stats_of(std::vector<double> v) {
  LatencyStats s;
  if (v.empty()) return s;
  std::sort(v.begin(), v.end());
  for (double x : v) s.mean += x;
  s.mean /= static_cast<double>(v.size());
  s.p50 = v[v.size() / 2];
  s.p99 = v[static_cast<std::size_t>(0.99 * static_cast<double>(v.size() - 1))];
  return s;
}

/// Serial fanout-1 queries with ~0 service time: latency == dispatch cost.
template <typename SubmitFn>
LatencyStats round_trip(std::size_t queries, SubmitFn&& submit) {
  std::vector<double> lat;
  lat.reserve(queries);
  for (std::size_t q = 0; q < queries; ++q) {
    lat.push_back(submit().get().latency_ms);
  }
  return stats_of(std::move(lat));
}

}  // namespace

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Networked testbed",
               "remote dispatcher + TCP task servers vs the in-process "
               "runtime (dispatch overhead and loaded tails)");
  bench::JsonReport report("net_testbed");

  constexpr std::size_t kServers = 4;
  const std::vector<ClassSpec> classes = {{.slo_ms = 60.0, .percentile = 99.0},
                                          {.slo_ms = 120.0, .percentile = 99.0}};
  const std::size_t rt_queries = bench::queries(1000);

  // --- shared offline profile -------------------------------------------
  Rng profile_rng(17);
  std::vector<double> profile(3000);
  for (auto& x : profile) x = 0.5 + profile_rng.uniform();

  // --- in-process baseline ----------------------------------------------
  ServiceOptions svc_opt;
  svc_opt.num_workers = kServers;
  svc_opt.policy = Policy::kTfEdf;
  svc_opt.classes = classes;
  TailGuardService service(svc_opt);
  service.seed_profile(profile);

  const LatencyStats local = round_trip(rt_queries, [&] {
    std::vector<ServiceTaskSpec> tasks(1);
    tasks[0].simulated_service_ms = 0.05;
    return service.submit(0, std::move(tasks));
  });

  // --- networked fleet on loopback --------------------------------------
  std::vector<std::unique_ptr<net::TaskServer>> fleet;
  for (std::size_t i = 0; i < kServers; ++i) {
    net::TaskServerOptions opt;
    opt.policy = Policy::kTfEdf;
    opt.num_classes = classes.size();
    fleet.push_back(std::make_unique<net::TaskServer>(opt));
  }
  net::DispatcherOptions d_opt;
  for (const auto& s : fleet) d_opt.servers.push_back({"127.0.0.1", s->port()});
  d_opt.policy = Policy::kTfEdf;
  d_opt.classes = classes;
  net::RemoteDispatcher dispatcher(d_opt);
  if (!dispatcher.wait_for_servers(kServers, 5000.0)) {
    std::printf("FATAL: task servers did not come up\n");
    return 1;
  }
  dispatcher.seed_profile(profile);

  const LatencyStats remote = round_trip(rt_queries, [&] {
    std::vector<net::RemoteTaskSpec> tasks(1);
    tasks[0].simulated_service_ms = 0.05;
    return dispatcher.submit(0, std::move(tasks));
  });

  bench::section("round-trip dispatch overhead (fanout 1, ~0 ms service)");
  std::printf("%-12s %10s %10s %10s\n", "path", "mean", "p50", "p99");
  std::printf("%-12s %8.3f ms %8.3f ms %8.3f ms\n", "in-process", local.mean,
              local.p50, local.p99);
  std::printf("%-12s %8.3f ms %8.3f ms %8.3f ms\n", "remote-tcp", remote.mean,
              remote.p50, remote.p99);
  std::printf("overhead: +%.3f ms mean, +%.3f ms p99 (%zu queries)\n",
              remote.mean - local.mean, remote.p99 - local.p99, rt_queries);
  report.row()
      .add("measurement", "round_trip_in_process")
      .add("mean_ms", local.mean)
      .add("p50_ms", local.p50)
      .add("p99_ms", local.p99);
  report.row()
      .add("measurement", "round_trip_remote_tcp")
      .add("mean_ms", remote.mean)
      .add("p50_ms", remote.p50)
      .add("p99_ms", remote.p99);
  // Fanout-1 queries, so per-query overhead == per-task overhead.
  report.row()
      .add("measurement", "dispatch_overhead_per_task")
      .add("mean_ms", remote.mean - local.mean)
      .add("p99_ms", remote.p99 - local.p99);

  // --- loaded tails ------------------------------------------------------
  const std::size_t loaded_queries = bench::queries(400);
  bench::section("loaded tails (fanout 2 / 4, ~1 ms tasks, paced open loop)");

  const auto run_loaded = [&](auto&& submit_query) {
    Rng rng(7);
    std::vector<std::pair<ClassId, std::future<QueryResult>>> futures;
    for (std::size_t q = 0; q < loaded_queries; ++q) {
      const ClassId cls = q % 3 == 0 ? 1 : 0;
      std::vector<double> service_ms(cls == 0 ? 2 : 4);
      for (auto& s : service_ms) s = 0.5 + rng.uniform();
      futures.emplace_back(cls, submit_query(cls, service_ms));
      std::this_thread::sleep_for(std::chrono::microseconds(1500));
    }
    std::vector<double> by_class[2];
    std::size_t failed = 0;
    for (auto& [cls, fut] : futures) {
      QueryResult r = fut.get();
      by_class[cls].push_back(r.latency_ms);
      failed += r.tasks_failed;
    }
    return std::make_pair(
        std::array<LatencyStats, 2>{stats_of(std::move(by_class[0])),
                                    stats_of(std::move(by_class[1]))},
        failed);
  };

  const auto [local_loaded, local_failed] =
      run_loaded([&](ClassId cls, const std::vector<double>& service_ms) {
        std::vector<ServiceTaskSpec> tasks(service_ms.size());
        for (std::size_t i = 0; i < service_ms.size(); ++i)
          tasks[i].simulated_service_ms = service_ms[i];
        return service.submit(cls, std::move(tasks));
      });
  const auto [remote_loaded, remote_failed] =
      run_loaded([&](ClassId cls, const std::vector<double>& service_ms) {
        std::vector<net::RemoteTaskSpec> tasks(service_ms.size());
        for (std::size_t i = 0; i < service_ms.size(); ++i)
          tasks[i].simulated_service_ms = service_ms[i];
        return dispatcher.submit(cls, std::move(tasks));
      });

  std::printf("%-12s %14s %14s %10s\n", "path", "I p99 (SLO 60)",
              "II p99 (120)", "failed");
  std::printf("%-12s %11.1f ms %11.1f ms %10zu  SLOs met: %s/%s\n",
              "in-process", local_loaded[0].p99, local_loaded[1].p99,
              local_failed, bench::check_mark(local_loaded[0].p99 <= 60.0),
              bench::check_mark(local_loaded[1].p99 <= 120.0));
  std::printf("%-12s %11.1f ms %11.1f ms %10zu  SLOs met: %s/%s\n",
              "remote-tcp", remote_loaded[0].p99, remote_loaded[1].p99,
              remote_failed, bench::check_mark(remote_loaded[0].p99 <= 60.0),
              bench::check_mark(remote_loaded[1].p99 <= 120.0));
  report.row()
      .add("measurement", "loaded_in_process")
      .add("p99_class1_ms", local_loaded[0].p99)
      .add("p99_class2_ms", local_loaded[1].p99)
      .add("tasks_failed", static_cast<double>(local_failed));
  report.row()
      .add("measurement", "loaded_remote_tcp")
      .add("p99_class1_ms", remote_loaded[0].p99)
      .add("p99_class2_ms", remote_loaded[1].p99)
      .add("tasks_failed", static_cast<double>(remote_failed));

  bench::note(
      "expected shape: loopback TCP adds well under a millisecond of "
      "round-trip overhead per query, and the remote path meets the same "
      "per-class p99 SLOs as the in-process runtime at this load; absolute "
      "numbers vary with machine and scheduler noise");
  return 0;
}
