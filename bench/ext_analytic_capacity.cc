// Extension: analytical capacity estimates vs the simulator.
//
// The analysis module predicts the FIFO query tail (M/G/1 + Eq. 1
// independence) in microseconds; here its max-load estimates are compared
// to the simulated ones across the three workloads and several SLOs —
// the quick-and-dirty capacity-planning companion to the full simulation.
#include <cstdio>
#include <vector>

#include "analysis/queueing.h"
#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Extension",
               "analytic (M/G/1 + order statistics) vs simulated capacity, "
               "FIFO, fixed fanout 10");
  bench::JsonReport report("ext_analytic_capacity");

  const struct {
    TailbenchApp app;
    std::vector<double> slos;
  } cases[] = {
      {TailbenchApp::kMasstree, {0.8, 1.2, 1.8}},
      {TailbenchApp::kShore, {4.0, 6.0, 9.0}},
      {TailbenchApp::kXapian, {5.0, 8.0, 12.0}},
  };

  MaxLoadOptions opt;
  opt.tolerance = 0.015;

  // Analytic estimates stay serial (microseconds each); the simulated
  // searches go to the engine as one batch.
  std::vector<double> analytics;
  std::vector<MaxLoadJob> jobs;
  for (const auto& c : cases) {
    const auto service = make_service_time_model(c.app);
    SimConfig cfg;
    cfg.num_servers = 100;
    cfg.policy = Policy::kFifo;
    cfg.fanout = std::make_shared<FixedFanout>(10);
    cfg.service_time = service;
    cfg.num_queries = bench::queries(60000);
    cfg.seed = 23;
    for (double slo : c.slos) {
      cfg.classes = {{.slo_ms = slo, .percentile = 99.0}};
      analytics.push_back(analytic_max_load(*service, 10, slo, 0.99));
      jobs.push_back(MaxLoadJob{.config = cfg, .opt = opt, .feasible = {}});
    }
  }
  const std::vector<double> simulated_loads = find_max_loads(jobs);

  std::printf("%-10s %-10s %14s %14s %10s\n", "workload", "SLO (ms)",
              "analytic", "simulated", "error");
  std::size_t next = 0;
  for (const auto& c : cases) {
    for (double slo : c.slos) {
      const double analytic = analytics[next];
      const double simulated = simulated_loads[next];
      ++next;
      std::printf("%-10s %-10.1f %13.1f%% %13.1f%% %9.0f%%\n",
                  to_string(c.app).c_str(), slo, analytic * 100.0,
                  simulated * 100.0,
                  simulated > 0 ? (analytic / simulated - 1.0) * 100.0 : 0.0);
      report.row()
          .add("workload", to_string(c.app))
          .add("slo_ms", slo)
          .add("analytic_max_load", analytic)
          .add("simulated_max_load", simulated);
    }
  }

  bench::note(
      "expected shape: the analytic estimate tracks the simulated max load "
      "within a few points at moderate/loose SLOs and within ~35% at the "
      "tightest ones (both the heavy-traffic wait approximation and the "
      "finite-sample p99 are tail-sensitive there) — good enough to seed "
      "the simulator's binary search or size a cluster before running "
      "anything");
  return 0;
}
