// Reproduces the §IV.D closing remark: results for cluster size N=1000 and
// for four service classes are consistent with the N=100 / two-class ones.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Extension (paper §IV.D remark)",
               "cluster size N=1000 and four service classes");
  bench::JsonReport report("ext_scale_and_classes");

  // --- N = 1000, single class, fanouts {1, 10, 100, 1000} ------------------
  bench::section("N=1000, single class, fanouts {1,10,100,1000} with "
                 "P(kf) ∝ 1/kf");
  {
    SimConfig cfg;
    cfg.num_servers = 1000;
    cfg.fanout = std::make_shared<CategoricalFanout>(
        std::vector<std::uint32_t>{1, 10, 100, 1000},
        std::vector<double>{1000.0 / 1111.0, 100.0 / 1111.0, 10.0 / 1111.0,
                            1.0 / 1111.0});
    cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
    cfg.num_queries = bench::queries(80000);
    cfg.seed = 7;
    MaxLoadOptions opt;
    opt.tolerance = 0.015;

    const std::vector<double> slos = {0.8, 1.0, 1.2};
    std::vector<MaxLoadJob> jobs;
    for (double slo : slos) {
      for (Policy policy : {Policy::kFifo, Policy::kTfEdf}) {
        cfg.classes = {{.slo_ms = slo, .percentile = 99.0}};
        cfg.policy = policy;
        jobs.push_back(MaxLoadJob{.config = cfg, .opt = opt, .feasible = {}});
      }
    }
    const std::vector<double> max_loads = find_max_loads(jobs);

    std::printf("%-14s %12s %12s %10s\n", "x99_SLO (ms)", "FIFO", "TailGuard",
                "gain");
    for (std::size_t i = 0; i < slos.size(); ++i) {
      const double fifo = max_loads[2 * i];
      const double tailguard = max_loads[2 * i + 1];
      std::printf("%-14.1f %11.0f%% %11.0f%% %9.0f%%\n", slos[i], fifo * 100.0,
                  tailguard * 100.0, (tailguard / fifo - 1.0) * 100.0);
      report.row()
          .add("section", "n1000_single_class")
          .add("slo_ms", slos[i])
          .add("max_load_fifo", fifo)
          .add("max_load_tailguard", tailguard);
    }
  }

  // --- N = 100, four classes ------------------------------------------------
  bench::section("N=100, four classes (SLO 0.8/1.2/1.6/2.0 ms, equal mix)");
  {
    SimConfig cfg;
    cfg.num_servers = 100;
    cfg.fanout =
        std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
    cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
    cfg.classes = {{.slo_ms = 0.8, .percentile = 99.0},
                   {.slo_ms = 1.2, .percentile = 99.0},
                   {.slo_ms = 1.6, .percentile = 99.0},
                   {.slo_ms = 2.0, .percentile = 99.0}};
    cfg.class_probabilities = {0.25, 0.25, 0.25, 0.25};
    cfg.num_queries = bench::queries(120000);
    cfg.seed = 7;
    MaxLoadOptions opt;
    opt.tolerance = 0.01;

    const Policy policies[] = {Policy::kFifo, Policy::kPriq, Policy::kTEdf,
                               Policy::kTfEdf};
    std::vector<MaxLoadJob> jobs;
    for (Policy policy : policies) {
      cfg.policy = policy;
      jobs.push_back(MaxLoadJob{.config = cfg, .opt = opt, .feasible = {}});
    }
    const std::vector<double> max_loads = find_max_loads(jobs);

    std::printf("%-10s %12s\n", "policy", "max load");
    for (std::size_t i = 0; i < std::size(policies); ++i) {
      std::printf("%-10s %11.0f%%\n", to_string(policies[i]),
                  max_loads[i] * 100.0);
      report.row()
          .add("section", "n100_four_classes")
          .add("policy", to_string(policies[i]))
          .add("max_load", max_loads[i]);
    }
  }

  bench::note(
      "expected shape: same ranking as the N=100 / two-class studies — "
      "TailGuard > T-EDFQ > PRIQ/FIFO — i.e. the gains persist at scale "
      "and with more classes (TailGuard permits unlimited classes, §III)");
  return 0;
}
