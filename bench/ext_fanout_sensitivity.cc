// Extension: sensitivity of TailGuard's gain to the fanout law P(kf).
//
// The paper argues (§IV.A) that because real P(kf)'s are unknown and
// changing, TailGuard must win across "quite different P(kf) models", and
// claims its consistent wins "strongly suggest the performance gain is
// insensitive to P(kf)". This bench tests that claim directly: same
// Masstree service law, same SLO, four fanout distributions.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Extension", "sensitivity of the gain to the fanout law P(kf)");
  bench::JsonReport report("ext_fanout_sensitivity");

  const struct {
    const char* label;
    FanoutModelPtr model;
  } laws[] = {
      {"paper mix {1,10,100} ~ 1/kf",
       std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix())},
      {"uniform over {1,10,100}",
       std::make_shared<CategoricalFanout>(
           std::vector<std::uint32_t>{1, 10, 100},
           std::vector<double>{1.0 / 3, 1.0 / 3, 1.0 / 3})},
      {"Facebook-like Zipf(1..100)", std::make_shared<ZipfFanout>(100, 1.0)},
      {"Sparrow-like {1,8,33}",
       std::make_shared<CategoricalFanout>(
           std::vector<std::uint32_t>{1, 8, 33},
           std::vector<double>{33.0 / 42.0, 33.0 / 8.0 / 42.0,
                               1.0 / 42.0})},
  };

  MaxLoadOptions opt;
  opt.tolerance = 0.015;

  std::vector<MaxLoadJob> jobs;
  for (const auto& law : laws) {
    SimConfig cfg;
    cfg.num_servers = 100;
    cfg.fanout = law.model;
    cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
    cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0}};
    cfg.num_queries = bench::queries(120000);
    cfg.seed = 7;

    for (Policy policy : {Policy::kFifo, Policy::kTfEdf}) {
      cfg.policy = policy;
      jobs.push_back(MaxLoadJob{.config = cfg, .opt = opt, .feasible = {}});
    }
  }
  const std::vector<double> max_loads = find_max_loads(jobs);

  std::printf("%-30s %8s %10s %12s %8s\n", "fanout law", "E[kf]", "FIFO",
              "TailGuard", "gain");
  for (std::size_t i = 0; i < std::size(laws); ++i) {
    const double fifo = max_loads[2 * i];
    const double tailguard = max_loads[2 * i + 1];
    std::printf("%-30s %8.2f %9.0f%% %11.0f%% %7.0f%%\n", laws[i].label,
                laws[i].model->mean(), fifo * 100.0, tailguard * 100.0,
                (tailguard / fifo - 1.0) * 100.0);
    report.row()
        .add("fanout_law", laws[i].label)
        .add("mean_fanout", laws[i].model->mean())
        .add("max_load_fifo", fifo)
        .add("max_load_tailguard", tailguard);
  }

  bench::note(
      "measured refinement of the paper's claim: TailGuard never *loses*, "
      "but the size of the gain depends on the task-volume balance across "
      "fanout types. The paper's 1/kf mix equalises the task volume of "
      "each type, so reordering helps a lot (~18%); laws whose task volume "
      "is dominated by the largest fanout (uniform-over-values, Zipf) "
      "leave little small-fanout traffic to reorder around and the gain "
      "shrinks to ~0");
  return 0;
}
