// Extension: placement policies head-to-head — p99 vs offered load.
//
// The paper's simulations place each query's tasks on distinct servers
// chosen uniformly (least_loaded over an unweighted candidate view). This
// bench pits that default against the two informed policies
// (core/placement/policy.h) on the scenarios where placement should matter:
//
//   * heterogeneous speeds — a Masstree cluster where half the servers run
//     1.6x slower (cluster_with_stragglers), so a load-blind placement
//     keeps feeding the slow half;
//   * heavy-tailed service — homogeneous lognormal (sigma = 1.2) and
//     Pareto (alpha = 1.7) clusters, where one straggling task is enough
//     to blow a query's tail and queue depth is a noisy signal of it.
//
// Estimation is kOnlineStreaming: tail_risk ranks candidates by slack
// histograms fed from live enqueues plus per-server service CDFs learned
// from completions, so it needs the online pipeline (kExact never observes
// post-queuing times). Every policy sees the same seed and load grid.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "dist/standard.h"
#include "sim/cluster.h"
#include "sim/experiment.h"
#include "workloads/tailbench.h"

using namespace tailguard;

namespace {

struct Scenario {
  std::string name;
  std::vector<DistributionPtr> per_server;
  double slo_ms;
};

struct PolicyUnderTest {
  std::string name;
  PlacementPolicyOptions options;
};

std::vector<Scenario> make_scenarios(std::size_t num_servers) {
  std::vector<Scenario> scenarios;
  {
    const auto base = make_service_time_model(TailbenchApp::kMasstree);
    scenarios.push_back(
        {"masstree_stragglers",
         cluster_with_stragglers(base, num_servers, 0.5, 1.6), 2.0});
  }
  {
    // Lognormal with sigma=1.2: mean exp(mu + sigma^2/2) ~ 0.62 ms,
    // p99 ~ 4.9 ms — a heavy right tail at sub-ms medians.
    const auto heavy = std::make_shared<Lognormal>(-1.2, 1.2);
    scenarios.push_back(
        {"lognormal_heavy", homogeneous_cluster(heavy, num_servers), 8.0});
  }
  {
    // Pareto alpha=1.7: infinite variance, the adversarial tail case.
    const auto pareto = std::make_shared<Pareto>(Pareto::with_mean(0.5, 1.7));
    scenarios.push_back(
        {"pareto_heavy", homogeneous_cluster(pareto, num_servers), 10.0});
  }
  return scenarios;
}

SimConfig base_config(const Scenario& scenario,
                      const PolicyUnderTest& policy) {
  SimConfig cfg;
  cfg.num_servers = scenario.per_server.size();
  cfg.per_server_service = scenario.per_server;
  // Small fanouts relative to the cluster — the regime where *which* kf
  // servers matters (kf == n degenerates to "all of them" for any policy).
  cfg.fanout = std::make_shared<CategoricalFanout>(
      std::vector<std::uint32_t>{1, 4, 8}, std::vector<double>{0.5, 0.3, 0.2});
  cfg.classes = {{.slo_ms = scenario.slo_ms, .percentile = 99.0}};
  cfg.estimation = EstimationMode::kOnlineStreaming;
  cfg.num_queries = bench::queries(60000);
  cfg.seed = 11;
  cfg.placement_policy = policy.options;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Extension",
               "placement policies head-to-head: p99 vs offered load on "
               "heterogeneous / heavy-tailed clusters");
  bench::JsonReport report("placement_policies");

  const std::size_t num_servers = 40;
  const std::vector<double> loads = {0.3, 0.5, 0.7};

  std::vector<PolicyUnderTest> policies;
  {
    PolicyUnderTest p;
    p.name = "least_loaded";
    p.options.kind = PlacementPolicyKind::kLeastLoaded;
    policies.push_back(p);
    p.name = "pow_d";
    p.options.kind = PlacementPolicyKind::kPowerOfD;
    p.options.power_d = 3;
    policies.push_back(p);
    p.name = "tail_risk";
    p.options.kind = PlacementPolicyKind::kTailRisk;
    policies.push_back(p);
  }

  for (const Scenario& scenario : make_scenarios(num_servers)) {
    bench::section(scenario.name);
    std::printf("%-13s %-6s %10s %10s %12s %12s %14s\n", "policy", "load",
                "p99_ms", "mean_ms", "miss_ratio", "decisions",
                "cand/decision");
    for (const PolicyUnderTest& policy : policies) {
      const SimConfig cfg = base_config(scenario, policy);
      const auto points = sweep_loads(cfg, loads);
      for (const LoadPoint& pt : points) {
        const SimResult& r = pt.result;
        const double cand_per_decision =
            r.placement_decisions > 0
                ? static_cast<double>(r.placement_candidates_considered) /
                      static_cast<double>(r.placement_decisions)
                : 0.0;
        std::printf("%-13s %-6.2f %10.3f %10.3f %12.4f %12llu %14.1f\n",
                    policy.name.c_str(), pt.load,
                    r.class_tail_latency(0), r.class_results.empty()
                        ? 0.0
                        : r.class_results[0].mean_latency_ms,
                    r.task_deadline_miss_ratio,
                    static_cast<unsigned long long>(r.placement_decisions),
                    cand_per_decision);
        report.row()
            .add("scenario", scenario.name)
            .add("policy", policy.name)
            .add("load", pt.load)
            .add("p99_ms", r.class_tail_latency(0))
            .add("mean_ms", r.class_results.empty()
                                ? 0.0
                                : r.class_results[0].mean_latency_ms)
            .add("miss_ratio", r.task_deadline_miss_ratio)
            .add("slo_ms", scenario.slo_ms)
            .add("placement_decisions",
                 static_cast<double>(r.placement_decisions))
            .add("candidates_per_decision", cand_per_decision)
            .add("mean_staleness_ms", r.placement_mean_staleness_ms);
      }
    }
  }

  bench::note(
      "measured shape (see EXPERIMENTS.md): uniform/least_loaded placement "
      "is load-blind in the simulator, so both informed policies beat it on "
      "p99 everywhere it is loaded — by 3-4x at load 0.7 on the straggler "
      "and Pareto clusters; pow_d's d-sample queue-depth ranking is the "
      "strongest overall (depth is a very direct risk signal here), while "
      "tail_risk sits between the two: its slack-histogram ranking "
      "consistently clears least_loaded but pays for scanning all n "
      "candidates and for histogram staleness");
  return 0;
}
