// Runtime testbed: the paper's "TailGuard is also implemented and tested"
// claim, on the in-process multi-threaded runtime instead of Raspberry Pis.
//
// Eight worker threads execute Masstree-shaped sleep tasks scaled to ~5 ms
// means (large relative to OS scheduler noise); two service classes with
// fanouts 2 and 6 are driven by an open-loop Poisson load generator; the
// four queuing policies are compared by measured per-class p99. All numbers
// here are wall-clock.
//
// Caveat: on small or busy machines (the workers sleep, but wakeup latency
// is shared), scheduler jitter adds noise that the simulator does not have;
// this bench demonstrates the real pipeline end-to-end, while the
// quantitative policy comparison lives in the simulation benches.
#include <cstdio>
#include <memory>
#include <thread>

#include "bench_util.h"
#include "runtime/loadgen.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Runtime testbed",
               "threaded TailGuard implementation under real wall-clock "
               "load");
  bench::JsonReport json("runtime_testbed");

  constexpr std::size_t kWorkers = 8;
  constexpr double kServiceScale = 30.0;  // Masstree ms -> ~5 ms sleeps
  const auto service_model = make_service_time_model(TailbenchApp::kMasstree);

  // Mean task cost ~5.3 ms; the 50/50 class mix averages 4 tasks/query, so
  // 8 workers saturate near ~380 q/s. Sweep ~25% and ~50% load.
  const double rates[] = {100.0, 200.0};
  const std::size_t queries = bench::queries(800);

  std::printf(
      "%zu workers (hardware threads: %u); class 0: fanout 2, SLO 60 ms; "
      "class 1: fanout 6, SLO 90 ms; %zu queries per point\n",
      kWorkers, std::thread::hardware_concurrency(), queries);
  std::printf("%-10s", "policy");
  for (double r : rates) std::printf("     %6.0f q/s (I p99 | II p99 | miss)", r);
  std::printf("\n");

  for (Policy policy :
       {Policy::kFifo, Policy::kPriq, Policy::kTEdf, Policy::kTfEdf}) {
    std::printf("%-10s", to_string(policy));
    for (double rate : rates) {
      ServiceOptions opt;
      opt.num_workers = kWorkers;
      opt.policy = policy;
      opt.classes = {{.slo_ms = 60.0, .percentile = 99.0},
                     {.slo_ms = 90.0, .percentile = 99.0}};
      TailGuardService service(opt);

      // Offline estimation: what a task's post-queuing time looks like.
      Rng profile_rng(17);
      std::vector<double> profile(3000);
      for (auto& x : profile)
        x = kServiceScale * service_model->sample(profile_rng);
      service.seed_profile(profile);

      LoadGenOptions lg;
      lg.rate_qps = rate;
      lg.num_queries = queries;
      lg.seed = 7;
      const auto report =
          run_load(service, lg, [&](Rng& rng) {
            LoadGenQuery q;
            q.cls = rng.bernoulli(0.5) ? 0 : 1;
            q.tasks.resize(q.cls == 0 ? 2 : 6);
            for (auto& t : q.tasks)
              t.simulated_service_ms =
                  kServiceScale * service_model->sample(rng);
            return q;
          });
      const auto* c0 = report.find_class(0);
      const auto* c1 = report.find_class(1);
      std::printf("      %7.1f ms | %7.1f ms | %4.1f%%",
                  c0 != nullptr ? c0->p99_ms : 0.0,
                  c1 != nullptr ? c1->p99_ms : 0.0,
                  100.0 * report.deadline_miss_ratio);
      std::fflush(stdout);
      json.row()
          .add("policy", to_string(policy))
          .add("rate_qps", rate)
          .add("p99_class1_ms", c0 != nullptr ? c0->p99_ms : 0.0)
          .add("p99_class2_ms", c1 != nullptr ? c1->p99_ms : 0.0)
          .add("deadline_miss_ratio", report.deadline_miss_ratio);
    }
    std::printf("\n");
  }

  bench::note(
      "expected shape: all policies keep the SLOs at these moderate loads; "
      "the pipeline (deadline computation, EDF queues, online CDF updates, "
      "miss accounting) runs end-to-end on real threads and real clocks. "
      "See fig5/fig6 for the controlled policy comparison");
  return 0;
}
