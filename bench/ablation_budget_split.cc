// Ablation for the paper's footnote 4: assigning the *same* pre-dequeuing
// budget to every task of a query minimises resource demand. We jitter the
// per-task ordering budgets (mean preserved) and measure the maximum load
// that still meets the SLO: more jitter should never help, and generally
// hurts.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Ablation (footnote 4)",
               "equal vs jittered per-task budgets under TF-EDFQ");

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0}};
  cfg.policy = Policy::kTfEdf;
  cfg.num_queries = bench::queries(120000);
  cfg.seed = 7;

  MaxLoadOptions opt;
  opt.tolerance = 0.01;

  bench::JsonReport report("ablation_budget_split");
  const std::vector<double> jitters = {0.0, 0.25, 0.5, 1.0, 2.0};
  std::vector<MaxLoadJob> jobs;
  for (double jitter : jitters) {
    MaxLoadJob job;
    job.config = cfg;
    job.config.task_budget_jitter = jitter;
    job.opt = opt;
    jobs.push_back(std::move(job));
  }
  const std::vector<double> max_loads = find_max_loads(jobs);

  std::printf("%-22s %12s\n", "task budget jitter", "max load");
  for (std::size_t i = 0; i < jitters.size(); ++i) {
    std::printf("+/- %3.0f%% of budget    %11.1f%%\n", jitters[i] * 100.0,
                max_loads[i] * 100.0);
    report.row().add("jitter", jitters[i]).add("max_load", max_loads[i]);
  }

  bench::note(
      "expected shape: small jitter is statistically flat (the max-load "
      "search has ~+/-2 point noise at p99), but beyond ~+/-50% of the "
      "budget the max load collapses — empirical support for footnote 4's "
      "equal-budget optimality argument");
  return 0;
}
