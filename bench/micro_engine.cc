// Microbenchmarks of the two execution engines: discrete-event simulator
// throughput (tasks simulated per second) and threaded-runtime query
// round-trip throughput.
#include <benchmark/benchmark.h>

#include "runtime/service.h"
#include "sim/experiment.h"
#include "workloads/tailbench.h"

namespace tailguard {
namespace {

void BM_SimulatorThroughput(benchmark::State& state, Policy policy) {
  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.policy = policy;
  cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0}};
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.num_queries = 20000;
  set_load(cfg, 0.5);
  std::uint64_t tasks = 0;
  for (auto _ : state) {
    cfg.seed++;
    const SimResult r = run_simulation(cfg);
    tasks += r.tasks_admitted;
    benchmark::DoNotOptimize(r.end_time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tasks));
  state.counters["tasks/s"] = benchmark::Counter(
      static_cast<double>(tasks), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_SimulatorThroughput, fifo, Policy::kFifo)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulatorThroughput, tailguard, Policy::kTfEdf)
    ->Unit(benchmark::kMillisecond);

void BM_RuntimeQueryRoundTrip(benchmark::State& state) {
  ServiceOptions opt;
  opt.num_workers = 4;
  opt.policy = Policy::kTfEdf;
  opt.classes = {{.slo_ms = 50.0, .percentile = 99.0}};
  TailGuardService svc(opt);
  for (auto _ : state) {
    std::vector<ServiceTaskSpec> tasks(4);
    for (auto& t : tasks) t.work = [] {};
    benchmark::DoNotOptimize(svc.submit(0, std::move(tasks)).get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RuntimeQueryRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace tailguard

BENCHMARK_MAIN();
