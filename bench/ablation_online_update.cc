// Ablation for §III.B.2's estimation pipeline (offline single-server
// profile + periodical online updating) on a heterogeneous cluster where
// half the servers are 2x slower than the profiled one.
//
// Two questions, answered separately:
//   1. Does online updating actually learn the heterogeneous CDFs?
//      (micro view: the x99u estimates converge to the slow group's truth)
//   2. Does estimation fidelity matter end-to-end?
//      (macro view: max load and tails across exact / frozen-single-profile
//      / online estimators)
//
// The expected macro answer is "barely" — which is not a bug but the
// paper's own §IV.E observation: the SaS testbed deliberately feeds
// TailGuard *inaccurate shared* CDFs and finds it still wins, because EDF
// ordering only needs the relative deadline order, which survives CDF
// miscalibration that preserves monotonicity.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/deadline.h"
#include "dist/piecewise_linear_quantile.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

namespace {

DistributionPtr make_slow_masstree() {
  const auto base = make_service_time_model(TailbenchApp::kMasstree);
  const auto& plq = dynamic_cast<const PiecewiseLinearQuantile&>(*base);
  std::vector<QuantileAnchor> anchors(plq.anchors().begin(),
                                      plq.anchors().end());
  for (auto& a : anchors) a.q *= 2.0;
  return std::make_shared<PiecewiseLinearQuantile>(
      anchors, "Masstree service time (2x slow)");
}

}  // namespace

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Ablation (§III.B.2)",
               "single-server offline profile + online updating");
  bench::JsonReport report("ablation_online_update");

  const auto fast = make_service_time_model(TailbenchApp::kMasstree);
  const auto slow = make_slow_masstree();

  // --- 1. micro: convergence of the learned CDF --------------------------
  bench::section(
      "online convergence: slow server seeded with the fast profile");
  {
    Rng rng(5);
    auto streaming = std::make_shared<StreamingCdfModel>([&] {
      StreamingCdfModel::Options opt;
      opt.histogram.min_value = 1e-3;
      opt.histogram.max_value = 100.0;
      opt.histogram.buckets_per_decade = 200;
      opt.histogram.decay_every = 20000;  // age out the stale profile
      opt.histogram.decay_factor = 0.5;
      opt.refresh_every = 1000;
      return opt;
    }());
    std::vector<double> profile(20000);
    for (auto& x : profile) x = fast->sample(rng);
    streaming->seed(profile);

    const double truth_1 = slow->quantile(0.99);
    const double truth_100 = slow->quantile(std::pow(0.99, 0.01));
    std::printf("%-24s %14s %14s\n", "observations absorbed",
                "x99u(1) est/true", "x99u(100) est/true");
    std::size_t absorbed = 0;
    for (std::size_t target : {0u, 2000u, 20000u, 100000u, 400000u}) {
      for (; absorbed < target; ++absorbed)
        streaming->observe(slow->sample(rng));
      std::printf("%-24zu %6.3f / %5.3f %8.3f / %5.3f\n", target,
                  streaming->quantile(0.99), truth_1,
                  streaming->quantile(std::pow(0.99, 0.01)), truth_100);
    }
  }

  // --- 2. macro: end-to-end sensitivity ----------------------------------
  constexpr std::size_t kServers = 100;
  SimConfig cfg;
  cfg.num_servers = kServers;
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.per_server_service.assign(kServers, fast);
  for (std::size_t s = kServers / 2; s < kServers; ++s)
    cfg.per_server_service[s] = slow;
  cfg.classes = {{.slo_ms = 1.6, .percentile = 99.0},
                 {.slo_ms = 2.4, .percentile = 99.0}};
  cfg.class_probabilities = {0.5, 0.5};
  cfg.policy = Policy::kTfEdf;
  cfg.num_queries = bench::queries(150000);
  cfg.seed = 7;

  const struct {
    const char* name;
    EstimationMode mode;
  } modes[] = {
      {"exact oracle", EstimationMode::kExact},
      {"single profile, frozen", EstimationMode::kOfflineSingleProfile},
      {"single profile + online", EstimationMode::kOnlineFromSingleProfile},
  };

  MaxLoadOptions opt;
  opt.tolerance = 0.01;

  bench::section("end-to-end sensitivity (50/50 fast/2x-slow cluster)");

  // One engine batch per stage: the three max-load searches, then the three
  // fixed-load tail measurements.
  std::vector<MaxLoadJob> jobs;
  std::vector<SimConfig> at_fixed_load;
  for (const auto& m : modes) {
    cfg.estimation = m.mode;
    jobs.push_back(MaxLoadJob{.config = cfg, .opt = opt, .feasible = {}});
    set_load(cfg, 0.22, opt);
    at_fixed_load.push_back(cfg);
  }
  const std::vector<double> max_loads = find_max_loads(jobs);
  const std::vector<SimResult> results = run_simulations(at_fixed_load);

  std::printf("%-26s %10s %12s %12s\n", "estimator", "max load", "cls0/kf100",
              "cls1/kf100");
  for (std::size_t i = 0; i < std::size(modes); ++i) {
    const SimResult& r = results[i];
    const auto* b = r.find_group(0, 100);
    const auto* c = r.find_group(1, 100);
    std::printf("%-26s %9.1f%% %9.2f ms %9.2f ms\n", modes[i].name,
                max_loads[i] * 100.0, b != nullptr ? b->tail_latency_ms : 0.0,
                c != nullptr ? c->tail_latency_ms : 0.0);
    report.row()
        .add("estimator", modes[i].name)
        .add("max_load", max_loads[i])
        .add("p99_cls0_kf100_ms", b != nullptr ? b->tail_latency_ms : 0.0)
        .add("p99_cls1_kf100_ms", c != nullptr ? c->tail_latency_ms : 0.0);
  }

  bench::note(
      "expected shape: (1) the streaming model converges from the wrong "
      "profile to the slow group's true quantiles within ~10^5 "
      "observations; (2) end-to-end results are nearly identical across "
      "estimators — TF-EDFQ only needs the relative deadline ordering, "
      "matching the paper's §IV.E finding that TailGuard performs well "
      "with inaccurate CDFs");
  return 0;
}
