// Reproduces Table II: mean task service time Tm and the unloaded 99th
// percentile query tail latency x99u(kf) at fanouts 1, 10 and 100, computed
// through the order-statistics engine (Eqs. 1-2).
#include <cstdio>

#include "bench_util.h"
#include "core/order_stats.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Table II",
               "mean service time and unloaded 99th percentile query tail "
               "latency x99u(kf)");

  bench::JsonReport report("table2_unloaded_stats");
  std::printf("%-10s %18s %18s %18s %18s\n", "Bench", "Tm (ms)", "x99u(1)",
              "x99u(10)", "x99u(100)");
  std::printf("%-10s %18s %18s %18s %18s\n", "", "meas / paper",
              "meas / paper", "meas / paper", "meas / paper");

  for (TailbenchApp app : kAllTailbenchApps) {
    const auto stats = paper_stats(app);
    DistributionCdfModel model(make_service_time_model(app));
    const double x1 = homogeneous_unloaded_quantile(model, 1, 0.99);
    const double x10 = homogeneous_unloaded_quantile(model, 10, 0.99);
    const double x100 = homogeneous_unloaded_quantile(model, 100, 0.99);
    std::printf("%-10s %8.3f / %7.3f %8.3f / %7.3f %8.3f / %7.3f %8.3f / %7.3f\n",
                to_string(app).c_str(), model.distribution().mean(),
                stats.mean_service_ms, x1, stats.x99u_1, x10, stats.x99u_10,
                x100, stats.x99u_100);
    report.row()
        .add("workload", to_string(app))
        .add("mean_service_ms", model.distribution().mean())
        .add("x99u_1_ms", x1)
        .add("x99u_10_ms", x10)
        .add("x99u_100_ms", x100);
  }

  bench::note("x99u(kf) = F^{-1}(0.99^{1/kf}) per Eq. 2 (homogeneous cluster)");
  return 0;
}
