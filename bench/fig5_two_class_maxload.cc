// Reproduces Fig. 5: maximum load with two service classes for the Masstree
// workload under (a) Poisson and (b) Pareto arrivals, comparing FIFO, PRIQ,
// T-EDFQ and TailGuard. The lower class SLO is 1.5x the higher class SLO;
// each query picks a class uniformly.
#include <cstdio>

#include "bench_util.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main() {
  bench::title("Figure 5",
               "maximum load with two classes, Masstree (lower-class SLO = "
               "1.5 x higher-class SLO)");

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.class_probabilities = {0.5, 0.5};
  cfg.num_queries = bench::queries(120000);
  cfg.seed = 7;

  MaxLoadOptions opt;
  opt.tolerance = 0.01;

  const Policy policies[] = {Policy::kFifo, Policy::kPriq, Policy::kTEdf,
                             Policy::kTfEdf};

  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kPareto}) {
    cfg.arrival_kind = kind;
    bench::section(kind == ArrivalKind::kPoisson ? "(a) Poisson arrivals"
                                                 : "(b) Pareto arrivals");
    std::printf("%-22s %10s %10s %10s %10s\n", "high-class SLO (ms)", "FIFO",
                "PRIQ", "T-EDFQ", "TailGuard");
    for (double slo : {0.8, 1.0, 1.2}) {
      cfg.classes = {{.slo_ms = slo, .percentile = 99.0},
                     {.slo_ms = 1.5 * slo, .percentile = 99.0}};
      std::printf("%-22.1f", slo);
      for (Policy policy : policies) {
        cfg.policy = policy;
        std::printf(" %9.0f%%", find_max_load(cfg, opt) * 100.0);
      }
      std::printf("\n");
    }
  }

  bench::note(
      "paper: TailGuard gains up to ~80% over FIFO, ~40% over PRIQ and "
      "~22% over T-EDFQ (Poisson); Pareto arrivals lower all max loads by "
      "~2-6 points but preserve the ranking");
  return 0;
}
