// Reproduces Fig. 5: maximum load with two service classes for the Masstree
// workload under (a) Poisson and (b) Pareto arrivals, comparing FIFO, PRIQ,
// T-EDFQ and TailGuard. The lower class SLO is 1.5x the higher class SLO;
// each query picks a class uniformly.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Figure 5",
               "maximum load with two classes, Masstree (lower-class SLO = "
               "1.5 x higher-class SLO)");

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.class_probabilities = {0.5, 0.5};
  cfg.num_queries = bench::queries(120000);
  cfg.seed = 7;

  MaxLoadOptions opt;
  opt.tolerance = 0.01;

  const Policy policies[] = {Policy::kFifo, Policy::kPriq, Policy::kTEdf,
                             Policy::kTfEdf};
  const ArrivalKind kinds[] = {ArrivalKind::kPoisson, ArrivalKind::kPareto};
  const double slos[] = {0.8, 1.0, 1.2};

  // Flatten every (arrival, SLO, policy) search into one engine batch.
  bench::JsonReport report("fig5_two_class_maxload");
  std::vector<MaxLoadJob> jobs;
  for (ArrivalKind kind : kinds) {
    for (double slo : slos) {
      for (Policy policy : policies) {
        MaxLoadJob job;
        job.config = cfg;
        job.config.arrival_kind = kind;
        job.config.classes = {{.slo_ms = slo, .percentile = 99.0},
                              {.slo_ms = 1.5 * slo, .percentile = 99.0}};
        job.config.policy = policy;
        job.opt = opt;
        jobs.push_back(std::move(job));
      }
    }
  }
  const std::vector<double> max_loads = find_max_loads(jobs);

  std::size_t next = 0;
  for (ArrivalKind kind : kinds) {
    bench::section(kind == ArrivalKind::kPoisson ? "(a) Poisson arrivals"
                                                 : "(b) Pareto arrivals");
    std::printf("%-22s %10s %10s %10s %10s\n", "high-class SLO (ms)", "FIFO",
                "PRIQ", "T-EDFQ", "TailGuard");
    for (double slo : slos) {
      std::printf("%-22.1f", slo);
      auto& row = report.row()
                      .add("arrivals", kind == ArrivalKind::kPoisson
                                           ? "poisson"
                                           : "pareto")
                      .add("high_class_slo_ms", slo);
      for (Policy policy : policies) {
        const double max_load = max_loads[next++];
        std::printf(" %9.0f%%", max_load * 100.0);
        row.add(to_string(policy), max_load);
      }
      std::printf("\n");
    }
  }

  bench::note(
      "paper: TailGuard gains up to ~80% over FIFO, ~40% over PRIQ and "
      "~22% over T-EDFQ (Poisson); Pareto arrivals lower all max loads by "
      "~2-6 points but preserve the ranking");
  return 0;
}
