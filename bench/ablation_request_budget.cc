// Ablation for the request-level decomposition (paper §III.B remark,
// Eq. 7). A request is M queries issued sequentially with a request-level
// tail latency SLO; the queries have *heterogeneous* fanouts, which is
// exactly the case where the budget-assignment question the paper leaves
// open matters. Three assignments are compared by the maximum load at which
// the request p99 still meets the SLO:
//
//   naive        — decompose the SLO per query first (SLO/M each), then
//                  budget_i = SLO/M - x_p^u(kf_i): ignores Eq. 7's
//                  sub-additivity and under-budgets the high-fanout query
//                  (for tail-heavy workloads it can even go negative);
//   Eq.7 equal   — T_b^R = SLO - x_p^{Ru}, split equally;
//   Eq.7 prop.   — same total, split ∝ x_p^u(kf_i).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/request.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Ablation (Eq. 7 extension)",
               "request-level budget decomposition strategies");
  bench::JsonReport report("ablation_request_budget");

  const std::vector<std::uint32_t> fanouts = {1, 10, 100, 10};
  const auto kM = fanouts.size();
  const double request_slo = 4.0;  // ms, p99

  const auto service = make_service_time_model(TailbenchApp::kMasstree);
  DistributionCdfModel model(service);

  // Unloaded quantiles per query and for the whole request.
  std::vector<RequestQuerySpec> qspecs;
  double sum_xu = 0.0;
  for (std::uint32_t kf : fanouts) {
    qspecs.push_back(RequestQuerySpec{.fanout = kf, .model = &model});
    sum_xu += homogeneous_unloaded_quantile(model, kf, 0.99);
  }
  Rng mc_rng(123);
  const double x_r =
      estimate_request_unloaded_quantile(qspecs, 0.99, mc_rng, 200000);

  bench::section("decomposition");
  std::printf("query fanouts:                          {1, 10, 100, 10}\n");
  std::printf("sum of per-query unloaded p99:          %.3f ms\n", sum_xu);
  std::printf("request unloaded p99 x99uR (Eq. 7 MC):  %.3f ms  "
              "(sub-additive: %.0f%% of the sum)\n",
              x_r, 100.0 * x_r / sum_xu);
  const double total_budget_ms = request_slo - x_r;
  std::printf("request budget T_b^R = %.1f - %.3f =     %.3f ms\n",
              request_slo, x_r, total_budget_ms);

  // Budget assignments.
  std::vector<TimeMs> naive;
  for (std::uint32_t kf : fanouts)
    naive.push_back(request_slo / static_cast<double>(kM) -
                    homogeneous_unloaded_quantile(model, kf, 0.99));
  const auto equal =
      split_request_budget(total_budget_ms, qspecs, 0.99, BudgetSplit::kEqual);
  const auto prop = split_request_budget(total_budget_ms, qspecs, 0.99,
                                         BudgetSplit::kProportionalToUnloaded);

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.classes = {{.slo_ms = request_slo, .percentile = 99.0}};
  cfg.service_time = service;
  cfg.policy = Policy::kTfEdf;
  cfg.num_queries = bench::queries(20000);  // requests
  cfg.seed = 7;

  // Load conversion: one request = sum(fanouts) tasks of mean Tm each.
  double tasks_per_request = 0.0;
  for (std::uint32_t kf : fanouts) tasks_per_request += kf;
  MaxLoadOptions opt;
  opt.tolerance = 0.01;
  opt.work_per_query = tasks_per_request * service->mean();

  bench::section("max load meeting the request p99 SLO");
  std::printf("%-34s %34s %12s\n", "strategy", "budgets per query (ms)",
              "max load");
  const struct {
    const char* name;
    std::vector<TimeMs> budgets;
  } strategies[] = {
      {"naive per-query decomposition", naive},
      {"Eq. 7, equal split", equal},
      {"Eq. 7, proportional split", prop},
  };
  // The engine's custom feasibility predicate replaces the local bisection:
  // the search keys on the request-level SLO instead of per-class SLOs.
  std::vector<MaxLoadJob> jobs;
  for (const auto& s : strategies) {
    cfg.request = SimConfig::RequestSpec{
        .queries_per_request = kM,
        .query_budgets = s.budgets,
        .query_fanouts = fanouts,
        .request_slo = {.slo_ms = request_slo, .percentile = 99.0}};
    jobs.push_back(MaxLoadJob{
        .config = cfg,
        .opt = opt,
        .feasible = [](const SimResult& r) { return r.request_slo_met; }});
  }
  const std::vector<double> max_loads = find_max_loads(jobs);

  report.row()
      .add("request_unloaded_p99_ms", x_r)
      .add("sum_per_query_unloaded_p99_ms", sum_xu)
      .add("total_budget_ms", total_budget_ms);
  for (std::size_t i = 0; i < std::size(strategies); ++i) {
    const auto& s = strategies[i];
    std::printf("%-34s  {%6.3f,%6.3f,%6.3f,%6.3f} %11.1f%%\n", s.name,
                s.budgets[0], s.budgets[1], s.budgets[2], s.budgets[3],
                max_loads[i] * 100.0);
    report.row().add("strategy", s.name).add("max_load", max_loads[i]);
  }

  bench::note(
      "expected shape: the naive decomposition starves the fanout-100 "
      "query (it gets the smallest budget); Eq. 7 recovers the "
      "sub-additive slack; the proportional split directs more of it to "
      "the expensive query and sustains the highest load — evidence for "
      "the paper's open future-work question");
  return 0;
}
