// Reproduces Fig. 7: TailGuard with query admission control on the Fig. 6
// Masstree setup (two classes, fixed fanout 100).
//
// Following the paper's procedure (§IV.D): first run TailGuard *without*
// admission control to find the maximum acceptable load and the task
// queuing-deadline violation ratio R_th at that load; then enable admission
// control with that R_th (window = 1000 queries / 100 000 tasks) and sweep
// the offered load, reporting accepted/rejected load and per-class p99.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Figure 7",
               "TailGuard with query admission control (Masstree, 2 "
               "classes, kf=100)");
  bench::JsonReport report("fig7_admission_control");

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout = std::make_shared<FixedFanout>(100);
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0},
                 {.slo_ms = 1.5, .percentile = 99.0}};
  cfg.class_probabilities = {0.5, 0.5};
  cfg.policy = Policy::kTfEdf;
  cfg.num_queries = bench::queries(30000);
  cfg.seed = 3;

  // --- step 1: calibrate R_th at the maximum acceptable load ---------------
  MaxLoadOptions opt;
  opt.tolerance = 0.01;
  const double max_load = find_max_load(cfg, opt);
  set_load(cfg, max_load, opt);
  const SimResult at_max = run_simulation(cfg);
  const double r_th = at_max.task_deadline_miss_ratio;
  bench::section("calibration");
  std::printf("maximum acceptable load: %.1f%%   (paper: ~54%%)\n",
              max_load * 100.0);
  std::printf("task deadline violation ratio there (R_th): %.2f%%   "
              "(paper: 1.7%%)\n",
              r_th * 100.0);

  // --- step 2: sweep offered load with admission control -------------------
  // The paper states a 1000-query (100 000-task) window; with our shorter
  // simulated horizon that window reacts too slowly and over-rejects, so the
  // faithful-mechanism run here uses a 100-query window (same R_th). The
  // window-length sensitivity itself is ablation_admission_modes.
  bench::section("admission-control sweep (window = 100 queries)");
  report.row()
      .add("max_acceptable_load", max_load)
      .add("r_th", r_th);

  const std::vector<double> loads = {0.45, 0.50, 0.55, 0.60, 0.65, 0.70};
  std::vector<SimConfig> configs;
  for (double load : loads) {
    set_load(cfg, load, opt);
    cfg.admission =
        AdmissionOptions{.window_tasks = 100000,
                         .window_ms = 100.0 / cfg.arrival_rate,
                         .miss_ratio_threshold = r_th,
                         .mode = AdmissionMode::kOnOff};
    configs.push_back(cfg);
  }
  const std::vector<SimResult> results = run_simulations(configs);

  std::printf("%-12s %-12s %-12s %-14s %-14s %-9s\n", "offered", "accepted",
              "rejected-q", "p99 class-I", "p99 class-II", "SLOs met");
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const double load = loads[i];
    const SimResult& r = results[i];
    const double accepted = load * r.task_admit_fraction();
    std::printf("%10.0f%% %10.1f%% %12lu %11.2f ms %11.2f ms %9s\n",
                load * 100.0, accepted * 100.0,
                static_cast<unsigned long>(r.queries_rejected),
                r.class_tail_latency(0), r.class_tail_latency(1),
                bench::check_mark(r.all_slos_met(0.02)));
    report.row()
        .add("offered_load", load)
        .add("accepted_load", accepted)
        .add("queries_rejected", static_cast<double>(r.queries_rejected))
        .add("p99_class1_ms", r.class_tail_latency(0))
        .add("p99_class2_ms", r.class_tail_latency(1))
        .add("slos_met", r.all_slos_met(0.02));
  }

  bench::note(
      "expected shape: below the max acceptable load nothing is rejected; "
      "above it the accepted load stays within a few points of the max "
      "acceptable load and both classes stay at/near their SLOs (control "
      "delay causes the residual gap the paper also reports). See "
      "ablation_admission_modes for the proportional-throttling extension "
      "that tightens high-overload behaviour.");
  return 0;
}
