// Wall-clock speedup of the parallel experiment engine vs thread count, on
// a Fig. 4-style single-class max-load search (the harness's dominant
// workload shape). The reported max loads must be identical at every
// thread count — the engine's determinism contract — so the only thing
// that changes with TAILGUARD_THREADS is how long the search takes.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Parallel speedup",
               "fig4-style max-load search wall clock vs thread count");
  bench::JsonReport report("parallel_speedup");

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0}};
  cfg.num_queries = bench::queries(60000);
  cfg.seed = 7;

  MaxLoadOptions opt;
  opt.tolerance = 0.01;

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::size_t configured = ThreadPool::configured_threads();
  if (configured > thread_counts.back()) thread_counts.push_back(configured);

  std::printf("%-10s %12s %12s %12s %12s\n", "threads", "wall (ms)",
              "speedup", "FIFO max", "TailGd max");

  double base_ms = 0.0;
  double ref_fifo = -1.0, ref_tailguard = -1.0;
  bool identical = true;
  for (std::size_t threads : thread_counts) {
    ThreadPool pool(threads);
    const double t0 = now_ms();
    cfg.policy = Policy::kFifo;
    const double fifo = find_max_load_speculative(cfg, opt, 0, &pool);
    cfg.policy = Policy::kTfEdf;
    const double tailguard = find_max_load_speculative(cfg, opt, 0, &pool);
    const double wall = now_ms() - t0;

    if (ref_fifo < 0.0) {
      base_ms = wall;
      ref_fifo = fifo;
      ref_tailguard = tailguard;
    } else if (fifo != ref_fifo || tailguard != ref_tailguard) {
      identical = false;
    }
    const double speedup = wall > 0.0 ? base_ms / wall : 0.0;
    std::printf("%-10zu %12.0f %11.2fx %11.1f%% %11.1f%%\n", threads, wall,
                speedup, fifo * 100.0, tailguard * 100.0);
    report.row()
        .add("threads", static_cast<double>(threads))
        .add("wall_ms", wall)
        .add("speedup_vs_1", speedup)
        .add("max_load_fifo", fifo)
        .add("max_load_tailguard", tailguard);
  }

  std::printf("\nmax loads identical across thread counts: %s\n",
              bench::check_mark(identical));
  report.row().add("identical_across_threads", identical);
  if (!identical) {
    std::fprintf(stderr,
                 "determinism violation: max loads differ across thread "
                 "counts\n");
    return 1;
  }

  bench::note(
      "expected shape: near-linear scaling up to the speculative search's "
      "parallelism (2^levels - 1 concurrent probes per round plus the "
      "FIFO/TailGuard searches overlapping nothing here); on a 1-core "
      "machine all rows take the same time, by design");
  return 0;
}
