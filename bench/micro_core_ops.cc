// Microbenchmarks backing the paper's "TailGuard is lightweight" claim
// (§III.B.2): task-queue operations for all four policies, deadline
// estimation (cached and uncached, homogeneous and heterogeneous), and the
// online-update path.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/admission.h"
#include "core/deadline.h"
#include "core/order_stats.h"
#include "core/policy.h"
#include "dist/standard.h"
#include "workloads/tailbench.h"

namespace tailguard {
namespace {

// ------------------------------------------------------- queue push+pop

void BM_QueuePushPop(benchmark::State& state, Policy policy) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto queue = make_task_queue(policy, 4);
  Rng rng(42);
  // Pre-fill to the target depth.
  std::vector<QueuedTask> seed(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    seed[i].task = i;
    seed[i].cls = static_cast<ClassId>(rng.uniform_index(4));
    seed[i].deadline = rng.uniform(0.0, 1000.0);
    queue->push(seed[i]);
  }
  QueuedTask t;
  t.cls = 1;
  for (auto _ : state) {
    t.deadline = rng.uniform(0.0, 1000.0);
    queue->push(t);
    benchmark::DoNotOptimize(queue->pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK_CAPTURE(BM_QueuePushPop, fifo, Policy::kFifo)->Arg(100)->Arg(10000);
BENCHMARK_CAPTURE(BM_QueuePushPop, priq, Policy::kPriq)->Arg(100)->Arg(10000);
BENCHMARK_CAPTURE(BM_QueuePushPop, tf_edf, Policy::kTfEdf)
    ->Arg(100)
    ->Arg(10000);

// --------------------------------------------------- deadline estimation

void BM_DeadlineCached(benchmark::State& state) {
  auto model = std::make_shared<DistributionCdfModel>(
      make_service_time_model(TailbenchApp::kMasstree));
  auto est = DeadlineEstimator::homogeneous(model, 100);
  const ClassId cls = est.add_class({.slo_ms = 1.0, .percentile = 99.0});
  std::vector<ServerId> servers(100);
  for (ServerId s = 0; s < 100; ++s) servers[s] = s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.deadline(1.0, cls, servers));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DeadlineCached);

void BM_HomogeneousQuantileUncached(benchmark::State& state) {
  DistributionCdfModel model(
      make_service_time_model(TailbenchApp::kMasstree));
  const auto kf = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(homogeneous_unloaded_quantile(model, kf, 0.99));
  }
}
BENCHMARK(BM_HomogeneousQuantileUncached)->Arg(1)->Arg(100)->Arg(10000);

void BM_HeterogeneousQuantileUncached(benchmark::State& state) {
  DistributionCdfModel a(std::make_shared<Exponential>(1.0));
  DistributionCdfModel b(std::make_shared<Exponential>(5.0));
  DistributionCdfModel c(std::make_shared<Exponential>(0.2));
  const CdfModel* models[] = {&a, &b, &c};
  const std::uint32_t counts[] = {8, 8, 16};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heterogeneous_unloaded_quantile(models, counts, 0.99));
  }
}
BENCHMARK(BM_HeterogeneousQuantileUncached);

// ---------------------------------------------------------- online update

void BM_StreamingObserve(benchmark::State& state) {
  StreamingCdfModel model;
  Rng rng(7);
  for (auto _ : state) {
    model.observe(rng.uniform(0.1, 10.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamingObserve);

void BM_AdmissionRecordAndCheck(benchmark::State& state) {
  AdmissionController ctl({.window_tasks = 100000,
                           .window_ms = 1000.0,
                           .miss_ratio_threshold = 0.017});
  Rng rng(7);
  TimeMs now = 0.0;
  for (auto _ : state) {
    now += 0.01;
    ctl.record_task_dequeue(now, rng.bernoulli(0.02));
    benchmark::DoNotOptimize(ctl.should_admit(now, rng.uniform()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AdmissionRecordAndCheck);

}  // namespace
}  // namespace tailguard

BENCHMARK_MAIN();
