// Microbenchmarks backing the paper's "TailGuard is lightweight" claim
// (§III.B.2): task-queue operations for all four policies, deadline
// estimation (cached and uncached, homogeneous and heterogeneous), and the
// online-update path.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/admission.h"
#include "core/deadline.h"
#include "core/order_stats.h"
#include "core/policy.h"
#include "dist/standard.h"
#include "workloads/tailbench.h"

namespace tailguard {
namespace {

// ------------------------------------------------------- queue push+pop

void BM_QueuePushPop(benchmark::State& state, Policy policy) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto queue = make_task_queue(policy, 4);
  Rng rng(42);
  // Pre-fill to the target depth.
  std::vector<QueuedTask> seed(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    seed[i].task = i;
    seed[i].cls = static_cast<ClassId>(rng.uniform_index(4));
    seed[i].deadline = rng.uniform(0.0, 1000.0);
    queue->push(seed[i]);
  }
  QueuedTask t;
  t.cls = 1;
  for (auto _ : state) {
    t.deadline = rng.uniform(0.0, 1000.0);
    queue->push(t);
    benchmark::DoNotOptimize(queue->pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

BENCHMARK_CAPTURE(BM_QueuePushPop, fifo, Policy::kFifo)->Arg(100)->Arg(10000);
BENCHMARK_CAPTURE(BM_QueuePushPop, priq, Policy::kPriq)->Arg(100)->Arg(10000);
BENCHMARK_CAPTURE(BM_QueuePushPop, tf_edf, Policy::kTfEdf)
    ->Arg(100)
    ->Arg(10000);

// ------------------------------------------ EDF backends: wheel vs heap
//
// Steady-state push+pop against both pop-order-identical EDF structures,
// swept across queue depth (1e2..1e6) and deadline distribution:
//   * uniform    — deadlines spread over ~4000 wheel ticks; the calendar
//                  queue's O(1) bucketing should shine as depth grows,
//   * clustered  — deadlines pile up around a few class SLOs (the realistic
//                  TailGuard shape: every class maps arrivals to t0 + SLO),
//   * same_bucket — adversarial: every deadline lands inside ONE 0.25 ms
//                  wheel tick, collapsing the wheel to a single slot whose
//                  in-slot ordering does all the work. This is the wheel's
//                  worst case and bounds the regression vs the heap.

enum class DeadlinePattern { kUniform, kClustered, kSameBucket };

double draw_deadline(Rng& rng, DeadlinePattern pattern) {
  switch (pattern) {
    case DeadlinePattern::kUniform:
      return rng.uniform(0.0, 1000.0);
    case DeadlinePattern::kClustered: {
      static constexpr double kSlos[] = {10.0, 50.0, 200.0};
      return kSlos[rng.uniform_index(3)] + rng.uniform(0.0, 2.0);
    }
    case DeadlinePattern::kSameBucket:
      // All inside one kDefaultTickMs=0.25 bucket.
      return 500.0 + rng.uniform(0.0, 0.2);
  }
  return 0.0;
}

void BM_EdfQueueSweep(benchmark::State& state, EdfQueueImpl impl,
                      DeadlinePattern pattern) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto queue = make_task_queue(Policy::kTfEdf, 1, impl);
  Rng rng(42);
  std::vector<QueuedTask> seed(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    seed[i].task = i;
    seed[i].deadline = draw_deadline(rng, pattern);
    queue->push(seed[i]);
  }
  QueuedTask t;
  for (auto _ : state) {
    t.deadline = draw_deadline(rng, pattern);
    queue->push(t);
    benchmark::DoNotOptimize(queue->pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

#define TG_EDF_SWEEP(name, impl, pattern)                        \
  BENCHMARK_CAPTURE(BM_EdfQueueSweep, name, impl, pattern)       \
      ->RangeMultiplier(10)                                      \
      ->Range(100, 1000000)

TG_EDF_SWEEP(wheel_uniform, EdfQueueImpl::kTimerWheel,
             DeadlinePattern::kUniform);
TG_EDF_SWEEP(heap_uniform, EdfQueueImpl::kBinaryHeap,
             DeadlinePattern::kUniform);
TG_EDF_SWEEP(wheel_clustered, EdfQueueImpl::kTimerWheel,
             DeadlinePattern::kClustered);
TG_EDF_SWEEP(heap_clustered, EdfQueueImpl::kBinaryHeap,
             DeadlinePattern::kClustered);
TG_EDF_SWEEP(wheel_same_bucket, EdfQueueImpl::kTimerWheel,
             DeadlinePattern::kSameBucket);
TG_EDF_SWEEP(heap_same_bucket, EdfQueueImpl::kBinaryHeap,
             DeadlinePattern::kSameBucket);

#undef TG_EDF_SWEEP

// --------------------------------------------------- deadline estimation

void BM_DeadlineCached(benchmark::State& state) {
  auto model = std::make_shared<DistributionCdfModel>(
      make_service_time_model(TailbenchApp::kMasstree));
  auto est = DeadlineEstimator::homogeneous(model, 100);
  const ClassId cls = est.add_class({.slo_ms = 1.0, .percentile = 99.0});
  std::vector<ServerId> servers(100);
  for (ServerId s = 0; s < 100; ++s) servers[s] = s;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.deadline(1.0, cls, servers));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DeadlineCached);

void BM_HomogeneousQuantileUncached(benchmark::State& state) {
  DistributionCdfModel model(
      make_service_time_model(TailbenchApp::kMasstree));
  const auto kf = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(homogeneous_unloaded_quantile(model, kf, 0.99));
  }
}
BENCHMARK(BM_HomogeneousQuantileUncached)->Arg(1)->Arg(100)->Arg(10000);

void BM_HeterogeneousQuantileUncached(benchmark::State& state) {
  DistributionCdfModel a(std::make_shared<Exponential>(1.0));
  DistributionCdfModel b(std::make_shared<Exponential>(5.0));
  DistributionCdfModel c(std::make_shared<Exponential>(0.2));
  const CdfModel* models[] = {&a, &b, &c};
  const std::uint32_t counts[] = {8, 8, 16};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heterogeneous_unloaded_quantile(models, counts, 0.99));
  }
}
BENCHMARK(BM_HeterogeneousQuantileUncached);

// ---------------------------------------------------------- online update

void BM_StreamingObserve(benchmark::State& state) {
  StreamingCdfModel model;
  Rng rng(7);
  for (auto _ : state) {
    model.observe(rng.uniform(0.1, 10.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StreamingObserve);

void BM_AdmissionRecordAndCheck(benchmark::State& state) {
  AdmissionController ctl({.window_tasks = 100000,
                           .window_ms = 1000.0,
                           .miss_ratio_threshold = 0.017});
  Rng rng(7);
  TimeMs now = 0.0;
  for (auto _ : state) {
    now += 0.01;
    ctl.record_task_dequeue(now, rng.bernoulli(0.02));
    benchmark::DoNotOptimize(ctl.should_admit(now, rng.uniform()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AdmissionRecordAndCheck);

}  // namespace
}  // namespace tailguard

BENCHMARK_MAIN();
