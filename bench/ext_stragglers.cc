// Extension: TailGuard under stragglers.
//
// The paper motivates fanout-awareness with outliers ("a small number of
// outliers can significantly impact the query tail latency", §I) but its
// simulations use homogeneous clusters. Here a fraction of servers run 2x
// slower; the deadline estimator sees their true CDFs (heterogeneous
// Eqs. 1-2), so a query's budget depends on *which* servers it touches.
// FIFO and T-EDFQ cannot use that information.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/cluster.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Extension", "max load with straggler servers (2x slower)");
  bench::JsonReport report("ext_stragglers");

  const auto base = make_service_time_model(TailbenchApp::kMasstree);

  MaxLoadOptions opt;
  opt.tolerance = 0.015;

  const std::vector<double> fractions = {0.0, 0.02, 0.05, 0.10};
  const Policy policies[] = {Policy::kFifo, Policy::kTEdf, Policy::kTfEdf};
  std::vector<MaxLoadJob> jobs;
  for (double fraction : fractions) {
    SimConfig cfg;
    cfg.num_servers = 100;
    cfg.per_server_service =
        cluster_with_stragglers(base, cfg.num_servers, fraction, 2.0);
    cfg.fanout =
        std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
    // Two classes so T-EDFQ does not degenerate to FIFO.
    cfg.classes = {{.slo_ms = 2.0, .percentile = 99.0},
                   {.slo_ms = 3.0, .percentile = 99.0}};
    cfg.class_probabilities = {0.5, 0.5};
    cfg.num_queries = bench::queries(80000);
    cfg.seed = 7;

    for (Policy policy : policies) {
      cfg.policy = policy;
      jobs.push_back(MaxLoadJob{.config = cfg, .opt = opt, .feasible = {}});
    }
  }
  const std::vector<double> max_loads = find_max_loads(jobs);

  std::printf("%-18s %10s %10s %10s %12s\n", "stragglers", "FIFO", "T-EDFQ",
              "TailGuard", "TG vs T-EDFQ");
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const double* loads = &max_loads[3 * i];
    std::printf("%15.0f%% %9.0f%% %9.0f%% %9.0f%% %11.0f%%\n",
                fractions[i] * 100.0, loads[0] * 100.0, loads[1] * 100.0,
                loads[2] * 100.0, (loads[2] / loads[1] - 1.0) * 100.0);
    report.row()
        .add("straggler_fraction", fractions[i])
        .add("max_load_fifo", loads[0])
        .add("max_load_tedf", loads[1])
        .add("max_load_tailguard", loads[2]);
  }

  bench::note(
      "expected shape: stragglers cost every policy capacity, but "
      "TailGuard keeps an edge because queries touching slow servers get "
      "their (earlier) deadlines from the true per-server CDFs");
  return 0;
}
