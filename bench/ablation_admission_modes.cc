// Ablation: admission-control variants under overload.
//
// Compares the paper's on/off threshold controller against the
// proportional-throttling extension (see core/admission.h) and two window
// lengths, on the Fig. 7 setup. The miss-ratio signal lags the overload by
// one queue-drain time, so the window length and the rejection law govern
// the oscillation amplitude.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Ablation", "admission control variants under overload");

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout = std::make_shared<FixedFanout>(100);
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0},
                 {.slo_ms = 1.5, .percentile = 99.0}};
  cfg.class_probabilities = {0.5, 0.5};
  cfg.policy = Policy::kTfEdf;
  cfg.num_queries = bench::queries(30000);
  cfg.seed = 3;

  // Calibrated threshold (see fig7_admission_control).
  MaxLoadOptions opt;
  opt.tolerance = 0.01;
  const double max_load = find_max_load(cfg, opt);
  set_load(cfg, max_load, opt);
  const double r_th = run_simulation(cfg).task_deadline_miss_ratio;
  std::printf("calibrated R_th = %.2f%% at max acceptable load %.1f%%\n",
              r_th * 100.0, max_load * 100.0);

  const struct {
    const char* name;
    AdmissionMode mode;
    double window_queries;
    double gain;
  } variants[] = {
      {"on/off, window 1000 queries", AdmissionMode::kOnOff, 1000.0, 0.0},
      {"on/off, window 100 queries", AdmissionMode::kOnOff, 100.0, 0.0},
      {"proportional g=3, window 100 q", AdmissionMode::kProportional, 100.0,
       3.0},
      {"proportional g=3, window 1000 q", AdmissionMode::kProportional,
       1000.0, 3.0},
  };

  const std::vector<double> loads = {0.55, 0.60, 0.70};
  bench::JsonReport report("ablation_admission_modes");
  std::vector<SimConfig> configs;
  for (const auto& v : variants) {
    for (double load : loads) {
      set_load(cfg, load, opt);
      cfg.admission =
          AdmissionOptions{.window_tasks = 100000,
                           .window_ms = v.window_queries / cfg.arrival_rate,
                           .miss_ratio_threshold = r_th,
                           .mode = v.mode,
                           .proportional_gain = v.gain};
      configs.push_back(cfg);
    }
  }
  const std::vector<SimResult> results = run_simulations(configs);

  std::size_t next = 0;
  for (const auto& v : variants) {
    bench::section(v.name);
    std::printf("%-10s %-12s %-14s %-14s\n", "offered", "accepted",
                "p99 class-I", "p99 class-II");
    for (double load : loads) {
      const SimResult& r = results[next++];
      std::printf("%8.0f%% %10.1f%% %11.2f ms %11.2f ms\n", load * 100.0,
                  load * r.task_admit_fraction() * 100.0,
                  r.class_tail_latency(0), r.class_tail_latency(1));
      report.row()
          .add("variant", v.name)
          .add("offered_load", load)
          .add("accepted_load", load * r.task_admit_fraction())
          .add("p99_class1_ms", r.class_tail_latency(0))
          .add("p99_class2_ms", r.class_tail_latency(1));
    }
  }

  bench::note(
      "expected shape: the long on/off window over-rejects (accepted load "
      "decays with offered load); shorter windows and proportional "
      "throttling hold the accepted load near the max acceptable level "
      "with milder SLO excursions");
  return 0;
}
