// Reproduces Fig. 9: the heterogeneous Sensing-as-a-Service testbed.
//   (a) per-cluster task post-queuing-time statistics;
//   (b,c,d) p99 query tail latency of classes A/B/C vs Server-room cluster
//   load for FIFO, PRIQ, T-EDFQ and TailGuard, plus max acceptable loads.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sas/testbed.h"
#include "sim/parallel.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Figure 9", "Sensing-as-a-Service heterogeneous testbed");

  // --- (a) cluster CDF statistics ------------------------------------------
  bench::section("(a) per-cluster post-queuing time statistics (ms)");
  std::printf("%-14s %18s %18s %18s\n", "cluster", "mean (meas/paper)",
              "p95 (meas/paper)", "p99 (meas/paper)");
  for (SasCluster cluster : kAllSasClusters) {
    const auto model = make_sas_cluster_model(cluster);
    const auto stats = sas_paper_stats(cluster);
    std::printf("%-14s %8.0f / %6.0f %9.0f / %6.0f %9.0f / %6.0f\n",
                to_string(cluster), model->mean(), stats.mean_ms,
                model->quantile(0.95), stats.p95_ms, model->quantile(0.99),
                stats.p99_ms);
  }

  // --- (b,c,d) per-class tails vs Server-room load --------------------------
  const auto opt = [] {
    auto o = sas_load_options();
    o.tolerance = 0.01;
    return o;
  }();
  const std::size_t n = bench::queries(60000);
  const Policy policies[] = {Policy::kFifo, Policy::kPriq, Policy::kTEdf,
                             Policy::kTfEdf};
  const char* class_names[] = {"A (SLO 800 ms, fanout 1)",
                               "B (SLO 1300 ms, fanout 4)",
                               "C (SLO 1800 ms, fanout 32)"};

  // Each (policy, load) point is simulated once and shared across the
  // three per-class panels; the whole grid runs as one engine batch.
  const double loads[] = {0.30, 0.40, 0.50, 0.60, 0.70};
  std::vector<SimConfig> configs;
  for (Policy policy : policies) {
    for (double load : loads) {
      SimConfig cfg = make_sas_config(policy, 11, n);
      set_load(cfg, load, opt);
      configs.push_back(std::move(cfg));
    }
  }
  const std::vector<SimResult> results = run_simulations(configs);

  bench::JsonReport report("fig9_sas_testbed");
  for (int cls = 0; cls < 3; ++cls) {
    bench::section(std::string("(") + static_cast<char>('b' + cls) +
                   ") p99 of class " + class_names[cls] +
                   " vs Server-room load");
    std::printf("%-10s", "policy");
    for (double load : loads) std::printf(" %9.0f%%", load * 100.0);
    std::printf("\n");
    std::size_t next = 0;
    for (Policy policy : policies) {
      std::printf("%-10s", to_string(policy));
      for (double load : loads) {
        const SimResult& r = results[next++];
        const double p99 = r.class_tail_latency(static_cast<ClassId>(cls));
        std::printf(" %7.0fms", p99);
        report.row()
            .add("class", static_cast<double>(cls))
            .add("policy", to_string(policy))
            .add("load", load)
            .add("p99_ms", p99);
      }
      std::printf("\n");
    }
  }

  bench::section("maximum Server-room load meeting all three SLOs");
  std::vector<MaxLoadJob> jobs;
  for (Policy policy : policies) {
    jobs.push_back(MaxLoadJob{
        .config = make_sas_config(policy, 11, n), .opt = opt, .feasible = {}});
  }
  const std::vector<double> max_loads = find_max_loads(jobs);

  std::printf("%-10s %10s %14s\n", "policy", "measured", "paper");
  const double paper_max[] = {38.0, 36.0, 42.0, 48.0};
  for (int i = 0; i < 4; ++i) {
    std::printf("%-10s %9.0f%% %13.0f%%\n", to_string(policies[i]),
                max_loads[i] * 100.0, paper_max[i]);
    report.row()
        .add("policy", to_string(policies[i]))
        .add("max_load", max_loads[i]);
  }

  bench::note(
      "expected shape: ranking TailGuard > T-EDFQ > FIFO > PRIQ with "
      "compressed margins — the deliberate Server-room hotspot weakens the "
      "fanout signal (the paper's own stress-test observation). Absolute "
      "max loads are higher than the paper's because the physical testbed "
      "included communication/merging overheads our cluster models fold "
      "into the service CDF only partially.");
  return 0;
}
