// Extension: task-server-side queuing with network delays.
//
// The paper's model (Fig. 2, footnote 3) allows task queues to live either
// centrally at the query handler or at the task servers; in the latter case
// the task dispatching time is part of the pre-dequeuing time t_pr (it
// consumes deadline budget) and the result's return path is part of the
// post-queuing time t_po. This bench quantifies how much of TailGuard's
// budget a realistic in-datacenter RTT eats, and shows the budgets adapt
// when the online estimator sees the delayed post-queuing times.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Extension",
               "network dispatch/result delays (queuing at task servers)");
  bench::JsonReport report("ext_network_delay");

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  // SLOs leave room for an in-rack RTT (Masstree tasks are ~0.2 ms; a
  // 2 x 0.05 ms one-way delay is a realistic same-rack figure, 2 x 0.2 ms a
  // cross-pod one).
  cfg.classes = {{.slo_ms = 1.6, .percentile = 99.0},
                 {.slo_ms = 2.4, .percentile = 99.0}};
  cfg.class_probabilities = {0.5, 0.5};
  cfg.num_queries = bench::queries(100000);
  cfg.seed = 7;

  MaxLoadOptions opt;
  opt.tolerance = 0.015;

  const struct {
    const char* label;
    double one_way_ms;
  } rtts[] = {
      {"central queuing (no network)", 0.0},
      {"same-rack (0.05 ms one-way)", 0.05},
      {"same-pod (0.10 ms one-way)", 0.10},
      {"cross-pod (0.20 ms one-way)", 0.20},
  };

  std::vector<MaxLoadJob> jobs;
  for (const auto& rtt : rtts) {
    if (rtt.one_way_ms > 0.0) {
      // Mildly variable dispatch delays (+/-50%). The result path is left
      // delay-free so the exact analytic CDFs stay valid for t_po and the
      // comparison isolates the budget-consumption effect of t_pr; see
      // simulator_test.cc for the result-delay path.
      cfg.dispatch_delay_ms = std::make_shared<Uniform>(0.5 * rtt.one_way_ms,
                                                     1.5 * rtt.one_way_ms);
    } else {
      cfg.dispatch_delay_ms = nullptr;
    }
    for (Policy policy : {Policy::kFifo, Policy::kTfEdf}) {
      cfg.policy = policy;
      jobs.push_back(MaxLoadJob{.config = cfg, .opt = opt, .feasible = {}});
    }
  }
  const std::vector<double> max_loads = find_max_loads(jobs);

  std::printf("%-32s %10s %12s %10s\n", "network", "FIFO", "TailGuard",
              "gain");
  for (std::size_t i = 0; i < std::size(rtts); ++i) {
    const double fifo = max_loads[2 * i];
    const double tailguard = max_loads[2 * i + 1];
    std::printf("%-32s %9.0f%% %11.0f%% %9.0f%%\n", rtts[i].label,
                fifo * 100.0, tailguard * 100.0,
                (tailguard / fifo - 1.0) * 100.0);
    report.row()
        .add("network", rtts[i].label)
        .add("one_way_ms", rtts[i].one_way_ms)
        .add("max_load_fifo", fifo)
        .add("max_load_tailguard", tailguard);
  }

  bench::note(
      "expected shape: TailGuard's advantage over FIFO persists at every "
      "delay. Two opposing effects are visible: the dispatch delay consumes "
      "pre-dequeuing budget (hurts as it approaches the budget scale), but "
      "its jitter also desynchronises the simultaneous arrival of a "
      "fan-out's tasks at the servers (slightly *raising* max loads at "
      "small delays) — a real phenomenon the paper's zero-delay model "
      "cannot show");
  return 0;
}
