// Reproduces Table III: the 99th percentile latency of the three query
// types (kf = 1, 10, 100) at the maximum loads of FIFO and TailGuard for
// the Masstree workload — showing that (a) the kf=100 type is the binding
// constraint for both policies, and (b) TailGuard's per-type tails are more
// balanced, which is where its extra capacity comes from.
#include <cstdio>

#include "bench_util.h"
#include "workloads/tailbench.h"

using namespace tailguard;

namespace {
struct PaperRow {
  double slo;
  double fifo[3];       // kf = 1, 10, 100
  double tailguard[3];  // kf = 1, 10, 100
};
}  // namespace

int main() {
  bench::title("Table III",
               "99th percentile latency (ms) per query type at the maximum "
               "load, Masstree");

  const PaperRow paper_rows[] = {
      {0.8, {0.439, 0.394, 0.798}, {0.572, 0.745, 0.797}},
      {1.0, {0.533, 0.731, 0.997}, {0.705, 0.941, 0.994}},
      {1.2, {0.647, 0.889, 1.192}, {0.817, 1.098, 1.193}},
      {1.4, {0.751, 1.061, 1.389}, {0.945, 1.262, 1.392}},
  };

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.num_queries = bench::queries(150000);
  cfg.seed = 7;

  MaxLoadOptions opt;
  opt.tolerance = 0.01;

  std::printf("%-8s %-10s %9s %26s %26s %26s\n", "SLO", "policy", "max load",
              "kf=1 (meas/paper)", "kf=10 (meas/paper)",
              "kf=100 (meas/paper)");
  for (const auto& row : paper_rows) {
    cfg.classes = {{.slo_ms = row.slo, .percentile = 99.0}};
    for (Policy policy : {Policy::kFifo, Policy::kTfEdf}) {
      cfg.policy = policy;
      const double max_load = find_max_load(cfg, opt);
      set_load(cfg, max_load, opt);
      const SimResult r = run_simulation(cfg);
      const double* paper =
          policy == Policy::kFifo ? row.fifo : row.tailguard;
      std::printf("%-8.1f %-10s %8.0f%%", row.slo, to_string(policy),
                  max_load * 100.0);
      const std::uint32_t fanouts[3] = {1, 10, 100};
      for (int i = 0; i < 3; ++i) {
        const auto* g = r.find_group(0, fanouts[i]);
        std::printf("      %7.3f / %7.3f", g != nullptr ? g->tail_latency : 0.0,
                    paper[i]);
      }
      std::printf("\n");
    }
  }

  bench::note(
      "expected shape: the kf=100 type sits at the SLO for both policies "
      "(it is the binding constraint); TailGuard's kf=1/kf=10 tails are "
      "higher than FIFO's, i.e. resources are shifted toward the "
      "fanout-100 queries");
  return 0;
}
