// Reproduces Table III: the 99th percentile latency of the three query
// types (kf = 1, 10, 100) at the maximum loads of FIFO and TailGuard for
// the Masstree workload — showing that (a) the kf=100 type is the binding
// constraint for both policies, and (b) TailGuard's per-type tails are more
// balanced, which is where its extra capacity comes from.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

namespace {
struct PaperRow {
  double slo;
  double fifo[3];       // kf = 1, 10, 100
  double tailguard[3];  // kf = 1, 10, 100
};
}  // namespace

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Table III",
               "99th percentile latency (ms) per query type at the maximum "
               "load, Masstree");

  const PaperRow paper_rows[] = {
      {0.8, {0.439, 0.394, 0.798}, {0.572, 0.745, 0.797}},
      {1.0, {0.533, 0.731, 0.997}, {0.705, 0.941, 0.994}},
      {1.2, {0.647, 0.889, 1.192}, {0.817, 1.098, 1.193}},
      {1.4, {0.751, 1.061, 1.389}, {0.945, 1.262, 1.392}},
  };

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.num_queries = bench::queries(150000);
  cfg.seed = 7;

  MaxLoadOptions opt;
  opt.tolerance = 0.01;

  // Stage 1: all max-load searches in one engine batch. Stage 2: one
  // simulation per case at its max load, again batched.
  bench::JsonReport report("table3_latency_breakdown");
  std::vector<MaxLoadJob> jobs;
  for (const auto& row : paper_rows) {
    cfg.classes = {{.slo_ms = row.slo, .percentile = 99.0}};
    for (Policy policy : {Policy::kFifo, Policy::kTfEdf}) {
      cfg.policy = policy;
      jobs.push_back(MaxLoadJob{.config = cfg, .opt = opt, .feasible = {}});
    }
  }
  const std::vector<double> max_loads = find_max_loads(jobs);

  std::vector<SimConfig> at_max;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    at_max.push_back(jobs[i].config);
    set_load(at_max.back(), max_loads[i], opt);
  }
  const std::vector<SimResult> results = run_simulations(at_max);

  std::printf("%-8s %-10s %9s %26s %26s %26s\n", "SLO", "policy", "max load",
              "kf=1 (meas/paper)", "kf=10 (meas/paper)",
              "kf=100 (meas/paper)");
  std::size_t next = 0;
  for (const auto& row : paper_rows) {
    for (Policy policy : {Policy::kFifo, Policy::kTfEdf}) {
      const double max_load = max_loads[next];
      const SimResult& r = results[next];
      ++next;
      const double* paper =
          policy == Policy::kFifo ? row.fifo : row.tailguard;
      std::printf("%-8.1f %-10s %8.0f%%", row.slo, to_string(policy),
                  max_load * 100.0);
      auto& json_row = report.row()
                           .add("slo_ms", row.slo)
                           .add("policy", to_string(policy))
                           .add("max_load", max_load);
      const std::uint32_t fanouts[3] = {1, 10, 100};
      for (int i = 0; i < 3; ++i) {
        const auto* g = r.find_group(0, fanouts[i]);
        const double p99 = g != nullptr ? g->tail_latency_ms : 0.0;
        std::printf("      %7.3f / %7.3f", p99, paper[i]);
        char key[24];
        std::snprintf(key, sizeof(key), "p99_kf%u_ms", fanouts[i]);
        json_row.add(key, p99);
      }
      std::printf("\n");
    }
  }

  bench::note(
      "expected shape: the kf=100 type sits at the SLO for both policies "
      "(it is the binding constraint); TailGuard's kf=1/kf=10 tails are "
      "higher than FIFO's, i.e. resources are shifted toward the "
      "fanout-100 queries");
  return 0;
}
