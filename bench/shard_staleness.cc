// Extension: control-plane sharding — staleness vs capacity and SLO misses.
//
// The single-handler control plane (Fig. 2) serialises every admission
// decision and model update; sharding it (src/shard) buys submission
// parallelism at the price of *staleness*: each shard learns the cluster
// only from its own completions plus periodic delta-sync gossip. This bench
// quantifies the trade: shard count N x sync interval against (a) the
// maximum SLO-feasible load and (b) the deadline-miss ratio and admit
// fraction at a fixed overload, on a heterogeneous cluster (half the
// servers 1.6x slower) under the paper's full online-estimation pipeline
// (kOnlineFromSingleProfile, §III.B.2) — the setting where a stale CDF view
// actually costs budget accuracy. The N=1 row is the single-plane ground
// truth; sync_ms=0 rows are shards drifting with no gossip at all.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/cluster.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

namespace {

struct Combo {
  std::uint32_t shards;
  double sync_ms;  // 0 = no gossip
};

SimConfig base_config(const Combo& combo) {
  SimConfig cfg;
  cfg.num_servers = 100;
  const auto base = make_service_time_model(TailbenchApp::kMasstree);
  // Heterogeneous cluster: servers 50..99 are 1.6x slower and share one CDF
  // group. Online estimation must *learn* this — a shard that saw few slow
  // completions underestimates those servers until gossip catches it up.
  cfg.per_server_service =
      cluster_with_stragglers(base, cfg.num_servers, 0.5, 1.6);
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.classes = {{.slo_ms = 1.6, .percentile = 99.0}};
  cfg.estimation = EstimationMode::kOnlineFromSingleProfile;
  cfg.num_queries = bench::queries(60000);
  cfg.seed = 7;
  ShardingOptions sharding;
  sharding.num_shards = combo.shards;
  sharding.sync_interval_ms = combo.sync_ms;
  sharding.router = RouterKind::kHash;
  cfg.sharding = sharding;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Extension",
               "sharded control plane: sync staleness vs max load and "
               "SLO misses");
  bench::JsonReport report("shard_staleness");

  std::vector<Combo> combos = {{1, 0.0}};  // single-plane ground truth
  for (std::uint32_t shards : {2u, 4u, 8u})
    for (double sync_ms : {0.0, 5.0, 50.0, 500.0})
      combos.push_back({shards, sync_ms});

  // (a) Maximum SLO-feasible load per combo, no admission control.
  MaxLoadOptions opt;
  opt.tolerance = 0.015;
  std::vector<MaxLoadJob> jobs;
  for (const Combo& combo : combos)
    jobs.push_back(
        MaxLoadJob{.config = base_config(combo), .opt = opt, .feasible = {}});
  const std::vector<double> max_loads = find_max_loads(jobs);

  // (b) Fixed mild overload with admission control on: how well each combo's
  // (possibly stale) miss-window sheds load. Same load for every combo so
  // the rows are comparable.
  const double fixed_load = 0.5;
  std::vector<SimConfig> overload;
  for (const Combo& combo : combos) {
    SimConfig cfg = base_config(combo);
    cfg.admission = AdmissionOptions{};
    set_load(cfg, fixed_load);
    overload.push_back(std::move(cfg));
  }
  const std::vector<SimResult> at_load = run_simulations(overload);

  const double ground_truth = max_loads[0];
  std::printf("%-7s %-9s %10s %9s %12s %12s %8s %10s\n", "shards", "sync_ms",
              "max_load", "vs N=1", "miss_ratio", "admit_frac", "rounds",
              "samples");
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const Combo& combo = combos[i];
    const SimResult& r = at_load[i];
    std::printf("%-7u %-9.0f %9.0f%% %8.0f%% %12.4f %12.3f %8llu %10llu\n",
                combo.shards, combo.sync_ms, max_loads[i] * 100.0,
                (max_loads[i] / ground_truth - 1.0) * 100.0,
                r.task_deadline_miss_ratio, r.task_admit_fraction(),
                static_cast<unsigned long long>(r.shard_sync_rounds),
                static_cast<unsigned long long>(r.shard_samples_shipped));
    report.row()
        .add("shards", static_cast<double>(combo.shards))
        .add("sync_ms", combo.sync_ms)
        .add("max_load", max_loads[i])
        .add("max_load_vs_single_plane", max_loads[i] / ground_truth - 1.0)
        .add("fixed_load", fixed_load)
        .add("miss_ratio_at_fixed_load", r.task_deadline_miss_ratio)
        .add("admit_fraction_at_fixed_load", r.task_admit_fraction())
        .add("sync_rounds", static_cast<double>(r.shard_sync_rounds))
        .add("samples_shipped",
             static_cast<double>(r.shard_samples_shipped));
  }

  bench::note(
      "measured shape (see EXPERIMENTS.md): max load is insensitive to "
      "sharding — a fraction of the completion stream is signal enough for "
      "TF-EDFQ's relative deadline ordering; the admission rows are the "
      "staleness-sensitive part, with unsynced or coarsely-synced miss "
      "windows mis-shedding at fixed overload while a 5 ms sync tracks "
      "the single plane");
  return 0;
}
