// Extension: how sensitive is TailGuard's gain to the service-time law?
//
// The paper evaluates three Tailbench-derived distributions and claims the
// gain is insensitive to the workload specifics. We sweep a wider family —
// from deterministic through light- and heavy-tailed laws, all normalised
// to the same 0.2 ms mean — and measure the FIFO vs TailGuard max load for
// a single class whose SLO is set the same way for every law
// (SLO = x99u(100) + 3 * mean, i.e. comparable queueing headroom).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/order_stats.h"
#include "dist/standard.h"
#include "sim/parallel.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Extension", "sensitivity of the gain to the service-time law");
  bench::JsonReport report("ext_service_dist_sensitivity");

  const double mean = 0.2;  // ms
  const struct {
    const char* label;
    DistributionPtr dist;
  } laws[] = {
      {"deterministic", std::make_shared<Deterministic>(mean)},
      {"uniform(0.1,0.3)", std::make_shared<Uniform>(0.1, 0.3)},
      {"Weibull k=2 (light tail)",
       std::make_shared<Weibull>(Weibull::with_mean(mean, 2.0))},
      {"exponential", std::make_shared<Exponential>(mean)},
      {"Gamma shape=0.5", std::make_shared<Gamma>(0.5, mean / 0.5)},
      {"Weibull k=0.7 (heavy tail)",
       std::make_shared<Weibull>(Weibull::with_mean(mean, 0.7))},
      {"lognormal sigma=1",
       std::make_shared<Lognormal>(std::log(mean) - 0.5, 1.0)},
  };

  MaxLoadOptions opt;
  opt.tolerance = 0.015;

  // Per-law unloaded quantiles stay serial (cheap); the 2 x |laws| max-load
  // searches go to the engine in one batch.
  std::vector<double> x1s, x100s;
  std::vector<MaxLoadJob> jobs;
  for (const auto& law : laws) {
    DistributionCdfModel model(law.dist);
    x1s.push_back(homogeneous_unloaded_quantile(model, 1, 0.99));
    x100s.push_back(homogeneous_unloaded_quantile(model, 100, 0.99));
    const double slo = x100s.back() + 3.0 * mean;

    SimConfig cfg;
    cfg.num_servers = 100;
    cfg.fanout =
        std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
    cfg.service_time = law.dist;
    cfg.classes = {{.slo_ms = slo, .percentile = 99.0}};
    cfg.num_queries = bench::queries(80000);
    cfg.seed = 7;

    for (Policy policy : {Policy::kFifo, Policy::kTfEdf}) {
      cfg.policy = policy;
      jobs.push_back(MaxLoadJob{.config = cfg, .opt = opt, .feasible = {}});
    }
  }
  const std::vector<double> max_loads = find_max_loads(jobs);

  std::printf("%-28s %10s %10s %8s %8s %8s\n", "service law", "x99u(1)",
              "x99u(100)", "FIFO", "TailGd", "gain");
  for (std::size_t i = 0; i < std::size(laws); ++i) {
    const double fifo = max_loads[2 * i];
    const double tailguard = max_loads[2 * i + 1];
    std::printf("%-28s %10.3f %10.3f %7.0f%% %7.0f%% %7.0f%%\n", laws[i].label,
                x1s[i], x100s[i], fifo * 100.0, tailguard * 100.0,
                (tailguard / fifo - 1.0) * 100.0);
    report.row()
        .add("service_law", laws[i].label)
        .add("x99u_1_ms", x1s[i])
        .add("x99u_100_ms", x100s[i])
        .add("max_load_fifo", fifo)
        .add("max_load_tailguard", tailguard);
  }

  bench::note(
      "expected shape: TailGuard never loses to FIFO; the gain grows with "
      "the spread x99u(100) - x99u(1) relative to the queueing headroom "
      "(zero for deterministic service, largest for heavy-tailed laws) — "
      "supporting the paper's insensitivity claim in direction while "
      "quantifying when fanout-awareness pays the most");
  return 0;
}
