// Extension: how sensitive is TailGuard's gain to the service-time law?
//
// The paper evaluates three Tailbench-derived distributions and claims the
// gain is insensitive to the workload specifics. We sweep a wider family —
// from deterministic through light- and heavy-tailed laws, all normalised
// to the same 0.2 ms mean — and measure the FIFO vs TailGuard max load for
// a single class whose SLO is set the same way for every law
// (SLO = x99u(100) + 3 * mean, i.e. comparable queueing headroom).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/order_stats.h"
#include "dist/standard.h"

using namespace tailguard;

int main() {
  bench::title("Extension", "sensitivity of the gain to the service-time law");

  const double mean = 0.2;  // ms
  const struct {
    const char* label;
    DistributionPtr dist;
  } laws[] = {
      {"deterministic", std::make_shared<Deterministic>(mean)},
      {"uniform(0.1,0.3)", std::make_shared<Uniform>(0.1, 0.3)},
      {"Weibull k=2 (light tail)",
       std::make_shared<Weibull>(Weibull::with_mean(mean, 2.0))},
      {"exponential", std::make_shared<Exponential>(mean)},
      {"Gamma shape=0.5", std::make_shared<Gamma>(0.5, mean / 0.5)},
      {"Weibull k=0.7 (heavy tail)",
       std::make_shared<Weibull>(Weibull::with_mean(mean, 0.7))},
      {"lognormal sigma=1",
       std::make_shared<Lognormal>(std::log(mean) - 0.5, 1.0)},
  };

  std::printf("%-28s %10s %10s %8s %8s %8s\n", "service law", "x99u(1)",
              "x99u(100)", "FIFO", "TailGd", "gain");

  MaxLoadOptions opt;
  opt.tolerance = 0.015;

  for (const auto& law : laws) {
    DistributionCdfModel model(law.dist);
    const double x1 = homogeneous_unloaded_quantile(model, 1, 0.99);
    const double x100 = homogeneous_unloaded_quantile(model, 100, 0.99);
    const double slo = x100 + 3.0 * mean;

    SimConfig cfg;
    cfg.num_servers = 100;
    cfg.fanout =
        std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
    cfg.service_time = law.dist;
    cfg.classes = {{.slo_ms = slo, .percentile = 99.0}};
    cfg.num_queries = bench::queries(80000);
    cfg.seed = 7;

    cfg.policy = Policy::kFifo;
    const double fifo = find_max_load(cfg, opt);
    cfg.policy = Policy::kTfEdf;
    const double tailguard = find_max_load(cfg, opt);
    std::printf("%-28s %10.3f %10.3f %7.0f%% %7.0f%% %7.0f%%\n", law.label, x1,
                x100, fifo * 100.0, tailguard * 100.0,
                (tailguard / fifo - 1.0) * 100.0);
  }

  bench::note(
      "expected shape: TailGuard never loses to FIFO; the gain grows with "
      "the spread x99u(100) - x99u(1) relative to the queueing headroom "
      "(zero for deterministic service, largest for heavy-tailed laws) — "
      "supporting the paper's insensitivity claim in direction while "
      "quantifying when fanout-awareness pays the most");
  return 0;
}
