// Reproduces Fig. 6: 99th percentile latency vs load for two service
// classes with fixed fanout kf = N = 100 (the OLDI case), comparing FIFO,
// PRIQ and TailGuard. With a fixed fanout T-EDFQ behaves exactly like
// TailGuard (§IV.C), so it is omitted, as in the paper.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

namespace {
struct WorkloadCase {
  TailbenchApp app;
  double slo_class1;
  double slo_class2;
  // Max loads the paper reports (FIFO, PRIQ, TailGuard).
  double paper_max[3];
};
}  // namespace

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Figure 6",
               "p99 latency vs load, two classes, fixed fanout kf=100 "
               "(OLDI)");

  const std::vector<WorkloadCase> cases = {
      {TailbenchApp::kMasstree, 1.0, 1.5, {45.0, 48.0, 54.0}},
      {TailbenchApp::kShore, 6.0, 10.0, {36.0, 45.0, 51.0}},
      {TailbenchApp::kXapian, 10.0, 15.0, {49.0, 45.0, 58.0}},
  };
  const std::vector<double> loads = {0.20, 0.25, 0.30, 0.35, 0.40,
                                     0.45, 0.50, 0.55, 0.60};

  const Policy policies[] = {Policy::kFifo, Policy::kPriq, Policy::kTfEdf};

  // One flat batch of (workload, policy, load) simulations for the engine.
  bench::JsonReport report("fig6_service_class_sweep");
  std::vector<SimConfig> configs;
  for (const auto& wc : cases) {
    for (Policy policy : policies) {
      for (double load : loads) {
        SimConfig cfg;
        cfg.num_servers = 100;
        cfg.fanout = std::make_shared<FixedFanout>(100);
        cfg.service_time = make_service_time_model(wc.app);
        cfg.classes = {{.slo_ms = wc.slo_class1, .percentile = 99.0},
                       {.slo_ms = wc.slo_class2, .percentile = 99.0}};
        cfg.class_probabilities = {0.5, 0.5};
        cfg.num_queries = bench::queries(15000);
        cfg.seed = 3;
        cfg.policy = policy;
        set_load(cfg, load);
        configs.push_back(std::move(cfg));
      }
    }
  }
  const std::vector<SimResult> results = run_simulations(configs);

  std::size_t next = 0;
  for (const auto& wc : cases) {
    char header[128];
    std::snprintf(header, sizeof(header), "%s (SLO I/II = %.1f/%.1f ms)",
                  to_string(wc.app).c_str(), wc.slo_class1, wc.slo_class2);
    bench::section(header);

    for (int pi = 0; pi < 3; ++pi) {
      // Max feasible load per class along the sweep.
      double max_ok[2] = {0.0, 0.0};
      std::printf("%-10s", to_string(policies[pi]));
      for (double load : loads) {
        const SimResult& r = results[next++];
        std::printf("  %4.0f%%[%.2f|%.2f]", load * 100.0,
                    r.class_tail_latency(0), r.class_tail_latency(1));
        report.row()
            .add("workload", to_string(wc.app))
            .add("policy", to_string(policies[pi]))
            .add("load", load)
            .add("p99_class1_ms", r.class_tail_latency(0))
            .add("p99_class2_ms", r.class_tail_latency(1));
        const double slos[2] = {wc.slo_class1, wc.slo_class2};
        for (int c = 0; c < 2; ++c) {
          if (r.class_tail_latency(c) <= slos[c] * 1.001)
            max_ok[c] = std::max(max_ok[c], load);
        }
      }
      const double overall = std::min(max_ok[0], max_ok[1]);
      std::printf("\n%-10s max load meeting both SLOs: %.0f%% (paper ~%.0f%%)\n",
                  "", overall * 100.0, wc.paper_max[pi]);
    }
  }

  bench::note(
      "columns are load%[class-I p99 | class-II p99] in ms. Expected shape: "
      "FIFO is bound by class I (class-unaware), PRIQ by class II "
      "(starves the lower class), TailGuard balances both classes and "
      "achieves the highest overall load");
  return 0;
}
