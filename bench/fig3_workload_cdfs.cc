// Reproduces Fig. 3: CDFs and unloaded 95th/99th percentile task tail
// latencies of the three Tailbench workloads (Masstree, Shore, Xapian).
#include <cstdio>

#include "bench_util.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Figure 3", "task service-time CDFs of the Tailbench workloads");
  bench::JsonReport report("fig3_workload_cdfs");

  for (TailbenchApp app : kAllTailbenchApps) {
    const auto model = make_service_time_model(app);
    const auto stats = paper_stats(app);
    bench::section(to_string(app));

    std::printf("%10s  %12s\n", "F(t)", "t (ms)");
    for (double p : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999,
                     0.9999}) {
      std::printf("%10.4f  %12.4f\n", p, model->quantile(p));
      report.row()
          .add("workload", to_string(app))
          .add("p", p)
          .add("quantile_ms", model->quantile(p));
    }

    std::printf("\n%-34s %10s %10s\n", "", "measured", "paper");
    std::printf("%-34s %10.3f %10.3f\n", "mean service time Tm (ms)",
                model->mean(), stats.mean_service_ms);
    std::printf("%-34s %10.3f %10.3f\n", "95th percentile task latency (ms)",
                model->quantile(0.95), stats.x95u_1);
    std::printf("%-34s %10.3f %10.3f\n", "99th percentile task latency (ms)",
                model->quantile(0.99), stats.x99u_1);
  }

  bench::note(
      "models are piecewise-linear quantile functions anchored at the "
      "paper's published statistics (see DESIGN.md, Substitutions)");
  return 0;
}
