// Shared helpers for the table/figure reproduction harness.
//
// Every bench binary prints: the experiment id, the paper's setup, the
// regenerated rows/series, and (where the paper publishes numbers) the
// paper's values alongside. TAILGUARD_BENCH_SCALE scales simulated query
// counts (e.g. 0.2 for a fast smoke run, 4 for tighter percentiles).
//
// Besides the stdout report, each bench writes BENCH_<name>.json (see
// JsonReport below, format documented in EXPERIMENTS.md) so the perf and
// result trajectory is machine-trackable across commits. The JSON lands in
// the working directory by default; `--out=DIR` (via bench::init) or the
// TAILGUARD_BENCH_OUT environment variable redirects every report into DIR
// (created on demand) — so CI can collect all artifacts from one place
// without cd-ing around.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/experiment.h"

namespace tailguard::bench {

namespace detail {
/// --out override from bench::init; empty = fall back to the environment.
inline std::string& out_dir_override() {
  static std::string dir;
  return dir;
}
}  // namespace detail

/// Directory JSON reports are written into: the --out flag if given, else
/// $TAILGUARD_BENCH_OUT, else empty (working directory).
inline std::string out_dir() {
  if (!detail::out_dir_override().empty()) return detail::out_dir_override();
  const char* env = std::getenv("TAILGUARD_BENCH_OUT");
  return env != nullptr ? std::string(env) : std::string();
}

/// Parses the shared bench flags (currently just `--out=DIR` / `--out DIR`).
/// Call first thing in main(); unknown arguments are ignored so benches can
/// layer their own flags on top.
inline void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--out=", 0) == 0)
      detail::out_dir_override() = std::string(arg.substr(6));
    else if (arg == "--out" && i + 1 < argc)
      detail::out_dir_override() = argv[++i];
  }
}

inline void title(const char* experiment, const char* what) {
  std::printf("\n");
  std::printf("================================================================================\n");
  std::printf("%s — %s\n", experiment, what);
  std::printf("================================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void note(const char* text) { std::printf("note: %s\n", text); }

/// Scaled query count (honours TAILGUARD_BENCH_SCALE).
inline std::size_t queries(std::size_t base) { return scaled_queries(base); }

inline const char* check_mark(bool met) { return met ? "yes" : "NO"; }

/// Machine-readable companion to the stdout report: collects flat key/value
/// rows and writes `BENCH_<name>.json` into the working directory on
/// destruction, including the bench's wall-clock milliseconds. Format:
///   {"bench": "<name>", "wall_ms": <double>, "rows": [{...}, ...]}
class JsonReport {
 public:
  class Row {
   public:
    Row& add(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.10g", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& add(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, quote(value));
      return *this;
    }
    Row& add(const std::string& key, const char* value) {
      return add(key, std::string(value));
    }
    Row& add(const std::string& key, bool value) {
      fields_.emplace_back(key, value ? "true" : "false");
      return *this;
    }

   private:
    friend class JsonReport;
    static std::string quote(const std::string& s) {
      std::string out = "\"";
      for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;  // key -> encoded
  };

  explicit JsonReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() { write(); }

  /// Starts (and returns) a new result row.
  Row& row() {
    rows_.emplace_back();
    return rows_.back();
  }

  double wall_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  void write() const {
    std::string path = "BENCH_" + name_ + ".json";
    if (const std::string dir = out_dir(); !dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);  // best-effort, like fopen
      path = dir + "/" + path;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;  // e.g. read-only CWD; the stdout report stands
    std::fprintf(f, "{\"bench\": %s, \"wall_ms\": %.3f, \"rows\": [",
                 Row::quote(name_).c_str(), wall_ms());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n  {", r == 0 ? "" : ",");
      const auto& fields = rows_[r].fields_;
      for (std::size_t i = 0; i < fields.size(); ++i)
        std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                     Row::quote(fields[i].first).c_str(),
                     fields[i].second.c_str());
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Row> rows_;
};

}  // namespace tailguard::bench
