// Shared helpers for the table/figure reproduction harness.
//
// Every bench binary prints: the experiment id, the paper's setup, the
// regenerated rows/series, and (where the paper publishes numbers) the
// paper's values alongside. TAILGUARD_BENCH_SCALE scales simulated query
// counts (e.g. 0.2 for a fast smoke run, 4 for tighter percentiles).
#pragma once

#include <cstdio>
#include <string>

#include "sim/experiment.h"

namespace tailguard::bench {

inline void title(const char* experiment, const char* what) {
  std::printf("\n");
  std::printf("================================================================================\n");
  std::printf("%s — %s\n", experiment, what);
  std::printf("================================================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void note(const char* text) { std::printf("note: %s\n", text); }

/// Scaled query count (honours TAILGUARD_BENCH_SCALE).
inline std::size_t queries(std::size_t base) { return scaled_queries(base); }

inline const char* check_mark(bool met) { return met ? "yes" : "NO"; }

}  // namespace tailguard::bench
