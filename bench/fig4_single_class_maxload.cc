// Reproduces Fig. 4: maximum load meeting a single-class tail latency SLO,
// TailGuard vs FIFO, for four SLO settings per workload.
//
// Setup (paper §IV.B): N=100 servers; fanouts {1, 10, 100} with
// P(kf) ∝ 1/kf (each type contributes the same expected task volume);
// Poisson arrivals; the max load is the largest load at which *every*
// query type meets the 99th-percentile SLO. With a single class, PRIQ and
// T-EDFQ degenerate to FIFO (§III.A), so only FIFO and TailGuard appear.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workloads/tailbench.h"

using namespace tailguard;

namespace {

struct WorkloadCase {
  TailbenchApp app;
  std::vector<double> slos_ms;
  // Paper-published data points (text gives Masstree at 0.8 ms explicitly;
  // the rest are read qualitatively from Fig. 4).
  const char* paper_note;
};

}  // namespace

int main() {
  bench::title("Figure 4",
               "maximum load meeting the tail latency SLO, single class "
               "(TailGuard vs FIFO)");

  const std::vector<WorkloadCase> cases = {
      {TailbenchApp::kMasstree,
       {0.8, 1.0, 1.2, 1.4},
       "paper: FIFO 20% -> TailGuard 28% at 0.8 ms (~40% gain); gain "
       "shrinks as the SLO loosens"},
      {TailbenchApp::kShore,
       {4.5, 5.0, 5.5, 6.0},
       "paper: gains shrink with looser SLOs (Fig. 4b). SLOs chosen per the "
       "paper's rule (max loads land in the commercial 20-60% band)"},
      {TailbenchApp::kXapian,
       {5.0, 6.0, 7.0, 8.0},
       "paper: gains shrink with looser SLOs (Fig. 4c). SLOs chosen per the "
       "paper's rule (max loads land in the commercial 20-60% band)"},
  };

  for (const auto& wc : cases) {
    bench::section(to_string(wc.app));
    SimConfig cfg;
    cfg.num_servers = 100;
    cfg.fanout =
        std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
    cfg.service_time = make_service_time_model(wc.app);
    cfg.num_queries = bench::queries(120000);
    cfg.seed = 7;

    MaxLoadOptions opt;
    opt.tolerance = 0.01;

    std::printf("%-14s %12s %12s %10s\n", "x99_SLO (ms)", "FIFO", "TailGuard",
                "gain");
    for (double slo : wc.slos_ms) {
      cfg.classes = {{.slo_ms = slo, .percentile = 99.0}};
      cfg.policy = Policy::kFifo;
      const double fifo = find_max_load(cfg, opt);
      cfg.policy = Policy::kTfEdf;
      const double tailguard = find_max_load(cfg, opt);
      std::printf("%-14.1f %11.0f%% %11.0f%% %9.0f%%\n", slo, fifo * 100.0,
                  tailguard * 100.0, (tailguard / fifo - 1.0) * 100.0);
    }
    bench::note(wc.paper_note);
  }
  return 0;
}
