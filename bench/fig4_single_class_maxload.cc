// Reproduces Fig. 4: maximum load meeting a single-class tail latency SLO,
// TailGuard vs FIFO, for four SLO settings per workload.
//
// Setup (paper §IV.B): N=100 servers; fanouts {1, 10, 100} with
// P(kf) ∝ 1/kf (each type contributes the same expected task volume);
// Poisson arrivals; the max load is the largest load at which *every*
// query type meets the 99th-percentile SLO. With a single class, PRIQ and
// T-EDFQ degenerate to FIFO (§III.A), so only FIFO and TailGuard appear.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "sim/parallel.h"
#include "workloads/tailbench.h"

using namespace tailguard;

namespace {

struct WorkloadCase {
  TailbenchApp app;
  std::vector<double> slos_ms;
  // Paper-published data points (text gives Masstree at 0.8 ms explicitly;
  // the rest are read qualitatively from Fig. 4).
  const char* paper_note;
};

}  // namespace

int main(int argc, char** argv) {
  tailguard::bench::init(argc, argv);
  bench::title("Figure 4",
               "maximum load meeting the tail latency SLO, single class "
               "(TailGuard vs FIFO)");

  const std::vector<WorkloadCase> cases = {
      {TailbenchApp::kMasstree,
       {0.8, 1.0, 1.2, 1.4},
       "paper: FIFO 20% -> TailGuard 28% at 0.8 ms (~40% gain); gain "
       "shrinks as the SLO loosens"},
      {TailbenchApp::kShore,
       {4.5, 5.0, 5.5, 6.0},
       "paper: gains shrink with looser SLOs (Fig. 4b). SLOs chosen per the "
       "paper's rule (max loads land in the commercial 20-60% band)"},
      {TailbenchApp::kXapian,
       {5.0, 6.0, 7.0, 8.0},
       "paper: gains shrink with looser SLOs (Fig. 4c). SLOs chosen per the "
       "paper's rule (max loads land in the commercial 20-60% band)"},
  };

  bench::JsonReport report("fig4_single_class_maxload");

  // All (workload, SLO, policy) max-load searches go to the experiment
  // engine as one batch, so the whole figure saturates the machine.
  std::vector<MaxLoadJob> jobs;
  for (const auto& wc : cases) {
    for (double slo : wc.slos_ms) {
      for (Policy policy : {Policy::kFifo, Policy::kTfEdf}) {
        MaxLoadJob job;
        job.config.num_servers = 100;
        job.config.fanout = std::make_shared<CategoricalFanout>(
            CategoricalFanout::paper_mix());
        job.config.service_time = make_service_time_model(wc.app);
        job.config.num_queries = bench::queries(120000);
        job.config.seed = 7;
        job.config.classes = {{.slo_ms = slo, .percentile = 99.0}};
        job.config.policy = policy;
        job.opt.tolerance = 0.01;
        jobs.push_back(std::move(job));
      }
    }
  }
  const std::vector<double> max_loads = find_max_loads(jobs);

  std::size_t next = 0;
  for (const auto& wc : cases) {
    bench::section(to_string(wc.app));
    std::printf("%-14s %12s %12s %10s\n", "x99_SLO (ms)", "FIFO", "TailGuard",
                "gain");
    for (double slo : wc.slos_ms) {
      const double fifo = max_loads[next++];
      const double tailguard = max_loads[next++];
      std::printf("%-14.1f %11.0f%% %11.0f%% %9.0f%%\n", slo, fifo * 100.0,
                  tailguard * 100.0, (tailguard / fifo - 1.0) * 100.0);
      report.row()
          .add("workload", to_string(wc.app))
          .add("slo_ms", slo)
          .add("max_load_fifo", fifo)
          .add("max_load_tailguard", tailguard);
    }
    bench::note(wc.paper_note);
  }
  return 0;
}
