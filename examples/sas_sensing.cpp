// Sensing-as-a-Service scenario (paper §IV.E).
//
// Reruns the paper's heterogeneous edge testbed — four clusters of eight
// edge nodes with very different post-queuing-time distributions, three
// user-facing use cases (device monitoring / area overview / long-range
// history) — and shows how each queuing policy copes with the deliberately
// skewed load on the Server-room cluster.
//
//   ./examples/sas_sensing [server_room_load_percent]
#include <cstdio>
#include <cstdlib>

#include "sas/testbed.h"

using namespace tailguard;

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.5;

  std::printf("SaS testbed: 4 clusters x 8 edge nodes\n");
  std::printf("%-14s %8s %8s %8s\n", "cluster", "mean", "p95", "p99");
  for (SasCluster cluster : kAllSasClusters) {
    const auto model = make_sas_cluster_model(cluster);
    std::printf("%-14s %6.0fms %6.0fms %6.0fms\n", to_string(cluster),
                model->mean(), model->quantile(0.95), model->quantile(0.99));
  }

  const auto cases = sas_use_cases();
  std::printf("\nuse cases:\n");
  const char* descriptions[] = {
      "A: monitor my devices (80%% of load on the Server-room cluster)",
      "B: area overview, one node per cluster",
      "C: 30-day history from every node"};
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::printf("  %s — fanout %2u, p99 SLO %4.0f ms, %2.0f%% of queries\n",
                descriptions[i], cases[i].fanout, cases[i].spec.slo_ms,
                100.0 * cases[i].probability);
  }

  const auto opt = sas_load_options();
  std::printf("\nat %.0f%% Server-room load:\n", load * 100.0);
  std::printf("%-10s %12s %12s %12s %10s\n", "policy", "p99 A", "p99 B",
              "p99 C", "SLOs met");
  SimResult last;
  for (Policy policy :
       {Policy::kFifo, Policy::kPriq, Policy::kTEdf, Policy::kTfEdf}) {
    SimConfig cfg = make_sas_config(policy, 99, 40000);
    set_load(cfg, load, opt);
    const SimResult r = run_simulation(cfg);
    std::printf("%-10s %9.0f ms %9.0f ms %9.0f ms %10s\n", to_string(policy),
                r.class_tail_latency(0), r.class_tail_latency(1),
                r.class_tail_latency(2), r.all_slos_met() ? "yes" : "no");
    last = r;
  }

  // The paper's §IV.E load-skew claim, measured: the Server-room cluster is
  // the hotspot while the Wet-lab cluster idles.
  std::printf("\nper-cluster utilization (TailGuard run):\n");
  for (SasCluster cluster : kAllSasClusters) {
    double util = 0.0;
    const ServerId first = sas_first_node(cluster);
    for (std::size_t n = 0; n < kSasNodesPerCluster; ++n)
      util += last.server_utilization[first + n];
    std::printf("  %-14s %4.0f%%\n", to_string(cluster),
                100.0 * util / kSasNodesPerCluster);
  }

  std::printf(
      "\nTailGuard computes each query's deadline from the product of the "
      "per-cluster\nCDFs it actually touches (Eqs. 1-2), so a 32-node "
      "history query is protected\nwithout starving the hot Server-room "
      "monitoring traffic.\n");
  return 0;
}
