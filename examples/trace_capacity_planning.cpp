// Trace-driven capacity planning.
//
// Generates a reproducible query trace (CSV on disk), replays the exact
// same trace under every queuing policy, and reports per-type tail
// latencies — the deterministic apples-to-apples comparison an operator
// would run before changing the production queuing discipline.
//
//   ./examples/trace_capacity_planning [trace.csv]
#include <cstdio>
#include <string>

#include "sim/experiment.h"
#include "workloads/tailbench.h"
#include "workloads/trace.h"

using namespace tailguard;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/tailguard_trace.csv";

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout =
      std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0},
                 {.slo_ms = 1.5, .percentile = 99.0}};
  cfg.seed = 1234;

  // Materialise a 40%-load trace and write it to disk.
  set_load(cfg, 0.40);
  TraceSpec spec;
  spec.num_queries = 60000;
  spec.class_probabilities = {0.5, 0.5};
  Rng rng(2026);
  PoissonProcess arrivals(cfg.arrival_rate);
  const auto trace = generate_trace(spec, arrivals, *cfg.fanout, rng);
  write_trace_file(trace, path);
  std::printf("wrote %zu queries (%.1f s of arrivals, 40%% load) to %s\n\n",
              trace.size(), trace.back().arrival_ms / 1000.0, path.c_str());

  // Replay the same trace under each policy.
  cfg.trace = read_trace_file(path);
  std::printf("%-10s", "policy");
  std::printf(" %20s %20s %20s %9s\n", "p99 kf=1 (I/II)", "p99 kf=10 (I/II)",
              "p99 kf=100 (I/II)", "SLOs met");
  for (Policy policy :
       {Policy::kFifo, Policy::kPriq, Policy::kTEdf, Policy::kTfEdf}) {
    cfg.policy = policy;
    const SimResult r = run_simulation(cfg);
    std::printf("%-10s", to_string(policy));
    for (std::uint32_t kf : {1u, 10u, 100u}) {
      const auto* a = r.find_group(0, kf);
      const auto* b = r.find_group(1, kf);
      std::printf("      %6.2f / %6.2f", a != nullptr ? a->tail_latency_ms : 0.0,
                  b != nullptr ? b->tail_latency_ms : 0.0);
    }
    std::printf(" %9s\n", r.all_slos_met() ? "yes" : "no");
  }

  std::printf(
      "\nevery policy saw the *identical* arrival sequence (same classes, "
      "fanouts,\ntimes), so the differences above are pure queuing-policy "
      "effects.\n");
  return 0;
}
