// Quickstart: run TailGuard as an in-process service.
//
// Builds a TailGuardService with 8 worker threads and two service classes,
// seeds the per-worker CDF models from an offline profile (paper §III.B.2),
// submits a burst of fan-out queries, and prints per-class latencies, the
// assigned pre-dequeuing budgets (Eq. 6) and the deadline-miss ratio.
//
//   ./examples/quickstart
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "runtime/service.h"

using namespace tailguard;

int main() {
  ServiceOptions options;
  options.num_workers = 8;
  options.policy = Policy::kTfEdf;
  // Class 0: interactive (20 ms p99). Class 1: background (60 ms p99).
  options.classes = {{.slo_ms = 20.0, .percentile = 99.0},
                     {.slo_ms = 60.0, .percentile = 99.0}};

  TailGuardService service(options);

  // Offline estimation: profile says a task's post-queuing time is ~1-3 ms.
  Rng rng(42);
  std::vector<double> profile(5000);
  for (auto& x : profile) x = 1.0 + 2.0 * rng.uniform();
  service.seed_profile(profile);

  std::printf("TailGuard quickstart: %zu workers, %zu classes\n",
              service.num_workers(), options.classes.size());

  // Submit 200 queries at a sustainable open-loop rate (~30% load):
  // interactive queries fan out to 2 workers, background queries to 6.
  std::vector<std::future<QueryResult>> pending;
  for (int i = 0; i < 200; ++i) {
    const ClassId cls = i % 3 == 0 ? 1 : 0;  // 1/3 background
    const std::size_t fanout = cls == 0 ? 2 : 6;
    std::vector<ServiceTaskSpec> tasks(fanout);
    for (auto& t : tasks) {
      // Real deployments put work closures here; we simulate 1-3 ms tasks.
      t.simulated_service_ms = 1.0 + 2.0 * rng.uniform();
    }
    pending.push_back(service.submit(cls, std::move(tasks)));
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<int>(-2500.0 * std::log(rng.uniform_pos()))));
  }

  std::vector<double> latency_by_class[2];
  double budget_by_class[2] = {0.0, 0.0};
  for (auto& f : pending) {
    const QueryResult r = f.get();
    latency_by_class[r.cls].push_back(r.latency_ms);
    budget_by_class[r.cls] = r.deadline_budget_ms;
  }

  for (ClassId cls = 0; cls < 2; ++cls) {
    const auto& lat = latency_by_class[cls];
    std::printf(
        "class %u: %3zu queries  p50 %6.2f ms  p99 %6.2f ms  (SLO %.0f ms, "
        "task budget %.2f ms)\n",
        cls, lat.size(), percentile(lat, 50.0), percentile(lat, 99.0),
        options.classes[cls].slo_ms, budget_by_class[cls]);
  }
  std::printf("completed %lu queries; task deadline miss ratio %.2f%%\n",
              static_cast<unsigned long>(service.completed_queries()),
              100.0 * service.deadline_miss_ratio());
  return 0;
}
