// OLDI web-search scenario (paper §II.A, §IV.C).
//
// An online data-intensive service — web search over a sharded index —
// fans every query out to all N task servers (fanout = N) and must meet two
// tail latency SLOs: interactive search (class I) and an embedded
// experimentation class with a looser SLO (class II). This example uses the
// Xapian-calibrated service-time model and the discrete-event simulator to
// answer a capacity-planning question: at what load can each queuing policy
// run the cluster while meeting both SLOs?
//
//   ./examples/websearch_oldi [load_percent]
#include <cstdio>
#include <cstdlib>

#include "sim/experiment.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.45;

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout = std::make_shared<FixedFanout>(100);  // OLDI: touch every shard
  cfg.service_time = make_service_time_model(TailbenchApp::kXapian);
  cfg.classes = {{.slo_ms = 10.0, .percentile = 99.0},   // interactive
                 {.slo_ms = 15.0, .percentile = 99.0}};  // experiments
  cfg.class_probabilities = {0.5, 0.5};
  cfg.num_queries = 30000;
  cfg.seed = 2026;

  std::printf(
      "web-search cluster: 100 shards, every query touches all of them\n"
      "class I (interactive) p99 SLO: 10 ms; class II (experiments): 15 ms\n\n");

  std::printf("at %.0f%% load:\n", load * 100.0);
  std::printf("%-10s %14s %14s %10s\n", "policy", "p99 class-I",
              "p99 class-II", "SLOs met");
  for (Policy policy :
       {Policy::kFifo, Policy::kPriq, Policy::kTEdf, Policy::kTfEdf}) {
    cfg.policy = policy;
    set_load(cfg, load);
    const SimResult r = run_simulation(cfg);
    std::printf("%-10s %11.2f ms %11.2f ms %10s\n", to_string(policy),
                r.class_tail_latency(0), r.class_tail_latency(1),
                r.all_slos_met() ? "yes" : "no");
  }

  std::printf("\ncapacity planning (max load meeting both SLOs):\n");
  MaxLoadOptions opt;
  opt.tolerance = 0.02;
  for (Policy policy : {Policy::kFifo, Policy::kPriq, Policy::kTfEdf}) {
    cfg.policy = policy;
    const double max_load = find_max_load(cfg, opt);
    std::printf("%-10s can run the cluster at %4.0f%%\n", to_string(policy),
                max_load * 100.0);
  }
  std::printf(
      "\nTailGuard's headroom over FIFO/PRIQ is capacity you do not have to "
      "overprovision.\n");
  return 0;
}
