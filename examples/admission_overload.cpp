// Overload protection with query admission control (paper §III.C, Fig. 7).
//
// Drives the simulated cluster far past its maximum acceptable load and
// shows what happens with and without TailGuard's admission controller:
// without it every query is accepted and the tail latency SLOs collapse;
// with it a controlled fraction of queries is rejected and the admitted
// ones keep their SLOs.
//
//   ./examples/admission_overload [offered_load_percent]
#include <cstdio>
#include <cstdlib>

#include "sim/experiment.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  const double offered = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.62;

  SimConfig cfg;
  cfg.num_servers = 100;
  cfg.fanout = std::make_shared<FixedFanout>(100);
  cfg.service_time = make_service_time_model(TailbenchApp::kMasstree);
  cfg.classes = {{.slo_ms = 1.0, .percentile = 99.0},
                 {.slo_ms = 1.5, .percentile = 99.0}};
  cfg.class_probabilities = {0.5, 0.5};
  cfg.policy = Policy::kTfEdf;
  cfg.num_queries = 30000;
  cfg.seed = 3;

  // Step 1: find the cluster's capacity and the sustainable miss ratio.
  MaxLoadOptions opt;
  opt.tolerance = 0.01;
  const double max_load = find_max_load(cfg, opt);
  set_load(cfg, max_load, opt);
  const double r_th = run_simulation(cfg).task_deadline_miss_ratio;
  std::printf("cluster capacity: %.0f%% load; sustainable deadline-miss "
              "ratio R_th = %.2f%%\n\n",
              max_load * 100.0, r_th * 100.0);

  // Step 2: overload it.
  set_load(cfg, offered, opt);
  std::printf("offering %.0f%% load (%.0f%% over capacity):\n\n",
              offered * 100.0, (offered / max_load - 1.0) * 100.0);

  cfg.admission.reset();
  const SimResult open = run_simulation(cfg);
  std::printf("without admission control:\n");
  std::printf("  accepted 100%% of queries\n");
  std::printf("  p99 class-I %.2f ms (SLO 1.0), class-II %.2f ms (SLO 1.5) "
              "-> SLOs %s\n\n",
              open.class_tail_latency(0), open.class_tail_latency(1),
              open.all_slos_met() ? "met" : "VIOLATED");

  cfg.admission = AdmissionOptions{.window_tasks = 100000,
                                   .window_ms = 100.0 / cfg.arrival_rate,
                                   .miss_ratio_threshold = r_th,
                                   .mode = AdmissionMode::kProportional,
                                   .proportional_gain = 3.0};
  const SimResult guarded = run_simulation(cfg);
  std::printf("with admission control (R_th = %.2f%%, proportional):\n",
              r_th * 100.0);
  std::printf("  accepted %.1f%% load, rejected %lu of %lu queries\n",
              offered * guarded.task_admit_fraction() * 100.0,
              static_cast<unsigned long>(guarded.queries_rejected),
              static_cast<unsigned long>(guarded.queries_offered));
  std::printf("  p99 class-I %.2f ms (SLO 1.0), class-II %.2f ms (SLO 1.5) "
              "-> SLOs %s\n",
              guarded.class_tail_latency(0), guarded.class_tail_latency(1),
              guarded.all_slos_met(0.05) ? "met" : "VIOLATED");
  std::printf(
      "\nadmitted queries keep (close to) their prepaid SLOs; the rest are "
      "rejected\nupfront instead of dragging everyone past the tail.\n");
  return 0;
}
