// Shared name<->enum mapping for the command-line tools.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "workloads/tailbench.h"

namespace tailguard::tools {

inline std::optional<Policy> parse_policy(const std::string& name) {
  if (name == "fifo") return Policy::kFifo;
  if (name == "priq") return Policy::kPriq;
  if (name == "tedf" || name == "t-edf" || name == "t-edfq")
    return Policy::kTEdf;
  if (name == "tfedf" || name == "tf-edf" || name == "tailguard")
    return Policy::kTfEdf;
  return std::nullopt;
}

inline std::vector<Policy> parse_policies(const std::string& csv_or_all) {
  if (csv_or_all == "all")
    return {Policy::kFifo, Policy::kPriq, Policy::kTEdf, Policy::kTfEdf};
  std::vector<Policy> out;
  std::string token;
  for (char c : csv_or_all + ",") {
    if (c == ',') {
      if (!token.empty()) {
        const auto p = parse_policy(token);
        if (!p) return {};
        out.push_back(*p);
        token.clear();
      }
    } else {
      token += c;
    }
  }
  return out;
}

inline std::optional<TailbenchApp> parse_workload(const std::string& name) {
  if (name == "masstree") return TailbenchApp::kMasstree;
  if (name == "shore") return TailbenchApp::kShore;
  if (name == "xapian") return TailbenchApp::kXapian;
  return std::nullopt;
}

}  // namespace tailguard::tools
