// tailguard_served — the TailGuard task-server daemon.
//
// Listens on a TCP port for a remote dispatcher (net/dispatcher.h), queues
// incoming tasks under the configured policy, executes them, and streams
// TaskDone completions back. One process of this daemon is one task server
// of the paper's Fig. 2 testbed.
//
//   ./tools/tailguard_served --port 7170 --policy tailguard --executors 1
//
// Runs until SIGINT/SIGTERM. `--port 0` picks an ephemeral port (printed on
// startup), which is how the loopback tests and benches deploy fleets.
#include <csignal>
#include <cstdio>
#include <ctime>
#include <iostream>

#include "common/check.h"
#include "common/flags.h"
#include "net/task_server.h"
#include "tool_util.h"

using namespace tailguard;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  std::int64_t port = 7170;
  std::string policy_name = "tailguard";
  std::size_t num_classes = 2;
  std::size_t executors = 1;
  double gossip_ms = 0.0;
  bool once = false;

  FlagParser flags(
      "tailguard_served: TCP task-server daemon for the TailGuard remote "
      "dispatcher");
  flags.add_int("port", &port, "TCP port to listen on (0 = ephemeral)");
  flags.add_string("policy", &policy_name,
                   "queuing policy: fifo|priq|tedf|tailguard");
  flags.add_size("classes", &num_classes, "number of service classes");
  flags.add_size("executors", &executors, "execution threads");
  flags.add_double("gossip-ms", &gossip_ms,
                   "delta-gossip period in ms (0 = disabled: pre-gossip "
                   "behaviour, dispatchers rely on ModelSync backfill)");
  flags.add_bool("once", &once,
                 "start, print the port, and exit immediately (smoke tests)");
  if (!flags.parse(argc, argv, std::cout, std::cerr))
    return flags.help_requested() ? 0 : 1;

  const auto policy = tools::parse_policy(policy_name);
  if (!policy) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 1;
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "port %lld out of range\n",
                 static_cast<long long>(port));
    return 1;
  }

  net::TaskServerOptions options;
  options.port = static_cast<std::uint16_t>(port);
  options.policy = *policy;
  options.num_classes = num_classes;
  options.num_executors = executors;
  options.gossip_interval_ms = gossip_ms;

  try {
    net::TaskServer server(std::move(options));
    std::printf("tailguard_served listening on 127.0.0.1:%u (policy %s, "
                "%zu executor%s)\n",
                server.port(), to_string(*policy), executors,
                executors == 1 ? "" : "s");
    std::fflush(stdout);
    if (once) return 0;

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (!g_stop) {
      // The network and executor threads do the work; this thread only waits
      // for a shutdown signal.
      struct timespec ts = {0, 100 * 1000 * 1000};
      nanosleep(&ts, nullptr);
    }
    std::printf("tailguard_served: %llu tasks executed, %llu missed "
                "deadline; shutting down\n",
                static_cast<unsigned long long>(server.tasks_executed()),
                static_cast<unsigned long long>(server.tasks_missed_deadline()));
  } catch (const CheckFailure& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
