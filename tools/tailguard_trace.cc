// tailguard_trace — generate and inspect query traces (CSV).
//
// Examples:
//   # 100k queries at 2.5 queries/ms, paper fanout mix, two classes
//   tailguard_trace --out /tmp/trace.csv --queries 100000 --rate 2.5
//       --class-probs 0.5,0.5   (continued)
//
//   # summarize an existing trace
//   tailguard_trace --inspect /tmp/trace.csv
#include <cstdio>
#include <iostream>
#include <map>

#include "common/flags.h"
#include "workloads/trace.h"

using namespace tailguard;

namespace {

int inspect(const std::string& path) {
  const auto trace = read_trace_file(path);
  if (trace.empty()) {
    std::printf("%s: empty trace\n", path.c_str());
    return 0;
  }
  std::map<std::uint32_t, std::size_t> by_class;
  std::map<std::uint32_t, std::size_t> by_fanout;
  std::uint64_t tasks = 0;
  for (const auto& rec : trace) {
    ++by_class[rec.class_id];
    ++by_fanout[rec.fanout];
    tasks += rec.fanout;
  }
  const double span_ms = trace.back().arrival_ms - trace.front().arrival_ms;
  std::printf("%s: %zu queries, %llu tasks, %.1f ms span (%.3f queries/ms)\n",
              path.c_str(), trace.size(),
              static_cast<unsigned long long>(tasks), span_ms,
              span_ms > 0 ? static_cast<double>(trace.size()) / span_ms : 0.0);
  std::printf("classes:");
  for (const auto& [cls, n] : by_class)
    std::printf("  %u: %zu (%.1f%%)", cls, n, 100.0 * n / trace.size());
  std::printf("\nfanouts:");
  for (const auto& [kf, n] : by_fanout)
    std::printf("  %u: %zu (%.1f%%)", kf, n, 100.0 * n / trace.size());
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string inspect_path;
  std::size_t queries = 100000;
  double rate = 1.0;
  bool pareto = false;
  double pareto_shape = 1.5;
  std::vector<double> class_probs;
  std::vector<double> fanout_values = {1, 10, 100};
  std::vector<double> fanout_probs;
  std::int64_t seed = 1;

  FlagParser parser("tailguard_trace — generate / inspect query trace CSVs");
  parser.add_string("out", &out_path, "write a generated trace here");
  parser.add_string("inspect", &inspect_path, "summarize this trace instead");
  parser.add_size("queries", &queries, "number of queries to generate");
  parser.add_double("rate", &rate, "mean arrival rate, queries per ms");
  parser.add_bool("pareto", &pareto, "Pareto arrivals instead of Poisson");
  parser.add_double("pareto-shape", &pareto_shape, "Pareto tail index (>1)");
  parser.add_double_list("class-probs", &class_probs,
                         "class mix; empty = single class");
  parser.add_double_list("fanout-values", &fanout_values,
                         "categorical fanout support");
  parser.add_double_list("fanout-probs", &fanout_probs,
                         "fanout probabilities; empty = proportional to "
                         "1/fanout (the paper's mix)");
  parser.add_int("seed", &seed, "random seed");
  if (!parser.parse(argc, argv, std::cout, std::cerr))
    return parser.help_requested() ? 0 : 1;

  if (!inspect_path.empty()) return inspect(inspect_path);
  if (out_path.empty()) {
    std::cerr << "need --out <file> or --inspect <file> (try --help)\n";
    return 1;
  }

  std::vector<std::uint32_t> values;
  for (double v : fanout_values)
    values.push_back(static_cast<std::uint32_t>(v));
  std::vector<double> probs = fanout_probs;
  if (probs.empty()) {
    for (std::uint32_t v : values) probs.push_back(1.0 / v);
  }
  if (probs.size() != values.size()) {
    std::cerr << "--fanout-probs must match --fanout-values\n";
    return 1;
  }

  const CategoricalFanout fanout(values, probs);
  Rng rng(static_cast<std::uint64_t>(seed));
  TraceSpec spec;
  spec.num_queries = queries;
  spec.class_probabilities = class_probs;

  std::unique_ptr<ArrivalProcess> arrivals;
  if (pareto) {
    arrivals = std::make_unique<ParetoProcess>(rate, pareto_shape);
  } else {
    arrivals = std::make_unique<PoissonProcess>(rate);
  }
  const auto trace = generate_trace(spec, *arrivals, fanout, rng);
  write_trace_file(trace, out_path);
  std::printf("wrote %zu queries to %s (%.1f ms of arrivals)\n", trace.size(),
              out_path.c_str(), trace.back().arrival_ms);
  return 0;
}
