// tailguard_sim — command-line driver for the TailGuard cluster simulator.
//
// Examples:
//   # p99 per query type for every policy at 40% load
//   tailguard_sim --workload masstree --slos 1.0,1.5 --load 0.4
//
//   # maximum load meeting the SLOs, TailGuard only, CSV output
//   tailguard_sim --policies tailguard --slos 1.0 --find-max-load --format csv
//
//   # OLDI: every query fans out to all servers, Pareto arrivals
//   tailguard_sim --fixed-fanout 100 --slos 1.0,1.5 --pareto --load 0.5
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "sas/testbed.h"
#include "sim/experiment.h"
#include "tool_util.h"
#include "workloads/tailbench.h"

using namespace tailguard;

int main(int argc, char** argv) {
  std::string workload = "masstree";
  std::string policies_flag = "all";
  std::string format = "table";
  std::string estimation = "exact";
  std::size_t servers = 100;
  std::size_t queries = 100000;
  double load = 0.4;
  std::vector<double> loads;
  std::vector<double> slos = {1.0};
  std::vector<double> class_probs;
  double percentile_pct = 99.0;
  std::int64_t fixed_fanout = 0;
  bool pareto = false;
  bool find_max = false;
  bool sas = false;
  std::int64_t seed = 1;
  double admission_rth = 0.0;

  FlagParser parser(
      "tailguard_sim — discrete-event simulation of TF-EDFQ task scheduling "
      "(TailGuard, ICDCS 2023) against FIFO/PRIQ/T-EDFQ baselines");
  parser.add_string("workload", &workload,
                    "service-time model: masstree | shore | xapian");
  parser.add_string("policies", &policies_flag,
                    "comma list of fifo,priq,tedf,tailguard or 'all'");
  parser.add_size("servers", &servers, "number of task servers");
  parser.add_size("queries", &queries, "queries to simulate per run");
  parser.add_double("load", &load, "offered load in (0,1)");
  parser.add_double_list("loads", &loads,
                         "sweep these loads instead of --load");
  parser.add_double_list("slos", &slos,
                         "per-class tail latency SLOs in ms (one class each)");
  parser.add_double_list("class-probs", &class_probs,
                         "class mix (defaults to uniform)");
  parser.add_double("percentile", &percentile_pct,
                    "SLO percentile, e.g. 99 or 95");
  parser.add_int("fixed-fanout", &fixed_fanout,
                 "use this fanout for every query (0 = paper mix 1/10/100)");
  parser.add_bool("pareto", &pareto, "Pareto arrivals instead of Poisson");
  parser.add_bool("find-max-load", &find_max,
                  "binary-search the max load meeting all SLOs");
  parser.add_string("estimation", &estimation,
                    "CDF source: exact | offline | single | online");
  parser.add_double("admission-rth", &admission_rth,
                    "enable admission control with this miss-ratio "
                    "threshold (0 = off)");
  parser.add_bool("sas", &sas,
                  "simulate the paper's SaS edge testbed instead (ignores "
                  "workload/servers/slos/fanout flags; load = Server-room "
                  "cluster load)");
  parser.add_string("format", &format, "output format: table | csv");
  parser.add_int("seed", &seed, "random seed");
  if (!parser.parse(argc, argv, std::cout, std::cerr))
    return parser.help_requested() ? 0 : 1;

  const auto policies = tools::parse_policies(policies_flag);
  if (policies.empty()) {
    std::cerr << "bad --policies value: " << policies_flag << "\n";
    return 1;
  }

  SimConfig cfg;
  MaxLoadOptions opt;
  opt.tolerance = 0.01;

  if (sas) {
    cfg = make_sas_config(Policy::kTfEdf, static_cast<std::uint64_t>(seed),
                          queries);
    const MaxLoadOptions sas_opt = sas_load_options();
    opt.work_per_query = sas_opt.work_per_query;
    opt.capacity_servers = sas_opt.capacity_servers;
  } else {
    const auto app = tools::parse_workload(workload);
    if (!app) {
      std::cerr << "unknown workload: " << workload << "\n";
      return 1;
    }
    cfg.num_servers = servers;
    cfg.service_time = make_service_time_model(*app);
    cfg.num_queries = queries;
    cfg.seed = static_cast<std::uint64_t>(seed);
    for (double slo : slos)
      cfg.classes.push_back({.slo_ms = slo, .percentile = percentile_pct});
    if (!class_probs.empty()) {
      if (class_probs.size() != slos.size()) {
        std::cerr << "--class-probs must have one entry per SLO\n";
        return 1;
      }
      cfg.class_probabilities = class_probs;
    } else if (slos.size() > 1) {
      cfg.class_probabilities.assign(slos.size(), 1.0 / slos.size());
    }
    if (fixed_fanout > 0) {
      cfg.fanout = std::make_shared<FixedFanout>(
          static_cast<std::uint32_t>(fixed_fanout));
    } else {
      cfg.fanout =
          std::make_shared<CategoricalFanout>(CategoricalFanout::paper_mix());
    }
  }
  cfg.arrival_kind = pareto ? ArrivalKind::kPareto : ArrivalKind::kPoisson;
  if (estimation == "offline") {
    cfg.estimation = EstimationMode::kOfflineEmpirical;
  } else if (estimation == "single") {
    cfg.estimation = EstimationMode::kOfflineSingleProfile;
  } else if (estimation == "online") {
    cfg.estimation = EstimationMode::kOnlineFromSingleProfile;
  } else if (estimation != "exact") {
    std::cerr << "unknown --estimation: " << estimation << "\n";
    return 1;
  }

  const bool csv = format == "csv";

  if (find_max) {
    if (csv) std::printf("policy,max_load\n");
    for (Policy policy : policies) {
      cfg.policy = policy;
      const double max_load = find_max_load(cfg, opt);
      if (csv) {
        std::printf("%s,%.4f\n", to_string(policy), max_load);
      } else {
        std::printf("%-10s max load %5.1f%%\n", to_string(policy),
                    max_load * 100.0);
      }
    }
    return 0;
  }

  if (loads.empty()) loads.push_back(load);
  if (csv)
    std::printf("policy,load,class,fanout,queries,p%.0f_ms,mean_ms,slo_ms,met\n",
                percentile_pct);
  for (Policy policy : policies) {
    cfg.policy = policy;
    for (double l : loads) {
      set_load(cfg, l, opt);
      if (admission_rth > 0.0) {
        cfg.admission =
            AdmissionOptions{.window_tasks = 100000,
                             .window_ms = 100.0 / cfg.arrival_rate,
                             .miss_ratio_threshold = admission_rth};
      }
      const SimResult r = run_simulation(cfg);
      if (!csv) {
        std::printf("%s @ %.0f%% load (util %.2f, miss %.3f%%, rejected %lu):\n",
                    to_string(policy), l * 100.0, r.measured_utilization,
                    100.0 * r.task_deadline_miss_ratio,
                    static_cast<unsigned long>(r.queries_rejected));
      }
      for (const auto& g : r.groups) {
        if (csv) {
          std::printf("%s,%.3f,%u,%u,%lu,%.4f,%.4f,%.3f,%d\n",
                      to_string(policy), l, g.cls, g.fanout,
                      static_cast<unsigned long>(g.queries), g.tail_latency_ms,
                      g.mean_latency_ms, g.slo, g.met ? 1 : 0);
        } else {
          std::printf(
              "  class %u kf %-5u %8lu queries   p%.0f %8.3f ms   (SLO %.3f "
              "ms) %s\n",
              g.cls, g.fanout, static_cast<unsigned long>(g.queries),
              percentile_pct, g.tail_latency_ms, g.slo, g.met ? "ok" : "MISS");
        }
      }
    }
  }
  return 0;
}
