// CLI for the TailGuard invariant checker. Exit status 0 iff clean.
//
//   tg_lint --check src tests bench tools          # lint the repo tree
//   tg_lint --root /path/to/repo --check src       # from anywhere
//   tg_lint --list-rules                           # what is enforced, and why
#include <cstdio>
#include <string>
#include <vector>

#include "lint/tg_lint.h"

namespace {

int usage(std::FILE* to) {
  std::fputs(
      "usage: tg_lint [--root DIR] [--check] PATH...\n"
      "       tg_lint --list-rules\n"
      "\nLints *.h / *.cc under each PATH (file or directory, resolved\n"
      "against --root, default '.') for TailGuard invariant violations.\n"
      "Prints one line per finding and exits non-zero if any.\n",
      to);
  return to == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(stdout);
    if (arg == "--list-rules") {
      std::fputs(tailguard::lint::rule_summary().c_str(), stdout);
      return 0;
    }
    if (arg == "--check") continue;  // checking is the only mode
    if (arg == "--root") {
      if (++i >= argc) return usage(stderr);
      root = argv[i];
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "tg_lint: unknown flag '%s'\n", arg.c_str());
      return usage(stderr);
    }
    paths.push_back(arg);
  }
  if (paths.empty()) return usage(stderr);

  std::string error;
  std::size_t num_files = 0;
  const auto diags =
      tailguard::lint::lint_paths(root, paths, &error, &num_files);
  if (!error.empty()) {
    std::fprintf(stderr, "tg_lint: %s\n", error.c_str());
    return 2;
  }
  for (const auto& d : diags) {
    std::fprintf(stdout, "%s:%d: [%s] %s\n", d.path.c_str(), d.line,
                 d.rule.c_str(), d.message.c_str());
  }
  std::fprintf(stdout, "tg_lint: %zu finding(s) in %zu file(s) scanned\n",
               diags.size(), num_files);
  return diags.empty() ? 0 : 1;
}
