#include "lint/tg_lint.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace tailguard::lint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Replaces comments, string literals and char literals with spaces so the
/// rule scanners never match inside them. Newlines are preserved (including
/// inside block comments and raw strings) so line numbers stay valid.
std::string scrub(std::string_view src) {
  std::string out(src);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"' &&
                   (i == 0 || src[i - 1] != 'R' ||
                    (i >= 2 && is_ident_char(src[i - 2])))) {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '"') {  // R"...
          raw_delim.clear();
          std::size_t j = i + 1;
          while (j < src.size() && src[j] != '(') raw_delim += src[j++];
          state = State::kRawString;
          out[i] = ' ';
        } else if (c == '\'' && (i == 0 || !is_ident_char(src[i - 1]))) {
          // Leading-char test keeps digit separators (1'000'000) intact.
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLineComment:
        if (c == '\n')
          state = State::kCode;
        else
          out[i] = ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString: {
        const std::string closer = ")" + raw_delim + "\"";
        if (src.compare(i, closer.size(), closer) == 0) {
          for (std::size_t k = 0; k < closer.size(); ++k) out[i + k] = ' ';
          i += closer.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Parses `// tg-lint: allow(rule-a, rule-b)` suppressions out of the raw
/// (un-scrubbed) line. Returns the allowed rule names, or empty if none.
std::set<std::string> parse_allows(std::string_view raw_line) {
  std::set<std::string> rules;
  const std::size_t at = raw_line.find("tg-lint:");
  if (at == std::string_view::npos) return rules;
  const std::size_t open = raw_line.find('(', at);
  const std::size_t close =
      open == std::string_view::npos ? open : raw_line.find(')', open);
  if (open == std::string_view::npos || close == std::string_view::npos)
    return rules;
  std::string token;
  for (std::size_t i = open + 1; i <= close; ++i) {
    const char c = raw_line[i];
    if (c == ',' || c == ')') {
      if (!token.empty()) rules.insert(token);
      token.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      token += c;
    }
  }
  return rules;
}

/// Finds whole-word occurrences of `word` in `line`; `from` advances the scan.
std::size_t find_word(std::string_view line, std::string_view word,
                      std::size_t from = 0) {
  while (from < line.size()) {
    const std::size_t at = line.find(word, from);
    if (at == std::string_view::npos) return std::string_view::npos;
    const bool left_ok = at == 0 || !is_ident_char(line[at - 1]);
    const std::size_t end = at + word.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return at;
    from = at + 1;
  }
  return std::string_view::npos;
}

char next_nonspace(std::string_view line, std::size_t from) {
  while (from < line.size() &&
         std::isspace(static_cast<unsigned char>(line[from])))
    ++from;
  return from < line.size() ? line[from] : '\0';
}

// ---------------------------------------------------------------------------
// Rule context
// ---------------------------------------------------------------------------

struct FileCtx {
  std::string path;                          // repo-relative
  std::vector<std::string_view> raw_lines;   // for suppressions
  std::vector<std::string_view> code_lines;  // scrubbed
  std::vector<Diagnostic>* diags = nullptr;

  bool in_dir(std::string_view dir) const { return starts_with(path, dir); }

  void report(int line_1based, std::string rule, std::string message) const {
    // A `tg-lint: allow(...)` on the offending line or the line above
    // suppresses the rule (or every rule, with `allow(all)`).
    for (int l = line_1based; l >= line_1based - 1 && l >= 1; --l) {
      const auto allows = parse_allows(raw_lines[static_cast<std::size_t>(l) - 1]);
      if (allows.count("all") || allows.count(rule)) return;
    }
    diags->push_back(Diagnostic{path, line_1based, std::move(rule),
                                std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// determinism-random — std:: randomness sources outside src/common/rng.h
// ---------------------------------------------------------------------------

void check_determinism_random(const FileCtx& ctx) {
  if (ctx.path == "src/common/rng.h") return;
  static constexpr std::array<std::string_view, 8> kBanned = {
      "random_device",     "mt19937",  "mt19937_64", "minstd_rand",
      "default_random_engine", "ranlux24", "ranlux48", "knuth_b"};
  static constexpr std::array<std::string_view, 4> kBannedCalls = {
      "rand", "srand", "rand_r", "drand48"};
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = ctx.code_lines[i];
    for (const auto token : kBanned) {
      if (find_word(line, token) != std::string_view::npos) {
        ctx.report(static_cast<int>(i) + 1, "determinism-random",
                   "nondeterminism source '" + std::string(token) +
                       "'; draw from a seeded tailguard::Rng "
                       "(src/common/rng.h) so runs are reproducible");
        break;
      }
    }
    for (const auto fn : kBannedCalls) {
      const std::size_t at = find_word(line, fn);
      if (at != std::string_view::npos &&
          next_nonspace(line, at + fn.size()) == '(') {
        ctx.report(static_cast<int>(i) + 1, "determinism-random",
                   "libc randomness '" + std::string(fn) +
                       "()'; draw from a seeded tailguard::Rng "
                       "(src/common/rng.h) so runs are reproducible");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// determinism-clock — wall/monotonic clock reads outside real-time layers
// ---------------------------------------------------------------------------

bool clock_allowed(const FileCtx& ctx) {
  // The networked runtime, the threaded runtime, and wall-clock bench timing
  // are genuinely real-time; everything else must run on simulated time.
  return ctx.in_dir("src/net/") || ctx.in_dir("src/runtime/") ||
         ctx.in_dir("bench/") || ctx.path == "tools/tailguard_served.cc" ||
         ctx.path == "tests/net_test.cc" || ctx.path == "tests/gossip_test.cc" ||
         ctx.path == "tests/runtime_test.cc" ||
         ctx.path == "tests/loadgen_test.cc";
}

void check_determinism_clock(const FileCtx& ctx) {
  if (clock_allowed(ctx)) return;
  static constexpr std::array<std::string_view, 5> kClocks = {
      "system_clock", "steady_clock", "high_resolution_clock", "clock_gettime",
      "gettimeofday"};
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = ctx.code_lines[i];
    for (const auto token : kClocks) {
      if (find_word(line, token) != std::string_view::npos) {
        ctx.report(static_cast<int>(i) + 1, "determinism-clock",
                   "wall/monotonic clock '" + std::string(token) +
                       "' in a deterministic layer; simulation code must "
                       "only observe simulated TimeMs");
        break;
      }
    }
    // time(nullptr) / time(NULL) / time(0) — the classic seed leak.
    std::size_t at = 0;
    while ((at = find_word(line, "time", at)) != std::string_view::npos) {
      std::size_t j = at + 4;
      while (j < line.size() &&
             std::isspace(static_cast<unsigned char>(line[j])))
        ++j;
      if (j < line.size() && line[j] == '(') {
        std::size_t k = j + 1;
        while (k < line.size() &&
               std::isspace(static_cast<unsigned char>(line[k])))
          ++k;
        for (const std::string_view arg : {"nullptr", "NULL", "0"}) {
          if (line.compare(k, arg.size(), arg) == 0 &&
              next_nonspace(line, k + arg.size()) == ')') {
            ctx.report(static_cast<int>(i) + 1, "determinism-clock",
                       "'time(" + std::string(arg) +
                           ")' wall-clock read; seed from configuration, "
                           "never from the clock");
            break;
          }
        }
      }
      at += 4;
    }
  }
}

// ---------------------------------------------------------------------------
// time-units — duration identifiers must carry a unit suffix
// ---------------------------------------------------------------------------

bool has_unit_suffix(std::string_view id) {
  if (ends_with(id, "_")) id.remove_suffix(1);  // member convention foo_ms_
  return ends_with(id, "_s") || ends_with(id, "_ms") || ends_with(id, "_us") ||
         ends_with(id, "_ns");
}

void check_time_units(const FileCtx& ctx) {
  static constexpr std::array<std::string_view, 9> kDurationWords = {
      "timeout", "elapsed",  "interval", "delay",  "latency",
      "duration", "budget",  "backoff",  "period"};
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = ctx.code_lines[i];
    std::string_view trimmed = line;
    while (!trimmed.empty() &&
           std::isspace(static_cast<unsigned char>(trimmed.front())))
      trimmed.remove_prefix(1);
    if (starts_with(trimmed, "#")) continue;  // preprocessor lines
    // std::chrono declarations carry their unit in the type system, which is
    // exactly what the rule wants — the identifier needs no suffix.
    if (line.find("chrono") != std::string_view::npos) continue;
    std::size_t pos = 0;
    while (pos < line.size()) {
      if (!is_ident_char(line[pos]) ||
          std::isdigit(static_cast<unsigned char>(line[pos]))) {
        ++pos;
        continue;
      }
      std::size_t end = pos;
      while (end < line.size() && is_ident_char(line[end])) ++end;
      std::string_view id = line.substr(pos, end - pos);
      const std::size_t id_start = pos;
      pos = end;
      // Qualified names (std::chrono::duration) and callees/templates
      // (estimator.budget(...), duration<double>) name operations or chrono
      // types, not unit-ambiguous quantities.
      if (id_start >= 2 && line[id_start - 1] == ':' &&
          line[id_start - 2] == ':')
        continue;
      const char after = next_nonspace(line, end);
      if (after == '(' || after == '<') continue;
      std::string_view stem = id;
      if (ends_with(stem, "_")) stem.remove_suffix(1);
      for (const auto word : kDurationWords) {
        if ((stem == word || ends_with(stem, std::string("_") + std::string(word))) &&
            !has_unit_suffix(id)) {
          ctx.report(static_cast<int>(i) + 1, "time-units",
                     "duration-valued identifier '" + std::string(id) +
                         "' has no unit suffix; name it '" + std::string(id) +
                         "_ms' (or _s/_us/_ns) or use std::chrono types "
                         "(Eq. 6 budgets and deadlines must be "
                         "unit-unambiguous)");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// lock-discipline — no naked .lock()/.unlock()/.try_lock()
// ---------------------------------------------------------------------------

void check_lock_discipline(const FileCtx& ctx) {
  static constexpr std::array<std::string_view, 3> kCalls = {"lock", "unlock",
                                                             "try_lock"};
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = ctx.code_lines[i];
    for (const auto fn : kCalls) {
      std::size_t at = 0;
      while ((at = find_word(line, fn, at)) != std::string_view::npos) {
        const bool member_call =
            (at >= 1 && line[at - 1] == '.') ||
            (at >= 2 && line[at - 2] == '-' && line[at - 1] == '>');
        std::size_t j = at + fn.size();
        const bool zero_arg_call =
            next_nonspace(line, j) == '(' &&
            next_nonspace(line, line.find('(', j) + 1) == ')';
        if (member_call && zero_arg_call) {
          ctx.report(static_cast<int>(i) + 1, "lock-discipline",
                     "naked ." + std::string(fn) +
                         "(); hold mutexes via std::lock_guard / "
                         "std::unique_lock / std::scoped_lock so early "
                         "returns and exceptions cannot leak the lock "
                         "(suppress for weak_ptr::lock with tg-lint: allow)");
          break;
        }
        at += fn.size();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// header-hygiene — #pragma once first; no `using namespace` in headers
// ---------------------------------------------------------------------------

void check_header_hygiene(const FileCtx& ctx) {
  if (!ends_with(ctx.path, ".h")) return;
  bool saw_code = false;
  bool pragma_first = false;
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = ctx.code_lines[i];
    std::string_view trimmed = line;
    while (!trimmed.empty() &&
           std::isspace(static_cast<unsigned char>(trimmed.front())))
      trimmed.remove_prefix(1);
    while (!trimmed.empty() &&
           std::isspace(static_cast<unsigned char>(trimmed.back())))
      trimmed.remove_suffix(1);
    if (!saw_code && !trimmed.empty()) {
      saw_code = true;
      pragma_first = trimmed == "#pragma once";
      if (!pragma_first)
        ctx.report(static_cast<int>(i) + 1, "header-hygiene",
                   "header's first code line must be '#pragma once' "
                   "(include guards and late pragmas are error-prone)");
    }
    const std::size_t at = find_word(trimmed, "using");
    if (at != std::string_view::npos) {
      const std::size_t ns = find_word(trimmed, "namespace", at);
      if (ns != std::string_view::npos && ns > at &&
          trimmed.substr(at + 5, ns - at - 5).find_first_not_of(" \t") ==
              std::string_view::npos) {
        ctx.report(static_cast<int>(i) + 1, "header-hygiene",
                   "'using namespace' in a header leaks into every includer; "
                   "qualify names or alias instead");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// wire-safety — struct punning stays inside wire.cc's endian helpers
// ---------------------------------------------------------------------------

void check_wire_safety(const FileCtx& ctx) {
  if (!ctx.in_dir("src/net/") || ctx.path == "src/net/wire.cc") return;
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = ctx.code_lines[i];
    // Casting to sockaddr* is the POSIX API's own calling convention.
    if (find_word(line, "sockaddr") != std::string_view::npos) continue;
    if (find_word(line, "reinterpret_cast") != std::string_view::npos) {
      ctx.report(static_cast<int>(i) + 1, "wire-safety",
                 "reinterpret_cast in src/net/; wire bytes must go through "
                 "wire.cc's explicit little-endian helpers, never struct "
                 "punning (host endianness would leak onto the wire)");
    }
    if (find_word(line, "memcpy") != std::string_view::npos) {
      ctx.report(static_cast<int>(i) + 1, "wire-safety",
                 "memcpy in src/net/; serialize through wire.cc's explicit "
                 "little-endian helpers so multi-byte integers have one wire "
                 "order");
    }
  }
}

// ---------------------------------------------------------------------------
// control-plane-boundary — backends drive the control plane, never the parts
// ---------------------------------------------------------------------------

void check_control_plane_boundary(const FileCtx& ctx) {
  if (!ctx.in_dir("src/sim/") && !ctx.in_dir("src/runtime/") &&
      !ctx.in_dir("src/net/") && !ctx.in_dir("src/sas/") &&
      !ctx.in_dir("src/shard/"))
    return;
  // The sharding facade is the single sanctioned owner of QueryControlPlane
  // replicas; everything else — backends and the rest of src/shard — talks
  // to ShardedControlPlane, and cross-shard state flows through StateSyncBus
  // deltas only.
  const bool is_facade = ctx.path == "src/shard/sharded_control_plane.h" ||
                         ctx.path == "src/shard/sharded_control_plane.cc";
  static constexpr std::array<std::string_view, 3> kComponents = {
      "DeadlineEstimator", "QueryTracker", "AdmissionController"};
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = ctx.code_lines[i];
    bool fired = false;
    for (const auto token : kComponents) {
      if (find_word(line, token) != std::string_view::npos) {
        ctx.report(static_cast<int>(i) + 1, "control-plane-boundary",
                   "'" + std::string(token) +
                       "' referenced in an execution backend; the per-query "
                       "pipeline (admission, Eq. 6/7 budgets, placement, t_D, "
                       "tracking, accounting) lives in core/control_plane.h — "
                       "drive a ShardedControlPlane instead of owning its "
                       "parts, so scheduling changes land once, not per "
                       "backend");
        fired = true;
        break;
      }
    }
    if (!fired && !is_facade &&
        find_word(line, "QueryControlPlane") != std::string_view::npos) {
      ctx.report(static_cast<int>(i) + 1, "control-plane-boundary",
                 "'QueryControlPlane' referenced outside the sharding facade; "
                 "a shard's replica is private to "
                 "shard/sharded_control_plane.{h,cc} — backends drive a "
                 "ShardedControlPlane, and cross-shard state moves only as "
                 "StateSyncBus deltas, never by reaching into another "
                 "shard's plane");
      fired = true;
    }
    if (fired) continue;
    // Placement is pluggable behind QueryControlPlane::place(); a backend
    // that names the raw picker or a concrete policy class has hard-wired
    // one strategy and broken TAILGUARD_PLACEMENT selection. The facade is
    // NOT exempt: it forwards place() and ships slack deltas, but policy
    // construction belongs to core/placement/policy.cc alone.
    static constexpr std::array<std::string_view, 4> kPlacementTokens = {
        "pick_least_loaded", "LeastLoadedPolicy", "PowerOfDPolicy",
        "SlackTailRiskPolicy"};
    for (const auto token : kPlacementTokens) {
      if (find_word(line, token) != std::string_view::npos) {
        ctx.report(static_cast<int>(i) + 1, "control-plane-boundary",
                   "'" + std::string(token) +
                       "' referenced in an execution backend; placement is a "
                       "pluggable policy behind QueryControlPlane::place() "
                       "(core/placement/policy.h), selected via "
                       "PlacementPolicyOptions / TAILGUARD_PLACEMENT — "
                       "naming the raw picker or a concrete policy class "
                       "hard-wires one strategy into this backend");
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// hot-path-map — node-based std maps stay out of the sim/core hot path
// ---------------------------------------------------------------------------

void check_hot_path_map(const FileCtx& ctx) {
  if (!ctx.in_dir("src/sim/") && !ctx.in_dir("src/core/")) return;
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = ctx.code_lines[i];
    std::string offender;
    if (find_word(line, "unordered_map") != std::string_view::npos) {
      offender = "std::unordered_map";
    } else {
      std::size_t at = 0;
      while ((at = find_word(line, "map", at)) != std::string_view::npos) {
        if (at >= 5 && line[at - 1] == ':' && line[at - 2] == ':' &&
            line.compare(at - 5, 3, "std") == 0) {
          offender = "std::map";
          break;
        }
        at += 3;
      }
      if (offender.empty() &&
          next_nonspace(line, 0) == '#' &&
          line.find("<map>") != std::string_view::npos) {
        offender = "#include <map>";
      }
    }
    if (!offender.empty()) {
      ctx.report(static_cast<int>(i) + 1, "hot-path-map",
                 "'" + offender +
                     "' in a sim/core hot-path file; node-based maps "
                     "allocate and pointer-chase per entry, which is what "
                     "the 10M tasks/s loop cannot afford — use SlabMap / "
                     "SlabHashCache (common/slab_map.h), or mark a genuinely "
                     "cold use with tg-lint: allow(hot-path-map)");
    }
  }
}

// ---------------------------------------------------------------------------
// atomic-order — every atomic access must pass an explicit std::memory_order
// ---------------------------------------------------------------------------

/// True when the argument list opening at `(line_idx, open_pos)` contains
/// `needle` before its matching ')'. Calls may span lines (a store whose
/// order rides on the continuation line); the scan is bounded at 8 lines.
bool call_args_contain(const std::vector<std::string_view>& lines,
                       std::size_t line_idx, std::size_t open_pos,
                       std::string_view needle) {
  int depth = 0;
  std::string args;
  for (std::size_t l = line_idx; l < lines.size() && l < line_idx + 8; ++l) {
    const std::string_view line = lines[l];
    for (std::size_t i = l == line_idx ? open_pos : 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '(') {
        ++depth;
      } else if (c == ')') {
        if (--depth == 0) return args.find(needle) != std::string::npos;
      }
      if (depth >= 1) args += c;
    }
    args += ' ';
  }
  return args.find(needle) != std::string::npos;  // unterminated: best effort
}

void check_atomic_order(const FileCtx& ctx) {
  // Hot-path and tooling code must state its ordering intent; tests and
  // benches may lean on the seq_cst default for clarity.
  if (!ctx.in_dir("src/") && !ctx.in_dir("tools/")) return;
  static constexpr std::array<std::string_view, 11> kOps = {
      "load",      "store",     "exchange",
      "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or",  "fetch_xor", "compare_exchange_weak",
      "compare_exchange_strong", "test_and_set"};
  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = ctx.code_lines[i];
    for (const auto op : kOps) {
      std::size_t at = 0;
      while ((at = find_word(line, op, at)) != std::string_view::npos) {
        const bool member_call =
            (at >= 1 && line[at - 1] == '.') ||
            (at >= 2 && line[at - 2] == '-' && line[at - 1] == '>');
        const std::size_t after = at + op.size();
        if (member_call && next_nonspace(line, after) == '(' &&
            !call_args_contain(ctx.code_lines, i, line.find('(', after),
                               "memory_order")) {
          ctx.report(static_cast<int>(i) + 1, "atomic-order",
                     "atomic ." + std::string(op) +
                         "() without an explicit std::memory_order; the "
                         "implicit seq_cst default hides intent on the hot "
                         "path — state (and justify in a comment) the "
                         "weakest correct order, or suppress a non-atomic "
                         "member call with tg-lint: allow(atomic-order)");
          break;
        }
        at = after;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// guarded-member — mutex-owning classes must annotate their mutable members
// ---------------------------------------------------------------------------

bool brace_balanced(std::string_view line) {
  int depth = 0;
  for (const char c : line) {
    if (c == '{') ++depth;
    if (c == '}' && --depth < 0) return false;
  }
  return depth == 0;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// In the concurrent directories, a class that directly owns a Mutex must
/// say — in the type system, via TG_GUARDED_BY — which members that mutex
/// protects; anything deliberately unguarded (immutable after construction,
/// thread-private, self-synchronizing) carries an explicit allow with its
/// why-comment. A heuristic single-pass scanner: it tracks brace scopes,
/// marks which are class bodies, and collects unannotated data-member lines;
/// members that are themselves synchronization primitives (atomics, mutexes,
/// condvars, threads) and function/using/static declarations are exempt.
void check_guarded_member(const FileCtx& ctx) {
  const bool concurrent_dir =
      ctx.in_dir("src/runtime/") || ctx.in_dir("src/net/") ||
      ctx.in_dir("src/common/") || ctx.in_dir("src/shard/");
  if (!concurrent_dir) return;
  // The annotated primitives themselves (Mutex wraps a std::mutex, CondVar a
  // std::condition_variable_any).
  if (ctx.path == "src/common/thread_annotations.h") return;

  static constexpr std::array<std::string_view, 4> kMutexWords = {
      "Mutex", "mutex", "shared_mutex", "recursive_mutex"};
  static constexpr std::array<std::string_view, 8> kSyncWords = {
      "atomic",   "atomic_flag", "CondVar", "condition_variable",
      "thread",   "jthread",     "once_flag", "stop_token"};
  static constexpr std::array<std::string_view, 15> kDeclExempt = {
      "public",   "private", "protected", "using",    "typedef",
      "friend",   "template", "static",   "constexpr", "enum",
      "struct",   "class",   "union",     "operator", "const"};

  struct Scope {
    bool is_class = false;
    bool owns_mutex = false;
    std::vector<int> unannotated;  // 1-based candidate member lines
  };
  std::vector<Scope> stack;
  bool pending_class = false;

  const auto close_scope = [&ctx](const Scope& scope) {
    if (!scope.is_class || !scope.owns_mutex) return;
    for (const int line : scope.unannotated)
      ctx.report(line, "guarded-member",
                 "class owns a Mutex, so this mutable member needs "
                 "TG_GUARDED_BY(<its mutex>) (common/thread_annotations.h) — "
                 "or document why no lock protects it with tg-lint: "
                 "allow(guarded-member)");
  };

  for (std::size_t i = 0; i < ctx.code_lines.size(); ++i) {
    const std::string_view line = ctx.code_lines[i];

    // Member analysis against the scope state at line start.
    if (!stack.empty() && stack.back().is_class) {
      const std::string_view t = trim(line);
      if (!t.empty() && t.back() == ';' && brace_balanced(line)) {
        const bool annotated =
            t.find("TG_GUARDED_BY") != std::string_view::npos ||
            t.find("TG_PT_GUARDED_BY") != std::string_view::npos;
        // Parens mean a function declaration, a member with a paren
        // initializer, or the continuation line of a wrapped declaration —
        // none of which is a candidate, and none of which may claim mutex
        // ownership (e.g. a method *returning* locks).
        const bool has_paren = t.find('(') != std::string_view::npos ||
                               t.find(')') != std::string_view::npos;
        bool is_mutex = false;
        if (!has_paren)
          for (const auto w : kMutexWords)
            is_mutex |= find_word(t, w) != std::string_view::npos;
        if (is_mutex && !annotated) {
          stack.back().owns_mutex = true;
        } else if (!annotated && !has_paren) {
          bool exempt =
              !(std::isalpha(static_cast<unsigned char>(t.front())) ||
                t.front() == '_' || t.front() == ':');
          for (const auto w : kSyncWords)
            exempt |= find_word(t, w) != std::string_view::npos;
          const std::size_t tok_end = [&] {
            std::size_t e = 0;
            while (e < t.size() && is_ident_char(t[e])) ++e;
            return e;
          }();
          const std::string_view first_tok = t.substr(0, tok_end);
          for (const auto w : kDeclExempt) exempt |= first_tok == w;
          // Require a plausible two-token declaration (type then name) so
          // stray continuation fragments don't fire.
          exempt |= tok_end == t.size() - 1;
          if (!exempt)
            stack.back().unannotated.push_back(static_cast<int>(i) + 1);
        }
      }
    }

    // Class-head detection: `enum class` opens a plain (non-class) scope.
    if (!pending_class && find_word(line, "enum") == std::string_view::npos &&
        (find_word(line, "class") != std::string_view::npos ||
         find_word(line, "struct") != std::string_view::npos ||
         find_word(line, "union") != std::string_view::npos))
      pending_class = true;

    for (const char c : line) {
      if (c == '{') {
        stack.push_back(Scope{pending_class, false, {}});
        pending_class = false;
      } else if (c == '}') {
        if (!stack.empty()) {
          close_scope(stack.back());
          stack.pop_back();
        }
      } else if (c == ';' && pending_class) {
        pending_class = false;  // forward declaration
      }
    }
  }
  while (!stack.empty()) {  // unbalanced tail: still report what we saw
    close_scope(stack.back());
    stack.pop_back();
  }
}

}  // namespace

std::vector<Diagnostic> lint_source(const std::string& rel_path,
                                    std::string_view content) {
  const std::string scrubbed = scrub(content);
  FileCtx ctx;
  ctx.path = rel_path;
  ctx.raw_lines = split_lines(content);
  ctx.code_lines = split_lines(scrubbed);
  std::vector<Diagnostic> diags;
  ctx.diags = &diags;

  check_determinism_random(ctx);
  check_determinism_clock(ctx);
  check_time_units(ctx);
  check_lock_discipline(ctx);
  check_header_hygiene(ctx);
  check_wire_safety(ctx);
  check_control_plane_boundary(ctx);
  check_hot_path_map(ctx);
  check_atomic_order(ctx);
  check_guarded_member(ctx);

  std::sort(diags.begin(), diags.end(), [](const auto& a, const auto& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return diags;
}

std::vector<Diagnostic> lint_paths(const std::string& root,
                                   const std::vector<std::string>& paths,
                                   std::string* error,
                                   std::size_t* num_files) {
  namespace fs = std::filesystem;
  error->clear();
  std::set<std::string> files;  // repo-relative, deduped, sorted
  const fs::path root_path(root);
  for (const auto& p : paths) {
    const fs::path abs = root_path / p;
    std::error_code ec;
    if (fs::is_directory(abs, ec)) {
      for (auto it = fs::recursive_directory_iterator(abs, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext != ".h" && ext != ".cc") continue;
        const std::string rel =
            fs::relative(it->path(), root_path).generic_string();
        // The lint self-test's bad fixtures are violations on purpose; they
        // are linted explicitly by tests/lint_test.cc, not by tree walks.
        if (rel.find("lint_fixtures/") != std::string::npos) continue;
        // Likewise the thread-safety negative-compile fixtures: deliberately
        // broken locking, compiled (and required to FAIL) by ctest's
        // tsa_negative_compile, never linted.
        if (rel.find("tsa_fixtures/") != std::string::npos) continue;
        files.insert(rel);
      }
    } else if (fs::is_regular_file(abs, ec)) {
      files.insert(fs::relative(abs, root_path).generic_string());
    } else {
      *error = "no such file or directory: " + abs.string();
      return {};
    }
  }
  std::vector<Diagnostic> diags;
  for (const auto& rel : files) {
    std::ifstream in(root_path / rel, std::ios::binary);
    if (!in) {
      *error = "cannot read: " + rel;
      return {};
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string content = ss.str();
    auto file_diags = lint_source(rel, content);
    diags.insert(diags.end(), file_diags.begin(), file_diags.end());
  }
  if (num_files) *num_files = files.size();
  return diags;
}

std::string rule_summary() {
  return
      "determinism-random  std:: randomness sources; use tailguard::Rng "
      "(allowed: src/common/rng.h)\n"
      "determinism-clock   wall/monotonic clock reads in deterministic "
      "layers (allowed: src/net, src/runtime, bench, their tests)\n"
      "time-units          duration identifiers must end in _s/_ms/_us/_ns "
      "or use std::chrono\n"
      "lock-discipline     no naked .lock()/.unlock()/.try_lock(); RAII "
      "guards only\n"
      "header-hygiene      #pragma once first in headers; no 'using "
      "namespace' in headers\n"
      "wire-safety         no reinterpret_cast/memcpy in src/net outside "
      "wire.cc (sockaddr exempt)\n"
      "control-plane-boundary  src/sim, src/runtime, src/net, src/sas and "
      "src/shard must drive shard/sharded_control_plane.h, not "
      "DeadlineEstimator/QueryTracker/AdmissionController directly; "
      "QueryControlPlane replicas are private to the sharding facade "
      "(cross-shard state flows through StateSyncBus deltas only); "
      "pick_least_loaded and concrete placement policy classes "
      "(LeastLoadedPolicy/PowerOfDPolicy/SlackTailRiskPolicy) are "
      "off-limits everywhere in those dirs, facade included — placement is "
      "selected via PlacementPolicyOptions / TAILGUARD_PLACEMENT\n"
      "hot-path-map        no std::unordered_map / std::map in src/sim or "
      "src/core; the hot path uses SlabMap / SlabHashCache "
      "(common/slab_map.h) — node-based maps allocate per entry\n"
      "atomic-order        atomic .load()/.store()/.exchange()/.fetch_*()/"
      "compare_exchange/.test_and_set() in src/ and tools/ must pass an "
      "explicit std::memory_order (the seq_cst default hides intent)\n"
      "guarded-member      in src/runtime, src/net, src/common and "
      "src/shard, a class owning a Mutex must TG_GUARDED_BY every mutable "
      "non-atomic member (common/thread_annotations.h) or carry an explicit "
      "allow explaining why no lock protects it\n"
      "\nSuppress a finding with '// tg-lint: allow(<rule>)' on the line or "
      "the line above.\n";
}

}  // namespace tailguard::lint
