// tg_lint: in-repo static checker for TailGuard-specific invariants that
// generic tools (clang-tidy, cppcheck) cannot express.
//
// The rules, and why they exist:
//
//   determinism-random  No std::random_device / rand() / std:: engines
//                       outside src/common/rng.h. Every stochastic draw in a
//                       simulation path must come from a seeded
//                       tailguard::Rng, or BENCH_*.json rows stop being
//                       reproducible and the parallel engine's bit-identical
//                       replay contract (DESIGN.md) silently breaks.
//   determinism-clock   No wall/monotonic clock reads (system_clock,
//                       steady_clock, gettimeofday, ...) outside the
//                       real-time layers (src/net/, src/runtime/, bench/,
//                       their tests). Simulated time is the only clock the
//                       deterministic core may observe.
//   time-units          Every duration-valued identifier must carry a unit
//                       suffix (_s/_ms/_us/_ns) or be expressed in
//                       std::chrono types. Catches Eq. 6 budget-vs-deadline
//                       unit mixups of the seconds-vs-milliseconds kind.
//   lock-discipline     No naked .lock()/.unlock()/.try_lock() calls; scoped
//                       RAII guards (lock_guard/unique_lock/scoped_lock)
//                       only, so no early return can leak a held mutex.
//   header-hygiene      Headers start with #pragma once and never contain
//                       `using namespace`.
//   wire-safety         In src/net/, all wire data goes through wire.cc's
//                       little-endian helpers: no reinterpret_cast struct
//                       punning, no memcpy of raw integers (sockaddr casts
//                       for the POSIX API are exempt).
//   hot-path-map        No std::unordered_map / std::map in src/sim or
//                       src/core. The event loop and per-query control-plane
//                       path budget tens of nanoseconds per operation;
//                       node-based maps allocate and pointer-chase per entry.
//                       Dense-id state uses SlabMap, memo caches use
//                       SlabHashCache (common/slab_map.h); genuinely cold
//                       uses carry an explicit allow(hot-path-map).
//   atomic-order        Every atomic access in src/ and tools/ (.load(),
//                       .store(), .exchange(), .fetch_*(),
//                       .compare_exchange_*(), .test_and_set()) passes an
//                       explicit std::memory_order. The implicit seq_cst
//                       default is both the strongest fence and the easiest
//                       to write, so it says nothing about what the code
//                       actually needs; forcing the argument forces the
//                       author to name (and ideally justify in a comment)
//                       the weakest correct order.
//   guarded-member      In the concurrent directories (src/runtime, src/net,
//                       src/common, src/shard) a class that owns a Mutex
//                       must say which members that mutex protects: every
//                       mutable non-atomic data member carries
//                       TG_GUARDED_BY(<mutex>) (common/thread_annotations.h,
//                       enforced by Clang TSA when available) or an explicit
//                       allow(guarded-member) with a why-comment. The lint
//                       form runs under GCC too, so the discipline holds on
//                       compilers with no thread-safety analysis.
//
// Suppression: append `// tg-lint: allow(<rule>[, <rule>...])` to the
// offending line, or place it on the line directly above. `allow(all)`
// suppresses every rule for that line. Suppressions are deliberate and
// reviewable — grep for "tg-lint:" to audit them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tailguard::lint {

/// One rule violation at a source location.
struct Diagnostic {
  std::string path;     ///< repo-relative path, '/' separators
  int line = 0;         ///< 1-based
  std::string rule;     ///< rule name, e.g. "time-units"
  std::string message;  ///< human-readable explanation

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Lints one file's contents. `rel_path` is the repo-relative path with '/'
/// separators; several rules key their allowlists off it (e.g. wire-safety
/// only applies under src/net/). The file need not exist on disk, which is
/// what makes the checker testable against string fixtures.
std::vector<Diagnostic> lint_source(const std::string& rel_path,
                                    std::string_view content);

/// Walks `paths` (files or directories, repo-relative, resolved against
/// `root`), lints every *.h / *.cc found, and returns all diagnostics sorted
/// by path then line. I/O failures are reported via `error` (empty on
/// success). `num_files`, if non-null, receives the number of files scanned.
std::vector<Diagnostic> lint_paths(const std::string& root,
                                   const std::vector<std::string>& paths,
                                   std::string* error,
                                   std::size_t* num_files = nullptr);

/// One-line-per-rule table for --list-rules.
std::string rule_summary();

}  // namespace tailguard::lint
