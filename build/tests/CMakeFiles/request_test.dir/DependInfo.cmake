
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/request_test.cc" "tests/CMakeFiles/request_test.dir/request_test.cc.o" "gcc" "tests/CMakeFiles/request_test.dir/request_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tg_sas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
