# Empty compiler generated dependencies file for matrix_smoke_test.
# This may be replaced when dependencies are built.
