file(REMOVE_RECURSE
  "CMakeFiles/matrix_smoke_test.dir/matrix_smoke_test.cc.o"
  "CMakeFiles/matrix_smoke_test.dir/matrix_smoke_test.cc.o.d"
  "matrix_smoke_test"
  "matrix_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
