file(REMOVE_RECURSE
  "CMakeFiles/sas_test.dir/sas_test.cc.o"
  "CMakeFiles/sas_test.dir/sas_test.cc.o.d"
  "sas_test"
  "sas_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
