# Empty compiler generated dependencies file for cdf_model_test.
# This may be replaced when dependencies are built.
