file(REMOVE_RECURSE
  "CMakeFiles/cdf_model_test.dir/cdf_model_test.cc.o"
  "CMakeFiles/cdf_model_test.dir/cdf_model_test.cc.o.d"
  "cdf_model_test"
  "cdf_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdf_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
