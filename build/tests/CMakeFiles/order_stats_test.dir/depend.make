# Empty dependencies file for order_stats_test.
# This may be replaced when dependencies are built.
