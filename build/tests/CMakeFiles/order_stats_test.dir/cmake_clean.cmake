file(REMOVE_RECURSE
  "CMakeFiles/order_stats_test.dir/order_stats_test.cc.o"
  "CMakeFiles/order_stats_test.dir/order_stats_test.cc.o.d"
  "order_stats_test"
  "order_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
