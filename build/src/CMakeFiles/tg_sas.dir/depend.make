# Empty dependencies file for tg_sas.
# This may be replaced when dependencies are built.
