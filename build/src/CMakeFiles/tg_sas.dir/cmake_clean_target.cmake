file(REMOVE_RECURSE
  "libtg_sas.a"
)
