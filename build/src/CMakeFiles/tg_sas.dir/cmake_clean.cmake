file(REMOVE_RECURSE
  "CMakeFiles/tg_sas.dir/sas/testbed.cc.o"
  "CMakeFiles/tg_sas.dir/sas/testbed.cc.o.d"
  "libtg_sas.a"
  "libtg_sas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_sas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
