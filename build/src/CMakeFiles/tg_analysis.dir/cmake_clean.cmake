file(REMOVE_RECURSE
  "CMakeFiles/tg_analysis.dir/analysis/queueing.cc.o"
  "CMakeFiles/tg_analysis.dir/analysis/queueing.cc.o.d"
  "libtg_analysis.a"
  "libtg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
