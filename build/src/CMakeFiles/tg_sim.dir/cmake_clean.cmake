file(REMOVE_RECURSE
  "CMakeFiles/tg_sim.dir/sim/cluster.cc.o"
  "CMakeFiles/tg_sim.dir/sim/cluster.cc.o.d"
  "CMakeFiles/tg_sim.dir/sim/experiment.cc.o"
  "CMakeFiles/tg_sim.dir/sim/experiment.cc.o.d"
  "CMakeFiles/tg_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/tg_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/tg_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/tg_sim.dir/sim/simulator.cc.o.d"
  "libtg_sim.a"
  "libtg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
