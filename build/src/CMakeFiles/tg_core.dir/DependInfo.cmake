
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cc" "src/CMakeFiles/tg_core.dir/core/admission.cc.o" "gcc" "src/CMakeFiles/tg_core.dir/core/admission.cc.o.d"
  "/root/repo/src/core/cdf_model.cc" "src/CMakeFiles/tg_core.dir/core/cdf_model.cc.o" "gcc" "src/CMakeFiles/tg_core.dir/core/cdf_model.cc.o.d"
  "/root/repo/src/core/deadline.cc" "src/CMakeFiles/tg_core.dir/core/deadline.cc.o" "gcc" "src/CMakeFiles/tg_core.dir/core/deadline.cc.o.d"
  "/root/repo/src/core/order_stats.cc" "src/CMakeFiles/tg_core.dir/core/order_stats.cc.o" "gcc" "src/CMakeFiles/tg_core.dir/core/order_stats.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/CMakeFiles/tg_core.dir/core/policy.cc.o" "gcc" "src/CMakeFiles/tg_core.dir/core/policy.cc.o.d"
  "/root/repo/src/core/query_tracker.cc" "src/CMakeFiles/tg_core.dir/core/query_tracker.cc.o" "gcc" "src/CMakeFiles/tg_core.dir/core/query_tracker.cc.o.d"
  "/root/repo/src/core/request.cc" "src/CMakeFiles/tg_core.dir/core/request.cc.o" "gcc" "src/CMakeFiles/tg_core.dir/core/request.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tg_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
