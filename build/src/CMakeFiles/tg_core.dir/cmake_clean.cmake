file(REMOVE_RECURSE
  "CMakeFiles/tg_core.dir/core/admission.cc.o"
  "CMakeFiles/tg_core.dir/core/admission.cc.o.d"
  "CMakeFiles/tg_core.dir/core/cdf_model.cc.o"
  "CMakeFiles/tg_core.dir/core/cdf_model.cc.o.d"
  "CMakeFiles/tg_core.dir/core/deadline.cc.o"
  "CMakeFiles/tg_core.dir/core/deadline.cc.o.d"
  "CMakeFiles/tg_core.dir/core/order_stats.cc.o"
  "CMakeFiles/tg_core.dir/core/order_stats.cc.o.d"
  "CMakeFiles/tg_core.dir/core/policy.cc.o"
  "CMakeFiles/tg_core.dir/core/policy.cc.o.d"
  "CMakeFiles/tg_core.dir/core/query_tracker.cc.o"
  "CMakeFiles/tg_core.dir/core/query_tracker.cc.o.d"
  "CMakeFiles/tg_core.dir/core/request.cc.o"
  "CMakeFiles/tg_core.dir/core/request.cc.o.d"
  "libtg_core.a"
  "libtg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
