
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/empirical_cdf.cc" "src/CMakeFiles/tg_common.dir/common/empirical_cdf.cc.o" "gcc" "src/CMakeFiles/tg_common.dir/common/empirical_cdf.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/tg_common.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/tg_common.dir/common/flags.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/tg_common.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/tg_common.dir/common/stats.cc.o.d"
  "/root/repo/src/common/streaming_histogram.cc" "src/CMakeFiles/tg_common.dir/common/streaming_histogram.cc.o" "gcc" "src/CMakeFiles/tg_common.dir/common/streaming_histogram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
