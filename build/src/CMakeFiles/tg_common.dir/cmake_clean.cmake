file(REMOVE_RECURSE
  "CMakeFiles/tg_common.dir/common/empirical_cdf.cc.o"
  "CMakeFiles/tg_common.dir/common/empirical_cdf.cc.o.d"
  "CMakeFiles/tg_common.dir/common/flags.cc.o"
  "CMakeFiles/tg_common.dir/common/flags.cc.o.d"
  "CMakeFiles/tg_common.dir/common/stats.cc.o"
  "CMakeFiles/tg_common.dir/common/stats.cc.o.d"
  "CMakeFiles/tg_common.dir/common/streaming_histogram.cc.o"
  "CMakeFiles/tg_common.dir/common/streaming_histogram.cc.o.d"
  "libtg_common.a"
  "libtg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
