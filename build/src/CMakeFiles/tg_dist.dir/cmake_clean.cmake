file(REMOVE_RECURSE
  "CMakeFiles/tg_dist.dir/dist/arrival.cc.o"
  "CMakeFiles/tg_dist.dir/dist/arrival.cc.o.d"
  "CMakeFiles/tg_dist.dir/dist/piecewise_linear_quantile.cc.o"
  "CMakeFiles/tg_dist.dir/dist/piecewise_linear_quantile.cc.o.d"
  "CMakeFiles/tg_dist.dir/dist/standard.cc.o"
  "CMakeFiles/tg_dist.dir/dist/standard.cc.o.d"
  "libtg_dist.a"
  "libtg_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
