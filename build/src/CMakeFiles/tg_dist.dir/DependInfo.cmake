
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/arrival.cc" "src/CMakeFiles/tg_dist.dir/dist/arrival.cc.o" "gcc" "src/CMakeFiles/tg_dist.dir/dist/arrival.cc.o.d"
  "/root/repo/src/dist/piecewise_linear_quantile.cc" "src/CMakeFiles/tg_dist.dir/dist/piecewise_linear_quantile.cc.o" "gcc" "src/CMakeFiles/tg_dist.dir/dist/piecewise_linear_quantile.cc.o.d"
  "/root/repo/src/dist/standard.cc" "src/CMakeFiles/tg_dist.dir/dist/standard.cc.o" "gcc" "src/CMakeFiles/tg_dist.dir/dist/standard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
