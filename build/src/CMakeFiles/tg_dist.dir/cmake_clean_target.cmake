file(REMOVE_RECURSE
  "libtg_dist.a"
)
