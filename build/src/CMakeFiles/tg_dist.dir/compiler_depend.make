# Empty compiler generated dependencies file for tg_dist.
# This may be replaced when dependencies are built.
