file(REMOVE_RECURSE
  "CMakeFiles/tg_workloads.dir/workloads/fanout.cc.o"
  "CMakeFiles/tg_workloads.dir/workloads/fanout.cc.o.d"
  "CMakeFiles/tg_workloads.dir/workloads/tailbench.cc.o"
  "CMakeFiles/tg_workloads.dir/workloads/tailbench.cc.o.d"
  "CMakeFiles/tg_workloads.dir/workloads/tailbench_extra.cc.o"
  "CMakeFiles/tg_workloads.dir/workloads/tailbench_extra.cc.o.d"
  "CMakeFiles/tg_workloads.dir/workloads/trace.cc.o"
  "CMakeFiles/tg_workloads.dir/workloads/trace.cc.o.d"
  "libtg_workloads.a"
  "libtg_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
