
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/fanout.cc" "src/CMakeFiles/tg_workloads.dir/workloads/fanout.cc.o" "gcc" "src/CMakeFiles/tg_workloads.dir/workloads/fanout.cc.o.d"
  "/root/repo/src/workloads/tailbench.cc" "src/CMakeFiles/tg_workloads.dir/workloads/tailbench.cc.o" "gcc" "src/CMakeFiles/tg_workloads.dir/workloads/tailbench.cc.o.d"
  "/root/repo/src/workloads/tailbench_extra.cc" "src/CMakeFiles/tg_workloads.dir/workloads/tailbench_extra.cc.o" "gcc" "src/CMakeFiles/tg_workloads.dir/workloads/tailbench_extra.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/CMakeFiles/tg_workloads.dir/workloads/trace.cc.o" "gcc" "src/CMakeFiles/tg_workloads.dir/workloads/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tg_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
