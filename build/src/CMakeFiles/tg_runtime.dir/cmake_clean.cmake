file(REMOVE_RECURSE
  "CMakeFiles/tg_runtime.dir/runtime/loadgen.cc.o"
  "CMakeFiles/tg_runtime.dir/runtime/loadgen.cc.o.d"
  "CMakeFiles/tg_runtime.dir/runtime/service.cc.o"
  "CMakeFiles/tg_runtime.dir/runtime/service.cc.o.d"
  "CMakeFiles/tg_runtime.dir/runtime/worker.cc.o"
  "CMakeFiles/tg_runtime.dir/runtime/worker.cc.o.d"
  "libtg_runtime.a"
  "libtg_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tg_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
