# Empty dependencies file for tg_runtime.
# This may be replaced when dependencies are built.
