file(REMOVE_RECURSE
  "../bench/ablation_online_update"
  "../bench/ablation_online_update.pdb"
  "CMakeFiles/ablation_online_update.dir/ablation_online_update.cc.o"
  "CMakeFiles/ablation_online_update.dir/ablation_online_update.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_online_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
