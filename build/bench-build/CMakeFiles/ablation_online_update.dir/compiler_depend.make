# Empty compiler generated dependencies file for ablation_online_update.
# This may be replaced when dependencies are built.
