file(REMOVE_RECURSE
  "../bench/table2_unloaded_stats"
  "../bench/table2_unloaded_stats.pdb"
  "CMakeFiles/table2_unloaded_stats.dir/table2_unloaded_stats.cc.o"
  "CMakeFiles/table2_unloaded_stats.dir/table2_unloaded_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_unloaded_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
