# Empty dependencies file for table2_unloaded_stats.
# This may be replaced when dependencies are built.
