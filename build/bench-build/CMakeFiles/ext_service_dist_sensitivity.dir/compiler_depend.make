# Empty compiler generated dependencies file for ext_service_dist_sensitivity.
# This may be replaced when dependencies are built.
