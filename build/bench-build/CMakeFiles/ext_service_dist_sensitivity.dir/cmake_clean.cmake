file(REMOVE_RECURSE
  "../bench/ext_service_dist_sensitivity"
  "../bench/ext_service_dist_sensitivity.pdb"
  "CMakeFiles/ext_service_dist_sensitivity.dir/ext_service_dist_sensitivity.cc.o"
  "CMakeFiles/ext_service_dist_sensitivity.dir/ext_service_dist_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_service_dist_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
