file(REMOVE_RECURSE
  "../bench/ext_fanout_sensitivity"
  "../bench/ext_fanout_sensitivity.pdb"
  "CMakeFiles/ext_fanout_sensitivity.dir/ext_fanout_sensitivity.cc.o"
  "CMakeFiles/ext_fanout_sensitivity.dir/ext_fanout_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fanout_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
