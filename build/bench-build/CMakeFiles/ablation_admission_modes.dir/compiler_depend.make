# Empty compiler generated dependencies file for ablation_admission_modes.
# This may be replaced when dependencies are built.
