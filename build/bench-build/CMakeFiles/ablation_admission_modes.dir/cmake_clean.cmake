file(REMOVE_RECURSE
  "../bench/ablation_admission_modes"
  "../bench/ablation_admission_modes.pdb"
  "CMakeFiles/ablation_admission_modes.dir/ablation_admission_modes.cc.o"
  "CMakeFiles/ablation_admission_modes.dir/ablation_admission_modes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_admission_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
