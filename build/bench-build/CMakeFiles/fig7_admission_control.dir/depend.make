# Empty dependencies file for fig7_admission_control.
# This may be replaced when dependencies are built.
