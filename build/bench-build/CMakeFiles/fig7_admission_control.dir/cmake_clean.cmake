file(REMOVE_RECURSE
  "../bench/fig7_admission_control"
  "../bench/fig7_admission_control.pdb"
  "CMakeFiles/fig7_admission_control.dir/fig7_admission_control.cc.o"
  "CMakeFiles/fig7_admission_control.dir/fig7_admission_control.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_admission_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
