file(REMOVE_RECURSE
  "../bench/ext_stragglers"
  "../bench/ext_stragglers.pdb"
  "CMakeFiles/ext_stragglers.dir/ext_stragglers.cc.o"
  "CMakeFiles/ext_stragglers.dir/ext_stragglers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
