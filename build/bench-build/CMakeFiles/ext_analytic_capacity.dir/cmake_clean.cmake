file(REMOVE_RECURSE
  "../bench/ext_analytic_capacity"
  "../bench/ext_analytic_capacity.pdb"
  "CMakeFiles/ext_analytic_capacity.dir/ext_analytic_capacity.cc.o"
  "CMakeFiles/ext_analytic_capacity.dir/ext_analytic_capacity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_analytic_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
