# Empty compiler generated dependencies file for ext_analytic_capacity.
# This may be replaced when dependencies are built.
