file(REMOVE_RECURSE
  "../bench/fig3_workload_cdfs"
  "../bench/fig3_workload_cdfs.pdb"
  "CMakeFiles/fig3_workload_cdfs.dir/fig3_workload_cdfs.cc.o"
  "CMakeFiles/fig3_workload_cdfs.dir/fig3_workload_cdfs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_workload_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
