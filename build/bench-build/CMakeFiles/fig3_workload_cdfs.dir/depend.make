# Empty dependencies file for fig3_workload_cdfs.
# This may be replaced when dependencies are built.
