# Empty dependencies file for runtime_testbed.
# This may be replaced when dependencies are built.
