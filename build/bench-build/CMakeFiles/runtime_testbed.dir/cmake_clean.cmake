file(REMOVE_RECURSE
  "../bench/runtime_testbed"
  "../bench/runtime_testbed.pdb"
  "CMakeFiles/runtime_testbed.dir/runtime_testbed.cc.o"
  "CMakeFiles/runtime_testbed.dir/runtime_testbed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
