file(REMOVE_RECURSE
  "../bench/fig9_sas_testbed"
  "../bench/fig9_sas_testbed.pdb"
  "CMakeFiles/fig9_sas_testbed.dir/fig9_sas_testbed.cc.o"
  "CMakeFiles/fig9_sas_testbed.dir/fig9_sas_testbed.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sas_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
