# Empty compiler generated dependencies file for fig9_sas_testbed.
# This may be replaced when dependencies are built.
