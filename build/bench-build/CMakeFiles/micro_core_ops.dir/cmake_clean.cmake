file(REMOVE_RECURSE
  "../bench/micro_core_ops"
  "../bench/micro_core_ops.pdb"
  "CMakeFiles/micro_core_ops.dir/micro_core_ops.cc.o"
  "CMakeFiles/micro_core_ops.dir/micro_core_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_core_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
