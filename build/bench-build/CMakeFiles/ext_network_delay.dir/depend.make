# Empty dependencies file for ext_network_delay.
# This may be replaced when dependencies are built.
