file(REMOVE_RECURSE
  "../bench/ext_network_delay"
  "../bench/ext_network_delay.pdb"
  "CMakeFiles/ext_network_delay.dir/ext_network_delay.cc.o"
  "CMakeFiles/ext_network_delay.dir/ext_network_delay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_network_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
