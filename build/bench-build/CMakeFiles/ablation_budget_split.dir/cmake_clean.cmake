file(REMOVE_RECURSE
  "../bench/ablation_budget_split"
  "../bench/ablation_budget_split.pdb"
  "CMakeFiles/ablation_budget_split.dir/ablation_budget_split.cc.o"
  "CMakeFiles/ablation_budget_split.dir/ablation_budget_split.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_budget_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
