# Empty compiler generated dependencies file for ablation_budget_split.
# This may be replaced when dependencies are built.
