file(REMOVE_RECURSE
  "../bench/fig5_two_class_maxload"
  "../bench/fig5_two_class_maxload.pdb"
  "CMakeFiles/fig5_two_class_maxload.dir/fig5_two_class_maxload.cc.o"
  "CMakeFiles/fig5_two_class_maxload.dir/fig5_two_class_maxload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_two_class_maxload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
