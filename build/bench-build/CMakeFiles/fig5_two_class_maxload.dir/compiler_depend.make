# Empty compiler generated dependencies file for fig5_two_class_maxload.
# This may be replaced when dependencies are built.
