# Empty dependencies file for fig6_service_class_sweep.
# This may be replaced when dependencies are built.
