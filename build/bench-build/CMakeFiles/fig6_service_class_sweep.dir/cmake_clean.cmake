file(REMOVE_RECURSE
  "../bench/fig6_service_class_sweep"
  "../bench/fig6_service_class_sweep.pdb"
  "CMakeFiles/fig6_service_class_sweep.dir/fig6_service_class_sweep.cc.o"
  "CMakeFiles/fig6_service_class_sweep.dir/fig6_service_class_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_service_class_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
