file(REMOVE_RECURSE
  "../bench/ext_scale_and_classes"
  "../bench/ext_scale_and_classes.pdb"
  "CMakeFiles/ext_scale_and_classes.dir/ext_scale_and_classes.cc.o"
  "CMakeFiles/ext_scale_and_classes.dir/ext_scale_and_classes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scale_and_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
