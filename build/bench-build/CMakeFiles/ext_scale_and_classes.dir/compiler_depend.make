# Empty compiler generated dependencies file for ext_scale_and_classes.
# This may be replaced when dependencies are built.
