file(REMOVE_RECURSE
  "../bench/ablation_request_budget"
  "../bench/ablation_request_budget.pdb"
  "CMakeFiles/ablation_request_budget.dir/ablation_request_budget.cc.o"
  "CMakeFiles/ablation_request_budget.dir/ablation_request_budget.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_request_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
