file(REMOVE_RECURSE
  "../bench/table3_latency_breakdown"
  "../bench/table3_latency_breakdown.pdb"
  "CMakeFiles/table3_latency_breakdown.dir/table3_latency_breakdown.cc.o"
  "CMakeFiles/table3_latency_breakdown.dir/table3_latency_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_latency_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
