file(REMOVE_RECURSE
  "../bench/fig4_single_class_maxload"
  "../bench/fig4_single_class_maxload.pdb"
  "CMakeFiles/fig4_single_class_maxload.dir/fig4_single_class_maxload.cc.o"
  "CMakeFiles/fig4_single_class_maxload.dir/fig4_single_class_maxload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_single_class_maxload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
