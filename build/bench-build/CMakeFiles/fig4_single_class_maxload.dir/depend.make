# Empty dependencies file for fig4_single_class_maxload.
# This may be replaced when dependencies are built.
