file(REMOVE_RECURSE
  "CMakeFiles/websearch_oldi.dir/websearch_oldi.cpp.o"
  "CMakeFiles/websearch_oldi.dir/websearch_oldi.cpp.o.d"
  "websearch_oldi"
  "websearch_oldi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/websearch_oldi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
