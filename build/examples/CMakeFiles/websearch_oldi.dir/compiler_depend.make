# Empty compiler generated dependencies file for websearch_oldi.
# This may be replaced when dependencies are built.
