file(REMOVE_RECURSE
  "CMakeFiles/trace_capacity_planning.dir/trace_capacity_planning.cpp.o"
  "CMakeFiles/trace_capacity_planning.dir/trace_capacity_planning.cpp.o.d"
  "trace_capacity_planning"
  "trace_capacity_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_capacity_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
