# Empty dependencies file for trace_capacity_planning.
# This may be replaced when dependencies are built.
