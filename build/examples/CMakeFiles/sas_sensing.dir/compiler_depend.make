# Empty compiler generated dependencies file for sas_sensing.
# This may be replaced when dependencies are built.
