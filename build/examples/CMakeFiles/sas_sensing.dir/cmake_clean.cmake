file(REMOVE_RECURSE
  "CMakeFiles/sas_sensing.dir/sas_sensing.cpp.o"
  "CMakeFiles/sas_sensing.dir/sas_sensing.cpp.o.d"
  "sas_sensing"
  "sas_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sas_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
