# Empty compiler generated dependencies file for admission_overload.
# This may be replaced when dependencies are built.
