file(REMOVE_RECURSE
  "CMakeFiles/admission_overload.dir/admission_overload.cpp.o"
  "CMakeFiles/admission_overload.dir/admission_overload.cpp.o.d"
  "admission_overload"
  "admission_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
