# Empty dependencies file for tailguard_trace.
# This may be replaced when dependencies are built.
