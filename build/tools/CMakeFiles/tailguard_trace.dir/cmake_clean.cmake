file(REMOVE_RECURSE
  "CMakeFiles/tailguard_trace.dir/tailguard_trace.cc.o"
  "CMakeFiles/tailguard_trace.dir/tailguard_trace.cc.o.d"
  "tailguard_trace"
  "tailguard_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tailguard_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
