file(REMOVE_RECURSE
  "CMakeFiles/tailguard_sim.dir/tailguard_sim.cc.o"
  "CMakeFiles/tailguard_sim.dir/tailguard_sim.cc.o.d"
  "tailguard_sim"
  "tailguard_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tailguard_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
