# Empty compiler generated dependencies file for tailguard_sim.
# This may be replaced when dependencies are built.
