# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_sim_smoke "/root/repo/build/tools/tailguard_sim" "--queries" "3000" "--load" "0.3" "--policies" "tailguard")
set_tests_properties(tool_sim_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_sas_smoke "/root/repo/build/tools/tailguard_sim" "--sas" "--queries" "3000" "--load" "0.3" "--policies" "fifo" "--format" "csv")
set_tests_properties(tool_sim_sas_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_help "/root/repo/build/tools/tailguard_sim" "--help")
set_tests_properties(tool_sim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_sim_rejects_bad_flag "/root/repo/build/tools/tailguard_sim" "--no-such-flag")
set_tests_properties(tool_sim_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_trace_smoke "/root/repo/build/tools/tailguard_trace" "--out" "/root/repo/build/tools/smoke_trace.csv" "--queries" "2000" "--rate" "1.5")
set_tests_properties(tool_trace_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_trace_inspect "/root/repo/build/tools/tailguard_trace" "--inspect" "/root/repo/build/tools/smoke_trace.csv")
set_tests_properties(tool_trace_inspect PROPERTIES  DEPENDS "tool_trace_smoke" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
