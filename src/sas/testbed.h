// The Sensing-as-a-Service testbed of paper §IV.E, as a simulation model.
//
// The physical testbed is four clusters of 8 Raspberry-Pi edge nodes
// (Server-room, Wet-lab, Faculty, GTA) serving a temperature/humidity
// sensing service through a central query handler. We reproduce it with
// per-cluster task post-queuing-time distributions anchored at the
// statistics the paper measured (Fig. 9a):
//
//                mean    p95    p99   (ms)
//   Server-room    82    235    300
//   Wet-lab        31    112    136
//   Faculty        92    226    306
//   GTA            91    228    304
//
// and the paper's three use cases:
//
//   class A — 50% of queries, SLO  800 ms, fanout 1; 80% of these target a
//             random Server-room node, 20% a random node elsewhere
//             (the deliberately skewed stress case);
//   class B — 40% of queries, SLO 1300 ms, fanout 4; one random node per
//             cluster;
//   class C — 10% of queries, SLO 1800 ms, fanout 32; every node.
//
// Deadline estimation shares one CDF per cluster across its 8 nodes, exactly
// as the paper does ("we let all 8 edge nodes in each cluster share the same
// CDF"). The load axis of Fig. 9 is the load of the Server-room cluster,
// the bottleneck.
#pragma once

#include <array>

#include "sim/experiment.h"

namespace tailguard {

enum class SasCluster : std::uint32_t {
  kServerRoom = 0,
  kWetLab = 1,
  kFaculty = 2,
  kGta = 3,
};

inline constexpr std::size_t kSasNumClusters = 4;
inline constexpr std::size_t kSasNodesPerCluster = 8;
inline constexpr std::size_t kSasNumNodes =
    kSasNumClusters * kSasNodesPerCluster;

inline constexpr std::array<SasCluster, kSasNumClusters> kAllSasClusters = {
    SasCluster::kServerRoom, SasCluster::kWetLab, SasCluster::kFaculty,
    SasCluster::kGta};

const char* to_string(SasCluster cluster);

/// Node ids of a cluster: [cluster*8, cluster*8 + 8).
ServerId sas_first_node(SasCluster cluster);

/// Statistics the paper reports for each cluster (ms).
struct SasClusterStats {
  double mean_ms;
  double p95_ms;
  double p99_ms;
};
SasClusterStats sas_paper_stats(SasCluster cluster);

/// Calibrated post-queuing-time distribution for one cluster's nodes:
/// p95/p99 match the paper exactly, mean within ~3%.
DistributionPtr make_sas_cluster_model(SasCluster cluster);

/// One use case (service class) of the SaS workload.
struct SasUseCase {
  ClassSpec spec;
  std::uint32_t fanout = 1;
  double probability = 0.0;
};
std::array<SasUseCase, 3> sas_use_cases();

/// Full simulator configuration for the testbed under `policy`.
/// `num_queries` is the offered query count.
SimConfig make_sas_config(Policy policy, std::uint64_t seed,
                          std::size_t num_queries);

/// Load conversion overrides so that "load" means the Server-room cluster
/// load: capacity 8 nodes, work per query = E[Server-room tasks per query] *
/// mean Server-room service time.
MaxLoadOptions sas_load_options();

}  // namespace tailguard
