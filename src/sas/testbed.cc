#include "sas/testbed.h"

#include "common/check.h"
#include "dist/piecewise_linear_quantile.h"

namespace tailguard {

const char* to_string(SasCluster cluster) {
  switch (cluster) {
    case SasCluster::kServerRoom:
      return "Server-room";
    case SasCluster::kWetLab:
      return "Wet-lab";
    case SasCluster::kFaculty:
      return "Faculty";
    case SasCluster::kGta:
      return "GTA";
  }
  return "?";
}

ServerId sas_first_node(SasCluster cluster) {
  return static_cast<ServerId>(static_cast<std::uint32_t>(cluster) *
                               kSasNodesPerCluster);
}

SasClusterStats sas_paper_stats(SasCluster cluster) {
  switch (cluster) {
    case SasCluster::kServerRoom:
      return {.mean_ms = 82.0, .p95_ms = 235.0, .p99_ms = 300.0};
    case SasCluster::kWetLab:
      return {.mean_ms = 31.0, .p95_ms = 112.0, .p99_ms = 136.0};
    case SasCluster::kFaculty:
      return {.mean_ms = 92.0, .p95_ms = 226.0, .p99_ms = 306.0};
    case SasCluster::kGta:
      return {.mean_ms = 91.0, .p95_ms = 228.0, .p99_ms = 304.0};
  }
  TG_CHECK_MSG(false, "unknown cluster");
  return {};
}

DistributionPtr make_sas_cluster_model(SasCluster cluster) {
  // Anchors at p95/p99 come straight from Fig. 9a; bulk anchors reproduce
  // the plotted CDF shape with the mean within ~3% of the paper's number
  // (verified by tests/sas_test.cc).
  switch (cluster) {
    case SasCluster::kServerRoom:
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 10.0},
                                      {0.50, 60.0},
                                      {0.75, 100.0},
                                      {0.90, 170.0},
                                      {0.95, 235.0},
                                      {0.99, 300.0},
                                      {0.999, 360.0},
                                      {1.0, 400.0}},
          "Server-room post-queuing time");
    case SasCluster::kWetLab:
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 4.0},
                                      {0.50, 18.0},
                                      {0.75, 38.0},
                                      {0.90, 70.0},
                                      {0.95, 112.0},
                                      {0.99, 136.0},
                                      {0.999, 160.0},
                                      {1.0, 180.0}},
          "Wet-lab post-queuing time");
    case SasCluster::kFaculty:
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 12.0},
                                      {0.50, 72.0},
                                      {0.75, 118.0},
                                      {0.90, 180.0},
                                      {0.95, 226.0},
                                      {0.99, 306.0},
                                      {0.999, 370.0},
                                      {1.0, 410.0}},
          "Faculty post-queuing time");
    case SasCluster::kGta:
      return std::make_shared<PiecewiseLinearQuantile>(
          std::vector<QuantileAnchor>{{0.0, 12.0},
                                      {0.50, 71.0},
                                      {0.75, 117.0},
                                      {0.90, 180.0},
                                      {0.95, 228.0},
                                      {0.99, 304.0},
                                      {0.999, 368.0},
                                      {1.0, 408.0}},
          "GTA post-queuing time");
  }
  TG_CHECK_MSG(false, "unknown cluster");
  return {};
}

std::array<SasUseCase, 3> sas_use_cases() {
  return {SasUseCase{.spec = {.slo_ms = 800.0, .percentile = 99.0},
                     .fanout = 1,
                     .probability = 0.5},
          SasUseCase{.spec = {.slo_ms = 1300.0, .percentile = 99.0},
                     .fanout = 4,
                     .probability = 0.4},
          SasUseCase{.spec = {.slo_ms = 1800.0, .percentile = 99.0},
                     .fanout = 32,
                     .probability = 0.1}};
}

SimConfig make_sas_config(Policy policy, std::uint64_t seed,
                          std::size_t num_queries) {
  SimConfig cfg;
  cfg.num_servers = kSasNumNodes;
  cfg.policy = policy;
  cfg.seed = seed;
  cfg.num_queries = num_queries;

  const auto cases = sas_use_cases();
  for (const auto& uc : cases) {
    cfg.classes.push_back(uc.spec);
    cfg.class_probabilities.push_back(uc.probability);
  }

  // Per-node service model: all 8 nodes of a cluster share their cluster's
  // distribution object, so the deadline estimator groups them automatically.
  cfg.per_server_service.reserve(kSasNumNodes);
  for (SasCluster cluster : kAllSasClusters) {
    const DistributionPtr model = make_sas_cluster_model(cluster);
    for (std::size_t n = 0; n < kSasNodesPerCluster; ++n)
      cfg.per_server_service.push_back(model);
  }

  // Fixed fanout per class.
  cfg.class_fanout = [cases](Rng&, ClassId cls) {
    TG_CHECK_MSG(cls < cases.size(), "unknown SaS class " << cls);
    return cases[cls].fanout;
  };

  // Placement per use case (see header).
  cfg.placement = [](Rng& rng, ClassId cls, std::uint32_t kf,
                     std::vector<ServerId>& out) {
    out.clear();
    switch (cls) {
      case 0: {  // class A: single node, 80% on the Server-room cluster
        TG_CHECK(kf == 1);
        if (rng.bernoulli(0.8)) {
          out.push_back(sas_first_node(SasCluster::kServerRoom) +
                        static_cast<ServerId>(
                            rng.uniform_index(kSasNodesPerCluster)));
        } else {
          // A random node of one of the other three clusters.
          const auto cluster_idx = 1 + rng.uniform_index(kSasNumClusters - 1);
          out.push_back(static_cast<ServerId>(
              cluster_idx * kSasNodesPerCluster +
              rng.uniform_index(kSasNodesPerCluster)));
        }
        break;
      }
      case 1: {  // class B: one random node per cluster
        TG_CHECK(kf == kSasNumClusters);
        for (SasCluster cluster : kAllSasClusters)
          out.push_back(sas_first_node(cluster) +
                        static_cast<ServerId>(
                            rng.uniform_index(kSasNodesPerCluster)));
        break;
      }
      case 2: {  // class C: every node
        TG_CHECK(kf == kSasNumNodes);
        for (ServerId s = 0; s < kSasNumNodes; ++s) out.push_back(s);
        break;
      }
      default:
        TG_CHECK_MSG(false, "unknown SaS class " << cls);
    }
  };

  return cfg;
}

MaxLoadOptions sas_load_options() {
  // Expected Server-room tasks per query:
  //   class A: 0.5 * 0.8 = 0.40
  //   class B: 0.4 * 1   = 0.40
  //   class C: 0.1 * 8   = 0.80   => 1.6 tasks
  const auto cases = sas_use_cases();
  const double sr_tasks = cases[0].probability * 0.8 +
                          cases[1].probability * 1.0 +
                          cases[2].probability * kSasNodesPerCluster;
  const double sr_mean =
      make_sas_cluster_model(SasCluster::kServerRoom)->mean();
  MaxLoadOptions opt;
  opt.work_per_query = sr_tasks * sr_mean;
  opt.capacity_servers = kSasNodesPerCluster;
  return opt;
}

}  // namespace tailguard
