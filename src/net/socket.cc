#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"

namespace tailguard::net {

namespace {
std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}
}  // namespace

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_tcp_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

ScopedFd listen_tcp(std::uint16_t port, std::string* error) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = errno_string("socket");
    return {};
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = errno_string("bind");
    return {};
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    *error = errno_string("listen");
    return {};
  }
  if (!set_nonblocking(fd.get())) {
    *error = errno_string("fcntl");
    return {};
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

ScopedFd connect_tcp(const std::string& host, std::uint16_t port,
                     std::string* error) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = errno_string("socket");
    return {};
  }
  if (!set_nonblocking(fd.get())) {
    *error = errno_string("fcntl");
    return {};
  }
  set_tcp_nodelay(fd.get());
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "invalid IPv4 address: " + host;
    return {};
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 &&
      errno != EINPROGRESS) {
    *error = errno_string("connect");
    return {};
  }
  return fd;
}

bool connect_finished(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  return ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 && err == 0;
}

WakePipe::WakePipe() {
  int fds[2];
  TG_CHECK_MSG(::pipe(fds) == 0, "pipe() failed");
  read_end_.reset(fds[0]);
  write_end_.reset(fds[1]);
  set_nonblocking(read_end_.get());
  set_nonblocking(write_end_.get());
}

void WakePipe::wake() {
  const char b = 'w';
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  [[maybe_unused]] ssize_t n = ::write(write_end_.get(), &b, 1);
}

void WakePipe::drain() {
  char buf[256];
  while (::read(read_end_.get(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace tailguard::net
