#include "net/send_queue.h"

#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>
#include <utility>

namespace tailguard::net {

std::vector<std::uint8_t>& SendQueue::chunk() {
  if (chunks_.empty() || chunks_.back().size() >= kChunkBytes) {
    if (!pool_.empty()) {
      chunks_.push_back(std::move(pool_.back()));
      pool_.pop_back();
      chunks_.back().clear();  // keeps capacity: the reuse the pool exists for
    } else {
      chunks_.emplace_back();
    }
  }
  return chunks_.back();
}

std::size_t SendQueue::bytes_pending() const {
  std::size_t total = 0;
  for (const auto& c : chunks_) total += c.size();
  return total - head_sent_;
}

SendQueue::FlushResult SendQueue::flush(int fd) {
  while (!chunks_.empty()) {
    // The front chunk can be empty (chunk() handed out a buffer nothing was
    // appended to); recycle it rather than issuing a zero-byte send.
    if (chunks_.front().size() == head_sent_) {
      head_sent_ = 0;
      if (pool_.size() < kMaxPooled) pool_.push_back(std::move(chunks_.front()));
      chunks_.pop_front();
      continue;
    }

    // Gather every pending chunk into one vectored send. More chunks than
    // kMaxIov (a deep backlog) just means another loop iteration.
    constexpr std::size_t kMaxIov = 16;
    iovec iov[kMaxIov];
    const std::size_t niov =
        chunks_.size() < kMaxIov ? chunks_.size() : kMaxIov;
    for (std::size_t i = 0; i < niov; ++i) {
      const std::size_t off = i == 0 ? head_sent_ : 0;
      iov[i].iov_base = chunks_[i].data() + off;
      iov[i].iov_len = chunks_[i].size() - off;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    const ssize_t n = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return FlushResult::kBlocked;
      return FlushResult::kError;
    }

    // Advance across however many chunks the kernel took.
    std::size_t taken = static_cast<std::size_t>(n);
    while (taken > 0) {
      const std::size_t front_left = chunks_.front().size() - head_sent_;
      if (taken < front_left) {
        head_sent_ += taken;
        break;
      }
      taken -= front_left;
      head_sent_ = 0;
      if (pool_.size() < kMaxPooled) pool_.push_back(std::move(chunks_.front()));
      chunks_.pop_front();
    }
  }
  return FlushResult::kDrained;
}

void SendQueue::clear() {
  chunks_.clear();
  head_sent_ = 0;
}

}  // namespace tailguard::net
