// Thin POSIX TCP helpers for the networked runtime: RAII fds, non-blocking
// listen/connect, and a self-pipe for waking a poll() loop from other
// threads. Everything reports errors via std::string out-params rather than
// exceptions — a refused connection is a normal event for the dispatcher's
// reconnect loop, not a programming error.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace tailguard::net {

/// Owns a file descriptor; closes on destruction. -1 means empty.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Puts `fd` in non-blocking mode. Returns false on failure.
bool set_nonblocking(int fd);

/// Disables Nagle; best-effort (loopback works either way, latency does not).
void set_tcp_nodelay(int fd);

/// Creates a non-blocking IPv4 listen socket bound to 127.0.0.1:`port`
/// (port 0 = kernel-assigned) with SO_REUSEADDR. Returns an empty fd and
/// fills `error` on failure.
ScopedFd listen_tcp(std::uint16_t port, std::string* error);

/// Local port a bound socket ended up on (resolves port 0).
std::uint16_t local_port(int fd);

/// Starts a non-blocking IPv4 connect to host:port. The connection may still
/// be in progress on return — poll for writability and check
/// `connect_finished`. Returns an empty fd on immediate failure.
ScopedFd connect_tcp(const std::string& host, std::uint16_t port,
                     std::string* error);

/// After a non-blocking connect signalled writability: true iff the
/// connection actually established (SO_ERROR == 0).
bool connect_finished(int fd);

/// Self-pipe for waking a poll() loop. wake() is async-signal-safe-ish and
/// callable from any thread; drain() empties the pipe on the poll thread.
class WakePipe {
 public:
  WakePipe();

  int read_fd() const { return read_end_.get(); }
  void wake();
  void drain();

 private:
  ScopedFd read_end_;
  ScopedFd write_end_;
};

}  // namespace tailguard::net
