// TailGuard wire protocol: compact length-prefixed binary frames.
//
// Every message travels as one frame:
//
//   offset  size  field
//   0       2     magic 0x5447 ("TG", little-endian u16)
//   2       1     protocol version (kWireVersion)
//   3       1     message type (MsgType)
//   4       4     payload length in bytes (little-endian u32)
//   8       n     payload
//
// Payloads are flat little-endian scalars (doubles as IEEE-754 bit patterns)
// plus u32-length-prefixed strings — no padding, no host-endianness leakage.
// Unknown message types within a known protocol version are skippable (the
// length prefix delimits them), which is what makes the framing versioned:
// new message types can be added without breaking old peers, while a version
// byte mismatch is a hard error.
//
// All times on the wire are *relative* durations in milliseconds; the two
// ends never exchange absolute clock readings, so the protocol is immune to
// clock offset between the dispatcher and the task servers.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "shard/state_sync.h"

namespace tailguard::net {

inline constexpr std::uint16_t kWireMagic = 0x5447;  // "TG"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Upper bound on a single payload; a peer announcing more is corrupt or
/// hostile, and the connection is dropped rather than the allocation made.
inline constexpr std::size_t kMaxPayloadBytes = 16u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,         ///< dispatcher -> server: version handshake
  kHelloAck = 2,      ///< server -> dispatcher: handshake reply
  kSubmitTask = 3,    ///< dispatcher -> server: enqueue one task
  kTaskDone = 4,      ///< server -> dispatcher: one task finished
  kModelSync = 5,     ///< server -> dispatcher: post-queuing-time backfill
  kStatsRequest = 6,  ///< dispatcher -> server: poll server stats
  kStatsResponse = 7, ///< server -> dispatcher: stats snapshot
  kGossipHello = 8,   ///< server -> dispatcher: announces delta-gossip support
  kGossipDelta = 9,   ///< server -> dispatcher: periodic ShardDelta broadcast
};

/// Handshake. The version is repeated inside the payload so a future frame
/// format can still negotiate down.
struct HelloMsg {
  std::uint32_t protocol_version = kWireVersion;
  std::string peer_name;

  friend bool operator==(const HelloMsg&, const HelloMsg&) = default;
};

struct HelloAckMsg {
  std::uint32_t protocol_version = kWireVersion;
  std::uint8_t policy = 0;  ///< Policy the server queues under (informational)
  std::uint32_t num_executors = 1;

  friend bool operator==(const HelloAckMsg&, const HelloAckMsg&) = default;
};

/// One task of a fanned-out query. The queuing deadline is shipped as a
/// duration relative to receipt: the server stamps `local_now +
/// relative_deadline_ms` into its policy queue, mirroring Eq. 6 with the
/// network delay folded into the budget.
struct SubmitTaskMsg {
  TaskId task = 0;
  QueryId query = 0;
  ClassId cls = 0;
  TimeMs relative_deadline_ms = 0.0;
  TimeMs simulated_service_ms = 0.0;

  friend bool operator==(const SubmitTaskMsg&, const SubmitTaskMsg&) = default;
};

/// Completion report. `queue_ms` is time spent queued (enqueue->dequeue) and
/// `service_ms` the post-queuing time (dequeue->complete) — the observation
/// the dispatcher's per-server CDF model absorbs (paper §III.B.2).
struct TaskDoneMsg {
  TaskId task = 0;
  QueryId query = 0;
  TimeMs queue_ms = 0.0;
  TimeMs service_ms = 0.0;
  bool missed_deadline = false;

  friend bool operator==(const TaskDoneMsg&, const TaskDoneMsg&) = default;
};

/// Post-queuing-time samples the server observed while no dispatcher was
/// connected (e.g. tasks that finished after a disconnect). Sent on
/// (re)connect so the dispatcher's frozen CDF model catches up.
struct ModelSyncMsg {
  std::vector<double> samples_ms;

  friend bool operator==(const ModelSyncMsg&, const ModelSyncMsg&) = default;
};

/// Announces that the sender will stream GossipDelta messages. Sent by a
/// task server right after HelloAck when gossip is enabled. A dispatcher
/// that never sees this treats the server as a pre-gossip daemon and relies
/// on the kModelSync backfill alone — the unknown-type skip rule in the
/// framing is the entire downgrade path, no capability bits needed.
struct GossipHelloMsg {
  /// Version of the gossip sub-protocol (delta layout), independent of the
  /// frame version. Receivers ignore deltas with a newer version than theirs.
  std::uint32_t gossip_version = 1;
  /// Sender-chosen origin id echoed into each delta (informational; wire
  /// receivers dedup per connection, not per origin).
  std::uint32_t origin = 0;

  friend bool operator==(const GossipHelloMsg&, const GossipHelloMsg&) =
      default;
};

/// One shard/state_sync.h ShardDelta on the wire: incremental CDF samples,
/// admission-window increments, and load gauges accumulated since the
/// sender's previous delta. Sample times are relative durations (ms), like
/// every other time on the wire. ServerEntry's slack-sample fields are
/// deliberately NOT serialized: task-server daemons never place tasks, so
/// shipping placement-only state to them would be dead weight. Slack deltas
/// travel only over the in-process StateSyncBus between handler shards.
struct GossipDeltaMsg {
  ShardDelta delta;

  friend bool operator==(const GossipDeltaMsg&, const GossipDeltaMsg&) =
      default;
};

struct StatsRequestMsg {
  friend bool operator==(const StatsRequestMsg&, const StatsRequestMsg&) =
      default;
};

struct StatsResponseMsg {
  std::uint32_t queue_depth = 0;
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_missed_deadline = 0;

  friend bool operator==(const StatsResponseMsg&, const StatsResponseMsg&) =
      default;
};

// ------------------------------------------------------------------ encode

// encode_into appends one complete frame (header + payload, built in place —
// no intermediate payload buffer) to `out`, which may already hold other
// frames: this is the batching primitive the net loops use to coalesce a
// burst of messages into one contiguous send buffer. The encode() forms are
// conveniences for tests and one-off frames.

void encode_into(const HelloMsg& msg, std::vector<std::uint8_t>& out);
void encode_into(const HelloAckMsg& msg, std::vector<std::uint8_t>& out);
void encode_into(const SubmitTaskMsg& msg, std::vector<std::uint8_t>& out);
void encode_into(const TaskDoneMsg& msg, std::vector<std::uint8_t>& out);
void encode_into(const ModelSyncMsg& msg, std::vector<std::uint8_t>& out);
void encode_into(const StatsRequestMsg& msg, std::vector<std::uint8_t>& out);
void encode_into(const StatsResponseMsg& msg, std::vector<std::uint8_t>& out);
void encode_into(const GossipHelloMsg& msg, std::vector<std::uint8_t>& out);
void encode_into(const GossipDeltaMsg& msg, std::vector<std::uint8_t>& out);

std::vector<std::uint8_t> encode(const HelloMsg& msg);
std::vector<std::uint8_t> encode(const HelloAckMsg& msg);
std::vector<std::uint8_t> encode(const SubmitTaskMsg& msg);
std::vector<std::uint8_t> encode(const TaskDoneMsg& msg);
std::vector<std::uint8_t> encode(const ModelSyncMsg& msg);
std::vector<std::uint8_t> encode(const StatsRequestMsg& msg);
std::vector<std::uint8_t> encode(const StatsResponseMsg& msg);
std::vector<std::uint8_t> encode(const GossipHelloMsg& msg);
std::vector<std::uint8_t> encode(const GossipDeltaMsg& msg);

// ------------------------------------------------------------------ decode

/// One parsed frame: type plus raw payload bytes.
struct Frame {
  MsgType type{};
  std::vector<std::uint8_t> payload;
};

/// Payload decoders; return false on truncated/trailing/corrupt payloads.
bool decode(const Frame& frame, HelloMsg* out);
bool decode(const Frame& frame, HelloAckMsg* out);
bool decode(const Frame& frame, SubmitTaskMsg* out);
bool decode(const Frame& frame, TaskDoneMsg* out);
bool decode(const Frame& frame, ModelSyncMsg* out);
bool decode(const Frame& frame, StatsRequestMsg* out);
bool decode(const Frame& frame, StatsResponseMsg* out);
bool decode(const Frame& frame, GossipHelloMsg* out);
bool decode(const Frame& frame, GossipDeltaMsg* out);

/// Incremental frame reassembly over a byte stream. Feed whatever the socket
/// produced; pop complete frames. A magic/version mismatch or an oversized
/// length poisons the buffer (error() becomes non-empty) and the connection
/// should be closed — framing cannot be re-synchronised once corrupt.
class FrameBuffer {
 public:
  void append(const std::uint8_t* data, std::size_t n);

  /// Next complete frame, or nullopt when more bytes are needed or the
  /// stream is poisoned.
  std::optional<Frame> next();

  /// Non-empty once the stream is unrecoverably corrupt.
  const std::string& error() const { return error_; }

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  ///< parsed prefix, compacted lazily
  std::string error_;
};

}  // namespace tailguard::net
