#include "net/dispatcher.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/check.h"
#include "core/placement.h"

namespace tailguard::net {

namespace {
std::vector<std::shared_ptr<CdfModel>> make_server_models(
    const DispatcherOptions& options) {
  std::vector<std::shared_ptr<CdfModel>> models;
  models.reserve(options.servers.size());
  for (std::size_t i = 0; i < options.servers.size(); ++i)
    models.push_back(
        std::make_shared<StreamingCdfModel>(options.model_options));
  return models;
}

ControlPlaneOptions make_control_plane_options(
    const DispatcherOptions& options) {
  ControlPlaneOptions cp;
  cp.policy = options.policy;
  cp.classes = options.classes;
  cp.admission = options.admission;
  cp.placement =
      options.placement ? *options.placement : placement_from_env();
  cp.seed = options.seed;
  return cp;
}
}  // namespace

RemoteDispatcher::RemoteDispatcher(DispatcherOptions options)
    : options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()),
      control_(ShardingOptions{},  // one shard: the dispatcher is one handler
               make_control_plane_options(options_),
               make_server_models(options_)) {
  TG_CHECK_MSG(!options_.servers.empty(), "need at least one task server");
  TG_CHECK_MSG(!options_.classes.empty(), "need at least one service class");
  TG_CHECK_MSG(options_.task_timeout_ms > 0.0, "task timeout must be positive");
  poller_ = Poller::create();
  servers_.resize(options_.servers.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i].spec = options_.servers[i];
    servers_[i].backoff_ms = options_.reconnect_initial_backoff_ms;
    servers_[i].next_attempt_ms = 0.0;  // connect on first loop iteration
  }
  net_thread_ = std::thread([this] { net_loop(); });
}

RemoteDispatcher::~RemoteDispatcher() {
  // Relaxed: plain shutdown latch. The net loop re-polls it every round,
  // the wake below forces a prompt round, and the join right after is the
  // real synchronization point — no data is published through this flag.
  running_.store(false, std::memory_order_relaxed);
  wake_.wake();
  if (net_thread_.joinable()) net_thread_.join();

  // Fail whatever is still in flight so no future is left hanging.
  std::vector<Resolution> resolutions;
  {
    MutexLock lock(mu_);
    std::vector<TaskId> remaining;
    remaining.reserve(in_flight_.size());
    for (const auto& [task, info] : in_flight_) remaining.push_back(task);
    for (TaskId task : remaining) {
      const auto it = in_flight_.find(task);
      if (it == in_flight_.end()) continue;
      const QueryId query = it->second.query;
      in_flight_.erase(it);
      finish_task(query, /*missed=*/false, /*failed=*/true, &resolutions);
    }
    for (auto& conn : servers_) conn.fd.reset();
  }
  resolve(std::move(resolutions));
}

TimeMs RemoteDispatcher::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void RemoteDispatcher::seed_profile(std::span<const double> samples_ms) {
  MutexLock lock(mu_);
  for (std::size_t s = 0; s < servers_.size(); ++s)
    control_.seed_profile(static_cast<ServerId>(s), samples_ms);
}

std::future<QueryResult> RemoteDispatcher::submit(
    ClassId cls, std::vector<RemoteTaskSpec> tasks,
    std::optional<TimeMs> budget_override) {
  TG_CHECK_MSG(!tasks.empty(), "query must contain at least one task");
  TG_CHECK_MSG(cls < options_.classes.size(), "unknown class " << cls);
  TG_CHECK_MSG(running_.load(std::memory_order_relaxed),
               "submit on a stopped dispatcher");

  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();
  std::vector<Resolution> resolutions;
  {
    MutexLock lock(mu_);
    const TimeMs t0 = now_ms();

    // Admission decision (§III.C) comes first: a rejected query costs no
    // placement work and never reaches a daemon.
    if (!control_.should_admit(/*shard=*/0, t0)) {
      control_.count_rejected(0);
      QueryResult r;
      r.cls = cls;
      r.fanout = static_cast<std::uint32_t>(tasks.size());
      r.admitted = false;
      promise.set_value(r);
      return future;
    }
    control_.count_admitted(0);

    std::vector<PlacementCandidate> alive;
    for (std::size_t s = 0; s < servers_.size(); ++s)
      if (servers_[s].state == ConnState::kAlive)
        // Load = our own in-flight tasks plus the daemon's last gossiped
        // queue depth (other dispatchers' backlog; 0 in a pre-gossip fleet).
        // The two overlap — our queued tasks appear in both — which biases
        // every candidate the same way and leaves the ranking sound.
        alive.emplace_back(
            servers_[s].in_flight + servers_[s].gossip_queue_depth,
            static_cast<ServerId>(s));

    // Placement: explicit targets are honoured (and fail fast when the
    // target is down); the rest go least-loaded over the alive set,
    // distinct where capacity allows.
    std::vector<ServerId> placement(tasks.size());
    std::vector<bool> failed_at_submit(tasks.size(), false);
    std::vector<std::size_t> unassigned;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (tasks[i].server) {
        TG_CHECK_MSG(*tasks[i].server < servers_.size(),
                     "unknown server " << *tasks[i].server);
        placement[i] = *tasks[i].server;
        failed_at_submit[i] =
            servers_[*tasks[i].server].state != ConnState::kAlive;
      } else {
        unassigned.push_back(i);
      }
    }
    if (!unassigned.empty()) {
      if (alive.empty()) {
        for (std::size_t i : unassigned) failed_at_submit[i] = true;
      } else {
        const auto picked = control_.place(
            /*shard=*/0, std::move(alive), unassigned.size(), cls, t0);
        for (std::size_t j = 0; j < unassigned.size(); ++j)
          placement[unassigned[j]] = picked[j];
      }
    }
    if (options_.placement_observer) options_.placement_observer(placement);

    // With no server reachable the query degrades to an immediate failure —
    // callers get a resolved future, never a hang.
    const bool all_failed =
        std::all_of(failed_at_submit.begin(), failed_at_submit.end(),
                    [](bool f) { return f; });
    if (all_failed) {
      QueryResult r;
      r.cls = cls;
      r.fanout = static_cast<std::uint32_t>(tasks.size());
      r.tasks_failed = r.fanout;
      tasks_failed_ += r.fanout;
      ++degraded_queries_;
      resolutions.emplace_back(std::move(promise), r);
    } else {
      // Budget (Eq. 6 over the intended server set — dead explicit targets
      // included, their frozen models still describe the intent — or the
      // caller's Eq. 7 override), t_D and the ordering key all come from
      // the control plane.
      const QueryPlan plan =
          control_.begin_query(/*shard=*/0, t0, cls, placement,
                               budget_override);
      const QueryId qid = plan.id;
      PendingQuery pending;
      pending.promise = std::move(promise);
      pending.result.id = qid;
      pending.result.cls = cls;
      pending.result.fanout = static_cast<std::uint32_t>(tasks.size());
      pending.result.deadline_budget_ms = plan.budget_ms;
      pending_.emplace(qid, std::move(pending));

      for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (failed_at_submit[i]) {
          finish_task(qid, /*missed=*/false, /*failed=*/true, &resolutions);
          continue;
        }
        SubmitTaskMsg msg;
        msg.task = next_task_id_++;
        msg.query = qid;
        msg.cls = cls;
        msg.relative_deadline_ms = plan.order_deadline - t0;
        msg.simulated_service_ms = tasks[i].simulated_service_ms;
        ServerConn& conn = servers_[placement[i]];
        // Frames for the same server coalesce into one chunk here and leave
        // in a single vectored send from the net loop.
        encode_into(msg, conn.out.chunk());
        ++conn.in_flight;
        in_flight_.emplace(msg.task, InFlightTask{qid, placement[i]});
        timeouts_.emplace(t0 + options_.task_timeout_ms, msg.task);
      }
    }
  }
  wake_.wake();
  resolve(std::move(resolutions));
  return future;
}

bool RemoteDispatcher::wait_for_servers(std::size_t min_alive,
                                        TimeMs timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  MutexLock lock(mu_);
  // Explicit deadline loop instead of the predicate overload: TSA analyzes
  // lambdas as separate functions holding no capabilities, so a predicate
  // reading servers_ cannot be annotated. Same semantics.
  while (alive_servers_locked() < min_alive) {
    if (alive_cv_.wait_until(mu_, deadline) == std::cv_status::timeout)
      return alive_servers_locked() >= min_alive;
  }
  return true;
}

std::size_t RemoteDispatcher::alive_servers_locked() const {
  std::size_t alive = 0;
  for (const auto& conn : servers_) alive += conn.state == ConnState::kAlive;
  return alive;
}

void RemoteDispatcher::request_stats(ServerId server) {
  MutexLock lock(mu_);
  TG_CHECK_MSG(server < servers_.size(), "unknown server " << server);
  if (servers_[server].state != ConnState::kAlive) return;
  encode_into(StatsRequestMsg{}, servers_[server].out.chunk());
  wake_.wake();
}

std::optional<StatsResponseMsg> RemoteDispatcher::last_stats(
    ServerId server) const {
  MutexLock lock(mu_);
  TG_CHECK_MSG(server < servers_.size(), "unknown server " << server);
  return servers_[server].stats;
}

std::size_t RemoteDispatcher::alive_servers() const {
  MutexLock lock(mu_);
  return alive_servers_locked();
}

std::uint64_t RemoteDispatcher::completed_queries() const {
  MutexLock lock(mu_);
  // Degraded (no-server) queries resolve without ever registering with the
  // control plane; callers still see them as completed.
  return control_.queries_completed() + degraded_queries_;
}

std::uint64_t RemoteDispatcher::rejected_queries() const {
  MutexLock lock(mu_);
  return control_.queries_rejected();
}

std::uint64_t RemoteDispatcher::failed_tasks() const {
  MutexLock lock(mu_);
  return tasks_failed_;
}

double RemoteDispatcher::deadline_miss_ratio() const {
  MutexLock lock(mu_);
  return control_.task_miss_ratio();
}

std::shared_ptr<const CdfModel> RemoteDispatcher::server_model(
    ServerId server) const {
  MutexLock lock(mu_);
  // Deep-copy under the lock: handing out a reference would race with the
  // observations the net thread keeps folding into the live model.
  return control_.model_of(/*shard=*/0, server).clone();
}

std::size_t RemoteDispatcher::gossip_capable_servers() const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& conn : servers_)
    n += conn.state == ConnState::kAlive && conn.gossip_capable;
  return n;
}

std::uint64_t RemoteDispatcher::gossip_deltas_absorbed() const {
  MutexLock lock(mu_);
  return gossip_deltas_absorbed_;
}

std::uint64_t RemoteDispatcher::gossip_duplicates_dropped() const {
  MutexLock lock(mu_);
  return gossip_duplicates_dropped_;
}

PlacementPolicyKind RemoteDispatcher::placement_kind() const {
  MutexLock lock(mu_);
  return control_.placement_kind();
}

PlacementStats RemoteDispatcher::placement_stats() const {
  MutexLock lock(mu_);
  return control_.placement_stats();
}

// ------------------------------------------------------------ task endings

void RemoteDispatcher::finish_task(QueryId query, bool missed, bool failed,
                                   std::vector<Resolution>* resolutions) {
  const auto it = pending_.find(query);
  TG_CHECK_MSG(it != pending_.end(), "no pending entry for query");
  if (failed) {
    ++tasks_failed_;
    ++it->second.result.tasks_failed;
  } else {
    // Feeds the per-class miss accounting and the admission window: over
    // the wire the dequeue-side miss flag arrives with the completion.
    control_.record_task_dequeue(query, now_ms(),
                                 control_.query_state(query).cls, missed);
    if (missed) ++it->second.result.tasks_missed_deadline;
  }
  QueryState final_state;
  if (control_.complete_task(query, &final_state)) {
    it->second.result.latency_ms = now_ms() - final_state.t0;
    resolutions->emplace_back(std::move(it->second.promise),
                              it->second.result);
    pending_.erase(it);
  }
}

void RemoteDispatcher::expire_timeouts(TimeMs now,
                                       std::vector<Resolution>* resolutions) {
  while (!timeouts_.empty() && timeouts_.begin()->first <= now) {
    const TaskId task = timeouts_.begin()->second;
    timeouts_.erase(timeouts_.begin());
    const auto it = in_flight_.find(task);
    if (it == in_flight_.end()) continue;  // already answered; lazy deletion
    const QueryId query = it->second.query;
    ServerConn& conn = servers_[it->second.server];
    if (conn.in_flight > 0) --conn.in_flight;
    in_flight_.erase(it);
    finish_task(query, /*missed=*/false, /*failed=*/true, resolutions);
  }
}

void RemoteDispatcher::resolve(std::vector<Resolution> resolutions) {
  for (auto& [promise, result] : resolutions) promise.set_value(result);
}

// -------------------------------------------------------------- networking

void RemoteDispatcher::start_connect(ServerId server, TimeMs now) {
  ServerConn& conn = servers_[server];
  std::string error;
  conn.fd = connect_tcp(conn.spec.host, conn.spec.port, &error);
  if (!conn.fd.valid()) {
    conn.next_attempt_ms = now + conn.backoff_ms;
    conn.backoff_ms =
        std::min(conn.backoff_ms * 2.0, options_.reconnect_max_backoff_ms);
    return;
  }
  conn.state = ConnState::kConnecting;
}

void RemoteDispatcher::disconnect(ServerId server, TimeMs now,
                                  std::vector<Resolution>* resolutions) {
  ServerConn& conn = servers_[server];
  if (conn.fd.valid()) poller_->forget(conn.fd.get());
  conn.fd.reset();
  conn.state = ConnState::kBackoff;
  conn.in = FrameBuffer{};
  conn.out.clear();
  conn.next_attempt_ms = now + conn.backoff_ms;
  conn.backoff_ms =
      std::min(conn.backoff_ms * 2.0, options_.reconnect_max_backoff_ms);
  conn.in_flight = 0;
  // A restarted daemon restarts its gossip capability and seq; forget both.
  conn.gossip_capable = false;
  conn.last_gossip_seq = 0;
  conn.gossip_queue_depth = 0;

  // Graceful degradation: fail this server's in-flight tasks immediately so
  // their queries complete instead of waiting out the full task timeout.
  std::vector<TaskId> orphaned;
  for (const auto& [task, info] : in_flight_)
    if (info.server == server) orphaned.push_back(task);
  for (TaskId task : orphaned) {
    const QueryId query = in_flight_.at(task).query;
    in_flight_.erase(task);
    finish_task(query, /*missed=*/false, /*failed=*/true, resolutions);
  }
}

bool RemoteDispatcher::read_server(ServerId server,
                                   std::vector<Resolution>* resolutions) {
  ServerConn& conn = servers_[server];
  std::uint8_t buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      return false;
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
  }
  while (auto frame = conn.in.next()) handle_frame(server, *frame, resolutions);
  return conn.in.error().empty();
}

void RemoteDispatcher::handle_frame(ServerId server, const Frame& frame,
                                    std::vector<Resolution>* resolutions) {
  ServerConn& conn = servers_[server];
  switch (frame.type) {
    case MsgType::kHelloAck: {
      HelloAckMsg ack;
      if (decode(frame, &ack) && ack.protocol_version == kWireVersion) {
        conn.state = ConnState::kAlive;
        conn.backoff_ms = options_.reconnect_initial_backoff_ms;
        alive_cv_.notify_all();
      }
      break;
    }
    case MsgType::kTaskDone: {
      TaskDoneMsg msg;
      if (!decode(frame, &msg)) break;
      // The observation is valid even when the task already timed out — the
      // server really took that long (online updating, §III.B.2).
      control_.observe_post_queuing_on(/*shard=*/0, server, msg.service_ms);
      const auto it = in_flight_.find(msg.task);
      if (it == in_flight_.end()) break;  // late reply after timeout/failover
      const QueryId query = it->second.query;
      if (conn.in_flight > 0) --conn.in_flight;
      in_flight_.erase(it);
      finish_task(query, msg.missed_deadline, /*failed=*/false, resolutions);
      break;
    }
    case MsgType::kModelSync: {
      ModelSyncMsg sync;
      if (!decode(frame, &sync)) break;
      for (double s : sync.samples_ms)
        control_.observe_post_queuing_on(/*shard=*/0, server, s);
      break;
    }
    case MsgType::kGossipHello: {
      GossipHelloMsg hello;
      if (decode(frame, &hello) && hello.gossip_version == 1)
        conn.gossip_capable = true;
      break;
    }
    case MsgType::kGossipDelta: {
      GossipDeltaMsg msg;
      if (!decode(frame, &msg)) break;
      // Per-connection dedup: daemons share no origin namespace, so the
      // delta identity over the wire is (connection, seq). Duplicates are
      // dropped, never re-applied — increments stay exactly-once.
      if (msg.delta.seq <= conn.last_gossip_seq) {
        ++gossip_duplicates_dropped_;
        break;
      }
      conn.last_gossip_seq = msg.delta.seq;
      // The daemon doesn't know which ServerId this connection is on our
      // side; every entry rebinds to `server`. Samples are completions that
      // *other* dispatchers' TaskDones carried — our own never ride gossip,
      // so each observation reaches this model exactly once.
      for (const auto& entry : msg.delta.servers) {
        for (double s : entry.samples_ms)
          control_.observe_post_queuing_on(/*shard=*/0, server, s);
        if (entry.has_load) conn.gossip_queue_depth = entry.load_estimate;
      }
      control_.absorb_remote_dequeues(/*shard=*/0, now_ms(),
                                      msg.delta.dequeues_recorded,
                                      msg.delta.dequeues_missed);
      ++gossip_deltas_absorbed_;
      break;
    }
    case MsgType::kStatsResponse: {
      StatsResponseMsg stats;
      if (decode(frame, &stats)) conn.stats = stats;
      break;
    }
    default:
      break;  // unknown types are skippable (versioned framing)
  }
}

void RemoteDispatcher::net_loop() {
  poller_->watch(wake_.read_fd(), /*want_read=*/true, /*want_write=*/false);
  std::vector<Poller::Event> events;
  while (running_.load(std::memory_order_relaxed)) {
    std::vector<Resolution> resolutions;
    double poll_timeout_ms = 200.0;
    {
      MutexLock lock(mu_);
      const TimeMs now = now_ms();
      expire_timeouts(now, &resolutions);
      for (std::size_t s = 0; s < servers_.size(); ++s) {
        ServerConn& conn = servers_[s];
        if (conn.state == ConnState::kBackoff) {
          if (now >= conn.next_attempt_ms)
            start_connect(static_cast<ServerId>(s), now);
          if (conn.state == ConnState::kBackoff)
            poll_timeout_ms =
                std::min(poll_timeout_ms, conn.next_attempt_ms - now);
        }
        if (!conn.fd.valid()) continue;
        // Interest edges only: steady-state rounds re-assert the same
        // interest and cost no syscall (see Poller::watch).
        if (conn.state == ConnState::kConnecting)
          poller_->watch(conn.fd.get(), /*want_read=*/false,
                         /*want_write=*/true);
        else
          poller_->watch(conn.fd.get(), /*want_read=*/true,
                         /*want_write=*/!conn.out.empty());
      }
      if (!timeouts_.empty())
        poll_timeout_ms =
            std::min(poll_timeout_ms, timeouts_.begin()->first - now);
    }
    resolve(std::move(resolutions));
    resolutions.clear();

    const int timeout_ms =
        std::max(1, static_cast<int>(poll_timeout_ms) + 1);
    events.clear();
    poller_->wait(events, timeout_ms);
    if (!running_.load(std::memory_order_relaxed)) break;

    {
      MutexLock lock(mu_);
      const TimeMs now = now_ms();
      for (const Poller::Event& ev : events) {
        if (ev.fd == wake_.read_fd()) {
          wake_.drain();
          continue;
        }
        // Map the event back to its server; a connection torn down earlier
        // in this batch simply no longer matches.
        ServerConn* conn = nullptr;
        ServerId s = 0;
        for (std::size_t i = 0; i < servers_.size(); ++i) {
          if (servers_[i].fd.valid() && servers_[i].fd.get() == ev.fd) {
            conn = &servers_[i];
            s = static_cast<ServerId>(i);
            break;
          }
        }
        if (conn == nullptr) continue;
        if (conn->state == ConnState::kConnecting) {
          if (connect_finished(conn->fd.get())) {
            HelloMsg hello;
            hello.peer_name = options_.name;
            encode_into(hello, conn->out.chunk());
            conn->state = ConnState::kHandshaking;
          } else {
            disconnect(s, now, &resolutions);
          }
          continue;
        }
        bool ok = !ev.closed;
        if (ok && ev.readable) ok = read_server(s, &resolutions);
        if (!ok) disconnect(s, now, &resolutions);
      }

      // Opportunistic flush over every live connection: submit() queues
      // frames from caller threads and rings the wake pipe, so pending
      // output usually arrives with no POLLOUT event at all. One vectored
      // send drains a whole burst.
      for (std::size_t s = 0; s < servers_.size(); ++s) {
        ServerConn& conn = servers_[s];
        if (!conn.fd.valid() || conn.state == ConnState::kConnecting ||
            conn.out.empty())
          continue;
        if (conn.out.flush(conn.fd.get()) == SendQueue::FlushResult::kError)
          disconnect(static_cast<ServerId>(s), now, &resolutions);
      }
    }
    resolve(std::move(resolutions));
  }
}

}  // namespace tailguard::net
