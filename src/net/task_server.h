// A networked TailGuard task server (one box of Fig. 2's task-server tier).
//
// Wraps the same policy queues and worker execution loop as the in-process
// runtime (runtime/Worker — the code path is shared, not duplicated) behind
// an async TCP loop (epoll via net/poller.h, with a poll(2) fallback)
// speaking the net/wire.h protocol:
//
//   dispatcher --- SubmitTask ---> [policy queue] -> executor thread(s)
//   dispatcher <--- TaskDone ----- (queue_ms, post-queuing time, miss flag)
//
// Queuing deadlines arrive as durations relative to receipt and are stamped
// against the server's local monotonic clock, so dispatcher and server never
// need synchronised clocks. Completions for tasks whose connection has gone
// away are buffered as post-queuing-time samples and shipped in a ModelSync
// frame when a dispatcher (re)connects — the dispatcher's frozen CDF model
// catches up on rejoin (paper §III.B.2's online updating, resumed).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "net/poller.h"
#include "net/send_queue.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/worker.h"

namespace tailguard::net {

struct TaskServerOptions {
  /// Port to listen on (loopback). 0 = kernel-assigned; read back via port().
  std::uint16_t port = 0;
  Policy policy = Policy::kTfEdf;
  std::size_t num_classes = 2;
  /// Execution threads. The paper's task servers are single-threaded (one
  /// policy queue, one executor); >1 shares the accept loop across several
  /// independently-queued executors.
  std::size_t num_executors = 1;
  std::string name = "tailguard-task-server";
  /// Cap on post-queuing samples buffered for ModelSync while disconnected.
  /// Also caps each connection's pending gossip sample buffer.
  std::size_t max_buffered_samples = 4096;
  /// Delta-gossip period (local-clock ms). When > 0 the server announces
  /// GossipHello after the handshake and streams each dispatcher a periodic
  /// GossipDelta of the completions *other* connections produced (samples,
  /// miss-window increments) plus a queue-depth load gauge — the wire form
  /// of shard/state_sync.h. 0 (the default) disables gossip entirely,
  /// behaving exactly like a pre-gossip daemon: dispatchers then rely on the
  /// ModelSync backfill alone.
  TimeMs gossip_interval_ms = 0.0;
};

class TaskServer {
 public:
  /// Binds, starts the executor threads and the network thread. Throws
  /// CheckFailure when the port cannot be bound.
  explicit TaskServer(TaskServerOptions options);
  ~TaskServer();

  TaskServer(const TaskServer&) = delete;
  TaskServer& operator=(const TaskServer&) = delete;

  /// Closes the listen socket and all connections, drains the executors.
  /// Idempotent.
  void stop();

  /// Bound port (resolves an ephemeral request).
  std::uint16_t port() const { return port_; }

  /// Local monotonic clock (ms since construction).
  TimeMs now_ms() const;

  std::uint64_t tasks_executed() const;
  std::uint64_t tasks_missed_deadline() const;
  std::size_t queue_depth() const;
  /// GossipDelta frames queued so far (0 when gossip is disabled).
  std::uint64_t gossip_deltas_sent() const;

 private:
  struct Connection {
    ScopedFd fd;
    FrameBuffer in;
    /// Outbound frames, coalesced and flushed with vectored sends. Encode
    /// with `encode_into(msg, conn.out.chunk())`.
    SendQueue out;
    bool hello_done = false;
    /// Marked instead of closing inline so the net loop's sweep can
    /// deregister the fd from the poller before the number is recycled.
    bool dead = false;
    /// Gossip accumulation for THIS dispatcher: observations produced by
    /// tasks that *other* connections submitted. The owning connection's own
    /// completions travel in its TaskDone frames — excluding them here is
    /// what keeps every sample exactly-once per dispatcher.
    std::vector<double> gossip_samples;
    std::uint64_t gossip_samples_dropped = 0;
    std::uint64_t gossip_dequeues_recorded = 0;
    std::uint64_t gossip_dequeues_missed = 0;
  };

  /// Where a task came from, for routing its TaskDone.
  struct TaskOrigin {
    std::uint64_t conn = 0;
    TimeMs enqueue_ms = 0.0;
  };

  void net_loop() TG_EXCLUDES(mu_);
  void accept_new_connections() TG_REQUIRES(mu_);
  /// Returns false when the connection must be closed.
  bool read_connection(std::uint64_t conn_id, Connection& conn)
      TG_REQUIRES(mu_);
  void handle_frame(std::uint64_t conn_id, Connection& conn,
                    const Frame& frame) TG_REQUIRES(mu_);
  /// Flushes pending output on every live connection, closes dead ones
  /// (deregistering from the poller first) and refreshes poller interest.
  void flush_and_sweep_connections() TG_REQUIRES(mu_);
  /// Emits one GossipDelta per live connection when the gossip boundary has
  /// passed, then re-arms. No-op while gossip is disabled.
  void maybe_gossip(TimeMs now) TG_REQUIRES(mu_);
  void on_task_complete(ServerId executor, const RuntimeTask& task,
                        TimeMs dequeue_ms, TimeMs complete_ms)
      TG_EXCLUDES(mu_);

  // tg-lint: allow(guarded-member): immutable after construction.
  TaskServerOptions options_;
  // tg-lint: allow(guarded-member): immutable after construction.
  std::chrono::steady_clock::time_point epoch_;
  // tg-lint: allow(guarded-member): written once by the constructor.
  std::uint16_t port_ = 0;
  // Net-thread private after the bind; stop() only resets it after joining
  // that thread. tg-lint: allow(guarded-member)
  ScopedFd listen_fd_;
  // WakePipe is self-synchronizing: write end poked from any thread, read
  // end drained by the net thread. tg-lint: allow(guarded-member)
  WakePipe wake_;
  // tg-lint: allow(guarded-member): net-thread private after construction.
  std::unique_ptr<Poller> poller_;
  std::atomic<bool> running_{true};

  mutable Mutex mu_;
  std::unordered_map<std::uint64_t, Connection> conns_ TG_GUARDED_BY(mu_);
  /// fd -> connection id.
  std::unordered_map<int, std::uint64_t> fd_conn_ TG_GUARDED_BY(mu_);
  std::uint64_t next_conn_id_ TG_GUARDED_BY(mu_) = 1;
  std::unordered_map<TaskId, TaskOrigin> task_origin_ TG_GUARDED_BY(mu_);
  std::vector<double> pending_samples_ TG_GUARDED_BY(mu_);
  std::uint64_t tasks_executed_ TG_GUARDED_BY(mu_) = 0;
  std::uint64_t tasks_missed_ TG_GUARDED_BY(mu_) = 0;
  /// Shared across connections: strictly increasing overall, hence strictly
  /// increasing along any one connection's subsequence — which is all the
  /// per-connection dedup on the dispatcher side needs.
  std::uint64_t next_gossip_seq_ TG_GUARDED_BY(mu_) = 1;
  TimeMs next_gossip_ms_ TG_GUARDED_BY(mu_) = 0.0;
  std::uint64_t gossip_deltas_sent_ TG_GUARDED_BY(mu_) = 0;
  bool stopped_ TG_GUARDED_BY(mu_) = false;

  std::thread net_thread_;
  // Executors last: their threads must drain and stop before the state above
  // is torn down (reverse member destruction order guarantees it). The
  // vector itself is immutable after construction; Worker is thread-safe.
  // tg-lint: allow(guarded-member)
  std::vector<std::unique_ptr<Worker>> executors_;
};

}  // namespace tailguard::net
