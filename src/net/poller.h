// I/O readiness multiplexing behind the net loops: epoll(7) by default with
// a portable poll(2) fallback.
//
// Both net loops (task_server.cc, dispatcher.cc) used to rebuild a pollfd
// array and re-enter the kernel with the full descriptor set every
// iteration — O(connections) of setup per wakeup even when nothing changed.
// The Poller keeps the interest set cached: `watch()` is idempotent and only
// edges (new fd, changed read/write interest) reach the kernel via
// epoll_ctl, so a steady-state wakeup costs one epoll_wait. The poll(2)
// backend keeps the old behaviour (array rebuilt per wait) behind the same
// interface for kernels/sandboxes without epoll and for differential
// testing; select it with TAILGUARD_NET_BACKEND=poll.
//
// Both backends are level-triggered, so a loop that services only part of
// the ready data is re-notified — no edge-trigger starvation hazards.
// Single-threaded by design: a Poller belongs to exactly one net loop.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

namespace tailguard::net {

class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// POLLERR/POLLHUP-class condition: the peer is gone or the descriptor
    /// is broken; the owner should tear the connection down.
    bool closed = false;
  };

  enum class Backend { kEpoll, kPoll };

  virtual ~Poller() = default;
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Declares interest in `fd`. Cheap when nothing changed — loops call it
  /// every iteration and only interest *edges* become syscalls.
  void watch(int fd, bool want_read, bool want_write);

  /// Drops `fd` from the interest set. Must be called before the descriptor
  /// is closed: fd numbers are recycled by the kernel, and a stale cache
  /// entry would make a later watch() on the reused number a silent no-op.
  void forget(int fd);

  /// Waits up to `timeout_ms` for readiness and appends one Event per ready
  /// descriptor to `out` (not cleared). Returns the number of ready
  /// descriptors, 0 on timeout, and treats EINTR as a timeout.
  virtual int wait(std::vector<Event>& out, int timeout_ms) = 0;

  virtual Backend backend() const = 0;

  /// Builds the backend named by TAILGUARD_NET_BACKEND ("epoll" or "poll");
  /// default is epoll, degrading to poll if epoll_create1 is unavailable.
  static std::unique_ptr<Poller> create();
  static std::unique_ptr<Poller> create(Backend backend);

 protected:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  Poller() = default;

  /// Pushes a changed interest into the kernel (`existed` distinguishes
  /// epoll ADD from MOD). The poll backend keeps this a no-op and derives
  /// its array from `interest_` at wait time.
  virtual void apply(int fd, Interest interest, bool existed) = 0;
  virtual void retract(int fd) = 0;

  std::unordered_map<int, Interest> interest_;
};

}  // namespace tailguard::net
