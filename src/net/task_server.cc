#include "net/task_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/check.h"

namespace tailguard::net {

TaskServer::TaskServer(TaskServerOptions options)
    : options_(std::move(options)), epoch_(std::chrono::steady_clock::now()) {
  TG_CHECK_MSG(options_.num_executors >= 1, "need at least one executor");
  TG_CHECK_MSG(options_.num_classes >= 1, "need at least one class");
  std::string error;
  listen_fd_ = listen_tcp(options_.port, &error);
  TG_CHECK_MSG(listen_fd_.valid(), "task server cannot listen: " << error);
  port_ = local_port(listen_fd_.get());

  const auto clock = [this] { return now_ms(); };
  const auto on_complete = [this](ServerId executor, const RuntimeTask& task,
                                  TimeMs dequeue_ms, TimeMs complete_ms) {
    on_task_complete(executor, task, dequeue_ms, complete_ms);
  };
  executors_.reserve(options_.num_executors);
  for (std::size_t i = 0; i < options_.num_executors; ++i)
    executors_.push_back(std::make_unique<Worker>(
        static_cast<ServerId>(i), options_.policy, options_.num_classes, clock,
        on_complete));
  net_thread_ = std::thread([this] { net_loop(); });
}

TaskServer::~TaskServer() { stop(); }

void TaskServer::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  running_.store(false);
  wake_.wake();
  if (net_thread_.joinable()) net_thread_.join();
  // Drain the executors: queued tasks still run; their completions land in
  // pending_samples_ (every connection is gone by now).
  for (auto& e : executors_) e->shutdown();
  std::lock_guard lock(mu_);
  conns_.clear();
  listen_fd_.reset();
}

TimeMs TaskServer::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint64_t TaskServer::tasks_executed() const {
  std::lock_guard lock(mu_);
  return tasks_executed_;
}

std::uint64_t TaskServer::tasks_missed_deadline() const {
  std::lock_guard lock(mu_);
  return tasks_missed_;
}

std::size_t TaskServer::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& e : executors_) depth += e->queue_depth();
  return depth;
}

void TaskServer::accept_new_connections() {
  for (;;) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try again next poll
    set_nonblocking(fd);
    set_tcp_nodelay(fd);
    Connection conn;
    conn.fd.reset(fd);
    conns_.emplace(next_conn_id_++, std::move(conn));
  }
}

bool TaskServer::read_connection(std::uint64_t conn_id, Connection& conn) {
  std::uint8_t buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      return false;  // peer closed
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
  }
  while (auto frame = conn.in.next()) handle_frame(conn_id, conn, *frame);
  return conn.in.error().empty();
}

bool TaskServer::flush_connection(Connection& conn) {
  while (!conn.outbox.empty()) {
    const auto& msg = conn.outbox.front();
    const ssize_t n = ::send(conn.fd.get(), msg.data() + conn.out_offset,
                             msg.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    conn.out_offset += static_cast<std::size_t>(n);
    if (conn.out_offset == msg.size()) {
      conn.outbox.pop_front();
      conn.out_offset = 0;
    }
  }
  return true;
}

void TaskServer::handle_frame(std::uint64_t conn_id, Connection& conn,
                              const Frame& frame) {
  switch (frame.type) {
    case MsgType::kHello: {
      HelloMsg hello;
      if (!decode(frame, &hello) || hello.protocol_version != kWireVersion) {
        conn.outbox.clear();  // hard error; close on next poll round
        conn.fd.reset();
        return;
      }
      HelloAckMsg ack;
      ack.policy = static_cast<std::uint8_t>(options_.policy);
      ack.num_executors = static_cast<std::uint32_t>(options_.num_executors);
      conn.outbox.push_back(encode(ack));
      // Backfill: post-queuing samples observed while disconnected.
      if (!pending_samples_.empty()) {
        ModelSyncMsg sync;
        sync.samples_ms = std::move(pending_samples_);
        pending_samples_.clear();
        conn.outbox.push_back(encode(sync));
      }
      conn.hello_done = true;
      break;
    }
    case MsgType::kSubmitTask: {
      SubmitTaskMsg msg;
      if (!decode(frame, &msg)) return;
      const TimeMs now = now_ms();
      RuntimeTask task;
      task.id = msg.task;
      task.query = msg.query;
      task.cls = msg.cls >= options_.num_classes
                     ? static_cast<ClassId>(options_.num_classes - 1)
                     : msg.cls;
      task.simulated_service_ms = msg.simulated_service_ms;
      task_origin_[msg.task] = {conn_id, now};
      // Route to the least-backlogged executor.
      Worker* target = executors_.front().get();
      for (const auto& e : executors_)
        if (e->queue_depth() < target->queue_depth()) target = e.get();
      target->submit(std::move(task), now, now + msg.relative_deadline_ms);
      break;
    }
    case MsgType::kStatsRequest: {
      StatsResponseMsg stats;
      stats.queue_depth = static_cast<std::uint32_t>(queue_depth());
      stats.tasks_executed = tasks_executed_;
      stats.tasks_missed_deadline = tasks_missed_;
      conn.outbox.push_back(encode(stats));
      break;
    }
    default:
      // Unknown/unexpected types are skippable by design (versioned framing).
      break;
  }
}

void TaskServer::close_connection(std::uint64_t conn_id) {
  conns_.erase(conn_id);
}

void TaskServer::on_task_complete(ServerId /*executor*/,
                                  const RuntimeTask& task, TimeMs dequeue_ms,
                                  TimeMs complete_ms) {
  const bool missed = dequeue_ms > task.order_deadline;
  TaskDoneMsg msg;
  msg.task = task.id;
  msg.query = task.query;
  msg.service_ms = complete_ms - dequeue_ms;
  msg.missed_deadline = missed;

  std::lock_guard lock(mu_);
  ++tasks_executed_;
  if (missed) ++tasks_missed_;
  const auto origin_it = task_origin_.find(task.id);
  TaskOrigin origin;
  if (origin_it != task_origin_.end()) {
    origin = origin_it->second;
    task_origin_.erase(origin_it);
  }
  msg.queue_ms = dequeue_ms - origin.enqueue_ms;
  const auto conn_it = conns_.find(origin.conn);
  if (conn_it != conns_.end() && conn_it->second.hello_done &&
      conn_it->second.fd.valid()) {
    conn_it->second.outbox.push_back(encode(msg));
    wake_.wake();
  } else if (pending_samples_.size() < options_.max_buffered_samples) {
    // No dispatcher to tell: keep the observation for the next ModelSync.
    pending_samples_.push_back(msg.service_ms);
  }
}

void TaskServer::net_loop() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = fixed fds)
  while (running_.load()) {
    fds.clear();
    fd_conn.clear();
    fds.push_back({listen_fd_.get(), POLLIN, 0});
    fd_conn.push_back(0);
    fds.push_back({wake_.read_fd(), POLLIN, 0});
    fd_conn.push_back(0);
    {
      std::lock_guard lock(mu_);
      for (auto& [id, conn] : conns_) {
        if (!conn.fd.valid()) continue;
        short events = POLLIN;
        if (!conn.outbox.empty()) events |= POLLOUT;
        fds.push_back({conn.fd.get(), events, 0});
        fd_conn.push_back(id);
      }
    }
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (!running_.load()) break;
    if (ready <= 0) continue;

    if (fds[1].revents & POLLIN) wake_.drain();

    std::lock_guard lock(mu_);
    if (fds[0].revents & POLLIN) accept_new_connections();
    for (std::size_t i = 2; i < fds.size(); ++i) {
      const std::uint64_t id = fd_conn[i];
      const auto it = conns_.find(id);
      if (it == conns_.end() || !it->second.fd.valid() ||
          it->second.fd.get() != fds[i].fd)
        continue;  // connection replaced/closed since the poll set was built
      Connection& conn = it->second;
      bool ok = true;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) ok = false;
      if (ok && (fds[i].revents & POLLIN)) ok = read_connection(id, conn);
      // A Hello may have queued an ack even without POLLOUT readiness;
      // opportunistically flush whenever there is something to send.
      if (ok && !conn.outbox.empty() && conn.fd.valid())
        ok = flush_connection(conn);
      if (!ok || !conn.fd.valid()) close_connection(id);
    }
  }
}

}  // namespace tailguard::net
