#include "net/task_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "common/check.h"

namespace tailguard::net {

TaskServer::TaskServer(TaskServerOptions options)
    : options_(std::move(options)), epoch_(std::chrono::steady_clock::now()) {
  TG_CHECK_MSG(options_.num_executors >= 1, "need at least one executor");
  TG_CHECK_MSG(options_.num_classes >= 1, "need at least one class");
  std::string error;
  listen_fd_ = listen_tcp(options_.port, &error);
  TG_CHECK_MSG(listen_fd_.valid(), "task server cannot listen: " << error);
  port_ = local_port(listen_fd_.get());
  poller_ = Poller::create();
  next_gossip_ms_ = options_.gossip_interval_ms;

  const auto clock = [this] { return now_ms(); };
  const auto on_complete = [this](ServerId executor, const RuntimeTask& task,
                                  TimeMs dequeue_ms, TimeMs complete_ms) {
    on_task_complete(executor, task, dequeue_ms, complete_ms);
  };
  executors_.reserve(options_.num_executors);
  for (std::size_t i = 0; i < options_.num_executors; ++i)
    executors_.push_back(std::make_unique<Worker>(
        static_cast<ServerId>(i), options_.policy, options_.num_classes, clock,
        on_complete));
  net_thread_ = std::thread([this] { net_loop(); });
}

TaskServer::~TaskServer() { stop(); }

void TaskServer::stop() {
  {
    MutexLock lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Relaxed: plain shutdown latch. The net loop re-polls it every round,
  // the wake below forces a prompt round, and the join right after is the
  // real synchronization point — no data is published through this flag.
  running_.store(false, std::memory_order_relaxed);
  wake_.wake();
  if (net_thread_.joinable()) net_thread_.join();
  // Drain the executors: queued tasks still run; their completions land in
  // pending_samples_ (every connection is gone by now).
  for (auto& e : executors_) e->shutdown();
  MutexLock lock(mu_);
  conns_.clear();
  fd_conn_.clear();
  listen_fd_.reset();
}

TimeMs TaskServer::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint64_t TaskServer::tasks_executed() const {
  MutexLock lock(mu_);
  return tasks_executed_;
}

std::uint64_t TaskServer::tasks_missed_deadline() const {
  MutexLock lock(mu_);
  return tasks_missed_;
}

std::size_t TaskServer::queue_depth() const {
  std::size_t depth = 0;
  for (const auto& e : executors_) depth += e->queue_depth();
  return depth;
}

std::uint64_t TaskServer::gossip_deltas_sent() const {
  MutexLock lock(mu_);
  return gossip_deltas_sent_;
}

void TaskServer::accept_new_connections() {
  for (;;) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try again next poll
    set_nonblocking(fd);
    set_tcp_nodelay(fd);
    Connection conn;
    conn.fd.reset(fd);
    fd_conn_[fd] = next_conn_id_;
    conns_.emplace(next_conn_id_++, std::move(conn));
  }
}

bool TaskServer::read_connection(std::uint64_t conn_id, Connection& conn) {
  std::uint8_t buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      return false;  // peer closed
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
  }
  while (auto frame = conn.in.next()) handle_frame(conn_id, conn, *frame);
  return conn.in.error().empty();
}

void TaskServer::handle_frame(std::uint64_t conn_id, Connection& conn,
                              const Frame& frame) {
  switch (frame.type) {
    case MsgType::kHello: {
      HelloMsg hello;
      if (!decode(frame, &hello) || hello.protocol_version != kWireVersion) {
        conn.out.clear();   // hard error; swept (and the fd deregistered
        conn.dead = true;   // from the poller) at the end of this round
        return;
      }
      HelloAckMsg ack;
      ack.policy = static_cast<std::uint8_t>(options_.policy);
      ack.num_executors = static_cast<std::uint32_t>(options_.num_executors);
      encode_into(ack, conn.out.chunk());
      // Backfill: post-queuing samples observed while disconnected.
      if (!pending_samples_.empty()) {
        ModelSyncMsg sync;
        sync.samples_ms = std::move(pending_samples_);
        pending_samples_.clear();
        encode_into(sync, conn.out.chunk());
      }
      // Gossip capability announcement: a dispatcher that never sees this
      // (gossip disabled, or an old daemon without the message type at all)
      // falls back to the ModelSync path above.
      if (options_.gossip_interval_ms > 0) {
        GossipHelloMsg gossip;
        encode_into(gossip, conn.out.chunk());
      }
      conn.hello_done = true;
      break;
    }
    case MsgType::kSubmitTask: {
      SubmitTaskMsg msg;
      if (!decode(frame, &msg)) return;
      const TimeMs now = now_ms();
      RuntimeTask task;
      task.id = msg.task;
      task.query = msg.query;
      task.cls = msg.cls >= options_.num_classes
                     ? static_cast<ClassId>(options_.num_classes - 1)
                     : msg.cls;
      task.simulated_service_ms = msg.simulated_service_ms;
      task_origin_[msg.task] = {conn_id, now};
      // Route to the least-backlogged executor.
      Worker* target = executors_.front().get();
      for (const auto& e : executors_)
        if (e->queue_depth() < target->queue_depth()) target = e.get();
      target->submit(std::move(task), now, now + msg.relative_deadline_ms);
      break;
    }
    case MsgType::kStatsRequest: {
      StatsResponseMsg stats;
      stats.queue_depth = static_cast<std::uint32_t>(queue_depth());
      stats.tasks_executed = tasks_executed_;
      stats.tasks_missed_deadline = tasks_missed_;
      encode_into(stats, conn.out.chunk());
      break;
    }
    default:
      // Unknown/unexpected types are skippable by design (versioned framing).
      break;
  }
}

void TaskServer::on_task_complete(ServerId /*executor*/,
                                  const RuntimeTask& task, TimeMs dequeue_ms,
                                  TimeMs complete_ms) {
  const bool missed = dequeue_ms > task.order_deadline;
  TaskDoneMsg msg;
  msg.task = task.id;
  msg.query = task.query;
  msg.service_ms = complete_ms - dequeue_ms;
  msg.missed_deadline = missed;

  MutexLock lock(mu_);
  ++tasks_executed_;
  if (missed) ++tasks_missed_;
  const auto origin_it = task_origin_.find(task.id);
  TaskOrigin origin;
  if (origin_it != task_origin_.end()) {
    origin = origin_it->second;
    task_origin_.erase(origin_it);
  }
  msg.queue_ms = dequeue_ms - origin.enqueue_ms;
  const auto conn_it = conns_.find(origin.conn);
  if (conn_it != conns_.end() && conn_it->second.hello_done &&
      !conn_it->second.dead && conn_it->second.fd.valid()) {
    // Completions land in the connection's coalescing buffer; a burst of
    // them becomes one contiguous chunk and (after the wake) one sendmsg.
    encode_into(msg, conn_it->second.out.chunk());
    wake_.wake();
  } else if (pending_samples_.size() < options_.max_buffered_samples) {
    // No dispatcher to tell: keep the observation for the next ModelSync.
    pending_samples_.push_back(msg.service_ms);
  }
  if (options_.gossip_interval_ms > 0) {
    // Every OTHER dispatcher learns of this completion via the next
    // GossipDelta. The owning connection just got the TaskDone above —
    // skipping it keeps each observation exactly-once per dispatcher.
    for (auto& [id, other] : conns_) {
      if (id == origin.conn || !other.hello_done || other.dead) continue;
      if (other.gossip_samples.size() < options_.max_buffered_samples)
        other.gossip_samples.push_back(msg.service_ms);
      else
        ++other.gossip_samples_dropped;
      ++other.gossip_dequeues_recorded;
      if (missed) ++other.gossip_dequeues_missed;
    }
  }
}

void TaskServer::maybe_gossip(TimeMs now) {
  if (options_.gossip_interval_ms <= 0 || now < next_gossip_ms_) return;
  const std::uint32_t depth = static_cast<std::uint32_t>(queue_depth());
  for (auto& [id, conn] : conns_) {
    if (!conn.hello_done || conn.dead || !conn.fd.valid()) continue;
    GossipDeltaMsg msg;
    msg.delta.seq = next_gossip_seq_++;
    // The dispatcher knows which of its servers this connection reaches;
    // the daemon doesn't, so the entry's server id is a placeholder and
    // receivers rebind it per connection.
    ShardDelta::ServerEntry entry;
    entry.samples_ms = std::move(conn.gossip_samples);
    entry.samples_dropped = conn.gossip_samples_dropped;
    entry.load_estimate = depth;
    entry.has_load = true;
    msg.delta.servers.push_back(std::move(entry));
    msg.delta.dequeues_recorded = conn.gossip_dequeues_recorded;
    msg.delta.dequeues_missed = conn.gossip_dequeues_missed;
    conn.gossip_samples.clear();
    conn.gossip_samples_dropped = 0;
    conn.gossip_dequeues_recorded = 0;
    conn.gossip_dequeues_missed = 0;
    encode_into(msg, conn.out.chunk());
    ++gossip_deltas_sent_;
  }
  // Wall-clock re-arm (the daemon is not simulated): next boundary from now,
  // so a long idle stretch costs one round, not a backlog of empty ones.
  next_gossip_ms_ = now + options_.gossip_interval_ms;
}

void TaskServer::flush_and_sweep_connections() {
  // Runs once per loop round, after the readiness events: flush whatever is
  // queued (completions from executor threads arrive with a wake, not a
  // POLLOUT, and a Hello handler queues its ack before any writability
  // event — the opportunistic flush keeps both off the slow path), then
  // close dead connections and refresh poller interest for the rest.
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = it->second;
    if (!conn.dead && conn.fd.valid() && !conn.out.empty() &&
        conn.out.flush(conn.fd.get()) == SendQueue::FlushResult::kError)
      conn.dead = true;
    if (conn.dead || !conn.fd.valid()) {
      if (conn.fd.valid()) {
        poller_->forget(conn.fd.get());
        fd_conn_.erase(conn.fd.get());
      }
      it = conns_.erase(it);
    } else {
      poller_->watch(conn.fd.get(), /*want_read=*/true,
                     /*want_write=*/!conn.out.empty());
      ++it;
    }
  }
}

void TaskServer::net_loop() {
  poller_->watch(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false);
  poller_->watch(wake_.read_fd(), /*want_read=*/true, /*want_write=*/false);
  std::vector<Poller::Event> events;
  while (running_.load(std::memory_order_relaxed)) {
    int timeout_ms = 200;
    if (options_.gossip_interval_ms > 0) {
      // Wake in time for the next gossip boundary instead of sleeping
      // through it (while keeping the 200 ms liveness ceiling).
      MutexLock lock(mu_);
      const double until = next_gossip_ms_ - now_ms();
      timeout_ms = std::clamp(static_cast<int>(until) + 1, 1, 200);
    }
    events.clear();
    poller_->wait(events, timeout_ms);
    if (!running_.load(std::memory_order_relaxed)) break;

    MutexLock lock(mu_);
    bool accept_ready = false;
    for (const Poller::Event& ev : events) {
      if (ev.fd == wake_.read_fd()) {
        wake_.drain();
        continue;
      }
      if (ev.fd == listen_fd_.get()) {
        accept_ready = true;
        continue;
      }
      const auto id_it = fd_conn_.find(ev.fd);
      if (id_it == fd_conn_.end()) continue;  // closed earlier this round
      const auto it = conns_.find(id_it->second);
      if (it == conns_.end()) continue;
      Connection& conn = it->second;
      if (ev.closed) conn.dead = true;
      if (!conn.dead && ev.readable &&
          !read_connection(id_it->second, conn))
        conn.dead = true;
    }
    // Accept after the connection events and before the sweep: descriptors
    // are only ever closed inside the sweep, so an accepted fd can never
    // alias a stale event in this batch, and the sweep registers the new
    // connections' read interest with the poller.
    if (accept_ready) accept_new_connections();
    maybe_gossip(now_ms());
    flush_and_sweep_connections();
  }
}

}  // namespace tailguard::net
