#include "net/poller.h"

#include <poll.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <string>

#include "net/socket.h"

namespace tailguard::net {

void Poller::watch(int fd, bool want_read, bool want_write) {
  const Interest wanted{want_read, want_write};
  const auto it = interest_.find(fd);
  const bool existed = it != interest_.end();
  if (existed && it->second.read == wanted.read &&
      it->second.write == wanted.write)
    return;  // steady state: no syscall
  interest_[fd] = wanted;
  apply(fd, wanted, existed);
}

void Poller::forget(int fd) {
  if (interest_.erase(fd) > 0) retract(fd);
}

namespace {

class EpollPoller final : public Poller {
 public:
  explicit EpollPoller(int epfd) : epfd_(epfd) {}

  int wait(std::vector<Event>& out, int timeout_ms) override {
    epoll_event evs[kMaxBatch];
    const int n = ::epoll_wait(epfd_.get(), evs, kMaxBatch, timeout_ms);
    if (n <= 0) return 0;  // timeout or EINTR
    for (int i = 0; i < n; ++i) {
      Event ev;
      ev.fd = evs[i].data.fd;
      ev.readable = (evs[i].events & EPOLLIN) != 0;
      ev.writable = (evs[i].events & EPOLLOUT) != 0;
      ev.closed = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
    return n;
  }

  Backend backend() const override { return Backend::kEpoll; }

 protected:
  void apply(int fd, Interest interest, bool existed) override {
    epoll_event ev{};
    ev.events = (interest.read ? EPOLLIN : 0u) |
                (interest.write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_.get(), existed ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd, &ev);
  }

  void retract(int fd) override {
    ::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, nullptr);
  }

 private:
  static constexpr int kMaxBatch = 64;
  ScopedFd epfd_;
};

class PollPoller final : public Poller {
 public:
  int wait(std::vector<Event>& out, int timeout_ms) override {
    fds_.clear();
    for (const auto& [fd, interest] : interest_) {
      short events = 0;
      if (interest.read) events |= POLLIN;
      if (interest.write) events |= POLLOUT;
      fds_.push_back({fd, events, 0});
    }
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return 0;  // timeout or EINTR
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      Event ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & POLLIN) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.closed = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(ev);
    }
    return n;
  }

  Backend backend() const override { return Backend::kPoll; }

 protected:
  void apply(int, Interest, bool) override {}
  void retract(int) override {}

 private:
  std::vector<pollfd> fds_;  // rebuilt per wait; reused capacity
};

}  // namespace

std::unique_ptr<Poller> Poller::create(Backend backend) {
  if (backend == Backend::kEpoll) {
    const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd >= 0) return std::unique_ptr<Poller>(new EpollPoller(epfd));
    // No epoll here (exotic sandbox): the poll backend is always available.
  }
  return std::unique_ptr<Poller>(new PollPoller());
}

std::unique_ptr<Poller> Poller::create() {
  const char* env = std::getenv("TAILGUARD_NET_BACKEND");
  if (env != nullptr && std::string(env) == "poll")
    return create(Backend::kPoll);
  return create(Backend::kEpoll);
}

}  // namespace tailguard::net
