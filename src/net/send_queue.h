// Per-connection output batching for the net loops.
//
// The old hot path issued one ::send() per encoded message: a dispatcher
// fanning a query out to k servers, or a task server acking a burst of
// completions, paid one syscall (plus one heap-allocated vector) per frame.
// SendQueue removes both costs:
//
//   * frames are *coalesced* — encode_into() appends each frame to the
//     current chunk, so a burst of small frames shares one contiguous
//     buffer (bounded by kChunkBytes so a huge backlog still flushes in
//     slices and memory stays proportional to what is actually queued);
//   * chunks are *recycled* — drained buffers drop into a small freelist
//     and are reused with their capacity intact, so steady-state traffic
//     allocates nothing;
//   * flush() gathers every pending chunk into one writev-style
//     sendmsg(MSG_NOSIGNAL), so an arbitrarily long backlog costs one
//     syscall per readiness event instead of one per message.
//
// Single-threaded like the rest of a connection's state: the owner
// serialises access (the net loops do so under their existing mutex).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace tailguard::net {

class SendQueue {
 public:
  enum class FlushResult {
    kDrained,  ///< everything pending hit the socket
    kBlocked,  ///< partial write: socket buffer full, poll for POLLOUT
    kError,    ///< unrecoverable socket error: close the connection
  };

  /// Buffer to append the next frame to (the active coalescing chunk).
  /// Intended use: `encode_into(msg, q.chunk());`. The reference is
  /// invalidated by the next chunk()/flush()/clear() call.
  std::vector<std::uint8_t>& chunk();

  bool empty() const { return chunks_.empty(); }

  /// Bytes queued but not yet written to the socket.
  std::size_t bytes_pending() const;

  /// Writes as much pending data as the socket accepts, all chunks gathered
  /// into single sendmsg calls. Retries EINTR internally.
  FlushResult flush(int fd);

  /// Drops all pending data (connection teardown).
  void clear();

 private:
  /// Soft cap per chunk: a chunk at or beyond this size stops accepting new
  /// frames. Big enough that a typical fan-out burst coalesces into one
  /// buffer, small enough that recycled capacity stays cheap.
  static constexpr std::size_t kChunkBytes = 32 * 1024;
  static constexpr std::size_t kMaxPooled = 4;

  std::deque<std::vector<std::uint8_t>> chunks_;
  std::size_t head_sent_ = 0;  ///< bytes of chunks_.front() already written
  std::vector<std::vector<std::uint8_t>> pool_;
};

}  // namespace tailguard::net
