// RemoteDispatcher — the query-handler side of a distributed TailGuard
// deployment (Fig. 2), mirroring the TailGuardService API over TCP.
//
// Per remote task server it keeps a persistent connection and a
// StreamingCdfModel of that server's unloaded task response time; Eq. 6
// deadline assignment happens at submit against the chosen server set, and
// completion (TaskDone) frames feed the online updating process (§III.B.2)
// exactly as the in-process runtime's completion callback does.
//
// Partial failure is a first-class state, not an error path:
//   * a dead server is excluded from placement and its CDF model frozen (no
//     observations arrive) until it rejoins;
//   * in-flight tasks on a dying connection fail immediately — the owning
//     queries complete with `tasks_failed` counts instead of hanging;
//   * per-task timeouts bound the wait on a wedged-but-connected server;
//   * reconnects use exponential backoff, and a rejoining server backfills
//     the model via ModelSync.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "net/poller.h"
#include "net/send_queue.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/service.h"
#include "shard/sharded_control_plane.h"

namespace tailguard::net {

struct RemoteServerSpec {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// One task of a remote query. Closures cannot cross the wire; remote tasks
/// carry a simulated service duration (real deployments would ship an opaque
/// request payload here).
struct RemoteTaskSpec {
  /// Target server; unset means least-loaded distinct placement.
  std::optional<ServerId> server;
  TimeMs simulated_service_ms = 0.0;
};

struct DispatcherOptions {
  std::vector<RemoteServerSpec> servers;
  Policy policy = Policy::kTfEdf;
  /// Service classes ordered by priority (class 0 tightest).
  std::vector<ClassSpec> classes;
  StreamingCdfModel::Options model_options = {
      .histogram = {.min_value = 1e-3,
                    .max_value = 1e6,
                    .buckets_per_decade = 100,
                    .decay_every = 0,
                    .decay_factor = 0.5},
      .refresh_every = 500};
  /// A task unanswered this long after submit counts as failed.
  TimeMs task_timeout_ms = 5000.0;
  TimeMs reconnect_initial_backoff_ms = 25.0;
  TimeMs reconnect_max_backoff_ms = 1000.0;
  /// Query admission control (§III.C); disabled when unset. The window is
  /// fed by TaskDone miss flags, so the distributed deployment sheds load
  /// exactly like the in-process runtime.
  std::optional<AdmissionOptions> admission;
  std::uint64_t seed = 42;
  /// Placement policy for auto-placed tasks (core/placement/policy.h).
  /// Unset resolves from the environment (TAILGUARD_PLACEMENT /
  /// TAILGUARD_PLACEMENT_D), defaulting to least_loaded. Candidates are the
  /// alive servers ranked by our in-flight count plus the daemon's last
  /// gossiped queue-depth gauge, whatever the policy.
  std::optional<PlacementPolicyOptions> placement;
  /// Observer called once per submitted (admitted) query with the servers
  /// its tasks landed on (explicit targets included), in task order. Runs
  /// under the dispatcher lock — keep it cheap. Purely observational, for
  /// the cross-backend placement parity tests.
  std::function<void(std::span<const ServerId>)> placement_observer;
  std::string name = "tailguard-dispatcher";
};

class RemoteDispatcher {
 public:
  explicit RemoteDispatcher(DispatcherOptions options);
  /// Fails all in-flight queries (resolving their futures) and disconnects.
  ~RemoteDispatcher();

  RemoteDispatcher(const RemoteDispatcher&) = delete;
  RemoteDispatcher& operator=(const RemoteDispatcher&) = delete;

  /// Offline estimation: seeds every server's CDF model.
  void seed_profile(std::span<const double> samples_ms);

  /// Submits a query of class `cls`. The future resolves when every task has
  /// reported done, failed, or timed out — it never hangs on a dead server.
  /// With no server alive the query completes immediately with all tasks
  /// failed. `budget_override` replaces the Eq. 6 budget, as in
  /// TailGuardService::submit.
  std::future<QueryResult> submit(ClassId cls,
                                  std::vector<RemoteTaskSpec> tasks,
                                  std::optional<TimeMs> budget_override = {});

  /// Blocks until at least `min_alive` servers have completed the handshake
  /// (or `timeout_ms` elapses). Returns whether the threshold was reached.
  bool wait_for_servers(std::size_t min_alive, TimeMs timeout_ms);

  /// Fire-and-forget StatsRequest to `server`; the reply (when it arrives)
  /// is readable via last_stats().
  void request_stats(ServerId server);
  std::optional<StatsResponseMsg> last_stats(ServerId server) const;

  /// Monotonic dispatcher clock (ms since construction).
  TimeMs now_ms() const;

  std::size_t num_servers() const { return options_.servers.size(); }
  std::size_t alive_servers() const;
  std::uint64_t completed_queries() const;
  std::uint64_t rejected_queries() const;
  std::uint64_t failed_tasks() const;
  double deadline_miss_ratio() const;
  /// Snapshot of a server's CDF model: a deep copy taken under mu_, safe to
  /// read while TaskDone frames keep feeding the live model. (Returning a
  /// reference here used to escape the lock — caught by the annotation
  /// pass.)
  std::shared_ptr<const CdfModel> server_model(ServerId server) const;

  /// Connected servers that announced GossipHello (0 in a pre-gossip fleet).
  std::size_t gossip_capable_servers() const;
  std::uint64_t gossip_deltas_absorbed() const;
  std::uint64_t gossip_duplicates_dropped() const;

  /// Placement observability: which policy ran and its per-decision
  /// counters.
  PlacementPolicyKind placement_kind() const;
  PlacementStats placement_stats() const;

 private:
  enum class ConnState {
    kBackoff,      ///< disconnected, waiting for next_attempt_ms
    kConnecting,   ///< non-blocking connect in flight
    kHandshaking,  ///< connected, Hello sent, awaiting HelloAck
    kAlive,        ///< handshake complete; eligible for placement
  };

  struct ServerConn {
    RemoteServerSpec spec;
    ScopedFd fd;
    ConnState state = ConnState::kBackoff;
    FrameBuffer in;
    /// Outbound frames, coalesced and flushed with vectored sends. Encode
    /// with `encode_into(msg, conn.out.chunk())` — a fan-out burst of
    /// SubmitTask frames becomes one buffer and one syscall.
    SendQueue out;
    TimeMs next_attempt_ms = 0.0;
    TimeMs backoff_ms = 0.0;
    std::size_t in_flight = 0;
    std::optional<StatsResponseMsg> stats;
    /// Set by GossipHello: this daemon streams GossipDelta frames. A daemon
    /// that never announces (pre-gossip build, or gossip disabled) is served
    /// by the ModelSync backfill alone — mixed fleets just work.
    bool gossip_capable = false;
    /// Per-connection gossip dedup: daemons share no origin namespace, so
    /// (connection, seq) is the delta identity over the wire. Reset on
    /// reconnect (a restarted daemon restarts its seq).
    std::uint64_t last_gossip_seq = 0;
    /// Last queue-depth gauge gossiped by the daemon: cluster-wide load this
    /// dispatcher didn't submit. Folded into placement ranking.
    std::uint32_t gossip_queue_depth = 0;
  };

  struct InFlightTask {
    QueryId query = 0;
    ServerId server = 0;
  };

  struct PendingQuery {
    std::promise<QueryResult> promise;
    QueryResult result;
  };

  /// A future to resolve once mu_ is released.
  using Resolution = std::pair<std::promise<QueryResult>, QueryResult>;

  void net_loop() TG_EXCLUDES(mu_);
  void start_connect(ServerId server, TimeMs now) TG_REQUIRES(mu_);
  void disconnect(ServerId server, TimeMs now,
                  std::vector<Resolution>* resolutions) TG_REQUIRES(mu_);
  bool read_server(ServerId server, std::vector<Resolution>* resolutions)
      TG_REQUIRES(mu_);
  void handle_frame(ServerId server, const Frame& frame,
                    std::vector<Resolution>* resolutions) TG_REQUIRES(mu_);
  /// Records one finished/failed task; appends a resolution when it was the
  /// query's last.
  void finish_task(TaskId task, bool missed, bool failed,
                   std::vector<Resolution>* resolutions) TG_REQUIRES(mu_);
  void expire_timeouts(TimeMs now, std::vector<Resolution>* resolutions)
      TG_REQUIRES(mu_);
  std::size_t alive_servers_locked() const TG_REQUIRES(mu_);
  static void resolve(std::vector<Resolution> resolutions);

  // tg-lint: allow(guarded-member): immutable after construction.
  DispatcherOptions options_;
  // tg-lint: allow(guarded-member): immutable after construction.
  std::chrono::steady_clock::time_point epoch_;
  // WakePipe is self-synchronizing: write end poked from any thread, read
  // end drained by the net thread. tg-lint: allow(guarded-member)
  WakePipe wake_;
  // tg-lint: allow(guarded-member): net-thread private after construction.
  std::unique_ptr<Poller> poller_;
  std::atomic<bool> running_{true};

  mutable Mutex mu_;
  CondVar alive_cv_;
  std::vector<ServerConn> servers_ TG_GUARDED_BY(mu_);
  /// The shared query-handler pipeline (shard/sharded_control_plane.h, one
  /// shard): admission, Eq. 6/7 budgets, t_D and ordering keys, query
  /// tracking, per-class miss accounting, online model updates. Incoming
  /// gossip deltas feed it via the absorb path.
  ShardedControlPlane control_ TG_GUARDED_BY(mu_);
  std::unordered_map<QueryId, PendingQuery> pending_ TG_GUARDED_BY(mu_);
  std::unordered_map<TaskId, InFlightTask> in_flight_ TG_GUARDED_BY(mu_);
  std::multimap<TimeMs, TaskId> timeouts_ TG_GUARDED_BY(mu_);
  TaskId next_task_id_ TG_GUARDED_BY(mu_) = 0;
  /// Queries that degraded to an immediate all-tasks-failed result without
  /// ever registering with the control plane (no server reachable).
  std::uint64_t degraded_queries_ TG_GUARDED_BY(mu_) = 0;
  std::uint64_t tasks_failed_ TG_GUARDED_BY(mu_) = 0;
  std::uint64_t gossip_deltas_absorbed_ TG_GUARDED_BY(mu_) = 0;
  std::uint64_t gossip_duplicates_dropped_ TG_GUARDED_BY(mu_) = 0;

  std::thread net_thread_;
};

}  // namespace tailguard::net
