#include "net/wire.h"

#include <bit>
#include <cstring>
#include <sstream>

namespace tailguard::net {

namespace {

// ----------------------------------------------------------------- writer

// Serialises one frame straight into the caller's buffer, header first: the
// constructor writes the 8-byte header with a zero length, payload fields
// append behind it, and finish() patches the real length in. One buffer, no
// payload staging copy — and because the buffer is caller-owned, consecutive
// frames coalesce into it (SendQueue hands the same chunk to many writers).
class Writer {
 public:
  Writer(std::vector<std::uint8_t>& out, MsgType type)
      : out_(out), len_at_(out.size() + 4) {
    u16(kWireMagic);
    u8(kWireVersion);
    u8(static_cast<std::uint8_t>(type));
    u32(0);  // payload length, patched by finish()
  }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  /// Back-patches the payload length now that the payload is complete.
  void finish() {
    const std::size_t payload = out_.size() - (len_at_ + 4);
    for (int i = 0; i < 4; ++i)
      out_[len_at_ + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(payload >> (8 * i));
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::size_t len_at_;  ///< offset of the length field within out_
};

// ----------------------------------------------------------------- reader

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t* v) {
    if (!have(1)) return false;
    *v = bytes_[pos_++];
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (!have(4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i)
      *v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t* v) {
    if (!have(8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i)
      *v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    return true;
  }
  bool f64(double* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }
  bool str(std::string* s) {
    std::uint32_t n = 0;
    if (!u32(&n) || !have(n)) return false;
    s->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return true;
  }

  /// Payload decoding must consume every byte — trailing garbage means the
  /// sender and receiver disagree about the message layout.
  bool done() const { return pos_ == bytes_.size(); }

 private:
  bool have(std::size_t n) const { return bytes_.size() - pos_ >= n; }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

bool expect_type(const Frame& frame, MsgType type) {
  return frame.type == type;
}

}  // namespace

// ------------------------------------------------------------------ encode

void encode_into(const HelloMsg& msg, std::vector<std::uint8_t>& out) {
  Writer w(out, MsgType::kHello);
  w.u32(msg.protocol_version);
  w.str(msg.peer_name);
  w.finish();
}

void encode_into(const HelloAckMsg& msg, std::vector<std::uint8_t>& out) {
  Writer w(out, MsgType::kHelloAck);
  w.u32(msg.protocol_version);
  w.u8(msg.policy);
  w.u32(msg.num_executors);
  w.finish();
}

void encode_into(const SubmitTaskMsg& msg, std::vector<std::uint8_t>& out) {
  Writer w(out, MsgType::kSubmitTask);
  w.u64(msg.task);
  w.u64(msg.query);
  w.u32(msg.cls);
  w.f64(msg.relative_deadline_ms);
  w.f64(msg.simulated_service_ms);
  w.finish();
}

void encode_into(const TaskDoneMsg& msg, std::vector<std::uint8_t>& out) {
  Writer w(out, MsgType::kTaskDone);
  w.u64(msg.task);
  w.u64(msg.query);
  w.f64(msg.queue_ms);
  w.f64(msg.service_ms);
  w.u8(msg.missed_deadline ? 1 : 0);
  w.finish();
}

void encode_into(const ModelSyncMsg& msg, std::vector<std::uint8_t>& out) {
  Writer w(out, MsgType::kModelSync);
  w.u32(static_cast<std::uint32_t>(msg.samples_ms.size()));
  for (double s : msg.samples_ms) w.f64(s);
  w.finish();
}

void encode_into(const StatsRequestMsg&, std::vector<std::uint8_t>& out) {
  Writer w(out, MsgType::kStatsRequest);
  w.finish();
}

void encode_into(const StatsResponseMsg& msg, std::vector<std::uint8_t>& out) {
  Writer w(out, MsgType::kStatsResponse);
  w.u32(msg.queue_depth);
  w.u64(msg.tasks_executed);
  w.u64(msg.tasks_missed_deadline);
  w.finish();
}

void encode_into(const GossipHelloMsg& msg, std::vector<std::uint8_t>& out) {
  Writer w(out, MsgType::kGossipHello);
  w.u32(msg.gossip_version);
  w.u32(msg.origin);
  w.finish();
}

void encode_into(const GossipDeltaMsg& msg, std::vector<std::uint8_t>& out) {
  Writer w(out, MsgType::kGossipDelta);
  const ShardDelta& d = msg.delta;
  w.u32(d.origin);
  w.u64(d.seq);
  w.u64(d.dequeues_recorded);
  w.u64(d.dequeues_missed);
  w.u32(static_cast<std::uint32_t>(d.servers.size()));
  for (const auto& e : d.servers) {
    w.u32(static_cast<std::uint32_t>(e.server));
    w.u64(e.samples_dropped);
    w.u32(e.load_estimate);
    w.u8(e.has_load ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(e.samples_ms.size()));
    for (double s : e.samples_ms) w.f64(s);
  }
  w.finish();
}

namespace {
template <typename Msg>
std::vector<std::uint8_t> encode_one(const Msg& msg) {
  std::vector<std::uint8_t> out;
  encode_into(msg, out);
  return out;
}
}  // namespace

std::vector<std::uint8_t> encode(const HelloMsg& msg) { return encode_one(msg); }
std::vector<std::uint8_t> encode(const HelloAckMsg& msg) {
  return encode_one(msg);
}
std::vector<std::uint8_t> encode(const SubmitTaskMsg& msg) {
  return encode_one(msg);
}
std::vector<std::uint8_t> encode(const TaskDoneMsg& msg) {
  return encode_one(msg);
}
std::vector<std::uint8_t> encode(const ModelSyncMsg& msg) {
  return encode_one(msg);
}
std::vector<std::uint8_t> encode(const StatsRequestMsg& msg) {
  return encode_one(msg);
}
std::vector<std::uint8_t> encode(const StatsResponseMsg& msg) {
  return encode_one(msg);
}
std::vector<std::uint8_t> encode(const GossipHelloMsg& msg) {
  return encode_one(msg);
}
std::vector<std::uint8_t> encode(const GossipDeltaMsg& msg) {
  return encode_one(msg);
}

// ------------------------------------------------------------------ decode

bool decode(const Frame& frame, HelloMsg* out) {
  if (!expect_type(frame, MsgType::kHello)) return false;
  Reader r(frame.payload);
  return r.u32(&out->protocol_version) && r.str(&out->peer_name) && r.done();
}

bool decode(const Frame& frame, HelloAckMsg* out) {
  if (!expect_type(frame, MsgType::kHelloAck)) return false;
  Reader r(frame.payload);
  return r.u32(&out->protocol_version) && r.u8(&out->policy) &&
         r.u32(&out->num_executors) && r.done();
}

bool decode(const Frame& frame, SubmitTaskMsg* out) {
  if (!expect_type(frame, MsgType::kSubmitTask)) return false;
  Reader r(frame.payload);
  return r.u64(&out->task) && r.u64(&out->query) && r.u32(&out->cls) &&
         r.f64(&out->relative_deadline_ms) &&
         r.f64(&out->simulated_service_ms) && r.done();
}

bool decode(const Frame& frame, TaskDoneMsg* out) {
  if (!expect_type(frame, MsgType::kTaskDone)) return false;
  Reader r(frame.payload);
  std::uint8_t missed = 0;
  if (!(r.u64(&out->task) && r.u64(&out->query) && r.f64(&out->queue_ms) &&
        r.f64(&out->service_ms) && r.u8(&missed) && r.done()))
    return false;
  out->missed_deadline = missed != 0;
  return true;
}

bool decode(const Frame& frame, ModelSyncMsg* out) {
  if (!expect_type(frame, MsgType::kModelSync)) return false;
  Reader r(frame.payload);
  std::uint32_t count = 0;
  if (!r.u32(&count)) return false;
  // 8 bytes per sample; reject counts the payload cannot possibly hold
  // before reserving.
  if (static_cast<std::size_t>(count) * 8 > frame.payload.size()) return false;
  out->samples_ms.clear();
  out->samples_ms.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    double s = 0.0;
    if (!r.f64(&s)) return false;
    out->samples_ms.push_back(s);
  }
  return r.done();
}

bool decode(const Frame& frame, StatsRequestMsg*) {
  return expect_type(frame, MsgType::kStatsRequest) && frame.payload.empty();
}

bool decode(const Frame& frame, StatsResponseMsg* out) {
  if (!expect_type(frame, MsgType::kStatsResponse)) return false;
  Reader r(frame.payload);
  return r.u32(&out->queue_depth) && r.u64(&out->tasks_executed) &&
         r.u64(&out->tasks_missed_deadline) && r.done();
}

bool decode(const Frame& frame, GossipHelloMsg* out) {
  if (!expect_type(frame, MsgType::kGossipHello)) return false;
  Reader r(frame.payload);
  return r.u32(&out->gossip_version) && r.u32(&out->origin) && r.done();
}

bool decode(const Frame& frame, GossipDeltaMsg* out) {
  if (!expect_type(frame, MsgType::kGossipDelta)) return false;
  Reader r(frame.payload);
  ShardDelta& d = out->delta;
  std::uint32_t num_servers = 0;
  if (!(r.u32(&d.origin) && r.u64(&d.seq) && r.u64(&d.dequeues_recorded) &&
        r.u64(&d.dequeues_missed) && r.u32(&num_servers)))
    return false;
  // Each entry is at least 17 bytes; reject counts the payload cannot hold
  // before reserving (same guard as ModelSync's sample count).
  if (static_cast<std::size_t>(num_servers) * 17 > frame.payload.size())
    return false;
  d.servers.clear();
  d.servers.reserve(num_servers);
  for (std::uint32_t i = 0; i < num_servers; ++i) {
    ShardDelta::ServerEntry e;
    std::uint32_t server = 0;
    std::uint8_t has_load = 0;
    std::uint32_t num_samples = 0;
    if (!(r.u32(&server) && r.u64(&e.samples_dropped) &&
          r.u32(&e.load_estimate) && r.u8(&has_load) && r.u32(&num_samples)))
      return false;
    if (static_cast<std::size_t>(num_samples) * 8 > frame.payload.size())
      return false;
    e.server = server;
    e.has_load = has_load != 0;
    e.samples_ms.reserve(num_samples);
    for (std::uint32_t j = 0; j < num_samples; ++j) {
      double s = 0.0;
      if (!r.f64(&s)) return false;
      e.samples_ms.push_back(s);
    }
    d.servers.push_back(std::move(e));
  }
  return r.done();
}

// ------------------------------------------------------------- FrameBuffer

void FrameBuffer::append(const std::uint8_t* data, std::size_t n) {
  if (!error_.empty()) return;
  // Compact the parsed prefix before growing, amortised O(1) per byte.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

std::optional<Frame> FrameBuffer::next() {
  if (!error_.empty()) return std::nullopt;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* h = buffer_.data() + consumed_;
  const std::uint16_t magic =
      static_cast<std::uint16_t>(h[0]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(h[1]) << 8);
  if (magic != kWireMagic) {
    error_ = "bad frame magic";
    return std::nullopt;
  }
  if (h[2] != kWireVersion) {
    std::ostringstream os;
    os << "protocol version mismatch: got " << static_cast<int>(h[2])
       << ", want " << static_cast<int>(kWireVersion);
    error_ = os.str();
    return std::nullopt;
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(h[4 + i]) << (8 * i);
  if (len > kMaxPayloadBytes) {
    error_ = "frame payload exceeds size limit";
    return std::nullopt;
  }
  if (avail < kFrameHeaderBytes + len) return std::nullopt;
  Frame frame;
  frame.type = static_cast<MsgType>(h[3]);
  frame.payload.assign(h + kFrameHeaderBytes, h + kFrameHeaderBytes + len);
  consumed_ += kFrameHeaderBytes + len;
  return frame;
}

}  // namespace tailguard::net
