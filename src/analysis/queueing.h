// Analytical queueing approximations for capacity planning.
//
// The simulator answers "what load can this policy sustain" by brute force;
// this module answers it in microseconds with classical queueing theory:
//
//  * M/M/1 exact sojourn-time law,
//  * M/G/1-FCFS mean waiting time (Pollaczek-Khinchine) and an exponential
//    tail approximation for the waiting time,
//  * a fork-join-style approximation of the fanout-kf query tail latency
//    under FCFS: per-task sojourn CDF (numeric convolution of the
//    approximated waiting time with the service law) raised to the kf-th
//    power (task independence assumption, same as Eq. 1),
//  * an analytic maximum-load estimate per query type.
//
// These are approximations: the independence assumption ignores the
// correlation induced by shared queues, and the exponential waiting-tail is
// a heavy-traffic result. Accuracy is characterised in
// tests/analysis_test.cc and bench/ext_analytic_capacity.cc; typical error
// against the simulator is within ~10-20% on the paper's workloads.
#pragma once

#include "dist/distribution.h"

namespace tailguard {

/// E[X^2] of a distribution, by numeric integration over the quantile
/// function. Heavy-tailed laws with infinite second moment (e.g. Pareto
/// with shape <= 2) return a large finite value driven by the integration
/// cutoff — callers should not feed those here.
double second_moment(const Distribution& dist, std::size_t steps = 20000);

/// M/M/1-FCFS: mean sojourn time for mean service `s` at utilisation rho.
double mm1_mean_sojourn(double mean_service, double rho);

/// M/M/1-FCFS: p-quantile of the sojourn time (exact, exponential law).
double mm1_sojourn_quantile(double mean_service, double rho, double p);

/// M/G/1-FCFS mean waiting time (Pollaczek-Khinchine).
double mg1_mean_wait(const Distribution& service, double rho);

/// M/G/1-FCFS waiting-time tail, exponential (heavy-traffic) approximation:
/// P[W > t] ~= rho * exp(-t * rho / E[W]).
double mg1_wait_complementary(const Distribution& service, double rho,
                              double t);

/// Approximate CDF of the per-task sojourn time (wait + service) in an
/// M/G/1-FCFS server at utilisation rho, via numeric convolution of the
/// exponential waiting-tail approximation with the service law.
double mg1_sojourn_cdf(const Distribution& service, double rho, double t);

/// Approximate p-quantile of the fanout-kf query latency at utilisation
/// rho: invert mg1_sojourn_cdf(t)^kf = p (Eq. 1 independence).
double approximate_query_tail(const Distribution& service, std::uint32_t kf,
                              double rho, double p);

/// Largest utilisation at which the fanout-kf query p-quantile stays below
/// `slo` according to the approximation. Returns 0 if even an idle system
/// misses (slo below the unloaded quantile).
double analytic_max_load(const Distribution& service, std::uint32_t kf,
                         double slo, double p, double tolerance = 0.002);

}  // namespace tailguard
