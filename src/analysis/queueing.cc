#include "analysis/queueing.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tailguard {

double second_moment(const Distribution& dist, std::size_t steps) {
  TG_CHECK_MSG(steps >= 100, "too few integration steps");
  // E[X^2] = ∫_0^1 q(p)^2 dp; trapezoid over p with a capped upper tail.
  const double p_max = 1.0 - 1e-9;
  double sum = 0.0;
  double prev = dist.quantile(0.0);
  prev = prev * prev;
  for (std::size_t i = 1; i <= steps; ++i) {
    const double p =
        std::min(p_max, static_cast<double>(i) / static_cast<double>(steps));
    const double q = dist.quantile(p);
    const double cur = q * q;
    sum += 0.5 * (prev + cur) / static_cast<double>(steps);
    prev = cur;
  }
  return sum;
}

double mm1_mean_sojourn(double mean_service, double rho) {
  TG_CHECK_MSG(mean_service > 0.0, "mean service must be positive");
  TG_CHECK_MSG(rho >= 0.0 && rho < 1.0, "utilisation must be in [0,1)");
  return mean_service / (1.0 - rho);
}

double mm1_sojourn_quantile(double mean_service, double rho, double p) {
  TG_CHECK_MSG(p > 0.0 && p < 1.0, "p must be in (0,1)");
  // Sojourn time in M/M/1-FCFS is Exponential(mu - lambda).
  return -std::log(1.0 - p) * mm1_mean_sojourn(mean_service, rho);
}

double mg1_mean_wait(const Distribution& service, double rho) {
  TG_CHECK_MSG(rho >= 0.0 && rho < 1.0, "utilisation must be in [0,1)");
  if (rho == 0.0) return 0.0;
  const double s1 = service.mean();
  TG_CHECK_MSG(s1 > 0.0, "service mean must be positive");
  const double s2 = second_moment(service);
  const double lambda = rho / s1;
  return lambda * s2 / (2.0 * (1.0 - rho));
}

double mg1_wait_complementary(const Distribution& service, double rho,
                              double t) {
  if (t <= 0.0) return rho;
  if (rho <= 0.0) return 0.0;
  const double w = mg1_mean_wait(service, rho);
  if (w <= 0.0) return 0.0;
  // P[W > 0] = rho; conditional wait approximated exponential with mean
  // E[W] / rho so that the unconditional mean matches P-K.
  return rho * std::exp(-t * rho / w);
}

double mg1_sojourn_cdf(const Distribution& service, double rho, double t) {
  if (t <= 0.0) return 0.0;
  if (rho <= 0.0) return service.cdf(t);
  // Sojourn = W + S with W ~ (1-rho) δ0 + rho Exp(w/rho):
  //   F(t) = (1-rho) F_S(t) + rho ∫_0^t f_W|W>0(x) F_S(t-x) dx.
  const double w_cond = mg1_mean_wait(service, rho) / rho;
  const int steps = 256;
  const double h = t / steps;
  double integral = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double x = h * i;
    const double density = std::exp(-x / w_cond) / w_cond;
    const double weight = (i == 0 || i == steps) ? 0.5 : 1.0;
    integral += weight * density * service.cdf(t - x);
  }
  integral *= h;
  return std::clamp((1.0 - rho) * service.cdf(t) + rho * integral, 0.0, 1.0);
}

double approximate_query_tail(const Distribution& service, std::uint32_t kf,
                              double rho, double p) {
  TG_CHECK_MSG(kf >= 1, "fanout must be at least 1");
  TG_CHECK_MSG(p > 0.0 && p < 1.0, "p must be in (0,1)");
  TG_CHECK_MSG(rho >= 0.0 && rho < 1.0, "utilisation must be in [0,1)");
  const double per_task = std::pow(p, 1.0 / static_cast<double>(kf));
  // Bracket: unloaded per-task quantile .. generous multiple of the mean
  // sojourn plus the service tail.
  double lo = service.quantile(per_task);
  double hi = lo + 10.0 * (mg1_mean_wait(service, rho) + service.mean()) /
                       std::max(1e-6, 1.0 - rho);
  for (int i = 0; i < 64 && mg1_sojourn_cdf(service, rho, hi) < per_task; ++i)
    hi *= 2.0;
  for (int i = 0; i < 100 && hi - lo > 1e-9 * std::max(1.0, hi); ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mg1_sojourn_cdf(service, rho, mid) < per_task) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double analytic_max_load(const Distribution& service, std::uint32_t kf,
                         double slo, double p, double tolerance) {
  TG_CHECK_MSG(slo > 0.0, "slo must be positive");
  const auto meets = [&](double rho) {
    return approximate_query_tail(service, kf, rho, p) <= slo;
  };
  if (!meets(0.0)) return 0.0;
  double lo = 0.0, hi = 0.999;
  if (meets(hi)) return hi;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    (meets(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace tailguard
