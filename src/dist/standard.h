// Standard parametric distributions: deterministic, uniform, exponential,
// Pareto, lognormal, and finite mixtures.
#pragma once

#include <vector>

#include "dist/distribution.h"

namespace tailguard {

/// Point mass at `value`.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);
  double sample(Rng&) const override { return value_; }
  double cdf(double x) const override { return x >= value_ ? 1.0 : 0.0; }
  double quantile(double) const override { return value_; }
  double mean() const override { return value_; }
  std::string name() const override;

 private:
  double value_;
};

/// Uniform on [lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);
  double sample(Rng& rng) const override { return rng.uniform(lo_, hi_); }
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return 0.5 * (lo_ + hi_); }
  std::string name() const override;

 private:
  double lo_, hi_;
};

/// Exponential with the given mean (not rate).
class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return mean_; }
  std::string name() const override;

 private:
  double mean_;
};

/// Pareto (type I) with scale x_m > 0 and shape alpha > 0.
/// Mean is x_m * alpha / (alpha - 1) for alpha > 1, else infinite.
class Pareto final : public Distribution {
 public:
  Pareto(double scale, double shape);
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  std::string name() const override;

  /// Convenience: a Pareto with the given mean and shape alpha > 1.
  static Pareto with_mean(double mean, double shape);

 private:
  double scale_, shape_;
};

/// Lognormal: ln X ~ Normal(mu, sigma^2).
class Lognormal final : public Distribution {
 public:
  Lognormal(double mu, double sigma);
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  std::string name() const override;

 private:
  double mu_, sigma_;
};

/// Weibull with shape k > 0 and scale lambda > 0.
/// k < 1 gives a heavier-than-exponential tail, k > 1 a lighter one.
class Weibull final : public Distribution {
 public:
  Weibull(double shape, double scale);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  std::string name() const override;

  /// Convenience: Weibull with the given mean and shape.
  static Weibull with_mean(double mean, double shape);

 private:
  double shape_, scale_;
};

/// Gamma with shape alpha > 0 and scale theta > 0 (mean = alpha * theta).
/// Sampling uses Marsaglia-Tsang; the CDF uses the regularized lower
/// incomplete gamma function (series + continued-fraction evaluation).
class Gamma final : public Distribution {
 public:
  Gamma(double shape, double scale);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override { return shape_ * scale_; }
  std::string name() const override;

 private:
  double shape_, scale_;
};

/// Affine transform of a base distribution: Y = shift + factor * X
/// (factor > 0). Handy for "the same workload, k times slower" models.
class Scaled final : public Distribution {
 public:
  Scaled(DistributionPtr base, double factor, double shift = 0.0);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  double quantile(double p) const override;
  double mean() const override;
  std::string name() const override;

 private:
  DistributionPtr base_;
  double factor_, shift_;
};

/// Regularized lower incomplete gamma function P(a, x); exposed for tests.
double regularized_gamma_p(double a, double x);

/// Finite mixture of component distributions with given weights.
class Mixture final : public Distribution {
 public:
  Mixture(std::vector<DistributionPtr> components, std::vector<double> weights);
  double sample(Rng& rng) const override;
  double cdf(double x) const override;
  /// Numeric inversion of the mixture CDF by bisection.
  double quantile(double p) const override;
  double mean() const override;
  std::string name() const override;

 private:
  std::vector<DistributionPtr> components_;
  std::vector<double> weights_;  // normalised, cumulative in cum_
  std::vector<double> cum_;
};

/// Inverts an arbitrary monotone CDF by bisection on [lo, hi].
/// Exposed for reuse by Mixture and the order-statistics engine.
double invert_cdf_bisect(const Distribution& d, double p, double lo, double hi,
                         int max_iter = 200, double tol = 1e-12);

}  // namespace tailguard
