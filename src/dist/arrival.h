// Query arrival processes (paper §IV.A).
//
// The paper drives the simulation with a Poisson arrival process by default
// and a burstier Pareto renewal process for the sensitivity case (Fig. 5b).
// Both are renewal processes fully characterised by their inter-arrival
// distribution; the mean rate is the tuning knob that sets the offered load.
#pragma once

#include <memory>
#include <string>

#include "dist/standard.h"

namespace tailguard {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Draws the time until the next arrival (>= 0).
  virtual double next_interarrival(Rng& rng) const = 0;

  /// Mean arrivals per unit time.
  virtual double rate() const = 0;

  /// Returns a copy with a different mean rate (used by load sweeps).
  virtual std::unique_ptr<ArrivalProcess> with_rate(double rate) const = 0;

  virtual std::string name() const = 0;
};

/// Poisson process: exponential inter-arrivals.
class PoissonProcess final : public ArrivalProcess {
 public:
  explicit PoissonProcess(double rate);
  double next_interarrival(Rng& rng) const override;
  double rate() const override { return rate_; }
  std::unique_ptr<ArrivalProcess> with_rate(double rate) const override;
  std::string name() const override { return "Poisson"; }

 private:
  double rate_;
};

/// Pareto renewal process: Pareto(shape) inter-arrivals scaled to the target
/// mean rate. shape in (1, 2] gives the heavy-tailed burstiness the paper
/// uses to stress arrival sensitivity; default 1.5 (infinite variance).
class ParetoProcess final : public ArrivalProcess {
 public:
  explicit ParetoProcess(double rate, double shape = 1.5);
  double next_interarrival(Rng& rng) const override;
  double rate() const override { return rate_; }
  double shape() const { return shape_; }
  std::unique_ptr<ArrivalProcess> with_rate(double rate) const override;
  std::string name() const override { return "Pareto"; }

 private:
  double rate_;
  double shape_;
  Pareto inter_;
};

}  // namespace tailguard
