#include "dist/piecewise_linear_quantile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tailguard {

PiecewiseLinearQuantile::PiecewiseLinearQuantile(
    std::vector<QuantileAnchor> anchors, std::string name)
    : anchors_(std::move(anchors)), name_(std::move(name)) {
  TG_CHECK_MSG(anchors_.size() >= 2, "need at least two anchors");
  TG_CHECK_MSG(anchors_.front().p == 0.0, "first anchor must be at p=0");
  TG_CHECK_MSG(anchors_.back().p == 1.0, "last anchor must be at p=1");
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    TG_CHECK_MSG(anchors_[i].p > anchors_[i - 1].p,
                 "anchor probabilities must be strictly increasing at index "
                     << i);
    TG_CHECK_MSG(anchors_[i].q >= anchors_[i - 1].q,
                 "anchor values must be non-decreasing at index " << i);
  }
  double m = 0.0;
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    m += (anchors_[i].p - anchors_[i - 1].p) * 0.5 *
         (anchors_[i].q + anchors_[i - 1].q);
  }
  mean_ = m;
  // grid_[c] = first anchor whose cell is >= c. Truncation is monotone, so
  // every anchor below that index has p * kGridCells < c <= p_query *
  // kGridCells for any query probability landing in cell c — i.e. the grid
  // start can never overshoot the lower_bound answer, only undershoot it by
  // the couple of anchors sharing the cell.
  const std::size_t cells = static_cast<std::size_t>(kGridCells);
  grid_.resize(cells + 1);
  std::uint32_t next = 0;
  for (std::size_t c = 0; c <= cells; ++c) {
    while (static_cast<std::size_t>(anchors_[next].p * kGridCells) < c) {
      ++next;
    }
    grid_[c] = next;
  }
}

double PiecewiseLinearQuantile::cdf(double x) const {
  if (x <= anchors_.front().q) return 0.0;
  if (x >= anchors_.back().q) return 1.0;
  // First anchor with anchor.q > x (upper bound over values).
  const auto it = std::upper_bound(
      anchors_.begin(), anchors_.end(), x,
      [](double v, const QuantileAnchor& a) { return v < a.q; });
  TG_DCHECK(it != anchors_.begin() && it != anchors_.end());
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  if (hi.q <= lo.q) return hi.p;  // flat segment: jump in the CDF
  const double frac = (x - lo.q) / (hi.q - lo.q);
  return lo.p + frac * (hi.p - lo.p);
}

double PiecewiseLinearQuantile::mean() const { return mean_; }

}  // namespace tailguard
