#include "dist/standard.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace tailguard {

// ---------------------------------------------------------------- helpers

double invert_cdf_bisect(const Distribution& d, double p, double lo, double hi,
                         int max_iter, double tol) {
  TG_CHECK(p >= 0.0 && p <= 1.0);
  TG_CHECK(hi >= lo);
  for (int i = 0; i < max_iter && hi - lo > tol * std::max(1.0, std::abs(hi));
       ++i) {
    const double mid = 0.5 * (lo + hi);
    if (d.cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

namespace {
// Standard normal CDF / quantile (Acklam's rational approximation for the
// inverse; accurate to ~1e-9 which is far below workload-model noise).
double norm_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double norm_quantile(double p) {
  TG_CHECK(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}
}  // namespace

// ----------------------------------------------------------- Deterministic

Deterministic::Deterministic(double value) : value_(value) {
  TG_CHECK_MSG(std::isfinite(value), "deterministic value must be finite");
}

std::string Deterministic::name() const {
  std::ostringstream os;
  os << "Deterministic(" << value_ << ")";
  return os.str();
}

// ----------------------------------------------------------------- Uniform

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  TG_CHECK_MSG(hi > lo, "uniform needs hi > lo");
}

double Uniform::cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double Uniform::quantile(double p) const {
  TG_CHECK(p >= 0.0 && p <= 1.0);
  return lo_ + p * (hi_ - lo_);
}

std::string Uniform::name() const {
  std::ostringstream os;
  os << "Uniform(" << lo_ << ", " << hi_ << ")";
  return os.str();
}

// ------------------------------------------------------------- Exponential

Exponential::Exponential(double mean) : mean_(mean) {
  TG_CHECK_MSG(mean > 0.0, "exponential mean must be positive");
}

double Exponential::sample(Rng& rng) const {
  return -mean_ * std::log(rng.uniform_pos());
}

double Exponential::cdf(double x) const {
  return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / mean_);
}

double Exponential::quantile(double p) const {
  TG_CHECK(p >= 0.0 && p < 1.0 + 1e-15);
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return -mean_ * std::log(1.0 - p);
}

std::string Exponential::name() const {
  std::ostringstream os;
  os << "Exponential(mean=" << mean_ << ")";
  return os.str();
}

// ------------------------------------------------------------------ Pareto

Pareto::Pareto(double scale, double shape) : scale_(scale), shape_(shape) {
  TG_CHECK_MSG(scale > 0.0, "Pareto scale must be positive");
  TG_CHECK_MSG(shape > 0.0, "Pareto shape must be positive");
}

double Pareto::cdf(double x) const {
  if (x <= scale_) return 0.0;
  return 1.0 - std::pow(scale_ / x, shape_);
}

double Pareto::quantile(double p) const {
  TG_CHECK(p >= 0.0 && p <= 1.0);
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return scale_ * std::pow(1.0 - p, -1.0 / shape_);
}

double Pareto::mean() const {
  if (shape_ <= 1.0) return std::numeric_limits<double>::infinity();
  return scale_ * shape_ / (shape_ - 1.0);
}

Pareto Pareto::with_mean(double mean, double shape) {
  TG_CHECK_MSG(shape > 1.0, "finite-mean Pareto needs shape > 1");
  TG_CHECK_MSG(mean > 0.0, "Pareto mean must be positive");
  return Pareto(mean * (shape - 1.0) / shape, shape);
}

std::string Pareto::name() const {
  std::ostringstream os;
  os << "Pareto(scale=" << scale_ << ", shape=" << shape_ << ")";
  return os.str();
}

// --------------------------------------------------------------- Lognormal

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  TG_CHECK_MSG(sigma > 0.0, "lognormal sigma must be positive");
}

double Lognormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return norm_cdf((std::log(x) - mu_) / sigma_);
}

double Lognormal::quantile(double p) const {
  TG_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return std::exp(mu_ + sigma_ * norm_quantile(p));
}

double Lognormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::string Lognormal::name() const {
  std::ostringstream os;
  os << "Lognormal(mu=" << mu_ << ", sigma=" << sigma_ << ")";
  return os.str();
}

// ----------------------------------------------------------------- Weibull

Weibull::Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
  TG_CHECK_MSG(shape > 0.0, "Weibull shape must be positive");
  TG_CHECK_MSG(scale > 0.0, "Weibull scale must be positive");
}

double Weibull::sample(Rng& rng) const {
  return scale_ * std::pow(-std::log(rng.uniform_pos()), 1.0 / shape_);
}

double Weibull::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(x / scale_, shape_));
}

double Weibull::quantile(double p) const {
  TG_CHECK(p >= 0.0 && p <= 1.0);
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  return scale_ * std::pow(-std::log(1.0 - p), 1.0 / shape_);
}

double Weibull::mean() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

Weibull Weibull::with_mean(double mean, double shape) {
  TG_CHECK_MSG(mean > 0.0, "Weibull mean must be positive");
  TG_CHECK_MSG(shape > 0.0, "Weibull shape must be positive");
  return Weibull(shape, mean / std::tgamma(1.0 + 1.0 / shape));
}

std::string Weibull::name() const {
  std::ostringstream os;
  os << "Weibull(k=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

// ------------------------------------------------------------------- Gamma

double regularized_gamma_p(double a, double x) {
  TG_CHECK_MSG(a > 0.0, "gamma shape must be positive");
  if (x <= 0.0) return 0.0;
  const double log_gamma_a = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::abs(term) < std::abs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
  }
  // Continued fraction for Q(a, x), then P = 1 - Q (Lentz's algorithm).
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma_a) * h;
  return 1.0 - q;
}

Gamma::Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
  TG_CHECK_MSG(shape > 0.0, "Gamma shape must be positive");
  TG_CHECK_MSG(scale > 0.0, "Gamma scale must be positive");
}

double Gamma::sample(Rng& rng) const {
  // Marsaglia & Tsang (2000); the alpha < 1 case boosts via U^{1/alpha}.
  double alpha = shape_;
  double boost = 1.0;
  if (alpha < 1.0) {
    boost = std::pow(rng.uniform_pos(), 1.0 / alpha);
    alpha += 1.0;
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    // Standard normal via Box-Muller (only one draw used).
    const double u1 = rng.uniform_pos();
    const double u2 = rng.uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double v = std::pow(1.0 + c * z, 3.0);
    if (v <= 0.0) continue;
    const double u = rng.uniform_pos();
    if (std::log(u) < 0.5 * z * z + d - d * v + d * std::log(v)) {
      return boost * d * v * scale_;
    }
  }
}

double Gamma::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(shape_, x / scale_);
}

double Gamma::quantile(double p) const {
  TG_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Bracket: the mean plus enough standard deviations covers any p < 1-1e-12.
  const double sigma = std::sqrt(shape_) * scale_;
  double hi = mean() + 40.0 * sigma;
  while (cdf(hi) < p) hi *= 2.0;
  return invert_cdf_bisect(*this, p, 0.0, hi);
}

std::string Gamma::name() const {
  std::ostringstream os;
  os << "Gamma(shape=" << shape_ << ", scale=" << scale_ << ")";
  return os.str();
}

// ------------------------------------------------------------------ Scaled

Scaled::Scaled(DistributionPtr base, double factor, double shift)
    : base_(std::move(base)), factor_(factor), shift_(shift) {
  TG_CHECK_MSG(base_ != nullptr, "null base distribution");
  TG_CHECK_MSG(factor > 0.0, "scale factor must be positive");
}

double Scaled::sample(Rng& rng) const {
  return shift_ + factor_ * base_->sample(rng);
}

double Scaled::cdf(double x) const {
  return base_->cdf((x - shift_) / factor_);
}

double Scaled::quantile(double p) const {
  return shift_ + factor_ * base_->quantile(p);
}

double Scaled::mean() const { return shift_ + factor_ * base_->mean(); }

std::string Scaled::name() const {
  std::ostringstream os;
  os << "Scaled(" << base_->name() << " * " << factor_;
  if (shift_ != 0.0) os << " + " << shift_;
  os << ")";
  return os.str();
}

// ----------------------------------------------------------------- Mixture

Mixture::Mixture(std::vector<DistributionPtr> components,
                 std::vector<double> weights)
    : components_(std::move(components)), weights_(std::move(weights)) {
  TG_CHECK_MSG(!components_.empty(), "mixture needs at least one component");
  TG_CHECK_MSG(components_.size() == weights_.size(),
               "mixture component/weight count mismatch");
  double total = 0.0;
  for (double w : weights_) {
    TG_CHECK_MSG(w >= 0.0, "mixture weights must be non-negative");
    total += w;
  }
  TG_CHECK_MSG(total > 0.0, "mixture weights must not all be zero");
  double cum = 0.0;
  cum_.reserve(weights_.size());
  for (auto& w : weights_) {
    w /= total;
    cum += w;
    cum_.push_back(cum);
  }
  cum_.back() = 1.0;
}

double Mixture::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), u);
  const auto idx = std::min<std::size_t>(
      static_cast<std::size_t>(it - cum_.begin()), components_.size() - 1);
  return components_[idx]->sample(rng);
}

double Mixture::cdf(double x) const {
  double f = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i)
    f += weights_[i] * components_[i]->cdf(x);
  return f;
}

double Mixture::quantile(double p) const {
  TG_CHECK(p >= 0.0 && p <= 1.0);
  // Bracket with the extreme component quantiles, then bisect.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& c : components_) {
    lo = std::min(lo, c->quantile(std::min(p, 0.999999999)));
    hi = std::max(hi, c->quantile(std::min(p, 0.999999999)));
  }
  if (lo >= hi) return lo;
  return invert_cdf_bisect(*this, p, lo, hi);
}

double Mixture::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i)
    m += weights_[i] * components_[i]->mean();
  return m;
}

std::string Mixture::name() const {
  std::ostringstream os;
  os << "Mixture(" << components_.size() << " components)";
  return os.str();
}

}  // namespace tailguard
