#include "dist/arrival.h"

#include <cmath>

#include "common/check.h"

namespace tailguard {

PoissonProcess::PoissonProcess(double rate) : rate_(rate) {
  TG_CHECK_MSG(rate > 0.0, "arrival rate must be positive");
}

double PoissonProcess::next_interarrival(Rng& rng) const {
  return -std::log(rng.uniform_pos()) / rate_;
}

std::unique_ptr<ArrivalProcess> PoissonProcess::with_rate(double rate) const {
  return std::make_unique<PoissonProcess>(rate);
}

ParetoProcess::ParetoProcess(double rate, double shape)
    : rate_(rate), shape_(shape), inter_(Pareto::with_mean(1.0 / rate, shape)) {
  TG_CHECK_MSG(rate > 0.0, "arrival rate must be positive");
  TG_CHECK_MSG(shape > 1.0, "Pareto arrivals need shape > 1 for a finite mean");
}

double ParetoProcess::next_interarrival(Rng& rng) const {
  return inter_.sample(rng);
}

std::unique_ptr<ArrivalProcess> ParetoProcess::with_rate(double rate) const {
  return std::make_unique<ParetoProcess>(rate, shape_);
}

}  // namespace tailguard
