// Abstract interface for scalar probability distributions.
//
// Everything the reproduction needs from a distribution is: draw samples
// (workload generation), evaluate F(x) (order statistics, Eq. 1), invert F
// (quantiles, Eq. 2) and know the mean (load normalisation).
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"

namespace tailguard {

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one sample. The default implementation uses inverse-transform
  /// sampling via quantile(); subclasses may override with a faster method.
  virtual double sample(Rng& rng) const { return quantile(rng.uniform_pos()); }

  /// F(x) = P[X <= x].
  virtual double cdf(double x) const = 0;

  /// Inverse CDF; p in [0, 1].
  virtual double quantile(double p) const = 0;

  virtual double mean() const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;
};

using DistributionPtr = std::shared_ptr<const Distribution>;

}  // namespace tailguard
