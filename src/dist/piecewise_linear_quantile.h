// Distribution defined by a piecewise-linear quantile function.
//
// This is the calibrated-workload workhorse of the reproduction: the paper
// publishes specific quantiles of its Tailbench-derived service-time
// distributions (Table II pins the 0.99 / 0.999 / 0.9999 quantiles through
// Eq. 2; Fig. 3 gives the 95th percentiles and overall CDF shape) but not the
// raw traces. Anchoring a piecewise-linear quantile function at the published
// points yields a distribution that matches them *exactly*, has a closed-form
// mean, O(log #anchors) sampling via inverse transform, and an exact inverse
// (the CDF) — everything the simulator and the order-statistics engine need.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "dist/distribution.h"

namespace tailguard {

/// One anchor of the quantile function: quantile(p) == q.
struct QuantileAnchor {
  double p;  ///< cumulative probability in [0, 1]
  double q;  ///< value at that probability
};

class PiecewiseLinearQuantile final : public Distribution {
 public:
  /// Anchors must be sorted by p, start at p=0, end at p=1, and be
  /// non-decreasing in q (strictly increasing q gives a strictly increasing
  /// CDF, which the order-statistics inversion prefers).
  PiecewiseLinearQuantile(std::vector<QuantileAnchor> anchors,
                          std::string name = "PiecewiseLinearQuantile");

  // sample()/quantile() are defined inline: the class is final, so a caller
  // holding a concrete PiecewiseLinearQuantile* devirtualizes the call and
  // inlines the whole per-task draw (the simulator does exactly this on its
  // hot path; through a Distribution* nothing changes).
  double sample(Rng& rng) const override { return quantile(rng.uniform()); }
  double cdf(double x) const override;
  double quantile(double p) const override {
    TG_CHECK_MSG(p >= 0.0 && p <= 1.0, "quantile prob out of range: " << p);
    // First anchor with anchor.p >= p: start from the uniform-grid index
    // (first candidate anchor of p's grid cell, precomputed in the ctor) and
    // step forward. The result is the anchor lower_bound would return, so the
    // interpolation below is bit-identical to a binary search — the index
    // only shortcuts the probe to O(1) loads for the per-task sampling path.
    std::size_t i = grid_[static_cast<std::size_t>(p * kGridCells)];
    while (anchors_[i].p < p) ++i;
    if (i == 0) return anchors_[0].q;
    const QuantileAnchor hi = anchors_[i];
    const QuantileAnchor lo = anchors_[i - 1];
    const double frac = (p - lo.p) / (hi.p - lo.p);
    return lo.q + frac * (hi.q - lo.q);
  }
  /// Closed form: sum over segments of dp * (q_i + q_{i+1}) / 2.
  double mean() const override;
  std::string name() const override { return name_; }

  std::span<const QuantileAnchor> anchors() const { return anchors_; }

 private:
  /// Grid resolution for the quantile start-index table. Anchors cluster
  /// near p=1 (the published tail quantiles), so cells must be fine enough
  /// that even the last cell holds only a couple of anchors.
  static constexpr double kGridCells = 1024.0;

  std::vector<QuantileAnchor> anchors_;
  /// grid_[c] = first anchor index whose cell trunc(anchor.p * kGridCells)
  /// is >= c. Every anchor before it has p strictly below any probability
  /// that lands in cell c, which is exactly the lower_bound precondition.
  std::vector<std::uint32_t> grid_;
  std::string name_;
  double mean_;
};

}  // namespace tailguard
