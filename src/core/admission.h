// Query admission control (paper §III.C).
//
// TailGuard tolerates a small fraction of tasks missing their queuing
// deadlines (the tail latency SLO is probabilistic), so admission control
// watches the deadline-miss ratio over a moving window of task dequeues and
// rejects incoming queries while the ratio exceeds a threshold R_th. The
// paper uses R_th = 1.7% over a window of 1000 queries / 100 000 tasks for
// the Fig. 7 study, and notes the window should match the time horizon over
// which the SLO is promised.
//
// The window is bounded both by task count and by age. The age bound is
// essential: with a pure count window, a fully-rejecting controller stops
// observing dequeues, the stale misses never leave the window and admission
// never resumes (a rejection death-spiral). Aging the entries out restores
// liveness.
#pragma once

#include <cstdint>
#include <deque>

#include "core/types.h"

namespace tailguard {

enum class AdmissionMode {
  /// The paper's mechanism: admit everything while ratio <= R_th, reject
  /// everything while ratio > R_th.
  kOnOff,
  /// Extension: proportional throttling. Above R_th the rejection
  /// probability ramps linearly, reaching 1 at (1 + proportional_gain) *
  /// R_th. Softens the admit/reject oscillation of the lagging miss-ratio
  /// signal under heavy overload (see ablation_admission_modes).
  kProportional,
};

struct AdmissionOptions {
  /// Maximum window length, in task dequeue events.
  std::size_t window_tasks = 100000;
  /// Maximum entry age in milliseconds; entries older than this are evicted
  /// even if the count bound is not reached. <= 0 disables the age bound
  /// (not recommended, see the death-spiral note above).
  TimeMs window_ms = 1000.0;
  /// R_th: reject queries while the miss ratio exceeds this.
  double miss_ratio_threshold = 0.017;
  AdmissionMode mode = AdmissionMode::kOnOff;
  /// kProportional only: rejection probability reaches 1 at
  /// (1 + proportional_gain) * R_th.
  double proportional_gain = 1.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Records one task dequeue at time `now`; `missed` is whether the task
  /// was dequeued past its queuing deadline t_D.
  void record_task_dequeue(TimeMs now, bool missed);

  /// Merges a batch of dequeues observed by a *remote* query-handler shard
  /// (delta-sync): `recorded` tasks, of which `missed` missed t_D, all
  /// entering the window as one weighted entry timestamped `now`. Deltas are
  /// increments since the sender's previous sync, so replaying a sync stream
  /// never double-counts; a weight-1 call is behaviourally identical to
  /// record_task_dequeue.
  void record_remote_dequeues(TimeMs now, std::uint64_t recorded,
                              std::uint64_t missed);

  /// Whether a query arriving at `now` should be admitted. An empty (or
  /// fully aged-out) window admits. `coin` is a uniform [0,1) draw consumed
  /// only in kProportional mode (pass rng.uniform()); kOnOff ignores it.
  bool should_admit(TimeMs now, double coin = 0.0);

  /// Current miss ratio after aging out stale entries.
  double miss_ratio(TimeMs now);

  const AdmissionOptions& options() const { return options_; }

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }

  /// Outcome bookkeeping, driven by the query handler.
  void count_admitted() { ++admitted_; }
  void count_rejected() { ++rejected_; }

 private:
  /// Window entries carry a weight so remote delta batches merge as a single
  /// entry instead of being replayed task-by-task. Local dequeues use
  /// count=1, making the weighted window behave exactly like the original
  /// one-entry-per-task deque.
  struct Entry {
    TimeMs time;
    std::uint64_t count;
    std::uint64_t missed;
  };

  void evict(TimeMs now);

  AdmissionOptions options_;
  std::deque<Entry> window_;
  std::uint64_t tasks_in_window_ = 0;
  std::uint64_t misses_in_window_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace tailguard
