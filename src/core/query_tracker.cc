#include "core/query_tracker.h"

#include "common/check.h"

namespace tailguard {

QueryTracker::QueryTracker(QueryId id_start, QueryId id_stride)
    : start_(id_start), stride_(id_stride) {
  TG_CHECK_MSG(id_stride >= 1, "id stride must be >= 1");
  TG_CHECK_MSG(id_start < id_stride, "id start must be < stride");
}

QueryId QueryTracker::begin_query(TimeMs t0, ClassId cls, std::uint32_t fanout,
                                  TimeMs deadline) {
  TG_CHECK_MSG(fanout >= 1, "query must spawn at least one task");
  const QueryId id = start_ + started_++ * stride_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  slab_[slot] = QueryState{.t0 = t0,
                           .cls = cls,
                           .fanout = fanout,
                           .remaining = fanout,
                           .deadline = deadline};
  slot_by_idx_.push_back(slot);
  ++in_flight_;
  return id;
}

bool QueryTracker::complete_task(QueryId id, QueryState* finished) {
  const std::uint32_t slot = slot_of(id);
  TG_CHECK_MSG(slot != kNoSlot, "unknown query " << id);
  QueryState& st = slab_[slot];
  TG_CHECK_MSG(st.remaining > 0, "query " << id << " over-completed");
  if (--st.remaining > 0) return false;
  if (finished != nullptr) *finished = st;
  slot_by_idx_[index_of(id)] = kNoSlot;
  free_slots_.push_back(slot);
  --in_flight_;
  return true;
}

const QueryState& QueryTracker::state(QueryId id) const {
  const std::uint32_t slot = slot_of(id);
  TG_CHECK_MSG(slot != kNoSlot, "unknown query " << id);
  return slab_[slot];
}

}  // namespace tailguard
