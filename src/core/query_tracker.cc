#include "core/query_tracker.h"

#include "common/check.h"

namespace tailguard {

QueryId QueryTracker::begin_query(TimeMs t0, ClassId cls, std::uint32_t fanout,
                                  TimeMs deadline) {
  TG_CHECK_MSG(fanout >= 1, "query must spawn at least one task");
  const QueryId id = next_id_++;
  states_.emplace(id, QueryState{.t0 = t0,
                                 .cls = cls,
                                 .fanout = fanout,
                                 .remaining = fanout,
                                 .deadline = deadline});
  return id;
}

bool QueryTracker::complete_task(QueryId id, QueryState* finished) {
  const auto it = states_.find(id);
  TG_CHECK_MSG(it != states_.end(), "unknown query " << id);
  TG_CHECK_MSG(it->second.remaining > 0, "query " << id << " over-completed");
  if (--it->second.remaining > 0) return false;
  if (finished != nullptr) *finished = it->second;
  states_.erase(it);
  return true;
}

const QueryState& QueryTracker::state(QueryId id) const {
  const auto it = states_.find(id);
  TG_CHECK_MSG(it != states_.end(), "unknown query " << id);
  return it->second;
}

}  // namespace tailguard
