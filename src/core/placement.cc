#include "core/placement.h"

#include <algorithm>

#include "common/check.h"

namespace tailguard {

std::vector<ServerId> pick_least_loaded(
    std::vector<PlacementCandidate> candidates, std::size_t count, Rng& rng) {
  if (count == 0) return {};
  TG_CHECK_MSG(!candidates.empty(), "placement needs at least one candidate");
  // Random tie-break: scale the load so the random component never reorders
  // genuinely different loads.
  for (auto& [load, id] : candidates)
    load = load * candidates.size() + rng.uniform_index(candidates.size());
  std::sort(candidates.begin(), candidates.end());
  std::vector<ServerId> picked;
  picked.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    picked.push_back(candidates[i % candidates.size()].second);
  return picked;
}

}  // namespace tailguard
