// Least-loaded distinct-server placement, shared by the in-process runtime
// and the remote dispatcher (Fig. 2: the query handler fans each query out to
// kf *distinct* task servers).
//
// Candidates are (load, server) pairs; the picker returns the `count` servers
// with the smallest load, breaking ties randomly so equally-loaded servers
// share tasks evenly. When `count` exceeds the candidate set (e.g. a remote
// server is down and the remaining ones must absorb its share), servers are
// reused round-robin in load order — "distinct where possible".
#pragma once

#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/types.h"

namespace tailguard {

/// One placement candidate: current load (queue depth or in-flight tasks)
/// and the server it belongs to.
using PlacementCandidate = std::pair<std::size_t, ServerId>;

/// Picks `count` servers from `candidates`, least-loaded first, random
/// tie-break, reusing servers round-robin only when count > candidates.
/// Precondition: !candidates.empty() when count > 0.
std::vector<ServerId> pick_least_loaded(std::vector<PlacementCandidate> candidates,
                                        std::size_t count, Rng& rng);

}  // namespace tailguard
