// Request-level task decomposition (paper §III.B "remark" — Eq. 7).
//
// A request is M queries issued *sequentially* (query i+1 cannot start until
// query i finishes). The request response time is the sum of query response
// times, and the paper shows the pre-dequeuing budget is additive:
//
//   T_b^R = x_p^{R,SLO} - x_p^{Ru} = Σ_i T_{b,i}                     (Eq. 7)
//
// where x_p^{Ru} is the p-th percentile of the *sum* of unloaded query
// latencies. The open problem the paper leaves for future work is how to
// split T_b^R across the M queries; we implement the two natural strategies
// and an ablation bench (ablation_request_budget) compares them.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "core/cdf_model.h"
#include "core/types.h"

namespace tailguard {

/// One constituent query of a request: `fanout` tasks on servers that share
/// `model` (homogeneous per query; queries may differ).
struct RequestQuerySpec {
  std::uint32_t fanout = 1;
  const CdfModel* model = nullptr;
};

/// Estimates x_p^{Ru}, the p-th percentile of the sum over queries of the
/// unloaded query latency, by Monte Carlo. Each query latency is sampled
/// exactly via inverse transform on its order-statistics CDF:
/// F_Q(t) = F(t)^kf  =>  t = F^{-1}(U^{1/kf}).
TimeMs estimate_request_unloaded_quantile(
    std::span<const RequestQuerySpec> queries, double prob, Rng& rng,
    std::size_t samples = 100000);

/// How to split the request budget T_b^R across the M queries.
enum class BudgetSplit {
  kEqual,                  ///< T_{b,i} = T_b^R / M
  kProportionalToUnloaded, ///< T_{b,i} ∝ x_p^u(kf_i)
};

/// Splits `total_budget_ms` across the queries. The returned budgets sum to
/// `total_budget_ms` (Eq. 7's additivity), so the request SLO is met whenever
/// each query's tasks are dequeued within its share.
std::vector<TimeMs> split_request_budget(
    TimeMs total_budget_ms, std::span<const RequestQuerySpec> queries,
    double prob, BudgetSplit split);

}  // namespace tailguard
