// Per-task-server CDF models of the *unloaded task response time* F_l^u(t).
//
// The deadline estimator (Eq. 6) only needs two operations from a model —
// evaluate F(t) and invert it — plus, for the online updating process
// (§III.B.2), the ability to absorb new post-queuing-time observations.
// Three implementations cover the paper's lifecycle:
//   * DistributionCdfModel — analytic ground truth (simulation input).
//   * EmpiricalCdfModel    — frozen offline profile (initial estimation).
//   * StreamingCdfModel    — online-updated histogram (periodic updating).
#pragma once

#include <memory>
#include <span>

#include "common/empirical_cdf.h"
#include "common/streaming_histogram.h"
#include "core/types.h"
#include "dist/distribution.h"

namespace tailguard {

class CdfModel {
 public:
  virtual ~CdfModel() = default;

  /// F(t) = P[unloaded task response time <= t].
  virtual double cdf(TimeMs t) const = 0;

  /// Inverse CDF, p in [0, 1].
  virtual TimeMs quantile(double p) const = 0;

  /// Records one observed post-queuing time. No-op for frozen models.
  virtual void observe(TimeMs /*t*/) {}

  /// Monotone version counter: bumps whenever quantiles may have changed, so
  /// callers (e.g. the order-statistics cache) can invalidate lazily.
  virtual std::uint64_t version() const { return 0; }

  /// Deep copy of the model's *current* state. Shard replicas clone the seed
  /// models so each shard evolves its own online view (sharing a mutable
  /// model across shards would make every observation instantly global and
  /// defeat the staleness semantics the delta-sync is meant to expose).
  virtual std::shared_ptr<CdfModel> clone() const = 0;
};

/// Wraps an analytic Distribution. Immutable.
class DistributionCdfModel final : public CdfModel {
 public:
  explicit DistributionCdfModel(DistributionPtr dist);
  double cdf(TimeMs t) const override { return dist_->cdf(t); }
  TimeMs quantile(double p) const override { return dist_->quantile(p); }
  std::shared_ptr<CdfModel> clone() const override;
  const Distribution& distribution() const { return *dist_; }

 private:
  DistributionPtr dist_;
};

/// Frozen empirical CDF from an offline profiling sample.
class EmpiricalCdfModel final : public CdfModel {
 public:
  explicit EmpiricalCdfModel(std::span<const double> sample);
  double cdf(TimeMs t) const override { return ecdf_.cdf(t); }
  TimeMs quantile(double p) const override { return ecdf_.quantile(p); }
  std::shared_ptr<CdfModel> clone() const override;

 private:
  EmpiricalCdf ecdf_;
};

/// Online-updated model: starts from an optional seed sample (the paper's
/// offline estimation) and keeps absorbing observations. `version()` advances
/// every `refresh_every` observations — between refreshes the model reports
/// the same version so quantile caches stay valid, matching the paper's
/// "periodical online updating".
class StreamingCdfModel final : public CdfModel {
 public:
  struct Options {
    StreamingHistogramOptions histogram = {};
    /// Version bump cadence, in observations.
    std::uint64_t refresh_every = 1000;
  };

  StreamingCdfModel() : StreamingCdfModel(Options{}) {}
  explicit StreamingCdfModel(Options options);

  /// Seeds the histogram with an offline sample.
  void seed(std::span<const double> sample);

  double cdf(TimeMs t) const override;
  TimeMs quantile(double p) const override;
  void observe(TimeMs t) override;
  std::uint64_t version() const override { return version_; }
  std::shared_ptr<CdfModel> clone() const override;

  std::uint64_t observations() const { return hist_.observations(); }

 private:
  StreamingHistogram hist_;
  std::uint64_t refresh_every_;
  std::uint64_t since_refresh_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace tailguard
