#include "core/admission.h"

#include "common/check.h"

namespace tailguard {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  TG_CHECK_MSG(options.window_tasks > 0, "window must hold at least one task");
  TG_CHECK_MSG(options.miss_ratio_threshold >= 0.0 &&
                   options.miss_ratio_threshold <= 1.0,
               "miss ratio threshold must be in [0,1]");
}

void AdmissionController::evict(TimeMs now) {
  while (!window_.empty() &&
         ((options_.window_ms > 0.0 &&
           now - window_.front().time > options_.window_ms) ||
          tasks_in_window_ > options_.window_tasks)) {
    tasks_in_window_ -= window_.front().count;
    misses_in_window_ -= window_.front().missed;
    window_.pop_front();
  }
}

void AdmissionController::record_task_dequeue(TimeMs now, bool missed) {
  record_remote_dequeues(now, 1, missed ? 1 : 0);
}

void AdmissionController::record_remote_dequeues(TimeMs now,
                                                 std::uint64_t recorded,
                                                 std::uint64_t missed) {
  TG_CHECK_MSG(missed <= recorded, "missed count exceeds recorded count");
  if (recorded == 0) return;
  window_.push_back(Entry{now, recorded, missed});
  tasks_in_window_ += recorded;
  misses_in_window_ += missed;
  evict(now);
}

double AdmissionController::miss_ratio(TimeMs now) {
  evict(now);
  return window_.empty() ? 0.0
                         : static_cast<double>(misses_in_window_) /
                               static_cast<double>(tasks_in_window_);
}

bool AdmissionController::should_admit(TimeMs now, double coin) {
  const double ratio = miss_ratio(now);
  const double rth = options_.miss_ratio_threshold;
  if (ratio <= rth) return true;
  switch (options_.mode) {
    case AdmissionMode::kOnOff:
      return false;
    case AdmissionMode::kProportional: {
      const double span = options_.proportional_gain * rth;
      if (span <= 0.0) return false;
      const double reject_prob = (ratio - rth) / span;
      return coin >= reject_prob;
    }
  }
  return false;
}

}  // namespace tailguard
