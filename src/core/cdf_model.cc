#include "core/cdf_model.h"

#include "common/check.h"

namespace tailguard {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kFifo:
      return "FIFO";
    case Policy::kPriq:
      return "PRIQ";
    case Policy::kTEdf:
      return "T-EDFQ";
    case Policy::kTfEdf:
      return "TailGuard";
  }
  return "?";
}

DistributionCdfModel::DistributionCdfModel(DistributionPtr dist)
    : dist_(std::move(dist)) {
  TG_CHECK_MSG(dist_ != nullptr, "null distribution");
}

std::shared_ptr<CdfModel> DistributionCdfModel::clone() const {
  // The wrapped Distribution is immutable, so the clone shares it.
  return std::make_shared<DistributionCdfModel>(dist_);
}

EmpiricalCdfModel::EmpiricalCdfModel(std::span<const double> sample)
    : ecdf_(sample) {}

std::shared_ptr<CdfModel> EmpiricalCdfModel::clone() const {
  return std::shared_ptr<CdfModel>(new EmpiricalCdfModel(*this));
}

StreamingCdfModel::StreamingCdfModel(Options options)
    : hist_(options.histogram), refresh_every_(options.refresh_every) {
  TG_CHECK_MSG(refresh_every_ > 0, "refresh_every must be positive");
}

void StreamingCdfModel::seed(std::span<const double> sample) {
  for (double x : sample) hist_.add(x);
  ++version_;
  since_refresh_ = 0;
}

double StreamingCdfModel::cdf(TimeMs t) const { return hist_.cdf(t); }

TimeMs StreamingCdfModel::quantile(double p) const { return hist_.quantile(p); }

void StreamingCdfModel::observe(TimeMs t) {
  hist_.add(t);
  if (++since_refresh_ >= refresh_every_) {
    since_refresh_ = 0;
    ++version_;
  }
}

std::shared_ptr<CdfModel> StreamingCdfModel::clone() const {
  // Histogram weights, refresh phase and version all copy; the clone then
  // evolves independently of the original.
  return std::shared_ptr<CdfModel>(new StreamingCdfModel(*this));
}

}  // namespace tailguard
