// In-flight query bookkeeping shared by the simulator and the runtime.
//
// Models the query-handler side of Fig. 2: a query spawns kf tasks; the
// query finishes when the last task result has been merged, and the query
// response time is that completion time minus t_0.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/types.h"

namespace tailguard {

struct QueryState {
  TimeMs t0 = 0.0;             ///< arrival time
  ClassId cls = 0;             ///< service class
  std::uint32_t fanout = 0;    ///< number of tasks spawned
  std::uint32_t remaining = 0; ///< tasks not yet merged
  TimeMs deadline = 0.0;       ///< shared task queuing deadline t_D
};

class QueryTracker {
 public:
  /// Registers a new query; returns its id.
  QueryId begin_query(TimeMs t0, ClassId cls, std::uint32_t fanout,
                      TimeMs deadline);

  /// Merges one task result. Returns true when this was the last outstanding
  /// task; `finished` (if non-null) receives the final state before erase.
  bool complete_task(QueryId id, QueryState* finished = nullptr);

  const QueryState& state(QueryId id) const;

  std::size_t in_flight() const { return states_.size(); }
  std::uint64_t started() const { return next_id_; }

 private:
  std::unordered_map<QueryId, QueryState> states_;
  QueryId next_id_ = 0;
};

}  // namespace tailguard
