// In-flight query bookkeeping shared by the simulator and the runtime.
//
// Models the query-handler side of Fig. 2: a query spawns kf tasks; the
// query finishes when the last task result has been merged, and the query
// response time is that completion time minus t_0.
//
// Storage: query ids are dense (begin_query hands out 0, 1, 2, ...), so the
// tracker is a slot slab plus an id -> slot table indexed directly by id —
// every lookup is two array loads instead of a hash probe. complete_task and
// state() sit on the per-task hot path of all three backends. The id table
// grows by 4 bytes per query ever started and is never shrunk; slots of
// finished queries are recycled through a freelist, so resident state is
// proportional to the in-flight count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace tailguard {

struct QueryState {
  TimeMs t0 = 0.0;             ///< arrival time
  ClassId cls = 0;             ///< service class
  std::uint32_t fanout = 0;    ///< number of tasks spawned
  std::uint32_t remaining = 0; ///< tasks not yet merged
  TimeMs deadline = 0.0;       ///< shared task queuing deadline t_D
};

class QueryTracker {
 public:
  /// Registers a new query; returns its id.
  QueryId begin_query(TimeMs t0, ClassId cls, std::uint32_t fanout,
                      TimeMs deadline);

  /// Merges one task result. Returns true when this was the last outstanding
  /// task; `finished` (if non-null) receives the final state before erase.
  bool complete_task(QueryId id, QueryState* finished = nullptr);

  const QueryState& state(QueryId id) const;

  std::size_t in_flight() const { return in_flight_; }
  std::uint64_t started() const { return next_id_; }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  /// Slot of a live query, or kNoSlot if `id` is unknown or finished.
  std::uint32_t slot_of(QueryId id) const {
    return id < slot_by_id_.size() ? slot_by_id_[id] : kNoSlot;
  }

  std::vector<QueryState> slab_;          ///< slot -> state (recycled)
  std::vector<std::uint32_t> slot_by_id_; ///< id -> slot, kNoSlot when done
  std::vector<std::uint32_t> free_slots_;
  std::size_t in_flight_ = 0;
  QueryId next_id_ = 0;
};

}  // namespace tailguard
