// In-flight query bookkeeping shared by the simulator and the runtime.
//
// Models the query-handler side of Fig. 2: a query spawns kf tasks; the
// query finishes when the last task result has been merged, and the query
// response time is that completion time minus t_0.
//
// Storage: query ids form an arithmetic progression (begin_query hands out
// start, start+stride, start+2*stride, ...; the default (0, 1) yields the
// dense 0, 1, 2, ...), so the tracker is a slot slab plus an index -> slot
// table addressed by (id - start) / stride — every lookup is two array loads
// instead of a hash probe. complete_task and state() sit on the per-task hot
// path of all three backends. The strided form exists for the sharded
// control plane: shard i of N allocates (i, N), so ids are globally unique
// across shards and id % N recovers the owning shard. The id table grows by
// 4 bytes per query ever started and is never shrunk; slots of finished
// queries are recycled through a freelist, so resident state is proportional
// to the in-flight count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace tailguard {

struct QueryState {
  TimeMs t0 = 0.0;             ///< arrival time
  ClassId cls = 0;             ///< service class
  std::uint32_t fanout = 0;    ///< number of tasks spawned
  std::uint32_t remaining = 0; ///< tasks not yet merged
  TimeMs deadline = 0.0;       ///< shared task queuing deadline t_D
};

class QueryTracker {
 public:
  QueryTracker() = default;
  /// Ids handed out are start, start + stride, start + 2*stride, ...
  /// Requires stride >= 1 and start < stride.
  QueryTracker(QueryId id_start, QueryId id_stride);

  /// Registers a new query; returns its id.
  QueryId begin_query(TimeMs t0, ClassId cls, std::uint32_t fanout,
                      TimeMs deadline);

  /// Merges one task result. Returns true when this was the last outstanding
  /// task; `finished` (if non-null) receives the final state before erase.
  bool complete_task(QueryId id, QueryState* finished = nullptr);

  const QueryState& state(QueryId id) const;

  std::size_t in_flight() const { return in_flight_; }
  std::uint64_t started() const { return started_; }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  /// Dense index of a (valid) id in this tracker's progression.
  std::uint64_t index_of(QueryId id) const {
    return stride_ == 1 ? id : (id - start_) / stride_;
  }

  /// Slot of a live query, or kNoSlot if `id` is unknown or finished.
  std::uint32_t slot_of(QueryId id) const {
    const std::uint64_t idx = index_of(id);
    return idx < slot_by_idx_.size() ? slot_by_idx_[idx] : kNoSlot;
  }

  std::vector<QueryState> slab_;           ///< slot -> state (recycled)
  std::vector<std::uint32_t> slot_by_idx_; ///< index -> slot, kNoSlot if done
  std::vector<std::uint32_t> free_slots_;
  std::size_t in_flight_ = 0;
  std::uint64_t started_ = 0;
  QueryId start_ = 0;
  QueryId stride_ = 1;
};

}  // namespace tailguard
