// In-flight query bookkeeping shared by the simulator and the runtime.
//
// Models the query-handler side of Fig. 2: a query spawns kf tasks; the
// query finishes when the last task result has been merged, and the query
// response time is that completion time minus t_0.
//
// Storage: query ids form an arithmetic progression (begin_query hands out
// start, start+stride, start+2*stride, ...; the default (0, 1) yields the
// dense 0, 1, 2, ...), so the state lives in a SlabMap (common/slab_map.h,
// the generalization of the slab + freelist scheme this class pioneered) —
// every lookup is two array loads instead of a hash probe. complete_task and
// state() sit on the per-task hot path of all three backends, so they are
// defined inline here: the simulator's event loop inlines the whole chain
// (facade -> control plane -> tracker -> slab) with no cross-TU calls. The
// strided form exists for the sharded control plane: shard i of N allocates
// (i, N), so ids are globally unique across shards and id % N recovers the
// owning shard. The id table grows by 4 bytes per query ever started and is
// never shrunk; slots of finished queries are recycled through a freelist,
// so resident state is proportional to the in-flight count.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "common/slab_map.h"
#include "core/types.h"

namespace tailguard {

struct QueryState {
  TimeMs t0 = 0.0;             ///< arrival time
  ClassId cls = 0;             ///< service class
  std::uint32_t fanout = 0;    ///< number of tasks spawned
  std::uint32_t remaining = 0; ///< tasks not yet merged
  TimeMs deadline = 0.0;       ///< shared task queuing deadline t_D
};

class QueryTracker {
 public:
  QueryTracker() = default;
  /// Ids handed out are start, start + stride, start + 2*stride, ...
  /// Requires stride >= 1 and start < stride.
  QueryTracker(QueryId id_start, QueryId id_stride)
      : start_(id_start), stride_(id_stride), states_(id_start, id_stride) {}

  /// Pre-sizes for `queries` total begin_query calls and `in_flight`
  /// simultaneously live queries (capacity hint; exceeding it only costs the
  /// usual amortized growth).
  void reserve(std::size_t queries, std::size_t in_flight) {
    states_.reserve(queries, in_flight);
  }

  /// Registers a new query; returns its id.
  QueryId begin_query(TimeMs t0, ClassId cls, std::uint32_t fanout,
                      TimeMs deadline) {
    TG_CHECK_MSG(fanout >= 1, "query must spawn at least one task");
    const QueryId id = start_ + started_++ * stride_;
    states_.emplace(id) = QueryState{.t0 = t0,
                                     .cls = cls,
                                     .fanout = fanout,
                                     .remaining = fanout,
                                     .deadline = deadline};
    return id;
  }

  /// Merges one task result. Returns true when this was the last outstanding
  /// task; `finished` (if non-null) receives the final state before erase.
  bool complete_task(QueryId id, QueryState* finished = nullptr) {
    QueryState* st = states_.find(id);
    TG_CHECK_MSG(st != nullptr, "unknown query " << id);
    TG_CHECK_MSG(st->remaining > 0, "query " << id << " over-completed");
    if (--st->remaining > 0) return false;
    if (finished != nullptr) *finished = *st;
    states_.erase(id);
    return true;
  }

  const QueryState& state(QueryId id) const {
    const QueryState* st = states_.find(id);
    TG_CHECK_MSG(st != nullptr, "unknown query " << id);
    return *st;
  }

  std::size_t in_flight() const { return states_.size(); }
  std::uint64_t started() const { return started_; }

 private:
  std::uint64_t started_ = 0;
  QueryId start_ = 0;
  QueryId stride_ = 1;
  SlabMap<QueryState> states_;
};

}  // namespace tailguard
