#include "core/placement/slack_tracker.h"

#include "common/check.h"

namespace tailguard {

SlackTracker::SlackTracker(std::size_t num_servers,
                           StreamingHistogramOptions options) {
  TG_CHECK_MSG(num_servers > 0, "slack tracker needs at least one server");
  servers_.reserve(num_servers);
  for (std::size_t s = 0; s < num_servers; ++s) servers_.emplace_back(options);
}

void SlackTracker::record_enqueue(ServerId server, double slack_ms,
                                  TimeMs now) {
  PerServer& state = servers_[server];
  // Negative slack (budget already blown at enqueue, e.g. an Eq. 7 override
  // tighter than the unloaded tail) clamps into the histogram's bottom
  // bucket: it still counts as maximally-urgent mass.
  state.slack.add(slack_ms);
  state.last_update_ms = now;
}

void SlackTracker::record_service(ServerId server, double service_ms) {
  servers_[server].service.add(service_ms);
}

}  // namespace tailguard
