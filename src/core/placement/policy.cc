#include "core/placement/policy.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "common/check.h"
#include "core/placement/slack_tracker.h"

namespace tailguard {

const char* placement_kind_name(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kLeastLoaded:
      return "least_loaded";
    case PlacementPolicyKind::kPowerOfD:
      return "pow_d";
    case PlacementPolicyKind::kTailRisk:
      return "tail_risk";
  }
  return "unknown";
}

PlacementPolicyOptions placement_from_env() {
  PlacementPolicyOptions opts;
  if (const char* env = std::getenv("TAILGUARD_PLACEMENT")) {
    if (std::strcmp(env, "least_loaded") == 0) {
      opts.kind = PlacementPolicyKind::kLeastLoaded;
    } else if (std::strcmp(env, "pow_d") == 0) {
      opts.kind = PlacementPolicyKind::kPowerOfD;
    } else if (std::strcmp(env, "tail_risk") == 0) {
      opts.kind = PlacementPolicyKind::kTailRisk;
    } else {
      TG_CHECK_MSG(false, "TAILGUARD_PLACEMENT must be 'least_loaded', "
                          "'pow_d' or 'tail_risk', got '"
                              << env << "'");
    }
  }
  if (const char* env = std::getenv("TAILGUARD_PLACEMENT_D")) {
    char* end = nullptr;
    const long d = std::strtol(env, &end, 10);
    TG_CHECK_MSG(end != env && *end == '\0' && d >= 1,
                 "TAILGUARD_PLACEMENT_D must be a positive integer, got '"
                     << env << "'");
    opts.power_d = static_cast<std::size_t>(d);
  }
  return opts;
}

// --- least_loaded ----------------------------------------------------------

std::size_t LeastLoadedPolicy::place(std::vector<PlacementCandidate>& candidates,
                                     std::size_t count,
                                     const PlacementContext& /*ctx*/, Rng& rng,
                                     std::vector<ServerId>& out) {
  const std::size_t examined = count == 0 ? 0 : candidates.size();
  out = pick_least_loaded(std::move(candidates), count, rng);
  return examined;
}

// --- pow_d -----------------------------------------------------------------

PowerOfDPolicy::PowerOfDPolicy(std::size_t d) : d_(d) {
  TG_CHECK_MSG(d_ >= 1, "power-of-d needs d >= 1");
}

std::size_t PowerOfDPolicy::place(std::vector<PlacementCandidate>& candidates,
                                  std::size_t count,
                                  const PlacementContext& /*ctx*/, Rng& rng,
                                  std::vector<ServerId>& out) {
  out.clear();
  if (count == 0) return 0;
  TG_CHECK_MSG(!candidates.empty(), "placement needs at least one candidate");
  out.reserve(count);
  avail_.clear();
  std::size_t examined = 0;
  for (std::size_t pick = 0; pick < count; ++pick) {
    // Distinct while possible: once every candidate has been picked once,
    // refill and go around again (count > n reuse, as in pick_least_loaded).
    if (avail_.empty()) {
      avail_.resize(candidates.size());
      std::iota(avail_.begin(), avail_.end(), std::size_t{0});
    }
    // Sample d distinct candidates via a partial Fisher–Yates over the
    // still-unpicked indices; keep the least loaded (first-sampled wins
    // ties, and sampling order is random, so ties break uniformly).
    const std::size_t d_eff = std::min(d_, avail_.size());
    std::size_t best = 0;
    for (std::size_t j = 0; j < d_eff; ++j) {
      const std::size_t swap_with =
          j + static_cast<std::size_t>(rng.uniform_index(avail_.size() - j));
      std::swap(avail_[j], avail_[swap_with]);
      if (candidates[avail_[j]].first < candidates[avail_[best]].first)
        best = j;
    }
    examined += d_eff;
    out.push_back(candidates[avail_[best]].second);
    avail_[best] = avail_.back();
    avail_.pop_back();
  }
  return examined;
}

// --- tail_risk -------------------------------------------------------------

double SlackTailRiskPolicy::risk_of(std::size_t load, ServerId server,
                                    const PlacementContext& ctx) {
  TG_CHECK_MSG(ctx.slack != nullptr, "tail-risk placement needs a SlackTracker");
  const SlackTracker& tracker = *ctx.slack;
  const double n = static_cast<double>(load);
  if (tracker.slack_observations(server) == 0) {
    // Cold server: no slack data yet. Rank by raw load inside the
    // partial-data band — worse than any informed feasible server, better
    // than one whose urgent backlog already exceeds the budget.
    return 1.0 + n / (n + 1.0);
  }
  // Fraction of this server's queue that must drain before our own task's
  // deadline: tasks whose remaining slack is at most our budget run first
  // under (TF-)EDF ordering, so they are the work "ahead of" the new task.
  const double urgent = tracker.slack_cdf(server, ctx.budget_hint_ms);
  const double ahead = n * urgent;
  const double mean_service_ms = tracker.mean_service_ms(server);
  if (mean_service_ms <= 0.0) {
    // Slack data but no service observations yet: rank by expected urgent
    // backlog, same partial-data band as cold servers.
    return 1.0 + ahead / (ahead + 1.0);
  }
  const double room_ms = ctx.budget_hint_ms - ahead * mean_service_ms;
  if (room_ms <= 0.0) {
    // The urgent backlog alone exceeds the budget — a miss in expectation.
    // Rank overloaded servers by how far past the budget they are.
    return 2.0 - room_ms;
  }
  // P(own post-queuing time exceeds the remaining room) from the server's
  // observed service distribution.
  return 1.0 - tracker.service_cdf(server, room_ms);
}

std::size_t SlackTailRiskPolicy::place(
    std::vector<PlacementCandidate>& candidates, std::size_t count,
    const PlacementContext& ctx, Rng& rng, std::vector<ServerId>& out) {
  out.clear();
  if (count == 0) return 0;
  TG_CHECK_MSG(!candidates.empty(), "placement needs at least one candidate");
  scored_.clear();
  scored_.reserve(candidates.size());
  for (const auto& [load, server] : candidates)
    scored_.push_back({risk_of(load, server, ctx),
                       rng.uniform_index(candidates.size()), server});
  std::sort(scored_.begin(), scored_.end(),
            [](const Scored& a, const Scored& b) {
              if (a.risk != b.risk) return a.risk < b.risk;
              if (a.tie_break != b.tie_break) return a.tie_break < b.tie_break;
              return a.server < b.server;
            });
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(scored_[i % scored_.size()].server);
  return candidates.size();
}

std::unique_ptr<PlacementPolicy> make_placement_policy(
    const PlacementPolicyOptions& options) {
  switch (options.kind) {
    case PlacementPolicyKind::kLeastLoaded:
      return std::make_unique<LeastLoadedPolicy>();
    case PlacementPolicyKind::kPowerOfD:
      return std::make_unique<PowerOfDPolicy>(options.power_d);
    case PlacementPolicyKind::kTailRisk:
      return std::make_unique<SlackTailRiskPolicy>();
  }
  TG_CHECK_MSG(false, "unknown placement policy kind");
  return nullptr;
}

}  // namespace tailguard
