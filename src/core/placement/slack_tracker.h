// Per-server slack and service-time histograms feeding tail-risk placement.
//
// ROADMAP's "slack-distribution-aware placement" item (after Malcolm-Strict's
// critique of least-loaded): to estimate P(server s blows a task's budget)
// the placer needs, per server, (a) the distribution of *slack* — t_D − now
// at enqueue time — of the tasks already queued there, and (b) the server's
// service-time distribution. Both ride the existing streaming-histogram
// machinery (common/streaming_histogram): O(1) per observation, exponential
// decay so a server that drains its urgent backlog stops looking risky.
//
// Ownership: one SlackTracker lives inside each QueryControlPlane (allocated
// only when the tail-risk policy is selected). The sharded facade ships slack
// samples between shards as ShardDelta entries (in-process StateSyncBus only;
// the wire never carries them — daemons do not place tasks).
//
// Thread safety: none, same contract as QueryControlPlane.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/streaming_histogram.h"
#include "core/types.h"

namespace tailguard {

class SlackTracker {
 public:
  SlackTracker(std::size_t num_servers, StreamingHistogramOptions options);

  std::size_t num_servers() const { return servers_.size(); }

  /// One task enqueued on `server` with `slack_ms` = t_D − now headroom.
  /// `now` timestamps the observation for staleness accounting.
  void record_enqueue(ServerId server, double slack_ms, TimeMs now);

  /// One observed post-queuing (service + queuing) time on `server`.
  void record_service(ServerId server, double service_ms);

  /// Fraction of `server`'s tracked slack mass at or below `slack_ms` — the
  /// "urgent fraction" of its queue relative to a budget. 0 when no data.
  double slack_cdf(ServerId server, double slack_ms) const {
    return servers_[server].slack.cdf(slack_ms);
  }

  /// Estimated P(post-queuing time <= x) on `server`. 0 when no data.
  double service_cdf(ServerId server, double x) const {
    return servers_[server].service.cdf(x);
  }

  /// Decayed mean post-queuing time on `server`; 0 when no observations.
  double mean_service_ms(ServerId server) const {
    return servers_[server].service.observations() > 0
               ? servers_[server].service.mean()
               : 0.0;
  }

  std::uint64_t slack_observations(ServerId server) const {
    return servers_[server].slack.observations();
  }

  /// Timestamp of the last slack observation for `server`; meaningful only
  /// when slack_observations(server) > 0.
  TimeMs last_update_ms(ServerId server) const {
    return servers_[server].last_update_ms;
  }

 private:
  struct PerServer {
    StreamingHistogram slack;
    StreamingHistogram service;
    TimeMs last_update_ms = 0.0;

    explicit PerServer(const StreamingHistogramOptions& options)
        : slack(options), service(options) {}
  };

  std::vector<PerServer> servers_;
};

}  // namespace tailguard
