// Pluggable distinct-server placement policies.
//
// The Fig. 2 query handler fans each admitted query out to kf *distinct*
// task servers; which kf is a policy decision, not pipeline structure. This
// subsystem turns the former hardcoded least-loaded pick (core/placement.h)
// into an interface with three implementations:
//
//   least_loaded  — bit-identical wrapper around pick_least_loaded; the
//                   default, and the paper's behaviour.
//   pow_d         — power-of-d-choices: per replica, sample d candidates
//                   uniformly (without replacement) and take the least
//                   loaded. O(d·kf) instead of O(n log n), and all draws
//                   come from the caller's Rng, so runs are deterministic
//                   for a fixed seed at any thread count.
//   tail_risk     — Malcolm-Strict's counter to least-loaded: minimising
//                   load variance optimises the mean, not the p99. Scores
//                   each candidate by the estimated probability it blows the
//                   task's budget T_b, using per-server slack histograms
//                   (queued tasks' t_D − now) and service-time histograms
//                   from the SlackTracker, and picks the kf lowest-risk
//                   servers.
//
// Backends never name these classes: they call the control-plane facade's
// place(), and selection is configuration (PlacementPolicyOptions, or the
// TAILGUARD_PLACEMENT / TAILGUARD_PLACEMENT_D environment knobs). The
// tg_lint `control-plane-boundary` rule enforces that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/streaming_histogram.h"
#include "core/placement.h"
#include "core/types.h"

namespace tailguard {

class SlackTracker;

enum class PlacementPolicyKind { kLeastLoaded, kPowerOfD, kTailRisk };

/// Stable lowercase name, matching the TAILGUARD_PLACEMENT spelling
/// ("least_loaded" | "pow_d" | "tail_risk").
const char* placement_kind_name(PlacementPolicyKind kind);

struct PlacementPolicyOptions {
  PlacementPolicyKind kind = PlacementPolicyKind::kLeastLoaded;
  /// pow_d: candidates sampled per replica pick (d >= 1; d >= n degenerates
  /// to a global least-loaded scan).
  std::size_t power_d = 2;
  /// tail_risk: geometry/decay of the per-server slack and service
  /// histograms. The default decays every 4096 observations so a server
  /// that drained its urgent backlog stops looking risky.
  StreamingHistogramOptions slack_histogram{.min_value = 1e-3,
                                            .max_value = 1e6,
                                            .buckets_per_decade = 100,
                                            .decay_every = 4096,
                                            .decay_factor = 0.5};
};

/// Environment fallback for backend placement configuration, mirroring the
/// TAILGUARD_SHARDS pattern: TAILGUARD_PLACEMENT selects the policy kind
/// (least_loaded | pow_d | tail_risk; unset = least_loaded) and
/// TAILGUARD_PLACEMENT_D overrides the pow_d sample width. Invalid values
/// abort rather than silently running the wrong experiment.
PlacementPolicyOptions placement_from_env();

/// Per-decision inputs beyond the candidate list itself.
struct PlacementContext {
  TimeMs now_ms = 0.0;
  /// The task's deadline budget T_b (Eq. 6) over a representative server
  /// set; only tail_risk consumes it. 0 when the caller has no estimate.
  TimeMs budget_hint_ms = 0.0;
  /// Slack/service histograms; non-null only under tail_risk.
  const SlackTracker* slack = nullptr;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual PlacementPolicyKind kind() const = 0;

  /// Fills `out` with `count` servers drawn from `candidates` (load, server)
  /// pairs — distinct while count <= candidates.size(), round-robin reuse
  /// beyond that, matching pick_least_loaded's contract. `candidates` is
  /// caller-owned scratch the policy may reorder or consume. All randomness
  /// comes from `rng`. Returns the number of candidates the policy examined
  /// (observability: pow_d looks at d per pick, the others at all n).
  /// Precondition: !candidates.empty() when count > 0.
  virtual std::size_t place(std::vector<PlacementCandidate>& candidates,
                            std::size_t count, const PlacementContext& ctx,
                            Rng& rng, std::vector<ServerId>& out) = 0;
};

/// The default: exactly pick_least_loaded (same comparisons, same Rng
/// draws), so selecting least_loaded through the policy layer is
/// bit-identical to the pre-refactor free-function call sites.
class LeastLoadedPolicy final : public PlacementPolicy {
 public:
  PlacementPolicyKind kind() const override {
    return PlacementPolicyKind::kLeastLoaded;
  }
  std::size_t place(std::vector<PlacementCandidate>& candidates,
                    std::size_t count, const PlacementContext& ctx, Rng& rng,
                    std::vector<ServerId>& out) override;
};

class PowerOfDPolicy final : public PlacementPolicy {
 public:
  explicit PowerOfDPolicy(std::size_t d);

  PlacementPolicyKind kind() const override {
    return PlacementPolicyKind::kPowerOfD;
  }
  std::size_t place(std::vector<PlacementCandidate>& candidates,
                    std::size_t count, const PlacementContext& ctx, Rng& rng,
                    std::vector<ServerId>& out) override;

 private:
  std::size_t d_;
  std::vector<std::size_t> avail_;  // scratch: candidate indices still unpicked
};

class SlackTailRiskPolicy final : public PlacementPolicy {
 public:
  PlacementPolicyKind kind() const override {
    return PlacementPolicyKind::kTailRisk;
  }
  std::size_t place(std::vector<PlacementCandidate>& candidates,
                    std::size_t count, const PlacementContext& ctx, Rng& rng,
                    std::vector<ServerId>& out) override;

  /// Risk score for one candidate (exposed for unit tests): lower is safer.
  /// Bands: [0,1) = estimated P(miss) with full slack+service data;
  /// [1,2) = partial data, ranked by expected urgent backlog; [2,∞) = the
  /// urgent backlog alone already exceeds the budget.
  static double risk_of(std::size_t load, ServerId server,
                        const PlacementContext& ctx);

 private:
  struct Scored {
    double risk;
    std::uint64_t tie_break;
    ServerId server;
  };
  std::vector<Scored> scored_;  // scratch
};

std::unique_ptr<PlacementPolicy> make_placement_policy(
    const PlacementPolicyOptions& options);

}  // namespace tailguard
