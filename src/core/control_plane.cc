#include "core/control_plane.h"

#include <utility>

#include "common/check.h"

namespace tailguard {

QueryControlPlane::QueryControlPlane(
    ControlPlaneOptions options,
    std::vector<std::shared_ptr<CdfModel>> server_models)
    : options_(std::move(options)),
      estimator_(std::move(server_models)),
      tracker_(options_.id_start, options_.id_stride),
      rng_(options_.seed),
      placement_policy_(make_placement_policy(options_.placement)) {
  TG_CHECK_MSG(!options_.classes.empty(), "control plane needs >= 1 class");
  for (const ClassSpec& spec : options_.classes) estimator_.add_class(spec);
  per_class_.resize(options_.classes.size());
  if (options_.admission) admission_.emplace(*options_.admission);
  if (options_.placement.kind == PlacementPolicyKind::kTailRisk)
    slack_ = std::make_unique<SlackTracker>(estimator_.num_servers(),
                                            options_.placement.slack_histogram);
}

bool QueryControlPlane::should_admit(TimeMs now) {
  if (!admission_) return true;
  // kOnOff ignores the coin; draw only when kProportional will consume it so
  // on/off admission leaves the control plane's Rng stream untouched.
  const double coin =
      admission_->options().mode == AdmissionMode::kProportional
          ? rng_.uniform()
          : 0.0;
  return admission_->should_admit(now, coin);
}

bool QueryControlPlane::should_admit(TimeMs now, double coin) {
  if (!admission_) return true;
  return admission_->should_admit(now, coin);
}

void QueryControlPlane::count_admitted() {
  ++queries_admitted_;
  if (admission_) admission_->count_admitted();
}

void QueryControlPlane::count_rejected() {
  ++queries_rejected_;
  if (admission_) admission_->count_rejected();
}

double QueryControlPlane::admission_miss_ratio(TimeMs now) {
  return admission_ ? admission_->miss_ratio(now) : 0.0;
}

std::vector<ServerId> QueryControlPlane::place(
    std::vector<PlacementCandidate> candidates, std::size_t count, ClassId cls,
    TimeMs now) {
  ++placement_stats_.decisions;
  PlacementContext ctx;
  ctx.now_ms = now;
  if (slack_) {
    ctx.slack = slack_.get();
    // Budget hint for the risk score: Eq. 6 over the first min(count, n)
    // candidates. The estimator memoises per (class, model multiset), so
    // this is a cache hit on every homogeneous decision after the first.
    budget_hint_servers_.clear();
    const std::size_t hint_n = std::min(count, candidates.size());
    for (std::size_t i = 0; i < hint_n; ++i)
      budget_hint_servers_.push_back(candidates[i].second);
    ctx.budget_hint_ms = estimator_.budget(cls, budget_hint_servers_);
    double age_sum_ms = 0.0;
    std::size_t with_data = 0;
    for (const auto& [load, server] : candidates) {
      if (slack_->slack_observations(server) == 0) continue;
      age_sum_ms += now - slack_->last_update_ms(server);
      ++with_data;
    }
    if (with_data > 0) {
      placement_stats_.slack_staleness_ms_sum +=
          age_sum_ms / static_cast<double>(with_data);
      ++placement_stats_.decisions_with_slack;
    }
  }
  std::vector<ServerId> out;
  placement_stats_.candidates_considered +=
      placement_policy_->place(candidates, count, ctx, rng_, out);
  return out;
}

TimeMs QueryControlPlane::budget(ClassId cls,
                                 std::span<const ServerId> servers) {
  return estimator_.budget(cls, servers);
}

QueryPlan QueryControlPlane::begin_query(TimeMs t0, ClassId cls,
                                         std::span<const ServerId> servers,
                                         std::optional<TimeMs> budget_override,
                                         std::optional<TimeMs> order_slo_ms) {
  QueryPlan plan;
  plan.cls = cls;
  plan.fanout = static_cast<std::uint32_t>(servers.size());
  plan.t0 = t0;
  plan.budget_ms =
      budget_override ? *budget_override : estimator_.budget(cls, servers);
  plan.tail_deadline = t0 + plan.budget_ms;
  switch (options_.policy) {
    case Policy::kTfEdf:
      plan.order_deadline = plan.tail_deadline;
      break;
    case Policy::kTEdf:
      plan.order_deadline =
          order_slo_ms ? t0 + *order_slo_ms : estimator_.slo_deadline(t0, cls);
      break;
    case Policy::kFifo:
    case Policy::kPriq:
      plan.order_deadline = t0;  // unused for ordering
      break;
  }
  plan.id = tracker_.begin_query(t0, cls, plan.fanout, plan.tail_deadline);
  if (slack_) {
    // One slack sample per placed task: at enqueue, t_D − now is exactly
    // the budget. This is the distribution the tail-risk policy reads.
    for (const ServerId server : servers)
      slack_->record_enqueue(server, plan.budget_ms, t0);
  }
  return plan;
}

void QueryControlPlane::absorb_remote_dequeues(TimeMs now,
                                               std::uint64_t recorded,
                                               std::uint64_t missed) {
  if (admission_) admission_->record_remote_dequeues(now, recorded, missed);
}

void QueryControlPlane::observe_post_queuing(ServerId server,
                                             TimeMs post_queuing_ms) {
  estimator_.observe_post_queuing(server, post_queuing_ms);
  if (slack_) slack_->record_service(server, post_queuing_ms);
}

const ClassSpec& QueryControlPlane::class_spec(ClassId cls) const {
  return estimator_.class_spec(cls);
}

const ClassAccounting& QueryControlPlane::class_accounting(ClassId cls) const {
  TG_CHECK_MSG(cls < per_class_.size(), "class id out of range");
  return per_class_[cls];
}

std::uint64_t QueryControlPlane::tasks_recorded() const {
  std::uint64_t n = 0;
  for (const ClassAccounting& a : per_class_) n += a.tasks_recorded;
  return n;
}

std::uint64_t QueryControlPlane::tasks_missed() const {
  std::uint64_t n = 0;
  for (const ClassAccounting& a : per_class_) n += a.tasks_missed;
  return n;
}

double QueryControlPlane::task_miss_ratio() const {
  const std::uint64_t total = tasks_recorded();
  return total == 0 ? 0.0
                    : static_cast<double>(tasks_missed()) /
                          static_cast<double>(total);
}

const CdfModel& QueryControlPlane::model_of(ServerId server) const {
  return estimator_.model_of(server);
}

}  // namespace tailguard
