#include "core/deadline.h"

#include <algorithm>

#include "common/check.h"

namespace tailguard {

namespace {
// FNV-1a over a small integer sequence; cache keys only need to separate the
// (class, group-composition) combinations that actually occur.
std::uint64_t hash_key(ClassId cls, std::span<const std::uint32_t> counts) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(cls);
  for (std::uint32_t c : counts) mix(c);
  return h;
}
}  // namespace

DeadlineEstimator::DeadlineEstimator(
    std::vector<std::shared_ptr<CdfModel>> server_models) {
  TG_CHECK_MSG(!server_models.empty(), "need at least one server");
  server_group_.reserve(server_models.size());
  for (auto& model : server_models) {
    TG_CHECK_MSG(model != nullptr, "null server model");
    const auto it = std::find(models_.begin(), models_.end(), model);
    if (it == models_.end()) {
      server_group_.push_back(static_cast<std::uint32_t>(models_.size()));
      models_.push_back(std::move(model));
    } else {
      server_group_.push_back(
          static_cast<std::uint32_t>(it - models_.begin()));
    }
  }
  group_counts_.assign(models_.size(), 0);
  touched_groups_.reserve(models_.size());
  models_scratch_.reserve(models_.size());
  counts_scratch_.reserve(models_.size());
  for (const auto& m : models_) version_sum_ += m->version();
}

DeadlineEstimator DeadlineEstimator::homogeneous(
    std::shared_ptr<CdfModel> model, std::size_t n_servers) {
  TG_CHECK_MSG(n_servers >= 1, "need at least one server");
  return DeadlineEstimator(
      std::vector<std::shared_ptr<CdfModel>>(n_servers, std::move(model)));
}

ClassId DeadlineEstimator::add_class(ClassSpec spec) {
  TG_CHECK_MSG(spec.slo_ms > 0.0, "class SLO must be positive");
  TG_CHECK_MSG(spec.percentile > 0.0 && spec.percentile < 100.0,
               "percentile must be in (0,100): " << spec.percentile);
  classes_.push_back(spec);
  return static_cast<ClassId>(classes_.size() - 1);
}

const ClassSpec& DeadlineEstimator::class_spec(ClassId cls) const {
  TG_CHECK_MSG(cls < classes_.size(), "unknown class " << cls);
  return classes_[cls];
}

TimeMs DeadlineEstimator::unloaded_query_quantile(
    ClassId cls, std::span<const ServerId> servers) {
  const ClassSpec& spec = class_spec(cls);
  TG_CHECK_MSG(!servers.empty(), "query must fan out to at least one server");
  const double prob = spec.percentile / 100.0;

  if (models_.size() == 1) {
    // Homogeneous cluster: closed form, cache by fanout.
    for (ServerId s : servers)
      TG_CHECK_MSG(s < server_group_.size(), "unknown server " << s);
    return unloaded_query_quantile(cls,
                                   static_cast<std::uint32_t>(servers.size()));
  }

  // Scratch arena: group_counts_ is all-zero between calls, so only the
  // groups this query touches are written and reset (no per-call fill over
  // every group).
  touched_groups_.clear();
  for (ServerId s : servers) {
    TG_CHECK_MSG(s < server_group_.size(), "unknown server " << s);
    const std::uint32_t g = server_group_[s];
    if (group_counts_[g]++ == 0) touched_groups_.push_back(g);
  }

  const std::uint64_t key = hash_key(cls, group_counts_);
  const TimeMs result = cache_.get_or_compute(key, version_sum_, [&] {
    // Compact (model, count) representation for the groups hit, in group
    // order so equal compositions always produce the same call.
    models_scratch_.clear();
    counts_scratch_.clear();
    for (std::size_t g = 0; g < models_.size(); ++g) {
      if (group_counts_[g] == 0) continue;
      models_scratch_.push_back(models_[g].get());
      counts_scratch_.push_back(group_counts_[g]);
    }
    return heterogeneous_unloaded_quantile(models_scratch_, counts_scratch_,
                                           prob);
  });
  for (std::uint32_t g : touched_groups_) group_counts_[g] = 0;
  return result;
}

TimeMs DeadlineEstimator::unloaded_query_quantile(ClassId cls,
                                                  std::uint32_t fanout) {
  TG_CHECK_MSG(models_.size() == 1,
               "fanout-only lookup requires a homogeneous cluster");
  const ClassSpec& spec = class_spec(cls);
  const std::size_t stride = server_group_.size() + 1;
  if (fanout < stride) {
    const std::size_t want = classes_.size() * stride;
    if (flat_tags_.size() != want) {
      flat_tags_.assign(want, 0);
      flat_vals_.resize(want);
    }
    const std::size_t idx = cls * stride + fanout;
    if (flat_tags_[idx] == version_sum_ + 1) return flat_vals_[idx];
    const TimeMs value = homogeneous_unloaded_quantile(
        *models_[0], fanout, spec.percentile / 100.0);
    flat_tags_[idx] = version_sum_ + 1;
    flat_vals_[idx] = value;
    return value;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(cls) << 32) | fanout;
  return cache_.get_or_compute(key, version_sum_, [&] {
    return homogeneous_unloaded_quantile(*models_[0], fanout,
                                         spec.percentile / 100.0);
  });
}

TimeMs DeadlineEstimator::budget(ClassId cls,
                                 std::span<const ServerId> servers) {
  return class_spec(cls).slo_ms - unloaded_query_quantile(cls, servers);
}

TimeMs DeadlineEstimator::deadline(TimeMs t0, ClassId cls,
                                   std::span<const ServerId> servers) {
  return t0 + budget(cls, servers);
}

TimeMs DeadlineEstimator::slo_deadline(TimeMs t0, ClassId cls) const {
  return t0 + class_spec(cls).slo_ms;
}

void DeadlineEstimator::observe_post_queuing(ServerId server, TimeMs t) {
  TG_CHECK_MSG(server < server_group_.size(), "unknown server " << server);
  CdfModel& model = *models_[server_group_[server]];
  const std::uint64_t before = model.version();
  model.observe(t);
  version_sum_ += model.version() - before;
}

const CdfModel& DeadlineEstimator::model_of(ServerId server) const {
  TG_CHECK_MSG(server < server_group_.size(), "unknown server " << server);
  return *models_[server_group_[server]];
}

}  // namespace tailguard
