// Order-statistics engine: Eqs. (1) and (2) of the paper.
//
// The unloaded query latency is the maximum of the kf constituent task
// latencies, so its CDF is the product of the per-server unloaded CDFs:
//
//   F_Q^u(t) = Π_l F_l^u(t)            over the servers the query fans out to
//   x_p^u    = F_Q^{u,-1}(p/100)
//
// Homogeneous clusters admit the closed form x_p^u(kf) = F^{-1}((p/100)^{1/kf});
// heterogeneous server sets are inverted by bisection. Because queries with
// the same (class, server-composition) share the same x_p^u, results are
// memoised in a caller-keyed cache that invalidates when any referenced model
// reports a new version (online updating).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/slab_map.h"
#include "core/cdf_model.h"
#include "core/types.h"

namespace tailguard {

/// x_p^u(kf) for kf i.i.d. tasks drawn from `model`. `prob` in (0, 1), e.g.
/// 0.99 for the 99th percentile.
TimeMs homogeneous_unloaded_quantile(const CdfModel& model, std::uint32_t kf,
                                     double prob);

/// x_p^u for one task on each model in `models` (a model may appear more than
/// once if several tasks hit equivalent servers). Inverts Π F_l(t) = prob by
/// bisection; the bracket is derived from per-model quantiles.
TimeMs heterogeneous_unloaded_quantile(std::span<const CdfModel* const> models,
                                       double prob);

/// As above but with multiplicities: `counts[i]` tasks on `models[i]`.
TimeMs heterogeneous_unloaded_quantile(std::span<const CdfModel* const> models,
                                       std::span<const std::uint32_t> counts,
                                       double prob);

/// Memo for unloaded-quantile lookups. Keys are caller-chosen 64-bit values
/// (e.g. hash of (class, group-count vector)); entries are dropped whenever
/// the observed model-version sum changes, which covers online updates.
///
/// Backed by SlabHashCache (common/slab_map.h) rather than a node-based
/// unordered_map: the deadline estimator hits this once per query, and with
/// online estimation the version bump clears it every refresh interval — the
/// slab's clear() keeps the bucket table and entry slab, so steady-state
/// refills allocate nothing.
class UnloadedQuantileCache {
 public:
  /// Returns the cached value for `key` or computes it via `compute()` and
  /// caches it. `version_sum` must change whenever any underlying model does
  /// (sum of CdfModel::version() works).
  template <typename ComputeFn>
  TimeMs get_or_compute(std::uint64_t key, std::uint64_t version_sum,
                        ComputeFn&& compute) {
    if (version_sum != version_sum_) {
      map_.clear();
      version_sum_ = version_sum;
    }
    if (const TimeMs* hit = map_.find(key)) return *hit;
    const TimeMs v = compute();
    map_.insert(key, v);
    return v;
  }

  std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

 private:
  SlabHashCache<TimeMs> map_;
  std::uint64_t version_sum_ = ~0ULL;
};

}  // namespace tailguard
