#include "core/order_stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tailguard {

TimeMs homogeneous_unloaded_quantile(const CdfModel& model, std::uint32_t kf,
                                     double prob) {
  TG_CHECK_MSG(kf >= 1, "fanout must be at least 1");
  TG_CHECK_MSG(prob > 0.0 && prob < 1.0, "prob must be in (0,1): " << prob);
  // F(t)^kf = prob  =>  F(t) = prob^{1/kf}  (Eq. 2 specialised to Eq. 1 with
  // identical factors).
  const double per_task = std::pow(prob, 1.0 / static_cast<double>(kf));
  return model.quantile(per_task);
}

namespace {

TimeMs invert_product_cdf(std::span<const CdfModel* const> models,
                          std::span<const std::uint32_t> counts, double prob) {
  TG_CHECK_MSG(!models.empty(), "need at least one model");
  TG_CHECK_MSG(prob > 0.0 && prob < 1.0, "prob must be in (0,1): " << prob);
  std::uint64_t total_tasks = 0;
  for (std::size_t i = 0; i < models.size(); ++i) {
    TG_CHECK_MSG(models[i] != nullptr, "null model at index " << i);
    total_tasks += counts.empty() ? 1 : counts[i];
  }
  TG_CHECK_MSG(total_tasks >= 1, "need at least one task");

  const auto count_of = [&](std::size_t i) -> double {
    return counts.empty() ? 1.0 : static_cast<double>(counts[i]);
  };

  // log F_Q(t) = Σ_i counts[i] * log F_i(t); we bisect on that. Every term
  // is non-positive, so the scan short-circuits the moment the partial sum
  // drops below the target — the branch decision is identical to evaluating
  // the full product, but most iterations stop after a few models (each
  // cdf() + log() skipped is the dominant cost of the inversion).
  const double log_target = std::log(prob);
  const auto below_target = [&](TimeMs t) -> bool {
    double lp = 0.0;
    for (std::size_t i = 0; i < models.size(); ++i) {
      const double f = models[i]->cdf(t);
      if (f <= 0.0) return true;
      lp += count_of(i) * std::log(f);
      if (lp < log_target) return true;
    }
    return false;
  };

  // Bracket. Lower bound: the max over models of their `prob` quantile —
  // F_Q(t) <= min_i F_i(t) <= prob there, so the root is at or above it.
  // Upper bound: max over models of the per-task quantile prob^{1/total},
  // since F_i(t) >= prob^{count_i/total} for all i implies F_Q(t) >= prob.
  const double per_task = std::pow(prob, 1.0 / static_cast<double>(total_tasks));
  TimeMs lo = 0.0;
  TimeMs hi = 0.0;
  for (std::size_t i = 0; i < models.size(); ++i) {
    lo = std::max(lo, models[i]->quantile(prob));
    hi = std::max(hi, models[i]->quantile(per_task));
  }
  if (hi <= lo) return hi;
  // Guard against models whose quantile() is approximate (e.g. streaming
  // histograms): widen until the bracket actually straddles the target.
  for (int i = 0; i < 64 && below_target(hi); ++i)
    hi += std::max(1e-9, hi - lo);

  for (int iter = 0; iter < 200 && hi - lo > 1e-12 * std::max(1.0, hi);
       ++iter) {
    const TimeMs mid = 0.5 * (lo + hi);
    // The bracket has collapsed to adjacent doubles: further iterations
    // would re-probe the same midpoint, so stop instead of burning the
    // remaining iteration budget.
    if (mid <= lo || mid >= hi) break;
    if (below_target(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

TimeMs heterogeneous_unloaded_quantile(std::span<const CdfModel* const> models,
                                       double prob) {
  return invert_product_cdf(models, {}, prob);
}

TimeMs heterogeneous_unloaded_quantile(std::span<const CdfModel* const> models,
                                       std::span<const std::uint32_t> counts,
                                       double prob) {
  TG_CHECK_MSG(models.size() == counts.size(),
               "models/counts length mismatch");
  return invert_product_cdf(models, counts, prob);
}

}  // namespace tailguard
