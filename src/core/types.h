// Fundamental vocabulary types of the TailGuard core.
#pragma once

#include <cstdint>
#include <limits>

namespace tailguard {

/// All times in this library are double milliseconds (the paper's evaluation
/// operates between ~0.1 ms task service times and ~1.8 s SLOs).
using TimeMs = double;

inline constexpr TimeMs kNoTime = -std::numeric_limits<TimeMs>::infinity();

using QueryId = std::uint64_t;
using TaskId = std::uint64_t;
using ServerId = std::uint32_t;
using ClassId = std::uint32_t;

/// A service class: queries of this class must meet the `percentile`-th
/// percentile latency SLO of `slo_ms` (paper: x_p^SLO).
struct ClassSpec {
  TimeMs slo_ms = 0.0;
  double percentile = 99.0;

  friend bool operator==(const ClassSpec&, const ClassSpec&) = default;
};

/// The four task-queuing policies evaluated in the paper (§III.A).
enum class Policy {
  kFifo,   ///< first-in-first-out
  kPriq,   ///< strict class priority, FIFO within a class
  kTEdf,   ///< EDF with t_D = t_0 + x_p^SLO (fanout-unaware)
  kTfEdf,  ///< TailGuard: EDF with t_D = t_0 + x_p^SLO - x_p^u(kf)
};

const char* to_string(Policy p);

}  // namespace tailguard
