// The query control plane: one policy-agnostic implementation of the paper's
// Fig. 2 query-handler pipeline, shared by every execution backend.
//
// Admission check (§III.C) → per-task budget (Eq. 6 / Eq. 7 override) →
// distinct-server placement (core/placement) → t_D computation → query
// registration → per-class completion/miss accounting → online CDF-model
// updating (§III.B.2). The discrete-event simulator, the threaded in-process
// runtime, the TCP remote dispatcher and the SaS testbed are thin backends:
// they own execution (queues, threads, sockets, events) and drive this class
// for every scheduling decision. Backends must not instantiate
// DeadlineEstimator / QueryTracker / AdmissionController directly — the
// tg_lint rule `control-plane-boundary` enforces exactly that.
//
// Thread safety: none. Callers with concurrent submitters (runtime, net)
// already serialise the query handler under their own mutex; the simulator
// is single-threaded per simulation. Keeping the control plane lock-free
// keeps it usable from the simulator's hot loop unchanged.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/admission.h"
#include "core/deadline.h"
#include "core/placement.h"
#include "core/placement/policy.h"
#include "core/placement/slack_tracker.h"
#include "core/query_tracker.h"

namespace tailguard {

struct ControlPlaneOptions {
  Policy policy = Policy::kTfEdf;
  /// Service classes ordered by priority (class 0 = tightest SLO).
  std::vector<ClassSpec> classes;
  /// Admission control (§III.C); disabled when unset.
  std::optional<AdmissionOptions> admission;
  /// Distinct-server placement policy (core/placement/policy.h). The
  /// default, least_loaded, reproduces the paper's behaviour bit-for-bit.
  PlacementPolicyOptions placement;
  /// Seeds the control plane's own Rng (placement tie-breaks, proportional
  /// admission coins). Backends that need replayable randomness (the sim)
  /// pass their own draws instead and never touch this stream.
  std::uint64_t seed = 42;
  /// Query-id progression: ids handed out are id_start, id_start + id_stride,
  /// ... The defaults give the dense 0, 1, 2, ... A sharded deployment runs
  /// shard i of N with (i, N), so ids are globally unique and id % N is the
  /// owning shard. Requires id_start < id_stride.
  QueryId id_start = 0;
  QueryId id_stride = 1;
};

/// Everything the control plane decided about one admitted query: identity,
/// the Eq. 6 pre-dequeuing budget, the shared task queuing deadline t_D and
/// the policy ordering key the backend must enqueue every task under.
struct QueryPlan {
  QueryId id = 0;
  ClassId cls = 0;
  std::uint32_t fanout = 0;
  TimeMs t0 = 0.0;
  /// Pre-dequeuing budget T_b (Eq. 6), or the caller's Eq. 7 override.
  TimeMs budget_ms = 0.0;
  /// Shared task queuing deadline t_D = t0 + budget_ms; miss accounting
  /// compares dequeue times against this.
  TimeMs tail_deadline = 0.0;
  /// Policy ordering key: t_D for TF-EDFQ, t0 + SLO for T-EDFQ, t0 for
  /// FIFO/PRIQ (unused for ordering there).
  TimeMs order_deadline = 0.0;
};

/// Placement observability: per-decision counters so benches can correlate
/// policy choice and histogram staleness with placement quality.
struct PlacementStats {
  std::uint64_t decisions = 0;
  /// Candidates the policy actually examined (pow_d looks at d per pick,
  /// the full-scan policies at all n per decision).
  std::uint64_t candidates_considered = 0;
  /// tail_risk only: sum over decisions of the mean age (now − last slack
  /// observation) across candidates that had slack data, plus how many
  /// decisions had any. Mean staleness = sum / decisions_with_slack.
  double slack_staleness_ms_sum = 0.0;
  std::uint64_t decisions_with_slack = 0;
};

/// Per-class completion/miss tallies, maintained by complete_task and
/// record_task_dequeue.
struct ClassAccounting {
  std::uint64_t queries_completed = 0;
  std::uint64_t tasks_recorded = 0;
  std::uint64_t tasks_missed = 0;
};

class QueryControlPlane {
 public:
  /// One CdfModel per task server; servers sharing a model form a
  /// homogeneous group (shared_ptr identity, as in DeadlineEstimator).
  QueryControlPlane(ControlPlaneOptions options,
                    std::vector<std::shared_ptr<CdfModel>> server_models);

  // --- Admission (§III.C) -------------------------------------------------

  bool admission_enabled() const { return admission_.has_value(); }

  /// Whether a query arriving at `now` should be admitted; true when
  /// admission control is disabled. Draws the kProportional coin from the
  /// control plane's own Rng (kOnOff consumes no randomness).
  bool should_admit(TimeMs now);
  /// Replayable-randomness variant: the caller supplies the coin (the sim
  /// passes rng.uniform() so its event stream stays bit-reproducible).
  bool should_admit(TimeMs now, double coin);

  /// Outcome bookkeeping, called once per offered query.
  void count_admitted();
  void count_rejected();

  std::uint64_t queries_admitted() const { return queries_admitted_; }
  std::uint64_t queries_rejected() const { return queries_rejected_; }
  std::uint64_t queries_completed() const { return queries_completed_; }

  /// Current admission-window miss ratio (0 when admission is disabled).
  double admission_miss_ratio(TimeMs now);

  // --- Placement ----------------------------------------------------------

  /// Picks `count` servers from `candidates` under the configured placement
  /// policy, drawing randomness from the control plane's Rng (see
  /// core/placement/policy.h for the per-policy contracts; the default
  /// least_loaded is bit-identical to the former hardcoded pick). `cls` and
  /// `now` feed the tail-risk policy's budget hint and staleness accounting;
  /// the other policies ignore them.
  std::vector<ServerId> place(std::vector<PlacementCandidate> candidates,
                              std::size_t count, ClassId cls = 0,
                              TimeMs now = 0.0);

  PlacementPolicyKind placement_kind() const {
    return placement_policy_->kind();
  }
  const PlacementStats& placement_stats() const { return placement_stats_; }

  /// Whether this plane tracks per-server slack histograms (tail_risk only).
  bool slack_tracking_enabled() const { return slack_ != nullptr; }

  /// Merges one remote slack observation (a peer shard's enqueue, shipped
  /// via delta-sync) into `server`'s slack histogram. No-op unless slack
  /// tracking is enabled.
  void observe_slack(ServerId server, double slack_ms, TimeMs now) {
    if (slack_) slack_->record_enqueue(server, slack_ms, now);
  }

  /// The slack tracker, or nullptr outside tail_risk (tests/benches).
  const SlackTracker* slack_tracker() const { return slack_.get(); }

  // --- Deadlines & query lifecycle ---------------------------------------

  /// Eq. 6 budget T_b = x_p^SLO - x_p^u for class `cls` fanning out to
  /// exactly `servers`.
  TimeMs budget(ClassId cls, std::span<const ServerId> servers);

  /// Admits one query into the pipeline: computes its budget (Eq. 6, or
  /// `budget_override` for Eq. 7 request decomposition), the shared t_D and
  /// the policy ordering key, and registers it with the tracker. For kTEdf,
  /// `order_slo_ms` overrides the class SLO in the ordering key (request
  /// mode judges ordering by the request-level SLO).
  QueryPlan begin_query(TimeMs t0, ClassId cls,
                        std::span<const ServerId> servers,
                        std::optional<TimeMs> budget_override = std::nullopt,
                        std::optional<TimeMs> order_slo_ms = std::nullopt);

  /// State of an in-flight query (alive until its last complete_task).
  /// Inline: this and the two calls below run once (or kf times) per task in
  /// every backend's hot loop, and the whole facade -> plane -> tracker ->
  /// slab chain must flatten into the caller.
  const QueryState& query_state(QueryId id) const { return tracker_.state(id); }

  /// Merges one task result; returns true when the query is complete (and
  /// bumps the per-class completion tally). `finished` (if non-null)
  /// receives the final state before erase.
  bool complete_task(QueryId id, QueryState* finished = nullptr) {
    QueryState local;
    QueryState* out = finished ? finished : &local;
    const bool last = tracker_.complete_task(id, out);
    if (last) {
      ++queries_completed_;
      ++per_class_[out->cls].queries_completed;
    }
    return last;
  }

  /// Records one task dequeue for admission + per-class miss accounting;
  /// `missed` is whether the dequeue happened past the query's t_D.
  void record_task_dequeue(TimeMs now, ClassId cls, bool missed) {
    ClassAccounting& acct = per_class_[cls];
    ++acct.tasks_recorded;
    if (missed) ++acct.tasks_missed;
    if (admission_) admission_->record_task_dequeue(now, missed);
  }

  /// Capacity hint: `queries` expected begin_query calls this plane will see
  /// and `in_flight` a bound on simultaneously live queries. Purely an
  /// allocation pre-size — behaviour is identical without it.
  void reserve_queries(std::size_t queries, std::size_t in_flight) {
    tracker_.reserve(queries, in_flight);
  }

  /// Merges a remote shard's dequeue delta (`recorded` tasks, `missed` of
  /// them late) into the admission window only. Per-class tallies stay
  /// local-only: each shard's SimResult/serve metrics must count every task
  /// exactly once globally, while the admission signal deliberately reflects
  /// the merged cluster-wide miss ratio.
  void absorb_remote_dequeues(TimeMs now, std::uint64_t recorded,
                              std::uint64_t missed);

  /// §III.B.2 online updating: one observed post-queuing time for `server`.
  void observe_post_queuing(ServerId server, TimeMs post_queuing_ms);

  // --- Introspection ------------------------------------------------------

  Policy policy() const { return options_.policy; }
  std::size_t num_classes() const { return options_.classes.size(); }
  const ClassSpec& class_spec(ClassId cls) const;
  const ClassAccounting& class_accounting(ClassId cls) const;

  /// Tasks recorded / missed across all classes, and their ratio.
  std::uint64_t tasks_recorded() const;
  std::uint64_t tasks_missed() const;
  double task_miss_ratio() const;

  std::size_t in_flight() const { return tracker_.in_flight(); }
  std::uint64_t queries_started() const { return tracker_.started(); }
  const CdfModel& model_of(ServerId server) const;

 private:
  ControlPlaneOptions options_;
  DeadlineEstimator estimator_;
  QueryTracker tracker_;
  std::optional<AdmissionController> admission_;
  Rng rng_;
  std::unique_ptr<PlacementPolicy> placement_policy_;
  /// Allocated only under tail_risk; nullptr keeps the default path free of
  /// per-enqueue histogram work.
  std::unique_ptr<SlackTracker> slack_;
  PlacementStats placement_stats_;
  std::vector<ServerId> budget_hint_servers_;  // place() scratch
  std::vector<ClassAccounting> per_class_;
  std::uint64_t queries_admitted_ = 0;
  std::uint64_t queries_rejected_ = 0;
  std::uint64_t queries_completed_ = 0;
};

}  // namespace tailguard
