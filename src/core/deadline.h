// Task queuing deadline estimation (paper §III.B) — the heart of TailGuard.
//
// For a query of class c (SLO x_p^SLO) with fanout kf arriving at t_0 and
// fanning out to a known server set, the task pre-dequeuing time budget and
// the task queuing deadline are
//
//   T_b = x_p^SLO - x_p^u(kf)      and      t_D = t_0 + T_b        (Eq. 6)
//
// where x_p^u is the unloaded p-th percentile query latency from the
// order-statistics engine. The estimator owns one CdfModel per task server
// (servers sharing a model form a homogeneous *group*, which is both the
// paper's deployment assumption and what makes caching effective), performs
// the offline seeding and online updating of §III.B.2 through those models,
// and memoises x_p^u per (class, group-composition).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/order_stats.h"

namespace tailguard {

class DeadlineEstimator {
 public:
  /// One model per server; servers may share a model (shared_ptr identity
  /// defines the homogeneous groups).
  explicit DeadlineEstimator(
      std::vector<std::shared_ptr<CdfModel>> server_models);

  /// Convenience: `n_servers` servers all sharing `model` — the paper's
  /// homogeneous-cluster configuration.
  static DeadlineEstimator homogeneous(std::shared_ptr<CdfModel> model,
                                       std::size_t n_servers);

  /// Registers a service class; returns its id (dense, starting at 0).
  ClassId add_class(ClassSpec spec);

  std::size_t num_classes() const { return classes_.size(); }
  std::size_t num_servers() const { return server_group_.size(); }
  const ClassSpec& class_spec(ClassId cls) const;

  /// Unloaded p-th percentile query latency x_p^u for a query of class `cls`
  /// that fans out to exactly `servers` (Eqs. 1-2; memoised).
  TimeMs unloaded_query_quantile(ClassId cls, std::span<const ServerId> servers);

  /// Homogeneous fast path: x_p^u(kf) when all servers share one model.
  /// Only valid for single-group estimators.
  TimeMs unloaded_query_quantile(ClassId cls, std::uint32_t fanout);

  /// Task pre-dequeuing time budget T_b = x_p^SLO - x_p^u. May be negative
  /// when the SLO is tighter than the unloaded tail itself — such tasks sort
  /// ahead of everything (they are already late on arrival).
  TimeMs budget(ClassId cls, std::span<const ServerId> servers);

  /// TailGuard task queuing deadline t_D = t_0 + T_b (Eq. 6).
  TimeMs deadline(TimeMs t0, ClassId cls, std::span<const ServerId> servers);

  /// T-EDFQ deadline: t_0 + x_p^SLO — SLO-aware but fanout-unaware (§III.A).
  TimeMs slo_deadline(TimeMs t0, ClassId cls) const;

  /// Online updating process: feeds one observed post-queuing time into the
  /// model of `server`. Quantile caches invalidate automatically when the
  /// model's version advances.
  void observe_post_queuing(ServerId server, TimeMs t);

  const CdfModel& model_of(ServerId server) const;
  std::size_t num_groups() const { return models_.size(); }

 private:
  std::vector<std::shared_ptr<CdfModel>> models_;  // one per group
  std::vector<std::uint32_t> server_group_;        // server -> group index
  std::vector<ClassSpec> classes_;
  UnloadedQuantileCache cache_;
  // Direct-mapped memo for the homogeneous (class, fanout) lookup — one
  // slot per (class, fanout <= num_servers) pair, tagged with the model
  // version it was computed at. This path runs once per query in the
  // homogeneous configurations, where it replaces a hash probe with an
  // indexed load. Entries with a stale tag recompute lazily, exactly like
  // the hash cache's invalidate-on-version-change.
  std::vector<std::uint64_t> flat_tags_;  // version_sum_ + 1, 0 = empty
  std::vector<TimeMs> flat_vals_;
  /// Running Σ model version, maintained by observe_post_queuing — every
  /// model mutation goes through that method, so cache invalidation never
  /// needs the O(#groups) recompute on the lookup path.
  std::uint64_t version_sum_ = 0;
  // Scratch arena reused across calls to avoid per-query allocation: only
  // the entries of group_counts_ listed in touched_groups_ are non-zero
  // during a lookup, and only those are reset afterwards.
  std::vector<std::uint32_t> group_counts_;
  std::vector<std::uint32_t> touched_groups_;
  std::vector<const CdfModel*> models_scratch_;
  std::vector<std::uint32_t> counts_scratch_;
};

}  // namespace tailguard
