// Task queue disciplines (paper §III.A).
//
// All four evaluated policies — FIFO, PRIQ, T-EDFQ and TF-EDFQ (TailGuard) —
// are expressed as implementations of one TaskQueue interface; the simulator
// and the threaded runtime are policy-agnostic. The two EDF variants share
// EdfTaskQueue and differ only in how the caller computes `deadline` (see
// DeadlineEstimator::deadline vs ::slo_deadline).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "core/types.h"

namespace tailguard {

/// A task waiting in a server's queue.
struct QueuedTask {
  TaskId task = 0;
  QueryId query = 0;
  ClassId cls = 0;
  TimeMs enqueue_time = 0.0;
  /// Queuing deadline t_D. FIFO and PRIQ ignore it for ordering but it is
  /// still carried so deadline-miss statistics are policy-comparable.
  TimeMs deadline = 0.0;
  /// Assigned by the queue on push; breaks EDF ties in FIFO order.
  std::uint64_t seq = 0;
  /// Optional service-demand annotation. The simulator pre-samples task
  /// service times at query arrival so that all policies process identical
  /// task sequences (common random numbers); queues never inspect it.
  TimeMs service_time = 0.0;
};

class TaskQueue {
 public:
  virtual ~TaskQueue() = default;

  virtual void push(QueuedTask task) = 0;

  /// Removes and returns the next task. Precondition: !empty().
  virtual QueuedTask pop() = 0;

  /// The task pop() would return. Precondition: !empty().
  virtual const QueuedTask& peek() const = 0;

  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }

  virtual Policy policy() const = 0;
};

/// First-in-first-out.
class FifoTaskQueue final : public TaskQueue {
 public:
  void push(QueuedTask task) override;
  QueuedTask pop() override;
  const QueuedTask& peek() const override;
  std::size_t size() const override { return queue_.size(); }
  Policy policy() const override { return Policy::kFifo; }

 private:
  std::deque<QueuedTask> queue_;
  std::uint64_t next_seq_ = 0;
};

/// Strict priority across classes (class 0 highest), FIFO within a class.
class ClassPriorityTaskQueue final : public TaskQueue {
 public:
  explicit ClassPriorityTaskQueue(std::size_t num_classes);
  void push(QueuedTask task) override;
  QueuedTask pop() override;
  const QueuedTask& peek() const override;
  std::size_t size() const override { return size_; }
  Policy policy() const override { return Policy::kPriq; }

 private:
  std::size_t first_nonempty() const;

  std::vector<std::deque<QueuedTask>> per_class_;
  /// Occupancy bitmask, one bit per class (64 classes per word): bit set
  /// iff the class deque is non-empty, so first_nonempty() is a
  /// countr_zero instead of a linear scan over the class deques.
  std::vector<std::uint64_t> occupancy_;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// Earliest-deadline-first with FIFO tie-breaking; used by both T-EDFQ and
/// TF-EDFQ depending on how the caller derives `deadline`.
///
/// Backed by a raw vector driven with std::push_heap/std::pop_heap rather
/// than std::priority_queue: priority_queue::top() returns a const
/// reference, which forces pop() to *copy* the head before popping, while
/// pop_heap lets the head be moved out of the backing vector.
class EdfTaskQueue final : public TaskQueue {
 public:
  /// `reported_policy` must be kTEdf or kTfEdf.
  explicit EdfTaskQueue(Policy reported_policy);
  void push(QueuedTask task) override;
  QueuedTask pop() override;
  const QueuedTask& peek() const override;
  std::size_t size() const override { return heap_.size(); }
  Policy policy() const override { return reported_policy_; }

 private:
  struct Later {
    bool operator()(const QueuedTask& a, const QueuedTask& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  std::vector<QueuedTask> heap_;  // min-heap on (deadline, seq) via Later
  Policy reported_policy_;
  std::uint64_t next_seq_ = 0;
};

/// Builds the queue discipline for `policy`. `num_classes` is only consulted
/// by PRIQ.
std::unique_ptr<TaskQueue> make_task_queue(Policy policy,
                                           std::size_t num_classes = 1);

}  // namespace tailguard
