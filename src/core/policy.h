// Task queue disciplines (paper §III.A).
//
// All four evaluated policies — FIFO, PRIQ, T-EDFQ and TF-EDFQ (TailGuard) —
// are expressed as implementations of one TaskQueue interface; the simulator
// and the threaded runtime are policy-agnostic. The two EDF variants share
// EdfTaskQueue and differ only in how the caller computes `deadline` (see
// DeadlineEstimator::deadline vs ::slo_deadline).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "common/timer_wheel.h"
#include "core/types.h"

namespace tailguard {

/// A task waiting in a server's queue.
struct QueuedTask {
  TaskId task = 0;
  QueryId query = 0;
  ClassId cls = 0;
  TimeMs enqueue_time = 0.0;
  /// Queuing deadline t_D. FIFO and PRIQ ignore it for ordering but it is
  /// still carried so deadline-miss statistics are policy-comparable.
  TimeMs deadline = 0.0;
  /// Assigned by the queue on push; breaks EDF ties in FIFO order.
  std::uint64_t seq = 0;
  /// Optional service-demand annotation. The simulator pre-samples task
  /// service times at query arrival so that all policies process identical
  /// task sequences (common random numbers); queues never inspect it.
  TimeMs service_time = 0.0;
};

class TaskQueue {
 public:
  virtual ~TaskQueue() = default;

  /// Enqueues a copy of `task`; the queue assigns `seq` on its copy. Taking
  /// a reference (not a by-value parameter) keeps the hot submit path to one
  /// 48-byte copy — straight into the backing container.
  virtual void push(const QueuedTask& task) = 0;

  /// Removes and returns the next task. Precondition: !empty().
  virtual QueuedTask pop() = 0;

  /// The task pop() would return. Precondition: !empty().
  virtual const QueuedTask& peek() const = 0;

  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }

  virtual Policy policy() const = 0;
};

/// First-in-first-out.
class FifoTaskQueue final : public TaskQueue {
 public:
  void push(const QueuedTask& task) override;
  QueuedTask pop() override;
  const QueuedTask& peek() const override;
  std::size_t size() const override { return queue_.size(); }
  Policy policy() const override { return Policy::kFifo; }

 private:
  std::deque<QueuedTask> queue_;
  std::uint64_t next_seq_ = 0;
};

/// Strict priority across classes (class 0 highest), FIFO within a class.
class ClassPriorityTaskQueue final : public TaskQueue {
 public:
  explicit ClassPriorityTaskQueue(std::size_t num_classes);
  void push(const QueuedTask& task) override;
  QueuedTask pop() override;
  const QueuedTask& peek() const override;
  std::size_t size() const override { return size_; }
  Policy policy() const override { return Policy::kPriq; }

 private:
  std::size_t first_nonempty() const;

  std::vector<std::deque<QueuedTask>> per_class_;
  /// Occupancy bitmask, one bit per class (64 classes per word): bit set
  /// iff the class deque is non-empty, so first_nonempty() is a
  /// countr_zero instead of a linear scan over the class deques.
  std::vector<std::uint64_t> occupancy_;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// Earliest-deadline-first with FIFO tie-breaking; used by both T-EDFQ and
/// TF-EDFQ depending on how the caller derives `deadline`.
///
/// Backed by a raw vector driven with std::push_heap/std::pop_heap rather
/// than std::priority_queue: priority_queue::top() returns a const
/// reference, which forces pop() to *copy* the head before popping, while
/// pop_heap lets the head be moved out of the backing vector.
class EdfTaskQueue final : public TaskQueue {
 public:
  /// `reported_policy` must be kTEdf or kTfEdf.
  explicit EdfTaskQueue(Policy reported_policy);
  void push(const QueuedTask& task) override;
  QueuedTask pop() override;
  const QueuedTask& peek() const override;
  std::size_t size() const override { return heap_.size(); }
  Policy policy() const override { return reported_policy_; }

 private:
  struct Later {
    bool operator()(const QueuedTask& a, const QueuedTask& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };

  std::vector<QueuedTask> heap_;  // min-heap on (deadline, seq) via Later
  Policy reported_policy_;
  std::uint64_t next_seq_ = 0;
};

/// Earliest-deadline-first on a hierarchical timer wheel (calendar queue):
/// O(1) amortized push/pop instead of the binary heap's O(log n), with pop
/// order *bit-identical* to EdfTaskQueue — same (deadline, seq) total order,
/// so swapping implementations cannot change any schedule (see
/// common/timer_wheel.h for how exactness survives bucketing).
class TimerWheelEdfQueue final : public TaskQueue {
 public:
  /// Default tick: 1/4 ms. SLO-scale deadlines (tens of ms) then spread over
  /// a few hundred level-0/1 slots, keeping slot heaps near-singleton.
  static constexpr double kDefaultTickMs = 0.25;

  /// Below this depth the queue is a sorted array, not the wheel. A wheel
  /// push touches a different slot (a different cache line) per deadline
  /// tick, so at the near-empty depths a well-provisioned server runs at,
  /// the wheel pays a cold miss per operation where a tiny sorted window is
  /// one hot line. Deadlines arrive roughly in order, so the common insert
  /// is an append; pop is an index bump. The array spills wholesale into
  /// the wheel when a backlog forms and resumes only once the wheel drains,
  /// so at any instant exactly one of the two holds the queue and the merged
  /// pop order stays the exact (deadline, seq) order.
  static constexpr std::size_t kSpillDepth = 32;

  /// `reported_policy` must be kTEdf or kTfEdf.
  explicit TimerWheelEdfQueue(Policy reported_policy,
                              double tick_ms = kDefaultTickMs);
  void push(const QueuedTask& task) override;
  QueuedTask pop() override;
  const QueuedTask& peek() const override;
  std::size_t size() const override {
    return (wheel_ ? wheel_->size() : 0) + (array_.size() - head_);
  }
  Policy policy() const override { return reported_policy_; }

 private:
  struct ExactLess {
    bool operator()(const QueuedTask& a, const QueuedTask& b) const {
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      return a.seq < b.seq;
    }
  };
  struct DeadlineKey {
    double operator()(const QueuedTask& t) const { return t.deadline; }
  };
  using Wheel = TimerWheel<QueuedTask, ExactLess, DeadlineKey>;

  bool wheel_live() const { return wheel_ != nullptr && !wheel_->empty(); }

  // The wheel is built on first spill: a server that never backlogs past
  // kSpillDepth never pays for the slot arrays (or their teardown).
  std::unique_ptr<Wheel> wheel_;
  std::vector<QueuedTask> array_;  ///< ascending (deadline, seq), shallow mode
  std::size_t head_ = 0;           ///< first live element of array_
  double tick_ms_;
  Policy reported_policy_;
  std::uint64_t next_seq_ = 0;
};

/// Which concrete structure backs the EDF policies: the binary heap
/// (EdfTaskQueue) or the timer wheel (TimerWheelEdfQueue). The two are
/// pop-order-identical; the knob exists so benches can A/B them and so a
/// regression can be bisected from the command line via TAILGUARD_EDF_IMPL.
enum class EdfQueueImpl {
  kDefault,     ///< TAILGUARD_EDF_IMPL env override, else the timer wheel
  kBinaryHeap,  ///< EdfTaskQueue
  kTimerWheel,  ///< TimerWheelEdfQueue
};

/// Resolves kDefault against the TAILGUARD_EDF_IMPL environment variable
/// ("heap" or "wheel"); explicit values pass through unchanged.
EdfQueueImpl resolve_edf_queue_impl(EdfQueueImpl impl);

/// Builds the queue discipline for `policy`. `num_classes` is only consulted
/// by PRIQ; `edf_impl` only by the EDF policies.
std::unique_ptr<TaskQueue> make_task_queue(
    Policy policy, std::size_t num_classes = 1,
    EdfQueueImpl edf_impl = EdfQueueImpl::kDefault);

}  // namespace tailguard
