#include "core/request.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "core/order_stats.h"

namespace tailguard {

TimeMs estimate_request_unloaded_quantile(
    std::span<const RequestQuerySpec> queries, double prob, Rng& rng,
    std::size_t samples) {
  TG_CHECK_MSG(!queries.empty(), "request needs at least one query");
  TG_CHECK_MSG(prob > 0.0 && prob < 1.0, "prob must be in (0,1)");
  TG_CHECK_MSG(samples >= 100, "too few Monte Carlo samples");
  for (const auto& q : queries) {
    TG_CHECK_MSG(q.model != nullptr, "null model in request query");
    TG_CHECK_MSG(q.fanout >= 1, "fanout must be at least 1");
  }

  std::vector<double> sums(samples, 0.0);
  for (const auto& q : queries) {
    const double inv_kf = 1.0 / static_cast<double>(q.fanout);
    for (std::size_t s = 0; s < samples; ++s) {
      // Unloaded query latency: max of kf i.i.d. draws, sampled exactly via
      // U^(1/kf) (the CDF of the max of kf uniforms).
      const double u = std::pow(rng.uniform_pos(), inv_kf);
      sums[s] += q.model->quantile(u);
    }
  }
  return percentile(sums, prob * 100.0);
}

std::vector<TimeMs> split_request_budget(
    TimeMs total_budget_ms, std::span<const RequestQuerySpec> queries,
    double prob, BudgetSplit split) {
  TG_CHECK_MSG(!queries.empty(), "request needs at least one query");
  const auto m = queries.size();
  std::vector<TimeMs> budgets(m, 0.0);
  switch (split) {
    case BudgetSplit::kEqual: {
      const TimeMs share = total_budget_ms / static_cast<double>(m);
      std::fill(budgets.begin(), budgets.end(), share);
      break;
    }
    case BudgetSplit::kProportionalToUnloaded: {
      std::vector<double> weights(m, 0.0);
      double total_weight = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        TG_CHECK_MSG(queries[i].model != nullptr, "null model");
        weights[i] = homogeneous_unloaded_quantile(*queries[i].model,
                                                   queries[i].fanout, prob);
        TG_CHECK_MSG(weights[i] >= 0.0, "negative unloaded quantile");
        total_weight += weights[i];
      }
      if (total_weight <= 0.0) {
        // Degenerate: fall back to equal split.
        const TimeMs share = total_budget_ms / static_cast<double>(m);
        std::fill(budgets.begin(), budgets.end(), share);
      } else {
        for (std::size_t i = 0; i < m; ++i)
          budgets[i] = total_budget_ms * weights[i] / total_weight;
      }
      break;
    }
  }
  return budgets;
}

}  // namespace tailguard
