#include "core/policy.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace tailguard {

// -------------------------------------------------------------------- FIFO

void FifoTaskQueue::push(const QueuedTask& task) {
  queue_.push_back(task);
  queue_.back().seq = next_seq_++;
}

QueuedTask FifoTaskQueue::pop() {
  TG_CHECK_MSG(!queue_.empty(), "pop from empty FIFO queue");
  QueuedTask t = queue_.front();
  queue_.pop_front();
  return t;
}

const QueuedTask& FifoTaskQueue::peek() const {
  TG_CHECK_MSG(!queue_.empty(), "peek into empty FIFO queue");
  return queue_.front();
}

// -------------------------------------------------------------------- PRIQ

ClassPriorityTaskQueue::ClassPriorityTaskQueue(std::size_t num_classes)
    : per_class_(num_classes), occupancy_((num_classes + 63) / 64, 0) {
  TG_CHECK_MSG(num_classes >= 1, "PRIQ needs at least one class");
}

void ClassPriorityTaskQueue::push(const QueuedTask& task) {
  TG_CHECK_MSG(task.cls < per_class_.size(),
               "task class " << task.cls << " out of range");
  per_class_[task.cls].push_back(task);
  per_class_[task.cls].back().seq = next_seq_++;
  occupancy_[task.cls / 64] |= std::uint64_t{1} << (task.cls % 64);
  ++size_;
}

std::size_t ClassPriorityTaskQueue::first_nonempty() const {
  for (std::size_t w = 0; w < occupancy_.size(); ++w) {
    if (occupancy_[w] != 0)
      return w * 64 + static_cast<std::size_t>(std::countr_zero(occupancy_[w]));
  }
  TG_CHECK_MSG(false, "pop/peek on empty PRIQ queue");
  return 0;
}

QueuedTask ClassPriorityTaskQueue::pop() {
  const std::size_t c = first_nonempty();
  QueuedTask t = per_class_[c].front();
  per_class_[c].pop_front();
  if (per_class_[c].empty())
    occupancy_[c / 64] &= ~(std::uint64_t{1} << (c % 64));
  --size_;
  return t;
}

const QueuedTask& ClassPriorityTaskQueue::peek() const {
  return per_class_[first_nonempty()].front();
}

// --------------------------------------------------------------------- EDF

EdfTaskQueue::EdfTaskQueue(Policy reported_policy)
    : reported_policy_(reported_policy) {
  TG_CHECK_MSG(
      reported_policy == Policy::kTEdf || reported_policy == Policy::kTfEdf,
      "EdfTaskQueue reports only the EDF policies");
}

void EdfTaskQueue::push(const QueuedTask& task) {
  heap_.push_back(task);
  heap_.back().seq = next_seq_++;
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

QueuedTask EdfTaskQueue::pop() {
  TG_CHECK_MSG(!heap_.empty(), "pop from empty EDF queue");
  // pop_heap rotates the head to the back, where it can be moved out —
  // no copy of the popped task, unlike priority_queue::top().
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  QueuedTask t = std::move(heap_.back());
  heap_.pop_back();
  return t;
}

const QueuedTask& EdfTaskQueue::peek() const {
  TG_CHECK_MSG(!heap_.empty(), "peek into empty EDF queue");
  return heap_.front();
}

// -------------------------------------------------------- EDF, timer wheel

TimerWheelEdfQueue::TimerWheelEdfQueue(Policy reported_policy, double tick_ms)
    : tick_ms_(tick_ms), reported_policy_(reported_policy) {
  TG_CHECK_MSG(tick_ms > 0.0, "timer wheel tick must be positive");
  TG_CHECK_MSG(
      reported_policy == Policy::kTEdf || reported_policy == Policy::kTfEdf,
      "TimerWheelEdfQueue reports only the EDF policies");
}

void TimerWheelEdfQueue::push(const QueuedTask& incoming) {
  const std::uint64_t seq = next_seq_++;
  if (wheel_live()) {
    // Backlogged: the array already spilled; keep filing into the wheel
    // until it drains so only one structure is ever live.
    QueuedTask task = incoming;
    task.seq = seq;
    wheel_->push(std::move(task));
    return;
  }
  // Append path: `incoming` outranks the tail iff its deadline is >= —
  // ExactLess falls through to seq on ties and the fresh seq is the maximum.
  // Copies straight into the vector, no staging copy.
  if (array_.size() == head_ ||
      (array_.size() - head_ < kSpillDepth &&
       array_.back().deadline <= incoming.deadline)) {
    array_.push_back(incoming);
    array_.back().seq = seq;
    return;
  }
  QueuedTask task = incoming;
  task.seq = seq;
  if (array_.size() - head_ >= kSpillDepth) {
    if (wheel_ == nullptr) wheel_ = std::make_unique<Wheel>(tick_ms_);
    for (std::size_t i = head_; i < array_.size(); ++i)
      wheel_->push(std::move(array_[i]));
    array_.clear();
    head_ = 0;
    wheel_->push(std::move(task));
    return;
  }
  const auto pos = std::upper_bound(array_.begin() + head_, array_.end(),
                                    task, ExactLess{});
  array_.insert(pos, std::move(task));
}

QueuedTask TimerWheelEdfQueue::pop() {
  TG_CHECK_MSG(size() > 0, "pop from empty EDF queue");
  if (wheel_live()) return wheel_->pop();
  QueuedTask out = std::move(array_[head_++]);
  if (head_ == array_.size()) {
    array_.clear();
    head_ = 0;
  } else if (head_ >= 2 * kSpillDepth) {
    // Bound the consumed prefix so steady push/pop traffic cannot grow the
    // vector without limit; the live window is at most kSpillDepth items.
    array_.erase(array_.begin(), array_.begin() + head_);
    head_ = 0;
  }
  return out;
}

const QueuedTask& TimerWheelEdfQueue::peek() const {
  TG_CHECK_MSG(size() > 0, "peek into empty EDF queue");
  return wheel_live() ? wheel_->peek() : array_[head_];
}

// ----------------------------------------------------------------- factory

EdfQueueImpl resolve_edf_queue_impl(EdfQueueImpl impl) {
  if (impl != EdfQueueImpl::kDefault) return impl;
  if (const char* env = std::getenv("TAILGUARD_EDF_IMPL")) {
    if (std::strcmp(env, "heap") == 0) return EdfQueueImpl::kBinaryHeap;
    TG_CHECK_MSG(std::strcmp(env, "wheel") == 0,
                 "TAILGUARD_EDF_IMPL must be 'heap' or 'wheel', got '"
                     << env << "'");
  }
  return EdfQueueImpl::kTimerWheel;
}

std::unique_ptr<TaskQueue> make_task_queue(Policy policy,
                                           std::size_t num_classes,
                                           EdfQueueImpl edf_impl) {
  switch (policy) {
    case Policy::kFifo:
      return std::make_unique<FifoTaskQueue>();
    case Policy::kPriq:
      return std::make_unique<ClassPriorityTaskQueue>(num_classes);
    case Policy::kTEdf:
    case Policy::kTfEdf:
      if (resolve_edf_queue_impl(edf_impl) == EdfQueueImpl::kBinaryHeap)
        return std::make_unique<EdfTaskQueue>(policy);
      return std::make_unique<TimerWheelEdfQueue>(policy);
  }
  TG_CHECK_MSG(false, "unknown policy");
  return nullptr;
}

}  // namespace tailguard
