#include "core/policy.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace tailguard {

// -------------------------------------------------------------------- FIFO

void FifoTaskQueue::push(QueuedTask task) {
  task.seq = next_seq_++;
  queue_.push_back(task);
}

QueuedTask FifoTaskQueue::pop() {
  TG_CHECK_MSG(!queue_.empty(), "pop from empty FIFO queue");
  QueuedTask t = queue_.front();
  queue_.pop_front();
  return t;
}

const QueuedTask& FifoTaskQueue::peek() const {
  TG_CHECK_MSG(!queue_.empty(), "peek into empty FIFO queue");
  return queue_.front();
}

// -------------------------------------------------------------------- PRIQ

ClassPriorityTaskQueue::ClassPriorityTaskQueue(std::size_t num_classes)
    : per_class_(num_classes), occupancy_((num_classes + 63) / 64, 0) {
  TG_CHECK_MSG(num_classes >= 1, "PRIQ needs at least one class");
}

void ClassPriorityTaskQueue::push(QueuedTask task) {
  TG_CHECK_MSG(task.cls < per_class_.size(),
               "task class " << task.cls << " out of range");
  task.seq = next_seq_++;
  per_class_[task.cls].push_back(task);
  occupancy_[task.cls / 64] |= std::uint64_t{1} << (task.cls % 64);
  ++size_;
}

std::size_t ClassPriorityTaskQueue::first_nonempty() const {
  for (std::size_t w = 0; w < occupancy_.size(); ++w) {
    if (occupancy_[w] != 0)
      return w * 64 + static_cast<std::size_t>(std::countr_zero(occupancy_[w]));
  }
  TG_CHECK_MSG(false, "pop/peek on empty PRIQ queue");
  return 0;
}

QueuedTask ClassPriorityTaskQueue::pop() {
  const std::size_t c = first_nonempty();
  QueuedTask t = per_class_[c].front();
  per_class_[c].pop_front();
  if (per_class_[c].empty())
    occupancy_[c / 64] &= ~(std::uint64_t{1} << (c % 64));
  --size_;
  return t;
}

const QueuedTask& ClassPriorityTaskQueue::peek() const {
  return per_class_[first_nonempty()].front();
}

// --------------------------------------------------------------------- EDF

EdfTaskQueue::EdfTaskQueue(Policy reported_policy)
    : reported_policy_(reported_policy) {
  TG_CHECK_MSG(
      reported_policy == Policy::kTEdf || reported_policy == Policy::kTfEdf,
      "EdfTaskQueue reports only the EDF policies");
}

void EdfTaskQueue::push(QueuedTask task) {
  task.seq = next_seq_++;
  heap_.push_back(task);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

QueuedTask EdfTaskQueue::pop() {
  TG_CHECK_MSG(!heap_.empty(), "pop from empty EDF queue");
  // pop_heap rotates the head to the back, where it can be moved out —
  // no copy of the popped task, unlike priority_queue::top().
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  QueuedTask t = std::move(heap_.back());
  heap_.pop_back();
  return t;
}

const QueuedTask& EdfTaskQueue::peek() const {
  TG_CHECK_MSG(!heap_.empty(), "peek into empty EDF queue");
  return heap_.front();
}

// ----------------------------------------------------------------- factory

std::unique_ptr<TaskQueue> make_task_queue(Policy policy,
                                           std::size_t num_classes) {
  switch (policy) {
    case Policy::kFifo:
      return std::make_unique<FifoTaskQueue>();
    case Policy::kPriq:
      return std::make_unique<ClassPriorityTaskQueue>(num_classes);
    case Policy::kTEdf:
    case Policy::kTfEdf:
      return std::make_unique<EdfTaskQueue>(policy);
  }
  TG_CHECK_MSG(false, "unknown policy");
  return nullptr;
}

}  // namespace tailguard
