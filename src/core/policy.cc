#include "core/policy.h"

#include "common/check.h"

namespace tailguard {

// -------------------------------------------------------------------- FIFO

void FifoTaskQueue::push(QueuedTask task) {
  task.seq = next_seq_++;
  queue_.push_back(task);
}

QueuedTask FifoTaskQueue::pop() {
  TG_CHECK_MSG(!queue_.empty(), "pop from empty FIFO queue");
  QueuedTask t = queue_.front();
  queue_.pop_front();
  return t;
}

const QueuedTask& FifoTaskQueue::peek() const {
  TG_CHECK_MSG(!queue_.empty(), "peek into empty FIFO queue");
  return queue_.front();
}

// -------------------------------------------------------------------- PRIQ

ClassPriorityTaskQueue::ClassPriorityTaskQueue(std::size_t num_classes)
    : per_class_(num_classes) {
  TG_CHECK_MSG(num_classes >= 1, "PRIQ needs at least one class");
}

void ClassPriorityTaskQueue::push(QueuedTask task) {
  TG_CHECK_MSG(task.cls < per_class_.size(),
               "task class " << task.cls << " out of range");
  task.seq = next_seq_++;
  per_class_[task.cls].push_back(task);
  ++size_;
}

std::size_t ClassPriorityTaskQueue::first_nonempty() const {
  for (std::size_t c = 0; c < per_class_.size(); ++c)
    if (!per_class_[c].empty()) return c;
  TG_CHECK_MSG(false, "pop/peek on empty PRIQ queue");
  return 0;
}

QueuedTask ClassPriorityTaskQueue::pop() {
  const std::size_t c = first_nonempty();
  QueuedTask t = per_class_[c].front();
  per_class_[c].pop_front();
  --size_;
  return t;
}

const QueuedTask& ClassPriorityTaskQueue::peek() const {
  return per_class_[first_nonempty()].front();
}

// --------------------------------------------------------------------- EDF

EdfTaskQueue::EdfTaskQueue(Policy reported_policy)
    : reported_policy_(reported_policy) {
  TG_CHECK_MSG(
      reported_policy == Policy::kTEdf || reported_policy == Policy::kTfEdf,
      "EdfTaskQueue reports only the EDF policies");
}

void EdfTaskQueue::push(QueuedTask task) {
  task.seq = next_seq_++;
  heap_.push(task);
}

QueuedTask EdfTaskQueue::pop() {
  TG_CHECK_MSG(!heap_.empty(), "pop from empty EDF queue");
  QueuedTask t = heap_.top();
  heap_.pop();
  return t;
}

const QueuedTask& EdfTaskQueue::peek() const {
  TG_CHECK_MSG(!heap_.empty(), "peek into empty EDF queue");
  return heap_.top();
}

// ----------------------------------------------------------------- factory

std::unique_ptr<TaskQueue> make_task_queue(Policy policy,
                                           std::size_t num_classes) {
  switch (policy) {
    case Policy::kFifo:
      return std::make_unique<FifoTaskQueue>();
    case Policy::kPriq:
      return std::make_unique<ClassPriorityTaskQueue>(num_classes);
    case Policy::kTEdf:
    case Policy::kTfEdf:
      return std::make_unique<EdfTaskQueue>(policy);
  }
  TG_CHECK_MSG(false, "unknown policy");
  return nullptr;
}

}  // namespace tailguard
