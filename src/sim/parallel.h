// Parallel experiment engine.
//
// Every point of the paper's evaluation — a (workload, SLO, policy, load,
// seed) tuple — is one independent run_simulation() call, so the whole
// harness is embarrassingly parallel. This layer fans those calls out over
// the shared ThreadPool while keeping the *determinism contract*: a
// simulation's result is a pure function of its SimConfig, results are
// returned in submission order, and the speculative max-load search replays
// the serial bisection's decisions from results keyed by load — so the same
// seeds produce bit-identical metrics and max loads at any thread count
// (TAILGUARD_THREADS=1 and =64 agree).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "sim/experiment.h"
#include "sim/simulator.h"

namespace tailguard {

/// Runs every config through run_simulation() on `pool` (nullptr = shared
/// pool); results are indexed like `configs`.
std::vector<SimResult> run_simulations(std::span<const SimConfig> configs,
                                       ThreadPool* pool = nullptr);

/// Feasibility judgement for a max-load search; empty means the default
/// SimResult::all_slos_met(opt.slo_epsilon). Must be a pure function of the
/// result (it is called from pool threads).
using FeasiblePredicate = std::function<bool(const SimResult&)>;

/// One max-load search: the base config plus its search options.
struct MaxLoadJob {
  SimConfig config;
  MaxLoadOptions opt;
  FeasiblePredicate feasible;  ///< empty = all_slos_met(opt.slo_epsilon)
};

/// Speculative bisection for the maximum SLO-feasible load. Each round
/// evaluates the next `2^levels - 1` candidate midpoints of the bisection
/// tree concurrently, then replays the serial bisection's branch decisions
/// against the completed results — descending `levels` levels per round
/// instead of one, with a bit-identical final bracket. `levels == 0` picks a
/// depth from the pool size; `levels == 1` is the serial search (one
/// midpoint per round).
double find_max_load_speculative(const SimConfig& config,
                                 const MaxLoadOptions& opt = {},
                                 int levels = 0, ThreadPool* pool = nullptr,
                                 const FeasiblePredicate& feasible = {});

/// Runs a batch of max-load searches concurrently (each itself speculative);
/// results are indexed like `jobs`.
std::vector<double> find_max_loads(std::span<const MaxLoadJob> jobs,
                                   ThreadPool* pool = nullptr);

/// sweep_loads() over the pool: one simulation per load, all concurrent.
std::vector<LoadPoint> sweep_loads_parallel(const SimConfig& config,
                                            std::span<const double> loads,
                                            const MaxLoadOptions& opt = {},
                                            ThreadPool* pool = nullptr);

}  // namespace tailguard
