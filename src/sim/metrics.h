// Latency metrics grouped by (service class, query fanout).
//
// The paper's evaluation always reports per-type tail latency: meeting an
// SLO "as a whole" does not imply each query type meets it (§IV.B), so every
// experiment checks the p-th percentile for each (class, fanout) group.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.h"

namespace tailguard {

/// Accumulates raw latency samples for one group.
class LatencySample {
 public:
  void add(TimeMs latency_ms) { values_.push_back(latency_ms); }
  std::size_t count() const { return values_.size(); }
  TimeMs percentile(double pct) const;
  TimeMs mean() const;
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

struct GroupKey {
  ClassId cls = 0;
  std::uint32_t fanout = 0;

  friend bool operator==(const GroupKey&, const GroupKey&) = default;
};

struct GroupKeyHash {
  std::size_t operator()(const GroupKey& k) const {
    // Pack into 64 bits explicitly (std::size_t may be 32-bit, where a
    // << 32 on it would be undefined), then finalise with the SplitMix64
    // mixer so nearby (cls, fanout) pairs spread across buckets.
    std::uint64_t v =
        (static_cast<std::uint64_t>(k.cls) << 32) | k.fanout;
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    return static_cast<std::size_t>(v);
  }
};

class MetricsCollector {
 public:
  void record_query(ClassId cls, std::uint32_t fanout, TimeMs latency_ms);

  /// Task dequeue accounting for the deadline-miss ratio.
  void record_task_dequeue(bool missed_deadline) {
    ++tasks_dequeued_;
    if (missed_deadline) ++tasks_missed_;
  }

  std::uint64_t queries_recorded() const { return queries_; }
  std::uint64_t tasks_dequeued() const { return tasks_dequeued_; }
  double task_deadline_miss_ratio() const {
    return tasks_dequeued_ == 0 ? 0.0
                                : static_cast<double>(tasks_missed_) /
                                      static_cast<double>(tasks_dequeued_);
  }

  const std::unordered_map<GroupKey, LatencySample, GroupKeyHash>& groups()
      const {
    return groups_;
  }

 private:
  std::unordered_map<GroupKey, LatencySample, GroupKeyHash> groups_;
  std::uint64_t queries_ = 0;
  std::uint64_t tasks_dequeued_ = 0;
  std::uint64_t tasks_missed_ = 0;
};

}  // namespace tailguard
