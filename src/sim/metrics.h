// Latency metrics grouped by (service class, query fanout).
//
// The paper's evaluation always reports per-type tail latency: meeting an
// SLO "as a whole" does not imply each query type meets it (§IV.B), so every
// experiment checks the p-th percentile for each (class, fanout) group.
//
// A run produces only a handful of distinct (class, fanout) groups, so they
// live in a flat vector probed linearly — record_query runs once per query
// and a short scan over inline keys beats hashing into a node-based map.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.h"

namespace tailguard {

/// Accumulates raw latency samples for one group.
class LatencySample {
 public:
  void add(TimeMs latency_ms) { values_.push_back(latency_ms); }
  std::size_t count() const { return values_.size(); }
  TimeMs percentile(double pct) const;
  TimeMs mean() const;
  const std::vector<double>& values() const { return values_; }

  struct TailAndMean {
    TimeMs tail_ms = 0.0;
    TimeMs mean_ms = 0.0;
  };
  /// Both summary stats without copying the sample: the mean is computed
  /// first, over insertion order (floating-point summation is
  /// order-sensitive and the reported means are pinned to that order), then
  /// the percentile selects in place, permuting values_. Collection-time
  /// only — add() after this is fine, ordered reads of values() are not.
  TailAndMean tail_and_mean(double pct);

 private:
  std::vector<double> values_;
};

struct GroupKey {
  ClassId cls = 0;
  std::uint32_t fanout = 0;

  friend bool operator==(const GroupKey&, const GroupKey&) = default;
};

class MetricsCollector {
 public:
  void record_query(ClassId cls, std::uint32_t fanout, TimeMs latency_ms);

  /// Task dequeue accounting for the deadline-miss ratio.
  void record_task_dequeue(bool missed_deadline) {
    ++tasks_dequeued_;
    if (missed_deadline) ++tasks_missed_;
  }

  std::uint64_t queries_recorded() const { return queries_; }
  std::uint64_t tasks_dequeued() const { return tasks_dequeued_; }
  double task_deadline_miss_ratio() const {
    return tasks_dequeued_ == 0 ? 0.0
                                : static_cast<double>(tasks_missed_) /
                                      static_cast<double>(tasks_dequeued_);
  }

  /// Groups in first-recorded order (callers sort as needed).
  const std::vector<std::pair<GroupKey, LatencySample>>& groups() const {
    return groups_;
  }
  /// Mutable view for collection-time in-place selection
  /// (LatencySample::tail_and_mean).
  std::vector<std::pair<GroupKey, LatencySample>>& mutable_groups() {
    return groups_;
  }

 private:
  std::vector<std::pair<GroupKey, LatencySample>> groups_;
  std::size_t last_index_ = 0;  ///< memo: group hit by the previous record
  std::uint64_t queries_ = 0;
  std::uint64_t tasks_dequeued_ = 0;
  std::uint64_t tasks_missed_ = 0;
};

}  // namespace tailguard
