// Experiment drivers shared by the benchmark harness: maximum-load binary
// search and load sweeps (the two x-axes of the paper's evaluation).
#pragma once

#include <vector>

#include "sim/simulator.h"

namespace tailguard {

struct MaxLoadOptions {
  double lo = 0.02;         ///< search floor (assumed feasible)
  double hi = 0.95;         ///< search ceiling
  double tolerance = 0.01;  ///< terminate when hi - lo < tolerance
  /// Relative SLO slack when judging feasibility; absorbs percentile noise
  /// at finite sample sizes.
  double slo_epsilon = 0.0;
  /// Override for the load -> arrival-rate conversion basis; 0 means
  /// rate = load * num_servers / expected_work_per_query(config).
  double work_per_query = 0.0;
  double capacity_servers = 0.0;
};

/// Sets config.arrival_rate for the given offered load, honouring the
/// overrides in `opt`.
void set_load(SimConfig& config, double load, const MaxLoadOptions& opt = {});

/// Largest load (within tolerance) at which every (class, fanout) group
/// meets its SLO, found by bisection with common random numbers across
/// evaluation points. Returns opt.lo if even the floor is infeasible.
/// Runs as a speculative parallel search over the shared thread pool (see
/// sim/parallel.h); the result is identical to the serial bisection at any
/// TAILGUARD_THREADS setting.
double find_max_load(SimConfig config, const MaxLoadOptions& opt = {});

struct LoadPoint {
  double load = 0.0;
  SimResult result;
};

/// Runs the simulation at each load (same seed everywhere), fanned out over
/// the shared thread pool; points come back in `loads` order.
std::vector<LoadPoint> sweep_loads(SimConfig config,
                                   const std::vector<double>& loads,
                                   const MaxLoadOptions& opt = {});

/// Reads TAILGUARD_BENCH_SCALE (default 1.0, clamped to [0.05, 100]) and
/// scales a query count by it; the bench harness uses it everywhere so the
/// whole suite can be sped up or made more precise from the environment.
std::size_t scaled_queries(std::size_t base);

}  // namespace tailguard
