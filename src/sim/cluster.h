// Helpers for building per-server service-time layouts.
//
// The paper's simulations use a homogeneous cluster; its testbed uses four
// homogeneous groups; and its motivation (§I-II) cites stragglers from
// skewed workloads and resource variation. These builders cover all three
// shapes. Servers that share a DistributionPtr share a CDF model in the
// deadline estimator (same-object grouping).
#pragma once

#include <utility>
#include <vector>

#include "dist/standard.h"

namespace tailguard {

/// n servers, all drawing service times from `base`.
std::vector<DistributionPtr> homogeneous_cluster(DistributionPtr base,
                                                 std::size_t n);

/// Concatenated homogeneous groups: {model, count} pairs in node order.
std::vector<DistributionPtr> grouped_cluster(
    const std::vector<std::pair<DistributionPtr, std::size_t>>& groups);

/// A homogeneous cluster where `ceil(fraction * n)` servers (placed at the
/// end of the id range) are stragglers running `slowdown`x slower — the
/// outlier scenario of the paper's §I. The stragglers share one Scaled
/// model, so a fanout-aware estimator sees their true CDF.
std::vector<DistributionPtr> cluster_with_stragglers(DistributionPtr base,
                                                     std::size_t n,
                                                     double fraction,
                                                     double slowdown);

}  // namespace tailguard
