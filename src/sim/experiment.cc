#include "sim/experiment.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"

namespace tailguard {

void set_load(SimConfig& config, double load, const MaxLoadOptions& opt) {
  TG_CHECK_MSG(load > 0.0 && load < 1.0, "load must be in (0,1): " << load);
  const double capacity = opt.capacity_servers > 0.0
                              ? opt.capacity_servers
                              : static_cast<double>(config.num_servers);
  const double work = opt.work_per_query > 0.0
                          ? opt.work_per_query
                          : expected_work_per_query(config);
  config.arrival_rate = load * capacity / work;
}

double find_max_load(SimConfig config, const MaxLoadOptions& opt) {
  TG_CHECK_MSG(opt.lo > 0.0 && opt.hi < 1.0 && opt.lo < opt.hi,
               "bad search interval");
  const auto feasible = [&](double load) {
    set_load(config, load, opt);
    return run_simulation(config).all_slos_met(opt.slo_epsilon);
  };

  if (!feasible(opt.lo)) return opt.lo;
  if (feasible(opt.hi)) return opt.hi;

  double lo = opt.lo;  // feasible
  double hi = opt.hi;  // infeasible
  while (hi - lo > opt.tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<LoadPoint> sweep_loads(SimConfig config,
                                   const std::vector<double>& loads,
                                   const MaxLoadOptions& opt) {
  std::vector<LoadPoint> points;
  points.reserve(loads.size());
  for (double load : loads) {
    set_load(config, load, opt);
    points.push_back(LoadPoint{load, run_simulation(config)});
  }
  return points;
}

std::size_t scaled_queries(std::size_t base) {
  double scale = 1.0;
  if (const char* env = std::getenv("TAILGUARD_BENCH_SCALE")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed > 0.0) scale = std::clamp(parsed, 0.05, 100.0);
  }
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(base) * scale);
  return std::max<std::size_t>(scaled, 1000);
}

}  // namespace tailguard
