#include "sim/experiment.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"
#include "sim/parallel.h"

namespace tailguard {

void set_load(SimConfig& config, double load, const MaxLoadOptions& opt) {
  TG_CHECK_MSG(load > 0.0 && load < 1.0, "load must be in (0,1): " << load);
  const double capacity = opt.capacity_servers > 0.0
                              ? opt.capacity_servers
                              : static_cast<double>(config.num_servers);
  const double work = opt.work_per_query > 0.0
                          ? opt.work_per_query
                          : expected_work_per_query(config);
  config.arrival_rate = load * capacity / work;
}

double find_max_load(SimConfig config, const MaxLoadOptions& opt) {
  // Speculative bisection over the shared pool; replaying the serial
  // search's branch decisions keeps the returned load bit-identical to the
  // sequential implementation at any thread count.
  return find_max_load_speculative(config, opt);
}

std::vector<LoadPoint> sweep_loads(SimConfig config,
                                   const std::vector<double>& loads,
                                   const MaxLoadOptions& opt) {
  return sweep_loads_parallel(config, loads, opt);
}

std::size_t scaled_queries(std::size_t base) {
  double scale = 1.0;
  if (const char* env = std::getenv("TAILGUARD_BENCH_SCALE")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed > 0.0) scale = std::clamp(parsed, 0.05, 100.0);
  }
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(base) * scale);
  return std::max<std::size_t>(scaled, 1000);
}

}  // namespace tailguard
