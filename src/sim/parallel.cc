#include "sim/parallel.h"

#include <algorithm>
#include <array>
#include <unordered_map>  // tg-lint: allow(hot-path-map)

#include "common/check.h"

namespace tailguard {

namespace {

ThreadPool& pool_or_shared(ThreadPool* pool) {
  return pool != nullptr ? *pool : ThreadPool::shared();
}

// Collects the bisection-tree midpoints reachable within `levels` branch
// decisions from the bracket [lo, hi], using exactly the arithmetic the
// serial search uses (mid = 0.5 * (lo + hi)) so the replay below visits
// bit-identical loads.
void collect_candidates(double lo, double hi, int levels,
                        std::vector<double>& out) {
  if (levels == 0) return;
  const double mid = 0.5 * (lo + hi);
  out.push_back(mid);
  collect_candidates(lo, mid, levels - 1, out);
  collect_candidates(mid, hi, levels - 1, out);
}

int auto_levels(const ThreadPool& pool) {
  // Deepest tree whose candidate count (2^L - 1) still fits the pool.
  const std::size_t threads = pool.num_threads();
  int levels = 1;
  while (levels < 4 && (std::size_t{2} << levels) - 1 <= threads) ++levels;
  return levels;
}

}  // namespace

std::vector<SimResult> run_simulations(std::span<const SimConfig> configs,
                                       ThreadPool* pool) {
  ThreadPool& p = pool_or_shared(pool);
  std::vector<std::future<SimResult>> futures;
  futures.reserve(configs.size());
  for (const SimConfig& config : configs)
    futures.push_back(p.submit([&config] { return run_simulation(config); }));
  std::vector<SimResult> results;
  results.reserve(configs.size());
  for (auto& f : futures) results.push_back(p.wait(f));
  return results;
}

double find_max_load_speculative(const SimConfig& config,
                                 const MaxLoadOptions& opt, int levels,
                                 ThreadPool* pool,
                                 const FeasiblePredicate& judge) {
  TG_CHECK_MSG(opt.lo > 0.0 && opt.hi < 1.0 && opt.lo < opt.hi,
               "bad search interval");
  ThreadPool& p = pool_or_shared(pool);
  if (levels <= 0) levels = auto_levels(p);

  // Evaluates SLO feasibility at each load concurrently; keyed by load so
  // bracket decisions are independent of completion order. Cold path: a
  // handful of entries per max-load search, each guarding a full simulation.
  std::unordered_map<double, bool> feasible;  // tg-lint: allow(hot-path-map)
  const auto evaluate = [&](std::span<const double> loads) {
    std::vector<double> missing;
    for (double load : loads)
      if (!feasible.contains(load)) missing.push_back(load);
    std::vector<SimConfig> configs;
    configs.reserve(missing.size());
    for (double load : missing) {
      configs.push_back(config);
      set_load(configs.back(), load, opt);
    }
    std::vector<SimResult> results = run_simulations(configs, &p);
    for (std::size_t i = 0; i < missing.size(); ++i)
      feasible.emplace(missing[i],
                       judge ? judge(results[i])
                             : results[i].all_slos_met(opt.slo_epsilon));
  };

  // The serial search probes lo first and hi only when lo is feasible; here
  // both endpoints are probed together (one possibly wasted simulation).
  evaluate(std::array{opt.lo, opt.hi});
  if (!feasible.at(opt.lo)) return opt.lo;
  if (feasible.at(opt.hi)) return opt.hi;

  double lo = opt.lo;  // feasible
  double hi = opt.hi;  // infeasible
  std::vector<double> candidates;
  while (hi - lo > opt.tolerance) {
    // Speculate: evaluate the whole depth-`levels` midpoint tree of the
    // current bracket, then replay the serial bisection against the results.
    // 2^levels - 1 probes buy `levels` rounds of bracket narrowing.
    candidates.clear();
    collect_candidates(lo, hi, levels, candidates);
    evaluate(candidates);
    for (int step = 0; step < levels && hi - lo > opt.tolerance; ++step) {
      const double mid = 0.5 * (lo + hi);
      if (feasible.at(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  return lo;
}

std::vector<double> find_max_loads(std::span<const MaxLoadJob> jobs,
                                   ThreadPool* pool) {
  ThreadPool& p = pool_or_shared(pool);
  std::vector<std::future<double>> futures;
  futures.reserve(jobs.size());
  for (const MaxLoadJob& job : jobs) {
    futures.push_back(p.submit([&job, &p] {
      return find_max_load_speculative(job.config, job.opt, /*levels=*/0, &p,
                                       job.feasible);
    }));
  }
  std::vector<double> results;
  results.reserve(jobs.size());
  for (auto& f : futures) results.push_back(p.wait(f));
  return results;
}

std::vector<LoadPoint> sweep_loads_parallel(const SimConfig& config,
                                            std::span<const double> loads,
                                            const MaxLoadOptions& opt,
                                            ThreadPool* pool) {
  std::vector<SimConfig> configs;
  configs.reserve(loads.size());
  for (double load : loads) {
    configs.push_back(config);
    set_load(configs.back(), load, opt);
  }
  std::vector<SimResult> results = run_simulations(configs, pool);
  std::vector<LoadPoint> points;
  points.reserve(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i)
    points.push_back(LoadPoint{loads[i], std::move(results[i])});
  return points;
}

}  // namespace tailguard
