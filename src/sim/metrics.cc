#include "sim/metrics.h"

#include "common/stats.h"

namespace tailguard {

TimeMs LatencySample::percentile(double pct) const {
  return tailguard::percentile(values_, pct);
}

TimeMs LatencySample::mean() const { return mean_of(values_); }

LatencySample::TailAndMean LatencySample::tail_and_mean(double pct) {
  TailAndMean out;
  out.mean_ms = mean_of(values_);  // before selection: insertion-order sum
  out.tail_ms = percentile_inplace(values_, pct);
  return out;
}

void MetricsCollector::record_query(ClassId cls, std::uint32_t fanout,
                                    TimeMs latency_ms) {
  const GroupKey key{cls, fanout};
  ++queries_;
  // Workloads tend to record runs of the same group back to back, so check
  // the previously hit group before scanning.
  if (last_index_ < groups_.size() && groups_[last_index_].first == key) {
    groups_[last_index_].second.add(latency_ms);
    return;
  }
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].first == key) {
      groups_[i].second.add(latency_ms);
      last_index_ = i;
      return;
    }
  }
  last_index_ = groups_.size();
  groups_.emplace_back(key, LatencySample{});
  groups_.back().second.add(latency_ms);
}

}  // namespace tailguard
