#include "sim/metrics.h"

#include "common/stats.h"

namespace tailguard {

TimeMs LatencySample::percentile(double pct) const {
  return tailguard::percentile(values_, pct);
}

TimeMs LatencySample::mean() const { return mean_of(values_); }

void MetricsCollector::record_query(ClassId cls, std::uint32_t fanout,
                                    TimeMs latency_ms) {
  groups_[GroupKey{cls, fanout}].add(latency_ms);
  ++queries_;
}

}  // namespace tailguard
