#include "sim/cluster.h"

#include <cmath>

#include "common/check.h"

namespace tailguard {

std::vector<DistributionPtr> homogeneous_cluster(DistributionPtr base,
                                                 std::size_t n) {
  TG_CHECK_MSG(base != nullptr, "null base distribution");
  TG_CHECK_MSG(n >= 1, "cluster needs at least one server");
  return std::vector<DistributionPtr>(n, std::move(base));
}

std::vector<DistributionPtr> grouped_cluster(
    const std::vector<std::pair<DistributionPtr, std::size_t>>& groups) {
  TG_CHECK_MSG(!groups.empty(), "need at least one group");
  std::vector<DistributionPtr> servers;
  for (const auto& [model, count] : groups) {
    TG_CHECK_MSG(model != nullptr, "null group distribution");
    TG_CHECK_MSG(count >= 1, "empty group");
    servers.insert(servers.end(), count, model);
  }
  return servers;
}

std::vector<DistributionPtr> cluster_with_stragglers(DistributionPtr base,
                                                     std::size_t n,
                                                     double fraction,
                                                     double slowdown) {
  TG_CHECK_MSG(base != nullptr, "null base distribution");
  TG_CHECK_MSG(n >= 1, "cluster needs at least one server");
  TG_CHECK_MSG(fraction >= 0.0 && fraction <= 1.0,
               "straggler fraction must be in [0,1]");
  TG_CHECK_MSG(slowdown >= 1.0, "slowdown must be >= 1");
  auto servers = homogeneous_cluster(base, n);
  const auto stragglers = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(n)));
  if (stragglers == 0 || slowdown == 1.0) return servers;
  const auto slow = std::make_shared<Scaled>(std::move(base), slowdown);
  for (std::size_t s = n - stragglers; s < n; ++s) servers[s] = slow;
  return servers;
}

}  // namespace tailguard
