// Discrete-event simulator of the TailGuard query processing model (Fig. 2).
//
// A renewal arrival process delivers queries to the query handler; each query
// draws a service class and a fanout, is (optionally) screened by admission
// control, is assigned its task queuing deadline, and fans out to distinct
// task servers. Each task server is a single non-preemptive work-conserving
// server fronted by one policy queue. The query completes when its slowest
// task finishes; the query latency is that completion time minus arrival.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/admission.h"
#include "core/policy.h"
#include "dist/distribution.h"
#include "shard/sharded_control_plane.h"
#include "sim/metrics.h"
#include "workloads/fanout.h"
#include "workloads/trace.h"

namespace tailguard {

/// Where the deadline estimator's per-server CDF models come from.
enum class EstimationMode {
  /// Analytic ground-truth CDFs (the paper's simulation setting, where
  /// F_l(t) is assumed known and fixed).
  kExact,
  /// Frozen empirical CDFs, one per server group, each profiled from its
  /// own group (an idealised offline estimation).
  kOfflineEmpirical,
  /// Frozen empirical CDF profiled from server 0 only and shared by every
  /// server — the paper's §III.B.2 "offline estimation process" (profile a
  /// single task server, use it as the initial distribution for all)
  /// *without* the online updating step.
  kOfflineSingleProfile,
  /// Streaming histograms seeded per group and updated with every observed
  /// post-queuing time.
  kOnlineStreaming,
  /// Streaming histograms all seeded from server 0's profile and then
  /// updated online per server group — the paper's full §III.B.2 pipeline
  /// (single offline profile + periodical online updating that captures
  /// heterogeneity).
  kOnlineFromSingleProfile,
};

enum class ArrivalKind { kPoisson, kPareto };

struct SimConfig {
  std::size_t num_servers = 100;
  Policy policy = Policy::kTfEdf;

  /// Service classes ordered by priority: class 0 is the highest class
  /// (tightest SLO) — PRIQ serves lower ids strictly first.
  std::vector<ClassSpec> classes;
  /// P(class = i); empty means always class 0.
  std::vector<double> class_probabilities;

  FanoutModelPtr fanout;
  /// Optional class-coupled fanout: when set it overrides `fanout` and draws
  /// the fanout given the query's class (the SaS testbed's use cases have
  /// one fixed fanout per class). Load conversion then needs explicit
  /// MaxLoadOptions overrides since expected_work_per_query requires a
  /// fanout model.
  std::function<std::uint32_t(Rng&, ClassId)> class_fanout;

  /// Homogeneous task service-time distribution, or per-server distributions
  /// (exactly one of the two must be set; per_server_service wins).
  DistributionPtr service_time;
  std::vector<DistributionPtr> per_server_service;

  /// Optional multiplicative drift applied to sampled service times as a
  /// function of simulation time and server; identity when empty. Used by
  /// the online-updating ablation (e.g. one server group slows down
  /// mid-run). The estimator only tracks this in kOnlineStreaming.
  std::function<double(TimeMs, ServerId)> service_scale;

  /// Network model (paper Fig. 2 with queuing at the task servers): each
  /// task reaches its server's queue `dispatch_delay_ms` after the query is
  /// processed, and each result reaches the query handler `result_delay_ms`
  /// after the task finishes. Both count against the paper's latency
  /// decomposition correctly: dispatch is part of the pre-dequeuing time
  /// t_pr (it consumes budget), the return path is part of the
  /// post-queuing time t_po (the online estimator observes it; kExact
  /// estimation does not see it and is correspondingly optimistic).
  /// Unset = zero-delay (central queuing at the handler, the default).
  DistributionPtr dispatch_delay_ms;
  DistributionPtr result_delay_ms;

  ArrivalKind arrival_kind = ArrivalKind::kPoisson;
  double pareto_shape = 1.5;
  /// Mean query arrival rate in queries per millisecond.
  double arrival_rate = 0.0;

  /// Trace replay: when non-empty, arrival times, classes and fanouts come
  /// from these records instead of the generative models (`arrival_rate`,
  /// `fanout`, `class_probabilities` are then ignored and `num_queries` is
  /// the trace length).
  std::vector<QueryRecord> trace;

  /// Total queries offered (admitted + rejected). Warmup queries are
  /// simulated but excluded from metrics.
  std::size_t num_queries = 100000;
  double warmup_fraction = 0.1;

  std::uint64_t seed = 1;

  /// Structure backing the per-server EDF queues: binary heap or the
  /// exact-order timer wheel (with its sorted-array front). Both produce
  /// bit-identical schedules; kDefault resolves via TAILGUARD_EDF_IMPL so
  /// whole-figure runs can be A/B'd from the shell. (The simulator's own
  /// future-event set has a separate knob, TAILGUARD_EVENT_QUEUE, defaulting
  /// to the binary heap — see EventQueue in simulator.cc.)
  EdfQueueImpl edf_impl = EdfQueueImpl::kDefault;

  EstimationMode estimation = EstimationMode::kExact;
  /// Offline profiling sample size per model (kOfflineEmpirical /
  /// kOnlineStreaming).
  std::size_t offline_seed_samples = 20000;

  /// When non-empty, these models (one per server; shared_ptr identity forms
  /// the groups) are handed to the control plane verbatim and `estimation` /
  /// `offline_seed_samples` are ignored. Lets cross-backend tests drive the
  /// simulator with the exact models another backend uses.
  std::vector<std::shared_ptr<CdfModel>> server_models;

  /// Observer called once per admitted query with the control plane's
  /// decision (budget, t_D, ordering key). Purely observational — used by
  /// the cross-backend parity tests.
  std::function<void(const QueryPlan&)> on_query_planned;

  /// Admission control (paper §III.C); disabled when unset.
  std::optional<AdmissionOptions> admission;

  /// Query-handler sharding: N ShardedControlPlane replicas with periodic
  /// delta-sync (src/shard). Unset resolves from the environment —
  /// TAILGUARD_SHARDS, TAILGUARD_SHARD_SYNC_MS, TAILGUARD_SHARD_ROUTER
  /// (hash|round-robin|class-affinity) — defaulting to a single shard, so
  /// whole-figure runs can be A/B'd from the shell like the EDF/event-queue
  /// knobs. One shard with sync disabled is bit-identical to the unsharded
  /// control plane (the parity invariant).
  std::optional<ShardingOptions> sharding;

  /// Request mode (paper §III.B remark, Eq. 7): each arrival is a *request*
  /// of `queries_per_request` queries issued sequentially — query i+1 is
  /// issued the instant query i's last task result merges. Task deadlines
  /// come from the per-query budgets instead of Eq. 6; classes/fanout are
  /// drawn per query as usual. Disabled when unset.
  struct RequestSpec {
    std::size_t queries_per_request = 1;  ///< M
    /// Per-query pre-dequeuing budgets T_{b,i} (size M), e.g. from
    /// split_request_budget(). Query i's task deadline is issue_i + budget_i.
    std::vector<TimeMs> query_budgets;
    /// Optional fixed fanout per request position (size M); empty means the
    /// fanout model draws each query's fanout. Position-fixed fanouts are
    /// what make position-indexed budgets meaningful for heterogeneous
    /// requests.
    std::vector<std::uint32_t> query_fanouts;
    /// Request-level SLO used to judge request tail latency.
    ClassSpec request_slo;
  };
  std::optional<RequestSpec> request;

  /// Footnote-4 ablation: when > 0, each task of a TF-EDFQ query gets an
  /// individually jittered ordering budget T_b * (1 + jitter * u), with u
  /// uniform in [-1, 1] per task, instead of the shared budget the paper
  /// argues is optimal. Deadline-miss statistics still use the shared t_D.
  double task_budget_jitter = 0.0;

  /// Task placement: fills `servers` with `fanout` distinct server ids.
  /// Default: uniform distinct sampling over all servers (fanout == N means
  /// all servers, the OLDI case). Takes precedence over `placement_policy`
  /// (tests pin exact placements through it).
  std::function<void(Rng&, ClassId, std::uint32_t, std::vector<ServerId>&)>
      placement;

  /// Control-plane placement policy (core/placement/policy.h). Unset
  /// resolves from the environment — TAILGUARD_PLACEMENT
  /// (least_loaded|pow_d|tail_risk), TAILGUARD_PLACEMENT_D — defaulting to
  /// least_loaded, which in the simulator keeps the exact legacy uniform
  /// distinct sampling path (all servers are equal candidates, so
  /// least-loaded over an unweighted view degenerates to it). pow_d and
  /// tail_risk route each query through ShardedControlPlane::place() over
  /// live queue-depth candidates.
  std::optional<PlacementPolicyOptions> placement_policy;

  /// Observer called once per admitted query with the servers its tasks
  /// landed on, in placement order. Purely observational — used by the
  /// cross-backend placement parity tests.
  std::function<void(ClassId, std::span<const ServerId>)> on_query_placed;
};

struct GroupResult {
  ClassId cls = 0;
  std::uint32_t fanout = 0;
  std::uint64_t queries = 0;
  TimeMs tail_latency_ms = 0.0;  ///< latency at the class percentile
  TimeMs mean_latency_ms = 0.0;
  TimeMs slo = 0.0;
  bool met = false;
};

struct ClassResult {
  ClassId cls = 0;
  std::uint64_t queries = 0;
  TimeMs tail_latency_ms = 0.0;  ///< latency at the class percentile
  TimeMs mean_latency_ms = 0.0;
  TimeMs slo = 0.0;
  bool met = false;
};

struct SimResult {
  std::vector<GroupResult> groups;        ///< sorted by (class, fanout)
  std::vector<ClassResult> class_results; ///< aggregated over fanouts

  std::uint64_t queries_offered = 0;
  std::uint64_t queries_admitted = 0;
  std::uint64_t queries_rejected = 0;
  std::uint64_t tasks_admitted = 0;
  std::uint64_t tasks_rejected = 0;

  double task_deadline_miss_ratio = 0.0;
  /// Mean server busy fraction over the whole run.
  double measured_utilization = 0.0;
  /// Per-server busy fraction (index = ServerId) — exposes load imbalance,
  /// e.g. the SaS testbed's hot Server-room cluster vs the idle Wet-lab.
  std::vector<double> server_utilization;
  TimeMs end_time = 0.0;

  /// Request mode only: tail latency of whole requests at the request SLO
  /// percentile, and how many requests were recorded.
  TimeMs request_tail_latency_ms = 0.0;
  TimeMs request_mean_latency_ms = 0.0;
  std::uint64_t requests_recorded = 0;
  bool request_slo_met = false;

  /// Sharding: how many query-handler shards ran and how many delta-sync
  /// rounds / shipped samples the run performed (0 when sync is disabled).
  std::uint32_t shards = 1;
  std::uint64_t shard_sync_rounds = 0;
  std::uint64_t shard_samples_shipped = 0;
  std::uint64_t shard_slack_samples_shipped = 0;

  /// Placement observability: which policy ran and its per-decision
  /// counters. `placement_decisions` counts control-plane place() calls
  /// (0 under the default least_loaded, which keeps the legacy sampling
  /// path, and under a custom `placement` functor);
  /// `placement_mean_staleness_ms` is the mean age of the slack data behind
  /// each tail_risk decision (0 for other policies).
  PlacementPolicyKind placement_kind = PlacementPolicyKind::kLeastLoaded;
  std::uint64_t placement_decisions = 0;
  std::uint64_t placement_candidates_considered = 0;
  double placement_mean_staleness_ms = 0.0;

  /// Heap allocations made inside the event loop, as observed through the
  /// common/alloc_probe.h hook — always 0 unless the running binary installed
  /// a counter (the hot-path no-malloc test does). Steady-state event
  /// processing is slab-pooled and pre-reserved, so this should stay O(log n)
  /// in the query count (amortized vector doublings), not O(n).
  std::uint64_t event_loop_allocs = 0;

  /// True when every group met its SLO (groups with zero queries are
  /// ignored). `epsilon` is a relative tolerance.
  bool all_slos_met(double epsilon = 0.0) const;

  /// Fraction of offered tasks admitted (1.0 without admission control).
  double task_admit_fraction() const;

  const GroupResult* find_group(ClassId cls, std::uint32_t fanout) const;
  /// Tail latency at the class percentile across all fanouts of a class.
  TimeMs class_tail_latency(ClassId cls) const;
};

SimResult run_simulation(const SimConfig& config);

/// Expected service-time demand (ms of server time) per query, from the
/// fanout model and the mean of the service-time distribution(s); the basis
/// of the offered-load <-> arrival-rate conversion.
double expected_work_per_query(const SimConfig& config);

/// Arrival rate (queries/ms) that offers `load` (0..1) to the cluster:
/// rate = load * num_servers / expected_work_per_query.
double rate_for_load(const SimConfig& config, double load);

}  // namespace tailguard
