#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <queue>
#include <span>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/alloc_probe.h"
#include "common/check.h"
#include "common/slab_map.h"
#include "common/stats.h"
#include "dist/arrival.h"
#include "dist/piecewise_linear_quantile.h"

namespace tailguard {

namespace {

// 16 bytes: the discriminant fields are packed into one integer whose
// numeric order equals the old lexicographic (kind, server, payload) order,
// so a tie on `time` is broken by a single compare and heap/wheel moves
// copy two words. Arrivals are not Events at all — they come from a
// time-monotone generator that the main loop merges with the queue (an
// arrival wins time ties because every queued kind is > kArrival's 0).
struct Event {
  TimeMs time = 0.0;
  std::uint64_t key = 0;  // kind << 62 | server << 32 | payload

  enum Kind : std::uint8_t {
    kTaskEnqueue = 1,    // task reaches its server after dispatch delay
    kTaskDone = 2,       // server finishes its current task
    kResultArrival = 3,  // result reaches the query handler
  };

  Event() = default;
  Event(TimeMs t, Kind k, ServerId server, std::uint32_t payload = 0)
      : time(t),
        key((std::uint64_t{k} << 62) | (std::uint64_t{server} << 32) |
            payload) {
    TG_DCHECK(server < (1u << 30));
  }

  Kind kind() const { return static_cast<Kind>(key >> 62); }
  ServerId server() const {
    return static_cast<ServerId>((key >> 32) & ((1u << 30) - 1));
  }
  std::uint32_t payload() const { return static_cast<std::uint32_t>(key); }

  // Min-heap ordering; the packed key breaks time ties deterministically.
  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.key > b.key;
  }
};

struct EventLess {
  bool operator()(const Event& a, const Event& b) const { return b > a; }
};
struct EventTimeKey {
  double operator()(const Event& e) const { return e.time; }
};

// The future event set. Three interchangeable backings, all yielding the
// identical event sequence (exact (time, key) order), so every BENCH row is
// bit-identical across the TAILGUARD_EVENT_QUEUE knob:
//
//   * dense — the default whenever the run has no network model. Then every
//     event is a kTaskDone and a server has at most one outstanding, so the
//     event set is just "completion time per busy server": push is a store
//     plus an argmin update, pop rescans one 8-server block and the block
//     minima. O(num_servers/8) beats both trees because the whole structure
//     is a few flat cache lines.
//   * heap — binary heap, the general-purpose backing (network runs). At
//     the ~hundred pending events of the tested configurations its ~7
//     hot-line compares also beat the timer wheel's slot walk.
//   * wheel — the exact-order timer wheel (common/timer_wheel.h), here as
//     an A/B experiment: the event population is far below the depth where
//     its O(1) radix filing wins (see bench/micro_core_ops).
class EventQueue {
 public:
  // 20µs ticks: one 64-slot level-0 rotation (1.28ms) covers a typical
  // service time, so most completions file straight into level 0 and are
  // never re-placed by a cascade, while slots still hold only a handful of
  // events at the tested loads.
  static constexpr double kTickMs = 0.02;
  static constexpr double kIdle = std::numeric_limits<double>::infinity();

  /// `dense_servers` > 0 marks the run dense-eligible (every event will be
  /// a kTaskDone with payload 0) with that many servers.
  EventQueue(std::size_t expected, std::size_t dense_servers)
      : wheel_(kTickMs) {
    enum class Pick { kAuto, kDense, kHeap, kWheel } pick = Pick::kAuto;
    if (const char* env = std::getenv("TAILGUARD_EVENT_QUEUE")) {
      if (std::strcmp(env, "dense") == 0) pick = Pick::kDense;
      else if (std::strcmp(env, "heap") == 0) pick = Pick::kHeap;
      else if (std::strcmp(env, "wheel") == 0) pick = Pick::kWheel;
      else TG_CHECK_MSG(false, "TAILGUARD_EVENT_QUEUE must be 'dense', "
                               "'heap' or 'wheel', got '" << env << "'");
    }
    // 'dense' on an ineligible (network-model) run falls back to the heap:
    // the knob selects among valid layouts, it cannot force a wrong one.
    mode_ = (pick == Pick::kWheel) ? Mode::kWheel
            : (pick == Pick::kHeap || dense_servers == 0) ? Mode::kHeap
                                                          : Mode::kDense;
    if (mode_ == Mode::kDense) {
      const std::size_t padded = (dense_servers + kBlock - 1) & ~(kBlock - 1);
      done_.assign(padded, kIdle);
      // Rounded up to an even count (any extra entry pinned at kIdle) so
      // the SSE2 rescan can always load block minima two at a time.
      block_min_.assign((padded / kBlock + 1) & ~std::size_t{1}, kIdle);
    } else if (mode_ == Mode::kHeap) {
      heap_.reserve(expected);
    }
  }

  void push(const Event& e) {
    if (mode_ == Mode::kDense) {
      TG_DCHECK(e.kind() == Event::kTaskDone && e.payload() == 0);
      const std::uint32_t sid = e.server();
      TG_DCHECK(done_[sid] == kIdle);
      done_[sid] = e.time;
      if (e.time < block_min_[sid / kBlock]) block_min_[sid / kBlock] = e.time;
      if (count_ == 0 || e.time < min_time_ ||
          (e.time == min_time_ && sid < min_idx_)) {
        min_time_ = e.time;
        min_idx_ = sid;
      }
      ++count_;
    } else if (mode_ == Mode::kWheel) {
      wheel_.push(e);
    } else {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
    }
  }

  Event pop() {
    if (mode_ == Mode::kDense) {
      const Event out(min_time_, Event::kTaskDone, min_idx_);
      done_[min_idx_] = kIdle;
      --count_;
      refresh_block(min_idx_ / kBlock);
      if (count_ != 0) rescan();
      return out;
    }
    if (mode_ == Mode::kWheel) return wheel_.pop();
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Event e = heap_.back();
    heap_.pop_back();
    return e;
  }

  bool empty() const {
    return mode_ == Mode::kDense   ? count_ == 0
           : mode_ == Mode::kWheel ? wheel_.empty()
                                   : heap_.empty();
  }

  /// Time of the event pop() would return. Precondition: !empty().
  TimeMs peek_time() const {
    return mode_ == Mode::kDense   ? min_time_
           : mode_ == Mode::kWheel ? wheel_.peek().time
                                   : heap_.front().time;
  }

 private:
  enum class Mode : std::uint8_t { kDense, kHeap, kWheel };
  static constexpr std::size_t kBlock = 8;  // one cache line of doubles

  void refresh_block(std::size_t b) {
    const double* base = done_.data() + b * kBlock;
#if defined(__SSE2__)
    // Pairwise min reduction. minpd is the exact IEEE minimum and min is
    // order-independent (no NaNs here), so this equals the scalar scan.
    const __m128d m01 = _mm_min_pd(_mm_loadu_pd(base), _mm_loadu_pd(base + 2));
    const __m128d m23 =
        _mm_min_pd(_mm_loadu_pd(base + 4), _mm_loadu_pd(base + 6));
    const __m128d m = _mm_min_pd(m01, m23);
    block_min_[b] = _mm_cvtsd_f64(_mm_min_sd(m, _mm_unpackhi_pd(m, m)));
#else
    double m = kIdle;
    for (std::size_t i = 0; i < kBlock; ++i) m = std::min(m, base[i]);
    block_min_[b] = m;
#endif
  }

  // First minimal block, then the first minimal server inside it — exactly
  // the old (time, kind, server) tie order since dense events differ only in
  // server id. The SSE2 path keeps that order via two exact passes: reduce
  // to the minimum value, then take the first index comparing equal (cmpeq
  // ties resolve to the lowest lane, same as the scalar strict-< scan).
  void rescan() {
#if defined(__SSE2__)
    const double* bm = block_min_.data();
    const std::size_t nb = block_min_.size();  // even by construction
    // Two independent accumulator chains hide the minpd latency.
    __m128d acc0 = _mm_loadu_pd(bm);
    __m128d acc1 = _mm_set1_pd(kIdle);
    std::size_t b = 2;
    for (; b + 2 <= nb; b += 4) {
      acc1 = _mm_min_pd(acc1, _mm_loadu_pd(bm + b));
      if (b + 4 <= nb) acc0 = _mm_min_pd(acc0, _mm_loadu_pd(bm + b + 2));
    }
    const __m128d acc = _mm_min_pd(acc0, acc1);
    const double m =
        _mm_cvtsd_f64(_mm_min_sd(acc, _mm_unpackhi_pd(acc, acc)));
    // Branchless first-equal scan: accumulate the per-pair cmpeq masks into
    // one bitmask and take its lowest set bit. count_ != 0 here, so
    // m < kIdle and the kIdle padding can never match.
    const __m128d mv = _mm_set1_pd(m);
    std::uint64_t mask = 0;
    for (std::size_t p = 0; p < nb; p += 2)
      mask |= static_cast<std::uint64_t>(_mm_movemask_pd(
                  _mm_cmpeq_pd(_mm_loadu_pd(bm + p), mv)))
              << p;
    const std::size_t best =
        static_cast<std::size_t>(__builtin_ctzll(mask));
    const double* base = done_.data() + best * kBlock;
    std::uint64_t bmask = 0;
    for (std::size_t i = 0; i < kBlock; i += 2)
      bmask |= static_cast<std::uint64_t>(_mm_movemask_pd(
                   _mm_cmpeq_pd(_mm_loadu_pd(base + i), mv)))
               << i;
    const std::size_t off =
        static_cast<std::size_t>(__builtin_ctzll(bmask));
    min_time_ = m;
    min_idx_ = static_cast<std::uint32_t>(best * kBlock + off);
#else
    std::size_t best = 0;
    for (std::size_t b = 1; b < block_min_.size(); ++b)
      if (block_min_[b] < block_min_[best]) best = b;
    const double* base = done_.data() + best * kBlock;
    std::size_t off = 0;
    for (std::size_t i = 1; i < kBlock; ++i)
      if (base[i] < base[off]) off = i;
    min_time_ = base[off];
    min_idx_ = static_cast<std::uint32_t>(best * kBlock + off);
#endif
  }

  Mode mode_ = Mode::kHeap;
  // dense state
  std::vector<double> done_;       // completion time per server, kIdle if none
  std::vector<double> block_min_;  // min of each kBlock-server block
  std::size_t count_ = 0;
  double min_time_ = kIdle;
  std::uint32_t min_idx_ = 0;
  // tree state
  TimerWheel<Event, EventLess, EventTimeKey> wheel_;
  std::vector<Event> heap_;  // min-heap via std::greater (operator>)
};

// Payload carried by kTaskEnqueue (the task in flight) and kResultArrival
// (the completed task's accounting), pooled with a freelist.
struct EventPayload {
  QueuedTask task;         // kTaskEnqueue
  QueryId query = 0;       // kResultArrival
  TimeMs dequeue_time = 0; // kResultArrival
  bool missed = false;     // kResultArrival
  bool recorded = false;   // kResultArrival
  std::uint32_t next_free = 0;
};

class PayloadPool {
 public:
  void reserve(std::size_t n) { pool_.reserve(n); }

  std::uint32_t alloc() {
    if (free_head_ != kNone) {
      const std::uint32_t idx = free_head_;
      free_head_ = pool_[idx].next_free;
      return idx;
    }
    pool_.emplace_back();
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  EventPayload& operator[](std::uint32_t idx) { return pool_[idx]; }

  void free(std::uint32_t idx) {
    pool_[idx].next_free = free_head_;
    free_head_ = idx;
  }

 private:
  static constexpr std::uint32_t kNone = ~0u;
  std::vector<EventPayload> pool_;
  std::uint32_t free_head_ = kNone;
};

struct ServerState {
  std::unique_ptr<TaskQueue> queue;
  /// Concrete views of `queue` for the two disciplines the figure runs
  /// exercise most (TF-EDFQ/T-EDFQ on the timer wheel, FIFO), set once at
  /// setup — the same pattern as service_plq below: both classes are final,
  /// so the per-task push/pop devirtualizes and inlines through the typed
  /// pointer. All servers share one discipline, so the dispatch branch is
  /// perfectly predicted; other disciplines fall back to the virtual call.
  TimerWheelEdfQueue* queue_wheel = nullptr;
  FifoTaskQueue* queue_fifo = nullptr;
  /// Mirrors queue->size(); the idle/backlog checks run per task and the
  /// counter spares them a virtual call into the discipline.
  std::uint32_t queue_len = 0;
  DistributionPtr service;
  /// Non-null when `service` is a PiecewiseLinearQuantile (the calibrated
  /// Tailbench workloads — i.e. nearly every figure run): the per-task draw
  /// then goes through the concrete final class, which devirtualizes and
  /// inlines. Falls back to the virtual sample() for other distributions.
  const PiecewiseLinearQuantile* service_plq = nullptr;
  bool busy = false;
  QueuedTask current;
  TimeMs current_started = 0.0;
  bool current_recorded = false;  // post-warmup accounting for current task
  bool current_missed = false;    // dequeued past its deadline
  TimeMs busy_since = 0.0;
  double busy_accum = 0.0;
};

// Builds the per-server CDF models for the deadline estimator according to
// the estimation mode, preserving the "servers with the same service-time
// distribution share a model" grouping.
std::vector<std::shared_ptr<CdfModel>> build_models(
    const std::vector<DistributionPtr>& per_server, EstimationMode mode,
    std::size_t offline_samples, Rng& rng) {
  // Single-profile modes seed everything from server 0's distribution
  // (§III.B.2: profile one task server offline).
  const bool single_profile =
      mode == EstimationMode::kOfflineSingleProfile ||
      mode == EstimationMode::kOnlineFromSingleProfile;
  std::vector<double> profile;
  if (single_profile) {
    profile.resize(offline_samples);
    for (auto& x : profile) x = per_server.front()->sample(rng);
  }

  const auto make_streaming_options = [&](const Distribution& dist) {
    StreamingCdfModel::Options opt;
    const double hi = dist.quantile(0.9999);
    const double lo = dist.quantile(0.001);
    opt.histogram.min_value = std::max(1e-6, lo / 10.0);
    opt.histogram.max_value =
        std::max(hi * 100.0, opt.histogram.min_value * 10.0);
    opt.histogram.buckets_per_decade = 200;
    // Age out roughly half the window every 50k observations so the model
    // tracks drift without forgetting the tail too fast.
    opt.histogram.decay_every = 50000;
    opt.histogram.decay_factor = 0.5;
    opt.refresh_every = 2000;
    return opt;
  };

  std::vector<DistributionPtr> distinct;
  std::vector<std::shared_ptr<CdfModel>> group_models;
  std::vector<std::shared_ptr<CdfModel>> result;
  result.reserve(per_server.size());
  for (const auto& dist : per_server) {
    auto it = std::find(distinct.begin(), distinct.end(), dist);
    if (it == distinct.end()) {
      distinct.push_back(dist);
      std::shared_ptr<CdfModel> model;
      switch (mode) {
        case EstimationMode::kExact:
          model = std::make_shared<DistributionCdfModel>(dist);
          break;
        case EstimationMode::kOfflineEmpirical: {
          std::vector<double> sample(offline_samples);
          for (auto& x : sample) x = dist->sample(rng);
          model = std::make_shared<EmpiricalCdfModel>(sample);
          break;
        }
        case EstimationMode::kOfflineSingleProfile:
          model = std::make_shared<EmpiricalCdfModel>(profile);
          break;
        case EstimationMode::kOnlineStreaming: {
          auto streaming =
              std::make_shared<StreamingCdfModel>(make_streaming_options(*dist));
          std::vector<double> sample(offline_samples);
          for (auto& x : sample) x = dist->sample(rng);
          streaming->seed(sample);
          model = std::move(streaming);
          break;
        }
        case EstimationMode::kOnlineFromSingleProfile: {
          // Histogram range must accommodate the (unknown) true latencies,
          // not just the profiled server's: widen generously.
          auto opt = make_streaming_options(*per_server.front());
          opt.histogram.max_value *= 100.0;
          auto streaming = std::make_shared<StreamingCdfModel>(opt);
          streaming->seed(profile);
          model = std::move(streaming);
          break;
        }
      }
      group_models.push_back(std::move(model));
      result.push_back(group_models.back());
    } else {
      result.push_back(
          group_models[static_cast<std::size_t>(it - distinct.begin())]);
    }
  }
  return result;
}

// Environment fallback for SimConfig::sharding, mirroring the
// TAILGUARD_EDF_IMPL / TAILGUARD_EVENT_QUEUE A/B pattern.
ShardingOptions sharding_from_env() {
  ShardingOptions opts;
  if (const char* env = std::getenv("TAILGUARD_SHARDS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    TG_CHECK_MSG(end != env && *end == '\0' && n >= 1,
                 "TAILGUARD_SHARDS must be a positive integer, got '" << env
                                                                     << "'");
    opts.num_shards = static_cast<std::uint32_t>(n);
  }
  if (const char* env = std::getenv("TAILGUARD_SHARD_SYNC_MS")) {
    char* end = nullptr;
    const double ms = std::strtod(env, &end);
    TG_CHECK_MSG(end != env && *end == '\0' && ms >= 0.0,
                 "TAILGUARD_SHARD_SYNC_MS must be a non-negative number, "
                 "got '" << env << "'");
    opts.sync_interval_ms = ms;
  }
  if (const char* env = std::getenv("TAILGUARD_SHARD_ROUTER")) {
    if (std::strcmp(env, "hash") == 0) {
      opts.router = RouterKind::kHash;
    } else if (std::strcmp(env, "round-robin") == 0) {
      opts.router = RouterKind::kRoundRobin;
    } else if (std::strcmp(env, "class-affinity") == 0) {
      opts.router = RouterKind::kClassAffinity;
    } else {
      TG_CHECK_MSG(false, "TAILGUARD_SHARD_ROUTER must be 'hash', "
                          "'round-robin' or 'class-affinity', got '"
                              << env << "'");
    }
  }
  return opts;
}

}  // namespace

double expected_work_per_query(const SimConfig& config) {
  TG_CHECK_MSG(config.fanout != nullptr, "fanout model is required");
  double mean_service = 0.0;
  if (!config.per_server_service.empty()) {
    for (const auto& d : config.per_server_service) {
      TG_CHECK_MSG(d != nullptr, "null per-server service distribution");
      mean_service += d->mean();
    }
    mean_service /= static_cast<double>(config.per_server_service.size());
  } else {
    TG_CHECK_MSG(config.service_time != nullptr,
                 "service-time distribution is required");
    mean_service = config.service_time->mean();
  }
  return config.fanout->mean() * mean_service;
}

double rate_for_load(const SimConfig& config, double load) {
  TG_CHECK_MSG(load > 0.0 && load < 1.0, "load must be in (0,1): " << load);
  return load * static_cast<double>(config.num_servers) /
         expected_work_per_query(config);
}

bool SimResult::all_slos_met(double epsilon) const {
  for (const auto& g : groups) {
    if (g.queries == 0) continue;
    if (g.tail_latency_ms > g.slo * (1.0 + epsilon)) return false;
  }
  return true;
}

double SimResult::task_admit_fraction() const {
  const auto total = tasks_admitted + tasks_rejected;
  return total == 0 ? 1.0
                    : static_cast<double>(tasks_admitted) /
                          static_cast<double>(total);
}

const GroupResult* SimResult::find_group(ClassId cls,
                                         std::uint32_t fanout) const {
  for (const auto& g : groups)
    if (g.cls == cls && g.fanout == fanout) return &g;
  return nullptr;
}

TimeMs SimResult::class_tail_latency(ClassId cls) const {
  for (const auto& c : class_results)
    if (c.cls == cls) return c.tail_latency_ms;
  return 0.0;
}

SimResult run_simulation(const SimConfig& config) {
  const bool use_trace = !config.trace.empty();
  const bool request_mode = config.request.has_value();
  const std::size_t total_arrivals =
      use_trace ? config.trace.size() : config.num_queries;

  TG_CHECK_MSG(config.num_servers >= 1, "need at least one server");
  TG_CHECK_MSG(!config.classes.empty(), "need at least one service class");
  TG_CHECK_MSG(total_arrivals > 0, "need at least one query");
  if (!use_trace) {
    TG_CHECK_MSG(config.arrival_rate > 0.0, "arrival rate must be positive");
    const bool request_fanouts =
        request_mode && !config.request->query_fanouts.empty();
    TG_CHECK_MSG(request_fanouts || config.fanout != nullptr ||
                     config.class_fanout != nullptr,
                 "a fanout model or class_fanout function is required");
  }
  TG_CHECK_MSG(
      config.class_probabilities.empty() ||
          config.class_probabilities.size() == config.classes.size(),
      "class_probabilities size must match classes");
  if (request_mode) {
    TG_CHECK_MSG(!use_trace, "request mode does not combine with trace replay");
    TG_CHECK_MSG(config.request->queries_per_request >= 1,
                 "requests need at least one query");
    TG_CHECK_MSG(config.request->query_budgets.size() ==
                     config.request->queries_per_request,
                 "one budget per request query required");
    TG_CHECK_MSG(config.request->query_fanouts.empty() ||
                     config.request->query_fanouts.size() ==
                         config.request->queries_per_request,
                 "query_fanouts must be empty or one per request query");
  }
  TG_CHECK_MSG(config.task_budget_jitter >= 0.0,
               "task budget jitter must be non-negative");

  Rng rng(config.seed);
  Rng estimation_rng = rng.split();

  // --- per-server service-time distributions -----------------------------
  std::vector<DistributionPtr> per_server = config.per_server_service;
  if (per_server.empty()) {
    TG_CHECK_MSG(config.service_time != nullptr,
                 "service-time distribution is required");
    per_server.assign(config.num_servers, config.service_time);
  }
  TG_CHECK_MSG(per_server.size() == config.num_servers,
               "per_server_service size must equal num_servers");
  TG_CHECK_MSG(config.server_models.empty() ||
                   config.server_models.size() == config.num_servers,
               "server_models size must equal num_servers");

  // --- control plane -------------------------------------------------------
  // Owns the whole Fig. 2 query-handler pipeline (admission, Eq. 6/7
  // budgets, t_D, tracking, per-class accounting); the simulator is just the
  // event-driven execution backend around it. Sharded: N replicas behind the
  // facade, queries routed by arrival index, delta-sync at simulated-time
  // interval boundaries (a single shard is the transparent default).
  const ShardingOptions sharding =
      config.sharding ? *config.sharding : sharding_from_env();
  const PlacementPolicyOptions placement_opts =
      config.placement_policy ? *config.placement_policy : placement_from_env();
  ControlPlaneOptions cp_options;
  cp_options.policy = config.policy;
  cp_options.classes = config.classes;
  cp_options.admission = config.admission;
  cp_options.placement = placement_opts;
  cp_options.seed = config.seed;
  ShardedControlPlane control(
      sharding, std::move(cp_options),
      !config.server_models.empty()
          ? config.server_models
          : build_models(per_server, config.estimation,
                         config.offline_seed_samples, estimation_rng));

  // --- arrival process ------------------------------------------------------
  std::unique_ptr<ArrivalProcess> arrivals;
  if (!use_trace) {
    switch (config.arrival_kind) {
      case ArrivalKind::kPoisson:
        arrivals = std::make_unique<PoissonProcess>(config.arrival_rate);
        break;
      case ArrivalKind::kPareto:
        arrivals = std::make_unique<ParetoProcess>(config.arrival_rate,
                                                   config.pareto_shape);
        break;
    }
  }

  // --- class mix -------------------------------------------------------------
  std::vector<double> class_cum;
  if (!config.class_probabilities.empty()) {
    double total = 0.0;
    for (double p : config.class_probabilities) {
      TG_CHECK_MSG(p >= 0.0, "negative class probability");
      total += p;
    }
    TG_CHECK_MSG(total > 0.0, "class probabilities must not all be zero");
    double cum = 0.0;
    for (double p : config.class_probabilities) {
      cum += p / total;
      class_cum.push_back(cum);
    }
    class_cum.back() = 1.0;
  }

  // --- servers ---------------------------------------------------------------
  std::vector<ServerState> servers(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s) {
    servers[s].queue = make_task_queue(config.policy, config.classes.size(),
                                       config.edf_impl);
    servers[s].queue_wheel =
        dynamic_cast<TimerWheelEdfQueue*>(servers[s].queue.get());
    servers[s].queue_fifo =
        dynamic_cast<FifoTaskQueue*>(servers[s].queue.get());
    servers[s].service = per_server[s];
    servers[s].service_plq =
        dynamic_cast<const PiecewiseLinearQuantile*>(per_server[s].get());
  }

  // --- default placement: uniform distinct servers ----------------------------
  std::vector<ServerId> perm(config.num_servers);
  for (std::size_t s = 0; s < config.num_servers; ++s)
    perm[s] = static_cast<ServerId>(s);
  auto default_placement = [&perm](Rng& r, ClassId, std::uint32_t kf) {
    TG_CHECK_MSG(kf <= perm.size(),
                 "fanout " << kf << " exceeds cluster size " << perm.size());
    for (std::uint32_t i = 0; i < kf; ++i) {
      const auto j =
          i + static_cast<std::size_t>(r.uniform_index(perm.size() - i));
      std::swap(perm[i], perm[j]);
    }
  };
  // Dispatch placement with a branch instead of wrapping the default in a
  // std::function: the default shuffle then inlines into issue_query.
  // A custom `placement` functor takes precedence over the policy knob
  // (tests pin exact placements through it). least_loaded keeps the legacy
  // shuffle path above byte-for-byte: every simulator server is an equal
  // candidate, so least-loaded over an unweighted candidate view is exactly
  // uniform distinct sampling — and the Rng stream (one draw per replica)
  // stays bit-identical to the pre-policy simulator. The informed policies
  // route through the control plane over live queue-depth candidates.
  const bool custom_placement = static_cast<bool>(config.placement);
  const bool informed_placement =
      !custom_placement &&
      placement_opts.kind != PlacementPolicyKind::kLeastLoaded;

  // --- bookkeeping -------------------------------------------------------------
  std::vector<bool> record_query_flag;  // indexed by admitted QueryId
  MetricsCollector metrics;

  // Request mode state. Follow-up queries stay on the head query's shard
  // (shard affinity: the request's Eq. 7 budget chain lives in one handler).
  // Request ids are the dense 0, 1, 2, ... and query ids cover every shard's
  // progression, so both maps live in SlabMaps (stride 1): the per-result
  // link/unlink on the hot path is array loads plus freelist pushes, never a
  // hash probe or node allocation.
  struct RequestState {
    TimeMs t0 = 0.0;
    std::size_t next_query = 0;  // index of the next query to issue
    std::uint32_t shard = 0;
    bool record = false;
  };
  SlabMap<RequestState> requests;          // request id -> state
  SlabMap<std::uint64_t> query_request;    // QueryId -> request id
  std::vector<double> request_latencies;
  std::uint64_t next_request_id = 0;

  const auto warmup_offered = static_cast<std::size_t>(
      config.warmup_fraction * static_cast<double>(total_arrivals));

  SimResult result;

  // Size hint for the binary-heap fallback: one next-arrival event, at most
  // one kTaskDone per server, and — when the network model is on —
  // dispatch/result events in flight. The in-flight population scales with
  // the shard count too: each shard's admission window meters its own slice
  // of the arrivals, so N shards sustain roughly N times the single-shard
  // dispatch/result backlog.
  std::size_t expected_events = config.num_servers + 64;
  if (config.dispatch_delay_ms != nullptr || config.result_delay_ms != nullptr)
    expected_events +=
        std::size_t{4} * config.num_servers * sharding.num_shards;
  const bool dense_eligible = config.dispatch_delay_ms == nullptr &&
                              config.result_delay_ms == nullptr;
  EventQueue events(expected_events,
                    dense_eligible ? config.num_servers : 0);
  std::size_t offered = 0;
  TimeMs now = 0.0;

  const auto scale_at = [&config](TimeMs t, ServerId sid) {
    return config.service_scale ? config.service_scale(t, sid) : 1.0;
  };

  PayloadPool payloads;
  // With a result-path delay, the query handler only learns about a dequeue
  // (and its deadline miss, piggybacked on the result — §III.C) when the
  // result arrives; with central queuing it knows immediately.
  const bool defer_result_accounting = config.result_delay_ms != nullptr;

  // Starts `task` on idle server `sid` at time `t`.
  const auto start_task = [&](ServerState& sv, ServerId sid,
                              const QueuedTask& task, TimeMs t) {
    TG_DCHECK(!sv.busy);
    sv.busy = true;
    sv.busy_since = t;
    sv.current = task;
    sv.current_started = t;
    sv.current_recorded =
        task.query < record_query_flag.size() && record_query_flag[task.query];
    sv.current_missed =
        t > control.query_state(task.query).deadline + 1e-12;
    if (!defer_result_accounting) {
      control.record_task_dequeue(task.query, t, task.cls, sv.current_missed);
      if (sv.current_recorded) metrics.record_task_dequeue(sv.current_missed);
    }
    const TimeMs service = task.service_time * scale_at(t, sid);
    events.push(Event{t + service, Event::kTaskDone, sid});
  };

  // Hands a task to its server's queue (or straight into service). The
  // queue-empty check matters: inside the completion handler the server is
  // momentarily idle *with* a non-empty queue (the head is popped after the
  // result is processed), and a request-chained follow-up task must not
  // jump that queue.
  const auto deliver_task = [&](const QueuedTask& task, ServerId sid,
                                TimeMs t) {
    ServerState& sv = servers[sid];
    if (sv.busy || sv.queue_len != 0) {
      // Concrete-pointer dispatch (see ServerState): the wheel/FIFO push
      // inlines here instead of going through the vtable.
      if (sv.queue_wheel != nullptr) sv.queue_wheel->push(task);
      else if (sv.queue_fifo != nullptr) sv.queue_fifo->push(task);
      else sv.queue->push(task);
      ++sv.queue_len;
    } else {
      start_task(sv, sid, task, t);
    }
  };

  std::vector<ServerId> chosen;
  chosen.reserve(config.num_servers);
  std::vector<PlacementCandidate> cand_scratch;
  cand_scratch.reserve(config.num_servers);

  // Draws a class id from the configured mix.
  const auto sample_class = [&]() -> ClassId {
    if (class_cum.empty()) return 0;
    const double u = rng.uniform();
    const auto it = std::upper_bound(class_cum.begin(), class_cum.end(), u);
    return static_cast<ClassId>(
        std::min<std::size_t>(static_cast<std::size_t>(it - class_cum.begin()),
                              class_cum.size() - 1));
  };

  // Issues one query at time `t`: places tasks, computes deadlines, registers
  // with the tracker and enqueues/starts the tasks. `request_id` links the
  // query to a request (request mode); `request_query_idx` selects the
  // request budget.
  const auto issue_query = [&](TimeMs t, std::uint32_t shard, ClassId cls,
                               std::uint32_t kf, bool record,
                               std::uint64_t request_id = ~0ULL,
                               std::size_t request_query_idx = 0) {
    // The default shuffle leaves the placed set in perm's prefix, so the
    // common path hands a span straight over it — no copy into `chosen`.
    std::span<const ServerId> placed;
    if (custom_placement) {
      config.placement(rng, cls, kf, chosen);
      TG_DCHECK(chosen.size() == kf);
      placed = chosen;
    } else if (informed_placement) {
      // pow_d / tail_risk: live queue depths (queued + in service) as the
      // candidate loads, decided by the shard's policy. Per-decision cost
      // (an O(n) candidate build and a returned vector) is acceptable on
      // this opt-in path; the default path below stays allocation-free.
      TG_CHECK_MSG(kf <= servers.size(),
                   "fanout " << kf << " exceeds cluster size "
                             << servers.size());
      cand_scratch.clear();
      for (std::size_t s = 0; s < servers.size(); ++s) {
        cand_scratch.emplace_back(
            servers[s].queue_len + (servers[s].busy ? 1 : 0),
            static_cast<ServerId>(s));
      }
      chosen = control.place(shard, std::move(cand_scratch), kf, cls, t);
      placed = chosen;
    } else {
      default_placement(rng, cls, kf);
      placed = std::span<const ServerId>(perm.data(), kf);
    }
    if (config.on_query_placed) config.on_query_placed(cls, placed);

    // The control plane computes the budget (Eq. 6, or the Eq. 7 request
    // decomposition via the override), the shared t_D and the policy
    // ordering key, and registers the query. Request mode judges T-EDFQ
    // ordering by the request-level SLO.
    std::optional<TimeMs> budget_override;
    std::optional<TimeMs> order_slo_ms;
    if (request_mode) {
      budget_override = config.request->query_budgets[request_query_idx];
      order_slo_ms = config.request->request_slo.slo_ms;
    }
    const QueryPlan plan =
        control.begin_query(shard, t, cls, placed, budget_override,
                            order_slo_ms);
    const QueryId qid = plan.id;
    // Strided shard ids leave holes; the flag table is indexed by id, so
    // grow it to cover qid (the dense single-shard case grows by one).
    if (qid >= record_query_flag.size()) record_query_flag.resize(qid + 1);
    record_query_flag[qid] = record;
    if (request_id != ~0ULL) query_request.emplace(qid) = request_id;
    if (config.on_query_planned) config.on_query_planned(plan);

    for (std::uint32_t k = 0; k < kf; ++k) {
      const ServerId sid = placed[k];
      QueuedTask task;
      task.query = qid;
      task.cls = cls;
      task.enqueue_time = t;
      task.deadline = plan.order_deadline;
      if (config.policy == Policy::kTfEdf && config.task_budget_jitter > 0.0) {
        // Footnote-4 ablation: individually jittered ordering budgets.
        const double u = rng.uniform(-1.0, 1.0);
        task.deadline =
            t + plan.budget_ms * (1.0 + config.task_budget_jitter * u);
      }
      // Pre-sample the service demand (common random numbers across
      // policies). The concrete-pointer branch inlines the whole draw.
      const ServerState& placed_sv = servers[sid];
      task.service_time = placed_sv.service_plq != nullptr
                              ? placed_sv.service_plq->sample(rng)
                              : placed_sv.service->sample(rng);
      if (config.dispatch_delay_ms != nullptr) {
        const std::uint32_t idx = payloads.alloc();
        payloads[idx].task = task;
        events.push(Event{t + config.dispatch_delay_ms->sample(rng),
                          Event::kTaskEnqueue, sid, idx});
      } else {
        deliver_task(task, sid, t);
      }
    }
  };

  // Handles a task result reaching the query handler at time `t`: feeds the
  // online estimator, records deferred accounting, merges the result and —
  // in request mode — issues the request's next query.
  const auto handle_result = [&](TimeMs t, QueryId query, ServerId server,
                                 TimeMs dequeue_time, bool missed,
                                 bool recorded) {
    if (config.estimation == EstimationMode::kOnlineStreaming ||
        config.estimation == EstimationMode::kOnlineFromSingleProfile)
      control.observe_post_queuing(query, server, t - dequeue_time);

    if (defer_result_accounting) {
      control.record_task_dequeue(query, t, control.query_state(query).cls,
                                  missed);
      if (recorded) metrics.record_task_dequeue(missed);
    }

    QueryState finished;
    if (!control.complete_task(query, &finished)) return;
    if (recorded)
      metrics.record_query(finished.cls, finished.fanout, t - finished.t0);

    if (request_mode) {
      const std::uint64_t* link = query_request.find(query);
      TG_CHECK_MSG(link != nullptr, "query without request");
      const std::uint64_t rid = *link;
      query_request.erase(query);
      RequestState* req = requests.find(rid);
      TG_CHECK_MSG(req != nullptr, "unknown request");
      if (req->next_query < config.request->queries_per_request) {
        const std::size_t qidx = req->next_query++;
        const ClassId next_cls = sample_class();
        const std::uint32_t next_kf =
            !config.request->query_fanouts.empty()
                ? config.request->query_fanouts[qidx]
                : (config.class_fanout ? config.class_fanout(rng, next_cls)
                                       : config.fanout->sample(rng));
        issue_query(t, req->shard, next_cls, next_kf, req->record, rid, qidx);
      } else {
        if (req->record) request_latencies.push_back(t - req->t0);
        requests.erase(rid);
      }
    }
  };

  // Pre-size the per-run bookkeeping from the workload bounds so the event
  // loop below runs malloc-free in steady state (pinned by the alloc-probe
  // test): what remains are the amortized doublings of structures whose size
  // the config genuinely does not bound up front (per-group latency samples,
  // per-server queue backlogs).
  {
    const std::size_t queries_per_arrival =
        request_mode ? config.request->queries_per_request : 1;
    const std::size_t total_queries = total_arrivals * queries_per_arrival;
    const std::uint32_t shards = control.num_shards();
    // Strided shard ids leave holes: the id-indexed tables span up to
    // shards * total_queries ids even though only total_queries go live.
    record_query_flag.reserve(total_queries * shards);
    control.reserve_queries(total_queries / shards + 1, config.num_servers);
    if (!dense_eligible) payloads.reserve(expected_events);
    if (request_mode) {
      requests.reserve(total_arrivals, config.num_servers);
      query_request.reserve(total_queries * shards, config.num_servers);
      request_latencies.reserve(total_arrivals);
    }
  }

  // Arrivals stay out of the event queue entirely: the stream is generated
  // in time order, so one pending arrival time merged against the queue head
  // reproduces the old pop order exactly (at a time tie the arrival pops
  // first, as kArrival used to sort before every other kind) while roughly a
  // quarter of all queue traffic disappears.
  TimeMs next_arrival = use_trace ? config.trace.front().arrival_ms
                                  : arrivals->next_interarrival(rng);
  bool arrival_pending = true;
  ++offered;

  const std::uint64_t allocs_at_loop_entry = alloc_count();

  while (arrival_pending || !events.empty()) {
    if (arrival_pending &&
        (events.empty() || next_arrival <= events.peek_time())) {
      now = next_arrival;
      control.maybe_sync(now);
      const std::size_t arrival_idx = offered - 1;
      // Draw the next arrival first so the process is independent of
      // admission decisions.
      if (offered < total_arrivals) {
        next_arrival = use_trace ? config.trace[offered].arrival_ms
                                 : now + arrivals->next_interarrival(rng);
        ++offered;
      } else {
        arrival_pending = false;
      }

      // Query (or first-query-of-request) attributes.
      ClassId cls = 0;
      std::uint32_t kf = 1;
      if (use_trace) {
        const QueryRecord& rec = config.trace[arrival_idx];
        TG_CHECK_MSG(rec.class_id < config.classes.size(),
                     "trace class " << rec.class_id << " unknown");
        cls = rec.class_id;
        kf = rec.fanout;
      } else {
        cls = sample_class();
        if (request_mode && !config.request->query_fanouts.empty()) {
          kf = config.request->query_fanouts[0];
        } else {
          kf = config.class_fanout ? config.class_fanout(rng, cls)
                                   : config.fanout->sample(rng);
        }
      }

      // Route the arrival to its query-handler shard (the arrival index is
      // the routing key: deterministic, and a single shard always routes
      // to 0 with no extra work).
      const std::uint32_t shard = control.route(arrival_idx, cls);

      // Admission decision (per arrival: per query, or per request). The
      // coin is drawn from the simulator's own Rng so the event stream stays
      // replayable; the short-circuit keeps the draw out of admission-free
      // runs.
      if (control.admission_enabled() &&
          !control.should_admit(shard, now, rng.uniform())) {
        control.count_rejected(shard);
        ++result.queries_rejected;
        result.tasks_rejected += kf;
        continue;
      }
      control.count_admitted(shard);
      ++result.queries_admitted;
      result.tasks_admitted += kf;

      const bool record = arrival_idx + 1 > warmup_offered;
      if (request_mode) {
        const std::uint64_t rid = next_request_id++;
        requests.emplace(rid) = RequestState{.t0 = now, .next_query = 1,
                                             .shard = shard, .record = record};
        issue_query(now, shard, cls, kf, record, rid, 0);
      } else {
        issue_query(now, shard, cls, kf, record);
      }
      continue;
    }

    Event ev = events.pop();
    now = ev.time;
    control.maybe_sync(now);

    // Batched completion handling: drain every event sharing this timestamp
    // in one pass. An arrival cannot preempt the batch (the merge above
    // guarantees next_arrival > now, and event processing never draws
    // arrivals), re-popping between items keeps the exact (time, key) order
    // even for same-time events pushed mid-batch, and maybe_sync — a no-op
    // on a second call at the same time — runs once per timestamp instead of
    // once per event. Bit-identical to the one-event-at-a-time path.
    for (;;) {
      if (ev.kind() == Event::kTaskEnqueue) {
        // A dispatched task reaches its server.
        const QueuedTask task = payloads[ev.payload()].task;
        payloads.free(ev.payload());
        deliver_task(task, ev.server(), now);
      } else if (ev.kind() == Event::kTaskDone) {
        // Task completion on ev.server.
        ServerState& sv = servers[ev.server()];
        TG_DCHECK(sv.busy);
        const QueuedTask done = sv.current;
        const TimeMs dequeue_time = sv.current_started;
        const bool missed = sv.current_missed;
        const bool recorded = sv.current_recorded;

        // Free the server before the result handling possibly issues
        // follow-up queries that could land on this very server.
        sv.busy = false;
        sv.busy_accum += now - sv.busy_since;

        if (config.result_delay_ms != nullptr) {
          const std::uint32_t idx = payloads.alloc();
          payloads[idx].query = done.query;
          payloads[idx].dequeue_time = dequeue_time;
          payloads[idx].missed = missed;
          payloads[idx].recorded = recorded;
          events.push(Event{now + config.result_delay_ms->sample(rng),
                            Event::kResultArrival, ev.server(), idx});
        } else {
          handle_result(now, done.query, ev.server(), dequeue_time, missed,
                        recorded);
        }

        if (sv.queue_len != 0 && !sv.busy) {
          QueuedTask next = sv.queue_wheel != nullptr ? sv.queue_wheel->pop()
                            : sv.queue_fifo != nullptr ? sv.queue_fifo->pop()
                                                       : sv.queue->pop();
          --sv.queue_len;
          start_task(sv, ev.server(), next, now);
        }
      } else {
        // A task result reaches the query handler.
        const EventPayload payload = payloads[ev.payload()];
        payloads.free(ev.payload());
        handle_result(now, payload.query, ev.server(), payload.dequeue_time,
                      payload.missed, payload.recorded);
      }
      if (events.empty() || events.peek_time() != now) break;
      ev = events.pop();
    }
  }

  // --- collect results ----------------------------------------------------
  result.event_loop_allocs = alloc_count() - allocs_at_loop_entry;
  result.queries_offered = result.queries_admitted + result.queries_rejected;
  result.end_time = now;
  result.task_deadline_miss_ratio = metrics.task_deadline_miss_ratio();
  result.shards = control.num_shards();
  result.shard_sync_rounds = control.sync_stats().rounds;
  result.shard_samples_shipped = control.sync_stats().samples_shipped;
  result.shard_slack_samples_shipped =
      control.sync_stats().slack_samples_shipped;
  result.placement_kind = control.placement_kind();
  {
    const PlacementStats pstats = control.placement_stats();
    result.placement_decisions = pstats.decisions;
    result.placement_candidates_considered = pstats.candidates_considered;
    result.placement_mean_staleness_ms =
        pstats.decisions_with_slack > 0
            ? pstats.slack_staleness_ms_sum /
                  static_cast<double>(pstats.decisions_with_slack)
            : 0.0;
  }

  double busy_total = 0.0;
  result.server_utilization.reserve(servers.size());
  for (const auto& sv : servers) {
    busy_total += sv.busy_accum;
    result.server_utilization.push_back(now > 0.0 ? sv.busy_accum / now : 0.0);
  }
  result.measured_utilization =
      now > 0.0 ? busy_total / (static_cast<double>(config.num_servers) * now)
                : 0.0;

  std::vector<std::pair<GroupKey, LatencySample>*> sorted_groups;
  sorted_groups.reserve(metrics.groups().size());
  for (auto& group : metrics.mutable_groups()) sorted_groups.push_back(&group);
  std::sort(sorted_groups.begin(), sorted_groups.end(),
            [](const auto* a, const auto* b) {
              return a->first.cls != b->first.cls
                         ? a->first.cls < b->first.cls
                         : a->first.fanout < b->first.fanout;
            });

  // Percentiles select in place (no copy, no full sort), permuting each
  // sample buffer — so everything that depends on insertion order happens
  // strictly before the selection that consumes it: per-class concatenation
  // and means first (floating-point sums are order-sensitive; the reported
  // means are pinned to insertion order by stats_test), then the destructive
  // tail extraction.
  std::vector<std::vector<double>> per_class_values(config.classes.size());
  for (const auto* group : sorted_groups) {
    auto& acc = per_class_values[group->first.cls];
    const std::vector<double>& values = group->second.values();
    acc.insert(acc.end(), values.begin(), values.end());
  }
  for (auto* group : sorted_groups) {
    const GroupKey& key = group->first;
    const ClassSpec& spec = config.classes[key.cls];
    GroupResult g;
    g.cls = key.cls;
    g.fanout = key.fanout;
    g.queries = group->second.count();
    const auto tm = group->second.tail_and_mean(spec.percentile);
    g.tail_latency_ms = tm.tail_ms;
    g.mean_latency_ms = tm.mean_ms;
    g.slo = spec.slo_ms;
    g.met = g.tail_latency_ms <= spec.slo_ms;
    result.groups.push_back(g);
  }

  for (std::size_t cls = 0; cls < config.classes.size(); ++cls) {
    if (per_class_values[cls].empty()) continue;
    const ClassSpec& spec = config.classes[cls];
    ClassResult c;
    c.cls = static_cast<ClassId>(cls);
    c.queries = per_class_values[cls].size();
    c.mean_latency_ms = mean_of(per_class_values[cls]);
    c.tail_latency_ms =
        percentile_inplace(per_class_values[cls], spec.percentile);
    c.slo = spec.slo_ms;
    c.met = c.tail_latency_ms <= spec.slo_ms;
    result.class_results.push_back(c);
  }

  if (request_mode && !request_latencies.empty()) {
    const ClassSpec& rslo = config.request->request_slo;
    result.requests_recorded = request_latencies.size();
    result.request_mean_latency_ms = mean_of(request_latencies);
    result.request_tail_latency_ms =
        percentile_inplace(request_latencies, rslo.percentile);
    result.request_slo_met = result.request_tail_latency_ms <= rslo.slo_ms;
  }

  return result;
}

}  // namespace tailguard
