// Sequential request execution on the threaded runtime (paper Fig. 1 +
// §III.B remark).
//
// A *request* is M queries issued strictly in sequence — query i+1 cannot
// start before query i's results are merged. Eq. 7 makes the pre-dequeuing
// budget additive across the request, so the caller decomposes the request
// SLO into per-query budgets (core/request.h::split_request_budget) and the
// runner imposes budget i on query i via TailGuardService::submit's budget
// override.
//
//   auto budgets = split_request_budget(request_budget, specs, 0.99,
//                                       BudgetSplit::kProportionalToUnloaded);
//   auto future = submit_request(service, std::move(plans), budgets);
//   RequestResult r = future.get();
//
// The returned future is a std::async handle: it must be kept alive until
// the request finishes (its destructor joins), and the service must outlive
// it.
#pragma once

#include <future>
#include <vector>

#include "common/check.h"
#include "core/request.h"
#include "runtime/service.h"

namespace tailguard {

/// One query of a request.
struct RequestQueryPlan {
  ClassId cls = 0;
  std::vector<ServiceTaskSpec> tasks;
};

struct RequestResult {
  /// False if any constituent query was rejected by admission control; the
  /// remaining queries are then not issued (the request fails as a whole).
  bool admitted = true;
  TimeMs latency_ms = 0.0;  ///< first submit -> last merge
  std::vector<QueryResult> queries;
};

/// Issues the plans sequentially with the given per-query budgets.
/// `budgets.size()` must equal `plans.size()`.
inline std::future<RequestResult> submit_request(
    TailGuardService& service, std::vector<RequestQueryPlan> plans,
    std::vector<TimeMs> budgets) {
  TG_CHECK_MSG(!plans.empty(), "request needs at least one query");
  TG_CHECK_MSG(plans.size() == budgets.size(),
               "one budget per request query required");
  return std::async(std::launch::async, [&service, plans = std::move(plans),
                                         budgets = std::move(budgets)]() mutable {
    RequestResult result;
    const TimeMs t0 = service.now_ms();
    for (std::size_t i = 0; i < plans.size(); ++i) {
      QueryResult q =
          service.submit(plans[i].cls, std::move(plans[i].tasks), budgets[i])
              .get();
      const bool rejected = !q.admitted;
      result.queries.push_back(std::move(q));
      if (rejected) {
        result.admitted = false;
        break;
      }
    }
    result.latency_ms = service.now_ms() - t0;
    return result;
  });
}

}  // namespace tailguard
