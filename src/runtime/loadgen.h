// Open-loop load generator for the threaded TailGuard runtime.
//
// Drives a TailGuardService with Poisson (or Pareto) arrivals at a target
// wall-clock rate — the runtime analogue of the simulator's arrival process
// — and reports per-class latency percentiles, the achieved rate and the
// deadline-miss ratio. Used by the runtime testbed bench and the examples.
#pragma once

#include <functional>
#include <vector>

#include "dist/arrival.h"
#include "runtime/service.h"

namespace tailguard {

struct LoadGenOptions {
  /// Mean arrival rate in queries per second (wall clock).
  double rate_qps = 100.0;
  std::size_t num_queries = 1000;
  /// Queries in the leading warmup fraction are executed but not measured.
  double warmup_fraction = 0.1;
  bool pareto_arrivals = false;
  double pareto_shape = 1.5;
  std::uint64_t seed = 1;
};

/// Produces the next query to submit. Called on the load-generator thread.
struct LoadGenQuery {
  ClassId cls = 0;
  std::vector<ServiceTaskSpec> tasks;
};
using QueryFactory = std::function<LoadGenQuery(Rng&)>;

struct ClassLoadStats {
  ClassId cls = 0;
  std::size_t queries = 0;
  TimeMs p50_ms = 0.0;
  TimeMs p95_ms = 0.0;
  TimeMs p99_ms = 0.0;
  TimeMs mean_ms = 0.0;
};

struct LoadGenReport {
  std::vector<ClassLoadStats> per_class;
  std::size_t submitted = 0;
  std::size_t rejected = 0;
  double elapsed_s = 0.0;
  double achieved_qps = 0.0;
  double deadline_miss_ratio = 0.0;

  const ClassLoadStats* find_class(ClassId cls) const;
};

/// Submits `options.num_queries` queries at the target rate and blocks
/// until every response arrives.
LoadGenReport run_load(TailGuardService& service, const LoadGenOptions& options,
                       const QueryFactory& factory);

}  // namespace tailguard
