// TailGuardService — the in-process, multi-threaded TailGuard runtime.
//
// This is the "implemented and tested" counterpart of the paper's testbed
// software: a central query handler (Fig. 2) that fans queries out to worker
// threads, computes task queuing deadlines from per-worker CDF models,
// updates those models online from observed post-queuing times (§III.B.2),
// and optionally applies query admission control (§III.C).
//
// Typical use (see examples/quickstart.cpp):
//
//   ServiceOptions opt;
//   opt.num_workers = 8;
//   opt.policy = Policy::kTfEdf;
//   opt.classes = {{.slo_ms = 20.0, .percentile = 99.0}};
//   TailGuardService svc(opt);
//   svc.seed_profile(offline_samples);                  // offline estimation
//   auto fut = svc.submit(/*cls=*/0, tasks);            // fan out
//   QueryResult r = fut.get();                          // merged result
#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "core/admission.h"
#include "runtime/worker.h"
#include "shard/sharded_control_plane.h"

namespace tailguard {

struct ServiceOptions {
  std::size_t num_workers = 4;
  Policy policy = Policy::kTfEdf;
  /// Service classes ordered by priority (class 0 tightest, as PRIQ expects).
  std::vector<ClassSpec> classes;
  /// Streaming-model knobs for the per-worker CDFs.
  StreamingCdfModel::Options model_options = {
      .histogram = {.min_value = 1e-3,
                    .max_value = 1e6,
                    .buckets_per_decade = 100,
                    .decay_every = 0,
                    .decay_factor = 0.5},
      .refresh_every = 500};
  /// Admission control; disabled when unset.
  std::optional<AdmissionOptions> admission;
  std::uint64_t seed = 42;
  /// Query-handler sharding (src/shard): submissions are routed across this
  /// many control-plane replicas, each behind its own mutex, with periodic
  /// delta-sync of models/admission/load state. 1 (the default) preserves
  /// the single-handler behaviour exactly.
  std::uint32_t num_handler_shards = 1;
  /// Delta-sync period (service-clock ms); <= 0 disables sync.
  TimeMs shard_sync_interval_ms = 0.0;
  /// Round-robin keeps concurrent submitters evenly spread by default.
  RouterKind shard_router = RouterKind::kRoundRobin;
  /// Placement policy for auto-placed tasks (core/placement/policy.h).
  /// Unset resolves from the environment (TAILGUARD_PLACEMENT /
  /// TAILGUARD_PLACEMENT_D), defaulting to least_loaded — the pre-policy
  /// behaviour, bit-for-bit.
  std::optional<PlacementPolicyOptions> placement;
  /// Observer called once per submitted query with the workers its tasks
  /// landed on (explicit targets included), in task order, before the
  /// admission decision. Runs under the shard lock — keep it cheap. Purely
  /// observational, for the cross-backend placement parity tests.
  std::function<void(std::span<const ServerId>)> placement_observer;
};

/// One task of a submitted query.
struct ServiceTaskSpec {
  /// Target worker; unset means the handler picks the least-loaded workers,
  /// distinct per query.
  std::optional<ServerId> worker;
  std::function<void()> work;
  TimeMs simulated_service_ms = 0.0;
};

struct QueryResult {
  QueryId id = 0;
  ClassId cls = 0;
  std::uint32_t fanout = 0;
  bool admitted = true;
  TimeMs latency_ms = 0.0;       ///< submit -> last merge
  TimeMs deadline_budget_ms = 0.0;  ///< T_b assigned at submit
  std::uint32_t tasks_missed_deadline = 0;
  /// Tasks that produced no result (remote server died or timed out). Always
  /// 0 for the in-process runtime; the remote dispatcher counts a query as
  /// degraded, not hung, when a task server fails mid-query.
  std::uint32_t tasks_failed = 0;
};

class TailGuardService {
 public:
  explicit TailGuardService(ServiceOptions options);
  /// Blocks until all in-flight queries finish, then stops the workers.
  ~TailGuardService();

  TailGuardService(const TailGuardService&) = delete;
  TailGuardService& operator=(const TailGuardService&) = delete;

  /// Offline estimation: seeds every worker's CDF model with a profiled
  /// post-queuing-time sample (ms).
  void seed_profile(std::span<const double> samples_ms);

  /// Submits a query of class `cls` with one entry per task. The future
  /// resolves when all task results are merged (or immediately with
  /// admitted=false when admission control rejects the query).
  ///
  /// `budget_override` replaces the Eq. 6 pre-dequeuing budget with an
  /// explicit one (the task deadline becomes now + budget). Request-level
  /// decomposition (Eq. 7) uses this to impose per-query budgets computed
  /// by split_request_budget(); see runtime/request_runner.h.
  std::future<QueryResult> submit(ClassId cls,
                                  std::vector<ServiceTaskSpec> tasks,
                                  std::optional<TimeMs> budget_override = {});

  /// Monotonic service clock (ms since construction).
  TimeMs now_ms() const;

  std::uint64_t completed_queries() const;
  std::uint64_t rejected_queries() const;
  double deadline_miss_ratio() const;
  std::size_t num_workers() const { return workers_.size(); }

  /// Placement observability: which policy ran and its per-decision
  /// counters, summed across handler shards.
  PlacementPolicyKind placement_kind() const;
  PlacementStats placement_stats() const;

  /// Snapshot of a worker's CDF model (e.g. to inspect learned quantiles):
  /// a deep copy taken under the shard locks, safe to read while queries are
  /// still in flight. (Returning a reference here used to let the model
  /// escape its lock while worker threads kept updating it — the annotation
  /// pass caught that.)
  std::shared_ptr<const CdfModel> worker_model(ServerId worker) const;

 private:
  struct PendingQuery {
    std::promise<QueryResult> promise;
    QueryResult result;
  };

  /// One query-handler shard: its mutex guards both the pending map below
  /// and every control-plane call made with this shard's index (sound
  /// because all of ShardedControlPlane's mutable state is per-shard).
  /// Cross-shard operations — delta-sync, aggregated counters — take every
  /// shard's mutex in index order (see lock_all / maybe_sync).
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<QueryId, PendingQuery> pending TG_GUARDED_BY(mu);
  };

  void on_task_complete(ServerId worker, const RuntimeTask& task,
                        TimeMs dequeue_ms, TimeMs complete_ms);
  /// Caller must hold the submitting shard's mutex (which one is a runtime
  /// value, so the requirement is not expressible as a TSA capability —
  /// control_ state is per-shard as documented on Shard).
  std::vector<ServerId> pick_workers(std::uint32_t shard, std::size_t count,
                                     ClassId cls, TimeMs now);
  /// N-ary ordered acquisition through a dynamic container: inherently
  /// outside TSA's static capability model, like std::lock. unique_lock
  /// works on the annotated Mutex (a Lockable); the std header is simply
  /// not analyzed.
  std::vector<std::unique_lock<Mutex>> lock_all() const;
  /// Runs a delta-sync round when the interval boundary has passed; cheap
  /// atomic check on the fast path, all-shard lock only when a round is due.
  void maybe_sync(TimeMs now);

  // tg-lint: allow(guarded-member): immutable after construction.
  ServiceOptions options_;
  // tg-lint: allow(guarded-member): immutable after construction.
  std::chrono::steady_clock::time_point epoch_;

  /// The query-handler pipeline (shard/sharded_control_plane.h): admission,
  /// Eq. 6/7 budgets, t_D and ordering keys, query tracking, per-class miss
  /// accounting, online model updates — N replicas with delta-sync. Locking
  /// per shard, as documented on Shard.
  ShardedControlPlane control_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<TaskId> next_task_id_{0};
  /// Routing key source: one monotone counter across all submitters.
  std::atomic<std::uint64_t> submit_seq_{0};
  /// Racy mirror of control_.next_sync_at(), so non-due completions skip the
  /// all-shard lock.
  std::atomic<double> next_sync_hint_;

  // Workers last: their threads must stop before the state above dies, and
  // member destruction order (reverse declaration) guarantees it.
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace tailguard
