#include "runtime/loadgen.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <map>
#include <thread>

#include "common/check.h"
#include "common/stats.h"

namespace tailguard {

const ClassLoadStats* LoadGenReport::find_class(ClassId cls) const {
  for (const auto& c : per_class)
    if (c.cls == cls) return &c;
  return nullptr;
}

LoadGenReport run_load(TailGuardService& service, const LoadGenOptions& options,
                       const QueryFactory& factory) {
  TG_CHECK_MSG(options.rate_qps > 0.0, "rate must be positive");
  TG_CHECK_MSG(options.num_queries > 0, "need at least one query");
  TG_CHECK_MSG(factory != nullptr, "need a query factory");

  Rng rng(options.seed);
  std::unique_ptr<ArrivalProcess> arrivals;
  const double rate_per_ms = options.rate_qps / 1000.0;
  if (options.pareto_arrivals) {
    arrivals = std::make_unique<ParetoProcess>(rate_per_ms,
                                               options.pareto_shape);
  } else {
    arrivals = std::make_unique<PoissonProcess>(rate_per_ms);
  }

  struct Pending {
    ClassId cls = 0;
    bool measured = false;
    std::future<QueryResult> future;
  };
  std::vector<Pending> pending;
  pending.reserve(options.num_queries);

  const auto warmup = static_cast<std::size_t>(
      options.warmup_fraction * static_cast<double>(options.num_queries));

  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto next_submit = start;
  for (std::size_t i = 0; i < options.num_queries; ++i) {
    next_submit += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(
            arrivals->next_interarrival(rng)));
    std::this_thread::sleep_until(next_submit);
    LoadGenQuery query = factory(rng);
    Pending p;
    p.cls = query.cls;
    p.measured = i >= warmup;
    p.future = service.submit(query.cls, std::move(query.tasks));
    pending.push_back(std::move(p));
  }

  LoadGenReport report;
  report.submitted = options.num_queries;
  std::map<ClassId, std::vector<double>> latencies;
  for (auto& p : pending) {
    const QueryResult r = p.future.get();
    if (!r.admitted) {
      ++report.rejected;
      continue;
    }
    if (p.measured) latencies[p.cls].push_back(r.latency_ms);
  }
  const auto end = Clock::now();
  report.elapsed_s = std::chrono::duration<double>(end - start).count();
  report.achieved_qps =
      report.elapsed_s > 0.0
          ? static_cast<double>(options.num_queries) / report.elapsed_s
          : 0.0;
  report.deadline_miss_ratio = service.deadline_miss_ratio();

  for (auto& [cls, values] : latencies) {
    ClassLoadStats stats;
    stats.cls = cls;
    stats.queries = values.size();
    // Mean first, over completion order (in-place selection below permutes
    // the buffer, and floating-point sums are order-sensitive); then each
    // percentile via nth_element — selection only permutes, so the three
    // stacked calls return exactly what a full sort would, in O(n) each.
    stats.mean_ms = mean_of(values);
    stats.p50_ms = percentile_inplace(values, 50.0);
    stats.p95_ms = percentile_inplace(values, 95.0);
    stats.p99_ms = percentile_inplace(values, 99.0);
    report.per_class.push_back(stats);
  }
  return report;
}

}  // namespace tailguard
