#include "runtime/service.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "core/placement.h"

namespace tailguard {

namespace {
std::vector<std::shared_ptr<CdfModel>> make_worker_models(
    const ServiceOptions& options) {
  std::vector<std::shared_ptr<CdfModel>> models;
  models.reserve(options.num_workers);
  for (std::size_t i = 0; i < options.num_workers; ++i)
    models.push_back(
        std::make_shared<StreamingCdfModel>(options.model_options));
  return models;
}

ControlPlaneOptions make_control_plane_options(const ServiceOptions& options) {
  ControlPlaneOptions cp;
  cp.policy = options.policy;
  cp.classes = options.classes;
  cp.admission = options.admission;
  cp.placement =
      options.placement ? *options.placement : placement_from_env();
  cp.seed = options.seed;
  return cp;
}

ShardingOptions make_sharding_options(const ServiceOptions& options) {
  ShardingOptions sh;
  sh.num_shards = options.num_handler_shards;
  sh.sync_interval_ms = options.shard_sync_interval_ms;
  sh.router = options.shard_router;
  return sh;
}
}  // namespace

TailGuardService::TailGuardService(ServiceOptions options)
    : options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()),
      control_(make_sharding_options(options_),
               make_control_plane_options(options_),
               make_worker_models(options_)) {
  TG_CHECK_MSG(options_.num_workers >= 1, "need at least one worker");
  TG_CHECK_MSG(!options_.classes.empty(), "need at least one service class");

  shards_.reserve(control_.num_shards());
  for (std::uint32_t i = 0; i < control_.num_shards(); ++i)
    shards_.push_back(std::make_unique<Shard>());
  next_sync_hint_.store(control_.next_sync_at(), std::memory_order_relaxed);

  const auto clock = [this] { return now_ms(); };
  const auto on_complete = [this](ServerId worker, const RuntimeTask& task,
                                  TimeMs dequeue_ms, TimeMs complete_ms) {
    on_task_complete(worker, task, dequeue_ms, complete_ms);
  };
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i)
    workers_.push_back(std::make_unique<Worker>(
        static_cast<ServerId>(i), options_.policy, options_.classes.size(),
        clock, on_complete));
}

TailGuardService::~TailGuardService() {
  // Workers are declared last, so they are destroyed first: each drains its
  // queue and joins, firing the remaining completions while the rest of the
  // service state is still alive.
  for (auto& w : workers_) w->shutdown();
}

TimeMs TailGuardService::now_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<std::unique_lock<Mutex>> TailGuardService::lock_all() const {
  // Index order everywhere, so lock_all never deadlocks against per-shard
  // paths (which hold at most one shard mutex).
  std::vector<std::unique_lock<Mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& s : shards_) locks.emplace_back(s->mu);
  return locks;
}

void TailGuardService::maybe_sync(TimeMs now) {
  if (!control_.sync_enabled()) return;
  if (now < next_sync_hint_.load(std::memory_order_relaxed)) return;
  auto locks = lock_all();
  // Another thread may have run the round between the hint check and the
  // locks; maybe_sync re-checks under the barrier and no-ops in that case.
  control_.maybe_sync(now);
  next_sync_hint_.store(control_.next_sync_at(), std::memory_order_relaxed);
}

void TailGuardService::seed_profile(std::span<const double> samples_ms) {
  auto locks = lock_all();
  for (std::size_t w = 0; w < workers_.size(); ++w)
    control_.seed_profile(static_cast<ServerId>(w), samples_ms);
}

std::vector<ServerId> TailGuardService::pick_workers(std::uint32_t shard,
                                                     std::size_t count,
                                                     ClassId cls, TimeMs now) {
  TG_CHECK_MSG(count <= workers_.size(),
               "query fanout " << count << " exceeds worker count "
                               << workers_.size());
  std::vector<PlacementCandidate> load;
  load.reserve(workers_.size());
  for (const auto& w : workers_) load.emplace_back(w->queue_depth(), w->id());
  if (control_.sync_enabled()) {
    // Ship this shard's current load view in the next delta (gauges).
    for (const auto& [depth, id] : load)
      control_.update_local_load(shard, id,
                                 static_cast<std::uint32_t>(depth));
  }
  return control_.place(shard, std::move(load), count, cls, now);
}

std::future<QueryResult> TailGuardService::submit(
    ClassId cls, std::vector<ServiceTaskSpec> tasks,
    std::optional<TimeMs> budget_override) {
  TG_CHECK_MSG(!tasks.empty(), "query must contain at least one task");
  TG_CHECK_MSG(cls < options_.classes.size(), "unknown class " << cls);

  const TimeMs t0 = now_ms();
  const std::uint32_t shard = control_.route(
      submit_seq_.fetch_add(1, std::memory_order_relaxed), cls);
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();

  std::vector<ServerId> placement(tasks.size());
  std::vector<RuntimeTask> runtime_tasks(tasks.size());
  TimeMs order_deadline = 0.0;
  QueryId qid = 0;

  {
    // Bind the shard first: TSA matches capability expressions
    // syntactically, and `sh.mu` / `sh.pending` line up where the
    // vector-indexing expression would not.
    Shard& sh = *shards_[shard];
    MutexLock lock(sh.mu);

    // Placement: explicit workers are honoured; the rest go to the
    // least-loaded workers, distinct where possible.
    std::vector<std::size_t> unassigned;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (tasks[i].worker) {
        TG_CHECK_MSG(*tasks[i].worker < workers_.size(),
                     "unknown worker " << *tasks[i].worker);
        placement[i] = *tasks[i].worker;
      } else {
        unassigned.push_back(i);
      }
    }
    if (!unassigned.empty()) {
      const auto picked = pick_workers(shard, unassigned.size(), cls, t0);
      for (std::size_t j = 0; j < unassigned.size(); ++j)
        placement[unassigned[j]] = picked[j];
    }
    if (options_.placement_observer) options_.placement_observer(placement);

    // Admission decision (paper §III.C).
    if (!control_.should_admit(shard, t0)) {
      control_.count_rejected(shard);
      QueryResult r;
      r.cls = cls;
      r.fanout = static_cast<std::uint32_t>(tasks.size());
      r.admitted = false;
      promise.set_value(r);
      return future;
    }
    control_.count_admitted(shard);

    // Budget (Eq. 6, or the caller-imposed Eq. 7 override), t_D and the
    // ordering key all come from the control plane.
    const QueryPlan plan =
        control_.begin_query(shard, t0, cls, placement, budget_override);
    qid = plan.id;
    order_deadline = plan.order_deadline;
    PendingQuery pending;
    pending.promise = std::move(promise);
    pending.result.id = qid;
    pending.result.cls = cls;
    pending.result.fanout = static_cast<std::uint32_t>(tasks.size());
    pending.result.deadline_budget_ms = plan.budget_ms;
    sh.pending.emplace(qid, std::move(pending));

    for (std::size_t i = 0; i < tasks.size(); ++i) {
      runtime_tasks[i].id = next_task_id_.fetch_add(1, std::memory_order_relaxed);
      runtime_tasks[i].query = qid;
      runtime_tasks[i].cls = cls;
      runtime_tasks[i].work = std::move(tasks[i].work);
      runtime_tasks[i].simulated_service_ms = tasks[i].simulated_service_ms;
    }
  }

  for (std::size_t i = 0; i < tasks.size(); ++i)
    workers_[placement[i]]->submit(std::move(runtime_tasks[i]), t0,
                                   order_deadline);
  maybe_sync(t0);
  return future;
}

void TailGuardService::on_task_complete(ServerId worker,
                                        const RuntimeTask& task,
                                        TimeMs dequeue_ms,
                                        TimeMs complete_ms) {
  const std::uint32_t shard = control_.shard_of(task.query);
  std::promise<QueryResult> to_fulfill;
  QueryResult result;
  bool finished = false;
  {
    Shard& sh = *shards_[shard];
    MutexLock lock(sh.mu);
    const QueryState& qs = control_.query_state(task.query);
    const bool missed = dequeue_ms > qs.deadline;
    control_.record_task_dequeue(task.query, dequeue_ms, task.cls, missed);

    // Online updating (§III.B.2): post-queuing time = completion - dequeue.
    control_.observe_post_queuing(task.query, worker,
                                  complete_ms - dequeue_ms);

    auto& pending = sh.pending;
    auto it = pending.find(task.query);
    TG_CHECK_MSG(it != pending.end(), "no pending entry for query");
    if (missed) ++it->second.result.tasks_missed_deadline;

    QueryState final_state;
    if (control_.complete_task(task.query, &final_state)) {
      finished = true;
      it->second.result.latency_ms = complete_ms - final_state.t0;
      result = it->second.result;
      to_fulfill = std::move(it->second.promise);
      pending.erase(it);
    }
  }
  if (finished) to_fulfill.set_value(result);
  maybe_sync(complete_ms);
}

std::uint64_t TailGuardService::completed_queries() const {
  auto locks = lock_all();
  return control_.queries_completed();
}

std::uint64_t TailGuardService::rejected_queries() const {
  auto locks = lock_all();
  return control_.queries_rejected();
}

double TailGuardService::deadline_miss_ratio() const {
  auto locks = lock_all();
  return control_.task_miss_ratio();
}

PlacementPolicyKind TailGuardService::placement_kind() const {
  return control_.placement_kind();  // immutable after construction
}

PlacementStats TailGuardService::placement_stats() const {
  auto locks = lock_all();
  return control_.placement_stats();
}

std::shared_ptr<const CdfModel> TailGuardService::worker_model(
    ServerId worker) const {
  auto locks = lock_all();
  // Shard 0's view: with one handler shard (the default) this is the only
  // view; with several it is one replica's local+synced estimate. Deep-copy
  // under the locks: handing out a reference would race with the online
  // updates the worker threads keep applying.
  return control_.model_of(0, worker).clone();
}

}  // namespace tailguard
