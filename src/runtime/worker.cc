#include "runtime/worker.h"

#include <chrono>

#include "common/check.h"

namespace tailguard {

void execute_task_payload(const RuntimeTask& task) {
  if (task.work) {
    task.work();
  } else if (task.simulated_service_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(task.simulated_service_ms));
  }
}

Worker::Worker(ServerId id, Policy policy, std::size_t num_classes,
               ClockFn clock, CompletionFn on_complete)
    : id_(id),
      clock_(std::move(clock)),
      on_complete_(std::move(on_complete)),
      queue_(make_task_queue(policy, num_classes)) {
  TG_CHECK_MSG(clock_ != nullptr, "worker needs a clock");
  TG_CHECK_MSG(on_complete_ != nullptr, "worker needs a completion callback");
  thread_ = std::thread([this] { run(); });
}

Worker::~Worker() {
  shutdown();
  if (thread_.joinable()) thread_.join();
}

void Worker::submit(RuntimeTask task, TimeMs enqueue_ms,
                    TimeMs order_deadline) {
  task.order_deadline = order_deadline;
  // Accept-then-check: the counter bump happens before the shutdown test so
  // the worker can never observe "all accepted work consumed" while this
  // submit is still deciding — a submit that passes the check is therefore
  // guaranteed to be drained before the worker exits. A submit that loses
  // the race rolls the counter back and throws, exactly the old behavior of
  // checking `shutdown_` under the queue mutex.
  submitted_.fetch_add(1, std::memory_order_seq_cst);
  if (shutdown_.load(std::memory_order_seq_cst)) {
    submitted_.fetch_sub(1, std::memory_order_seq_cst);
    TG_CHECK_MSG(false, "submit after shutdown");
  }
  depth_.fetch_add(1, std::memory_order_relaxed);
  ring_.push(Submission{std::move(task), enqueue_ms, order_deadline});

  // Ring the doorbell only if the worker is (about to be) asleep. The
  // seq_cst publish above + seq_cst read below pair with the consumer's
  // seq_cst sleeping_ store + emptiness re-check: at least one side sees
  // the other, so the worker either self-serves or gets notified. The empty
  // lock/unlock pins down the remaining window where the consumer has set
  // sleeping_ but not yet entered wait(): we cannot notify until it holds
  // the condvar, because it holds the mutex from before its re-check until
  // wait() releases it.
  if (sleeping_.load(std::memory_order_seq_cst)) {
    { MutexLock lock(doorbell_mu_); }
    doorbell_.notify_one();
  }
}

void Worker::shutdown() {
  shutdown_.store(true, std::memory_order_seq_cst);
  { MutexLock lock(doorbell_mu_); }
  doorbell_.notify_all();
}

void Worker::drain_ring() {
  Submission s;
  while (ring_.try_pop(s)) {
    ++consumed_;
    QueuedTask qt;
    qt.task = s.task.id;
    qt.query = s.task.query;
    qt.cls = s.task.cls;
    qt.enqueue_time = s.enqueue_ms;
    qt.deadline = s.order_deadline;
    payloads_.emplace(s.task.id, std::move(s.task));
    queue_->push(qt);
  }
}

void Worker::run() {
  for (;;) {
    drain_ring();
    if (queue_->empty()) {
      // Exit only when shutdown is flagged AND every accepted submit has
      // been consumed — a producer past its shutdown check but before its
      // ring publish holds the worker here via `submitted_`.
      if (shutdown_.load(std::memory_order_seq_cst) && !work_published())
        return;
      if (work_published()) {
        // Claimed but not yet published (or just landed): spin, it is
        // nanoseconds away.
        std::this_thread::yield();
        continue;
      }
      {
        MutexLock lock(doorbell_mu_);
        sleeping_.store(true, std::memory_order_seq_cst);
        // Explicit wait loop (not the predicate overload): TSA analyzes
        // lambdas as separate functions holding no capabilities, so the
        // predicate form cannot be annotated. Same semantics.
        while (!work_published() &&
               !shutdown_.load(std::memory_order_seq_cst)) {
          doorbell_.wait(doorbell_mu_);
        }
        sleeping_.store(false, std::memory_order_seq_cst);
      }
      continue;
    }

    const QueuedTask qt = queue_->pop();
    depth_.fetch_sub(1, std::memory_order_relaxed);
    const auto it = payloads_.find(qt.task);
    TG_CHECK_MSG(it != payloads_.end(), "missing payload for task");
    RuntimeTask task = std::move(it->second);
    payloads_.erase(it);

    const TimeMs dequeue_ms = clock_();
    execute_task_payload(task);
    const TimeMs complete_ms = clock_();
    on_complete_(id_, task, dequeue_ms, complete_ms);
  }
}

}  // namespace tailguard
