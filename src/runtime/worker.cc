#include "runtime/worker.h"

#include <chrono>

#include "common/check.h"

namespace tailguard {

void execute_task_payload(const RuntimeTask& task) {
  if (task.work) {
    task.work();
  } else if (task.simulated_service_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(task.simulated_service_ms));
  }
}

Worker::Worker(ServerId id, Policy policy, std::size_t num_classes,
               ClockFn clock, CompletionFn on_complete)
    : id_(id),
      clock_(std::move(clock)),
      on_complete_(std::move(on_complete)),
      queue_(make_task_queue(policy, num_classes)) {
  TG_CHECK_MSG(clock_ != nullptr, "worker needs a clock");
  TG_CHECK_MSG(on_complete_ != nullptr, "worker needs a completion callback");
  thread_ = std::thread([this] { run(); });
}

Worker::~Worker() {
  shutdown();
  if (thread_.joinable()) thread_.join();
}

void Worker::submit(RuntimeTask task, TimeMs enqueue_ms,
                    TimeMs order_deadline) {
  QueuedTask qt;
  qt.task = task.id;
  qt.query = task.query;
  qt.cls = task.cls;
  qt.enqueue_time = enqueue_ms;
  qt.deadline = order_deadline;
  task.order_deadline = order_deadline;
  {
    std::lock_guard lock(mu_);
    TG_CHECK_MSG(!shutdown_, "submit after shutdown");
    payloads_.emplace(task.id, std::move(task));
    queue_->push(qt);
  }
  cv_.notify_one();
}

void Worker::shutdown() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

std::size_t Worker::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_->size();
}

void Worker::run() {
  for (;;) {
    RuntimeTask task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_->empty(); });
      if (queue_->empty()) return;  // shutdown with drained queue
      const QueuedTask qt = queue_->pop();
      const auto it = payloads_.find(qt.task);
      TG_CHECK_MSG(it != payloads_.end(), "missing payload for task");
      task = std::move(it->second);
      payloads_.erase(it);
    }
    const TimeMs dequeue_ms = clock_();
    execute_task_payload(task);
    const TimeMs complete_ms = clock_();
    on_complete_(id_, task, dequeue_ms, complete_ms);
  }
}

}  // namespace tailguard
