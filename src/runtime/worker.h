// A task-server worker thread for the in-process TailGuard runtime.
//
// Each worker models one task server of Fig. 2: a single execution thread
// fronted by one policy queue (the same TaskQueue implementations the
// simulator uses, so the queuing semantics are identical). Tasks carry
// either a real closure or a simulated service duration.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/policy.h"

namespace tailguard {

/// Work payload of one task.
struct RuntimeTask {
  TaskId id = 0;
  QueryId query = 0;
  ClassId cls = 0;
  /// Real work to run; when empty the worker busy-sleeps for
  /// `simulated_service_ms` instead.
  std::function<void()> work;
  TimeMs simulated_service_ms = 0.0;
  /// Queuing deadline used for ordering; filled in by Worker::submit so
  /// completion handlers (e.g. the task-server daemon's miss accounting) see
  /// the deadline the task was queued under.
  TimeMs order_deadline = kNoTime;
};

/// Executes a task's payload: runs the closure when set, otherwise sleeps for
/// the simulated service duration. Shared by every execution path that
/// consumes RuntimeTasks.
void execute_task_payload(const RuntimeTask& task);

class Worker {
 public:
  /// Called on the worker thread after each task finishes.
  /// `dequeue_ms`/`complete_ms` are on the caller-provided clock.
  using CompletionFn = std::function<void(
      ServerId worker, const RuntimeTask& task, TimeMs dequeue_ms,
      TimeMs complete_ms)>;
  /// Monotonic clock in milliseconds shared across the service.
  using ClockFn = std::function<TimeMs()>;

  Worker(ServerId id, Policy policy, std::size_t num_classes, ClockFn clock,
         CompletionFn on_complete);

  /// Drains the queue, then joins.
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Enqueues a task. `order_deadline` is the policy ordering key (t_D for
  /// TF-EDFQ, t_0 + SLO for T-EDFQ; ignored by FIFO/PRIQ).
  void submit(RuntimeTask task, TimeMs enqueue_ms, TimeMs order_deadline);

  /// Stops accepting work and finishes what is queued.
  void shutdown();

  ServerId id() const { return id_; }
  std::size_t queue_depth() const;

 private:
  void run();

  ServerId id_;
  ClockFn clock_;
  CompletionFn on_complete_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<TaskQueue> queue_;
  std::unordered_map<TaskId, RuntimeTask> payloads_;
  bool shutdown_ = false;

  std::thread thread_;
};

}  // namespace tailguard
