// A task-server worker thread for the in-process TailGuard runtime.
//
// Each worker models one task server of Fig. 2: a single execution thread
// fronted by one policy queue (the same TaskQueue implementations the
// simulator uses, so the queuing semantics are identical). Tasks carry
// either a real closure or a simulated service duration.
//
// Submission path (the microsecond hot path): producers publish into a
// bounded lock-free MPSC ring; the worker drains the ring into its private
// policy queue before every scheduling decision, so policy order is decided
// over everything published at that instant — the same eligibility rule the
// old mutex gave (anything enqueued before the pop was orderable). The only
// blocking primitive left is a condvar doorbell rung exclusively on the
// empty→nonempty edge; while the worker is busy, submit() is a handful of
// atomic ops and no syscalls.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "core/policy.h"
#include "runtime/mpsc_ring.h"

namespace tailguard {

/// Work payload of one task.
struct RuntimeTask {
  TaskId id = 0;
  QueryId query = 0;
  ClassId cls = 0;
  /// Real work to run; when empty the worker busy-sleeps for
  /// `simulated_service_ms` instead.
  std::function<void()> work;
  TimeMs simulated_service_ms = 0.0;
  /// Queuing deadline used for ordering; filled in by Worker::submit so
  /// completion handlers (e.g. the task-server daemon's miss accounting) see
  /// the deadline the task was queued under.
  TimeMs order_deadline = kNoTime;
};

/// Executes a task's payload: runs the closure when set, otherwise sleeps for
/// the simulated service duration. Shared by every execution path that
/// consumes RuntimeTasks.
void execute_task_payload(const RuntimeTask& task);

class Worker {
 public:
  /// Called on the worker thread after each task finishes.
  /// `dequeue_ms`/`complete_ms` are on the caller-provided clock.
  using CompletionFn = std::function<void(
      ServerId worker, const RuntimeTask& task, TimeMs dequeue_ms,
      TimeMs complete_ms)>;
  /// Monotonic clock in milliseconds shared across the service.
  using ClockFn = std::function<TimeMs()>;

  Worker(ServerId id, Policy policy, std::size_t num_classes, ClockFn clock,
         CompletionFn on_complete);

  /// Drains the queue, then joins.
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Enqueues a task. `order_deadline` is the policy ordering key (t_D for
  /// TF-EDFQ, t_0 + SLO for T-EDFQ; ignored by FIFO/PRIQ). Lock-free:
  /// throws via TG_CHECK if the worker is already shut down; a submit that
  /// wins the race against shutdown() is guaranteed to execute (the worker
  /// drains every accepted submission before exiting).
  void submit(RuntimeTask task, TimeMs enqueue_ms, TimeMs order_deadline)
      TG_EXCLUDES(doorbell_mu_);

  /// Stops accepting work and finishes what is queued.
  void shutdown() TG_EXCLUDES(doorbell_mu_);

  ServerId id() const { return id_; }
  /// Tasks accepted but not yet started (in the ring or the policy queue).
  std::size_t queue_depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  /// One submit() crossing the producer→consumer boundary.
  struct Submission {
    RuntimeTask task;
    TimeMs enqueue_ms = 0.0;
    TimeMs order_deadline = kNoTime;
  };

  /// Submission ring capacity (power of two). Overflow does not drop or
  /// block the worker — producers spin-yield in MpscRing::push until the
  /// worker frees slots, which it does at drain speed (no task execution in
  /// between).
  static constexpr std::size_t kRingCapacity = 1024;

  void run() TG_EXCLUDES(doorbell_mu_);
  void drain_ring();
  bool work_published() const {
    return consumed_ != submitted_.load(std::memory_order_seq_cst);
  }

  // Set once in the constructor, read-only afterwards.
  // tg-lint: allow(guarded-member)
  ServerId id_;
  // tg-lint: allow(guarded-member): immutable after construction.
  ClockFn clock_;
  // tg-lint: allow(guarded-member): immutable after construction.
  CompletionFn on_complete_;

  // Lock-free MPSC ring: synchronizes via its own acquire/release slots.
  // tg-lint: allow(guarded-member)
  MpscRing<Submission> ring_{kRingCapacity};
  /// Submissions accepted (post shutdown-check). Compared against the
  /// consumer's `consumed_` to (a) detect published-but-undrained work and
  /// (b) hold the worker alive until every accepted submit has run.
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::size_t> depth_{0};

  /// Doorbell for the empty→nonempty edge. `sleeping_` is the Dekker flag:
  /// the consumer sets it before its final emptiness re-check; producers
  /// check it after publishing. Both sides use seq_cst so one of them is
  /// guaranteed to see the other — no missed wakeup, and no notify (hence
  /// no syscall) while the worker is awake.
  std::atomic<bool> sleeping_{false};
  /// Guards nothing: it exists purely so the condvar wait/notify handshake
  /// has a mutex to close the sleeping_-set→wait() window against. All
  /// shared state crosses via the ring and the seq_cst atomics above.
  Mutex doorbell_mu_;
  CondVar doorbell_;

  // --- consumer-thread state (only the worker thread touches these, so no
  // mutex protects them by design) ---
  // tg-lint: allow(guarded-member): consumer-thread private.
  std::uint64_t consumed_ = 0;
  // tg-lint: allow(guarded-member): consumer-thread private.
  std::unique_ptr<TaskQueue> queue_;
  // tg-lint: allow(guarded-member): consumer-thread private.
  std::unordered_map<TaskId, RuntimeTask> payloads_;

  std::thread thread_;
};

}  // namespace tailguard
