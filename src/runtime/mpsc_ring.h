// Bounded lock-free multi-producer single-consumer ring (Vyukov-style).
//
// The runtime's submit path is the only microsecond-scale boundary between
// threads: every task crosses from a producer (the service front-end) into
// exactly one worker. A mutex there costs a lock/unlock pair per task plus
// contention collapse when many producers target one hot server. This ring
// replaces it: producers claim slots with one fetch_add and publish with one
// release store; the consumer pops with plain loads. No operation takes a
// lock or makes a syscall — sleeping on empty is the *caller's* job (the
// Worker adds a condvar doorbell on the empty→nonempty edge only).
//
// Concurrency contract:
//   * push(): any thread, any number concurrently.
//   * try_pop()/drain visibility: exactly ONE consumer thread, ever.
//   * Bounded: when the ring is full, push() spin-yields until the consumer
//     frees a slot. The worker drains into its (unbounded) policy queue at a
//     higher rate than producers can publish, so in practice the spin only
//     triggers under deliberate overload; it never deadlocks as long as the
//     consumer is live, which Worker guarantees by draining-before-exit.
//
// Per-producer FIFO: slots are claimed by a monotone ticket, so items from
// one producer are consumed in that producer's program order. Items from
// different producers interleave by ticket order (their claim order), which
// is exactly the guarantee the old mutex gave (lock-acquisition order).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

#include "common/check.h"

namespace tailguard {

template <typename T>
class MpscRing {
 public:
  /// `capacity` must be a power of two (slot indexing is a mask).
  explicit MpscRing(std::size_t capacity)
      : mask_(capacity - 1), cells_(new Cell[capacity]) {
    TG_CHECK_MSG(capacity >= 2 && (capacity & mask_) == 0,
                 "ring capacity must be a power of two >= 2");
    // Cell i is writable by the producer holding ticket t iff seq == t, and
    // readable by the consumer iff seq == t + 1; initially slot i accepts
    // ticket i (the first lap).
    for (std::size_t i = 0; i <= mask_; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Publishes `item`. Lock-free and wait-free while the ring has space;
  /// spin-yields while full. Callable from any number of threads.
  void push(T item) {
    const std::uint64_t ticket =
        tail_.fetch_add(1, std::memory_order_relaxed);
    Cell& cell = cells_[ticket & mask_];
    // Wait for our lap: the consumer bumps seq to ticket when it frees the
    // slot (on the first lap it is pre-set). The acquire pairs with the
    // consumer's release so the slot's storage is safely reusable.
    while (cell.seq.load(std::memory_order_acquire) != ticket)
      std::this_thread::yield();  // ring full: wait for the consumer
    cell.item = std::move(item);
    cell.seq.store(ticket + 1, std::memory_order_release);
  }

  /// Consumer only. Returns false when no published item is ready — which
  /// includes the moment a producer has claimed the head slot but not yet
  /// released it (the item is not observable yet, same as pre-mutex-unlock
  /// in the lock-based design).
  bool try_pop(T& out) {
    Cell& cell = cells_[head_ & mask_];
    if (cell.seq.load(std::memory_order_acquire) != head_ + 1) return false;
    out = std::move(cell.item);
    cell.item = T{};  // drop payload refs eagerly (closures can own state)
    // Free the slot for the producer one lap ahead.
    cell.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq;
    T item;
  };

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  /// Producer side: next ticket to claim. Own cache line so producer CAS
  /// traffic does not thrash the consumer's head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  /// Consumer side: next ticket to pop. Plain (non-atomic) — single owner.
  alignas(64) std::uint64_t head_ = 0;
};

}  // namespace tailguard
