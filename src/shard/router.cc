#include "shard/router.h"

#include "common/check.h"
#include "common/rng.h"

namespace tailguard {

const char* to_string(RouterKind kind) {
  switch (kind) {
    case RouterKind::kHash:
      return "hash";
    case RouterKind::kRoundRobin:
      return "round-robin";
    case RouterKind::kClassAffinity:
      return "class-affinity";
  }
  return "?";
}

namespace {

class HashRouter final : public ShardRouter {
 public:
  std::uint32_t route(std::uint64_t key, ClassId /*cls*/,
                      std::uint32_t num_shards) const override {
    std::uint64_t state = key;
    return static_cast<std::uint32_t>(splitmix64(state) % num_shards);
  }
  RouterKind kind() const override { return RouterKind::kHash; }
};

class RoundRobinRouter final : public ShardRouter {
 public:
  std::uint32_t route(std::uint64_t key, ClassId /*cls*/,
                      std::uint32_t num_shards) const override {
    return static_cast<std::uint32_t>(key % num_shards);
  }
  RouterKind kind() const override { return RouterKind::kRoundRobin; }
};

class ClassAffinityRouter final : public ShardRouter {
 public:
  std::uint32_t route(std::uint64_t /*key*/, ClassId cls,
                      std::uint32_t num_shards) const override {
    return cls % num_shards;
  }
  RouterKind kind() const override { return RouterKind::kClassAffinity; }
};

}  // namespace

std::unique_ptr<ShardRouter> make_router(RouterKind kind) {
  switch (kind) {
    case RouterKind::kHash:
      return std::make_unique<HashRouter>();
    case RouterKind::kRoundRobin:
      return std::make_unique<RoundRobinRouter>();
    case RouterKind::kClassAffinity:
      return std::make_unique<ClassAffinityRouter>();
  }
  TG_CHECK_MSG(false, "unknown router kind");
  return nullptr;
}

}  // namespace tailguard
