// Delta-sync bus between query-handler shards.
//
// Each shard accumulates, since its previous sync round, a ShardDelta of
//   * per-server post-queuing-time samples (feed the streaming CDF models),
//   * per-server load estimates (last-writer-wins gauges),
//   * admission miss-window increments (dequeues recorded / missed).
// Sample and dequeue fields are *increments*, never snapshots: a receiver
// merges them by applying them once, so replaying the stream cannot
// double-count. Load estimates are gauges and overwrite. Every delta carries
// (origin, seq) with seq strictly increasing per origin; receivers drop
// seq <= last-seen via DeltaDedup, which makes redelivery (wire retransmit,
// duplicated broadcast) harmless.
//
// The in-process StateSyncBus is a plain mailbox fabric — publish copies the
// delta into every other shard's inbox in shard order, drain empties an
// inbox — deterministic and single-threaded by design (callers serialise;
// the sharded control plane documents the locking contract). The wire
// transport (net/wire.h GossipDeltaMsg) carries the same struct between
// dispatcher and daemons.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/types.h"

namespace tailguard {

struct ShardDelta {
  /// Originating shard (in-process) or 0 (daemons don't know their index;
  /// wire receivers key dedup by connection instead).
  std::uint32_t origin = 0;
  /// Strictly increasing per origin; receivers drop seq <= last seen.
  std::uint64_t seq = 0;

  struct ServerEntry {
    ServerId server = 0;
    /// New post-queuing-time observations since the previous delta. May be
    /// thinned to a cap; `samples_dropped` counts what the thinning lost.
    std::vector<double> samples_ms;
    std::uint64_t samples_dropped = 0;
    /// Last-known local load (in-flight tasks) on this server, valid only
    /// when has_load. A gauge: receivers overwrite, never add.
    std::uint32_t load_estimate = 0;
    bool has_load = false;
    /// Enqueue-time slack observations (t_D − enqueue time) for tail-risk
    /// placement, same increment semantics and thinning as samples_ms.
    /// In-process StateSyncBus only: the wire GossipDeltaMsg deliberately
    /// does not carry them — daemons never place tasks, so shipping their
    /// slack view would be dead weight on every gossip frame.
    std::vector<double> slack_samples_ms;
    std::uint64_t slack_dropped = 0;

    friend bool operator==(const ServerEntry&, const ServerEntry&) = default;
  };
  std::vector<ServerEntry> servers;

  /// Admission-window increments since the previous delta.
  std::uint64_t dequeues_recorded = 0;
  std::uint64_t dequeues_missed = 0;

  bool empty() const {
    return servers.empty() && dequeues_recorded == 0 && dequeues_missed == 0;
  }

  friend bool operator==(const ShardDelta&, const ShardDelta&) = default;
};

/// Per-receiver duplicate filter: accepts a delta iff its seq is strictly
/// newer than the last accepted seq from that origin.
class DeltaDedup {
 public:
  /// True iff (origin, seq) is new; records it. False counts as a duplicate.
  bool accept(std::uint32_t origin, std::uint64_t seq);

  std::uint64_t duplicates_dropped() const { return duplicates_dropped_; }

 private:
  std::vector<std::uint64_t> last_seq_;  ///< origin -> last accepted seq
  std::uint64_t duplicates_dropped_ = 0;
};

/// In-process broadcast fabric: shard i publishes, every other shard later
/// drains. Deterministic: inboxes are FIFO and broadcast order is shard
/// order. Not thread-safe; the owner serialises all calls.
class StateSyncBus {
 public:
  explicit StateSyncBus(std::uint32_t num_shards);

  /// Broadcasts `delta` to every shard except delta.origin.
  void publish(const ShardDelta& delta);

  /// Removes and returns everything queued for `shard`, oldest first.
  std::vector<ShardDelta> drain(std::uint32_t shard);

  std::uint64_t deltas_published() const { return deltas_published_; }
  std::uint64_t deltas_delivered() const { return deltas_delivered_; }

 private:
  std::vector<std::deque<ShardDelta>> inboxes_;
  std::uint64_t deltas_published_ = 0;
  std::uint64_t deltas_delivered_ = 0;
};

}  // namespace tailguard
