#include "shard/sharded_control_plane.h"

#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace tailguard {

ShardedControlPlane::ShardedControlPlane(
    ShardingOptions sharding, ControlPlaneOptions base,
    std::vector<std::shared_ptr<CdfModel>> server_models)
    : sharding_(sharding),
      num_shards_(sharding.num_shards),
      accumulate_(sharding.sync_enabled()),
      num_servers_(server_models.size()),
      router_(make_router(sharding.router)),
      bus_(sharding.num_shards) {
  TG_CHECK_MSG(num_shards_ >= 1, "need >= 1 shard");
  TG_CHECK_MSG(!server_models.empty(), "need >= 1 server model");
  shards_.reserve(num_shards_);
  for (std::uint32_t i = 0; i < num_shards_; ++i) {
    ControlPlaneOptions opts = base;
    opts.seed = shard_substream_seed(base.seed, i);
    opts.id_start = i;
    opts.id_stride = num_shards_;
    std::vector<std::shared_ptr<CdfModel>> models;
    if (i == 0) {
      // Shard 0 keeps the caller's models untouched: with one shard the
      // facade is transparent (the parity invariant), and callers that hold
      // aliases to the models (sim ground-truth modes) keep observing the
      // live shard-0 state.
      models = server_models;
    } else {
      // Deep clones, preserving group identity: servers that shared one
      // model shared_ptr share one clone within this shard.
      std::unordered_map<const CdfModel*, std::shared_ptr<CdfModel>> cloned;
      models.reserve(server_models.size());
      for (const std::shared_ptr<CdfModel>& m : server_models) {
        std::shared_ptr<CdfModel>& c = cloned[m.get()];
        if (c == nullptr) c = m->clone();
        models.push_back(c);
      }
    }
    shards_.push_back(
        std::make_unique<QueryControlPlane>(std::move(opts), std::move(models)));
  }
  pending_.resize(num_shards_);
  for (PendingDelta& p : pending_) {
    p.samples.resize(num_servers_);
    p.dropped.assign(num_servers_, 0);
    p.load.assign(num_servers_, 0);
    p.has_load.assign(num_servers_, 0);
    p.slack.resize(num_servers_);
    p.slack_dropped.assign(num_servers_, 0);
  }
  next_seq_.assign(num_shards_, 1);
  dedup_.resize(num_shards_);
  remote_load_.assign(num_shards_, std::vector<std::uint32_t>(
                                       std::size_t{num_shards_} * num_servers_,
                                       ~std::uint32_t{0}));
  next_sync_ms_ = accumulate_ ? sharding_.sync_interval_ms : 0.0;
}

void ShardedControlPlane::accumulate_dequeue(std::uint32_t shard,
                                             bool missed) {
  PendingDelta& p = pending_[shard];
  ++p.recorded;
  if (missed) ++p.missed;
  p.any = true;
}

void ShardedControlPlane::accumulate_slack(std::uint32_t shard,
                                           std::span<const ServerId> servers,
                                           TimeMs budget_ms) {
  PendingDelta& p = pending_[shard];
  for (const ServerId server : servers) {
    std::vector<double>& buf = p.slack[server];
    if (buf.size() < kMaxPendingPerServer) {
      buf.push_back(budget_ms);
    } else {
      ++p.slack_dropped[server];
    }
  }
  p.any = true;
}

void ShardedControlPlane::observe_post_queuing_on(std::uint32_t shard,
                                                  ServerId server,
                                                  TimeMs post_ms) {
  shards_[shard]->observe_post_queuing(server, post_ms);
  if (accumulate_) {
    PendingDelta& p = pending_[shard];
    std::vector<double>& buf = p.samples[server];
    if (buf.size() < kMaxPendingPerServer) {
      buf.push_back(post_ms);
    } else {
      ++p.dropped[server];
    }
    p.any = true;
  }
}

void ShardedControlPlane::update_local_load(std::uint32_t shard,
                                            ServerId server,
                                            std::uint32_t load) {
  if (!accumulate_) return;
  PendingDelta& p = pending_[shard];
  p.load[server] = load;
  p.has_load[server] = 1;
  p.any = true;
}

void ShardedControlPlane::seed_profile(ServerId server,
                                       std::span<const double> sample) {
  for (const std::unique_ptr<QueryControlPlane>& plane : shards_) {
    for (double s : sample) plane->observe_post_queuing(server, s);
  }
}

ShardDelta ShardedControlPlane::collect_delta(std::uint32_t shard) {
  PendingDelta& p = pending_[shard];
  ShardDelta delta;
  delta.origin = shard;
  delta.seq = next_seq_[shard]++;
  delta.dequeues_recorded = p.recorded;
  delta.dequeues_missed = p.missed;
  const std::size_t cap = sharding_.max_sync_samples_per_server;
  // Deterministic thinning to the per-server cap: an evenly-strided subset
  // of the buffer, counting what the stride lost.
  const auto thin = [cap](std::vector<double>& buf, std::vector<double>& out,
                          std::uint64_t& dropped) {
    if (cap > 0 && buf.size() > cap) {
      out.reserve(cap);
      for (std::size_t i = 0; i < cap; ++i) {
        out.push_back(buf[i * buf.size() / cap]);
      }
      dropped += buf.size() - cap;
    } else {
      out = std::move(buf);
    }
    buf.clear();
  };
  for (std::size_t s = 0; s < num_servers_; ++s) {
    std::vector<double>& buf = p.samples[s];
    std::vector<double>& slack_buf = p.slack[s];
    if (buf.empty() && p.dropped[s] == 0 && !p.has_load[s] &&
        slack_buf.empty() && p.slack_dropped[s] == 0) {
      continue;
    }
    ShardDelta::ServerEntry entry;
    entry.server = static_cast<ServerId>(s);
    entry.samples_dropped = p.dropped[s];
    thin(buf, entry.samples_ms, entry.samples_dropped);
    entry.slack_dropped = p.slack_dropped[s];
    thin(slack_buf, entry.slack_samples_ms, entry.slack_dropped);
    entry.load_estimate = p.load[s];
    entry.has_load = p.has_load[s] != 0;
    delta.servers.push_back(std::move(entry));
    p.dropped[s] = 0;
    p.slack_dropped[s] = 0;
    p.has_load[s] = 0;
  }
  p.recorded = 0;
  p.missed = 0;
  p.any = false;
  return delta;
}

bool ShardedControlPlane::absorb_remote_delta(std::uint32_t shard,
                                              const ShardDelta& delta,
                                              TimeMs now) {
  if (!dedup_[shard].accept(delta.origin, delta.seq)) {
    ++stats_.duplicates_dropped;
    return false;
  }
  QueryControlPlane& plane = *shards_[shard];
  std::vector<std::uint32_t>& loads = remote_load_[shard];
  for (const ShardDelta::ServerEntry& entry : delta.servers) {
    // Feed the replica directly: absorbed samples must not re-enter this
    // shard's pending delta or every round would re-broadcast them.
    for (double s : entry.samples_ms) {
      plane.observe_post_queuing(entry.server, s);
    }
    if (entry.has_load) {
      loads[std::size_t{delta.origin} * num_servers_ + entry.server] =
          entry.load_estimate;
    }
    // Remote slack samples merge into the replica's tracker directly (same
    // no-echo rule as CDF samples above). Aged as of `now`: the delta does
    // not carry per-sample timestamps, and a sync interval of staleness is
    // exactly what the staleness counters should show.
    for (double slack_ms : entry.slack_samples_ms) {
      plane.observe_slack(entry.server, slack_ms, now);
    }
    stats_.samples_shipped += entry.samples_ms.size();
    stats_.samples_dropped += entry.samples_dropped;
    stats_.slack_samples_shipped += entry.slack_samples_ms.size();
    stats_.slack_samples_dropped += entry.slack_dropped;
  }
  plane.absorb_remote_dequeues(now, delta.dequeues_recorded,
                               delta.dequeues_missed);
  ++stats_.deltas_absorbed;
  return true;
}

std::uint32_t ShardedControlPlane::remote_load_sum(std::uint32_t shard,
                                                   ServerId server) const {
  std::uint32_t sum = 0;
  const std::vector<std::uint32_t>& loads = remote_load_[shard];
  for (std::uint32_t origin = 0; origin < num_shards_; ++origin) {
    if (origin == shard) continue;
    const std::uint32_t v = loads[std::size_t{origin} * num_servers_ + server];
    if (v != ~std::uint32_t{0}) sum += v;
  }
  return sum;
}

void ShardedControlPlane::run_sync_round(TimeMs now) {
  // Collect-then-publish-then-absorb in shard order: every shard's delta
  // reflects only pre-round state, so a round is a symmetric exchange and
  // the outcome is independent of per-shard processing order.
  std::vector<ShardDelta> outbound;
  outbound.reserve(num_shards_);
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    if (!pending_[s].any) continue;
    outbound.push_back(collect_delta(s));
  }
  for (ShardDelta& d : outbound) {
    bus_.publish(d);
    ++stats_.deltas_published;
  }
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    for (const ShardDelta& d : bus_.drain(s)) {
      absorb_remote_delta(s, d, now);
    }
  }
  ++stats_.rounds;
}

void ShardedControlPlane::rearm_after(TimeMs now) {
  // First interval boundary strictly after `now`; skipping empty boundaries
  // keeps long idle gaps O(1) instead of replaying every missed round.
  const TimeMs interval_ms = sharding_.sync_interval_ms;
  next_sync_ms_ = (std::floor(now / interval_ms) + 1.0) * interval_ms;
}

std::uint64_t ShardedControlPlane::queries_admitted() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->queries_admitted();
  return n;
}

std::uint64_t ShardedControlPlane::queries_rejected() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->queries_rejected();
  return n;
}

std::uint64_t ShardedControlPlane::queries_completed() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->queries_completed();
  return n;
}

std::uint64_t ShardedControlPlane::queries_started() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->queries_started();
  return n;
}

std::size_t ShardedControlPlane::in_flight() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->in_flight();
  return n;
}

std::uint64_t ShardedControlPlane::tasks_recorded() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->tasks_recorded();
  return n;
}

std::uint64_t ShardedControlPlane::tasks_missed() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->tasks_missed();
  return n;
}

double ShardedControlPlane::task_miss_ratio() const {
  const std::uint64_t total = tasks_recorded();
  return total == 0 ? 0.0
                    : static_cast<double>(tasks_missed()) /
                          static_cast<double>(total);
}

PlacementStats ShardedControlPlane::placement_stats() const {
  PlacementStats sum;
  for (const auto& s : shards_) {
    const PlacementStats& p = s->placement_stats();
    sum.decisions += p.decisions;
    sum.candidates_considered += p.candidates_considered;
    sum.slack_staleness_ms_sum += p.slack_staleness_ms_sum;
    sum.decisions_with_slack += p.decisions_with_slack;
  }
  return sum;
}

ClassAccounting ShardedControlPlane::class_accounting(ClassId cls) const {
  ClassAccounting sum;
  for (const auto& s : shards_) {
    const ClassAccounting& a = s->class_accounting(cls);
    sum.queries_completed += a.queries_completed;
    sum.tasks_recorded += a.tasks_recorded;
    sum.tasks_missed += a.tasks_missed;
  }
  return sum;
}

}  // namespace tailguard
