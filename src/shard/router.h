// Query-to-shard routing for the sharded control plane.
//
// A router maps a routing key (sim: arrival index; runtime/net: a submission
// sequence number; a real front-end would use a connection or user id) plus
// the query's service class onto one of N query-handler shards. Routers must
// be pure functions of (key, cls, num_shards) — no internal state, no
// randomness — so sharded runs stay bit-reproducible and a replayed key
// always lands on the same shard (request-mode follow-ups additionally pin
// the shard chosen for the head query).
#pragma once

#include <cstdint>
#include <memory>

#include "core/types.h"

namespace tailguard {

enum class RouterKind {
  /// splitmix64 of the key: decorrelates shard choice from arrival order.
  kHash,
  /// key % num_shards: perfectly balanced for sequential keys.
  kRoundRobin,
  /// cls % num_shards: all queries of a class share one shard, so that
  /// shard's admission window sees the class's full miss signal locally.
  kClassAffinity,
};

const char* to_string(RouterKind kind);

class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// Shard index in [0, num_shards). Requires num_shards >= 1.
  virtual std::uint32_t route(std::uint64_t key, ClassId cls,
                              std::uint32_t num_shards) const = 0;

  virtual RouterKind kind() const = 0;
};

std::unique_ptr<ShardRouter> make_router(RouterKind kind);

}  // namespace tailguard
