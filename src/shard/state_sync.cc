#include "shard/state_sync.h"

#include "common/check.h"

namespace tailguard {

bool DeltaDedup::accept(std::uint32_t origin, std::uint64_t seq) {
  if (origin >= last_seq_.size()) last_seq_.resize(origin + 1, 0);
  if (seq <= last_seq_[origin]) {
    ++duplicates_dropped_;
    return false;
  }
  last_seq_[origin] = seq;
  return true;
}

StateSyncBus::StateSyncBus(std::uint32_t num_shards) : inboxes_(num_shards) {
  TG_CHECK_MSG(num_shards >= 1, "bus needs >= 1 shard");
}

void StateSyncBus::publish(const ShardDelta& delta) {
  TG_CHECK_MSG(delta.origin < inboxes_.size(), "origin out of range");
  ++deltas_published_;
  for (std::uint32_t s = 0; s < inboxes_.size(); ++s) {
    if (s == delta.origin) continue;
    inboxes_[s].push_back(delta);
  }
}

std::vector<ShardDelta> StateSyncBus::drain(std::uint32_t shard) {
  TG_CHECK_MSG(shard < inboxes_.size(), "shard out of range");
  std::deque<ShardDelta>& inbox = inboxes_[shard];
  std::vector<ShardDelta> out(inbox.begin(), inbox.end());
  inbox.clear();
  deltas_delivered_ += out.size();
  return out;
}

}  // namespace tailguard
