// N query-handler shards, each owning a private QueryControlPlane replica,
// behind one facade — plus the periodic delta-sync that keeps the replicas'
// views of per-server CDF models, admission windows and load estimates from
// drifting apart forever.
//
// Identity scheme: shard i of N allocates query ids i, i+N, i+2N, ... (the
// QueryTracker stride form), so ids are globally unique and `id % N` recovers
// the owning shard — task-completion paths route by query id alone, with no
// extra lookup table. Shard 0 of 1 degenerates to the dense 0, 1, 2, ...
// progression, the base seed and the original (uncloned) models: a 1-shard
// plane with sync disabled is *bit-identical* to an unsharded
// QueryControlPlane (pinned by tests and the fig4/fig5 md5 parity check).
//
// Each shard > 0 gets deep *clones* of the server models (group identity —
// servers sharing one model shared_ptr share one clone) and an Rng seeded
// from a splitmix64 substream of the base seed, so sharded runs are
// reproducible at any shard count and shards never share mutable state.
// All cross-shard flow goes through StateSyncBus as (origin, seq)-versioned
// ShardDeltas; the tg_lint control-plane-boundary rule enforces that nothing
// else in the tree reaches into another shard's QueryControlPlane.
//
// Thread safety: none here, deliberately — this class owns no mutex, so the
// tg_lint guarded-member rule and the TSA annotation layer
// (common/thread_annotations.h) have nothing to check in it. Single-threaded
// callers (sim) just call in. The threaded runtime guards shard i's calls
// with its own per-shard tailguard::Mutex (TailGuardService::Shard::mu,
// whose `pending` map is TG_GUARDED_BY it) — sound because every mutable
// member here is per-shard — and takes *all* shard locks (in index order,
// via lock_all()) around maybe_sync()/aggregated accessors, which touch
// every shard. The dispatcher runs a 1-shard plane entirely under its mu_
// (TG_GUARDED_BY on the control_ member).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/control_plane.h"
#include "shard/router.h"
#include "shard/state_sync.h"

namespace tailguard {

struct ShardingOptions {
  std::uint32_t num_shards = 1;
  /// Delta-sync period; <= 0 disables sync entirely (shards drift freely).
  /// The staleness knob: bench/shard_staleness sweeps it.
  TimeMs sync_interval_ms = 0.0;
  RouterKind router = RouterKind::kHash;
  /// Per-server sample cap per emitted delta; overflow is thinned
  /// deterministically and counted in ShardDelta::samples_dropped.
  std::size_t max_sync_samples_per_server = 256;

  bool sync_enabled() const {
    return num_shards > 1 && sync_interval_ms > 0.0;
  }
};

/// Deterministic per-shard seed substream. Shard 0 keeps the base seed
/// unchanged (the shard=1 parity invariant); shard i > 0 derives an
/// independent stream via splitmix64.
inline std::uint64_t shard_substream_seed(std::uint64_t base_seed,
                                          std::uint32_t shard) {
  if (shard == 0) return base_seed;
  std::uint64_t state = base_seed + 0x9e3779b97f4a7c15ULL * shard;
  return splitmix64(state);
}

class ShardedControlPlane {
 public:
  /// `base` is the per-replica configuration (its seed / id_start / id_stride
  /// are overridden per shard as described above). `server_models` follows
  /// the QueryControlPlane contract; shards > 0 receive clones.
  ShardedControlPlane(ShardingOptions sharding, ControlPlaneOptions base,
                      std::vector<std::shared_ptr<CdfModel>> server_models);

  // --- Topology -----------------------------------------------------------

  std::uint32_t num_shards() const { return num_shards_; }
  bool sync_enabled() const { return accumulate_; }

  /// Shard for a new query with routing key `key` (arrival index, submission
  /// counter, connection id, ...) in class `cls`.
  std::uint32_t route(std::uint64_t key, ClassId cls) const {
    if (num_shards_ == 1) return 0;
    return router_->route(key, cls, num_shards_);
  }

  /// Owning shard of an already-issued query id.
  std::uint32_t shard_of(QueryId id) const {
    return num_shards_ == 1 ? 0
                            : static_cast<std::uint32_t>(id % num_shards_);
  }

  // --- Per-shard pipeline (forwarders to the shard's replica) -------------

  bool admission_enabled() const { return shards_[0]->admission_enabled(); }

  bool should_admit(std::uint32_t shard, TimeMs now) {
    return shards_[shard]->should_admit(now);
  }
  bool should_admit(std::uint32_t shard, TimeMs now, double coin) {
    return shards_[shard]->should_admit(now, coin);
  }
  void count_admitted(std::uint32_t shard) { shards_[shard]->count_admitted(); }
  void count_rejected(std::uint32_t shard) { shards_[shard]->count_rejected(); }
  double admission_miss_ratio(std::uint32_t shard, TimeMs now) {
    return shards_[shard]->admission_miss_ratio(now);
  }

  /// Placement under the shard's configured policy (every shard shares one
  /// PlacementPolicyOptions; see QueryControlPlane::place).
  std::vector<ServerId> place(std::uint32_t shard,
                              std::vector<PlacementCandidate> candidates,
                              std::size_t count, ClassId cls = 0,
                              TimeMs now = 0.0) {
    return shards_[shard]->place(std::move(candidates), count, cls, now);
  }

  PlacementPolicyKind placement_kind() const {
    return shards_[0]->placement_kind();
  }
  /// Placement counters summed across shards.
  PlacementStats placement_stats() const;

  TimeMs budget(std::uint32_t shard, ClassId cls,
                std::span<const ServerId> servers) {
    return shards_[shard]->budget(cls, servers);
  }

  QueryPlan begin_query(std::uint32_t shard, TimeMs t0, ClassId cls,
                        std::span<const ServerId> servers,
                        std::optional<TimeMs> budget_override = std::nullopt,
                        std::optional<TimeMs> order_slo_ms = std::nullopt) {
    const QueryPlan plan = shards_[shard]->begin_query(
        t0, cls, servers, budget_override, order_slo_ms);
    // Under tail_risk, each enqueue's slack sample (= the plan budget) also
    // rides the next delta so peer shards' risk views track this shard's
    // queue composition, exactly like CDF samples.
    if (accumulate_ && shards_[shard]->slack_tracking_enabled())
      accumulate_slack(shard, servers, plan.budget_ms);
    return plan;
  }

  /// Capacity hint: about `queries_per_shard` begin_query calls and
  /// `in_flight` simultaneously live queries per shard. Backends sizing from
  /// a known workload call this once so the trackers never reallocate on the
  /// per-task hot path.
  void reserve_queries(std::size_t queries_per_shard, std::size_t in_flight) {
    for (auto& s : shards_) s->reserve_queries(queries_per_shard, in_flight);
  }

  // --- Query-id-routed paths (per-task hot path) --------------------------

  const QueryState& query_state(QueryId id) const {
    return shards_[shard_of(id)]->query_state(id);
  }

  bool complete_task(QueryId id, QueryState* finished = nullptr) {
    return shards_[shard_of(id)]->complete_task(id, finished);
  }

  /// Per-task hot path: inline so the common no-sync case flattens into the
  /// backend's loop; only the delta-accumulation tail stays out of line.
  void record_task_dequeue(QueryId id, TimeMs now, ClassId cls, bool missed) {
    const std::uint32_t shard = shard_of(id);
    shards_[shard]->record_task_dequeue(now, cls, missed);
    if (accumulate_) accumulate_dequeue(shard, missed);
  }

  /// §III.B.2 online updating of the owning shard's model of `server`.
  void observe_post_queuing(QueryId id, ServerId server, TimeMs post_ms) {
    observe_post_queuing_on(shard_of(id), server, post_ms);
  }
  void observe_post_queuing_on(std::uint32_t shard, ServerId server,
                               TimeMs post_ms);

  /// Last-writer-wins load gauge for `server` as seen by `shard`; shipped in
  /// the next delta. No-op unless sync is enabled.
  void update_local_load(std::uint32_t shard, ServerId server,
                         std::uint32_t load);

  /// Seeds every shard's model of `server` with an offline profile sample.
  /// Bypasses delta accumulation: the profile is distributed out-of-band,
  /// not gossip traffic.
  void seed_profile(ServerId server, std::span<const double> sample);

  // --- Delta sync ---------------------------------------------------------

  /// Runs one sync round iff sync is enabled and `now` has crossed the next
  /// interval boundary; then re-arms for the first boundary after `now`.
  /// Returns whether a round ran. O(1) when no round is due.
  bool maybe_sync(TimeMs now) {
    if (!accumulate_ || now < next_sync_ms_) return false;
    run_sync_round(now);
    rearm_after(now);
    return true;
  }

  /// Forces one sync round immediately (tests, drains at shutdown).
  void sync_now(TimeMs now) {
    if (num_shards_ > 1) run_sync_round(now);
  }

  TimeMs next_sync_at() const { return next_sync_ms_; }

  /// Extracts shard's pending delta (consuming it) with its next seq; an
  /// all-empty pending state yields an empty delta with seq still advanced.
  ShardDelta collect_delta(std::uint32_t shard);

  /// Applies a remote delta to `shard` iff (origin, seq) is new. Samples and
  /// dequeue counts feed the replica directly — they do NOT re-enter the
  /// pending delta, so absorbed state is never re-broadcast (no echo
  /// amplification). Returns whether the delta was accepted.
  bool absorb_remote_delta(std::uint32_t shard, const ShardDelta& delta,
                           TimeMs now);

  /// Feeds remotely-observed dequeues straight into `shard`'s admission
  /// window (the wire-gossip path, where the dispatcher dedups per
  /// connection itself). Bypasses delta accumulation for the same reason
  /// absorb_remote_delta does: absorbed state must never be re-broadcast.
  void absorb_remote_dequeues(std::uint32_t shard, TimeMs now,
                              std::uint64_t recorded, std::uint64_t missed) {
    shards_[shard]->absorb_remote_dequeues(now, recorded, missed);
  }

  /// Sum of the last load gauges received from other shards for `server`.
  std::uint32_t remote_load_sum(std::uint32_t shard, ServerId server) const;

  struct SyncStats {
    std::uint64_t rounds = 0;
    std::uint64_t deltas_published = 0;
    std::uint64_t deltas_absorbed = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t samples_shipped = 0;
    std::uint64_t samples_dropped = 0;
    std::uint64_t slack_samples_shipped = 0;
    std::uint64_t slack_samples_dropped = 0;
  };
  const SyncStats& sync_stats() const { return stats_; }

  // --- Aggregated introspection (reads every shard) -----------------------

  Policy policy() const { return shards_[0]->policy(); }
  std::size_t num_classes() const { return shards_[0]->num_classes(); }
  const ClassSpec& class_spec(ClassId cls) const {
    return shards_[0]->class_spec(cls);
  }
  const CdfModel& model_of(std::uint32_t shard, ServerId server) const {
    return shards_[shard]->model_of(server);
  }

  std::uint64_t queries_admitted() const;
  std::uint64_t queries_rejected() const;
  std::uint64_t queries_completed() const;
  std::uint64_t queries_started() const;
  std::size_t in_flight() const;
  std::uint64_t tasks_recorded() const;
  std::uint64_t tasks_missed() const;
  double task_miss_ratio() const;
  /// Per-class tallies summed across shards.
  ClassAccounting class_accounting(ClassId cls) const;

 private:
  /// Per-shard state pending for the next outbound delta. Flat per-server
  /// vectors; `kMaxPendingPerServer` hard-bounds memory between rounds.
  struct PendingDelta {
    std::vector<std::vector<double>> samples;  ///< server -> new samples
    std::vector<std::uint64_t> dropped;
    std::vector<std::uint32_t> load;
    std::vector<std::uint8_t> has_load;
    std::vector<std::vector<double>> slack;  ///< server -> new slack samples
    std::vector<std::uint64_t> slack_dropped;
    std::uint64_t recorded = 0;
    std::uint64_t missed = 0;
    bool any = false;
  };
  static constexpr std::size_t kMaxPendingPerServer = 4096;

  void accumulate_dequeue(std::uint32_t shard, bool missed);
  void accumulate_slack(std::uint32_t shard, std::span<const ServerId> servers,
                        TimeMs budget_ms);
  void run_sync_round(TimeMs now);
  void rearm_after(TimeMs now);

  ShardingOptions sharding_;
  std::uint32_t num_shards_;
  bool accumulate_;  ///< cache of sharding_.sync_enabled()
  std::size_t num_servers_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<QueryControlPlane>> shards_;
  std::vector<PendingDelta> pending_;
  std::vector<std::uint64_t> next_seq_;
  std::vector<DeltaDedup> dedup_;
  /// remote_load_[shard][origin * num_servers + server], ~0u = never seen.
  std::vector<std::vector<std::uint32_t>> remote_load_;
  StateSyncBus bus_;
  TimeMs next_sync_ms_ = 0.0;
  SyncStats stats_;
};

}  // namespace tailguard
