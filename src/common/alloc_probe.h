// Allocation-count probe for the hot-path no-malloc contract.
//
// The simulator's event loop (and the runtime's submit path) are supposed to
// run malloc-free in steady state: every per-task structure is slab-pooled or
// pre-reserved, so heap traffic would mean a regression. Production builds
// cannot count allocations themselves — overriding operator new globally
// would tax every binary — so the probe is an installable hook: a test binary
// that *does* override operator new registers a counter function here, and
// instrumented regions (e.g. run_simulation's event loop) report the delta
// through their results. With no hook installed alloc_count() is a constant
// 0 and the instrumented regions report 0.
#pragma once

#include <cstdint>

namespace tailguard {

/// Returns a monotonically non-decreasing count of heap allocations made by
/// this process (whatever the installing binary defines as one).
using AllocCountFn = std::uint64_t (*)();

/// Installs (or, with nullptr, removes) the process-wide counter hook. Not
/// thread-safe against concurrent alloc_count() callers; install once at
/// test startup before any instrumented region runs.
void set_alloc_count_fn(AllocCountFn fn);

/// Current allocation count, or 0 when no hook is installed. Instrumented
/// regions take the difference of two calls, so the no-hook constant yields
/// a zero delta.
std::uint64_t alloc_count();

}  // namespace tailguard
