// Summary statistics and percentile helpers.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace tailguard {

/// Streaming summary of a scalar sample (Welford's online algorithm).
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another summary into this one (parallel Welford).
  void merge(const Summary& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Nearest-rank percentile of an *unsorted* sample (copies + selects).
/// `p` is in percent, e.g. 99.0 for p99. Returns NaN on an empty sample.
double percentile(std::span<const double> sample, double p);

/// Nearest-rank percentile via in-place partial selection (nth_element):
/// no copy, no full sort. *Reorders* `sample` — but never changes its
/// multiset of values, so successive calls (p50, then p95, then p99) on the
/// same buffer all return exactly what a sort-then-index would. Callers
/// needing the mean must take it BEFORE this call: floating-point summation
/// is order-sensitive, and the means this repo reports are pinned to
/// insertion order (see stats_test).
double percentile_inplace(std::span<double> sample, double p);

/// Nearest-rank percentile of an already-sorted (ascending) sample.
double percentile_sorted(std::span<const double> sorted, double p);

/// Arithmetic mean; NaN on an empty sample.
double mean_of(std::span<const double> sample);

}  // namespace tailguard
