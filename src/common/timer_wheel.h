// Hierarchical timer wheel (calendar queue) with *exact* pop order.
//
// Classic timing wheels trade ordering precision for O(1) inserts: items
// within one slot pop in arbitrary order. That is unusable here — the
// deterministic core promises bit-identical schedules (DESIGN.md), so the
// wheel must pop in exactly the order a binary heap over `ExactLess` would.
// The fix is hybrid: the wheel's slots provide coarse O(1) radix ordering by
// tick, and each slot keeps a small binary heap on the exact comparator for
// everything that collides. Pop cost is O(log slot-occupancy) instead of
// O(log n); with a sane tick size slot occupancy is a small constant.
//
// Layout: kLevels levels of kSlots slots each. Level l slot width is
// 64^l ticks, so the in-wheel horizon is 64^kLevels ticks (= 2^24 for the
// default 4 levels); items beyond it go to an overflow heap that is drained
// level-by-level as the wheel advances. Per-level occupancy bitmasks make
// "first non-empty slot" a countr_zero.
//
// Ordering contract (the part the parity tests pin down):
//   * ticks are floor(key / tick_ms), so tick(a) < tick(b) implies
//     key(a) < key(b) — cross-slot order is always consistent with ExactLess;
//   * equal ticks land in the same slot heap, ordered by ExactLess;
//   * keys earlier than the wheel's current position (monotonicity-violating
//     pushes) are clamped *into* the current slot, which preserves exactness
//     because every occupied later slot holds strictly larger keys.
//
// The wheel's cursor only moves forward while non-empty; it re-anchors when
// the structure empties. `ExactLess` must be a strict total order (ties
// broken by a unique sequence number) and `KeyMs` must be monotone w.r.t.
// it: ExactLess(a, b) implies KeyMs(a) <= KeyMs(b).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace tailguard {

template <typename T, typename ExactLess, typename KeyMs>
class TimerWheel {
 public:
  explicit TimerWheel(double tick_ms, ExactLess less = ExactLess{},
                      KeyMs key = KeyMs{})
      : inv_tick_(1.0 / tick_ms), less_(less), key_(key), later_{less} {
    TG_CHECK_MSG(tick_ms > 0.0, "timer wheel tick must be positive");
    occ_.fill(0);
  }

  void push(T item) {
    const std::int64_t t = tick_of(key_(item));
    if (size_ == 0) cur_ = t;  // re-anchor an empty wheel
    place(std::move(item), t < cur_ ? cur_ : t);
    ++size_;
    if (occ_[0] == 0) settle();
  }

  /// Removes and returns the global minimum under ExactLess.
  /// Precondition: !empty().
  T pop() {
    TG_DCHECK(size_ > 0);
    const int j = std::countr_zero(occ_[0]);
    std::vector<T>& slot = slots_[static_cast<std::size_t>(j)];
    std::pop_heap(slot.begin(), slot.end(), later_);
    T out = std::move(slot.back());
    slot.pop_back();
    if (slot.empty()) occ_[0] &= ~(std::uint64_t{1} << j);
    --size_;
    if (size_ != 0 && occ_[0] == 0) settle();
    return out;
  }

  /// The item pop() would return. Precondition: !empty().
  const T& peek() const {
    TG_DCHECK(size_ > 0);
    return slots_[static_cast<std::size_t>(std::countr_zero(occ_[0]))].front();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64
  static constexpr int kLevels = 4;
  // Clamp ticks well inside int64 so window arithmetic cannot overflow even
  // for infinite or absurd keys (kNoTime is -inf).
  static constexpr std::int64_t kMaxTick = std::int64_t{1} << 62;

  struct LaterOnHeap {
    ExactLess less;
    bool operator()(const T& a, const T& b) const { return less(b, a); }
  };

  std::int64_t tick_of(double key_ms) const {
    const double t = std::floor(key_ms * inv_tick_);
    if (!(t > static_cast<double>(-kMaxTick))) return -kMaxTick;
    if (t >= static_cast<double>(kMaxTick)) return kMaxTick;
    return static_cast<std::int64_t>(t);
  }

  std::vector<T>& slot_at(int level, int idx) {
    return slots_[static_cast<std::size_t>(level * kSlots + idx)];
  }

  void heap_push(std::vector<T>& heap, T&& item) {
    // First touch of a slot skips the 1→2→4 growth chain; capacity is never
    // released afterwards (pop_back keeps it), so steady state is malloc-free.
    if (heap.capacity() == 0) heap.reserve(4);
    heap.push_back(std::move(item));
    std::push_heap(heap.begin(), heap.end(), later_);
  }

  /// Files `item` (tick `t`, already clamped to >= cur_) into the finest
  /// level whose current window contains it, else the overflow heap.
  void place(T&& item, std::int64_t t) {
    for (int l = 0; l < kLevels; ++l) {
      const int window_bits = kSlotBits * (l + 1);
      if ((t >> window_bits) == (cur_ >> window_bits)) {
        const int idx = static_cast<int>((t >> (kSlotBits * l)) & (kSlots - 1));
        heap_push(slot_at(l, idx), std::move(item));
        occ_[static_cast<std::size_t>(l)] |= std::uint64_t{1} << idx;
        return;
      }
    }
    heap_push(overflow_, std::move(item));
  }

  /// Re-establishes the invariant behind O(1) peek: whenever the wheel is
  /// non-empty, level 0 is non-empty. Cascades the first occupied slot of
  /// the finest occupied level down, pulling from overflow when the wheel
  /// proper is empty.
  void settle() {
    while (occ_[0] == 0) {
      int l = 1;
      while (l < kLevels && occ_[static_cast<std::size_t>(l)] == 0) ++l;
      if (l < kLevels) {
        cascade(l);
      } else if (!overflow_.empty()) {
        refill_from_overflow();
      } else {
        return;  // wheel empty
      }
    }
  }

  /// Advances the cursor to the first occupied slot of level `l` and
  /// redistributes its items into finer levels. Every item's tick lies in
  /// that slot's range (clamped items only ever land on level 0), which is
  /// exactly one window of level l-1 — so nothing moves backwards.
  void cascade(int l) {
    const int j = std::countr_zero(occ_[static_cast<std::size_t>(l)]);
    occ_[static_cast<std::size_t>(l)] &= ~(std::uint64_t{1} << j);
    std::vector<T>& slot = slot_at(l, j);
    std::swap(scratch_, slot);  // keeps the slot's capacity for reuse
    const int window_bits = kSlotBits * (l + 1);
    const std::int64_t slot_span = std::int64_t{1} << (kSlotBits * l);
    const std::int64_t base =
        ((cur_ >> window_bits) << window_bits) + j * slot_span;
    TG_DCHECK(base >= cur_);
    cur_ = base;
    for (T& item : scratch_) {
      const std::int64_t t = tick_of(key_(item));
      TG_DCHECK(t >= cur_);
      place(std::move(item), t);
    }
    scratch_.clear();
  }

  /// All wheel levels are empty: re-anchor at the overflow minimum and move
  /// over every overflow item inside the new coarsest window. The overflow
  /// heap yields items in ExactLess order, and window membership is monotone
  /// in the tick, so the drain can stop at the first item outside.
  void refill_from_overflow() {
    std::pop_heap(overflow_.begin(), overflow_.end(), later_);
    T first = std::move(overflow_.back());
    overflow_.pop_back();
    cur_ = tick_of(key_(first));
    place(std::move(first), cur_);
    const std::int64_t horizon = cur_ >> (kSlotBits * kLevels);
    while (!overflow_.empty() &&
           (tick_of(key_(overflow_.front())) >> (kSlotBits * kLevels)) ==
               horizon) {
      std::pop_heap(overflow_.begin(), overflow_.end(), later_);
      T item = std::move(overflow_.back());
      overflow_.pop_back();
      place(std::move(item), tick_of(key_(item)));
    }
  }

  double inv_tick_;
  ExactLess less_;
  KeyMs key_;
  LaterOnHeap later_;
  std::array<std::vector<T>, kLevels * kSlots> slots_;
  std::array<std::uint64_t, kLevels> occ_;
  std::vector<T> overflow_;  // min-heap on ExactLess via later_
  std::vector<T> scratch_;   // cascade staging, capacity recycled
  std::int64_t cur_ = 0;
  std::size_t size_ = 0;
};

}  // namespace tailguard
